// Benchmarks regenerating the paper's tables and figures, plus ablation
// benches for each design choice DESIGN.md calls out.
//
// Each benchmark iteration executes one full simulated run and reports,
// besides the usual host-side ns/op, the *virtual* runtime of the
// simulated program as "virt-ms/op" — the quantity the paper's tables
// plot. Benchmarks default to reduced problem sizes so `go test
// -bench=.` completes in minutes; set PARHASK_FULL=1 to run them at
// full paper scale (cmd/benchall always uses full scale).
package parhask_test

import (
	"fmt"
	"os"
	"testing"

	"parhask/internal/deque"
	"parhask/internal/eden"
	"parhask/internal/experiments"
	"parhask/internal/faults"
	"parhask/internal/gph"
	"parhask/internal/graph"
	"parhask/internal/gum"
	"parhask/internal/machine"
	"parhask/internal/metrics"
	"parhask/internal/native"
	"parhask/internal/pe"
	"parhask/internal/rts"
	"parhask/internal/sim"
	"parhask/internal/skel"
	"parhask/internal/workloads/apsp"
	"parhask/internal/workloads/euler"
	"parhask/internal/workloads/mandel"
	"parhask/internal/workloads/matmul"
	"parhask/internal/workloads/parfib"
	"parhask/internal/workloads/queens"
)

// benchParams picks the experiment scale.
func benchParams() experiments.Params {
	if os.Getenv("PARHASK_FULL") != "" {
		return experiments.Defaults()
	}
	p := experiments.Quick()
	// Somewhat larger than test-scale so scheduler effects are visible.
	p.SumEulerN = 4000
	p.SumEulerChunks = 80
	p.MatMulN = 192
	p.MatMulBlock = 24
	p.APSPNodes = 128
	return p
}

// reportVirt attaches the virtual runtime metric.
func reportVirt(b *testing.B, totalVirtNs int64) {
	b.ReportMetric(float64(totalVirtNs)/1e6/float64(b.N), "virt-ms/op")
}

// --- Fig. 1: sumEuler runtimes, five configurations, 8 cores ---

func BenchmarkFig1SumEuler(b *testing.B) {
	p := benchParams()
	variants := []struct {
		name string
		mk   func(int) gph.Config
	}{
		{"a_plain_ghc69", gph.PlainGHC69},
		{"b_big_alloc_area", gph.BigAllocArea},
		{"c_improved_gc_sync", gph.ImprovedSync},
		{"d_work_stealing", gph.WorkStealingConfig},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var virt int64
			for i := 0; i < b.N; i++ {
				cfg := v.mk(p.Cores8)
				res, err := gph.Run(cfg, euler.GpHProgram(p.SumEulerN, p.SumEulerChunks, cfg.Costs.GCDIter))
				if err != nil {
					b.Fatal(err)
				}
				virt += res.Elapsed
			}
			reportVirt(b, virt)
		})
	}
	b.Run("e_eden_8pe", func(b *testing.B) {
		var virt int64
		for i := 0; i < b.N; i++ {
			cfg := eden.NewConfig(p.Cores8, p.Cores8)
			res, err := eden.Run(cfg, euler.EdenProgram(p.SumEulerN, 8, cfg.Costs.GCDIter))
			if err != nil {
				b.Fatal(err)
			}
			virt += res.Elapsed
		}
		reportVirt(b, virt)
	})
}

// --- Fig. 2: the sumEuler traces (same runs, tracing always on) ---

func BenchmarkFig2SumEulerTraced(b *testing.B) {
	p := benchParams()
	var virt int64
	for i := 0; i < b.N; i++ {
		f := experiments.RunFig2(p)
		for _, e := range f.Entries {
			virt += e.Elapsed
		}
		if bad := f.CheckShape(); len(bad) > 0 && os.Getenv("PARHASK_FULL") != "" {
			b.Fatalf("shape violations: %v", bad)
		}
	}
	reportVirt(b, virt)
}

// --- Fig. 3: speedup curves for sumEuler and matmul ---

func BenchmarkFig3Speedups(b *testing.B) {
	p := benchParams()
	a := matmul.Random(p.MatMulN, 101)
	bm := matmul.Random(p.MatMulN, 102)
	for _, prog := range []string{"sumeuler", "matmul"} {
		for _, cfgKind := range []string{"worksteal", "eden"} {
			for _, cores := range p.CoreCounts {
				b.Run(fmt.Sprintf("%s/%s/cores_%d", prog, cfgKind, cores), func(b *testing.B) {
					var virt int64
					for i := 0; i < b.N; i++ {
						switch {
						case prog == "sumeuler" && cfgKind == "worksteal":
							cfg := gph.WorkStealingConfig(cores)
							res, err := gph.Run(cfg, euler.GpHProgram(p.SumEulerN, p.SumEulerChunks, cfg.Costs.GCDIter))
							if err != nil {
								b.Fatal(err)
							}
							virt += res.Elapsed
						case prog == "sumeuler" && cfgKind == "eden":
							cfg := eden.NewConfig(cores, cores)
							res, err := eden.Run(cfg, euler.EdenProgram(p.SumEulerN, 8, cfg.Costs.GCDIter))
							if err != nil {
								b.Fatal(err)
							}
							virt += res.Elapsed
						case prog == "matmul" && cfgKind == "worksteal":
							cfg := gph.WorkStealingConfig(cores)
							cfg.ResidentBytes = 3 * matmul.Bytes(p.MatMulN)
							res, err := gph.Run(cfg, matmul.GpHBlockProgram(a, bm, p.MatMulBlock, cfg.Costs.MulAdd))
							if err != nil {
								b.Fatal(err)
							}
							virt += res.Elapsed
						default:
							q := 1
							for q*q < cores {
								q++
							}
							cfg := eden.NewConfig(q*q+1, cores)
							res, err := eden.Run(cfg, matmul.EdenCannonProgram(a, bm, q, cfg.Costs.MulAdd))
							if err != nil {
								b.Fatal(err)
							}
							virt += res.Elapsed
						}
					}
					reportVirt(b, virt)
				})
			}
		}
	}
}

// --- Fig. 4: matmul on 8 cores, incl. Eden virtual PEs ---

func BenchmarkFig4MatMul(b *testing.B) {
	p := benchParams()
	a := matmul.Random(p.MatMulN, 103)
	bm := matmul.Random(p.MatMulN, 104)
	gphVariants := []struct {
		name string
		mk   func(int) gph.Config
	}{
		{"a_plain", gph.PlainGHC69},
		{"b_big_alloc", gph.BigAllocArea},
		{"c_work_stealing", gph.WorkStealingConfig},
	}
	for _, v := range gphVariants {
		b.Run(v.name, func(b *testing.B) {
			var virt int64
			for i := 0; i < b.N; i++ {
				cfg := v.mk(p.Cores8)
				cfg.ResidentBytes = 3 * matmul.Bytes(p.MatMulN)
				res, err := gph.Run(cfg, matmul.GpHBlockProgram(a, bm, p.MatMulBlock, cfg.Costs.MulAdd))
				if err != nil {
					b.Fatal(err)
				}
				virt += res.Elapsed
			}
			reportVirt(b, virt)
		})
	}
	for _, e := range []struct {
		name   string
		q, pes int
	}{{"d_eden_3x3_9pe", 3, 9}, {"e_eden_4x4_17pe", 4, 17}} {
		b.Run(e.name, func(b *testing.B) {
			if p.MatMulN%e.q != 0 {
				b.Skipf("matrix size %d not divisible by %d", p.MatMulN, e.q)
			}
			var virt int64
			for i := 0; i < b.N; i++ {
				cfg := eden.NewConfig(e.pes, p.Cores8)
				res, err := eden.Run(cfg, matmul.EdenCannonProgram(a, bm, e.q, cfg.Costs.MulAdd))
				if err != nil {
					b.Fatal(err)
				}
				virt += res.Elapsed
			}
			reportVirt(b, virt)
		})
	}
}

// --- Fig. 5: APSP, black-holing × scheduler × Eden ring, 8 cores ---

func BenchmarkFig5APSP(b *testing.B) {
	p := benchParams()
	g := apsp.RandomGraph(p.APSPNodes, 105, 9, 25)
	variants := []struct {
		name  string
		mk    func(int) gph.Config
		eager bool
	}{
		{"gph_lazy_bh", gph.ImprovedSync, false},
		{"gph_eager_bh", gph.ImprovedSync, true},
		{"gph_worksteal_lazy_bh", gph.WorkStealingConfig, false},
		{"gph_worksteal_eager_bh", gph.WorkStealingConfig, true},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var virt int64
			for i := 0; i < b.N; i++ {
				cfg := v.mk(p.Cores8)
				cfg.EagerBlackholing = v.eager
				cfg.ResidentBytes = 2 * apsp.Bytes(p.APSPNodes)
				res, err := gph.Run(cfg, apsp.GpHProgram(g, cfg.Costs.MinPlus))
				if err != nil {
					b.Fatal(err)
				}
				virt += res.Elapsed
			}
			reportVirt(b, virt)
		})
	}
	b.Run("eden_ring", func(b *testing.B) {
		var virt int64
		for i := 0; i < b.N; i++ {
			cfg := eden.NewConfig(p.Cores8+1, p.Cores8)
			res, err := eden.Run(cfg, apsp.EdenRingProgram(g, p.Cores8, cfg.Costs.MinPlus))
			if err != nil {
				b.Fatal(err)
			}
			virt += res.Elapsed
		}
		reportVirt(b, virt)
	})
}

// --- Ablations ---

// BenchmarkAblationPushVsSteal isolates the work-distribution scheme
// (everything else at the improved settings).
func BenchmarkAblationPushVsSteal(b *testing.B) {
	p := benchParams()
	for _, stealing := range []bool{false, true} {
		name := "push"
		if stealing {
			name = "steal"
		}
		b.Run(name, func(b *testing.B) {
			var virt int64
			for i := 0; i < b.N; i++ {
				cfg := gph.ImprovedSync(p.Cores8)
				cfg.WorkStealing = stealing
				res, err := gph.Run(cfg, euler.GpHProgram(p.SumEulerN, p.SumEulerChunks, cfg.Costs.GCDIter))
				if err != nil {
					b.Fatal(err)
				}
				virt += res.Elapsed
			}
			reportVirt(b, virt)
		})
	}
}

// BenchmarkAblationSparkThread isolates dedicated spark threads vs. a
// fresh thread per spark (§IV-A.4).
func BenchmarkAblationSparkThread(b *testing.B) {
	p := benchParams()
	for _, st := range []bool{false, true} {
		name := "thread_per_spark"
		if st {
			name = "spark_thread"
		}
		b.Run(name, func(b *testing.B) {
			var virt int64
			for i := 0; i < b.N; i++ {
				cfg := gph.WorkStealingConfig(p.Cores8)
				cfg.SparkThreads = st
				res, err := gph.Run(cfg, euler.GpHProgram(p.SumEulerN, p.SumEulerChunks*4, cfg.Costs.GCDIter))
				if err != nil {
					b.Fatal(err)
				}
				virt += res.Elapsed
			}
			reportVirt(b, virt)
		})
	}
}

// BenchmarkAblationBlackholing isolates the black-holing policy on the
// shared-thunk APSP lattice (§IV-A.3).
func BenchmarkAblationBlackholing(b *testing.B) {
	p := benchParams()
	g := apsp.RandomGraph(p.APSPNodes, 105, 9, 25)
	for _, eager := range []bool{false, true} {
		name := "lazy"
		if eager {
			name = "eager"
		}
		b.Run(name, func(b *testing.B) {
			var virt int64
			for i := 0; i < b.N; i++ {
				cfg := gph.WorkStealingConfig(p.Cores8)
				cfg.EagerBlackholing = eager
				res, err := gph.Run(cfg, apsp.GpHProgram(g, cfg.Costs.MinPlus))
				if err != nil {
					b.Fatal(err)
				}
				virt += res.Elapsed
			}
			reportVirt(b, virt)
		})
	}
}

// BenchmarkAblationAllocArea sweeps the allocation-area size (§IV-A.1).
func BenchmarkAblationAllocArea(b *testing.B) {
	p := benchParams()
	for _, kb := range []int64{256, 512, 2048, 8192, 32768} {
		b.Run(fmt.Sprintf("%dKB", kb), func(b *testing.B) {
			var virt int64
			var gcs int
			for i := 0; i < b.N; i++ {
				cfg := gph.PlainGHC69(p.Cores8)
				cfg.AllocArea = kb * 1024
				res, err := gph.Run(cfg, euler.GpHProgram(p.SumEulerN, p.SumEulerChunks, cfg.Costs.GCDIter))
				if err != nil {
					b.Fatal(err)
				}
				virt += res.Elapsed
				gcs += res.Stats.GCs
			}
			reportVirt(b, virt)
			b.ReportMetric(float64(gcs)/float64(b.N), "gcs/op")
		})
	}
}

// BenchmarkAblationBarrier isolates polling vs. wakeup GC barriers.
func BenchmarkAblationBarrier(b *testing.B) {
	p := benchParams()
	for _, wakeup := range []bool{false, true} {
		name := "polling"
		if wakeup {
			name = "wakeup"
		}
		b.Run(name, func(b *testing.B) {
			var virt int64
			for i := 0; i < b.N; i++ {
				cfg := gph.BigAllocArea(p.Cores8)
				cfg.WakeupBarrier = wakeup
				res, err := gph.Run(cfg, euler.GpHProgram(p.SumEulerN, p.SumEulerChunks, cfg.Costs.GCDIter))
				if err != nil {
					b.Fatal(err)
				}
				virt += res.Elapsed
			}
			reportVirt(b, virt)
		})
	}
}

// BenchmarkAblationMsgLatency sweeps the Eden transport latency.
func BenchmarkAblationMsgLatency(b *testing.B) {
	p := benchParams()
	g := apsp.RandomGraph(p.APSPNodes, 105, 9, 25)
	for _, lat := range []int64{5_000, 45_000, 200_000, 1_000_000} {
		b.Run(fmt.Sprintf("%dus", lat/1000), func(b *testing.B) {
			var virt int64
			for i := 0; i < b.N; i++ {
				cfg := eden.NewConfig(p.Cores8+1, p.Cores8)
				cfg.Costs.MsgLatency = lat
				res, err := eden.Run(cfg, apsp.EdenRingProgram(g, p.Cores8, cfg.Costs.MinPlus))
				if err != nil {
					b.Fatal(err)
				}
				virt += res.Elapsed
			}
			reportVirt(b, virt)
		})
	}
}

// BenchmarkAblationVirtualPEs sweeps PE counts on a fixed 8-core machine.
func BenchmarkAblationVirtualPEs(b *testing.B) {
	p := benchParams()
	for _, pes := range []int{4, 8, 12, 16, 24} {
		b.Run(fmt.Sprintf("%dpe_8cores", pes), func(b *testing.B) {
			var virt int64
			for i := 0; i < b.N; i++ {
				cfg := eden.NewConfig(pes, p.Cores8)
				res, err := eden.Run(cfg, euler.EdenProgram(p.SumEulerN, 8, cfg.Costs.GCDIter))
				if err != nil {
					b.Fatal(err)
				}
				virt += res.Elapsed
			}
			reportVirt(b, virt)
		})
	}
}

// BenchmarkAblationBlockSize sweeps the GpH matmul spark granularity.
func BenchmarkAblationBlockSize(b *testing.B) {
	p := benchParams()
	a := matmul.Random(p.MatMulN, 103)
	bm := matmul.Random(p.MatMulN, 104)
	for _, bs := range []int{8, 16, 24, 48, 96} {
		if p.MatMulN%bs != 0 {
			continue
		}
		b.Run(fmt.Sprintf("block_%d", bs), func(b *testing.B) {
			var virt int64
			for i := 0; i < b.N; i++ {
				cfg := gph.WorkStealingConfig(p.Cores8)
				cfg.ResidentBytes = 3 * matmul.Bytes(p.MatMulN)
				res, err := gph.Run(cfg, matmul.GpHBlockProgram(a, bm, bs, cfg.Costs.MulAdd))
				if err != nil {
					b.Fatal(err)
				}
				virt += res.Elapsed
			}
			reportVirt(b, virt)
		})
	}
}

// BenchmarkAblationRowVsBlock compares the paper's blockwise sparking
// against the straightforward row-parallel matmul.
func BenchmarkAblationRowVsBlock(b *testing.B) {
	p := benchParams()
	a := matmul.Random(p.MatMulN, 103)
	bm := matmul.Random(p.MatMulN, 104)
	b.Run("blocks", func(b *testing.B) {
		var virt int64
		for i := 0; i < b.N; i++ {
			cfg := gph.WorkStealingConfig(p.Cores8)
			res, err := gph.Run(cfg, matmul.GpHBlockProgram(a, bm, p.MatMulBlock, cfg.Costs.MulAdd))
			if err != nil {
				b.Fatal(err)
			}
			virt += res.Elapsed
		}
		reportVirt(b, virt)
	})
	b.Run("rows", func(b *testing.B) {
		var virt int64
		for i := 0; i < b.N; i++ {
			cfg := gph.WorkStealingConfig(p.Cores8)
			res, err := gph.Run(cfg, matmul.GpHRowProgram(a, bm, cfg.Costs.MulAdd))
			if err != nil {
				b.Fatal(err)
			}
			virt += res.Elapsed
		}
		reportVirt(b, virt)
	})
}

// --- Substrate micro-benchmarks ---

func BenchmarkDequeOwnerPushPop(b *testing.B) {
	d := deque.New[int]()
	v := 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.PushBottom(&v)
		d.PopBottom()
	}
}

func BenchmarkDequeSteal(b *testing.B) {
	d := deque.New[int]()
	vals := make([]int, 1024)
	for i := range vals {
		d.PushBottom(&vals[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := d.Steal(); !ok {
			b.StopTimer()
			for j := range vals {
				d.PushBottom(&vals[j])
			}
			b.StartTimer()
		}
	}
}

func BenchmarkSimEventThroughput(b *testing.B) {
	s := sim.New(1)
	s.Spawn("ticker", func(t *sim.Task) {
		for i := 0; i < b.N; i++ {
			t.Advance(10)
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkMachineGPSRebalance(b *testing.B) {
	s := sim.New(1)
	m := machine.New(s, 4)
	const workers = 9
	for w := 0; w < workers; w++ {
		s.Spawn(fmt.Sprintf("w%d", w), func(t *sim.Task) {
			for i := 0; i < b.N/workers+1; i++ {
				m.Burn(t, 100)
			}
		})
	}
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkGpHSchedulerOverhead(b *testing.B) {
	// Cost of running many tiny sparks through the full runtime.
	var virt int64
	for i := 0; i < b.N; i++ {
		cfg := gph.WorkStealingConfig(4)
		res, err := gph.Run(cfg, func(ctx *rts.Ctx) graph.Value {
			ts := make([]*graph.Thunk, 256)
			for j := range ts {
				ts[j] = graph.NewThunk(func(c graph.Context) graph.Value {
					c.Burn(10_000)
					return 1
				})
			}
			for _, t := range ts {
				ctx.Par(t)
			}
			sum := 0
			for _, t := range ts {
				sum += ctx.Force(t).(int)
			}
			return sum
		})
		if err != nil {
			b.Fatal(err)
		}
		virt += res.Elapsed
	}
	reportVirt(b, virt)
}

func BenchmarkEdenMessageRoundTrip(b *testing.B) {
	var virt int64
	for i := 0; i < b.N; i++ {
		cfg := eden.NewConfig(2, 2)
		res, err := eden.Run(cfg, func(p pe.Ctx) graph.Value {
			in, out := p.NewChan(0)
			p.Spawn(1, "echo", func(w pe.Ctx) {
				w.Send(out, 1)
			})
			return p.Receive(in)
		})
		if err != nil {
			b.Fatal(err)
		}
		virt += res.Elapsed
	}
	reportVirt(b, virt)
}

// --- Extensions beyond the paper's measured systems ---

// BenchmarkModelComparison runs the same sumEuler program on all three
// runtime families the paper discusses: the shared-heap GpH runtime,
// the distributed-memory GUM implementation of GpH (§III-B), and Eden.
func BenchmarkModelComparison(b *testing.B) {
	p := benchParams()
	b.Run("gph_shared_heap", func(b *testing.B) {
		var virt int64
		for i := 0; i < b.N; i++ {
			cfg := gph.WorkStealingConfig(p.Cores8)
			res, err := gph.Run(cfg, euler.GpHProgram(p.SumEulerN, p.SumEulerChunks, cfg.Costs.GCDIter))
			if err != nil {
				b.Fatal(err)
			}
			virt += res.Elapsed
		}
		reportVirt(b, virt)
	})
	b.Run("gum_distributed_gph", func(b *testing.B) {
		var virt int64
		for i := 0; i < b.N; i++ {
			cfg := gum.NewConfig(p.Cores8, p.Cores8)
			res, err := gum.Run(cfg, euler.GpHProgram(p.SumEulerN, p.SumEulerChunks, cfg.Costs.GCDIter))
			if err != nil {
				b.Fatal(err)
			}
			virt += res.Elapsed
		}
		reportVirt(b, virt)
	})
	b.Run("eden_skeletons", func(b *testing.B) {
		var virt int64
		for i := 0; i < b.N; i++ {
			cfg := eden.NewConfig(p.Cores8, p.Cores8)
			res, err := eden.Run(cfg, euler.EdenProgram(p.SumEulerN, 8, cfg.Costs.GCDIter))
			if err != nil {
				b.Fatal(err)
			}
			virt += res.Elapsed
		}
		reportVirt(b, virt)
	})
}

// BenchmarkFutureLocalHeaps measures the paper's §VI proposal: per-
// capability local collection vs. the stop-the-world shared heap, on a
// GC-heavy allocation profile.
func BenchmarkFutureLocalHeaps(b *testing.B) {
	p := benchParams()
	mkMain := func() func(*rts.Ctx) graph.Value {
		return euler.GpHProgram(p.SumEulerN, p.SumEulerChunks, cost_GCDIter())
	}
	for _, cores := range []int{8, 16} {
		b.Run(fmt.Sprintf("stop_the_world_%dcores", cores), func(b *testing.B) {
			var virt int64
			for i := 0; i < b.N; i++ {
				cfg := gph.WorkStealingConfig(cores)
				res, err := gph.Run(cfg, mkMain())
				if err != nil {
					b.Fatal(err)
				}
				virt += res.Elapsed
			}
			reportVirt(b, virt)
		})
		b.Run(fmt.Sprintf("local_heaps_%dcores", cores), func(b *testing.B) {
			var virt int64
			for i := 0; i < b.N; i++ {
				cfg := gph.LocalHeapsConfig(cores)
				res, err := gph.Run(cfg, mkMain())
				if err != nil {
					b.Fatal(err)
				}
				virt += res.Elapsed
			}
			reportVirt(b, virt)
		})
	}
}

// cost_GCDIter avoids recomputing a default model per call site.
func cost_GCDIter() int64 { return gph.WorkStealingConfig(1).Costs.GCDIter }

// BenchmarkAblationFishDelay sweeps GUM's fishing back-off.
func BenchmarkAblationFishDelay(b *testing.B) {
	p := benchParams()
	for _, d := range []int64{50_000, 300_000, 2_000_000} {
		b.Run(fmt.Sprintf("%dus", d/1000), func(b *testing.B) {
			var virt int64
			for i := 0; i < b.N; i++ {
				cfg := gum.NewConfig(p.Cores8, p.Cores8)
				cfg.FishDelay = d
				res, err := gum.Run(cfg, euler.GpHProgram(p.SumEulerN, p.SumEulerChunks, cfg.Costs.GCDIter))
				if err != nil {
					b.Fatal(err)
				}
				virt += res.Elapsed
			}
			reportVirt(b, virt)
		})
	}
}

// BenchmarkAblationParfibThreshold sweeps the classic spark-granularity
// cutoff of parfib: too fine pays scheduling per microscopic spark, too
// coarse starves the machine.
func BenchmarkAblationParfibThreshold(b *testing.B) {
	const n = 27
	for _, th := range []int{4, 8, 12, 16, 20, 24} {
		b.Run(fmt.Sprintf("cutoff_%d", th), func(b *testing.B) {
			var virt int64
			for i := 0; i < b.N; i++ {
				cfg := gph.WorkStealingConfig(8)
				res, err := gph.Run(cfg, parfib.Program(n, th))
				if err != nil {
					b.Fatal(err)
				}
				if res.Value != parfib.Fib(n) {
					b.Fatalf("wrong fib: %v", res.Value)
				}
				virt += res.Elapsed
			}
			reportVirt(b, virt)
		})
	}
}

// BenchmarkMandelbrot compares the three distribution styles on the
// irregular Mandelbrot rows.
func BenchmarkMandelbrot(b *testing.B) {
	p := mandel.DefaultParams(192, 128)
	b.Run("gph_push", func(b *testing.B) {
		var virt int64
		for i := 0; i < b.N; i++ {
			res, err := gph.Run(gph.ImprovedSync(8), mandel.GpHProgram(p))
			if err != nil {
				b.Fatal(err)
			}
			virt += res.Elapsed
		}
		reportVirt(b, virt)
	})
	b.Run("gph_steal", func(b *testing.B) {
		var virt int64
		for i := 0; i < b.N; i++ {
			res, err := gph.Run(gph.WorkStealingConfig(8), mandel.GpHProgram(p))
			if err != nil {
				b.Fatal(err)
			}
			virt += res.Elapsed
		}
		reportVirt(b, virt)
	})
	b.Run("eden_masterworker", func(b *testing.B) {
		var virt int64
		for i := 0; i < b.N; i++ {
			cfg := eden.NewConfig(8, 8)
			res, err := eden.Run(cfg, mandel.EdenProgram(p, 7, 2))
			if err != nil {
				b.Fatal(err)
			}
			virt += res.Elapsed
		}
		reportVirt(b, virt)
	})
	b.Run("gum_fishing", func(b *testing.B) {
		var virt int64
		for i := 0; i < b.N; i++ {
			cfg := gum.NewConfig(8, 8)
			res, err := gum.Run(cfg, mandel.GpHProgram(p))
			if err != nil {
				b.Fatal(err)
			}
			virt += res.Elapsed
		}
		reportVirt(b, virt)
	})
}

// BenchmarkQueens runs the dynamic search tree on the farm runtimes.
func BenchmarkQueens(b *testing.B) {
	const n, depth = 11, 3
	b.Run("gph_steal", func(b *testing.B) {
		var virt int64
		for i := 0; i < b.N; i++ {
			res, err := gph.Run(gph.WorkStealingConfig(8), queens.GpHProgram(n, depth))
			if err != nil {
				b.Fatal(err)
			}
			virt += res.Elapsed
		}
		reportVirt(b, virt)
	})
	b.Run("eden_masterworker", func(b *testing.B) {
		var virt int64
		for i := 0; i < b.N; i++ {
			cfg := eden.NewConfig(8, 8)
			res, err := eden.Run(cfg, queens.EdenProgram(n, 7, 2, depth))
			if err != nil {
				b.Fatal(err)
			}
			virt += res.Elapsed
		}
		reportVirt(b, virt)
	})
}

// --- Native backend: real wall-clock on real goroutines ---
//
// Unlike every benchmark above, the ns/op of the BenchmarkNative*
// benchmarks IS the quantity of interest: the same GpH program bodies
// executed by the native work-stealing runtime on actual cores. The
// worker-count sub-benchmarks sweep the paper's x-axis in real time.

// BenchmarkNativeSumEuler sweeps worker counts on the uncached sumEuler
// kernel (the wall-clock analogue of Fig. 3's speedup curve).
func BenchmarkNativeSumEuler(b *testing.B) {
	p := benchParams()
	n, chunks := p.SumEulerN, p.SumEulerChunks
	want := euler.SumTotientSieve(n)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers_%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := native.Run(native.NewConfig(workers), euler.Program(n, chunks, 0, true))
				if err != nil {
					b.Fatal(err)
				}
				if res.Value.(int64) != want {
					b.Fatalf("wrong sum: %v", res.Value)
				}
			}
		})
	}
}

// BenchmarkNativeMatMul sweeps worker counts on the blockwise matrix
// multiplication.
func BenchmarkNativeMatMul(b *testing.B) {
	p := benchParams()
	a := matmul.Random(p.MatMulN, 103)
	bm := matmul.Random(p.MatMulN, 104)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers_%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := native.Run(native.NewConfig(workers), matmul.BlockProgram(a, bm, p.MatMulBlock, 0))
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Value.(matmul.Mat)) != p.MatMulN {
					b.Fatal("wrong result shape")
				}
			}
		})
	}
}

// BenchmarkNativeAPSP compares the black-holing policies on the shared-
// thunk shortest-paths lattice in real time, reporting the measured
// duplicate-entry count (the paper's §IV-A.3 effect on actual cores).
func BenchmarkNativeAPSP(b *testing.B) {
	p := benchParams()
	g := apsp.RandomGraph(p.APSPNodes, 105, 9, 25)
	for _, eager := range []bool{false, true} {
		name := "lazy_bh"
		if eager {
			name = "eager_bh"
		}
		b.Run(name, func(b *testing.B) {
			var dups int64
			for i := 0; i < b.N; i++ {
				cfg := native.NewConfig(0)
				cfg.EagerBlackholing = eager
				res, err := native.Run(cfg, apsp.Program(g, 0))
				if err != nil {
					b.Fatal(err)
				}
				dups += res.Stats.DupEntries
			}
			b.ReportMetric(float64(dups)/float64(b.N), "dup-entries/op")
		})
	}
}

// BenchmarkNativeEventlogOverhead measures what the wall-clock eventlog
// costs on the native runtime's hot paths. "disabled" is the baseline
// every production run pays: nil-checked hooks and per-worker counter
// bumps only, no event allocation. "enabled" additionally timestamps
// and records every spark/steal/thunk/block event into the per-worker
// rings. Acceptance bound: disabled must stay within 5% of the
// pre-eventlog runtime (compare against a checkout before this change);
// enabled is expected to cost a few percent more.
func BenchmarkNativeEventlogOverhead(b *testing.B) {
	p := benchParams()
	n, chunks := p.SumEulerN, p.SumEulerChunks
	want := euler.SumTotientSieve(n)
	for _, enabled := range []bool{false, true} {
		name := "disabled"
		if enabled {
			name = "enabled"
		}
		b.Run(name, func(b *testing.B) {
			var logged int64
			for i := 0; i < b.N; i++ {
				cfg := native.NewConfig(4)
				cfg.EventLog = enabled
				res, err := native.Run(cfg, euler.Program(n, chunks, 0, true))
				if err != nil {
					b.Fatal(err)
				}
				if res.Value.(int64) != want {
					b.Fatalf("wrong sum: %v", res.Value)
				}
				if enabled {
					logged += int64(res.Report().EventsLogged)
				}
			}
			if enabled {
				b.ReportMetric(float64(logged)/float64(b.N), "events/op")
			}
		})
	}
}

// BenchmarkNativeFaultOverhead proves the fault-injection hooks are
// nil-check-only when no injector is configured: "disabled" (nil
// Config.Faults) is the baseline every production run pays; "armed"
// carries an injector with an empty plan, so every hook runs its cold
// path without ever firing. Acceptance bound: disabled must stay
// within 2% of the pre-faults runtime — the same bar as the eventlog.
func BenchmarkNativeFaultOverhead(b *testing.B) {
	p := benchParams()
	n, chunks := p.SumEulerN, p.SumEulerChunks
	want := euler.SumTotientSieve(n)
	for _, armed := range []bool{false, true} {
		name := "disabled"
		if armed {
			name = "armed_empty"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := native.NewConfig(4)
				if armed {
					cfg.Faults = faults.NewInjector(nil)
				}
				res, err := native.Run(cfg, euler.Program(n, chunks, 0, true))
				if err != nil {
					b.Fatal(err)
				}
				if res.Value.(int64) != want {
					b.Fatalf("wrong sum: %v", res.Value)
				}
			}
		})
	}
}

// BenchmarkMetricsOverhead proves the metrics plane follows the same
// contract as the eventlog and fault hooks: "disabled" (nil
// Config.Metrics) is a nil check on the resident pool's hot paths and
// must stay within noise of the pre-metrics runtime; "enabled" records
// per-job latency histograms and sharded counters and is expected to
// cost low single digits. The measured figures land in
// results/BENCH_native.json (metrics_overhead, via benchall -serve).
func BenchmarkMetricsOverhead(b *testing.B) {
	p := benchParams()
	n, chunks := p.SumEulerN, p.SumEulerChunks
	want := euler.SumTotientSieve(n)
	for _, enabled := range []bool{false, true} {
		name := "disabled"
		if enabled {
			name = "enabled"
		}
		b.Run(name, func(b *testing.B) {
			cfg := native.NewConfig(4)
			if enabled {
				cfg.Metrics = metrics.New()
			}
			pool := native.NewPool(cfg)
			defer pool.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h, err := pool.Submit(native.JobConfig{}, euler.Program(n, chunks, 0, true))
				if err != nil {
					b.Fatal(err)
				}
				res, err := h.Wait()
				if err != nil {
					b.Fatal(err)
				}
				if res.Value.(int64) != want {
					b.Fatalf("wrong sum: %v", res.Value)
				}
			}
		})
	}
}

// BenchmarkNativeSparkHotPath measures the allocation cost of the
// spark hot path: 512 thunks built through the per-worker arenas,
// sparked and forced. The allocs/op this reports is the PR's headline
// number — the pre-arena runtime paid 1989 allocs/op at 4 workers on
// this exact shape (one wrapper closure + one heap Thunk per spark);
// arenas and the closure-free representation cut it to ~half. The
// measured figure is recorded in results/BENCH_native.json (hot_path).
func BenchmarkNativeSparkHotPath(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers_%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := native.Run(native.NewConfig(workers),
					experiments.HotPathProgram(512)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNativeGOGC sweeps the GC target on the allocation-heavy
// sumEuler body — the wall-clock analogue of BenchmarkAblationAllocArea
// (§IV-A.1): a larger target is a larger allocation area, hence fewer
// collections per run.
func BenchmarkNativeGOGC(b *testing.B) {
	p := benchParams()
	n, chunks := p.SumEulerN, p.SumEulerChunks
	want := euler.SumTotientSieve(n)
	for _, gogc := range []int{50, 100, 400, native.GCOff} {
		name := fmt.Sprintf("gogc_%d", gogc)
		if gogc == native.GCOff {
			name = "gogc_off"
		}
		b.Run(name, func(b *testing.B) {
			var gcs int64
			for i := 0; i < b.N; i++ {
				cfg := native.NewConfig(4)
				cfg.GCPercent = gogc
				res, err := native.Run(cfg, euler.Program(n, chunks, 0, true))
				if err != nil {
					b.Fatal(err)
				}
				if res.Value.(int64) != want {
					b.Fatalf("wrong sum: %v", res.Value)
				}
				gcs += res.GC.Cycles
			}
			b.ReportMetric(float64(gcs)/float64(b.N), "gcs/op")
		})
	}
}

// BenchmarkHierarchicalMasterWorker compares a flat farm against the
// two-level hierarchy on many tiny tasks (where the single master is
// the bottleneck the hierarchy exists to remove).
func BenchmarkHierarchicalMasterWorker(b *testing.B) {
	mkTasks := func() []graph.Value {
		tasks := make([]graph.Value, 600)
		for i := range tasks {
			tasks[i] = i
		}
		return tasks
	}
	work := func(w pe.Ctx, task graph.Value) ([]graph.Value, graph.Value) {
		w.Burn(60_000)
		return nil, task
	}
	b.Run("flat_12_workers", func(b *testing.B) {
		var virt int64
		for i := 0; i < b.N; i++ {
			cfg := eden.NewConfig(13, 13)
			res, err := eden.Run(cfg, func(p pe.Ctx) graph.Value {
				return len(skel.MasterWorker(p, "flat", 12, 2, work, mkTasks()))
			})
			if err != nil {
				b.Fatal(err)
			}
			virt += res.Elapsed
		}
		reportVirt(b, virt)
	})
	b.Run("hier_3x4_workers", func(b *testing.B) {
		var virt int64
		for i := 0; i < b.N; i++ {
			cfg := eden.NewConfig(16, 16)
			res, err := eden.Run(cfg, func(p pe.Ctx) graph.Value {
				return len(skel.HierMasterWorker(p, "hier", 3, 4, 2, 0, work, mkTasks()))
			})
			if err != nil {
				b.Fatal(err)
			}
			virt += res.Elapsed
		}
		reportVirt(b, virt)
	})
}
