// Package parhask is a Go reproduction of the runtime systems studied in
// J. Berthold, S. Marlow, K. Hammond and A. D. Al Zain, "Comparing and
// Optimising Parallel Haskell Implementations for Multicore Machines"
// (ICPP 2009).
//
// It implements, on a deterministic discrete-event simulation of a
// multicore machine, the two parallel Haskell runtime models the paper
// compares:
//
//   - GpH on a shared heap: capabilities, par-created sparks,
//     work pushing (GHC 6.8.x) or Chase–Lev work stealing,
//     stop-the-world GC with polling or wakeup barriers, and lazy or
//     eager black-holing (RunGpH, GpHConfig);
//   - Eden on distributed heaps: processing elements with independent
//     local GC, typed channels with normal-form-before-send semantics,
//     streams, and algorithmic skeletons — parMap, parMapReduce,
//     masterWorker, ring, torus (RunEden, EdenConfig).
//
// The three benchmark programs of the paper's evaluation (sumEuler,
// blockwise/Cannon matrix multiplication, ring-pipelined all-pairs
// shortest paths) live in internal/workloads; the experiment drivers
// that regenerate every figure and table live in internal/experiments
// and are runnable via cmd/benchall.
//
// This package is the public facade: it re-exports the types and entry
// points a downstream user needs. See the examples/ directory for
// runnable programs, DESIGN.md for the system inventory and the
// paper-to-module map, and EXPERIMENTS.md for measured-vs-paper results.
package parhask
