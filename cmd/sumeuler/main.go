// Command sumeuler runs the paper's first benchmark — the sum of Euler
// totients φ(k) for k ≤ n — on a chosen runtime configuration:
//
//	sumeuler -n 15000 -cores 8 -rts steal
//	sumeuler -n 15000 -cores 8 -rts eden -pes 8
//	sumeuler -n 15000 -rts plain -trace
//
// It prints the virtual runtime, runtime statistics and (with -trace)
// an EdenTV-style per-capability timeline.
package main

import (
	"flag"
	"fmt"
	"os"

	"parhask/internal/eden"
	"parhask/internal/gph"
	"parhask/internal/gum"
	"parhask/internal/trace"
	"parhask/internal/workloads/euler"
)

func main() {
	n := flag.Int("n", 15000, "sum φ(k) for k in [1..n]")
	cores := flag.Int("cores", 8, "simulated physical cores")
	rts := flag.String("rts", "steal", "runtime: plain | bigalloc | sync | steal | localheaps | gum | eden")
	pes := flag.Int("pes", 0, "Eden PEs (default: cores)")
	chunks := flag.Int("chunks", 300, "GpH chunk count / Eden chunks are 8 per PE")
	eager := flag.Bool("eager", false, "eager black-holing (GpH)")
	showTrace := flag.Bool("trace", false, "print the activity timeline")
	profile := flag.Bool("profile", false, "print the thread-granularity profile (GpH runtimes)")
	width := flag.Int("width", 100, "trace width")
	flag.Parse()

	if *rts == "eden" {
		np := *pes
		if np == 0 {
			np = *cores
		}
		cfg := eden.NewConfig(np, *cores)
		res, err := eden.Run(cfg, euler.EdenProgram(*n, 8, cfg.Costs.GCDIter))
		if err != nil {
			fmt.Fprintln(os.Stderr, "sumeuler:", err)
			os.Exit(1)
		}
		fmt.Printf("sumEuler [1..%d] on Eden, %d PEs / %d cores\n", *n, np, *cores)
		fmt.Printf("result   = %v\n", res.Value)
		fmt.Printf("runtime  = %s (virtual)\n", trace.FmtDur(res.Elapsed))
		fmt.Printf("stats    = %+v\n", res.Stats)
		if *showTrace {
			fmt.Print(res.Trace.Render(*width))
			fmt.Print(res.Trace.Summary())
		}
		return
	}

	if *rts == "gum" {
		np := *pes
		if np == 0 {
			np = *cores
		}
		cfg := gum.NewConfig(np, *cores)
		res, err := gum.Run(cfg, euler.GpHProgram(*n, *chunks, cfg.Costs.GCDIter))
		if err != nil {
			fmt.Fprintln(os.Stderr, "sumeuler:", err)
			os.Exit(1)
		}
		fmt.Printf("sumEuler [1..%d] on GUM (distributed GpH), %d PEs / %d cores\n", *n, np, *cores)
		fmt.Printf("result   = %v\n", res.Value)
		fmt.Printf("runtime  = %s (virtual)\n", trace.FmtDur(res.Elapsed))
		fmt.Printf("stats    = %+v\n", res.Stats)
		if *showTrace {
			fmt.Print(res.Trace.Render(*width))
			fmt.Print(res.Trace.Summary())
		}
		return
	}

	var cfg gph.Config
	switch *rts {
	case "plain":
		cfg = gph.PlainGHC69(*cores)
	case "bigalloc":
		cfg = gph.BigAllocArea(*cores)
	case "sync":
		cfg = gph.ImprovedSync(*cores)
	case "steal":
		cfg = gph.WorkStealingConfig(*cores)
	case "localheaps":
		cfg = gph.LocalHeapsConfig(*cores)
	default:
		fmt.Fprintf(os.Stderr, "sumeuler: unknown -rts %q\n", *rts)
		os.Exit(2)
	}
	cfg.EagerBlackholing = *eager
	res, err := gph.Run(cfg, euler.GpHProgram(*n, *chunks, cfg.Costs.GCDIter))
	if err != nil {
		fmt.Fprintln(os.Stderr, "sumeuler:", err)
		os.Exit(1)
	}
	fmt.Printf("sumEuler [1..%d] on GpH (%s), %d cores, %d chunks\n", *n, *rts, *cores, *chunks)
	fmt.Printf("result   = %v\n", res.Value)
	fmt.Printf("runtime  = %s (virtual)\n", trace.FmtDur(res.Elapsed))
	fmt.Printf("stats    = %+v\n", res.Stats)
	if *profile {
		fmt.Print(res.GranularityProfile().String())
	}
	if *showTrace {
		fmt.Print(res.Trace.Render(*width))
		fmt.Print(res.Trace.Summary())
	}
}
