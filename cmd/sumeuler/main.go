// Command sumeuler runs the paper's first benchmark — the sum of Euler
// totients φ(k) for k ≤ n — on a chosen runtime configuration:
//
//	sumeuler -n 15000 -cores 8 -rts steal
//	sumeuler -n 15000 -cores 8 -rts eden -pes 8
//	sumeuler -n 15000 -rts plain -trace
//	sumeuler -n 15000 -runtime native -workers 8   # real goroutines
//	sumeuler -n 15000 -runtime native -workers 8 -trace       # wall-clock timeline
//	sumeuler -n 15000 -runtime native -workers 8 -stats json  # machine-readable
//	sumeuler -n 15000 -runtime eden -pes 8         # distributed-heap PEs
//	sumeuler -n 15000 -runtime eden -pes 17 -trace # virtual PEs, per-PE timeline
//	sumeuler -runtime eden -faults "seed=7,drop=0.4" -deadline 10s  # chaos replay
//	sumeuler -runtime eden -cluster 3 -pes 2 -transport tcp  # 3 worker processes
//
// -faults injects a deterministic seeded fault plan (internal/faults
// grammar) into the native runtimes, and -deadline arms their deadlock
// watchdog; a failed run prints the structured error and, with -trace,
// the partial timeline up to the failure.
//
// It prints the virtual runtime, runtime statistics and (with -trace)
// an EdenTV-style per-capability timeline. With -runtime native the
// same program body runs on the real work-stealing runtime and the
// wall-clock time is printed next to the simulated virtual time;
// -trace then enables the eventlog and renders a per-worker wall-clock
// timeline, and -stats json emits only the machine-readable per-worker
// counter report on stdout. With -runtime eden the Eden program runs on
// the native distributed-heap backend (one isolated heap per PE, real
// goroutines, copy-on-send channels); -pes may exceed GOMAXPROCS, and
// the same -trace/-stats flags apply. Adding -cluster N runs that same
// Eden program as N separate worker OS processes (-pes PEs each) over
// a real -transport tcp|unix wire: every cross-process message is
// wire-codec bytes whose count equals the charged eden.SizeOfChecked
// size, and a worker killed mid-run surfaces as a structured
// process-death error instead of a hang.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"parhask/internal/cluster"
	"parhask/internal/eden"
	"parhask/internal/faults"
	"parhask/internal/gph"
	"parhask/internal/gum"
	"parhask/internal/native"
	"parhask/internal/nativeeden"
	"parhask/internal/trace"
	"parhask/internal/tune"
	"parhask/internal/workloads/euler"
)

func main() {
	cluster.MaybeWorker()
	n := flag.Int("n", 15000, "sum φ(k) for k in [1..n]")
	cores := flag.Int("cores", 8, "simulated physical cores")
	rts := flag.String("rts", "steal", "runtime: plain | bigalloc | sync | steal | localheaps | gum | eden")
	pes := flag.Int("pes", 0, "Eden PEs (default: cores)")
	chunks := flag.Int("chunks", 300, "GpH chunk count / Eden chunks are 8 per PE")
	eager := flag.Bool("eager", false, "eager black-holing (GpH)")
	showTrace := flag.Bool("trace", false, "print the activity timeline")
	profile := flag.Bool("profile", false, "print the thread-granularity profile (GpH runtimes)")
	width := flag.Int("width", 100, "trace width")
	rtKind := flag.String("runtime", "sim", "execution runtime: sim (virtual time) | native (real goroutines) | eden (distributed-heap PEs on real goroutines)")
	workers := flag.Int("workers", 0, "native worker goroutines (default: GOMAXPROCS)")
	statsFmt := flag.String("stats", "text", "native stats format: text | json (per-worker counters, machine-readable, json output only)")
	faultSpec := flag.String("faults", "", "fault-injection spec for the native runtimes (internal/faults grammar), e.g. \"seed=7,panic-spark=3\"")
	deadline := flag.Duration("deadline", 0, "native deadlock-watchdog deadline, e.g. 10s (0 = disabled)")
	autotune := flag.Bool("autotune", false, "native runtime: run the online controller (dynamic chunking, adaptive backoff, GOGC, parking); -chunks is ignored")
	backoffSpec := flag.String("backoff", "", "native runtime: idle backoff policy, e.g. \"spin=64,min=10us,max=1280us,park=8\" (empty = default)")
	clusterN := flag.Int("cluster", 0, "run -runtime eden as N separate worker OS processes, -pes PEs each (0 = single process)")
	transport := flag.String("transport", "tcp", "cluster transport: tcp | unix")
	restarts := flag.Int("restarts", 0, "cluster restart budget: respawn the workers and retry the run up to N times after a process death (0 = fail on the first death)")
	reconnect := flag.Bool("reconnect", true, "cluster: let a worker whose link breaks redial and resume in place")
	flag.Parse()

	if err := cluster.CheckFlags(*rtKind, *clusterN, *transport, *restarts); err != nil {
		fmt.Fprintln(os.Stderr, "sumeuler:", err)
		os.Exit(2)
	}
	inj, ferr := faults.CLIInjector(*faultSpec, *deadline, *rtKind)
	if ferr != nil {
		fmt.Fprintln(os.Stderr, "sumeuler:", ferr)
		os.Exit(2)
	}
	// Fail fast: the tuning flags only mean something on the native
	// work-stealing runtime, and a bad -backoff spec must not start a run.
	if (*autotune || *backoffSpec != "") && *rtKind != "native" {
		fmt.Fprintf(os.Stderr, "sumeuler: -autotune/-backoff require -runtime native (got %q)\n", *rtKind)
		os.Exit(2)
	}
	var backoff *tune.Backoff
	if *backoffSpec != "" {
		var berr error
		if backoff, berr = tune.ParseBackoff(*backoffSpec); berr != nil {
			fmt.Fprintln(os.Stderr, "sumeuler: -backoff:", berr)
			os.Exit(2)
		}
	}

	if *rtKind == "native" {
		ncfg := native.NewConfig(*workers)
		ncfg.EagerBlackholing = *eager
		ncfg.EventLog = *showTrace
		ncfg.Faults = inj
		ncfg.Deadline = *deadline
		ncfg.Backoff = backoff
		prog := euler.Program(*n, *chunks, 0, true)
		if *autotune {
			sp := tune.NewSplitter("sumeuler", *n / *chunks, 1, *n)
			ncfg.Autotune = &native.AutotuneConfig{Splitters: []*tune.Splitter{sp}}
			prog = euler.AutoProgram(*n, sp)
		}
		res, err := native.Run(ncfg, prog)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sumeuler:", err)
			if res != nil && *showTrace {
				if tl := res.Trace(); tl != nil {
					fmt.Printf("partial timeline of the failed run:\n")
					fmt.Print(tl.Render(*width))
					fmt.Print(tl.Summary())
				}
			}
			os.Exit(1)
		}
		if want := euler.SumTotientSieve(*n); res.Value.(int64) != want {
			fmt.Fprintf(os.Stderr, "sumeuler: native result %v != sieve oracle %d\n", res.Value, want)
			os.Exit(1)
		}
		if *statsFmt == "json" {
			out, jerr := json.MarshalIndent(res.Report(), "", "  ")
			if jerr != nil {
				fmt.Fprintln(os.Stderr, "sumeuler:", jerr)
				os.Exit(1)
			}
			fmt.Println(string(out))
			return
		}
		bh := "lazy"
		if *eager {
			bh = "eager"
		}
		fmt.Printf("sumEuler [1..%d] on native runtime, %d workers, %d chunks (%s blackholing)\n",
			*n, res.Workers, *chunks, bh)
		fmt.Printf("result   = %v (verified against sieve oracle)\n", res.Value)
		scfg := gph.WorkStealingConfig(*cores)
		scfg.EagerBlackholing = *eager
		sres, serr := gph.Run(scfg, euler.GpHProgram(*n, *chunks, scfg.Costs.GCDIter))
		if serr == nil {
			fmt.Printf("runtime  = %v (wall clock)   vs %s (virtual, steal/%d cores)\n",
				res.Wall(), trace.FmtDur(sres.Elapsed), *cores)
		} else {
			fmt.Printf("runtime  = %v (wall clock)\n", res.Wall())
		}
		fmt.Printf("stats    = %+v\n", res.Stats)
		if at := res.Autotune; at != nil {
			fmt.Printf("autotune = %d decisions, grains=%v, backoff level %d (park=%d), gogc=%d\n",
				len(at.Decisions), at.Grains, at.BackoffLevel, at.ParkAfter, at.GOGC)
		}
		if *showTrace {
			tl := res.Trace()
			fmt.Print(tl.Render(*width))
			fmt.Print(tl.Summary())
		}
		return
	}
	if *clusterN > 0 {
		perProc := *pes
		if perProc <= 0 {
			perProc = 2
		}
		ccfg := cluster.Config{
			Procs: *clusterN, PerProc: perProc, Transport: *transport,
			Spec:   fmt.Sprintf("sumeuler?n=%d&chunks=8", *n),
			Faults: *faultSpec, EventLog: *showTrace, Deadline: *deadline,
		}
		if *restarts > 0 {
			ccfg.Restart = &cluster.Restart{Max: *restarts}
		}
		if !*reconnect {
			ccfg.ReconnectWindow = -1
		}
		res, err := cluster.RunSupervised(ccfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sumeuler:", err)
			os.Exit(1)
		}
		if want := euler.SumTotientSieve(*n); res.Value.(int64) != want {
			fmt.Fprintf(os.Stderr, "sumeuler: cluster result %v != sieve oracle %d\n", res.Value, want)
			os.Exit(1)
		}
		if *statsFmt == "json" {
			out, jerr := json.MarshalIndent(res, "", "  ")
			if jerr != nil {
				fmt.Fprintln(os.Stderr, "sumeuler:", jerr)
				os.Exit(1)
			}
			fmt.Println(string(out))
			return
		}
		fmt.Printf("sumEuler [1..%d] on a %d-process Eden cluster (%s), %d PEs per process\n",
			*n, res.Procs, *transport, res.PerProc)
		fmt.Printf("result   = %v (verified against sieve oracle)\n", res.Value)
		fmt.Printf("runtime  = %v (root wall clock; %v including launch and drain)\n",
			time.Duration(res.WallNS), time.Duration(res.CoordNS))
		fmt.Printf("stats    = %+v\n", res.Total)
		if s := res.RecoverySummary(); s != "" {
			fmt.Print(s)
		}
		if *showTrace {
			if tl, terr := res.TraceLog(); terr == nil && tl != nil {
				fmt.Print(tl.Render(*width))
				fmt.Print(tl.Summary())
			}
		}
		return
	}
	if *rtKind == "eden" {
		ecfg := nativeeden.NewConfig(*pes)
		ecfg.EventLog = *showTrace
		ecfg.Faults = inj
		ecfg.Deadline = *deadline
		res, err := nativeeden.Run(ecfg, euler.EdenProgram(*n, 8, 0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "sumeuler:", err)
			if res != nil && *showTrace {
				if tl := res.Trace(); tl != nil {
					fmt.Printf("partial timeline of the failed run:\n")
					fmt.Print(tl.Render(*width))
					fmt.Print(tl.Summary())
				}
			}
			os.Exit(1)
		}
		if want := euler.SumTotientSieve(*n); res.Value.(int64) != want {
			fmt.Fprintf(os.Stderr, "sumeuler: eden-native result %v != sieve oracle %d\n", res.Value, want)
			os.Exit(1)
		}
		if *statsFmt == "json" {
			out, jerr := json.MarshalIndent(res.Report(), "", "  ")
			if jerr != nil {
				fmt.Fprintln(os.Stderr, "sumeuler:", jerr)
				os.Exit(1)
			}
			fmt.Println(string(out))
			return
		}
		fmt.Printf("sumEuler [1..%d] on native Eden, %d PEs (distributed heaps, real goroutines)\n",
			*n, res.PEs)
		fmt.Printf("result   = %v (verified against sieve oracle)\n", res.Value)
		fmt.Printf("runtime  = %v (wall clock)\n", res.Wall())
		fmt.Printf("stats    = %+v\n", res.Stats)
		if *showTrace {
			tl := res.Trace()
			fmt.Print(tl.Render(*width))
			fmt.Print(tl.Summary())
		}
		return
	}
	if *rtKind != "sim" {
		fmt.Fprintf(os.Stderr, "sumeuler: unknown -runtime %q\n", *rtKind)
		os.Exit(2)
	}

	if *rts == "eden" {
		np := *pes
		if np == 0 {
			np = *cores
		}
		cfg := eden.NewConfig(np, *cores)
		res, err := eden.Run(cfg, euler.EdenProgram(*n, 8, cfg.Costs.GCDIter))
		if err != nil {
			fmt.Fprintln(os.Stderr, "sumeuler:", err)
			os.Exit(1)
		}
		fmt.Printf("sumEuler [1..%d] on Eden, %d PEs / %d cores\n", *n, np, *cores)
		fmt.Printf("result   = %v\n", res.Value)
		fmt.Printf("runtime  = %s (virtual)\n", trace.FmtDur(res.Elapsed))
		fmt.Printf("stats    = %+v\n", res.Stats)
		if *showTrace {
			fmt.Print(res.Trace.Render(*width))
			fmt.Print(res.Trace.Summary())
		}
		return
	}

	if *rts == "gum" {
		np := *pes
		if np == 0 {
			np = *cores
		}
		cfg := gum.NewConfig(np, *cores)
		res, err := gum.Run(cfg, euler.GpHProgram(*n, *chunks, cfg.Costs.GCDIter))
		if err != nil {
			fmt.Fprintln(os.Stderr, "sumeuler:", err)
			os.Exit(1)
		}
		fmt.Printf("sumEuler [1..%d] on GUM (distributed GpH), %d PEs / %d cores\n", *n, np, *cores)
		fmt.Printf("result   = %v\n", res.Value)
		fmt.Printf("runtime  = %s (virtual)\n", trace.FmtDur(res.Elapsed))
		fmt.Printf("stats    = %+v\n", res.Stats)
		if *showTrace {
			fmt.Print(res.Trace.Render(*width))
			fmt.Print(res.Trace.Summary())
		}
		return
	}

	var cfg gph.Config
	switch *rts {
	case "plain":
		cfg = gph.PlainGHC69(*cores)
	case "bigalloc":
		cfg = gph.BigAllocArea(*cores)
	case "sync":
		cfg = gph.ImprovedSync(*cores)
	case "steal":
		cfg = gph.WorkStealingConfig(*cores)
	case "localheaps":
		cfg = gph.LocalHeapsConfig(*cores)
	default:
		fmt.Fprintf(os.Stderr, "sumeuler: unknown -rts %q\n", *rts)
		os.Exit(2)
	}
	cfg.EagerBlackholing = *eager
	res, err := gph.Run(cfg, euler.GpHProgram(*n, *chunks, cfg.Costs.GCDIter))
	if err != nil {
		fmt.Fprintln(os.Stderr, "sumeuler:", err)
		os.Exit(1)
	}
	fmt.Printf("sumEuler [1..%d] on GpH (%s), %d cores, %d chunks\n", *n, *rts, *cores, *chunks)
	fmt.Printf("result   = %v\n", res.Value)
	fmt.Printf("runtime  = %s (virtual)\n", trace.FmtDur(res.Elapsed))
	fmt.Printf("stats    = %+v\n", res.Stats)
	if *profile {
		fmt.Print(res.GranularityProfile().String())
	}
	if *showTrace {
		fmt.Print(res.Trace.Render(*width))
		fmt.Print(res.Trace.Summary())
	}
}
