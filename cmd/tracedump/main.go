// Command tracedump renders the paper's trace figures (Figs. 2 and 4)
// as ASCII timelines, or exports the raw segments for external plotting:
//
//	tracedump -experiment sumeuler          # Fig. 2 (five sumEuler traces)
//	tracedump -experiment matmul            # Fig. 4 (five matmul traces)
//	tracedump -experiment sumeuler -quick   # scaled-down parameters
//	tracedump -experiment matmul -format csv   # segment dump (EdenTV-style)
//	tracedump -experiment matmul -format json
//
// With -native it renders a *wall-clock* timeline instead: the workload
// runs on the real-goroutine work-stealing runtime with the eventlog
// enabled, and the reduced per-worker trace goes through the same
// exporters (so the native run draws exactly like the simulated
// figures, except that its shape is machine-dependent):
//
//	tracedump -native sumeuler -workers 4
//	tracedump -native apsp -workers 8 -format html > apsp.html
//
// With -edennative it renders the GpH-native and Eden-native wall-clock
// timelines of one workload back to back — the real-hardware version of
// the paper's GpH-vs-Eden trace comparison (message traffic shows up as
// the Eden timeline's comm bands):
//
//	tracedump -edennative sumeuler -pes 4 -format html > headtohead.html
//
// With -faults (internal/faults spec grammar) and -deadline the native
// runs execute under deterministic fault injection with the deadlock
// watchdog armed; a failed run still renders — the partial timeline up
// to the crash or diagnosed deadlock is emitted (the post-mortem view)
// and tracedump exits non-zero:
//
//	tracedump -native sumeuler -faults "seed=7,panic-spark=3" -deadline 10s
//
// With -job it renders one request's cross-worker timeline fetched from
// a *live* server (the job must have been submitted with "trace":true;
// its response carries the trace id):
//
//	tracedump -job t-17 -server http://localhost:8080
//	tracedump -job t-17 -server http://localhost:8080 -format html > job.html
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"parhask/internal/eventlog"
	"parhask/internal/experiments"
	"parhask/internal/faults"
)

// fetchJobTrace pulls a stored per-job dump from a running server and
// reconstructs its timeline, exactly as the serve tests do in-process.
func fetchJobTrace(server, id string, width int) (experiments.TraceEntry, error) {
	var e experiments.TraceEntry
	url := strings.TrimRight(server, "/") + "/api/v1/trace?id=" + id
	c := &http.Client{Timeout: 30 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return e, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return e, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var d eventlog.Dump
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		return e, fmt.Errorf("decode trace dump: %v", err)
	}
	rl, err := d.Log()
	if err != nil {
		return e, err
	}
	tl := rl.TraceAgents(d.Agents)
	name := fmt.Sprintf("job %s: %s on %s (tenant %s)", d.TraceID, d.Workload, d.Backend, d.Tenant)
	if d.Error != "" {
		name += " [failed: " + d.Error + "]"
	}
	e = experiments.TraceEntry{
		Name: name, Elapsed: d.WallNS, Trace: tl,
		Rendered: tl.Render(width), Summary: tl.Summary(),
	}
	return e, nil
}

func main() {
	exp := flag.String("experiment", "sumeuler", "sumeuler (Fig. 2) or matmul (Fig. 4)")
	nativeWl := flag.String("native", "", "render a wall-clock native-runtime timeline instead: sumeuler | matmul | apsp")
	edenWl := flag.String("edennative", "", "render the GpH-native vs Eden-native timelines of a workload: sumeuler | matmul | apsp")
	workers := flag.Int("workers", 0, "native worker goroutines (default: GOMAXPROCS)")
	pes := flag.Int("pes", 0, "Eden-native processing elements (default: GOMAXPROCS)")
	eager := flag.Bool("eager", true, "native black-holing policy (eager claim vs lazy baseline)")
	quick := flag.Bool("quick", false, "use scaled-down parameters")
	width := flag.Int("width", 100, "trace width in columns")
	format := flag.String("format", "ascii", "ascii | csv | json | html")
	faultSpec := flag.String("faults", "", "fault-injection spec for -native/-edennative runs (internal/faults grammar)")
	deadline := flag.Duration("deadline", 0, "deadlock-watchdog deadline for -native/-edennative runs (0 = disabled)")
	jobID := flag.String("job", "", "render a traced job's timeline fetched from a live server (trace id, e.g. t-17)")
	server := flag.String("server", "http://localhost:8080", "server base URL for -job")
	flag.Parse()

	p := experiments.Defaults()
	if *quick {
		p = experiments.Quick()
	}
	p.TraceWidth = *width

	// Fail fast on the fault flags, before any run starts.
	if *faultSpec != "" || *deadline != 0 {
		if *nativeWl == "" && *edenWl == "" {
			fmt.Fprintln(os.Stderr, "tracedump: -faults/-deadline apply only to -native or -edennative timelines")
			os.Exit(2)
		}
		if _, err := faults.CLIInjector(*faultSpec, *deadline, "native"); err != nil {
			fmt.Fprintln(os.Stderr, "tracedump:", err)
			os.Exit(2)
		}
		p.FaultSpec = *faultSpec
		p.Deadline = *deadline
	}

	// keepPartial decides what to do with a failed timeline run: a
	// failure that still produced a trace (fault injection, deadlock)
	// is rendered as a partial timeline; one without a trace is fatal.
	runFailed := false
	keepPartial := func(e experiments.TraceEntry, err error) experiments.TraceEntry {
		if err == nil {
			return e
		}
		fmt.Fprintln(os.Stderr, "tracedump:", err)
		if e.Trace == nil {
			os.Exit(2)
		}
		runFailed = true
		return e
	}

	var entries []experiments.TraceEntry
	var rendered string
	if *jobID != "" {
		e, err := fetchJobTrace(*server, *jobID, *width)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracedump:", err)
			os.Exit(2)
		}
		entries = []experiments.TraceEntry{e}
		rendered = fmt.Sprintf("%s\n%s\n%s", e.Name, e.Rendered, e.Summary)
	} else if *edenWl != "" {
		ge, _, err := experiments.NativeTimeline(p, *edenWl, *workers, *eager)
		ge = keepPartial(ge, err)
		ee, _, err := experiments.EdenNativeTimeline(p, *edenWl, *pes)
		ee = keepPartial(ee, err)
		entries = []experiments.TraceEntry{ge, ee}
		rendered = fmt.Sprintf("%s\n%s\n%s\n\n%s\n%s\n%s",
			ge.Name, ge.Rendered, ge.Summary, ee.Name, ee.Rendered, ee.Summary)
	} else if *nativeWl != "" {
		e, _, err := experiments.NativeTimeline(p, *nativeWl, *workers, *eager)
		e = keepPartial(e, err)
		entries = []experiments.TraceEntry{e}
		rendered = fmt.Sprintf("%s\n%s\n%s", e.Name, e.Rendered, e.Summary)
	} else {
		switch *exp {
		case "sumeuler":
			f := experiments.RunFig2(p)
			entries, rendered = f.Entries, f.String()
		case "matmul":
			f := experiments.RunFig4(p)
			entries, rendered = f.Entries, f.String()
		default:
			fmt.Fprintf(os.Stderr, "tracedump: unknown -experiment %q (want sumeuler or matmul)\n", *exp)
			os.Exit(2)
		}
	}

	switch *format {
	case "ascii":
		fmt.Println(rendered)
	case "csv":
		for _, e := range entries {
			fmt.Printf("# %s\n", e.Name)
			if err := e.Trace.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "tracedump:", err)
				os.Exit(1)
			}
		}
	case "json":
		for _, e := range entries {
			fmt.Printf("// %s\n", e.Name)
			if err := e.Trace.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "tracedump:", err)
				os.Exit(1)
			}
		}
	case "html":
		for _, e := range entries {
			if err := e.Trace.WriteHTML(os.Stdout, e.Name); err != nil {
				fmt.Fprintln(os.Stderr, "tracedump:", err)
				os.Exit(1)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "tracedump: unknown -format %q\n", *format)
		os.Exit(2)
	}
	if runFailed {
		// The partial timeline was rendered; still signal the failure.
		os.Exit(1)
	}
}
