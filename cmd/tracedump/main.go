// Command tracedump renders the paper's trace figures (Figs. 2 and 4)
// as ASCII timelines, or exports the raw segments for external plotting:
//
//	tracedump -experiment sumeuler          # Fig. 2 (five sumEuler traces)
//	tracedump -experiment matmul            # Fig. 4 (five matmul traces)
//	tracedump -experiment sumeuler -quick   # scaled-down parameters
//	tracedump -experiment matmul -format csv   # segment dump (EdenTV-style)
//	tracedump -experiment matmul -format json
//
// With -native it renders a *wall-clock* timeline instead: the workload
// runs on the real-goroutine work-stealing runtime with the eventlog
// enabled, and the reduced per-worker trace goes through the same
// exporters (so the native run draws exactly like the simulated
// figures, except that its shape is machine-dependent):
//
//	tracedump -native sumeuler -workers 4
//	tracedump -native apsp -workers 8 -format html > apsp.html
//
// With -edennative it renders the GpH-native and Eden-native wall-clock
// timelines of one workload back to back — the real-hardware version of
// the paper's GpH-vs-Eden trace comparison (message traffic shows up as
// the Eden timeline's comm bands):
//
//	tracedump -edennative sumeuler -pes 4 -format html > headtohead.html
package main

import (
	"flag"
	"fmt"
	"os"

	"parhask/internal/experiments"
)

func main() {
	exp := flag.String("experiment", "sumeuler", "sumeuler (Fig. 2) or matmul (Fig. 4)")
	nativeWl := flag.String("native", "", "render a wall-clock native-runtime timeline instead: sumeuler | matmul | apsp")
	edenWl := flag.String("edennative", "", "render the GpH-native vs Eden-native timelines of a workload: sumeuler | matmul | apsp")
	workers := flag.Int("workers", 0, "native worker goroutines (default: GOMAXPROCS)")
	pes := flag.Int("pes", 0, "Eden-native processing elements (default: GOMAXPROCS)")
	eager := flag.Bool("eager", true, "native black-holing policy (eager claim vs lazy baseline)")
	quick := flag.Bool("quick", false, "use scaled-down parameters")
	width := flag.Int("width", 100, "trace width in columns")
	format := flag.String("format", "ascii", "ascii | csv | json | html")
	flag.Parse()

	p := experiments.Defaults()
	if *quick {
		p = experiments.Quick()
	}
	p.TraceWidth = *width

	var entries []experiments.TraceEntry
	var rendered string
	if *edenWl != "" {
		ge, _, err := experiments.NativeTimeline(p, *edenWl, *workers, *eager)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracedump:", err)
			os.Exit(2)
		}
		ee, _, err := experiments.EdenNativeTimeline(p, *edenWl, *pes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracedump:", err)
			os.Exit(2)
		}
		entries = []experiments.TraceEntry{ge, ee}
		rendered = fmt.Sprintf("%s\n%s\n%s\n\n%s\n%s\n%s",
			ge.Name, ge.Rendered, ge.Summary, ee.Name, ee.Rendered, ee.Summary)
	} else if *nativeWl != "" {
		e, _, err := experiments.NativeTimeline(p, *nativeWl, *workers, *eager)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracedump:", err)
			os.Exit(2)
		}
		entries = []experiments.TraceEntry{e}
		rendered = fmt.Sprintf("%s\n%s\n%s", e.Name, e.Rendered, e.Summary)
	} else {
		switch *exp {
		case "sumeuler":
			f := experiments.RunFig2(p)
			entries, rendered = f.Entries, f.String()
		case "matmul":
			f := experiments.RunFig4(p)
			entries, rendered = f.Entries, f.String()
		default:
			fmt.Fprintf(os.Stderr, "tracedump: unknown -experiment %q (want sumeuler or matmul)\n", *exp)
			os.Exit(2)
		}
	}

	switch *format {
	case "ascii":
		fmt.Println(rendered)
	case "csv":
		for _, e := range entries {
			fmt.Printf("# %s\n", e.Name)
			if err := e.Trace.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "tracedump:", err)
				os.Exit(1)
			}
		}
	case "json":
		for _, e := range entries {
			fmt.Printf("// %s\n", e.Name)
			if err := e.Trace.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "tracedump:", err)
				os.Exit(1)
			}
		}
	case "html":
		for _, e := range entries {
			if err := e.Trace.WriteHTML(os.Stdout, e.Name); err != nil {
				fmt.Fprintln(os.Stderr, "tracedump:", err)
				os.Exit(1)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "tracedump: unknown -format %q\n", *format)
		os.Exit(2)
	}
}
