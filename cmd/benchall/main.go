// Command benchall regenerates every table and figure of the paper's
// evaluation section (§V):
//
//	benchall             # all figures at full paper scale
//	benchall -fig 1      # just the Fig. 1 runtime table
//	benchall -quick      # scaled-down parameters (seconds, for smoke tests)
//	benchall -matmul 1008 -matmulblock 72   # paper-size matrices
//	benchall -native     # wall-clock sweep on the native runtime
//	benchall -native -gogc 50,100,200,400,off   # + the §IV-A.1 allocation-area sweep
//	benchall -autotune   # + self-tuning sweep: hand-tuned vs online controller
//	benchall -edennative # + GpH-native vs Eden-native head-to-head
//	benchall -faultoverhead                     # + disabled-vs-armed fault-plane cost
//	benchall -serve      # + resident-service bench: sustained load + chaos under traffic
//	benchall -quick -chaos 500                  # seeded chaos soak (exit 1 on violations)
//	benchall -quick -cluster -chaos 16          # chaos under the cluster: supervised recovery soak
//	benchall -quick -faults "seed=7,drop=0.4" -faultbackend nativeeden   # replay one seed
//
// Output is text: runtime tables, ASCII timeline traces and speedup
// tables/charts, each followed by a shape check against the paper's
// qualitative claims. -native additionally writes the machine-readable
// sweep to results/BENCH_native.json — per row the aggregate wall time
// plus the per-worker counter breakdown (steals, converted sparks,
// duplicate entries, leftover pool sizes), so steal balance and the
// lazy-black-holing cost are inspectable per worker, not just in total.
package main

import (
	"flag"
	"fmt"
	"os"

	"parhask/internal/cluster"
	"parhask/internal/experiments"
	"parhask/internal/faults"
)

func main() {
	// The cluster sweep re-executes this binary as its worker processes.
	cluster.MaybeWorker()
	fig := flag.Int("fig", 0, "figure to regenerate (1-5); 0 = all")
	quick := flag.Bool("quick", false, "use scaled-down parameters")
	sumN := flag.Int("sumeuler", 0, "override sumEuler bound (paper: 15000)")
	chunks := flag.Int("chunks", 0, "override GpH sumEuler chunk count")
	matN := flag.Int("matmul", 0, "override matrix size (paper: 1000/2000; must be divisible by 12 and by -matmulblock)")
	matB := flag.Int("matmulblock", 0, "override GpH matmul block size")
	apspN := flag.Int("apsp", 0, "override APSP node count (paper: 400)")
	width := flag.Int("width", 0, "trace width in columns")
	models := flag.Bool("models", false, "also run the beyond-the-paper runtime-organisation comparison")
	latency := flag.Bool("latency", false, "also run the shared-memory-to-cluster latency study")
	nativeSweep := flag.Bool("native", false, "also run the wall-clock native-runtime sweep (writes results/BENCH_native.json)")
	edenNative := flag.Bool("edennative", false, "also run the GpH-native vs Eden-native head-to-head (implies -native)")
	gogc := flag.String("gogc", "", "comma-separated GOGC settings for the allocation-area sweep, e.g. 50,100,200,400,off (implies -native)")
	faultOverhead := flag.Bool("faultoverhead", false, "also measure the disabled-vs-armed fault-plane overhead (implies -native)")
	serveBench := flag.Bool("serve", false, "also run the resident-service benchmark: sustained concurrent load + chaos under traffic (implies -native)")
	autotuneSweep := flag.Bool("autotune", false, "also run the self-tuning sweep: hand-tuned vs online-controller rows with the decision trace (implies -native)")
	clusterSweep := flag.Bool("cluster", false, "also run the multi-process Eden cluster sweep over a real socket transport (implies -native); with -chaos N, run the chaos-under-cluster soak instead")
	transport := flag.String("transport", "tcp", "cluster sweep transport: tcp | unix")
	restarts := flag.Int("restarts", 2, "cluster restart budget per supervised run in the chaos-under-cluster soak")
	reconnect := flag.Bool("reconnect", true, "cluster: let workers whose links break redial and resume in place")
	chaosIters := flag.Int("chaos", 0, "run an N-iteration seeded chaos soak over both native backends instead of the figures (writes results/CHAOS.html + .json; exits non-zero on violations)")
	chaosSeed := flag.Uint64("chaosseed", 42, "chaos soak master seed")
	faultSpec := flag.String("faults", "", "replay one fault-injected run from a spec (internal/faults grammar) instead of the figures")
	faultBackend := flag.String("faultbackend", "native", "backend for the -faults replay: native | nativeeden")
	deadline := flag.Duration("deadline", 0, "deadlock-watchdog deadline for -faults replays (0 = the soak's 10s default)")
	flag.Parse()

	p := experiments.Defaults()
	if *quick {
		p = experiments.Quick()
	}
	if *sumN > 0 {
		p.SumEulerN = *sumN
	}
	if *chunks > 0 {
		p.SumEulerChunks = *chunks
	}
	if *matN > 0 {
		if *matN%12 != 0 {
			fmt.Fprintln(os.Stderr, "benchall: -matmul must be divisible by 12 (3x3 and 4x4 tori)")
			os.Exit(2)
		}
		p.MatMulN = *matN
	}
	if *matB > 0 {
		if p.MatMulN%*matB != 0 {
			fmt.Fprintln(os.Stderr, "benchall: -matmulblock must divide the matrix size")
			os.Exit(2)
		}
		p.MatMulBlock = *matB
	}
	if *apspN > 0 {
		p.APSPNodes = *apspN
	}
	if *width > 0 {
		p.TraceWidth = *width
	}

	// Validate the GOGC list before any long-running figure.
	var gogcSettings []int
	if *gogc != "" {
		var err error
		if gogcSettings, err = experiments.ParseGOGCList(*gogc); err != nil {
			fmt.Fprintln(os.Stderr, "benchall:", err)
			os.Exit(2)
		}
	}

	// Fail fast on the fault flags too.
	if *faultSpec != "" || *deadline != 0 {
		if _, err := faults.CLIInjector(*faultSpec, *deadline, "native"); err != nil {
			fmt.Fprintln(os.Stderr, "benchall:", err)
			os.Exit(2)
		}
		p.FaultSpec = *faultSpec
		p.Deadline = *deadline
	}
	if *faultBackend != "native" && *faultBackend != "nativeeden" {
		fmt.Fprintf(os.Stderr, "benchall: unknown -faultbackend %q (want native or nativeeden)\n", *faultBackend)
		os.Exit(2)
	}
	if *chaosIters < 0 {
		fmt.Fprintln(os.Stderr, "benchall: -chaos must be non-negative")
		os.Exit(2)
	}
	// Fail fast on the cluster flags: the sweep spawns real processes,
	// so a bad transport must die before any figure runs.
	if *clusterSweep {
		if err := cluster.CheckFlags("eden", 1, *transport, *restarts); err != nil {
			fmt.Fprintln(os.Stderr, "benchall:", err)
			os.Exit(2)
		}
	}

	// Chaos modes run standalone (no figures): a single replay, a full
	// soak, or both. The soak's exit code is its verdict, so CI can use
	// it as a hard gate.
	if *faultSpec != "" || *chaosIters > 0 {
		exit := 0
		if *faultSpec != "" {
			row := experiments.ReplayFault(p, *faultBackend)
			fmt.Printf("fault replay on %s: %s\n  spec   %s\n", row.Backend, row.Outcome, row.Spec)
			if row.Detail != "" {
				fmt.Printf("  detail %s\n", row.Detail)
			}
			if row.Outcome == experiments.ChaosViolation {
				exit = 1
			}
		}
		if *chaosIters > 0 && *clusterSweep {
			// Chaos under the cluster: supervised multi-process runs with
			// ranks killed, flapped, severed and wedged. The soak report is
			// the recovery-trace artifact, and it also lands under
			// cluster.chaos in results/BENCH_native.json so the sweep file
			// carries its own robustness evidence.
			c := experiments.RunClusterChaos(p, *chaosIters, *chaosSeed, *transport, *restarts, *reconnect)
			fmt.Println(c.String())
			if err := os.MkdirAll("results", 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "benchall: mkdir results:", err)
			} else {
				if data, err := c.JSON(); err == nil {
					if err := os.WriteFile("results/CHAOS_cluster.json", data, 0o644); err != nil {
						fmt.Fprintln(os.Stderr, "benchall: write results/CHAOS_cluster.json:", err)
					} else {
						fmt.Println("wrote results/CHAOS_cluster.json")
					}
				}
				if err := experiments.MergeClusterChaos("results/BENCH_native.json", c); err != nil {
					fmt.Fprintln(os.Stderr, "benchall:", err)
				} else {
					fmt.Println("merged the soak into results/BENCH_native.json under cluster.chaos")
				}
			}
			if c.Violations > 0 {
				exit = 1
			}
		} else if *chaosIters > 0 {
			s := experiments.RunChaosSoak(p, *chaosIters, *chaosSeed)
			fmt.Println(s.String())
			if err := os.MkdirAll("results", 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "benchall: mkdir results:", err)
			} else {
				if err := os.WriteFile("results/CHAOS.html", s.HTML(), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, "benchall: write results/CHAOS.html:", err)
				} else {
					fmt.Println("wrote results/CHAOS.html")
				}
				if data, err := s.JSON(); err == nil {
					if err := os.WriteFile("results/CHAOS.json", data, 0o644); err != nil {
						fmt.Fprintln(os.Stderr, "benchall: write results/CHAOS.json:", err)
					} else {
						fmt.Println("wrote results/CHAOS.json")
					}
				}
			}
			if s.Violations > 0 {
				exit = 1
			}
		}
		os.Exit(exit)
	}

	want := func(n int) bool { return *fig == 0 || *fig == n }
	if want(1) {
		fmt.Println(experiments.RunFig1(p).String())
	}
	if want(2) {
		fmt.Println(experiments.RunFig2(p).String())
	}
	if want(3) {
		fmt.Println(experiments.RunFig3(p).String())
	}
	if want(4) {
		fmt.Println(experiments.RunFig4(p).String())
	}
	if want(5) {
		fmt.Println(experiments.RunFig5(p).String())
	}
	if *models {
		fmt.Println(experiments.RunModels(p).String())
	}
	if *latency {
		fmt.Println(experiments.RunLatencyStudy(p).String())
	}
	if *nativeSweep || *edenNative || *faultOverhead || *serveBench || *autotuneSweep || *clusterSweep || len(gogcSettings) > 0 {
		s := experiments.RunNativeSweep(p)
		s.HotPath = experiments.MeasureSparkHotPath()
		if len(gogcSettings) > 0 {
			s.GOGC = experiments.RunGOGCSweep(p, gogcSettings)
		}
		if *edenNative {
			s.EdenNative = experiments.RunEdenNativeSweep(p)
		}
		if *clusterSweep {
			s.Cluster = experiments.RunClusterSweep(p, *transport)
		}
		if *faultOverhead {
			s.FaultOverhead = experiments.MeasureFaultOverhead()
		}
		if *serveBench {
			s.Service = experiments.RunServiceBench(p)
			s.MetricsOverhead = experiments.MeasureMetricsOverhead()
		}
		if *autotuneSweep {
			s.Autotune = experiments.RunAutotuneSweep(p)
		}
		fmt.Println(s.String())
		if data, err := s.JSON(); err == nil {
			if err := os.MkdirAll("results", 0o755); err == nil {
				if err := os.WriteFile("results/BENCH_native.json", data, 0o644); err != nil {
					fmt.Fprintln(os.Stderr, "benchall: write results/BENCH_native.json:", err)
				} else {
					fmt.Println("wrote results/BENCH_native.json")
				}
			} else {
				fmt.Fprintln(os.Stderr, "benchall: mkdir results:", err)
			}
		} else {
			fmt.Fprintln(os.Stderr, "benchall: marshal native sweep:", err)
		}
	}
	if *fig < 0 || *fig > 5 {
		fmt.Fprintln(os.Stderr, "benchall: -fig must be 0..5")
		os.Exit(2)
	}
}
