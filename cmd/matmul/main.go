// Command matmul runs the paper's second benchmark — dense matrix
// multiplication — on a chosen runtime configuration:
//
//	matmul -n 396 -cores 8 -rts steal -block 33
//	matmul -n 396 -cores 8 -rts eden -q 4 -pes 17    # Fig. 4 e)
//	matmul -n 1008 -block 72 -rts plain -trace       # paper-size
//	matmul -n 396 -runtime native -workers 8         # real goroutines
//	matmul -runtime eden -cluster 4 -q 2 -pes 2      # multi-process torus
//
// The GpH versions spark result blocks; the Eden version runs Cannon's
// algorithm on a q×q torus. Results are verified against a sequential
// oracle for n ≤ 512. With -runtime native the block program runs on
// the real work-stealing runtime and the wall-clock time is printed
// next to the simulated virtual time; -trace then enables the eventlog
// and renders a per-worker wall-clock timeline, and -stats json emits
// only the machine-readable per-worker counter report on stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"parhask/internal/cluster"
	"parhask/internal/eden"
	"parhask/internal/faults"
	"parhask/internal/gph"
	"parhask/internal/native"
	"parhask/internal/nativeeden"
	"parhask/internal/trace"
	"parhask/internal/tune"
	"parhask/internal/workloads/matmul"
)

func main() {
	cluster.MaybeWorker()
	n := flag.Int("n", 396, "matrix dimension")
	block := flag.Int("block", 33, "GpH block size (spark granularity)")
	q := flag.Int("q", 3, "Eden torus dimension (q x q processes)")
	cores := flag.Int("cores", 8, "simulated physical cores")
	pes := flag.Int("pes", 0, "Eden virtual PEs (default: q*q+1)")
	rts := flag.String("rts", "steal", "runtime: plain | bigalloc | sync | steal | rows | eden")
	showTrace := flag.Bool("trace", false, "print the activity timeline")
	width := flag.Int("width", 100, "trace width")
	rtKind := flag.String("runtime", "sim", "execution runtime: sim (virtual time) | native (real goroutines) | eden (distributed-heap PEs on real goroutines)")
	workers := flag.Int("workers", 0, "native worker goroutines (default: GOMAXPROCS)")
	statsFmt := flag.String("stats", "text", "native stats format: text | json (per-worker counters, machine-readable, json output only)")
	faultSpec := flag.String("faults", "", "fault-injection spec for the native runtimes (internal/faults grammar)")
	deadline := flag.Duration("deadline", 0, "native deadlock-watchdog deadline, e.g. 10s (0 = disabled)")
	autotune := flag.Bool("autotune", false, "native runtime: run the online controller (dynamic block size, adaptive backoff, GOGC, parking); -block is ignored")
	backoffSpec := flag.String("backoff", "", "native runtime: idle backoff policy, e.g. \"spin=64,min=10us,max=1280us,park=8\" (empty = default)")
	clusterN := flag.Int("cluster", 0, "run -runtime eden as N separate worker OS processes, -pes PEs each (0 = single process)")
	transport := flag.String("transport", "tcp", "cluster transport: tcp | unix")
	restarts := flag.Int("restarts", 0, "cluster restart budget: respawn the workers and retry the run up to N times after a process death (0 = fail on the first death)")
	reconnect := flag.Bool("reconnect", true, "cluster: let a worker whose link breaks redial and resume in place")
	flag.Parse()

	if err := cluster.CheckFlags(*rtKind, *clusterN, *transport, *restarts); err != nil {
		fmt.Fprintln(os.Stderr, "matmul:", err)
		os.Exit(2)
	}
	inj, ferr := faults.CLIInjector(*faultSpec, *deadline, *rtKind)
	if ferr != nil {
		fmt.Fprintln(os.Stderr, "matmul:", ferr)
		os.Exit(2)
	}
	if (*autotune || *backoffSpec != "") && *rtKind != "native" {
		fmt.Fprintf(os.Stderr, "matmul: -autotune/-backoff require -runtime native (got %q)\n", *rtKind)
		os.Exit(2)
	}
	var backoff *tune.Backoff
	if *backoffSpec != "" {
		var berr error
		if backoff, berr = tune.ParseBackoff(*backoffSpec); berr != nil {
			fmt.Fprintln(os.Stderr, "matmul: -backoff:", berr)
			os.Exit(2)
		}
	}

	a := matmul.Random(*n, 103)
	b := matmul.Random(*n, 104)
	var oracle matmul.Mat
	if *n <= 512 {
		oracle = matmul.MulOracle(a, b)
	}

	if *rtKind == "native" {
		ncfg := native.NewConfig(*workers)
		ncfg.EventLog = *showTrace
		ncfg.Faults = inj
		ncfg.Deadline = *deadline
		ncfg.Backoff = backoff
		prog := matmul.BlockProgram(a, b, *block, 0)
		if *autotune {
			sp := tune.NewSplitter("matmul", (*block)*(*block), 1, (*n)*(*n))
			ncfg.Autotune = &native.AutotuneConfig{Splitters: []*tune.Splitter{sp}}
			prog = matmul.AutoBlockProgram(a, b, sp, 0)
		}
		res, err := native.Run(ncfg, prog)
		if err != nil {
			fmt.Fprintln(os.Stderr, "matmul:", err)
			if res != nil && *showTrace {
				if tl := res.Trace(); tl != nil {
					fmt.Printf("partial timeline of the failed run:\n")
					fmt.Print(tl.Render(*width))
					fmt.Print(tl.Summary())
				}
			}
			os.Exit(1)
		}
		got := res.Value.(matmul.Mat)
		if oracle != nil && !matmul.Equal(got, oracle, 1e-6) {
			fmt.Fprintln(os.Stderr, "matmul: RESULT MISMATCH vs sequential oracle")
			os.Exit(1)
		}
		if *statsFmt == "json" {
			out, jerr := json.MarshalIndent(res.Report(), "", "  ")
			if jerr != nil {
				fmt.Fprintln(os.Stderr, "matmul:", jerr)
				os.Exit(1)
			}
			fmt.Println(string(out))
			return
		}
		fmt.Printf("matmul %dx%d on native runtime, %d workers, %dx%d blocks\n",
			*n, *n, res.Workers, *block, *block)
		if oracle != nil {
			fmt.Println("result   = verified against sequential oracle")
		} else {
			fmt.Printf("checksum = %.6g\n", matmul.Checksum(got))
		}
		scfg := gph.WorkStealingConfig(*cores)
		scfg.ResidentBytes = 3 * matmul.Bytes(*n)
		sres, serr := gph.Run(scfg, matmul.GpHBlockProgram(a, b, *block, scfg.Costs.MulAdd))
		if serr == nil {
			fmt.Printf("runtime  = %v (wall clock)   vs %s (virtual, steal/%d cores)\n",
				res.Wall(), trace.FmtDur(sres.Elapsed), *cores)
		} else {
			fmt.Printf("runtime  = %v (wall clock)\n", res.Wall())
		}
		fmt.Printf("stats    = %+v\n", res.Stats)
		if at := res.Autotune; at != nil {
			fmt.Printf("autotune = %d decisions, grains=%v, backoff level %d (park=%d), gogc=%d\n",
				len(at.Decisions), at.Grains, at.BackoffLevel, at.ParkAfter, at.GOGC)
		}
		if *showTrace {
			tl := res.Trace()
			fmt.Print(tl.Render(*width))
			fmt.Print(tl.Summary())
		}
		return
	}
	if *clusterN > 0 {
		perProc := *pes
		if perProc <= 0 {
			perProc = 2
		}
		ccfg := cluster.Config{
			Procs: *clusterN, PerProc: perProc, Transport: *transport,
			Spec:   fmt.Sprintf("matmul?n=%d&q=%d&seed=103", *n, *q),
			Faults: *faultSpec, EventLog: *showTrace, Deadline: *deadline,
		}
		if *restarts > 0 {
			ccfg.Restart = &cluster.Restart{Max: *restarts}
		}
		if !*reconnect {
			ccfg.ReconnectWindow = -1
		}
		res, err := cluster.RunSupervised(ccfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "matmul:", err)
			os.Exit(1)
		}
		_, cOracle, berr := cluster.BuildProgram(ccfg.Spec)
		if berr == nil {
			berr = cOracle(res.Value)
		}
		if berr != nil {
			fmt.Fprintln(os.Stderr, "matmul:", berr)
			os.Exit(1)
		}
		if *statsFmt == "json" {
			out, jerr := json.MarshalIndent(res, "", "  ")
			if jerr != nil {
				fmt.Fprintln(os.Stderr, "matmul:", jerr)
				os.Exit(1)
			}
			fmt.Println(string(out))
			return
		}
		fmt.Printf("matmul %dx%d on a %d-process Eden cluster (%s), Cannon %dx%d torus, %d PEs per process\n",
			*n, *n, res.Procs, *transport, *q, *q, res.PerProc)
		fmt.Println("result   = verified against sequential oracle")
		fmt.Printf("runtime  = %v (root wall clock; %v including launch and drain)\n",
			time.Duration(res.WallNS), time.Duration(res.CoordNS))
		fmt.Printf("stats    = %+v\n", res.Total)
		if s := res.RecoverySummary(); s != "" {
			fmt.Print(s)
		}
		if *showTrace {
			if tl, terr := res.TraceLog(); terr == nil && tl != nil {
				fmt.Print(tl.Render(*width))
				fmt.Print(tl.Summary())
			}
		}
		return
	}
	if *rtKind == "eden" {
		ecfg := nativeeden.NewConfig(*pes)
		ecfg.EventLog = *showTrace
		ecfg.Faults = inj
		ecfg.Deadline = *deadline
		res, err := nativeeden.Run(ecfg, matmul.EdenCannonProgram(a, b, *q, 0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "matmul:", err)
			if res != nil && *showTrace {
				if tl := res.Trace(); tl != nil {
					fmt.Printf("partial timeline of the failed run:\n")
					fmt.Print(tl.Render(*width))
					fmt.Print(tl.Summary())
				}
			}
			os.Exit(1)
		}
		got := res.Value.(matmul.Mat)
		if oracle != nil && !matmul.Equal(got, oracle, 1e-6) {
			fmt.Fprintln(os.Stderr, "matmul: RESULT MISMATCH vs sequential oracle")
			os.Exit(1)
		}
		if *statsFmt == "json" {
			out, jerr := json.MarshalIndent(res.Report(), "", "  ")
			if jerr != nil {
				fmt.Fprintln(os.Stderr, "matmul:", jerr)
				os.Exit(1)
			}
			fmt.Println(string(out))
			return
		}
		fmt.Printf("matmul %dx%d on native Eden Cannon %dx%d torus, %d PEs (distributed heaps)\n",
			*n, *n, *q, *q, res.PEs)
		if oracle != nil {
			fmt.Println("result   = verified against sequential oracle")
		} else {
			fmt.Printf("checksum = %.6g\n", matmul.Checksum(got))
		}
		fmt.Printf("runtime  = %v (wall clock)\n", res.Wall())
		fmt.Printf("stats    = %+v\n", res.Stats)
		if *showTrace {
			tl := res.Trace()
			fmt.Print(tl.Render(*width))
			fmt.Print(tl.Summary())
		}
		return
	}
	if *rtKind != "sim" {
		fmt.Fprintf(os.Stderr, "matmul: unknown -runtime %q\n", *rtKind)
		os.Exit(2)
	}

	report := func(kind string, elapsed int64, value any, tr *trace.Log, stats any) {
		fmt.Printf("matmul %dx%d on %s, %d cores\n", *n, *n, kind, *cores)
		got := value.(matmul.Mat)
		if oracle != nil {
			if !matmul.Equal(got, oracle, 1e-6) {
				fmt.Fprintln(os.Stderr, "matmul: RESULT MISMATCH vs sequential oracle")
				os.Exit(1)
			}
			fmt.Println("result   = verified against sequential oracle")
		} else {
			fmt.Printf("checksum = %.6g\n", matmul.Checksum(got))
		}
		fmt.Printf("runtime  = %s (virtual)\n", trace.FmtDur(elapsed))
		fmt.Printf("stats    = %+v\n", stats)
		if *showTrace {
			fmt.Print(tr.Render(*width))
			fmt.Print(tr.Summary())
		}
	}

	if *rts == "eden" {
		np := *pes
		if np == 0 {
			np = *q**q + 1
		}
		cfg := eden.NewConfig(np, *cores)
		res, err := eden.Run(cfg, matmul.EdenCannonProgram(a, b, *q, cfg.Costs.MulAdd))
		if err != nil {
			fmt.Fprintln(os.Stderr, "matmul:", err)
			os.Exit(1)
		}
		report(fmt.Sprintf("Eden Cannon %dx%d torus, %d PEs", *q, *q, np), res.Elapsed, res.Value, res.Trace, res.Stats)
		return
	}

	var cfg gph.Config
	switch *rts {
	case "plain":
		cfg = gph.PlainGHC69(*cores)
	case "bigalloc":
		cfg = gph.BigAllocArea(*cores)
	case "sync":
		cfg = gph.ImprovedSync(*cores)
	case "steal", "rows":
		cfg = gph.WorkStealingConfig(*cores)
	default:
		fmt.Fprintf(os.Stderr, "matmul: unknown -rts %q\n", *rts)
		os.Exit(2)
	}
	cfg.ResidentBytes = 3 * matmul.Bytes(*n)
	prog := matmul.GpHBlockProgram(a, b, *block, cfg.Costs.MulAdd)
	kind := fmt.Sprintf("GpH (%s), %dx%d blocks", *rts, *block, *block)
	if *rts == "rows" {
		prog = matmul.GpHRowProgram(a, b, cfg.Costs.MulAdd)
		kind = "GpH (steal), row-parallel"
	}
	res, err := gph.Run(cfg, prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "matmul:", err)
		os.Exit(1)
	}
	report(kind, res.Elapsed, res.Value, res.Trace, res.Stats)
}
