// Command serve runs the resident parallel-compute service: a
// long-lived native work-stealing pool and a set of resident Eden
// lanes behind an HTTP/JSON gateway.
//
//	serve -addr :8080 -workers 8 -pes 4 -lanes 2 -queue 64 -inflight 16
//
// Endpoints:
//
//	POST /api/v1/jobs   {"workload":"sumeuler","n":2000,"chunks":16}
//	GET  /api/v1/trace  a traced job's per-worker event dump (?id=t-N)
//	GET  /metrics       Prometheus text exposition
//	GET  /statusz       service + pool counter snapshot (?stream=N for NDJSON)
//	GET  /healthz       200 while accepting, 503 once draining
//
// With -pprof the live profiler mounts at /debug/pprof/ (CPU and heap
// profiles, goroutine dumps, execution traces of the running service).
//
// SIGTERM/SIGINT drains gracefully: new submissions are rejected with
// 503, every admitted job runs to completion (bounded by its own
// deadline), then the listener and the backends shut down and the
// process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parhask/internal/serve"
	"parhask/internal/tune"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "native pool workers (0 = GOMAXPROCS)")
	pes := flag.Int("pes", 0, "PEs per Eden lane (0 = 2)")
	lanes := flag.Int("lanes", 0, "resident Eden lanes (0 = 2)")
	queue := flag.Int("queue", 0, "per-tenant queue bound (0 = 64)")
	inflight := flag.Int("inflight", 0, "max concurrently executing jobs (0 = 2x workers)")
	deadline := flag.Duration("deadline", 0, "default per-job deadline (0 = 30s)")
	maxDeadline := flag.Duration("maxdeadline", 0, "per-job deadline cap (0 = 2m)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof at /debug/pprof/")
	autotune := flag.Bool("autotune", false, "run the native pool's online controller (dynamic chunking, adaptive backoff, GOGC, parking); decisions on /statusz")
	backoffSpec := flag.String("backoff", "", "native pool idle backoff policy, e.g. \"spin=64,min=10us,max=1280us,park=8\" (empty = default)")
	flag.Parse()

	var backoff *tune.Backoff
	if *backoffSpec != "" {
		var err error
		if backoff, err = tune.ParseBackoff(*backoffSpec); err != nil {
			fmt.Fprintln(os.Stderr, "serve: -backoff:", err)
			os.Exit(2)
		}
	}

	s := serve.New(serve.Config{
		Workers: *workers, PEs: *pes, Lanes: *lanes,
		QueueCap: *queue, MaxInflight: *inflight,
		DefaultDeadline: *deadline, MaxDeadline: *maxDeadline,
		Autotune: *autotune, Backoff: backoff,
	})
	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	if *pprofOn {
		// Explicit registrations on our own mux: the service never
		// touches http.DefaultServeMux, and the profiler stays opt-in.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	hs := &http.Server{Addr: *addr, Handler: mux}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-stop
		fmt.Fprintf(os.Stderr, "serve: %v: draining (in-flight jobs run to completion)\n", sig)
		// Drain order: stop admitting and finish the admitted work first
		// (Do calls still in the handler must complete so their clients
		// get responses), then close the listener.
		s.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "serve: shutdown: %v\n", err)
		}
	}()

	fmt.Fprintf(os.Stderr, "serve: listening on %s (workloads: %v)\n", *addr, serve.Workloads())
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	<-done
	fmt.Fprintln(os.Stderr, "serve: drained, exiting")
}
