// Command workloads runs the extended workload programs (beyond the
// paper's three benchmarks) on a chosen runtime:
//
//	workloads -run parfib -n 30 -cutoff 18 -rts steal -cores 8
//	workloads -run queens -n 12 -rts eden
//	workloads -run mandel -n 256 -rts gum
//
// Every run verifies its result against an oracle and reports the
// virtual runtime and runtime statistics.
package main

import (
	"flag"
	"fmt"
	"os"

	"parhask/internal/eden"
	"parhask/internal/gph"
	"parhask/internal/graph"
	"parhask/internal/pe"
	"parhask/internal/gum"
	"parhask/internal/rts"
	"parhask/internal/trace"
	"parhask/internal/workloads/mandel"
	"parhask/internal/workloads/parfib"
	"parhask/internal/workloads/queens"
)

func main() {
	which := flag.String("run", "parfib", "workload: parfib | queens | mandel")
	n := flag.Int("n", 0, "problem size (parfib: n, queens: board, mandel: width)")
	cutoff := flag.Int("cutoff", 16, "parfib sequential threshold / queens split depth")
	cores := flag.Int("cores", 8, "simulated physical cores")
	rtsKind := flag.String("rts", "steal", "runtime: steal | plain | localheaps | gum | eden")
	showTrace := flag.Bool("trace", false, "print the activity timeline")
	width := flag.Int("width", 100, "trace width")
	flag.Parse()

	var gphMain func(*rts.Ctx) graph.Value
	var edenMain pe.Program
	var verify func(v graph.Value) error

	switch *which {
	case "parfib":
		if *n == 0 {
			*n = 30
		}
		want := parfib.Fib(*n)
		gphMain = parfib.Program(*n, *cutoff)
		verify = func(v graph.Value) error {
			if v != want {
				return fmt.Errorf("got %v, want %d", v, want)
			}
			return nil
		}
	case "queens":
		if *n == 0 {
			*n = 12
		}
		want, known := queens.Known[*n]
		gphMain = queens.GpHProgram(*n, *cutoff/8+2)
		edenMain = queens.EdenProgram(*n, *cores-1, 2, *cutoff/8+2)
		verify = func(v graph.Value) error {
			if known && v != want {
				return fmt.Errorf("got %v, want %d", v, want)
			}
			return nil
		}
	case "mandel":
		if *n == 0 {
			*n = 256
		}
		p := mandel.DefaultParams(*n, *n*3/4)
		oracle := mandel.Checksum(mandel.Render(nopCtx{}, p))
		gphMain = mandel.GpHProgram(p)
		edenMain = mandel.EdenProgram(p, *cores-1, 2)
		verify = func(v graph.Value) error {
			if got := mandel.Checksum(v.([][]int32)); got != oracle {
				return fmt.Errorf("checksum %v, want %v", got, oracle)
			}
			return nil
		}
	default:
		fmt.Fprintf(os.Stderr, "workloads: unknown -run %q\n", *which)
		os.Exit(2)
	}

	report := func(kind string, elapsed int64, value graph.Value, tr *trace.Log, stats any) {
		if err := verify(value); err != nil {
			fmt.Fprintln(os.Stderr, "workloads: RESULT MISMATCH:", err)
			os.Exit(1)
		}
		fmt.Printf("%s %s (n=%d) on %s, %d cores\n", *which, "verified", *n, kind, *cores)
		fmt.Printf("runtime  = %s (virtual)\n", trace.FmtDur(elapsed))
		fmt.Printf("stats    = %+v\n", stats)
		if *showTrace {
			fmt.Print(tr.Render(*width))
			fmt.Print(tr.Summary())
		}
	}

	switch *rtsKind {
	case "steal", "plain", "localheaps":
		if gphMain == nil {
			fmt.Fprintf(os.Stderr, "workloads: %s has no GpH version\n", *which)
			os.Exit(2)
		}
		var cfg gph.Config
		switch *rtsKind {
		case "steal":
			cfg = gph.WorkStealingConfig(*cores)
		case "plain":
			cfg = gph.PlainGHC69(*cores)
		case "localheaps":
			cfg = gph.LocalHeapsConfig(*cores)
		}
		res, err := gph.Run(cfg, gphMain)
		if err != nil {
			fmt.Fprintln(os.Stderr, "workloads:", err)
			os.Exit(1)
		}
		report("GpH ("+*rtsKind+")", res.Elapsed, res.Value, res.Trace, res.Stats)
	case "gum":
		if gphMain == nil {
			fmt.Fprintf(os.Stderr, "workloads: %s has no GpH version\n", *which)
			os.Exit(2)
		}
		cfg := gum.NewConfig(*cores, *cores)
		res, err := gum.Run(cfg, gphMain)
		if err != nil {
			fmt.Fprintln(os.Stderr, "workloads:", err)
			os.Exit(1)
		}
		report("GUM", res.Elapsed, res.Value, res.Trace, res.Stats)
	case "eden":
		if edenMain == nil {
			fmt.Fprintf(os.Stderr, "workloads: %s has no Eden version\n", *which)
			os.Exit(2)
		}
		cfg := eden.NewConfig(*cores, *cores)
		res, err := eden.Run(cfg, edenMain)
		if err != nil {
			fmt.Fprintln(os.Stderr, "workloads:", err)
			os.Exit(1)
		}
		report("Eden", res.Elapsed, res.Value, res.Trace, res.Stats)
	default:
		fmt.Fprintf(os.Stderr, "workloads: unknown -rts %q\n", *rtsKind)
		os.Exit(2)
	}
}

// nopCtx is a cost-free context for oracle computation.
type nopCtx struct{}

func (nopCtx) Burn(int64)  {}
func (nopCtx) Alloc(int64) {}
