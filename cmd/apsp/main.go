// Command apsp runs the paper's third benchmark — all-pairs shortest
// paths — on a chosen runtime configuration:
//
//	apsp -n 400 -cores 8 -rts eden            # ring of 8 processes
//	apsp -n 400 -cores 8 -rts steal -eager    # GpH, eager black-holing
//	apsp -n 400 -cores 8 -rts steal           # lazy BH: watch it crawl
//	apsp -n 400 -runtime native -workers 8    # real goroutines
//	apsp -runtime eden -cluster 3 -pes 1 -transport unix  # multi-process ring
//
// Results are always verified against a sequential Floyd–Warshall.
// With -runtime native the thunk-lattice program runs on the real
// work-stealing runtime: -eager selects the CAS claim policy, and the
// duplicate-entry count measures what lazy black-holing costs on real
// hardware. -trace then enables the eventlog and renders a per-worker
// wall-clock timeline (watch the red blocked bands grow under lazy
// black-holing), and -stats json emits only the machine-readable
// per-worker counter report on stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"parhask/internal/cluster"
	"parhask/internal/eden"
	"parhask/internal/faults"
	"parhask/internal/gph"
	"parhask/internal/native"
	"parhask/internal/nativeeden"
	"parhask/internal/trace"
	"parhask/internal/tune"
	"parhask/internal/workloads/apsp"
)

func main() {
	cluster.MaybeWorker()
	n := flag.Int("n", 400, "number of graph nodes")
	cores := flag.Int("cores", 8, "simulated physical cores")
	ring := flag.Int("ring", 0, "Eden ring size (default: cores / PEs)")
	pes := flag.Int("pes", 0, "native Eden processing elements (default: GOMAXPROCS)")
	rts := flag.String("rts", "eden", "runtime: plain | bigalloc | sync | steal | eden")
	eager := flag.Bool("eager", false, "eager black-holing (GpH)")
	seed := flag.Uint64("seed", 105, "graph generator seed")
	showTrace := flag.Bool("trace", false, "print the activity timeline")
	width := flag.Int("width", 100, "trace width")
	rtKind := flag.String("runtime", "sim", "execution runtime: sim (virtual time) | native (real goroutines) | eden (distributed-heap PEs on real goroutines)")
	workers := flag.Int("workers", 0, "native worker goroutines (default: GOMAXPROCS)")
	statsFmt := flag.String("stats", "text", "native stats format: text | json (per-worker counters, machine-readable, json output only)")
	faultSpec := flag.String("faults", "", "fault-injection spec for the native runtimes (internal/faults grammar)")
	deadline := flag.Duration("deadline", 0, "native deadlock-watchdog deadline, e.g. 10s (0 = disabled)")
	autotune := flag.Bool("autotune", false, "native runtime: run the online controller (dynamic row chunking, adaptive backoff, GOGC, parking)")
	backoffSpec := flag.String("backoff", "", "native runtime: idle backoff policy, e.g. \"spin=64,min=10us,max=1280us,park=8\" (empty = default)")
	clusterN := flag.Int("cluster", 0, "run -runtime eden as N separate worker OS processes, -pes PEs each (0 = single process)")
	transport := flag.String("transport", "tcp", "cluster transport: tcp | unix")
	restarts := flag.Int("restarts", 0, "cluster restart budget: respawn the workers and retry the run up to N times after a process death (0 = fail on the first death)")
	reconnect := flag.Bool("reconnect", true, "cluster: let a worker whose link breaks redial and resume in place")
	flag.Parse()

	if err := cluster.CheckFlags(*rtKind, *clusterN, *transport, *restarts); err != nil {
		fmt.Fprintln(os.Stderr, "apsp:", err)
		os.Exit(2)
	}
	inj, ferr := faults.CLIInjector(*faultSpec, *deadline, *rtKind)
	if ferr != nil {
		fmt.Fprintln(os.Stderr, "apsp:", ferr)
		os.Exit(2)
	}
	if (*autotune || *backoffSpec != "") && *rtKind != "native" {
		fmt.Fprintf(os.Stderr, "apsp: -autotune/-backoff require -runtime native (got %q)\n", *rtKind)
		os.Exit(2)
	}
	var backoff *tune.Backoff
	if *backoffSpec != "" {
		var berr error
		if backoff, berr = tune.ParseBackoff(*backoffSpec); berr != nil {
			fmt.Fprintln(os.Stderr, "apsp: -backoff:", berr)
			os.Exit(2)
		}
	}

	g := apsp.RandomGraph(*n, *seed, 9, 25)
	want := apsp.FloydWarshall(g)

	verify := func(v any) {
		if !apsp.Equal(v.(apsp.Graph), want) {
			fmt.Fprintln(os.Stderr, "apsp: RESULT MISMATCH vs Floyd–Warshall oracle")
			os.Exit(1)
		}
	}

	if *rtKind == "native" {
		ncfg := native.NewConfig(*workers)
		ncfg.EagerBlackholing = *eager
		ncfg.EventLog = *showTrace
		ncfg.Faults = inj
		ncfg.Deadline = *deadline
		ncfg.Backoff = backoff
		prog := apsp.Program(g, 0)
		if *autotune {
			sp := tune.NewSplitter("apsp", 1, 1, *n)
			ncfg.Autotune = &native.AutotuneConfig{Splitters: []*tune.Splitter{sp}}
			prog = apsp.AutoProgram(g, sp, 0)
		}
		res, err := native.Run(ncfg, prog)
		if err != nil {
			fmt.Fprintln(os.Stderr, "apsp:", err)
			if res != nil && *showTrace {
				if tl := res.Trace(); tl != nil {
					fmt.Printf("partial timeline of the failed run:\n")
					fmt.Print(tl.Render(*width))
					fmt.Print(tl.Summary())
				}
			}
			os.Exit(1)
		}
		verify(res.Value)
		if *statsFmt == "json" {
			out, jerr := json.MarshalIndent(res.Report(), "", "  ")
			if jerr != nil {
				fmt.Fprintln(os.Stderr, "apsp:", jerr)
				os.Exit(1)
			}
			fmt.Println(string(out))
			return
		}
		bh := "lazy"
		if *eager {
			bh = "eager"
		}
		fmt.Printf("apsp %d nodes on native runtime, %d workers (%s blackholing)\n",
			*n, res.Workers, bh)
		fmt.Println("result   = verified against Floyd–Warshall")
		scfg := gph.WorkStealingConfig(*cores)
		scfg.EagerBlackholing = *eager
		scfg.ResidentBytes = 2 * apsp.Bytes(*n)
		sres, serr := gph.Run(scfg, apsp.GpHProgram(g, scfg.Costs.MinPlus))
		if serr == nil {
			fmt.Printf("runtime  = %v (wall clock)   vs %s (virtual, steal/%d cores)\n",
				res.Wall(), trace.FmtDur(sres.Elapsed), *cores)
		} else {
			fmt.Printf("runtime  = %v (wall clock)\n", res.Wall())
		}
		fmt.Printf("stats    = %+v (duplicate thunk entries: %d)\n", res.Stats, res.Stats.DupEntries)
		if at := res.Autotune; at != nil {
			fmt.Printf("autotune = %d decisions, grains=%v, backoff level %d (park=%d), gogc=%d\n",
				len(at.Decisions), at.Grains, at.BackoffLevel, at.ParkAfter, at.GOGC)
		}
		if *showTrace {
			tl := res.Trace()
			fmt.Print(tl.Render(*width))
			fmt.Print(tl.Summary())
		}
		return
	}
	if *clusterN > 0 {
		perProc := *pes
		if perProc <= 0 {
			perProc = 2
		}
		r := *ring
		if r == 0 {
			r = *clusterN * perProc
		}
		// In cluster mode the workload registry owns the graph: workers
		// and coordinator rebuild the same instance from the spec string,
		// and the coordinator's oracle checks the folded result.
		ccfg := cluster.Config{
			Procs: *clusterN, PerProc: perProc, Transport: *transport,
			Spec:   fmt.Sprintf("apsp?n=%d&ring=%d&seed=%d", *n, r, *seed),
			Faults: *faultSpec, EventLog: *showTrace, Deadline: *deadline,
		}
		if *restarts > 0 {
			ccfg.Restart = &cluster.Restart{Max: *restarts}
		}
		if !*reconnect {
			ccfg.ReconnectWindow = -1
		}
		res, err := cluster.RunSupervised(ccfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "apsp:", err)
			os.Exit(1)
		}
		_, oracle, berr := cluster.BuildProgram(ccfg.Spec)
		if berr == nil {
			berr = oracle(res.Value)
		}
		if berr != nil {
			fmt.Fprintln(os.Stderr, "apsp:", berr)
			os.Exit(1)
		}
		if *statsFmt == "json" {
			out, jerr := json.MarshalIndent(res, "", "  ")
			if jerr != nil {
				fmt.Fprintln(os.Stderr, "apsp:", jerr)
				os.Exit(1)
			}
			fmt.Println(string(out))
			return
		}
		fmt.Printf("apsp %d nodes on a %d-process Eden cluster (%s), ring of %d, %d PEs per process\n",
			*n, res.Procs, *transport, r, res.PerProc)
		fmt.Println("result   = verified against Floyd–Warshall")
		fmt.Printf("runtime  = %v (root wall clock; %v including launch and drain)\n",
			time.Duration(res.WallNS), time.Duration(res.CoordNS))
		fmt.Printf("stats    = %+v\n", res.Total)
		if s := res.RecoverySummary(); s != "" {
			fmt.Print(s)
		}
		if *showTrace {
			if tl, terr := res.TraceLog(); terr == nil && tl != nil {
				fmt.Print(tl.Render(*width))
				fmt.Print(tl.Summary())
			}
		}
		return
	}
	if *rtKind == "eden" {
		ecfg := nativeeden.NewConfig(*pes)
		ecfg.EventLog = *showTrace
		r := *ring
		if r == 0 {
			r = ecfg.PEs
		}
		ecfg.Faults = inj
		ecfg.Deadline = *deadline
		res, err := nativeeden.Run(ecfg, apsp.EdenRingProgram(g, r, 0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "apsp:", err)
			if res != nil && *showTrace {
				if tl := res.Trace(); tl != nil {
					fmt.Printf("partial timeline of the failed run:\n")
					fmt.Print(tl.Render(*width))
					fmt.Print(tl.Summary())
				}
			}
			os.Exit(1)
		}
		verify(res.Value)
		if *statsFmt == "json" {
			out, jerr := json.MarshalIndent(res.Report(), "", "  ")
			if jerr != nil {
				fmt.Fprintln(os.Stderr, "apsp:", jerr)
				os.Exit(1)
			}
			fmt.Println(string(out))
			return
		}
		fmt.Printf("apsp %d nodes on native Eden ring of %d, %d PEs (distributed heaps)\n",
			*n, r, res.PEs)
		fmt.Println("result   = verified against Floyd–Warshall")
		fmt.Printf("runtime  = %v (wall clock)\n", res.Wall())
		fmt.Printf("stats    = %+v\n", res.Stats)
		if *showTrace {
			tl := res.Trace()
			fmt.Print(tl.Render(*width))
			fmt.Print(tl.Summary())
		}
		return
	}
	if *rtKind != "sim" {
		fmt.Fprintf(os.Stderr, "apsp: unknown -runtime %q\n", *rtKind)
		os.Exit(2)
	}

	if *rts == "eden" {
		r := *ring
		if r == 0 {
			r = *cores
		}
		cfg := eden.NewConfig(r+1, *cores)
		res, err := eden.Run(cfg, apsp.EdenRingProgram(g, r, cfg.Costs.MinPlus))
		if err != nil {
			fmt.Fprintln(os.Stderr, "apsp:", err)
			os.Exit(1)
		}
		verify(res.Value)
		fmt.Printf("apsp %d nodes on Eden ring of %d, %d cores\n", *n, r, *cores)
		fmt.Println("result   = verified against Floyd–Warshall")
		fmt.Printf("runtime  = %s (virtual)\n", trace.FmtDur(res.Elapsed))
		fmt.Printf("stats    = %+v\n", res.Stats)
		if *showTrace {
			fmt.Print(res.Trace.Render(*width))
			fmt.Print(res.Trace.Summary())
		}
		return
	}

	var cfg gph.Config
	switch *rts {
	case "plain":
		cfg = gph.PlainGHC69(*cores)
	case "bigalloc":
		cfg = gph.BigAllocArea(*cores)
	case "sync":
		cfg = gph.ImprovedSync(*cores)
	case "steal":
		cfg = gph.WorkStealingConfig(*cores)
	default:
		fmt.Fprintf(os.Stderr, "apsp: unknown -rts %q\n", *rts)
		os.Exit(2)
	}
	cfg.EagerBlackholing = *eager
	cfg.ResidentBytes = 2 * apsp.Bytes(*n)
	res, err := gph.Run(cfg, apsp.GpHProgram(g, cfg.Costs.MinPlus))
	if err != nil {
		fmt.Fprintln(os.Stderr, "apsp:", err)
		os.Exit(1)
	}
	verify(res.Value)
	bh := "lazy"
	if *eager {
		bh = "eager"
	}
	fmt.Printf("apsp %d nodes on GpH (%s, %s blackholing), %d cores\n", *n, *rts, bh, *cores)
	fmt.Println("result   = verified against Floyd–Warshall")
	fmt.Printf("runtime  = %s (virtual)\n", trace.FmtDur(res.Elapsed))
	fmt.Printf("stats    = %+v (duplicate thunk entries: %d)\n", res.Stats, res.Stats.DupEntries)
	if *showTrace {
		fmt.Print(res.Trace.Render(*width))
		fmt.Print(res.Trace.Summary())
	}
}
