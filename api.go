package parhask

import (
	"parhask/internal/cluster"
	"parhask/internal/core"
	"parhask/internal/cost"
	"parhask/internal/eden"
	"parhask/internal/eventlog"
	"parhask/internal/exec"
	"parhask/internal/faults"
	"parhask/internal/gph"
	"parhask/internal/graph"
	"parhask/internal/gum"
	"parhask/internal/metrics"
	"parhask/internal/native"
	"parhask/internal/nativeeden"
	"parhask/internal/pe"
	"parhask/internal/rts"
	"parhask/internal/serve"
	"parhask/internal/skel"
	"parhask/internal/strategies"
	"parhask/internal/tune"
)

// Core heap-graph types.
type (
	// Value is any heap value.
	Value = graph.Value
	// Thunk is a shared, lazily evaluated heap node.
	Thunk = graph.Thunk
)

// NewThunk suspends fn as a heap thunk; NewValue wraps an evaluated value.
var (
	NewValue = graph.NewValue
)

// Ctx is the execution context of a GpH thread (Burn/Alloc/Force/Par/Fork).
type Ctx = rts.Ctx

// ExecCtx is the runtime-agnostic execution context: program bodies
// written against it run unchanged on the virtual-time simulation
// (*Ctx satisfies it) and on the native work-stealing runtime.
type ExecCtx = exec.Ctx

// ExecProgram is a runtime-agnostic program body.
type ExecProgram = exec.Program

// NewExecThunk suspends a runtime-agnostic function as a heap thunk.
var NewExecThunk = exec.Thunk

// NewThunkIn suspends a runtime-agnostic function as a thunk allocated
// through ctx's allocator: on the native runtime the owning worker's
// arena (batched allocation, see internal/graph.Arena), elsewhere the
// plain heap. Prefer it over NewExecThunk inside program bodies.
var NewThunkIn = exec.NewThunk

// Native: the real-concurrency work-stealing runtime (goroutines,
// wall-clock time).
type (
	// NativeConfig selects a native runtime setup (workers, black-holing).
	NativeConfig = native.Config
	// NativeResult is the outcome of a native run (value, wall time, stats).
	NativeResult = native.Result
	// NativeStats are the native runtime counters.
	NativeStats = native.Stats
	// NativeReport is the machine-readable run summary (wall time,
	// aggregate and per-worker counters, eventlog volume).
	NativeReport = native.Report
)

// Native entry points.
var (
	// RunNative executes a runtime-agnostic program on real goroutines.
	RunNative = native.Run
	// NewNativeConfig returns the default native configuration
	// (GOMAXPROCS workers, eager black-holing).
	NewNativeConfig = native.NewConfig
)

// GpH: the shared-heap runtime.
type (
	// GpHConfig selects a GpH runtime variant.
	GpHConfig = gph.Config
	// GpHResult is the outcome of a GpH run.
	GpHResult = gph.Result
	// GpHStats are the runtime counters of a GpH run.
	GpHStats = gph.Stats
)

// GpH runtime constructors and entry point.
var (
	// RunGpH executes main under a GpH configuration.
	RunGpH = gph.Run
	// NewGpHConfig is the fully-optimised runtime (work stealing, wakeup
	// barrier, spark threads).
	NewGpHConfig = gph.NewConfig
	// The paper's Fig. 1 variants:
	GpHPlainGHC69   = gph.PlainGHC69
	GpHBigAllocArea = gph.BigAllocArea
	GpHImprovedSync = gph.ImprovedSync
	GpHWorkStealing = gph.WorkStealingConfig
	// GpHLocalHeaps enables the §VI future-work semi-distributed heap:
	// per-capability local GC plus a rarely-collected global heap.
	GpHLocalHeaps = gph.LocalHeapsConfig
)

// GUM: the distributed-memory implementation of GpH (§III-B) — same
// programming model as RunGpH, but PEs with private heaps, passive work
// distribution by fishing, and FETCH/RESUME virtual shared memory.
type (
	// GUMConfig selects a GUM runtime setup.
	GUMConfig = gum.Config
	// GUMResult is the outcome of a GUM run.
	GUMResult = gum.Result
	// GUMStats are the protocol and runtime counters of a GUM run.
	GUMStats = gum.Stats
)

// GUM entry points.
var (
	// RunGUM executes a GpH main function on the distributed GUM runtime.
	RunGUM = gum.Run
	// NewGUMConfig returns a GUM configuration (PEs over cores).
	NewGUMConfig = gum.NewConfig
)

// Eden: the distributed-heap runtime.
type (
	// EdenConfig selects an Eden runtime setup.
	EdenConfig = eden.Config
	// EdenResult is the outcome of an Eden run.
	EdenResult = eden.Result
	// EdenStats are the runtime counters of an Eden run.
	EdenStats = eden.Stats
	// PCtx is the backend-neutral execution context of an Eden process
	// thread: programs written against it run on the simulated Eden
	// runtime (RunEden) and on the native distributed-heap backend
	// (RunEdenNative) unchanged.
	PCtx = pe.Ctx
	// PEProgram is a backend-neutral Eden program body.
	PEProgram = pe.Program
	// Inport/Outport are the ends of a one-value Eden channel.
	Inport  = pe.Inport
	Outport = pe.Outport
	// StreamIn/StreamOut are the ends of an element-by-element stream.
	StreamIn  = pe.StreamIn
	StreamOut = pe.StreamOut
)

// Eden entry points.
var (
	// RunEden executes main as the root process on PE 0.
	RunEden = eden.Run
	// NewEdenConfig returns an Eden configuration (PEs over cores).
	NewEdenConfig = eden.NewConfig
)

// Native Eden: the same distributed-heap programming model on real
// goroutines — one isolated heap per PE, copy-on-send channels,
// wall-clock time. Any PEProgram runs on both backends.
type (
	// EdenNativeConfig selects a native Eden setup (PEs, arena chunk,
	// eventlog).
	EdenNativeConfig = nativeeden.Config
	// EdenNativeResult is the outcome of a native Eden run (value, wall
	// time, per-PE and GC telemetry).
	EdenNativeResult = nativeeden.Result
	// EdenNativeStats are the aggregate counters of a native Eden run.
	EdenNativeStats = nativeeden.Stats
	// EdenNativePEStats is one PE's share of the counters.
	EdenNativePEStats = nativeeden.PEStats
	// EdenNativeReport is the machine-readable run summary.
	EdenNativeReport = nativeeden.Report
)

// Native Eden entry points.
var (
	// RunEdenNative executes a backend-neutral Eden program on the
	// native distributed-heap backend.
	RunEdenNative = nativeeden.Run
	// NewEdenNativeConfig returns the default native Eden configuration
	// (GOMAXPROCS PEs).
	NewEdenNativeConfig = nativeeden.NewConfig
)

// Evaluation strategies (GpH, §II-B).
type Strategy = strategies.Strategy

var (
	RWHNF         = strategies.RWHNF
	RNF           = strategies.RNF
	ParListWHNF   = strategies.ParListWHNF
	ParBuffer     = strategies.ParBuffer
	ParList       = strategies.ParList
	SeqList       = strategies.SeqList
	ParMapStrat   = strategies.ParMap
	NewStratThunk = strategies.Thunk
)

// Algorithmic skeletons (Eden, §II-A, plus the hierarchical and
// divide-and-conquer skeletons from the cited Eden literature).
type (
	// KV is a key-value pair for ParMapReduce.
	KV = skel.KV
	// DC describes a divide-and-conquer algorithm.
	DC = skel.DC
	// StageFunc is one pipeline stage; TaskFunc one master-worker task;
	// WorkerFunc one parMap worker.
	StageFunc  = skel.StageFunc
	TaskFunc   = skel.TaskFunc
	WorkerFunc = skel.WorkerFunc
)

var (
	ParMap           = skel.ParMap
	ParReduce        = skel.ParReduce
	ParMapReduce     = skel.ParMapReduce
	MasterWorker     = skel.MasterWorker
	MasterWorkerAt   = skel.MasterWorkerAt
	HierMasterWorker = skel.HierMasterWorker
	Ring             = skel.Ring
	Torus            = skel.Torus
	Pipeline         = skel.Pipeline
	DivideAndConquer = skel.DivideAndConquer
)

// Runtime comparison (the paper's primary contribution as one call).
type (
	// CompareVariant names a runtime organisation for Compare.
	CompareVariant = core.Variant
	// CompareOutcome is one organisation's result.
	CompareOutcome = core.Outcome
)

var (
	// Compare runs one GpH program under several runtime organisations.
	Compare = core.Compare
	// CompareVariants lists every comparable organisation.
	CompareVariants = core.AllVariants
)

// Fault injection and supervision: the deterministic seeded fault
// plane shared by both native backends, the structured failures it
// produces, and the supervised master-worker skeleton that survives
// worker death.
type (
	// FaultPlan is a complete seed-driven fault schedule (panics at
	// spark/process indices, per-edge message drop/delay, stalled PEs).
	FaultPlan = faults.Plan
	// FaultInjector applies a FaultPlan to a run via Config.Faults.
	FaultInjector = faults.Injector
	// InjectedPanic is the structured failure of a plan-requested panic.
	InjectedPanic = faults.InjectedPanic
	// DeadlockError is what the Config.Deadline watchdog returns instead
	// of hanging: per-PE blocked-on diagnostics (channel, peer, thread).
	DeadlockError = faults.DeadlockError
	// BlockedThread is one DeadlockError diagnostic line.
	BlockedThread = faults.BlockedThread
	// PoisonError marks a thunk poisoned by a dying thread — the
	// structured failure blocked helpers unblock into.
	PoisonError = graph.PoisonError
	// EdenChanMisuseError is the structured channel-misuse failure of
	// the native Eden backend (cross-PE Receive, double Receive,
	// unknown channel or stream).
	EdenChanMisuseError = eden.ChanMisuseError
	// WorkerFailuresError is SupervisedMW's structured give-up: the
	// retry budget or worker pool is exhausted with tasks still lost.
	WorkerFailuresError = skel.WorkerFailuresError
	// ThreadFailure describes one dead supervised thread (PE, name,
	// rendered error) as delivered on its verdict channel.
	ThreadFailure = pe.ThreadFailure
)

var (
	// ParseFaults reads a fault spec in the -faults flag grammar
	// (seed=N,panic-spark=K,drop=P@S-D,delay=DUR:P,stall=PE:DUR).
	ParseFaults = faults.Parse
	// NewFaultInjector arms a parsed plan for Config.Faults; a nil plan
	// yields an armed-but-empty injector (for overhead measurement).
	NewFaultInjector = faults.NewInjector
	// SupervisedMW is MasterWorker with monitored workers: a dead
	// worker's outstanding tasks are re-dispatched to survivors under a
	// capped retry budget. On backends without supervision primitives
	// it degrades to plain MasterWorker.
	SupervisedMW = skel.SupervisedMW
)

// Resident runtimes: the native backends as long-lived services —
// workers, deques and arenas built once, programs submitted as
// isolated jobs (own result cell, deadline, fault budget, counters).
type (
	// NativePool is the resident form of the native work-stealing
	// runtime; Submit starts jobs, Snapshot reads monotone counters.
	NativePool = native.Pool
	// NativeJobConfig scopes one pool job (deadline, fault budget,
	// private eventlog).
	NativeJobConfig = native.JobConfig
	// NativeJobResult is one pool job's outcome.
	NativeJobResult = native.JobResult
	// NativeJobHandle waits on a submitted pool job.
	NativeJobHandle = native.JobHandle
	// EdenNativeResident is a resident Eden lane: persistent PEs,
	// per-job RTS (failure latch, watchdog, channel-id space).
	EdenNativeResident = nativeeden.Resident
	// EdenNativeJobConfig scopes one lane job.
	EdenNativeJobConfig = nativeeden.JobConfig
)

// Resident entry points.
var (
	// NewNativePool starts a resident work-stealing pool.
	NewNativePool = native.NewPool
	// NewEdenNativeResident builds a resident Eden lane.
	NewEdenNativeResident = nativeeden.NewResident
)

// Cluster: the multi-process Eden runtime — worker OS processes over a
// framed socket protocol (tcp or unix), with a self-healing control
// plane: heartbeat liveness, bounded per-rank send queues, link
// reconnection with seq/ack replay, and a supervisor that respawns the
// whole SPMD run under a restart budget with exponential backoff.
type (
	// ClusterConfig describes one multi-process run (processes, PEs per
	// process, transport, workload spec, faults, recovery knobs).
	ClusterConfig = cluster.Config
	// ClusterResult is the coordinator's folded outcome: the root value,
	// per-PE counters, the merged timeline and the recovery telemetry
	// (restarts, reconnects, per-rank dropped frames, heartbeat RTT).
	ClusterResult = cluster.Result
	// ClusterRestart is the supervision policy ClusterRunSupervised
	// applies (max attempts, backoff, cap, deadlock retry).
	ClusterRestart = cluster.Restart
	// ClusterAttempt is one failed attempt on the restart history.
	ClusterAttempt = cluster.Attempt
	// ClusterRestartsExhaustedError is the supervisor's structured
	// give-up: the full attempt history, unwrapping to the last death.
	ClusterRestartsExhaustedError = cluster.RestartsExhaustedError
	// ProcessDeathError is the structured failure of a worker process
	// that died or went silent (rank, unreachable PEs, reason).
	ProcessDeathError = faults.ProcessDeathError
)

// Cluster entry points.
var (
	// ClusterRun executes one multi-process run (no supervision).
	ClusterRun = cluster.Run
	// ClusterRunSupervised retries worker deaths under Config.Restart.
	ClusterRunSupervised = cluster.RunSupervised
	// ClusterMaybeWorker diverts a process re-executed as a cluster
	// worker; call it first in main() of any binary that starts clusters.
	ClusterMaybeWorker = cluster.MaybeWorker
	// ClusterBuildProgram resolves a workload spec string to the program
	// and its oracle — what the coordinator and every worker run.
	ClusterBuildProgram = cluster.BuildProgram
)

// Serve: the resident compute service over both native backends —
// admission control, bounded per-tenant queues, round-robin dispatch,
// a structured error taxonomy and an HTTP/JSON gateway (cmd/serve).
type (
	// ServeConfig sizes the service (workers, lanes, queue bounds).
	ServeConfig = serve.Config
	// ServeServer is the service; Do submits synchronously, Handler
	// wraps it in the HTTP gateway, Close drains gracefully.
	ServeServer = serve.Server
	// ServeJobRequest / ServeJobResponse are the wire job forms.
	ServeJobRequest  = serve.JobRequest
	ServeJobResponse = serve.JobResponse
	// ServeErrorCode is the service's stable failure vocabulary.
	ServeErrorCode = serve.ErrorCode
	// ServeStatus is one /statusz snapshot.
	ServeStatus = serve.Status
)

// Serve entry points.
var (
	// NewServeServer starts the resident service.
	NewServeServer = serve.New
	// ClassifyServeError maps any job error to its taxonomy code and
	// HTTP status.
	ClassifyServeError = serve.Classify

	// The admission sentinels, so callers can errors.Is against
	// responses from Do (Classify understands wrapped forms too).
	ServeErrQueueFull       = serve.ErrQueueFull
	ServeErrDraining        = serve.ErrDraining
	ServeErrUnknownWorkload = serve.ErrUnknownWorkload
	ServeErrBadRequest      = serve.ErrBadRequest
)

// Telemetry: the lock-free metrics plane the resident runtimes and the
// service record into (per-worker sharded counters, log-bucketed
// latency histograms, Prometheus text exposition) and the per-job trace
// dump the service stores for timeline rendering.
type (
	// MetricsRegistry holds named series; pass one via NativeConfig,
	// EdenNativeConfig or get the service's with ServeServer.Metrics.
	MetricsRegistry = metrics.Registry
	// MetricsCounter is a monotone sharded counter.
	MetricsCounter = metrics.Counter
	// MetricsGauge is a last-value-wins gauge.
	MetricsGauge = metrics.Gauge
	// MetricsHistogram is a log-bucketed latency histogram whose
	// snapshots merge and answer quantiles within 1/16 relative error.
	MetricsHistogram = metrics.Histogram
	// MetricsHistSnapshot is one histogram's mergeable snapshot.
	MetricsHistSnapshot = metrics.HistSnapshot
	// EventlogDump is the wire form of one job's drained event rings
	// (GET /api/v1/trace; tracedump -job renders it).
	EventlogDump = eventlog.Dump
)

// Telemetry entry points.
var (
	// NewMetricsRegistry creates an empty registry.
	NewMetricsRegistry = metrics.New
	// ParseProm parses a Prometheus text exposition back into a flat
	// series map (the scrape-side inverse of the registry's writer).
	ParseProm = metrics.ParseProm
)

// Self-tuning: the online controller that closes the loop from the
// published telemetry back onto the scheduler's knobs — dynamic chunk
// granularity, adaptive steal backoff, GOGC, and worker parking
// (enable via NativeConfig.Autotune or ServeConfig.Autotune).
type (
	// TuneSplitter is the dynamic-granularity lever: programs express
	// parallel phases through ParSum/Each and the controller moves the
	// grain from observed leaf service times.
	TuneSplitter = tune.Splitter
	// TuneBackoff is the idle steal-backoff policy (spin/sleep ladder
	// with an adaptive level and an optional park threshold).
	TuneBackoff = tune.Backoff
	// TuneControllerConfig tunes the controller's decision rules.
	TuneControllerConfig = tune.ControllerConfig
	// TuneDecision is one structured trace entry: lever, action,
	// from→to and the signal that drove it.
	TuneDecision = tune.Decision
	// NativeAutotuneConfig opts a run or pool into the controller.
	NativeAutotuneConfig = native.AutotuneConfig
	// NativeAutotuneReport is a tuned run's account: the decision
	// trace plus every lever's final position.
	NativeAutotuneReport = native.AutotuneReport
)

// Self-tuning entry points.
var (
	// NewTuneSplitter builds a named splitter starting at grain
	// items per leaf, clamped to [min, max].
	NewTuneSplitter = tune.NewSplitter
	// ParseBackoff parses a CLI backoff spec such as
	// "spin=64,min=10us,max=1280us,park=8".
	ParseBackoff = tune.ParseBackoff
	// DefaultBackoffPolicy is the fixed legacy ladder (no parking);
	// AdaptiveBackoff is the autotuned starting point (parking armed).
	DefaultBackoffPolicy = tune.DefaultBackoffPolicy
	AdaptiveBackoff      = tune.AdaptiveBackoff
)

// CostModel holds every virtual-time cost constant of the simulation.
type CostModel = cost.Model

// DefaultCosts returns the calibrated default cost model.
var DefaultCosts = cost.Default
