package parhask_test

import (
	"fmt"

	"parhask"
)

// Example_gph sparks two computations on a 2-core shared-heap runtime
// and folds their results — par and seq in four lines. The runtime is a
// deterministic simulation, so the output (including the virtual
// runtime) is reproducible.
func Example_gph() {
	cfg := parhask.GpHWorkStealing(2)
	res, err := parhask.RunGpH(cfg, func(ctx *parhask.Ctx) parhask.Value {
		x := parhask.NewStratThunk(func(c *parhask.Ctx) parhask.Value {
			c.Burn(1_000_000)
			return 40
		})
		ctx.Par(x) // spark x...
		y := 2
		return ctx.Force(x).(int) + y // ...and force it
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Value)
	// Output: 42
}

// Example_eden runs a four-process farm with the parMap skeleton on
// four distributed-heap PEs.
func Example_eden() {
	cfg := parhask.NewEdenConfig(4, 4)
	res, err := parhask.RunEden(cfg, func(p parhask.PCtx) parhask.Value {
		squares := parhask.ParMap(p, "sq", func(w parhask.PCtx, in parhask.Value) parhask.Value {
			n := in.(int)
			w.Burn(100_000)
			return n * n
		}, []parhask.Value{1, 2, 3, 4})
		sum := 0
		for _, v := range squares {
			sum += v.(int)
		}
		return sum
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Value)
	// Output: 30
}

// Example_gum runs the same GpH code on the distributed-memory GUM
// runtime: par works unchanged; distribution happens by fishing.
func Example_gum() {
	cfg := parhask.NewGUMConfig(2, 2)
	res, err := parhask.RunGUM(cfg, func(ctx *parhask.Ctx) parhask.Value {
		x := parhask.NewStratThunk(func(c *parhask.Ctx) parhask.Value {
			c.Alloc(32 << 10)
			c.Burn(2_000_000)
			return "fished"
		})
		ctx.Par(x)
		ctx.Burn(500_000)
		return ctx.Force(x)
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Value)
	// Output: fished
}

// Example_strategies shows parList over a list of thunks — the
// evaluation-strategy style of the paper's §II-B.
func Example_strategies() {
	cfg := parhask.GpHWorkStealing(4)
	res, err := parhask.RunGpH(cfg, func(ctx *parhask.Ctx) parhask.Value {
		ts := make([]*parhask.Thunk, 8)
		for i := range ts {
			i := i
			ts[i] = parhask.NewStratThunk(func(c *parhask.Ctx) parhask.Value {
				c.Burn(250_000)
				return i + 1
			})
		}
		parhask.ParListWHNF(ctx, ts) // parList rwhnf
		sum := 0
		for _, t := range ts {
			sum += ctx.Force(t).(int)
		}
		return sum
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Value)
	// Output: 36
}
