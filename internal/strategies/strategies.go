// Package strategies implements GpH evaluation strategies (§II-B):
// higher-order functions that describe the parallel evaluation degree of
// a value separately from the value itself, built from the two
// primitives par (Ctx.Par) and seq (forcing).
//
// In Haskell a Strategy a is a -> (), applied with `using`. Here a
// Strategy acts on a thunk in a runtime context; combinators build list
// strategies out of element strategies exactly like parList does.
package strategies

import (
	"parhask/internal/exec"
	"parhask/internal/graph"
	"parhask/internal/rts"
)

// Strategy evaluates (part of) a thunk's value in a context. Strategies
// take the runtime-agnostic exec.Ctx, so the same combinators drive the
// virtual-time simulation (*rts.Ctx satisfies exec.Ctx) and the native
// work-stealing runtime.
type Strategy func(ctx exec.Ctx, t *graph.Thunk)

// R0 is the trivial strategy: no evaluation.
func R0(ctx exec.Ctx, t *graph.Thunk) {}

// RWHNF evaluates to weak head normal form (rwhnf).
func RWHNF(ctx exec.Ctx, t *graph.Thunk) { ctx.Force(t) }

// RNF evaluates to normal form (rnf): the thunk and everything reachable
// from its value.
func RNF(ctx exec.Ctx, t *graph.Thunk) { ctx.ForceDeep(t) }

// Thunk wraps a function over the simulated runtime context as a heap
// thunk. Simulation-only: the forcing thread's graph.Context must be an
// *rts.Ctx. Runtime-agnostic bodies use exec.Thunk instead.
func Thunk(f func(*rts.Ctx) graph.Value) *graph.Thunk {
	return graph.NewThunk(func(c graph.Context) graph.Value {
		return f(c.(*rts.Ctx))
	})
}

// Using applies a strategy to a thunk and returns the thunk (x `using` s).
func Using(ctx exec.Ctx, t *graph.Thunk, s Strategy) *graph.Thunk {
	s(ctx, t)
	return t
}

// ParList sparks the element strategy on every list element in parallel:
//
//	parList s (x:xs) = s x `par` parList s xs
//
// As in GpH, the sparked work is speculative: an idle capability may
// pick it up, or the consumer may end up evaluating the element itself
// (the spark then fizzles).
func ParList(s Strategy) func(ctx exec.Ctx, ts []*graph.Thunk) {
	return func(ctx exec.Ctx, ts []*graph.Thunk) {
		for _, t := range ts {
			// Sparking defers the element strategy: for rwhnf sparking
			// the thunk itself is exactly right; for deeper strategies a
			// wrapper thunk would be sparked. Our workloads' elements
			// evaluate to flat data, so WHNF == NF and the thunk itself
			// is always the right spark.
			ctx.Par(t)
		}
		_ = s
	}
}

// ParListWHNF sparks WHNF evaluation of every element (parList rwhnf).
func ParListWHNF(ctx exec.Ctx, ts []*graph.Thunk) {
	ParList(RWHNF)(ctx, ts)
}

// SeqList applies a strategy to every element in order (seqList).
func SeqList(s Strategy) func(ctx exec.Ctx, ts []*graph.Thunk) {
	return func(ctx exec.Ctx, ts []*graph.Thunk) {
		for _, t := range ts {
			s(ctx, t)
		}
	}
}

// ParMap is the classic strategic parallel map:
//
//	parMap strat f xs = map f xs `using` parList strat
//
// It builds one thunk per element, sparks them all, then forces and
// collects the results. Thunks are allocated through ctx
// (exec.NewThunk), so under the native runtime they come from the
// running worker's arena.
func ParMap(ctx exec.Ctx, f func(exec.Ctx, graph.Value) graph.Value, xs []graph.Value) []graph.Value {
	ts := make([]*graph.Thunk, len(xs))
	for i, x := range xs {
		x := x
		ts[i] = exec.NewThunk(ctx, func(c exec.Ctx) graph.Value { return f(c, x) })
	}
	ParListWHNF(ctx, ts)
	out := make([]graph.Value, len(ts))
	for i, t := range ts {
		out[i] = ctx.Force(t)
	}
	return out
}

// SplitIntoN partitions xs into n contiguous sublists of near-equal
// length (Eden's splitIntoN / GpH's chunking helper).
func SplitIntoN[T any](n int, xs []T) [][]T {
	if n <= 0 {
		n = 1
	}
	if n > len(xs) && len(xs) > 0 {
		n = len(xs)
	}
	out := make([][]T, 0, n)
	for i := 0; i < n; i++ {
		lo := len(xs) * i / n
		hi := len(xs) * (i + 1) / n
		out = append(out, xs[lo:hi])
	}
	return out
}

// Chunk splits xs into contiguous chunks of the given size (the final
// chunk may be shorter).
func Chunk[T any](size int, xs []T) [][]T {
	if size <= 0 {
		size = 1
	}
	var out [][]T
	for lo := 0; lo < len(xs); lo += size {
		hi := lo + size
		if hi > len(xs) {
			hi = len(xs)
		}
		out = append(out, xs[lo:hi])
	}
	return out
}

// ParBuffer is GpH's parBuffer strategy: it keeps a sliding window of n
// sparks ahead of the consumer, sparking element i+n as element i is
// forced. Unlike ParList it bounds the speculative work in flight —
// right for long (or conceptually infinite) streams of work. It forces
// and returns every element's value.
func ParBuffer(ctx exec.Ctx, n int, ts []*graph.Thunk) []graph.Value {
	if n < 1 {
		n = 1
	}
	for i := 0; i < n && i < len(ts); i++ {
		ctx.Par(ts[i])
	}
	out := make([]graph.Value, len(ts))
	for i := range ts {
		if i+n < len(ts) {
			ctx.Par(ts[i+n])
		}
		out[i] = ctx.Force(ts[i])
	}
	return out
}
