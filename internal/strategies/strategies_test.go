package strategies

import (
	"testing"
	"testing/quick"

	"parhask/internal/exec"
	"parhask/internal/gph"
	"parhask/internal/graph"
	"parhask/internal/rts"
)

func TestParMapComputesInOrder(t *testing.T) {
	cfg := gph.WorkStealingConfig(4)
	res, err := gph.Run(cfg, func(ctx *rts.Ctx) graph.Value {
		xs := []graph.Value{1, 2, 3, 4, 5, 6, 7, 8}
		out := ParMap(ctx, func(c exec.Ctx, v graph.Value) graph.Value {
			c.Burn(200_000)
			return v.(int) * 10
		}, xs)
		return out
	})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Value.([]graph.Value)
	for i, v := range out {
		if v != (i+1)*10 {
			t.Fatalf("out[%d] = %v, want %d", i, v, (i+1)*10)
		}
	}
}

func TestParMapEqualsSequentialMap(t *testing.T) {
	// Semantic property: parMap f xs == map f xs for a pure f.
	f := func(v graph.Value) graph.Value { return v.(int)*3 + 1 }
	cfg := gph.WorkStealingConfig(8)
	res, err := gph.Run(cfg, func(ctx *rts.Ctx) graph.Value {
		xs := make([]graph.Value, 40)
		for i := range xs {
			xs[i] = i
		}
		par := ParMap(ctx, func(c exec.Ctx, v graph.Value) graph.Value {
			c.Burn(50_000)
			return f(v)
		}, xs)
		for i := range xs {
			if par[i] != f(xs[i]) {
				return false
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != true {
		t.Fatal("parMap disagrees with map")
	}
}

func TestSeqListForcesInOrder(t *testing.T) {
	cfg := gph.NewConfig(1)
	res, err := gph.Run(cfg, func(ctx *rts.Ctx) graph.Value {
		var order []int
		ts := make([]*graph.Thunk, 5)
		for i := range ts {
			i := i
			ts[i] = Thunk(func(c *rts.Ctx) graph.Value {
				order = append(order, i)
				return i
			})
		}
		SeqList(RWHNF)(ctx, ts)
		return order
	})
	if err != nil {
		t.Fatal(err)
	}
	order := res.Value.([]int)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestUsingReturnsSameThunk(t *testing.T) {
	cfg := gph.NewConfig(2)
	_, err := gph.Run(cfg, func(ctx *rts.Ctx) graph.Value {
		th := Thunk(func(c *rts.Ctx) graph.Value { return 9 })
		got := Using(ctx, th, RWHNF)
		if got != th {
			t.Error("Using must return its thunk")
		}
		if !th.IsEvaluated() {
			t.Error("RWHNF strategy did not evaluate")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestR0DoesNothing(t *testing.T) {
	cfg := gph.NewConfig(1)
	_, err := gph.Run(cfg, func(ctx *rts.Ctx) graph.Value {
		th := Thunk(func(c *rts.Ctx) graph.Value { return 1 })
		R0(ctx, th)
		if th.IsEvaluated() {
			t.Error("R0 must not evaluate")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRNFForcesNestedStructure(t *testing.T) {
	cfg := gph.NewConfig(1)
	_, err := gph.Run(cfg, func(ctx *rts.Ctx) graph.Value {
		inner := Thunk(func(c *rts.Ctx) graph.Value { return 5 })
		outer := graph.NewThunk(func(c graph.Context) graph.Value {
			return []*graph.Thunk{inner, graph.NewValue(6)}
		})
		RNF(ctx, outer)
		if !inner.IsEvaluated() {
			t.Error("RNF did not force inner thunk")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitIntoNProperty(t *testing.T) {
	f := func(nRaw uint8, lenRaw uint16) bool {
		n := int(nRaw%20) + 1
		xs := make([]int, int(lenRaw%500))
		for i := range xs {
			xs[i] = i
		}
		parts := SplitIntoN(n, xs)
		// Concatenation restores the input; sizes differ by at most 1.
		var cat []int
		minLen, maxLen := 1<<30, 0
		for _, p := range parts {
			cat = append(cat, p...)
			if len(p) < minLen {
				minLen = len(p)
			}
			if len(p) > maxLen {
				maxLen = len(p)
			}
		}
		if len(cat) != len(xs) {
			return false
		}
		for i := range cat {
			if cat[i] != xs[i] {
				return false
			}
		}
		return len(xs) == 0 || maxLen-minLen <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChunkProperty(t *testing.T) {
	f := func(sizeRaw uint8, lenRaw uint16) bool {
		size := int(sizeRaw%30) + 1
		xs := make([]int, int(lenRaw%400))
		for i := range xs {
			xs[i] = i
		}
		chunks := Chunk(size, xs)
		var cat []int
		for i, c := range chunks {
			if len(c) == 0 || len(c) > size {
				return false
			}
			if i < len(chunks)-1 && len(c) != size {
				return false // only the last chunk may be short
			}
			cat = append(cat, c...)
		}
		if len(cat) != len(xs) {
			return false
		}
		for i := range cat {
			if cat[i] != xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParListSparksAll(t *testing.T) {
	cfg := gph.WorkStealingConfig(2)
	res, err := gph.Run(cfg, func(ctx *rts.Ctx) graph.Value {
		ts := make([]*graph.Thunk, 10)
		for i := range ts {
			ts[i] = Thunk(func(c *rts.Ctx) graph.Value { c.Burn(10_000); return 1 })
		}
		ParListWHNF(ctx, ts)
		sum := 0
		for _, th := range ts {
			sum += ctx.Force(th).(int)
		}
		return sum
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 10 {
		t.Fatalf("sum = %v", res.Value)
	}
	if res.Stats.SparksCreated != 10 {
		t.Fatalf("sparks = %d, want 10", res.Stats.SparksCreated)
	}
}

func TestParBufferValuesAndWindow(t *testing.T) {
	cfg := gph.WorkStealingConfig(4)
	res, err := gph.Run(cfg, func(ctx *rts.Ctx) graph.Value {
		ts := make([]*graph.Thunk, 30)
		for i := range ts {
			i := i
			ts[i] = Thunk(func(c *rts.Ctx) graph.Value {
				c.Burn(100_000)
				return i * 2
			})
		}
		out := ParBuffer(ctx, 5, ts)
		for i, v := range out {
			if v != i*2 {
				t.Errorf("out[%d] = %v", i, v)
			}
		}
		return len(out)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 30 {
		t.Fatalf("got %v", res.Value)
	}
	// Every element sparked exactly once: window n up front plus one per
	// consumed element until the tail.
	if res.Stats.SparksCreated+res.Stats.SparksDud != 30 {
		t.Fatalf("sparks+duds = %d, want 30", res.Stats.SparksCreated+res.Stats.SparksDud)
	}
}

func TestParBufferWindowOne(t *testing.T) {
	cfg := gph.NewConfig(2)
	res, err := gph.Run(cfg, func(ctx *rts.Ctx) graph.Value {
		ts := []*graph.Thunk{
			Thunk(func(c *rts.Ctx) graph.Value { return 1 }),
			Thunk(func(c *rts.Ctx) graph.Value { return 2 }),
		}
		out := ParBuffer(ctx, 0, ts) // clamps to 1
		return out[0].(int) + out[1].(int)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 3 {
		t.Fatalf("got %v", res.Value)
	}
}
