package nativeeden

import (
	"errors"
	"testing"
	"time"

	"parhask/internal/faults"
	"parhask/internal/graph"
	"parhask/internal/pe"
	"parhask/internal/workloads/euler"
)

// TestResidentLaneReusesPEs runs a sequence of jobs on one lane and
// checks every value against the oracle: the PEs, arenas and channel
// registries must come out of each job reusable.
func TestResidentLaneReusesPEs(t *testing.T) {
	l := NewResident(NewConfig(3))
	defer l.Close()
	for i, n := range []int{100, 300, 500, 300, 100} {
		res, err := l.RunJob(JobConfig{Deadline: 30 * time.Second},
			euler.EdenProgram(n, 2, 0))
		if err != nil {
			t.Fatalf("job %d (n=%d): %v", i, n, err)
		}
		if want := euler.SumTotientSieve(n); res.Value.(int64) != want {
			t.Fatalf("job %d (n=%d) = %v, want %d", i, n, res.Value, want)
		}
		if res.PEs != 3 {
			t.Fatalf("job %d ran on %d PEs", i, res.PEs)
		}
		if res.Stats.Messages == 0 {
			t.Fatalf("job %d recorded no messages: per-job stats not scoped", i)
		}
	}
	if l.JobsDone() != 5 || l.JobsFailed() != 0 {
		t.Fatalf("done=%d failed=%d", l.JobsDone(), l.JobsFailed())
	}
}

// TestResidentLaneRecoversFromFailure injects a process panic into one
// job and asserts the next job on the same lane runs clean — the
// per-job RTS (failure latch, watchdog) must not leak across jobs.
func TestResidentLaneRecoversFromFailure(t *testing.T) {
	l := NewResident(NewConfig(3))
	defer l.Close()

	plan, err := faults.Parse("seed=7,panic-proc=0")
	if err != nil {
		t.Fatal(err)
	}
	_, jerr := l.RunJob(JobConfig{Deadline: 5 * time.Second, Faults: faults.NewInjector(plan)},
		euler.EdenProgram(300, 2, 0))
	if jerr == nil {
		t.Fatal("faulted job completed without error")
	}
	var ip *faults.InjectedPanic
	var de *faults.DeadlockError
	if !errors.As(jerr, &ip) && !errors.As(jerr, &de) {
		t.Fatalf("faulted job error is not structured: %v", jerr)
	}

	res, err := l.RunJob(JobConfig{Deadline: 30 * time.Second},
		euler.EdenProgram(200, 2, 0))
	if err != nil {
		t.Fatalf("clean job after fault: %v", err)
	}
	if want := euler.SumTotientSieve(200); res.Value.(int64) != want {
		t.Fatalf("post-fault job = %v, want %d", res.Value, want)
	}
}

// TestResidentLaneDeadlineScoped: a hung job fails with a structured
// DeadlockError, and the lane is reusable afterwards.
func TestResidentLaneDeadlineScoped(t *testing.T) {
	l := NewResident(NewConfig(2))
	defer l.Close()
	_, jerr := l.RunJob(JobConfig{Deadline: 200 * time.Millisecond},
		func(p pe.Ctx) graph.Value {
			in, _ := p.NewChan(0)
			return p.Receive(in) // nobody ever sends
		})
	var de *faults.DeadlockError
	if !errors.As(jerr, &de) {
		t.Fatalf("hung job error = %v, want *faults.DeadlockError", jerr)
	}
	res, err := l.RunJob(JobConfig{Deadline: 30 * time.Second},
		euler.EdenProgram(100, 1, 0))
	if err != nil {
		t.Fatalf("job after deadlock: %v", err)
	}
	if want := euler.SumTotientSieve(100); res.Value.(int64) != want {
		t.Fatalf("post-deadlock job = %v, want %d", res.Value, want)
	}
}

// TestResidentLaneClosedRejects: RunJob after Close returns the
// sentinel.
func TestResidentLaneClosedRejects(t *testing.T) {
	l := NewResident(NewConfig(2))
	l.Close()
	_, err := l.RunJob(JobConfig{}, euler.EdenProgram(50, 1, 0))
	if !errors.Is(err, ErrResidentClosed) {
		t.Fatalf("RunJob after Close = %v, want ErrResidentClosed", err)
	}
}

// TestResidentLaneEventlogPerJob: each job's eventlog is its own.
func TestResidentLaneEventlogPerJob(t *testing.T) {
	l := NewResident(NewConfig(2))
	defer l.Close()
	r1, err := l.RunJob(JobConfig{Deadline: 30 * time.Second, EventLog: true},
		euler.EdenProgram(100, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := l.RunJob(JobConfig{Deadline: 30 * time.Second, EventLog: true},
		euler.EdenProgram(100, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Events == nil || r2.Events == nil {
		t.Fatal("missing per-job eventlog")
	}
	if r1.Events == r2.Events {
		t.Fatal("jobs shared an eventlog")
	}
}
