package nativeeden

import (
	"errors"
	"testing"
	"time"

	"parhask/internal/eventlog"
	"parhask/internal/faults"
	"parhask/internal/graph"
	"parhask/internal/metrics"
	"parhask/internal/pe"
	"parhask/internal/workloads/euler"
)

// TestResidentLaneReusesPEs runs a sequence of jobs on one lane and
// checks every value against the oracle: the PEs, arenas and channel
// registries must come out of each job reusable.
func TestResidentLaneReusesPEs(t *testing.T) {
	l := NewResident(NewConfig(3))
	defer l.Close()
	for i, n := range []int{100, 300, 500, 300, 100} {
		res, err := l.RunJob(JobConfig{Deadline: 30 * time.Second},
			euler.EdenProgram(n, 2, 0))
		if err != nil {
			t.Fatalf("job %d (n=%d): %v", i, n, err)
		}
		if want := euler.SumTotientSieve(n); res.Value.(int64) != want {
			t.Fatalf("job %d (n=%d) = %v, want %d", i, n, res.Value, want)
		}
		if res.PEs != 3 {
			t.Fatalf("job %d ran on %d PEs", i, res.PEs)
		}
		if res.Stats.Messages == 0 {
			t.Fatalf("job %d recorded no messages: per-job stats not scoped", i)
		}
	}
	if l.JobsDone() != 5 || l.JobsFailed() != 0 {
		t.Fatalf("done=%d failed=%d", l.JobsDone(), l.JobsFailed())
	}
}

// TestResidentLaneRecoversFromFailure injects a process panic into one
// job and asserts the next job on the same lane runs clean — the
// per-job RTS (failure latch, watchdog) must not leak across jobs.
func TestResidentLaneRecoversFromFailure(t *testing.T) {
	l := NewResident(NewConfig(3))
	defer l.Close()

	plan, err := faults.Parse("seed=7,panic-proc=0")
	if err != nil {
		t.Fatal(err)
	}
	_, jerr := l.RunJob(JobConfig{Deadline: 5 * time.Second, Faults: faults.NewInjector(plan)},
		euler.EdenProgram(300, 2, 0))
	if jerr == nil {
		t.Fatal("faulted job completed without error")
	}
	var ip *faults.InjectedPanic
	var de *faults.DeadlockError
	if !errors.As(jerr, &ip) && !errors.As(jerr, &de) {
		t.Fatalf("faulted job error is not structured: %v", jerr)
	}

	res, err := l.RunJob(JobConfig{Deadline: 30 * time.Second},
		euler.EdenProgram(200, 2, 0))
	if err != nil {
		t.Fatalf("clean job after fault: %v", err)
	}
	if want := euler.SumTotientSieve(200); res.Value.(int64) != want {
		t.Fatalf("post-fault job = %v, want %d", res.Value, want)
	}
}

// TestResidentLaneDeadlineScoped: a hung job fails with a structured
// DeadlockError, and the lane is reusable afterwards.
func TestResidentLaneDeadlineScoped(t *testing.T) {
	l := NewResident(NewConfig(2))
	defer l.Close()
	_, jerr := l.RunJob(JobConfig{Deadline: 200 * time.Millisecond},
		func(p pe.Ctx) graph.Value {
			in, _ := p.NewChan(0)
			return p.Receive(in) // nobody ever sends
		})
	var de *faults.DeadlockError
	if !errors.As(jerr, &de) {
		t.Fatalf("hung job error = %v, want *faults.DeadlockError", jerr)
	}
	res, err := l.RunJob(JobConfig{Deadline: 30 * time.Second},
		euler.EdenProgram(100, 1, 0))
	if err != nil {
		t.Fatalf("job after deadlock: %v", err)
	}
	if want := euler.SumTotientSieve(100); res.Value.(int64) != want {
		t.Fatalf("post-deadlock job = %v, want %d", res.Value, want)
	}
}

// TestResidentLaneClosedRejects: RunJob after Close returns the
// sentinel.
func TestResidentLaneClosedRejects(t *testing.T) {
	l := NewResident(NewConfig(2))
	l.Close()
	_, err := l.RunJob(JobConfig{}, euler.EdenProgram(50, 1, 0))
	if !errors.Is(err, ErrResidentClosed) {
		t.Fatalf("RunJob after Close = %v, want ErrResidentClosed", err)
	}
}

// TestResidentLaneEventlogPerJob: each job's eventlog is its own.
func TestResidentLaneEventlogPerJob(t *testing.T) {
	l := NewResident(NewConfig(2))
	defer l.Close()
	r1, err := l.RunJob(JobConfig{Deadline: 30 * time.Second, EventLog: true},
		euler.EdenProgram(100, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := l.RunJob(JobConfig{Deadline: 30 * time.Second, EventLog: true},
		euler.EdenProgram(100, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Events == nil || r2.Events == nil {
		t.Fatal("missing per-job eventlog")
	}
	if r1.Events == r2.Events {
		t.Fatal("jobs shared an eventlog")
	}
}

// TestResidentLaneMetrics: a metered lane feeds the shared eden series,
// and two lanes on one registry share them (idempotent registration).
func TestResidentLaneMetrics(t *testing.T) {
	reg := metrics.New()
	cfg := NewConfig(2)
	cfg.Metrics = reg
	l1 := NewResident(cfg)
	defer l1.Close()
	l2 := NewResident(cfg)
	defer l2.Close()

	for i, l := range []*Resident{l1, l2} {
		res, err := l.RunJob(JobConfig{Deadline: 30 * time.Second},
			euler.EdenProgram(200, 2, 0))
		if err != nil {
			t.Fatalf("lane %d: %v", i, err)
		}
		if res.Stats.Messages == 0 {
			t.Fatalf("lane %d job recorded no messages", i)
		}
	}

	cs := reg.Counters()
	if got := cs[`eden_lane_jobs_total{outcome="ok"}`]; got != 2 {
		t.Fatalf("jobs_total ok = %v, want 2 (lanes must share series)", got)
	}
	if got := cs[`eden_lane_jobs_total{outcome="error"}`]; got != 0 {
		t.Fatalf("jobs_total error = %v, want 0", got)
	}
	if got := cs["eden_lane_job_seconds_count"]; got != 2 {
		t.Fatalf("job_seconds count = %v, want 2", got)
	}
	if got := cs["eden_lane_wait_seconds_count"]; got != 2 {
		t.Fatalf("wait_seconds count = %v, want 2", got)
	}
	if got := cs["eden_lane_messages_total"]; got < 2 {
		t.Fatalf("messages_total = %v, want >= 2", got)
	}
}

// TestResidentLaneTraceMark: a traced lane job's PE-0 ring opens with
// the TraceMark, and the dump round-trips to a per-PE timeline.
func TestResidentLaneTraceMark(t *testing.T) {
	l := NewResident(NewConfig(2))
	defer l.Close()
	res, err := l.RunJob(JobConfig{Deadline: 30 * time.Second, EventLog: true, TraceID: 7},
		euler.EdenProgram(200, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Events == nil {
		t.Fatal("traced job has no eventlog")
	}
	ev := res.Events.Events(0)
	if len(ev) == 0 || ev[0].Type != eventlog.TraceMark || ev[0].Arg != 7 {
		t.Fatalf("PE-0 ring does not start with TraceMark(7): %+v", ev[:min(3, len(ev))])
	}
	agents := []string{"pe0", "pe1"}
	d := res.Events.Dump(agents)
	rl, err := d.Log()
	if err != nil {
		t.Fatal(err)
	}
	if tl := rl.TraceAgents(d.Agents); len(tl.Agents()) != 2 {
		t.Fatalf("trace agents = %d, want 2", len(tl.Agents()))
	}
}
