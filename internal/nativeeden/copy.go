package nativeeden

import (
	"fmt"
	"reflect"

	"parhask/internal/eden"
	"parhask/internal/graph"
)

// copyForSend deep-copies a normal-form message value so the receiver
// gets a structure sharing no mutable heap with the sender — the
// in-process stand-in for Eden's pack/unpack across address spaces.
// Evaluated thunks become fresh evaluated thunks around a copy of their
// value; an unevaluated thunk is a normal-form violation and returns
// the same *eden.UnevaluatedError the packing layer raises. Pure value
// types (no pointers, slices or maps anywhere in the type) are shared
// as-is: a value boxed in an interface cannot be mutated, so sharing it
// is already a copy.
func copyForSend(v graph.Value) (graph.Value, error) {
	switch x := v.(type) {
	case nil, bool, int, int8, int16, int32, int64,
		uint, uint8, uint16, uint32, uint64, uintptr,
		float32, float64, complex64, complex128, string:
		return v, nil
	case *graph.Thunk:
		return copyThunk(x)
	case []graph.Value:
		out := make([]graph.Value, len(x))
		for i, e := range x {
			c, err := copyForSend(e)
			if err != nil {
				return nil, err
			}
			out[i] = c
		}
		return out, nil
	case []int:
		return append([]int(nil), x...), nil
	case []int64:
		return append([]int64(nil), x...), nil
	case []float64:
		return append([]float64(nil), x...), nil
	case [][]float64:
		out := make([][]float64, len(x))
		for i, row := range x {
			out[i] = append([]float64(nil), row...)
		}
		return out, nil
	case [][]int:
		out := make([][]int, len(x))
		for i, row := range x {
			out[i] = append([]int(nil), row...)
		}
		return out, nil
	default:
		rv, err := reflectCopy(reflect.ValueOf(v))
		if err != nil {
			return nil, err
		}
		return rv.Interface(), nil
	}
}

// copyThunk copies an evaluated thunk into a fresh node; unevaluated
// graph in a message is the normal-form violation SizeOfChecked also
// rejects.
func copyThunk(t *graph.Thunk) (graph.Value, error) {
	if !t.IsEvaluated() {
		return nil, &eden.UnevaluatedError{State: t.State()}
	}
	c, err := copyForSend(t.Value())
	if err != nil {
		return nil, err
	}
	return graph.NewValue(c), nil
}

var thunkType = reflect.TypeOf((*graph.Thunk)(nil))

// reflectCopy clones arbitrary message types (workload structs like the
// master-worker result packet) field by field. It refuses — with a
// diagnosable error, not silent sharing — anything it cannot prove
// copied: unexported fields in indirect types, channels, funcs.
func reflectCopy(rv reflect.Value) (reflect.Value, error) {
	t := rv.Type()
	if pureValue(t) {
		return rv, nil
	}
	switch t.Kind() {
	case reflect.Slice:
		if rv.IsNil() {
			return rv, nil
		}
		out := reflect.MakeSlice(t, rv.Len(), rv.Len())
		for i := 0; i < rv.Len(); i++ {
			c, err := reflectCopy(rv.Index(i))
			if err != nil {
				return reflect.Value{}, err
			}
			out.Index(i).Set(c)
		}
		return out, nil
	case reflect.Array:
		out := reflect.New(t).Elem()
		for i := 0; i < rv.Len(); i++ {
			c, err := reflectCopy(rv.Index(i))
			if err != nil {
				return reflect.Value{}, err
			}
			out.Index(i).Set(c)
		}
		return out, nil
	case reflect.Map:
		if rv.IsNil() {
			return rv, nil
		}
		out := reflect.MakeMapWithSize(t, rv.Len())
		iter := rv.MapRange()
		for iter.Next() {
			k, err := reflectCopy(iter.Key())
			if err != nil {
				return reflect.Value{}, err
			}
			v, err := reflectCopy(iter.Value())
			if err != nil {
				return reflect.Value{}, err
			}
			out.SetMapIndex(k, v)
		}
		return out, nil
	case reflect.Interface:
		if rv.IsNil() {
			return rv, nil
		}
		c, err := copyForSend(rv.Interface())
		if err != nil {
			return reflect.Value{}, err
		}
		out := reflect.New(t).Elem()
		if c != nil {
			out.Set(reflect.ValueOf(c))
		}
		return out, nil
	case reflect.Pointer:
		if rv.IsNil() {
			return rv, nil
		}
		if t == thunkType {
			c, err := copyThunk(rv.Interface().(*graph.Thunk))
			if err != nil {
				return reflect.Value{}, err
			}
			return reflect.ValueOf(c), nil
		}
		out := reflect.New(t.Elem())
		c, err := reflectCopy(rv.Elem())
		if err != nil {
			return reflect.Value{}, err
		}
		out.Elem().Set(c)
		return out, nil
	case reflect.Struct:
		out := reflect.New(t).Elem()
		for i := 0; i < t.NumField(); i++ {
			if !t.Field(i).IsExported() {
				return reflect.Value{}, fmt.Errorf("cannot copy %s across heaps: unexported field %s", t, t.Field(i).Name)
			}
			c, err := reflectCopy(rv.Field(i))
			if err != nil {
				return reflect.Value{}, err
			}
			out.Field(i).Set(c)
		}
		return out, nil
	default:
		return reflect.Value{}, fmt.Errorf("cannot copy %s across heaps", t)
	}
}

// pureValue reports whether t contains no indirection at any depth —
// such a value, once boxed in an interface, is immutable, so it may be
// shared across PEs without breaking heap isolation. Notably this
// covers the port types (structs of ints) and strings.
func pureValue(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128,
		reflect.String:
		return true
	case reflect.Array:
		return pureValue(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if !pureValue(t.Field(i).Type) {
				return false
			}
		}
		return true
	default:
		return false
	}
}
