package nativeeden

import (
	"errors"
	"testing"
	"time"

	"parhask/internal/eden"
	"parhask/internal/faults"
	"parhask/internal/graph"
	"parhask/internal/pe"
	"parhask/internal/workloads/euler"
)

func mustPlan(t *testing.T, spec string) *faults.Injector {
	t.Helper()
	p, err := faults.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return faults.NewInjector(p)
}

func TestEdenCrossPEReceiveIsStructured(t *testing.T) {
	// Satellite: channel misuse raises a typed *eden.ChanMisuseError
	// (reachable through errors.As on the run error), not a bare string.
	done := make(chan error, 1)
	go func() {
		_, err := Run(NewConfig(2), func(p pe.Ctx) graph.Value {
			in, out := p.NewChan(0) // owned by PE 0
			p.Spawn(1, "thief", func(w pe.Ctx) {
				w.Receive(in) // cross-PE receive: misuse
			})
			p.Send(out, 1)
			hang := graph.NewPlaceholder()
			return p.Force(hang) // wait for the thief's failure to abort us
		})
		done <- err
	}()
	err := awaitRun(t, done)
	var me *eden.ChanMisuseError
	if !errors.As(err, &me) {
		t.Fatalf("err = %v, want *eden.ChanMisuseError", err)
	}
	if me.Op != "Receive" || me.Reason != "cross-pe" || me.PE != 1 || me.Owner != 0 {
		t.Fatalf("misuse fields: %+v", me)
	}
}

func TestEdenReceiveCycleDeadlock(t *testing.T) {
	// The satellite's canonical hang: two PEs each Receive on a channel
	// the other is supposed to fill, but both receive first. The
	// quiescence watchdog must turn the hang into a structured
	// *faults.DeadlockError naming both blocked threads and their
	// channels.
	cfg := NewConfig(2)
	cfg.Deadline = 10 * time.Second // quiescence fires long before this
	done := make(chan error, 1)
	go func() {
		_, err := Run(cfg, func(p pe.Ctx) graph.Value {
			in0, out0 := p.NewChan(0)
			in1, out1 := p.NewChan(1)
			p.Spawn(1, "peer", func(w pe.Ctx) {
				v := w.Receive(in1) // blocks: root receives before sending
				w.Send(out0, v)
			})
			v := p.Receive(in0) // blocks: peer receives before sending
			p.Send(out1, v)
			return v
		})
		done <- err
	}()
	err := awaitRun(t, done)
	var de *faults.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *faults.DeadlockError", err)
	}
	if de.Backend != "nativeeden" || de.Reason != "quiescence" {
		t.Fatalf("deadlock fields: %+v", de)
	}
	var root, peer *faults.BlockedThread
	for i := range de.Blocked {
		b := &de.Blocked[i]
		if b.PE == 0 && b.Thread == "root" {
			root = b
		}
		if b.PE == 1 && b.Thread == "peer" {
			peer = b
		}
	}
	if root == nil || peer == nil {
		t.Fatalf("diagnostics %v should name both blocked threads", de.Blocked)
	}
	if root.Reason != "channel" || root.Chan < 0 {
		t.Fatalf("root diagnostics should name its channel: %+v", root)
	}
	if peer.Reason != "channel" || peer.Peer != 0 {
		t.Fatalf("peer diagnostics should name channel and creator PE: %+v", peer)
	}
}

func TestEdenInjectedProcPanic(t *testing.T) {
	// Process index 0 (the first spawned thread) dies on entry; the
	// root blocked on its reply must unwind with the typed fault.
	cfg := NewConfig(2)
	cfg.Faults = mustPlan(t, "seed=4,panic-proc=0")
	done := make(chan error, 1)
	go func() {
		_, err := Run(cfg, func(p pe.Ctx) graph.Value {
			in, out := p.NewChan(0)
			p.Spawn(1, "victim", func(w pe.Ctx) {
				w.Send(out, 1)
			})
			return p.Receive(in)
		})
		done <- err
	}()
	err := awaitRun(t, done)
	var ip *faults.InjectedPanic
	if !errors.As(err, &ip) || ip.Kind != "proc" || ip.Index != 0 {
		t.Fatalf("err = %v, want proc *faults.InjectedPanic index 0", err)
	}
	if c := cfg.Faults.Counts(); c.Panics != 1 {
		t.Fatalf("Counts.Panics = %d, want 1", c.Panics)
	}
}

func TestEdenDroppedMessageBecomesDeadlock(t *testing.T) {
	// Every PE0→PE1 message is dropped, so the spawned process never
	// receives its input and the run quiesces: the watchdog must report
	// it rather than hang, and the drop must be counted.
	cfg := NewConfig(2)
	cfg.Faults = mustPlan(t, "seed=9,drop=1@0-1")
	cfg.Deadline = 10 * time.Second
	done := make(chan error, 1)
	go func() {
		_, err := Run(cfg, func(p pe.Ctx) graph.Value {
			reqIn, reqOut := p.NewChan(1)
			repIn, repOut := p.NewChan(0)
			p.Spawn(1, "echo", func(w pe.Ctx) {
				w.Send(repOut, w.Receive(reqIn))
			})
			p.Send(reqOut, 7) // dropped
			return p.Receive(repIn)
		})
		done <- err
	}()
	err := awaitRun(t, done)
	var de *faults.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *faults.DeadlockError", err)
	}
	if c := cfg.Faults.Counts(); c.Drops < 1 {
		t.Fatalf("Counts.Drops = %d, want >= 1", c.Drops)
	}
}

func TestEdenDelayedMessagesStillCorrect(t *testing.T) {
	// Delaying every message must slow the run, not change its result.
	cfg := NewConfig(2)
	cfg.Faults = mustPlan(t, "seed=3,delay=1ms:1")
	res, err := Run(cfg, euler.EdenProgram(200, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if want := euler.SumTotientSieve(200); res.Value.(int64) != want {
		t.Fatalf("delayed run result %v != %d", res.Value, want)
	}
	if c := cfg.Faults.Counts(); c.Delays < 1 {
		t.Fatalf("Counts.Delays = %d, want >= 1", c.Delays)
	}
}

func TestEdenStallInjection(t *testing.T) {
	cfg := NewConfig(2)
	cfg.Faults = mustPlan(t, "stall=1:1ms")
	res, err := Run(cfg, euler.EdenProgram(200, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if want := euler.SumTotientSieve(200); res.Value.(int64) != want {
		t.Fatalf("stalled run result %v != %d", res.Value, want)
	}
}

func TestEdenFailedRunKeepsEventlog(t *testing.T) {
	// Satellite: failed runs return the partial Result with flushed
	// event rings so tracedump renders the timeline up to the failure.
	cfg := NewConfig(2)
	cfg.EventLog = true
	cfg.Faults = mustPlan(t, "seed=6,panic-proc=0")
	done := make(chan error, 1)
	var res *Result
	go func() {
		r, err := Run(cfg, func(p pe.Ctx) graph.Value {
			in, out := p.NewChan(0)
			p.Spawn(1, "victim", func(w pe.Ctx) { w.Send(out, 1) })
			return p.Receive(in)
		})
		res = r
		done <- err
	}()
	if err := awaitRun(t, done); err == nil {
		t.Fatal("run must fail")
	}
	if res == nil || res.Events == nil {
		t.Fatal("failed run must carry its eventlog")
	}
	if res.Value != nil {
		t.Fatal("failed runs must not leak a value")
	}
	tl := res.Trace()
	if tl == nil || len(tl.Agents()) == 0 {
		t.Fatal("failed run's eventlog must reduce to a renderable timeline")
	}
}

func TestEdenSupervisedSpawnDeliversVerdicts(t *testing.T) {
	// A supervised thread's panic is contained: the run continues, the
	// supervisor receives a ThreadFailure death notice, and a healthy
	// supervised thread still reports true.
	res, err := Run(NewConfig(3), func(p pe.Ctx) graph.Value {
		sup := p.(pe.SupervisedSpawner)
		badDone := sup.SpawnSupervised(1, "bad", func(w pe.Ctx) {
			panic("worker boom")
		})
		in, out := p.NewChan(0)
		goodDone := sup.SpawnSupervised(2, "good", func(w pe.Ctx) {
			w.Send(out, 42)
		})
		verdict := p.Receive(badDone)
		tf, ok := verdict.(pe.ThreadFailure)
		if !ok {
			panic("bad worker's verdict is not a ThreadFailure")
		}
		if tf.PE != 1 || tf.Name != "bad" || tf.Err == "" {
			panic("death notice fields wrong")
		}
		if v := p.Receive(goodDone); v != true {
			panic("good worker's verdict is not true")
		}
		return p.Receive(in)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 42 {
		t.Fatalf("value = %v, want 42", res.Value)
	}
}

func TestEdenSupervisedPanicPoisonsClaims(t *testing.T) {
	// A supervised thread dying mid-thunk must poison its claim so a
	// sibling blocked on the same thunk unblocks into the failure path
	// instead of waiting on a permanent black hole.
	res, err := Run(NewConfig(2), func(p pe.Ctx) graph.Value {
		sup := p.(pe.SupervisedSpawner)
		boom := graph.NewThunk(func(graph.Context) graph.Value { panic("mid-eval boom") })
		done := sup.SpawnSupervised(0, "claimant", func(w pe.Ctx) {
			w.Force(boom)
		})
		if _, ok := p.Receive(done).(pe.ThreadFailure); !ok {
			panic("claimant should have died")
		}
		if boom.State() != graph.Poisoned {
			panic("claimed thunk was not poisoned")
		}
		return 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 1 {
		t.Fatalf("value = %v", res.Value)
	}
}

func TestEdenCancelStream(t *testing.T) {
	// A producer dies after two elements; the supervisor cancels the
	// stream and the drain finishes with exactly the delivered prefix.
	res, err := Run(NewConfig(2), func(p pe.Ctx) graph.Value {
		sup := p.(pe.SupervisedSpawner)
		canc := p.(pe.StreamCanceller)
		in, out := p.NewStream(0)
		done := sup.SpawnSupervised(1, "producer", func(w pe.Ctx) {
			w.StreamSend(out, 10)
			w.StreamSend(out, 20)
			panic("producer boom")
		})
		if _, ok := p.Receive(done).(pe.ThreadFailure); !ok {
			panic("producer should have died")
		}
		canc.CancelStream(in)
		xs := p.RecvAll(in)
		if len(xs) != 2 || xs[0] != 10 || xs[1] != 20 {
			panic("drained prefix wrong")
		}
		return len(xs)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 2 {
		t.Fatalf("value = %v, want 2", res.Value)
	}
}

func TestEdenFaultReplayDeterministic(t *testing.T) {
	// The replay guarantee: one spec, one failure shape, every run.
	for i := 0; i < 3; i++ {
		cfg := NewConfig(2)
		cfg.Faults = mustPlan(t, "seed=9,drop=1@0-1")
		cfg.Deadline = 10 * time.Second
		done := make(chan error, 1)
		go func() {
			_, err := Run(cfg, func(p pe.Ctx) graph.Value {
				in, out := p.NewChan(1)
				rin, rout := p.NewChan(0)
				p.Spawn(1, "echo", func(w pe.Ctx) { w.Send(rout, w.Receive(in)) })
				p.Send(out, 1)
				return p.Receive(rin)
			})
			done <- err
		}()
		err := awaitRun(t, done)
		var de *faults.DeadlockError
		if !errors.As(err, &de) {
			t.Fatalf("replay %d: err = %v, want *faults.DeadlockError", i, err)
		}
	}
}
