// Cluster mode: the native Eden runtime as one member of a multi-
// process cluster. Each OS process runs PerProc PEs and the program is
// SPMD — every process executes the same main, but only rank 0's root
// thread is real. The other ranks run a *shadow root*: a replay that
// performs the root's channel and process creations (so the cluster
// agrees on channel ids and thread placement) while turning its sends
// into no-ops and parking at its first receive.
//
// What makes the replay sound for the bundled skeletons is that their
// root threads create every channel and spawn every process *before*
// the first root receive, from a deterministic, input-independent
// prefix of main. Root-thread channel ids come from a counter that
// replays identically in every process; non-root threads take ids from
// a rank-partitioned space ((rank+1)<<workerIDShift | seq), which keeps
// them globally unique without coordination. Channel cells are created
// on their owning process by whichever side touches them first — the
// replayed creation, the first remote delivery, or the first local
// receive — so arrival order between the replay and the transport
// reader does not matter.
//
// Cross-process sends replace the in-process deep copy (copyForSend)
// with the wire codec: the value is reduced to normal form, encoded —
// wire.Encode asserts the byte count equals eden.SizeOfChecked, so the
// charged size IS the bytes on the wire — shipped through the
// ClusterTransport, and decoded into a fresh heap on the owning
// process. Decoding is the copy: no thunk is ever reachable from two
// processes, let alone two machines.
//
// Failure semantics: a worker has no local quiescence watchdog — a PE
// waiting on a remote message is locally quiescent but globally fine —
// so deadline/quiescence detection belongs to the coordinator (see
// internal/cluster), which also turns a dead worker process or severed
// link into a structured *faults.ProcessDeathError. A transport send
// that fails (link severed) panics with the ordinary structured
// *eden.SendError carrying the transport error.
package nativeeden

import (
	"errors"
	"fmt"

	"parhask/internal/eden"
	"parhask/internal/eden/wire"
	"parhask/internal/eventlog"
	"parhask/internal/faults"
	"parhask/internal/graph"
)

// ClusterSpec places one process inside a multi-process Eden cluster.
type ClusterSpec struct {
	// Rank is this process's index in [0, Procs); rank 0 runs the real
	// root thread.
	Rank int
	// Procs is the number of worker processes.
	Procs int
	// PerProc is the number of PEs each process owns; process k owns
	// global PEs [k*PerProc, (k+1)*PerProc).
	PerProc int
	// Transport ships encoded messages to PEs owned by other processes.
	Transport ClusterTransport
}

// TotalPEs is the cluster-wide PE count programs observe via PEs().
func (c *ClusterSpec) TotalPEs() int { return c.Procs * c.PerProc }

// Owns reports whether this process hosts global PE pe.
func (c *ClusterSpec) Owns(pe int) bool { return pe/c.PerProc == c.Rank }

// OwnerRank returns the rank of the process hosting global PE pe.
func (c *ClusterSpec) OwnerRank(pe int) int { return pe / c.PerProc }

func (c *ClusterSpec) validate() error {
	switch {
	case c.Procs < 1:
		return fmt.Errorf("nativeeden: cluster needs at least 1 process, have %d", c.Procs)
	case c.PerProc < 1:
		return fmt.Errorf("nativeeden: cluster needs at least 1 PE per process, have %d", c.PerProc)
	case c.Rank < 0 || c.Rank >= c.Procs:
		return fmt.Errorf("nativeeden: cluster rank %d outside [0,%d)", c.Rank, c.Procs)
	case c.Transport == nil && c.Procs > 1:
		return errors.New("nativeeden: multi-process cluster needs a transport")
	}
	return nil
}

// MsgKind discriminates the cluster data messages. They mirror the
// three in-process delivery operations one to one.
type MsgKind uint8

const (
	// MsgChanSend resolves a one-value channel's cell.
	MsgChanSend MsgKind = 1 + iota
	// MsgStreamSend appends one element to a stream.
	MsgStreamSend
	// MsgStreamClose terminates a stream (no payload).
	MsgStreamClose
)

// ClusterTransport ships one encoded message to the process owning dst.
// Implementations must be safe for concurrent use; per-(src,dst) FIFO
// order must be preserved (streams rely on it, exactly as Eden's
// per-edge order guarantee).
type ClusterTransport interface {
	SendRemote(kind MsgKind, chanID int64, src, dst int, payload []byte) error
}

// ErrDrained is the error a worker's run ends with when the
// coordinator drains the cluster after the root's result is in. It is
// the clean shutdown path, not a failure.
var ErrDrained = errors.New("nativeeden: cluster run drained")

// Drain unwinds the run from outside: every blocked thread (including
// a parked shadow root) aborts, the run joins, and RunMain returns
// ErrDrained. Called by the cluster worker when the coordinator says
// the root's result has been collected.
func (r *RTS) Drain() { r.fail(ErrDrained) }

// Fail aborts the run from outside with err — the worker's hook for
// transport-level failures its reader goroutine detects (a lost
// coordinator connection, an undecodable delivery).
func (r *RTS) Fail(err error) { r.fail(err) }

// workerIDShift partitions the channel-id space: root-thread ids are
// small positive integers from the replayed counter; thread ids on
// rank k live above (k+1)<<workerIDShift. 2^40 root-thread channels is
// out of reach, so the spaces cannot collide.
const workerIDShift = 40

// newChanID allocates a channel or stream id. Root-thread allocations
// replay identically in every process (that is what lets a port built
// by rank 0 name the same cell on rank 2); other threads draw from
// their rank's private partition.
func (r *RTS) newChanID(isRoot bool) int64 {
	cl := r.cfg.Cluster
	if cl == nil || isRoot {
		return r.chanIDs.Add(1)
	}
	return int64(cl.Rank+1)<<workerIDShift | r.workerChanIDs.Add(1)
}

// owned reports whether global PE pe is hosted by this process.
func (r *RTS) owned(pe int) bool {
	cl := r.cfg.Cluster
	return cl == nil || cl.Owns(pe)
}

// ensureCell returns the channel's cell, creating it if this is the
// first touch (replay, delivery and receive race benignly; whoever is
// first installs the placeholder). Caller holds p.mu.
func (p *peRT) ensureCell(id int64, origin int) *cellState {
	c := p.cells[id]
	if c == nil {
		c = &cellState{t: p.arena.NewPlaceholder(), origin: origin}
		p.cells[id] = c
	}
	return c
}

// ensureStream is ensureCell for stream channels. Caller holds p.mu.
func (p *peRT) ensureStream(id int64, origin int) *streamState {
	st := p.streams[id]
	if st == nil {
		head := p.arena.NewPlaceholder()
		st = &streamState{tail: head, cursor: head, origin: origin}
		p.streams[id] = st
	}
	return st
}

// Deliver applies one remote message to its locally-owned destination
// PE: decode into a fresh heap, ensure the cell or stream, resolve,
// broadcast. Called by the transport's reader goroutine; safe against
// the PE's own threads (it takes the PE lock) and never panics — a
// malformed or impossible message comes back as a structured error for
// the worker to report.
func (r *RTS) Deliver(kind MsgKind, chanID int64, src, dst int, payload []byte) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = panicErr(fmt.Sprintf("nativeeden: delivery to chan %d on PE %d failed", chanID, dst), v)
		}
	}()
	if r.failed.Load() {
		// The run already failed or drained: late frames (a reconnect
		// replay, stragglers routed before the coordinator saw the
		// report) are discarded, never re-resolved into a dead heap.
		return nil
	}
	if dst < 0 || dst >= len(r.pes) || r.pes[dst] == nil {
		return fmt.Errorf("nativeeden: delivery to PE %d, which rank %d does not own", dst, r.cfg.Cluster.Rank)
	}
	d := r.pes[dst]
	var msg graph.Value
	var bytes int64
	if kind == MsgStreamClose {
		bytes = 16 // a Nil packs as one word, matching StreamClose
	} else {
		v, derr := wire.Decode(payload)
		if derr != nil {
			return fmt.Errorf("nativeeden: decode for chan %d (PE %d from PE %d): %w", chanID, dst, src, derr)
		}
		msg = v
		bytes = int64(len(payload))
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	switch kind {
	case MsgChanSend:
		cell := d.ensureCell(chanID, src)
		d.ctr.MsgsRecv++
		d.ctr.BytesRecv += bytes
		if d.ev != nil {
			d.ev.EmitArg(eventlog.MsgRecv, int32(src))
		}
		cell.t.Resolve(msg)
		d.cond.Broadcast()
	case MsgStreamSend:
		bytes += eden.ConsOverhead
		st := d.ensureStream(chanID, src)
		if st.cancelled {
			return nil // receiver cancelled; late elements vanish silently
		}
		if st.tail == nil {
			return fmt.Errorf("nativeeden: stream %d on PE %d already closed (element from PE %d)", chanID, dst, src)
		}
		next := d.arena.NewPlaceholder()
		cur := st.tail
		st.tail = next
		d.ctr.MsgsRecv++
		d.ctr.BytesRecv += bytes
		if d.ev != nil {
			d.ev.EmitArg(eventlog.MsgRecv, int32(src))
		}
		cur.Resolve(eden.Cons{Head: msg, Tail: next})
		d.cond.Broadcast()
	case MsgStreamClose:
		st := d.ensureStream(chanID, src)
		if st.cancelled {
			return nil
		}
		if st.tail == nil {
			return fmt.Errorf("nativeeden: stream %d on PE %d closed twice (close from PE %d)", chanID, dst, src)
		}
		cur := st.tail
		st.tail = nil
		d.ctr.MsgsRecv++
		d.ctr.BytesRecv += bytes
		if d.ev != nil {
			d.ev.EmitArg(eventlog.MsgRecv, int32(src))
		}
		cur.Resolve(eden.Nil{})
		d.cond.Broadcast()
	default:
		return fmt.Errorf("nativeeden: unknown cluster message kind %d", kind)
	}
	return nil
}

// sendRemote is the cross-process half of Send/StreamSend/StreamClose:
// encode (the byte count is asserted equal to eden.SizeOfChecked inside
// wire.Encode), count, inject message faults, then ship through the
// transport with this PE's lock released — the write may block on a
// real socket, and transport is a yield point exactly like withPE.
// extra is the non-payload charge (ConsOverhead for a stream element,
// the 16-byte Nil for a close).
func (p *PCtx) sendRemote(op string, kind MsgKind, id int64, dest int, nf graph.Value, extra int64) {
	if p.pe.ev != nil {
		p.pe.ev.Emit(eventlog.CommBegin)
	}
	var payload []byte
	if kind != MsgStreamClose {
		var err error
		payload, err = wire.Encode(nf)
		if err != nil {
			panic(&eden.SendError{Op: op, Chan: id, PE: p.pe.id, Dest: dest, Err: err})
		}
	}
	bytes := int64(len(payload)) + extra
	p.pe.ctr.MsgsSent++
	p.pe.ctr.BytesSent += bytes
	if p.pe.ev != nil {
		p.pe.ev.EmitArg(eventlog.MsgSend, int32(dest))
	}
	if p.rts.cfg.Faults != nil && p.injectSendFaults(dest) == faults.Drop {
		if p.pe.ev != nil {
			p.pe.ev.Emit(eventlog.CommEnd)
		}
		return
	}
	tr := p.rts.cfg.Cluster.Transport
	src := p.pe.id
	p.pe.mu.Unlock()
	err := tr.SendRemote(kind, id, src, dest, payload)
	p.pe.mu.Lock()
	if err != nil {
		// A severed link surfaces as the ordinary structured send error
		// with the transport failure as its cause.
		panic(&eden.SendError{Op: op, Chan: id, PE: src, Dest: dest, Err: err})
	}
	if p.pe.ev != nil {
		p.pe.ev.Emit(eventlog.CommEnd)
	}
}

// parkForever suspends a shadow root at its first receive: the real
// root on rank 0 is doing the receiving. The park ends only when the
// run unwinds — Drain or a failure — via the ordinary errAborted
// panic, so the shadow root joins like any other thread.
func (p *PCtx) parkForever() {
	if p.pe.ev != nil {
		p.pe.ev.Emit(eventlog.BlockBegin)
	}
	for {
		p.pe.checkFailed()
		p.rts.blocked.Add(1)
		p.pe.cond.Wait()
		p.rts.blocked.Add(-1)
		p.rts.progress.Add(1)
	}
}
