package nativeeden_test

// In-process cluster tests: several member RTSes in one test process,
// wired by a loopback transport that calls Deliver synchronously. This
// exercises the whole cluster machinery — shadow-root replay, the
// deterministic channel-id agreement, wire-codec remote sends, ensure-
// on-first-touch delivery — without forking processes; the process-
// level coordinator and transports are tested in internal/cluster.

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"parhask/internal/eden"
	"parhask/internal/graph"
	"parhask/internal/nativeeden"
	"parhask/internal/pe"
	"parhask/internal/workloads/apsp"
	"parhask/internal/workloads/euler"
	"parhask/internal/workloads/matmul"
)

// memHub routes cluster messages between in-process member RTSes.
type memHub struct {
	perProc int
	mu      sync.Mutex
	rts     []*nativeeden.RTS
	severed []bool
}

type memPort struct {
	h    *memHub
	rank int
}

func (t *memPort) SendRemote(kind nativeeden.MsgKind, chanID int64, src, dst int, payload []byte) error {
	owner := dst / t.h.perProc
	t.h.mu.Lock()
	target := t.h.rts[owner]
	sev := t.h.severed[t.rank] || t.h.severed[owner]
	t.h.mu.Unlock()
	if sev {
		return fmt.Errorf("memhub: link %d->%d severed", t.rank, owner)
	}
	if target == nil {
		return fmt.Errorf("memhub: rank %d not assembled", owner)
	}
	return target.Deliver(kind, chanID, src, dst, payload)
}

// runCluster runs main SPMD over procs×perProc PEs and returns rank
// 0's value plus every rank's Result (drained workers included).
func runCluster(t *testing.T, procs, perProc int, main pe.Program, sever func(h *memHub)) (graph.Value, []*nativeeden.Result, error) {
	t.Helper()
	h := &memHub{perProc: perProc, rts: make([]*nativeeden.RTS, procs), severed: make([]bool, procs)}
	for rank := 0; rank < procs; rank++ {
		r, err := nativeeden.NewRTS(nativeeden.Config{Cluster: &nativeeden.ClusterSpec{
			Rank: rank, Procs: procs, PerProc: perProc,
			Transport: &memPort{h: h, rank: rank},
		}})
		if err != nil {
			t.Fatalf("NewRTS rank %d: %v", rank, err)
		}
		h.mu.Lock()
		h.rts[rank] = r
		h.mu.Unlock()
	}
	if sever != nil {
		sever(h)
	}

	results := make([]*nativeeden.Result, procs)
	errs := make([]error, procs)
	var wg sync.WaitGroup
	for rank := 1; rank < procs; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			results[rank], errs[rank] = h.rts[rank].RunMain(main)
		}(rank)
	}
	results[0], errs[0] = h.rts[0].RunMain(main)
	// Rank 0 is done (its root returned or failed): drain the workers,
	// exactly as the coordinator does after collecting the result.
	for rank := 1; rank < procs; rank++ {
		h.rts[rank].Drain()
	}
	wg.Wait()
	for rank := 1; rank < procs; rank++ {
		if errs[rank] != nil && !errors.Is(errs[rank], nativeeden.ErrDrained) {
			t.Logf("rank %d ended with %v", rank, errs[rank])
		}
	}
	var value graph.Value
	if results[0] != nil {
		value = results[0].Value
	}
	return value, results, errs[0]
}

func TestClusterSumEuler(t *testing.T) {
	const n, procs, perProc = 1500, 3, 2
	v, _, err := runCluster(t, procs, perProc, euler.EdenProgram(n, 2, 0), nil)
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	if want := euler.SumTotientSieve(n); v.(int64) != want {
		t.Fatalf("cluster sumEuler(%d) = %v, want %d", n, v, want)
	}
}

func TestClusterAPSPRing(t *testing.T) {
	g := apsp.RandomGraph(24, 7, 40, 4)
	want := apsp.FloydWarshall(apsp.Clone(g))
	v, _, err := runCluster(t, 3, 2, apsp.EdenRingProgram(apsp.Clone(g), 3, 0), nil)
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	if !apsp.Equal(v.(apsp.Graph), want) {
		t.Fatal("cluster APSP result differs from Floyd-Warshall oracle")
	}
}

func TestClusterMatmulTorus(t *testing.T) {
	a, b := matmul.Random(16, 1), matmul.Random(16, 2)
	want := matmul.MulOracle(a, b)
	v, _, err := runCluster(t, 2, 2, matmul.EdenCannonProgram(a, b, 2, 0), nil)
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	if !matmul.Equal(v.(matmul.Mat), want, 1e-9) {
		t.Fatal("cluster Cannon result differs from sequential oracle")
	}
}

// TestClusterByteConservation: with no faults, every message charged by
// a sender is received with the same byte count somewhere in the
// cluster — the packing model and the wire bytes agree end to end.
func TestClusterByteConservation(t *testing.T) {
	_, results, err := runCluster(t, 3, 2, euler.EdenProgram(800, 2, 0), nil)
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	var sentMsgs, recvMsgs, sentBytes, recvBytes int64
	for rank, res := range results {
		if res == nil {
			t.Fatalf("rank %d returned no result", rank)
		}
		for _, ps := range res.PerPE {
			sentMsgs += ps.MsgsSent
			recvMsgs += ps.MsgsRecv
			sentBytes += ps.BytesSent
			recvBytes += ps.BytesRecv
		}
	}
	if sentMsgs == 0 {
		t.Fatal("no messages counted")
	}
	if sentMsgs != recvMsgs || sentBytes != recvBytes {
		t.Fatalf("conservation violated: sent %d msgs / %d bytes, received %d msgs / %d bytes",
			sentMsgs, sentBytes, recvMsgs, recvBytes)
	}
}

// TestClusterSeveredLink: a dead link surfaces as the structured
// *eden.SendError carrying the transport failure, not a hang.
func TestClusterSeveredLink(t *testing.T) {
	_, _, err := runCluster(t, 3, 2, euler.EdenProgram(1500, 2, 0),
		func(h *memHub) { h.severed[1] = true })
	var se *eden.SendError
	if !errors.As(err, &se) {
		t.Fatalf("rank 0 error = %v, want *eden.SendError from the severed link", err)
	}
}

func TestClusterSpecValidation(t *testing.T) {
	bad := []nativeeden.ClusterSpec{
		{Rank: 0, Procs: 0, PerProc: 1},
		{Rank: 0, Procs: 2, PerProc: 0},
		{Rank: 2, Procs: 2, PerProc: 1},
		{Rank: -1, Procs: 2, PerProc: 1},
		{Rank: 0, Procs: 2, PerProc: 1}, // no transport
	}
	for i := range bad {
		spec := bad[i]
		if _, err := nativeeden.NewRTS(nativeeden.Config{Cluster: &spec}); err == nil {
			t.Errorf("spec %+v should be rejected", spec)
		}
	}
}
