package nativeeden

import (
	"parhask/internal/eden/wire"
	"parhask/internal/graph"
)

// Wire codecs for the native backend's port types (tag block 72..79).
// Ports are plain {channel id, PE} values, so a port crossing process
// boundaries inside a message (Eden's reply-channel idiom) ships its
// two words and nothing else — the cells it names stay on the owning
// PE.
func init() {
	wire.Register(72, Inport{},
		func(e *wire.Enc, v graph.Value) error {
			p := v.(Inport)
			e.I64(p.id)
			e.I64(int64(p.pe))
			return nil
		},
		func(d *wire.Dec) (graph.Value, error) {
			id, pe, err := decPort(d)
			return Inport{id: id, pe: pe}, err
		})
	wire.Register(73, Outport{},
		func(e *wire.Enc, v graph.Value) error {
			p := v.(Outport)
			e.I64(p.id)
			e.I64(int64(p.dest))
			return nil
		},
		func(d *wire.Dec) (graph.Value, error) {
			id, dest, err := decPort(d)
			return Outport{id: id, dest: dest}, err
		})
	wire.Register(74, StreamIn{},
		func(e *wire.Enc, v graph.Value) error {
			p := v.(StreamIn)
			e.I64(p.id)
			e.I64(int64(p.pe))
			return nil
		},
		func(d *wire.Dec) (graph.Value, error) {
			id, pe, err := decPort(d)
			return StreamIn{id: id, pe: pe}, err
		})
	wire.Register(75, StreamOut{},
		func(e *wire.Enc, v graph.Value) error {
			p := v.(StreamOut)
			e.I64(p.id)
			e.I64(int64(p.dest))
			return nil
		},
		func(d *wire.Dec) (graph.Value, error) {
			id, dest, err := decPort(d)
			return StreamOut{id: id, dest: dest}, err
		})
}

func decPort(d *wire.Dec) (int64, int, error) {
	id, err := d.I64()
	if err != nil {
		return 0, 0, err
	}
	pe, err := d.I64()
	if err != nil {
		return 0, 0, err
	}
	return id, int(pe), nil
}
