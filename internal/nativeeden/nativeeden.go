// Package nativeeden is the real-concurrency counterpart of the
// simulated Eden runtime (internal/eden): N processing elements on real
// goroutines, each a self-contained sequential runtime with its own
// thunk arena and owner-written counters, connected by typed channels
// with Eden's normal-form-before-send semantics. It executes the same
// backend-neutral programs (pe.Program — the skeletons and the
// workloads' Eden programs) and measures wall-clock time, completing
// the paper's GpH-vs-Eden head-to-head on real hardware.
//
// Architecture:
//
//   - One goroutine per Eden thread; each thread belongs to exactly one
//     PE. A PE is a big lock (mutex + condvar): a thread holds its PE's
//     mutex for its entire execution and releases it only while blocked
//     on a placeholder (cond.Wait) or during message transport. Threads
//     of one PE therefore interleave only at communication and blocking
//     points — the same granularity as the simulator, which is what
//     makes the skeletons' plain shared-state mutations (e.g. the
//     master-worker coordination state) safe unchanged. Virtual PEs
//     beyond GOMAXPROCS are just goroutines; the Go scheduler
//     timeslices them the way the OS timesliced the paper's 9- and
//     17-PE PVM runs on 8 cores.
//   - No shared graph between PEs. Every value sent over a channel is
//     reduced to normal form, measured with the simulator's packing
//     model (eden.SizeOfChecked), and deep-copied before it is resolved
//     into the receiving PE's heap — a *graph.Thunk is never reachable
//     from two PEs. Channel cells live in a per-PE registry keyed by
//     channel id; ports are plain {id, pe} value structs, so shipping a
//     port ships no heap.
//   - Inports are heap placeholders (graph.NewPlaceholder): a thread
//     forcing one blocks on its PE's condvar until the message lands
//     and the deliverer broadcasts.
//   - Each PE owns a graph.Arena for its thunk allocation and a
//     wall-clock eventlog buffer; sends and receives emit
//     MsgSend/MsgRecv under CommBegin/CommEnd brackets, so the drained
//     log renders EdenTV-style per-PE timelines with message overlays
//     through the same exporters as the GpH runtimes.
//
// Go's garbage collector remains global — per-PE *independent* GC is a
// property this backend cannot reproduce honestly, so the telemetry
// reports what is real: run-level GC cycles/pauses plus per-PE
// allocation, arena footprint and message volume (see DESIGN.md §8).
package nativeeden

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"parhask/internal/eventlog"
	"parhask/internal/faults"
	"parhask/internal/gcscope"
	"parhask/internal/graph"
	"parhask/internal/metrics"
	"parhask/internal/pe"
	"parhask/internal/trace"
)

// Config selects a native Eden runtime setup.
type Config struct {
	// PEs is the number of processing elements. It may exceed
	// GOMAXPROCS (virtual PEs); defaults to GOMAXPROCS.
	PEs int
	// ArenaChunk is the per-PE thunk-arena chunk capacity, in thunks
	// (0 selects graph.DefaultArenaChunk).
	ArenaChunk int
	// EventLog enables the per-PE wall-clock event rings; Result.Trace
	// then renders the EdenTV-style per-PE timeline.
	EventLog bool
	// EventLogConfig tunes the event rings (zero value = defaults).
	EventLogConfig eventlog.Config
	// Faults is an optional fault-injection plan (nil = none): injected
	// process panics, per-edge message drop/delay, and stalled PEs, all
	// seed-deterministic for exact replay.
	Faults *faults.Injector
	// Deadline arms the watchdog: the run fails with a structured
	// *faults.DeadlockError either when global quiescence is detected
	// (every live thread blocked on a placeholder, no progress) or when
	// the hard deadline expires, whichever comes first. Zero disables
	// the watchdog (and quiescence detection with it).
	Deadline time.Duration
	// Metrics, if non-nil, registers lane telemetry series
	// (internal/metrics). Honoured by NewResident only; batch runs
	// report through Result. Nil — the default — keeps every recording
	// hook a nil check.
	Metrics *metrics.Registry
	// TraceID, if non-zero, tags PE 0's event ring with a TraceMark
	// carrying this id (ignored unless EventLog): the serve layer's
	// handle for pulling one request's timeline off a live server.
	TraceID int32
	// Cluster, if non-nil, makes this RTS one member of a multi-process
	// Eden cluster (see cluster.go): it hosts only its rank's PEs,
	// cross-process sends go through Cluster.Transport as wire-encoded
	// bytes, and PEs is overridden to Cluster.TotalPEs(). Deadline is
	// ignored — deadlock detection is the coordinator's job, because a
	// worker waiting on remote messages is locally quiescent.
	Cluster *ClusterSpec
}

// NewConfig returns a native Eden configuration with pes PEs.
func NewConfig(pes int) Config {
	if pes <= 0 {
		pes = runtime.GOMAXPROCS(0)
	}
	return Config{PEs: pes}
}

// Stats aggregates counters over one native Eden run.
type Stats struct {
	// Messages / BytesSent count every channel and stream packet
	// (stream elements are one message each, as in Eden).
	Messages  int64 `json:"messages"`
	BytesSent int64 `json:"bytes_sent"`
	// Processes counts Spawn instantiations; ThreadsCreated counts every
	// thread (processes, local forks, and the root).
	Processes      int64 `json:"processes"`
	ThreadsCreated int64 `json:"threads_created"`
}

// PEStats is one PE's share of the run counters — owner-written under
// the PE's lock, read after the run's join barrier.
type PEStats struct {
	// MsgsSent/MsgsRecv and BytesSent/BytesRecv count this PE's side of
	// every packet.
	MsgsSent  int64 `json:"msgs_sent"`
	MsgsRecv  int64 `json:"msgs_recv"`
	BytesSent int64 `json:"bytes_sent"`
	BytesRecv int64 `json:"bytes_recv"`
	// Threads counts threads that ran on this PE.
	Threads int64 `json:"threads"`
	// AllocBytes is the heap allocation the workload declared via Alloc
	// (the virtual-cost hook doubles as telemetry here); Resident is
	// long-lived data declared via AddResident.
	AllocBytes int64 `json:"alloc_bytes"`
	Resident   int64 `json:"resident_bytes"`
	// ArenaChunks/ArenaThunks describe the PE's thunk arena footprint.
	ArenaChunks int64 `json:"arena_chunks"`
	ArenaThunks int64 `json:"arena_thunks"`
}

// GCStats is what Go's (global) collector did while the run executed.
// There is no per-PE GC to report — Go's heap is shared — so this is
// run-level, with the per-PE allocation story carried by PEStats.
type GCStats struct {
	Cycles     int64 `json:"cycles"`
	PauseNS    int64 `json:"pause_ns"`
	BytesAlloc int64 `json:"bytes_alloc"`
	// Shared reports that another run's measurement window overlapped
	// this one, so the deltas describe the whole process over the
	// interval rather than this run alone (see internal/gcscope).
	Shared bool `json:"shared,omitempty"`
}

// Result is the outcome of one native Eden run.
type Result struct {
	// Value is what the root process returned.
	Value graph.Value
	// WallNS is the real elapsed time in nanoseconds.
	WallNS int64
	// PEs is the processing-element count the run used.
	PEs int
	// Stats is the whole-run aggregate.
	Stats Stats
	// PerPE breaks the counters down by PE.
	PerPE []PEStats
	// GC is the run-level Go GC telemetry.
	GC GCStats
	// Events is the drained per-PE eventlog (nil unless Config.EventLog).
	Events *eventlog.Log
}

// Wall returns the elapsed wall-clock time as a duration.
func (r *Result) Wall() time.Duration { return time.Duration(r.WallNS) }

// Trace reduces the run's eventlog into a wall-clock per-PE trace.Log
// ("pe0", "pe1", …), rendered by the same exporters as the simulated
// EdenTV figures. Returns nil when the run was not event-logged.
func (r *Result) Trace() *trace.Log {
	if r.Events == nil {
		return nil
	}
	return r.Events.TraceNamed("pe")
}

// Report is the machine-readable summary of a native Eden run.
type Report struct {
	PEs    int       `json:"pes"`
	WallNS int64     `json:"wall_ns"`
	Total  Stats     `json:"total"`
	GC     GCStats   `json:"gc"`
	PerPE  []PEStats `json:"per_pe"`
}

// Report builds the machine-readable summary of the run.
func (r *Result) Report() Report {
	return Report{PEs: r.PEs, WallNS: r.WallNS, Total: r.Stats, GC: r.GC, PerPE: r.PerPE}
}

// errAborted unwinds a blocked thread after another thread already
// recorded the run's failure.
var errAborted = errors.New("nativeeden: run aborted")

// peRT is one processing element: the big lock its threads serialise
// on, its private heap machinery, and its owner-written counters
// (owner = whichever thread currently holds mu).
type peRT struct {
	id   int
	rts  *RTS
	mu   sync.Mutex
	cond *sync.Cond

	// arena is this PE's thunk allocation region. Guarded by mu.
	arena *graph.Arena

	// cells maps channel id -> the inport placeholder living in this
	// PE's heap; streams maps stream id -> its cursor pair. Guarded by
	// mu.
	cells   map[int64]*cellState
	streams map[int64]*streamState

	// blockedOn records, per blocked thread, what it is waiting for —
	// the diagnostics a *faults.DeadlockError reports. Guarded by mu
	// (written by the blocking thread at block entry, read by the
	// watchdog under TryLock).
	blockedOn map[*PCtx]faults.BlockedThread

	// ctr is this PE's counter block. Guarded by mu.
	ctr PEStats

	// ev is this PE's wall-clock event ring (nil when disabled). All
	// emissions happen under mu, which serialises the PE's threads, so
	// the buffer's single-writer discipline holds.
	ev *eventlog.Buf
}

// cellState is one one-value channel's heap anchor on its owning PE:
// the inport placeholder plus the PE that created the channel (the
// best available guess at the peer expected to fill it, used by the
// deadlock watchdog's diagnostics).
type cellState struct {
	t      *graph.Thunk
	origin int
}

// streamState is one stream channel's heap anchor on its owning PE:
// tail is where the next arriving element lands (advanced by senders),
// cursor is the next cell the receiver will read. origin is the
// creating PE (watchdog diagnostics); cancelled marks a stream
// terminated from the receiving side by CancelStream, whose late
// sends are dropped silently instead of panicking.
type streamState struct {
	tail      *graph.Thunk
	cursor    *graph.Thunk
	origin    int
	cancelled bool
}

// RTS is a running native Eden instance.
type RTS struct {
	cfg Config
	pes []*peRT

	// chanIDs hands out channel and stream ids for root threads (a
	// sequence that replays identically across cluster processes);
	// workerChanIDs feeds the rank-partitioned space non-root threads
	// allocate from in cluster mode (see newChanID).
	chanIDs       atomic.Int64
	workerChanIDs atomic.Int64

	// stats fields updated from any thread.
	processes atomic.Int64
	threads   atomic.Int64

	// Watchdog bookkeeping. alive counts threads that have been spawned
	// and not yet exited; blocked counts threads currently inside
	// cond.Wait; progress increments on every wait return. Global
	// quiescence — alive > 0, blocked == alive, and all three stable
	// across watchdog ticks — is a deadlock: every live thread waits on
	// a placeholder no runnable thread can fill.
	alive    atomic.Int64
	blocked  atomic.Int64
	progress atomic.Uint64

	failed  atomic.Bool
	errOnce sync.Once
	err     error

	wg sync.WaitGroup

	events *eventlog.Log
}

// Run executes main as the root process on PE 0 and returns the
// result. The value is identical to the same program's simulated-Eden
// and sequential runs (referential transparency); only the time is
// real.
func Run(cfg Config, main pe.Program) (*Result, error) {
	r, err := NewRTS(cfg)
	if err != nil {
		return nil, err
	}
	return r.RunMain(main)
}

// NewRTS assembles a runtime without executing anything — the entry
// point cluster workers need, because the transport reader must be
// wired to Deliver before RunMain starts the program. In cluster mode
// only this rank's PEs exist; the r.pes slice keeps global indexing
// with nil holes for remote PEs.
func NewRTS(cfg Config) (*RTS, error) {
	if cl := cfg.Cluster; cl != nil {
		if err := cl.validate(); err != nil {
			return nil, err
		}
		cfg.PEs = cl.TotalPEs()
	} else if cfg.PEs <= 0 {
		cfg.PEs = runtime.GOMAXPROCS(0)
	}
	r := &RTS{cfg: cfg}
	r.pes = make([]*peRT, cfg.PEs)
	for i := range r.pes {
		if cl := cfg.Cluster; cl != nil && !cl.Owns(i) {
			continue
		}
		p := newPE(i, cfg.ArenaChunk)
		p.rts = r
		r.pes[i] = p
	}
	return r, nil
}

// RunMain executes main as the program's root process. On cluster rank
// 0 (and always outside cluster mode) the root is real; on other ranks
// it runs as the shadow-root replay (see cluster.go) and RunMain
// returns ErrDrained once the coordinator drains the run.
func (r *RTS) RunMain(main pe.Program) (*Result, error) {
	if main == nil {
		return nil, errors.New("nativeeden: nil main")
	}
	return r.run(main)
}

// newPE builds one processing element with empty registries and a
// fresh arena. The rts pointer is attached by the caller: a batch Run
// wires it once, a Resident lane re-points the same PEs at a fresh
// per-job RTS.
func newPE(id, arenaChunk int) *peRT {
	p := &peRT{id: id,
		arena:     graph.NewArena(arenaChunk),
		cells:     map[int64]*cellState{},
		streams:   map[int64]*streamState{},
		blockedOn: map[*PCtx]faults.BlockedThread{},
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// run executes main as the root process on PE 0 of an assembled RTS —
// the shared execution core of the batch Run and the Resident lane.
func (r *RTS) run(main pe.Program) (*Result, error) {
	cfg := r.cfg
	cl := cfg.Cluster
	gcWin := gcscope.Begin()
	start := time.Now()
	if cfg.EventLog {
		// In cluster mode the rings cover only the local PEs (event
		// indices are local; the worker names them by global PE id when
		// it dumps the log for the coordinator to fold).
		n := cfg.PEs
		if cl != nil {
			n = cl.PerProc
		}
		r.events = eventlog.New(start, n, cfg.EventLogConfig)
		li := 0
		for _, p := range r.pes {
			if p == nil {
				continue
			}
			// Publish the ring under the PE lock: in cluster mode the
			// transport reader is already live and Deliver checks p.ev
			// (under the same lock) to decide whether to emit MsgRecv.
			// A frame that lands before this sees nil and goes unlogged,
			// which is fine — but the pointer itself must not tear.
			p.mu.Lock()
			p.ev = r.events.Buf(li)
			li++
			if p.id == 0 && cfg.TraceID != 0 {
				// The mark is the ring's first event so a trace reader can
				// identify the job before decoding anything else. Emitted
				// pre-thread, so the single-writer rule holds.
				p.ev.EmitArg(eventlog.TraceMark, cfg.TraceID)
			}
			// A PE with no thread is idle, not runnable: open an Idle
			// bracket each thread's Run brackets nest inside. Emitted here,
			// before any thread exists, so the single-writer rule holds.
			p.ev.Emit(eventlog.IdleBegin)
			p.mu.Unlock()
		}
	}

	// The watchdog is its own goroutine: it fires while the root thread
	// itself may be among the deadlocked. Cluster members never arm it —
	// a worker blocked on remote messages is locally quiescent, so
	// deadlock detection belongs to the coordinator.
	var watchdogStop chan struct{}
	if cfg.Deadline > 0 && cl == nil {
		watchdogStop = make(chan struct{})
		go r.watchdog(start, watchdogStop)
	}

	// The caller's goroutine is the root process's thread on PE 0 — or,
	// on a cluster rank other than 0, the shadow-root replay pinned to
	// this rank's first local PE.
	var value graph.Value
	rootPE := r.pes[0]
	shadow := false
	if cl != nil && cl.Rank != 0 {
		rootPE = r.pes[cl.Rank*cl.PerProc]
		shadow = true
	}
	c0 := &PCtx{rts: r, pe: rootPE, name: "root", isRoot: true, shadow: shadow}
	runErr := func() (err error) {
		defer func() {
			if v := recover(); v != nil {
				if v == errAborted {
					err = r.err // visible: errOnce.Do precedes failed.Store
					return
				}
				err = panicErr("nativeeden: root process panicked", v)
				// Orphaned-claim recovery: poison whatever the root had
				// black-holed so blocked peers unblock into the failure.
				poisonThunks(c0.claims, err)
			}
		}()
		p0 := c0.pe
		r.threads.Add(1)
		r.alive.Add(1)
		defer r.alive.Add(-1)
		p0.mu.Lock()
		defer p0.mu.Unlock()
		p0.ctr.Threads++
		if p0.ev != nil {
			p0.ev.Emit(eventlog.RunBegin)
		}
		value = main(c0)
		if p0.ev != nil {
			p0.ev.Emit(eventlog.RunEnd)
		}
		return nil
	}()
	if runErr != nil {
		// The root's failure must unwind every blocked thread, exactly as
		// a thread panic aborts the root (see the native GpH runtime's
		// main-panic path for the hang this prevents). errOnce keeps the
		// first failure when the root merely unwound via errAborted.
		r.fail(runErr)
	}
	r.wg.Wait()
	if watchdogStop != nil {
		close(watchdogStop)
	}
	wall := time.Since(start)

	gcDelta := gcWin.End()

	if runErr == nil {
		runErr = r.err
	}

	res := &Result{Value: value, WallNS: wall.Nanoseconds(), PEs: cfg.PEs}
	res.GC = GCStats{
		Cycles:     gcDelta.Cycles,
		PauseNS:    gcDelta.PauseNS,
		BytesAlloc: gcDelta.BytesAlloc,
		Shared:     gcDelta.Shared,
	}
	res.Stats = Stats{Processes: r.processes.Load(), ThreadsCreated: r.threads.Load()}
	res.PerPE = make([]PEStats, cfg.PEs)
	for i, p := range r.pes {
		if p == nil {
			continue // remote PE (cluster mode); its owner reports it
		}
		// The WaitGroup barrier orders every PE-thread write before this,
		// but in cluster mode Deliver runs on the transport reader — a
		// late frame (reconnect replay, a straggler routed before the
		// coordinator saw our report) can still touch ctr and the arena.
		// The PE lock covers that writer.
		p.mu.Lock()
		ps := p.ctr
		ps.ArenaChunks, ps.ArenaThunks = p.arena.Stats()
		p.mu.Unlock()
		res.PerPE[i] = ps
		res.Stats.Messages += ps.MsgsSent
		res.Stats.BytesSent += ps.BytesSent
	}
	if r.events != nil {
		r.events.Close(res.WallNS)
		res.Events = r.events
	}
	if runErr != nil {
		// Failed runs still return the partial Result — flushed event
		// rings and counters — so tracedump and the chaos soak can render
		// what happened up to the failure. Only the value is withheld.
		res.Value = nil
		return res, runErr
	}
	return res, nil
}

// panicErr turns a recovered panic value into an error, preserving
// error values (typed injected faults, misuse errors, poison) through
// %w so errors.As sees them from the run error.
func panicErr(prefix string, p any) error {
	if err, ok := p.(error); ok {
		return fmt.Errorf("%s: %w", prefix, err)
	}
	return fmt.Errorf("%s: %v", prefix, p)
}

// poisonThunks marks every claimed thunk of a dead thread as Poisoned,
// newest-first, so peers blocked on them unblock into the failure path
// instead of waiting forever on a black hole.
func poisonThunks(claims []*graph.Thunk, err error) {
	for i := len(claims) - 1; i >= 0; i-- {
		if t := claims[i]; t != nil {
			t.Poison(err)
		}
	}
}

// watchdog polls the run's liveness counters. It fails the run with a
// structured *faults.DeadlockError on global quiescence (every live
// thread blocked, nothing progressing, stable across ticks) or when
// the hard deadline expires. Stopped by closing stop after the join
// barrier.
func (r *RTS) watchdog(start time.Time, stop chan struct{}) {
	const tick = 2 * time.Millisecond
	// ~40ms of perfect stillness before declaring quiescence: long
	// enough that a delay-injected sender (alive, not blocked) can't be
	// mistaken for deadlock, short enough that hung tests fail fast.
	const stableTicks = 20
	var lastAlive, lastBlocked int64
	var lastProgress uint64
	stable := 0
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		if r.failed.Load() {
			return
		}
		elapsed := time.Since(start)
		if elapsed >= r.cfg.Deadline {
			r.fail(r.deadlockError("deadline", elapsed))
			return
		}
		a, b, pr := r.alive.Load(), r.blocked.Load(), r.progress.Load()
		if a > 0 && b == a && a == lastAlive && b == lastBlocked && pr == lastProgress {
			stable++
			if stable >= stableTicks {
				r.fail(r.deadlockError("quiescence", elapsed))
				return
			}
		} else {
			stable = 0
		}
		lastAlive, lastBlocked, lastProgress = a, b, pr
	}
}

// deadlockError collects per-PE blocked-on diagnostics. TryLock, not
// Lock: on the quiescence path every PE lock is free (all threads are
// in cond.Wait), but on the deadline path a long-running mutator may
// hold its PE for its whole execution — report that PE as busy rather
// than hang the watchdog behind it.
func (r *RTS) deadlockError(reason string, elapsed time.Duration) *faults.DeadlockError {
	de := &faults.DeadlockError{Backend: "nativeeden", Reason: reason, Elapsed: elapsed}
	for _, p := range r.pes {
		if p == nil {
			continue
		}
		if !p.mu.TryLock() {
			de.Blocked = append(de.Blocked, faults.BlockedThread{
				PE: p.id, Thread: "(busy)", Reason: "running", Chan: -1, Peer: -1,
			})
			continue
		}
		for _, b := range p.blockedOn {
			de.Blocked = append(de.Blocked, b)
		}
		p.mu.Unlock()
	}
	sort.Slice(de.Blocked, func(i, j int) bool {
		if de.Blocked[i].PE != de.Blocked[j].PE {
			return de.Blocked[i].PE < de.Blocked[j].PE
		}
		return de.Blocked[i].Thread < de.Blocked[j].Thread
	})
	return de
}

// fail records the first thread failure and wakes every blocked thread
// so the run unwinds instead of hanging.
func (r *RTS) fail(err error) {
	r.errOnce.Do(func() { r.err = err })
	r.failed.Store(true)
	for _, p := range r.pes {
		if p == nil {
			continue
		}
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// checkFailed panics with errAborted if the run has failed; called at
// every blocking-loop iteration so no thread waits on a value that
// will never arrive.
func (p *peRT) checkFailed() {
	if p.rts.failed.Load() {
		panic(errAborted)
	}
}

// startThread runs body as a new Eden thread on this PE. The recover
// handler is registered before the lock is taken so that, on panic,
// the unlock (deferred later, hence run earlier) has already released
// the PE before fail() tries to lock every PE. alive is incremented
// here, synchronously, so the watchdog counts a spawned-but-not-yet-
// scheduled thread as live-and-runnable rather than seeing a
// transiently quiescent system.
func (r *RTS) startThread(p *peRT, name string, body func(*PCtx)) {
	r.wg.Add(1)
	r.threads.Add(1)
	r.alive.Add(1)
	go func() {
		defer r.wg.Done()
		defer r.alive.Add(-1)
		c := &PCtx{rts: r, pe: p, name: name}
		defer func() {
			if v := recover(); v != nil && v != errAborted {
				err := panicErr(fmt.Sprintf("nativeeden: PE %d thread %q panicked", p.id, name), v)
				// Orphaned-claim recovery before fail(): peers blocked on
				// this thread's black holes see poison, not a permanent
				// hole, even if they race past the abort flag.
				poisonThunks(c.claims, err)
				r.fail(err)
			}
		}()
		p.mu.Lock()
		defer p.mu.Unlock()
		c.begin()
		body(c)
		c.end()
	}()
}

// startSupervised runs body as a supervised Eden thread: a panic is
// contained — claims poisoned, PE woken, a pe.ThreadFailure death
// notice sent on the verdict channel — instead of aborting the run.
// Success sends true. Verdict delivery goes through the ordinary
// transport, so it is itself subject to message-fault injection (a
// dropped death notice becomes a watchdog-detected deadlock, which is
// the honest outcome).
func (r *RTS) startSupervised(p *peRT, name string, done Outport, body func(*PCtx)) {
	r.wg.Add(1)
	r.threads.Add(1)
	r.alive.Add(1)
	go func() {
		defer r.wg.Done()
		defer r.alive.Add(-1)
		c := &PCtx{rts: r, pe: p, name: name}
		aborted := false
		var failure *pe.ThreadFailure
		func() {
			defer func() {
				if v := recover(); v != nil {
					if v == errAborted {
						aborted = true
						return
					}
					err := panicErr(fmt.Sprintf("nativeeden: PE %d supervised thread %q panicked", p.id, name), v)
					poisonThunks(c.claims, err)
					// The deferred unlock already ran; wake siblings that
					// may be blocked on the freshly poisoned thunks.
					p.mu.Lock()
					p.cond.Broadcast()
					p.mu.Unlock()
					failure = &pe.ThreadFailure{PE: p.id, Name: name, Err: err.Error()}
				}
			}()
			p.mu.Lock()
			defer p.mu.Unlock()
			c.begin()
			body(c)
			c.end()
		}()
		if aborted {
			return
		}
		// Deliver the verdict. The send can fail too (injected faults,
		// closed run); that falls back to the ordinary abort path.
		func() {
			defer func() {
				if v := recover(); v != nil && v != errAborted {
					r.fail(panicErr(fmt.Sprintf("nativeeden: supervised thread %q verdict send failed", name), v))
				}
			}()
			p.mu.Lock()
			defer p.mu.Unlock()
			if failure != nil {
				if p.ev != nil {
					p.ev.EmitArg(eventlog.WorkerDead, int32(p.id))
				}
				c.Send(done, *failure)
			} else {
				c.Send(done, true)
			}
		}()
	}()
}
