package nativeeden

import (
	"errors"
	"runtime"
	"sync"
	"time"

	"parhask/internal/eventlog"
	"parhask/internal/faults"
	"parhask/internal/metrics"
	"parhask/internal/pe"
)

// ErrResidentClosed rejects RunJob after Close.
var ErrResidentClosed = errors.New("nativeeden: resident lane closed")

// JobConfig scopes one job on a resident lane.
type JobConfig struct {
	// Deadline arms the per-job watchdog (see Config.Deadline).
	Deadline time.Duration
	// Faults is this job's private fault budget (nil = none).
	Faults *faults.Injector
	// EventLog gives the job a per-PE event ring set of its own.
	EventLog bool
	// EventLogConfig tunes the rings (zero value = defaults).
	EventLogConfig eventlog.Config
	// TraceID, if non-zero, tags PE 0's ring with a TraceMark carrying
	// this id (ignored unless EventLog) — see Config.TraceID.
	TraceID int32
}

// Resident is a resident Eden lane: the PEs — their big locks, their
// thunk arenas, their channel registries — are created once and reused
// across jobs, so a job pays no PE construction and starts on warm
// arenas. One lane runs one job at a time: Eden's failure protocol
// (the run-global abort latch, the quiescence watchdog) is per-run
// state, so intra-lane concurrency would re-introduce exactly the
// cross-job blast radius the resident service exists to remove. For
// concurrent Eden traffic, run several lanes side by side (the serve
// layer keeps a small pool of lanes); jobs within a lane queue on its
// mutex.
//
// Between jobs the lane rewinds each PE's arena and clears its channel
// registries. The previous job's threads have all exited by then (the
// run joins them), and its Result carries only deep-copied plain
// values, so no pre-reset thunk is reachable — the Arena.Reset
// contract. A Result's Value must be consumed (or copied) before the
// next RunJob on the same lane.
type Resident struct {
	cfg Config

	mu     sync.Mutex
	pes    []*peRT
	closed bool

	jobsDone   int64
	jobsFailed int64

	// m records the lane's telemetry (nil unless Config.Metrics was
	// set). The series are registered idempotently, so every lane on
	// one registry shares them — the scrape sees the lane fleet as one
	// eden backend, matching how serve treats its lane pool.
	m *laneMetrics
}

// laneMetrics is the shared series set for resident Eden lanes.
type laneMetrics struct {
	jobsOK  *metrics.Counter
	jobsErr *metrics.Counter
	wait    *metrics.Histogram // lane acquisition: RunJob entry → job start
	wall    *metrics.Histogram // job wall time
	msgs    *metrics.Counter
	bytes   *metrics.Counter
}

func newLaneMetrics(reg *metrics.Registry) *laneMetrics {
	return &laneMetrics{
		jobsOK:  reg.Counter("eden_lane_jobs_total", "resident Eden lane jobs by outcome", "outcome", "ok"),
		jobsErr: reg.Counter("eden_lane_jobs_total", "resident Eden lane jobs by outcome", "outcome", "error"),
		wait:    reg.Histogram("eden_lane_wait_seconds", "time a job queued for a lane mutex before starting", 1e-9),
		wall:    reg.Histogram("eden_lane_job_seconds", "wall-clock latency of lane jobs", 1e-9),
		msgs:    reg.Counter("eden_lane_messages_total", "Eden messages sent by lane jobs"),
		bytes:   reg.Counter("eden_lane_bytes_sent_total", "Eden bytes shipped by lane jobs (packing model)"),
	}
}

// NewResident builds a lane with cfg.PEs warm processing elements.
// Config.Deadline/Faults/EventLog become per-job knobs (JobConfig);
// their Config values are ignored here.
func NewResident(cfg Config) *Resident {
	if cfg.PEs <= 0 {
		cfg.PEs = runtime.GOMAXPROCS(0)
	}
	l := &Resident{cfg: cfg}
	l.pes = make([]*peRT, cfg.PEs)
	for i := range l.pes {
		l.pes[i] = newPE(i, cfg.ArenaChunk)
	}
	if cfg.Metrics != nil {
		l.m = newLaneMetrics(cfg.Metrics)
	}
	return l
}

// PEs reports the lane's processing-element count.
func (l *Resident) PEs() int { return l.cfg.PEs }

// RunJob executes main as one job on the lane, blocking until it
// completes (queueing behind any job already running). Each job gets a
// fresh RTS — failure latch, watchdog, channel-id space — over the
// lane's persistent PEs.
func (l *Resident) RunJob(jc JobConfig, main pe.Program) (*Result, error) {
	if main == nil {
		return nil, errors.New("nativeeden: nil job main")
	}
	t0 := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.m != nil {
		// Lane-wait: how long the job queued behind the lane's one-job-
		// at-a-time mutex before it could start.
		l.m.wait.Observe(time.Since(t0).Nanoseconds())
	}
	if l.closed {
		return nil, ErrResidentClosed
	}
	cfg := l.cfg
	cfg.Deadline = jc.Deadline
	cfg.Faults = jc.Faults
	cfg.EventLog = jc.EventLog
	cfg.EventLogConfig = jc.EventLogConfig
	cfg.TraceID = jc.TraceID
	r := &RTS{cfg: cfg, pes: l.pes}
	for _, p := range l.pes {
		p.rts = r
		// The previous job's threads joined before its run returned, so
		// nothing reaches the old arena slots or registry entries.
		p.arena.Reset()
		clear(p.cells)
		clear(p.streams)
		clear(p.blockedOn)
		p.ctr = PEStats{} // stats are job-scoped; the arena stays warm
		p.ev = nil        // run re-wires rings if the job asked for them
	}
	res, err := r.run(main)
	if err != nil {
		l.jobsFailed++
	} else {
		l.jobsDone++
	}
	if l.m != nil {
		if err != nil {
			l.m.jobsErr.Inc()
		} else {
			l.m.jobsOK.Inc()
		}
		if res != nil {
			l.m.wall.Observe(res.WallNS)
			l.m.msgs.Add(res.Stats.Messages)
			l.m.bytes.Add(res.Stats.BytesSent)
		}
	}
	return res, err
}

// JobsDone and JobsFailed report completed-job counts.
func (l *Resident) JobsDone() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.jobsDone
}

func (l *Resident) JobsFailed() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.jobsFailed
}

// Close marks the lane unusable; a job in flight finishes first
// (RunJob holds the lane mutex for the job's duration). Idempotent.
func (l *Resident) Close() {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
}
