package nativeeden

import (
	"errors"
	"runtime"
	"sync"
	"time"

	"parhask/internal/eventlog"
	"parhask/internal/faults"
	"parhask/internal/pe"
)

// ErrResidentClosed rejects RunJob after Close.
var ErrResidentClosed = errors.New("nativeeden: resident lane closed")

// JobConfig scopes one job on a resident lane.
type JobConfig struct {
	// Deadline arms the per-job watchdog (see Config.Deadline).
	Deadline time.Duration
	// Faults is this job's private fault budget (nil = none).
	Faults *faults.Injector
	// EventLog gives the job a per-PE event ring set of its own.
	EventLog bool
	// EventLogConfig tunes the rings (zero value = defaults).
	EventLogConfig eventlog.Config
}

// Resident is a resident Eden lane: the PEs — their big locks, their
// thunk arenas, their channel registries — are created once and reused
// across jobs, so a job pays no PE construction and starts on warm
// arenas. One lane runs one job at a time: Eden's failure protocol
// (the run-global abort latch, the quiescence watchdog) is per-run
// state, so intra-lane concurrency would re-introduce exactly the
// cross-job blast radius the resident service exists to remove. For
// concurrent Eden traffic, run several lanes side by side (the serve
// layer keeps a small pool of lanes); jobs within a lane queue on its
// mutex.
//
// Between jobs the lane rewinds each PE's arena and clears its channel
// registries. The previous job's threads have all exited by then (the
// run joins them), and its Result carries only deep-copied plain
// values, so no pre-reset thunk is reachable — the Arena.Reset
// contract. A Result's Value must be consumed (or copied) before the
// next RunJob on the same lane.
type Resident struct {
	cfg Config

	mu     sync.Mutex
	pes    []*peRT
	closed bool

	jobsDone   int64
	jobsFailed int64
}

// NewResident builds a lane with cfg.PEs warm processing elements.
// Config.Deadline/Faults/EventLog become per-job knobs (JobConfig);
// their Config values are ignored here.
func NewResident(cfg Config) *Resident {
	if cfg.PEs <= 0 {
		cfg.PEs = runtime.GOMAXPROCS(0)
	}
	l := &Resident{cfg: cfg}
	l.pes = make([]*peRT, cfg.PEs)
	for i := range l.pes {
		l.pes[i] = newPE(i, cfg.ArenaChunk)
	}
	return l
}

// PEs reports the lane's processing-element count.
func (l *Resident) PEs() int { return l.cfg.PEs }

// RunJob executes main as one job on the lane, blocking until it
// completes (queueing behind any job already running). Each job gets a
// fresh RTS — failure latch, watchdog, channel-id space — over the
// lane's persistent PEs.
func (l *Resident) RunJob(jc JobConfig, main pe.Program) (*Result, error) {
	if main == nil {
		return nil, errors.New("nativeeden: nil job main")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrResidentClosed
	}
	cfg := l.cfg
	cfg.Deadline = jc.Deadline
	cfg.Faults = jc.Faults
	cfg.EventLog = jc.EventLog
	cfg.EventLogConfig = jc.EventLogConfig
	r := &RTS{cfg: cfg, pes: l.pes}
	for _, p := range l.pes {
		p.rts = r
		// The previous job's threads joined before its run returned, so
		// nothing reaches the old arena slots or registry entries.
		p.arena.Reset()
		clear(p.cells)
		clear(p.streams)
		clear(p.blockedOn)
		p.ctr = PEStats{} // stats are job-scoped; the arena stays warm
		p.ev = nil        // run re-wires rings if the job asked for them
	}
	res, err := r.run(main)
	if err != nil {
		l.jobsFailed++
	} else {
		l.jobsDone++
	}
	return res, err
}

// JobsDone and JobsFailed report completed-job counts.
func (l *Resident) JobsDone() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.jobsDone
}

func (l *Resident) JobsFailed() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.jobsFailed
}

// Close marks the lane unusable; a job in flight finishes first
// (RunJob holds the lane mutex for the job's duration). Idempotent.
func (l *Resident) Close() {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
}
