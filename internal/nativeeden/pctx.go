package nativeeden

import (
	"fmt"

	"parhask/internal/eden"
	"parhask/internal/eventlog"
	"parhask/internal/graph"
	"parhask/internal/pe"
)

// PCtx is the native backend's pe.Ctx: the context an Eden thread runs
// against. The thread holds its PE's mutex for its entire execution —
// every method below may assume the lock is held, and the blocking and
// transport operations are the only places it is released.
type PCtx struct {
	rts *RTS
	pe  *peRT
}

var (
	_ pe.Ctx        = (*PCtx)(nil)
	_ graph.Context = (*PCtx)(nil)
)

// Ports are plain {channel id, PE} value structs: shipping or capturing
// one moves no heap, so a port crossing PEs (in a message or a spawned
// closure) can never leak a thunk between heaps. The cells they name
// live in the owning PE's registry.

// Inport is the receiving end of a one-value channel.
type Inport struct {
	id int64
	pe int
}

// InPE returns the PE that owns the receiving end.
func (i Inport) InPE() int { return i.pe }

// Outport is the sending end of a one-value channel.
type Outport struct {
	id   int64
	dest int
}

// OutPE returns the destination PE.
func (o Outport) OutPE() int { return o.dest }

// StreamIn is the receiving end of an element-by-element stream.
type StreamIn struct {
	id int64
	pe int
}

// StreamInPE returns the PE that owns the receiving end.
func (s StreamIn) StreamInPE() int { return s.pe }

// StreamOut is the sending end of an element-by-element stream.
type StreamOut struct {
	id   int64
	dest int
}

// StreamOutPE returns the destination PE.
func (s StreamOut) StreamOutPE() int { return s.dest }

// --- generic mutator operations (graph.Context + pe.Ctx) ---

// Burn is a no-op: real time is consumed by actually computing.
func (p *PCtx) Burn(ns int64) {}

// Alloc records the workload's declared allocation as per-PE telemetry
// (the virtual-cost hook has no cost here, but the byte count is the
// per-PE allocation story the head-to-head reports).
func (p *PCtx) Alloc(bytes int64) { p.pe.ctr.AllocBytes += bytes }

// Force evaluates a thunk to weak head normal form on this PE.
func (p *PCtx) Force(t *graph.Thunk) graph.Value { return graph.Force(p, t) }

// ForceDeep evaluates a value to normal form on this PE.
func (p *PCtx) ForceDeep(v graph.Value) graph.Value { return graph.ForceDeep(p, v) }

// EagerBlackholing is true: threads of one PE interleave at blocking
// points, so without the claim a thread blocking mid-thunk would let a
// sibling duplicate the evaluation.
func (p *PCtx) EagerBlackholing() bool { return true }

// BlackholeWriteCost is zero: the claim's cost is the real CAS.
func (p *PCtx) BlackholeWriteCost() int64 { return 0 }

// EnteredThunk / LeftThunk are no-ops (no lazy entry table).
func (p *PCtx) EnteredThunk(t *graph.Thunk) {}
func (p *PCtx) LeftThunk(t *graph.Thunk)    {}

// NoteDuplicateEntry cannot fire under the eager policy; nothing to do.
func (p *PCtx) NoteDuplicateEntry(t *graph.Thunk) {}

// WakeThunkWaiters wakes the PE's blocked threads after an update.
func (p *PCtx) WakeThunkWaiters(t *graph.Thunk) { p.pe.cond.Broadcast() }

// BlockOnThunk suspends the thread on its PE's condvar until t is
// Evaluated: the wait releases the PE lock, so sibling threads run —
// the big-lock analogue of the simulator's thread descheduling.
func (p *PCtx) BlockOnThunk(t *graph.Thunk) {
	if p.pe.ev != nil {
		p.pe.ev.Emit(eventlog.BlockBegin)
	}
	for t.State() != graph.Evaluated {
		p.pe.checkFailed()
		p.pe.cond.Wait()
	}
	if p.pe.ev != nil {
		p.pe.ev.Emit(eventlog.BlockEnd)
	}
}

// --- PE identity and placement ---

// PE returns the index of the PE this thread runs on.
func (p *PCtx) PE() int { return p.pe.id }

// PEs returns the number of processing elements.
func (p *PCtx) PEs() int { return len(p.rts.pes) }

// AddResident declares long-lived heap data on the current PE.
func (p *PCtx) AddResident(bytes int64) { p.pe.ctr.Resident += bytes }

func (p *PCtx) norm(dest int) int {
	n := len(p.rts.pes)
	return ((dest % n) + n) % n
}

// Spawn instantiates a process on PE dest: a new thread (goroutine)
// whose execution serialises on the destination PE's lock.
func (p *PCtx) Spawn(dest int, name string, body func(pe.Ctx)) {
	p.rts.processes.Add(1)
	if p.pe.ev != nil {
		p.pe.ev.Emit(eventlog.Fork)
	}
	p.rts.startThread(p.rts.pes[p.norm(dest)], name, func(c *PCtx) { body(c) })
}

// ForkLocal starts an additional thread of the current process on the
// same PE.
func (p *PCtx) ForkLocal(name string, body func(pe.Ctx)) {
	p.rts.startThread(p.pe, name, func(c *PCtx) { body(c) })
}

// withPE runs f with dest's lock held (and, if dest is remote, this
// thread's own PE lock released — at most one PE lock is ever held, so
// transport cannot deadlock on lock order). Remote transport is thus a
// yield point for the sibling threads of this PE, matching the
// simulator's context-switch-at-communication granularity.
func (p *PCtx) withPE(dest int, f func(d *peRT)) {
	d := p.rts.pes[dest]
	if d == p.pe {
		f(d)
		return
	}
	p.pe.mu.Unlock()
	d.mu.Lock()
	defer func() {
		d.mu.Unlock()
		p.pe.mu.Lock()
	}()
	f(d)
}

// --- one-value channels ---

// NewChan creates a one-value channel whose receiving end (a heap
// placeholder) lives on PE dest.
func (p *PCtx) NewChan(dest int) (pe.Inport, pe.Outport) {
	dest = p.norm(dest)
	id := p.rts.chanIDs.Add(1)
	p.withPE(dest, func(d *peRT) { d.cells[id] = d.arena.NewPlaceholder() })
	return Inport{id: id, pe: dest}, Outport{id: id, dest: dest}
}

// Send reduces v to normal form, packs it (charging the same size model
// as the simulator), deep-copies it, and resolves the destination PE's
// placeholder with the copy. A normal-form violation panics with the
// same structured *eden.SendError the simulator raises.
func (p *PCtx) Send(out pe.Outport, v graph.Value) {
	o := out.(Outport)
	nf := p.ForceDeep(v)
	if p.pe.ev != nil {
		p.pe.ev.Emit(eventlog.CommBegin)
	}
	bytes, err := eden.SizeOfChecked(nf)
	var msg graph.Value
	if err == nil {
		msg, err = copyForSend(nf)
	}
	if err != nil {
		panic(&eden.SendError{Op: "Send", Chan: o.id, PE: p.pe.id, Dest: o.dest, Err: err})
	}
	p.pe.ctr.MsgsSent++
	p.pe.ctr.BytesSent += bytes
	if p.pe.ev != nil {
		p.pe.ev.EmitArg(eventlog.MsgSend, int32(o.dest))
	}
	src := p.pe.id
	p.withPE(o.dest, func(d *peRT) {
		cell, ok := d.cells[o.id]
		if !ok {
			panic(fmt.Errorf("nativeeden: Send on unknown channel #%d (PE %d -> PE %d)", o.id, src, o.dest))
		}
		d.ctr.MsgsRecv++
		d.ctr.BytesRecv += bytes
		if d.ev != nil {
			d.ev.EmitArg(eventlog.MsgRecv, int32(src))
		}
		cell.Resolve(msg)
		d.cond.Broadcast()
	})
	if p.pe.ev != nil {
		p.pe.ev.Emit(eventlog.CommEnd)
	}
}

// Receive blocks until the channel's value has arrived; it must be
// called on the channel's owning PE (channels are single-reader).
func (p *PCtx) Receive(in pe.Inport) graph.Value {
	i := in.(Inport)
	if i.pe != p.pe.id {
		panic(fmt.Sprintf("nativeeden: Receive on PE %d for a channel owned by PE %d (channels are single-reader)", p.pe.id, i.pe))
	}
	cell, ok := p.pe.cells[i.id]
	if !ok {
		panic(fmt.Sprintf("nativeeden: Receive twice on one-value channel #%d", i.id))
	}
	v := p.Force(cell)
	delete(p.pe.cells, i.id)
	return v
}

// --- stream channels (top-level lists, sent element by element) ---

// NewStream creates a stream channel whose receiving end lives on PE
// dest: a placeholder chain anchored in the destination's registry.
func (p *PCtx) NewStream(dest int) (pe.StreamIn, pe.StreamOut) {
	dest = p.norm(dest)
	id := p.rts.chanIDs.Add(1)
	p.withPE(dest, func(d *peRT) {
		head := d.arena.NewPlaceholder()
		d.streams[id] = &streamState{tail: head, cursor: head}
	})
	return StreamIn{id: id, pe: dest}, StreamOut{id: id, dest: dest}
}

// StreamSend transmits one element as its own message: the current
// tail placeholder resolves to a Cons of the copied element and a
// fresh placeholder for the rest of the stream.
func (p *PCtx) StreamSend(out pe.StreamOut, v graph.Value) {
	o := out.(StreamOut)
	nf := p.ForceDeep(v)
	if p.pe.ev != nil {
		p.pe.ev.Emit(eventlog.CommBegin)
	}
	bytes, err := eden.SizeOfChecked(nf)
	var msg graph.Value
	if err == nil {
		msg, err = copyForSend(nf)
	}
	if err != nil {
		panic(&eden.SendError{Op: "StreamSend", Chan: o.id, PE: p.pe.id, Dest: o.dest, Err: err})
	}
	bytes += eden.ConsOverhead
	p.pe.ctr.MsgsSent++
	p.pe.ctr.BytesSent += bytes
	if p.pe.ev != nil {
		p.pe.ev.EmitArg(eventlog.MsgSend, int32(o.dest))
	}
	src := p.pe.id
	p.withPE(o.dest, func(d *peRT) {
		st := d.streams[o.id]
		if st == nil || st.tail == nil {
			panic(fmt.Errorf("nativeeden: StreamSend on closed or unknown stream #%d (PE %d -> PE %d)", o.id, src, o.dest))
		}
		next := d.arena.NewPlaceholder()
		cur := st.tail
		st.tail = next
		d.ctr.MsgsRecv++
		d.ctr.BytesRecv += bytes
		if d.ev != nil {
			d.ev.EmitArg(eventlog.MsgRecv, int32(src))
		}
		cur.Resolve(eden.Cons{Head: msg, Tail: next})
		d.cond.Broadcast()
	})
	if p.pe.ev != nil {
		p.pe.ev.Emit(eventlog.CommEnd)
	}
}

// StreamClose terminates the stream (one Nil message).
func (p *PCtx) StreamClose(out pe.StreamOut) {
	o := out.(StreamOut)
	const bytes = 16 // a Nil packs as one word, like the simulator's
	p.pe.ctr.MsgsSent++
	p.pe.ctr.BytesSent += bytes
	if p.pe.ev != nil {
		p.pe.ev.EmitArg(eventlog.MsgSend, int32(o.dest))
	}
	src := p.pe.id
	p.withPE(o.dest, func(d *peRT) {
		st := d.streams[o.id]
		if st == nil || st.tail == nil {
			panic(fmt.Errorf("nativeeden: StreamClose on closed or unknown stream #%d (PE %d -> PE %d)", o.id, src, o.dest))
		}
		cur := st.tail
		st.tail = nil
		d.ctr.MsgsRecv++
		d.ctr.BytesRecv += bytes
		if d.ev != nil {
			d.ev.EmitArg(eventlog.MsgRecv, int32(src))
		}
		cur.Resolve(eden.Nil{})
		d.cond.Broadcast()
	})
}

// StreamRecv receives the next element, blocking until it arrives; ok
// is false once the stream has been closed.
func (p *PCtx) StreamRecv(in pe.StreamIn) (graph.Value, bool) {
	i := in.(StreamIn)
	if i.pe != p.pe.id {
		panic(fmt.Sprintf("nativeeden: StreamRecv on PE %d for a stream owned by PE %d (streams are single-reader)", p.pe.id, i.pe))
	}
	st := p.pe.streams[i.id]
	if st == nil {
		panic(fmt.Sprintf("nativeeden: StreamRecv on unknown stream #%d", i.id))
	}
	switch c := p.Force(st.cursor).(type) {
	case eden.Cons:
		st.cursor = c.Tail
		return c.Head, true
	case eden.Nil:
		return nil, false
	default:
		panic(fmt.Sprintf("nativeeden: stream #%d cell resolved to %T, want Cons or Nil", i.id, c))
	}
}

// RecvAll drains a stream into a slice.
func (p *PCtx) RecvAll(in pe.StreamIn) []graph.Value {
	var out []graph.Value
	for {
		v, ok := p.StreamRecv(in)
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// SendAll sends every element of xs and closes the stream.
func (p *PCtx) SendAll(out pe.StreamOut, xs []graph.Value) {
	for _, x := range xs {
		p.StreamSend(out, x)
	}
	p.StreamClose(out)
}

// --- local synchronisation ---

// LocalResolve fills a placeholder on the current PE without the
// transport (an MVar-like intra-process synchronisation variable).
func (p *PCtx) LocalResolve(cell *graph.Thunk, v graph.Value) {
	cell.Resolve(v)
	p.pe.cond.Broadcast()
}

// Await forces a local placeholder, blocking until it is filled.
func (p *PCtx) Await(cell *graph.Thunk) graph.Value { return p.Force(cell) }
