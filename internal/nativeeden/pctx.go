package nativeeden

import (
	"fmt"
	"time"

	"parhask/internal/eden"
	"parhask/internal/eventlog"
	"parhask/internal/faults"
	"parhask/internal/graph"
	"parhask/internal/pe"
)

// PCtx is the native backend's pe.Ctx: the context an Eden thread runs
// against. The thread holds its PE's mutex for its entire execution —
// every method below may assume the lock is held, and the blocking and
// transport operations are the only places it is released.
type PCtx struct {
	rts  *RTS
	pe   *peRT
	name string

	// claims is the stack of thunks this thread has eagerly black-holed
	// and not yet updated. On panic they are poisoned (newest-first) so
	// peers blocked on them unblock into the failure path.
	claims []*graph.Thunk
}

var (
	_ pe.Ctx               = (*PCtx)(nil)
	_ graph.Context        = (*PCtx)(nil)
	_ pe.SupervisedSpawner = (*PCtx)(nil)
	_ pe.StreamCanceller   = (*PCtx)(nil)
)

// begin is the thread prologue, run under the PE lock: counters, the
// Run bracket, and thread-start fault injection (stalled PE, injected
// process panic).
func (p *PCtx) begin() {
	p.pe.ctr.Threads++
	if p.pe.ev != nil {
		p.pe.ev.Emit(eventlog.RunBegin)
	}
	if inj := p.rts.cfg.Faults; inj != nil {
		p.injectThreadStart(inj)
	}
}

// end is the thread epilogue (still under the PE lock).
func (p *PCtx) end() {
	if p.pe.ev != nil {
		p.pe.ev.Emit(eventlog.RunEnd)
	}
}

// injectThreadStart applies thread-start faults: a stalled PE sleeps
// holding its lock (a genuinely slow PE — its sibling threads stall
// with it), then an injected process panic fires if this thread's
// index is in the plan.
func (p *PCtx) injectThreadStart(inj *faults.Injector) {
	if d := inj.StallDur(p.pe.id); d > 0 {
		inj.NoteStall()
		if p.pe.ev != nil {
			p.pe.ev.Emit(eventlog.StallBegin)
		}
		time.Sleep(d)
		if p.pe.ev != nil {
			p.pe.ev.Emit(eventlog.StallEnd)
		}
	}
	if f := inj.ProcFault(); f != nil {
		if p.pe.ev != nil {
			p.pe.ev.EmitArg(eventlog.FaultPanic, int32(f.Index))
		}
		panic(f)
	}
}

// Ports are plain {channel id, PE} value structs: shipping or capturing
// one moves no heap, so a port crossing PEs (in a message or a spawned
// closure) can never leak a thunk between heaps. The cells they name
// live in the owning PE's registry.

// Inport is the receiving end of a one-value channel.
type Inport struct {
	id int64
	pe int
}

// InPE returns the PE that owns the receiving end.
func (i Inport) InPE() int { return i.pe }

// Outport is the sending end of a one-value channel.
type Outport struct {
	id   int64
	dest int
}

// OutPE returns the destination PE.
func (o Outport) OutPE() int { return o.dest }

// StreamIn is the receiving end of an element-by-element stream.
type StreamIn struct {
	id int64
	pe int
}

// StreamInPE returns the PE that owns the receiving end.
func (s StreamIn) StreamInPE() int { return s.pe }

// StreamOut is the sending end of an element-by-element stream.
type StreamOut struct {
	id   int64
	dest int
}

// StreamOutPE returns the destination PE.
func (s StreamOut) StreamOutPE() int { return s.dest }

// --- generic mutator operations (graph.Context + pe.Ctx) ---

// Burn is a no-op: real time is consumed by actually computing.
func (p *PCtx) Burn(ns int64) {}

// Alloc records the workload's declared allocation as per-PE telemetry
// (the virtual-cost hook has no cost here, but the byte count is the
// per-PE allocation story the head-to-head reports).
func (p *PCtx) Alloc(bytes int64) { p.pe.ctr.AllocBytes += bytes }

// Force evaluates a thunk to weak head normal form on this PE.
func (p *PCtx) Force(t *graph.Thunk) graph.Value { return graph.Force(p, t) }

// ForceDeep evaluates a value to normal form on this PE.
func (p *PCtx) ForceDeep(v graph.Value) graph.Value { return graph.ForceDeep(p, v) }

// EagerBlackholing is true: threads of one PE interleave at blocking
// points, so without the claim a thread blocking mid-thunk would let a
// sibling duplicate the evaluation.
func (p *PCtx) EagerBlackholing() bool { return true }

// BlackholeWriteCost is zero: the claim's cost is the real CAS.
func (p *PCtx) BlackholeWriteCost() int64 { return 0 }

// EnteredThunk / LeftThunk are no-ops (no lazy entry table).
func (p *PCtx) EnteredThunk(t *graph.Thunk) {}
func (p *PCtx) LeftThunk(t *graph.Thunk)    {}

// NoteDuplicateEntry cannot fire under the eager policy; nothing to do.
func (p *PCtx) NoteDuplicateEntry(t *graph.Thunk) {}

// NoteClaimed / NoteReleased track this thread's open eager claims —
// the thunks that must be poisoned if the thread dies mid-update.
func (p *PCtx) NoteClaimed(t *graph.Thunk) { p.claims = append(p.claims, t) }

func (p *PCtx) NoteReleased(t *graph.Thunk) {
	if n := len(p.claims); n > 0 {
		p.claims[n-1] = nil
		p.claims = p.claims[:n-1]
	}
}

// WakeThunkWaiters wakes the PE's blocked threads after an update.
func (p *PCtx) WakeThunkWaiters(t *graph.Thunk) { p.pe.cond.Broadcast() }

// BlockOnThunk suspends the thread on its PE's condvar until t is
// Evaluated (or Poisoned — graph.Force then raises the poison): the
// wait releases the PE lock, so sibling threads run — the big-lock
// analogue of the simulator's thread descheduling. The watchdog's
// blocked/progress counters bracket each wait, and the blocked-on
// record (what channel or stream this placeholder anchors, and which
// peer was expected to fill it) is published for deadlock diagnostics.
func (p *PCtx) BlockOnThunk(t *graph.Thunk) {
	if p.pe.ev != nil {
		p.pe.ev.Emit(eventlog.BlockBegin)
	}
	noted := false
	for {
		if s := t.State(); s == graph.Evaluated || s == graph.Poisoned {
			break
		}
		p.pe.checkFailed()
		if !noted {
			noted = true
			p.pe.blockedOn[p] = p.blockedRecord(t)
		}
		p.rts.blocked.Add(1)
		p.pe.cond.Wait()
		p.rts.blocked.Add(-1)
		p.rts.progress.Add(1)
	}
	if noted {
		delete(p.pe.blockedOn, p)
	}
	if p.pe.ev != nil {
		p.pe.ev.Emit(eventlog.BlockEnd)
	}
}

// blockedRecord classifies what placeholder t anchors on this PE — a
// one-value channel cell, a stream cell, or a plain local placeholder
// — for the deadlock watchdog's diagnostics. Linear scans are fine:
// this runs once per block, on the slow path.
func (p *PCtx) blockedRecord(t *graph.Thunk) faults.BlockedThread {
	b := faults.BlockedThread{PE: p.pe.id, Thread: p.name, Reason: "local", Chan: -1, Peer: -1}
	for id, c := range p.pe.cells {
		if c.t == t {
			b.Reason, b.Chan = "channel", id
			if c.origin != p.pe.id {
				b.Peer = c.origin
			}
			return b
		}
	}
	for id, st := range p.pe.streams {
		if st.cursor == t || st.tail == t {
			b.Reason, b.Chan = "stream", id
			if st.origin != p.pe.id {
				b.Peer = st.origin
			}
			return b
		}
	}
	return b
}

// --- PE identity and placement ---

// PE returns the index of the PE this thread runs on.
func (p *PCtx) PE() int { return p.pe.id }

// PEs returns the number of processing elements.
func (p *PCtx) PEs() int { return len(p.rts.pes) }

// AddResident declares long-lived heap data on the current PE.
func (p *PCtx) AddResident(bytes int64) { p.pe.ctr.Resident += bytes }

func (p *PCtx) norm(dest int) int {
	n := len(p.rts.pes)
	return ((dest % n) + n) % n
}

// Spawn instantiates a process on PE dest: a new thread (goroutine)
// whose execution serialises on the destination PE's lock.
func (p *PCtx) Spawn(dest int, name string, body func(pe.Ctx)) {
	p.rts.processes.Add(1)
	if p.pe.ev != nil {
		p.pe.ev.Emit(eventlog.Fork)
	}
	p.rts.startThread(p.rts.pes[p.norm(dest)], name, func(c *PCtx) { body(c) })
}

// ForkLocal starts an additional thread of the current process on the
// same PE.
func (p *PCtx) ForkLocal(name string, body func(pe.Ctx)) {
	p.rts.startThread(p.pe, name, func(c *PCtx) { body(c) })
}

// SpawnSupervised instantiates a process on PE dest whose panic is
// contained rather than fatal: the returned one-value channel (on the
// caller's PE) receives true on success or a pe.ThreadFailure death
// notice after the thread's claims were poisoned. Fault-tolerant
// skeletons (skel.SupervisedMW) monitor these channels to re-dispatch
// a dead worker's outstanding tasks.
func (p *PCtx) SpawnSupervised(dest int, name string, body func(pe.Ctx)) pe.Inport {
	in, out := p.NewChan(p.pe.id)
	p.rts.processes.Add(1)
	if p.pe.ev != nil {
		p.pe.ev.Emit(eventlog.Fork)
	}
	p.rts.startSupervised(p.rts.pes[p.norm(dest)], name, out.(Outport), func(c *PCtx) { body(c) })
	return in
}

// CancelStream terminates a stream from the receiving side: the
// current tail resolves to end-of-stream, so a reader draining the
// stream finishes after the elements already delivered, and late
// sends from the (presumed dead) producer are dropped silently. Must
// be called on the stream's owning PE.
func (p *PCtx) CancelStream(in pe.StreamIn) {
	i := in.(StreamIn)
	if i.pe != p.pe.id {
		panic(&eden.ChanMisuseError{Op: "CancelStream", Chan: i.id, PE: p.pe.id, Owner: i.pe, Reason: "cross-pe"})
	}
	st := p.pe.streams[i.id]
	if st == nil {
		return // never existed or already torn down: cancel is idempotent
	}
	st.cancelled = true
	if st.tail != nil {
		st.tail.Resolve(eden.Nil{})
		st.tail = nil
		p.pe.cond.Broadcast()
	}
}

// withPE runs f with dest's lock held (and, if dest is remote, this
// thread's own PE lock released — at most one PE lock is ever held, so
// transport cannot deadlock on lock order). Remote transport is thus a
// yield point for the sibling threads of this PE, matching the
// simulator's context-switch-at-communication granularity.
func (p *PCtx) withPE(dest int, f func(d *peRT)) {
	d := p.rts.pes[dest]
	if d == p.pe {
		f(d)
		return
	}
	p.pe.mu.Unlock()
	d.mu.Lock()
	defer func() {
		d.mu.Unlock()
		p.pe.mu.Lock()
	}()
	f(d)
}

// --- one-value channels ---

// NewChan creates a one-value channel whose receiving end (a heap
// placeholder) lives on PE dest.
func (p *PCtx) NewChan(dest int) (pe.Inport, pe.Outport) {
	dest = p.norm(dest)
	id := p.rts.chanIDs.Add(1)
	origin := p.pe.id
	p.withPE(dest, func(d *peRT) {
		d.cells[id] = &cellState{t: d.arena.NewPlaceholder(), origin: origin}
	})
	return Inport{id: id, pe: dest}, Outport{id: id, dest: dest}
}

// injectSendFaults applies per-edge message faults at a comm point,
// called with this thread's own PE lock held after the message was
// packed and counted. A stalled PE sleeps holding its lock; a delayed
// message sleeps with the lock *released* (the PE stays responsive and
// per-edge FIFO order is preserved — the sender re-acquires before
// transport); a dropped message returns Drop and the caller skips
// delivery.
func (p *PCtx) injectSendFaults(dst int) faults.Fate {
	inj := p.rts.cfg.Faults
	if d := inj.StallDur(p.pe.id); d > 0 {
		inj.NoteStall()
		if p.pe.ev != nil {
			p.pe.ev.Emit(eventlog.StallBegin)
		}
		time.Sleep(d)
		if p.pe.ev != nil {
			p.pe.ev.Emit(eventlog.StallEnd)
		}
	}
	fate, delay := inj.MessageFate(p.pe.id, dst)
	switch fate {
	case faults.Delay:
		if p.pe.ev != nil {
			p.pe.ev.Emit(eventlog.DelayBegin)
		}
		p.pe.mu.Unlock()
		time.Sleep(delay)
		p.pe.mu.Lock()
		if p.pe.ev != nil {
			p.pe.ev.Emit(eventlog.DelayEnd)
		}
	case faults.Drop:
		if p.pe.ev != nil {
			p.pe.ev.EmitArg(eventlog.MsgDrop, int32(dst))
		}
	}
	return fate
}

// Send reduces v to normal form, packs it (charging the same size model
// as the simulator), deep-copies it, and resolves the destination PE's
// placeholder with the copy. A normal-form violation panics with the
// same structured *eden.SendError the simulator raises.
func (p *PCtx) Send(out pe.Outport, v graph.Value) {
	o := out.(Outport)
	nf := p.ForceDeep(v)
	if p.pe.ev != nil {
		p.pe.ev.Emit(eventlog.CommBegin)
	}
	bytes, err := eden.SizeOfChecked(nf)
	var msg graph.Value
	if err == nil {
		msg, err = copyForSend(nf)
	}
	if err != nil {
		panic(&eden.SendError{Op: "Send", Chan: o.id, PE: p.pe.id, Dest: o.dest, Err: err})
	}
	p.pe.ctr.MsgsSent++
	p.pe.ctr.BytesSent += bytes
	if p.pe.ev != nil {
		p.pe.ev.EmitArg(eventlog.MsgSend, int32(o.dest))
	}
	if p.rts.cfg.Faults != nil && p.injectSendFaults(o.dest) == faults.Drop {
		if p.pe.ev != nil {
			p.pe.ev.Emit(eventlog.CommEnd)
		}
		return
	}
	src := p.pe.id
	p.withPE(o.dest, func(d *peRT) {
		cell, ok := d.cells[o.id]
		if !ok {
			panic(&eden.ChanMisuseError{Op: "Send", Chan: o.id, PE: src, Owner: o.dest, Reason: "unknown-channel"})
		}
		d.ctr.MsgsRecv++
		d.ctr.BytesRecv += bytes
		if d.ev != nil {
			d.ev.EmitArg(eventlog.MsgRecv, int32(src))
		}
		cell.t.Resolve(msg)
		d.cond.Broadcast()
	})
	if p.pe.ev != nil {
		p.pe.ev.Emit(eventlog.CommEnd)
	}
}

// Receive blocks until the channel's value has arrived; it must be
// called on the channel's owning PE (channels are single-reader).
func (p *PCtx) Receive(in pe.Inport) graph.Value {
	i := in.(Inport)
	if i.pe != p.pe.id {
		panic(&eden.ChanMisuseError{Op: "Receive", Chan: i.id, PE: p.pe.id, Owner: i.pe, Reason: "cross-pe"})
	}
	cell, ok := p.pe.cells[i.id]
	if !ok {
		// One-value channels are consumed on receive, so a second
		// Receive and a receive on a never-created channel look the same.
		panic(&eden.ChanMisuseError{Op: "Receive", Chan: i.id, PE: p.pe.id, Owner: -1, Reason: "already-received"})
	}
	v := p.Force(cell.t)
	delete(p.pe.cells, i.id)
	return v
}

// --- stream channels (top-level lists, sent element by element) ---

// NewStream creates a stream channel whose receiving end lives on PE
// dest: a placeholder chain anchored in the destination's registry.
func (p *PCtx) NewStream(dest int) (pe.StreamIn, pe.StreamOut) {
	dest = p.norm(dest)
	id := p.rts.chanIDs.Add(1)
	origin := p.pe.id
	p.withPE(dest, func(d *peRT) {
		head := d.arena.NewPlaceholder()
		d.streams[id] = &streamState{tail: head, cursor: head, origin: origin}
	})
	return StreamIn{id: id, pe: dest}, StreamOut{id: id, dest: dest}
}

// StreamSend transmits one element as its own message: the current
// tail placeholder resolves to a Cons of the copied element and a
// fresh placeholder for the rest of the stream.
func (p *PCtx) StreamSend(out pe.StreamOut, v graph.Value) {
	o := out.(StreamOut)
	nf := p.ForceDeep(v)
	if p.pe.ev != nil {
		p.pe.ev.Emit(eventlog.CommBegin)
	}
	bytes, err := eden.SizeOfChecked(nf)
	var msg graph.Value
	if err == nil {
		msg, err = copyForSend(nf)
	}
	if err != nil {
		panic(&eden.SendError{Op: "StreamSend", Chan: o.id, PE: p.pe.id, Dest: o.dest, Err: err})
	}
	bytes += eden.ConsOverhead
	p.pe.ctr.MsgsSent++
	p.pe.ctr.BytesSent += bytes
	if p.pe.ev != nil {
		p.pe.ev.EmitArg(eventlog.MsgSend, int32(o.dest))
	}
	if p.rts.cfg.Faults != nil && p.injectSendFaults(o.dest) == faults.Drop {
		if p.pe.ev != nil {
			p.pe.ev.Emit(eventlog.CommEnd)
		}
		return
	}
	src := p.pe.id
	p.withPE(o.dest, func(d *peRT) {
		st := d.streams[o.id]
		if st != nil && st.cancelled {
			return // supervisor cancelled the stream; late sends vanish
		}
		if st == nil || st.tail == nil {
			panic(&eden.ChanMisuseError{Op: "StreamSend", Chan: o.id, PE: src, Owner: o.dest, Reason: "closed-or-unknown-stream"})
		}
		next := d.arena.NewPlaceholder()
		cur := st.tail
		st.tail = next
		d.ctr.MsgsRecv++
		d.ctr.BytesRecv += bytes
		if d.ev != nil {
			d.ev.EmitArg(eventlog.MsgRecv, int32(src))
		}
		cur.Resolve(eden.Cons{Head: msg, Tail: next})
		d.cond.Broadcast()
	})
	if p.pe.ev != nil {
		p.pe.ev.Emit(eventlog.CommEnd)
	}
}

// StreamClose terminates the stream (one Nil message).
func (p *PCtx) StreamClose(out pe.StreamOut) {
	o := out.(StreamOut)
	const bytes = 16 // a Nil packs as one word, like the simulator's
	p.pe.ctr.MsgsSent++
	p.pe.ctr.BytesSent += bytes
	if p.pe.ev != nil {
		p.pe.ev.EmitArg(eventlog.MsgSend, int32(o.dest))
	}
	if p.rts.cfg.Faults != nil && p.injectSendFaults(o.dest) == faults.Drop {
		return
	}
	src := p.pe.id
	p.withPE(o.dest, func(d *peRT) {
		st := d.streams[o.id]
		if st != nil && st.cancelled {
			return // already terminated by the supervisor
		}
		if st == nil || st.tail == nil {
			panic(&eden.ChanMisuseError{Op: "StreamClose", Chan: o.id, PE: src, Owner: o.dest, Reason: "closed-or-unknown-stream"})
		}
		cur := st.tail
		st.tail = nil
		d.ctr.MsgsRecv++
		d.ctr.BytesRecv += bytes
		if d.ev != nil {
			d.ev.EmitArg(eventlog.MsgRecv, int32(src))
		}
		cur.Resolve(eden.Nil{})
		d.cond.Broadcast()
	})
}

// StreamRecv receives the next element, blocking until it arrives; ok
// is false once the stream has been closed.
func (p *PCtx) StreamRecv(in pe.StreamIn) (graph.Value, bool) {
	i := in.(StreamIn)
	if i.pe != p.pe.id {
		panic(&eden.ChanMisuseError{Op: "StreamRecv", Chan: i.id, PE: p.pe.id, Owner: i.pe, Reason: "cross-pe"})
	}
	st := p.pe.streams[i.id]
	if st == nil {
		panic(&eden.ChanMisuseError{Op: "StreamRecv", Chan: i.id, PE: p.pe.id, Owner: -1, Reason: "unknown-stream"})
	}
	switch c := p.Force(st.cursor).(type) {
	case eden.Cons:
		st.cursor = c.Tail
		return c.Head, true
	case eden.Nil:
		return nil, false
	default:
		panic(fmt.Sprintf("nativeeden: stream #%d cell resolved to %T, want Cons or Nil", i.id, c))
	}
}

// RecvAll drains a stream into a slice.
func (p *PCtx) RecvAll(in pe.StreamIn) []graph.Value {
	var out []graph.Value
	for {
		v, ok := p.StreamRecv(in)
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// SendAll sends every element of xs and closes the stream.
func (p *PCtx) SendAll(out pe.StreamOut, xs []graph.Value) {
	for _, x := range xs {
		p.StreamSend(out, x)
	}
	p.StreamClose(out)
}

// --- local synchronisation ---

// LocalResolve fills a placeholder on the current PE without the
// transport (an MVar-like intra-process synchronisation variable).
func (p *PCtx) LocalResolve(cell *graph.Thunk, v graph.Value) {
	cell.Resolve(v)
	p.pe.cond.Broadcast()
}

// Await forces a local placeholder, blocking until it is filled.
func (p *PCtx) Await(cell *graph.Thunk) graph.Value { return p.Force(cell) }
