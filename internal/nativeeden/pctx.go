package nativeeden

import (
	"fmt"
	"time"

	"parhask/internal/eden"
	"parhask/internal/eventlog"
	"parhask/internal/faults"
	"parhask/internal/graph"
	"parhask/internal/pe"
)

// PCtx is the native backend's pe.Ctx: the context an Eden thread runs
// against. The thread holds its PE's mutex for its entire execution —
// every method below may assume the lock is held, and the blocking and
// transport operations are the only places it is released.
type PCtx struct {
	rts  *RTS
	pe   *peRT
	name string

	// isRoot marks the program's root thread: in cluster mode its
	// channel ids come from the replayed counter and its remote spawns
	// are the SPMD no-op (the owning process instantiates them).
	isRoot bool
	// shadow marks a cluster shadow root (rank != 0): creations replay,
	// sends are no-ops, receives park (see cluster.go).
	shadow bool

	// claims is the stack of thunks this thread has eagerly black-holed
	// and not yet updated. On panic they are poisoned (newest-first) so
	// peers blocked on them unblock into the failure path.
	claims []*graph.Thunk
}

var (
	_ pe.Ctx               = (*PCtx)(nil)
	_ graph.Context        = (*PCtx)(nil)
	_ pe.SupervisedSpawner = (*PCtx)(nil)
	_ pe.StreamCanceller   = (*PCtx)(nil)
)

// begin is the thread prologue, run under the PE lock: counters, the
// Run bracket, and thread-start fault injection (stalled PE, injected
// process panic).
func (p *PCtx) begin() {
	p.pe.ctr.Threads++
	if p.pe.ev != nil {
		p.pe.ev.Emit(eventlog.RunBegin)
	}
	if inj := p.rts.cfg.Faults; inj != nil {
		p.injectThreadStart(inj)
	}
}

// end is the thread epilogue (still under the PE lock).
func (p *PCtx) end() {
	if p.pe.ev != nil {
		p.pe.ev.Emit(eventlog.RunEnd)
	}
}

// injectThreadStart applies thread-start faults: a stalled PE sleeps
// holding its lock (a genuinely slow PE — its sibling threads stall
// with it), then an injected process panic fires if this thread's
// index is in the plan.
func (p *PCtx) injectThreadStart(inj *faults.Injector) {
	if d := inj.StallDur(p.pe.id); d > 0 {
		inj.NoteStall()
		if p.pe.ev != nil {
			p.pe.ev.Emit(eventlog.StallBegin)
		}
		time.Sleep(d)
		if p.pe.ev != nil {
			p.pe.ev.Emit(eventlog.StallEnd)
		}
	}
	if f := inj.ProcFault(); f != nil {
		if p.pe.ev != nil {
			p.pe.ev.EmitArg(eventlog.FaultPanic, int32(f.Index))
		}
		panic(f)
	}
}

// Ports are plain {channel id, PE} value structs: shipping or capturing
// one moves no heap, so a port crossing PEs (in a message or a spawned
// closure) can never leak a thunk between heaps. The cells they name
// live in the owning PE's registry.

// Inport is the receiving end of a one-value channel.
type Inport struct {
	id int64
	pe int
}

// InPE returns the PE that owns the receiving end.
func (i Inport) InPE() int { return i.pe }

// PackedSize implements eden.Sized: a port packs as a wire header plus
// its {channel id, PE} words.
func (i Inport) PackedSize() int64 { return portPackedSize }

// Outport is the sending end of a one-value channel.
type Outport struct {
	id   int64
	dest int
}

// OutPE returns the destination PE.
func (o Outport) OutPE() int { return o.dest }

// PackedSize implements eden.Sized.
func (o Outport) PackedSize() int64 { return portPackedSize }

// StreamIn is the receiving end of an element-by-element stream.
type StreamIn struct {
	id int64
	pe int
}

// StreamInPE returns the PE that owns the receiving end.
func (s StreamIn) StreamInPE() int { return s.pe }

// PackedSize implements eden.Sized.
func (s StreamIn) PackedSize() int64 { return portPackedSize }

// StreamOut is the sending end of an element-by-element stream.
type StreamOut struct {
	id   int64
	dest int
}

// StreamOutPE returns the destination PE.
func (s StreamOut) StreamOutPE() int { return s.dest }

// PackedSize implements eden.Sized.
func (s StreamOut) PackedSize() int64 { return portPackedSize }

// portPackedSize is the packed size of every port flavour: an 8-byte
// wire header plus the channel-id and PE words.
const portPackedSize = 24

// --- generic mutator operations (graph.Context + pe.Ctx) ---

// Burn is a no-op: real time is consumed by actually computing.
func (p *PCtx) Burn(ns int64) {}

// Alloc records the workload's declared allocation as per-PE telemetry
// (the virtual-cost hook has no cost here, but the byte count is the
// per-PE allocation story the head-to-head reports).
func (p *PCtx) Alloc(bytes int64) { p.pe.ctr.AllocBytes += bytes }

// Force evaluates a thunk to weak head normal form on this PE.
func (p *PCtx) Force(t *graph.Thunk) graph.Value { return graph.Force(p, t) }

// ForceDeep evaluates a value to normal form on this PE.
func (p *PCtx) ForceDeep(v graph.Value) graph.Value { return graph.ForceDeep(p, v) }

// EagerBlackholing is true: threads of one PE interleave at blocking
// points, so without the claim a thread blocking mid-thunk would let a
// sibling duplicate the evaluation.
func (p *PCtx) EagerBlackholing() bool { return true }

// BlackholeWriteCost is zero: the claim's cost is the real CAS.
func (p *PCtx) BlackholeWriteCost() int64 { return 0 }

// EnteredThunk / LeftThunk are no-ops (no lazy entry table).
func (p *PCtx) EnteredThunk(t *graph.Thunk) {}
func (p *PCtx) LeftThunk(t *graph.Thunk)    {}

// NoteDuplicateEntry cannot fire under the eager policy; nothing to do.
func (p *PCtx) NoteDuplicateEntry(t *graph.Thunk) {}

// NoteClaimed / NoteReleased track this thread's open eager claims —
// the thunks that must be poisoned if the thread dies mid-update.
func (p *PCtx) NoteClaimed(t *graph.Thunk) { p.claims = append(p.claims, t) }

func (p *PCtx) NoteReleased(t *graph.Thunk) {
	if n := len(p.claims); n > 0 {
		p.claims[n-1] = nil
		p.claims = p.claims[:n-1]
	}
}

// WakeThunkWaiters wakes the PE's blocked threads after an update.
func (p *PCtx) WakeThunkWaiters(t *graph.Thunk) { p.pe.cond.Broadcast() }

// BlockOnThunk suspends the thread on its PE's condvar until t is
// Evaluated (or Poisoned — graph.Force then raises the poison): the
// wait releases the PE lock, so sibling threads run — the big-lock
// analogue of the simulator's thread descheduling. The watchdog's
// blocked/progress counters bracket each wait, and the blocked-on
// record (what channel or stream this placeholder anchors, and which
// peer was expected to fill it) is published for deadlock diagnostics.
func (p *PCtx) BlockOnThunk(t *graph.Thunk) {
	if p.pe.ev != nil {
		p.pe.ev.Emit(eventlog.BlockBegin)
	}
	noted := false
	for {
		if s := t.State(); s == graph.Evaluated || s == graph.Poisoned {
			break
		}
		p.pe.checkFailed()
		if !noted {
			noted = true
			p.pe.blockedOn[p] = p.blockedRecord(t)
		}
		p.rts.blocked.Add(1)
		p.pe.cond.Wait()
		p.rts.blocked.Add(-1)
		p.rts.progress.Add(1)
	}
	if noted {
		delete(p.pe.blockedOn, p)
	}
	if p.pe.ev != nil {
		p.pe.ev.Emit(eventlog.BlockEnd)
	}
}

// blockedRecord classifies what placeholder t anchors on this PE — a
// one-value channel cell, a stream cell, or a plain local placeholder
// — for the deadlock watchdog's diagnostics. Linear scans are fine:
// this runs once per block, on the slow path.
func (p *PCtx) blockedRecord(t *graph.Thunk) faults.BlockedThread {
	b := faults.BlockedThread{PE: p.pe.id, Thread: p.name, Reason: "local", Chan: -1, Peer: -1}
	for id, c := range p.pe.cells {
		if c.t == t {
			b.Reason, b.Chan = "channel", id
			if c.origin != p.pe.id {
				b.Peer = c.origin
			}
			return b
		}
	}
	for id, st := range p.pe.streams {
		if st.cursor == t || st.tail == t {
			b.Reason, b.Chan = "stream", id
			if st.origin != p.pe.id {
				b.Peer = st.origin
			}
			return b
		}
	}
	return b
}

// --- PE identity and placement ---

// PE returns the index of the PE this thread runs on. A shadow root
// reports PE 0 — the PE the real root runs on — so the root program's
// placement arithmetic replays identically on every rank.
func (p *PCtx) PE() int {
	if p.shadow {
		return 0
	}
	return p.pe.id
}

// PEs returns the number of processing elements.
func (p *PCtx) PEs() int { return len(p.rts.pes) }

// AddResident declares long-lived heap data on the current PE.
func (p *PCtx) AddResident(bytes int64) { p.pe.ctr.Resident += bytes }

func (p *PCtx) norm(dest int) int {
	n := len(p.rts.pes)
	return ((dest % n) + n) % n
}

// Spawn instantiates a process on PE dest: a new thread (goroutine)
// whose execution serialises on the destination PE's lock. In cluster
// mode a spawn onto a remote PE is the SPMD no-op for the root thread
// — every rank replays main, and the rank owning dest instantiates the
// thread there — and unsupported elsewhere (non-root threads do not
// replay, so no process would run the body).
func (p *PCtx) Spawn(dest int, name string, body func(pe.Ctx)) {
	dest = p.norm(dest)
	if !p.rts.owned(dest) {
		if !p.isRoot {
			panic(fmt.Sprintf("nativeeden: cluster Spawn onto remote PE %d from non-root thread %q", dest, p.name))
		}
		return
	}
	p.rts.processes.Add(1)
	if p.pe.ev != nil {
		p.pe.ev.Emit(eventlog.Fork)
	}
	p.rts.startThread(p.rts.pes[dest], name, func(c *PCtx) { body(c) })
}

// ForkLocal starts an additional thread of the current process on the
// same PE. A shadow root skips it: its local forks belong to rank 0.
func (p *PCtx) ForkLocal(name string, body func(pe.Ctx)) {
	if p.shadow {
		return
	}
	p.rts.startThread(p.pe, name, func(c *PCtx) { body(c) })
}

// SpawnSupervised instantiates a process on PE dest whose panic is
// contained rather than fatal: the returned one-value channel (on the
// caller's PE) receives true on success or a pe.ThreadFailure death
// notice after the thread's claims were poisoned. Fault-tolerant
// skeletons (skel.SupervisedMW) monitor these channels to re-dispatch
// a dead worker's outstanding tasks.
func (p *PCtx) SpawnSupervised(dest int, name string, body func(pe.Ctx)) pe.Inport {
	// The verdict channel lives on the caller's logical PE (p.PE(), so a
	// shadow root replays rank 0's allocation exactly).
	in, out := p.NewChan(p.PE())
	dest = p.norm(dest)
	if !p.rts.owned(dest) {
		if !p.isRoot {
			panic(fmt.Sprintf("nativeeden: cluster SpawnSupervised onto remote PE %d from non-root thread %q", dest, p.name))
		}
		return in
	}
	p.rts.processes.Add(1)
	if p.pe.ev != nil {
		p.pe.ev.Emit(eventlog.Fork)
	}
	p.rts.startSupervised(p.rts.pes[dest], name, out.(Outport), func(c *PCtx) { body(c) })
	return in
}

// CancelStream terminates a stream from the receiving side: the
// current tail resolves to end-of-stream, so a reader draining the
// stream finishes after the elements already delivered, and late
// sends from the (presumed dead) producer are dropped silently. Must
// be called on the stream's owning PE.
func (p *PCtx) CancelStream(in pe.StreamIn) {
	i := in.(StreamIn)
	if i.pe != p.pe.id {
		panic(&eden.ChanMisuseError{Op: "CancelStream", Chan: i.id, PE: p.pe.id, Owner: i.pe, Reason: "cross-pe"})
	}
	st := p.pe.streams[i.id]
	if st == nil {
		return // never existed or already torn down: cancel is idempotent
	}
	st.cancelled = true
	if st.tail != nil {
		st.tail.Resolve(eden.Nil{})
		st.tail = nil
		p.pe.cond.Broadcast()
	}
}

// withPE runs f with dest's lock held (and, if dest is remote, this
// thread's own PE lock released — at most one PE lock is ever held, so
// transport cannot deadlock on lock order). Remote transport is thus a
// yield point for the sibling threads of this PE, matching the
// simulator's context-switch-at-communication granularity.
func (p *PCtx) withPE(dest int, f func(d *peRT)) {
	d := p.rts.pes[dest]
	if d == p.pe {
		f(d)
		return
	}
	p.pe.mu.Unlock()
	d.mu.Lock()
	defer func() {
		d.mu.Unlock()
		p.pe.mu.Lock()
	}()
	f(d)
}

// --- one-value channels ---

// NewChan creates a one-value channel whose receiving end (a heap
// placeholder) lives on PE dest. In cluster mode the cell is installed
// only when dest is local — ensure-on-first-touch, because a message
// may already have been delivered into it before this (replayed)
// creation runs; a remote owner's own replay, delivery, or receive
// installs it there.
func (p *PCtx) NewChan(dest int) (pe.Inport, pe.Outport) {
	dest = p.norm(dest)
	id := p.rts.newChanID(p.isRoot)
	origin := p.PE()
	if p.rts.owned(dest) {
		p.withPE(dest, func(d *peRT) {
			d.ensureCell(id, origin)
		})
	}
	return Inport{id: id, pe: dest}, Outport{id: id, dest: dest}
}

// injectSendFaults applies per-edge message faults at a comm point,
// called with this thread's own PE lock held after the message was
// packed and counted. A stalled PE sleeps holding its lock; a delayed
// message sleeps with the lock *released* (the PE stays responsive and
// per-edge FIFO order is preserved — the sender re-acquires before
// transport); a dropped message returns Drop and the caller skips
// delivery.
func (p *PCtx) injectSendFaults(dst int) faults.Fate {
	inj := p.rts.cfg.Faults
	if d := inj.StallDur(p.pe.id); d > 0 {
		inj.NoteStall()
		if p.pe.ev != nil {
			p.pe.ev.Emit(eventlog.StallBegin)
		}
		time.Sleep(d)
		if p.pe.ev != nil {
			p.pe.ev.Emit(eventlog.StallEnd)
		}
	}
	fate, delay := inj.MessageFate(p.pe.id, dst)
	switch fate {
	case faults.Delay:
		if p.pe.ev != nil {
			p.pe.ev.Emit(eventlog.DelayBegin)
		}
		p.pe.mu.Unlock()
		time.Sleep(delay)
		p.pe.mu.Lock()
		if p.pe.ev != nil {
			p.pe.ev.Emit(eventlog.DelayEnd)
		}
	case faults.Drop:
		if p.pe.ev != nil {
			p.pe.ev.EmitArg(eventlog.MsgDrop, int32(dst))
		}
	}
	return fate
}

// Send reduces v to normal form, packs it (charging the same size model
// as the simulator), deep-copies it, and resolves the destination PE's
// placeholder with the copy. A normal-form violation panics with the
// same structured *eden.SendError the simulator raises.
func (p *PCtx) Send(out pe.Outport, v graph.Value) {
	o := out.(Outport)
	if p.shadow {
		return // rank 0's real root does the real send
	}
	nf := p.ForceDeep(v)
	if !p.rts.owned(o.dest) {
		p.sendRemote("Send", MsgChanSend, o.id, o.dest, nf, 0)
		return
	}
	if p.pe.ev != nil {
		p.pe.ev.Emit(eventlog.CommBegin)
	}
	bytes, err := eden.SizeOfChecked(nf)
	var msg graph.Value
	if err == nil {
		msg, err = copyForSend(nf)
	}
	if err != nil {
		panic(&eden.SendError{Op: "Send", Chan: o.id, PE: p.pe.id, Dest: o.dest, Err: err})
	}
	p.pe.ctr.MsgsSent++
	p.pe.ctr.BytesSent += bytes
	if p.pe.ev != nil {
		p.pe.ev.EmitArg(eventlog.MsgSend, int32(o.dest))
	}
	if p.rts.cfg.Faults != nil && p.injectSendFaults(o.dest) == faults.Drop {
		if p.pe.ev != nil {
			p.pe.ev.Emit(eventlog.CommEnd)
		}
		return
	}
	src := p.pe.id
	p.withPE(o.dest, func(d *peRT) {
		cell, ok := d.cells[o.id]
		if !ok {
			panic(&eden.ChanMisuseError{Op: "Send", Chan: o.id, PE: src, Owner: o.dest, Reason: "unknown-channel"})
		}
		d.ctr.MsgsRecv++
		d.ctr.BytesRecv += bytes
		if d.ev != nil {
			d.ev.EmitArg(eventlog.MsgRecv, int32(src))
		}
		cell.t.Resolve(msg)
		d.cond.Broadcast()
	})
	if p.pe.ev != nil {
		p.pe.ev.Emit(eventlog.CommEnd)
	}
}

// Receive blocks until the channel's value has arrived; it must be
// called on the channel's owning PE (channels are single-reader).
func (p *PCtx) Receive(in pe.Inport) graph.Value {
	if p.shadow {
		p.parkForever() // the real root receives; unwinds on drain
		return nil
	}
	i := in.(Inport)
	if i.pe != p.pe.id {
		panic(&eden.ChanMisuseError{Op: "Receive", Chan: i.id, PE: p.pe.id, Owner: i.pe, Reason: "cross-pe"})
	}
	cell, ok := p.pe.cells[i.id]
	if !ok {
		if p.rts.cfg.Cluster != nil {
			// A cross-process channel may be received before either its
			// replayed creation or its first delivery installed the cell:
			// ensure it and block. (The already-received misuse check
			// degrades to a coordinator-deadline timeout in cluster mode.)
			cell = p.pe.ensureCell(i.id, -1)
		} else {
			// One-value channels are consumed on receive, so a second
			// Receive and a receive on a never-created channel look the same.
			panic(&eden.ChanMisuseError{Op: "Receive", Chan: i.id, PE: p.pe.id, Owner: -1, Reason: "already-received"})
		}
	}
	v := p.Force(cell.t)
	delete(p.pe.cells, i.id)
	return v
}

// --- stream channels (top-level lists, sent element by element) ---

// NewStream creates a stream channel whose receiving end lives on PE
// dest: a placeholder chain anchored in the destination's registry.
// Cluster placement follows NewChan: local owners ensure, remote
// owners install on their own first touch.
func (p *PCtx) NewStream(dest int) (pe.StreamIn, pe.StreamOut) {
	dest = p.norm(dest)
	id := p.rts.newChanID(p.isRoot)
	origin := p.PE()
	if p.rts.owned(dest) {
		p.withPE(dest, func(d *peRT) {
			d.ensureStream(id, origin)
		})
	}
	return StreamIn{id: id, pe: dest}, StreamOut{id: id, dest: dest}
}

// StreamSend transmits one element as its own message: the current
// tail placeholder resolves to a Cons of the copied element and a
// fresh placeholder for the rest of the stream.
func (p *PCtx) StreamSend(out pe.StreamOut, v graph.Value) {
	o := out.(StreamOut)
	if p.shadow {
		return
	}
	nf := p.ForceDeep(v)
	if !p.rts.owned(o.dest) {
		p.sendRemote("StreamSend", MsgStreamSend, o.id, o.dest, nf, eden.ConsOverhead)
		return
	}
	if p.pe.ev != nil {
		p.pe.ev.Emit(eventlog.CommBegin)
	}
	bytes, err := eden.SizeOfChecked(nf)
	var msg graph.Value
	if err == nil {
		msg, err = copyForSend(nf)
	}
	if err != nil {
		panic(&eden.SendError{Op: "StreamSend", Chan: o.id, PE: p.pe.id, Dest: o.dest, Err: err})
	}
	bytes += eden.ConsOverhead
	p.pe.ctr.MsgsSent++
	p.pe.ctr.BytesSent += bytes
	if p.pe.ev != nil {
		p.pe.ev.EmitArg(eventlog.MsgSend, int32(o.dest))
	}
	if p.rts.cfg.Faults != nil && p.injectSendFaults(o.dest) == faults.Drop {
		if p.pe.ev != nil {
			p.pe.ev.Emit(eventlog.CommEnd)
		}
		return
	}
	src := p.pe.id
	p.withPE(o.dest, func(d *peRT) {
		st := d.streams[o.id]
		if st != nil && st.cancelled {
			return // supervisor cancelled the stream; late sends vanish
		}
		if st == nil || st.tail == nil {
			panic(&eden.ChanMisuseError{Op: "StreamSend", Chan: o.id, PE: src, Owner: o.dest, Reason: "closed-or-unknown-stream"})
		}
		next := d.arena.NewPlaceholder()
		cur := st.tail
		st.tail = next
		d.ctr.MsgsRecv++
		d.ctr.BytesRecv += bytes
		if d.ev != nil {
			d.ev.EmitArg(eventlog.MsgRecv, int32(src))
		}
		cur.Resolve(eden.Cons{Head: msg, Tail: next})
		d.cond.Broadcast()
	})
	if p.pe.ev != nil {
		p.pe.ev.Emit(eventlog.CommEnd)
	}
}

// StreamClose terminates the stream (one Nil message).
func (p *PCtx) StreamClose(out pe.StreamOut) {
	o := out.(StreamOut)
	if p.shadow {
		return
	}
	if !p.rts.owned(o.dest) {
		p.sendRemote("StreamClose", MsgStreamClose, o.id, o.dest, nil, 16)
		return
	}
	const bytes = 16 // a Nil packs as one word, like the simulator's
	p.pe.ctr.MsgsSent++
	p.pe.ctr.BytesSent += bytes
	if p.pe.ev != nil {
		p.pe.ev.EmitArg(eventlog.MsgSend, int32(o.dest))
	}
	if p.rts.cfg.Faults != nil && p.injectSendFaults(o.dest) == faults.Drop {
		return
	}
	src := p.pe.id
	p.withPE(o.dest, func(d *peRT) {
		st := d.streams[o.id]
		if st != nil && st.cancelled {
			return // already terminated by the supervisor
		}
		if st == nil || st.tail == nil {
			panic(&eden.ChanMisuseError{Op: "StreamClose", Chan: o.id, PE: src, Owner: o.dest, Reason: "closed-or-unknown-stream"})
		}
		cur := st.tail
		st.tail = nil
		d.ctr.MsgsRecv++
		d.ctr.BytesRecv += bytes
		if d.ev != nil {
			d.ev.EmitArg(eventlog.MsgRecv, int32(src))
		}
		cur.Resolve(eden.Nil{})
		d.cond.Broadcast()
	})
}

// StreamRecv receives the next element, blocking until it arrives; ok
// is false once the stream has been closed.
func (p *PCtx) StreamRecv(in pe.StreamIn) (graph.Value, bool) {
	if p.shadow {
		p.parkForever()
		return nil, false
	}
	i := in.(StreamIn)
	if i.pe != p.pe.id {
		panic(&eden.ChanMisuseError{Op: "StreamRecv", Chan: i.id, PE: p.pe.id, Owner: i.pe, Reason: "cross-pe"})
	}
	st := p.pe.streams[i.id]
	if st == nil {
		if p.rts.cfg.Cluster != nil {
			// Ensure-on-first-touch, as in Receive: the stream may not have
			// been installed yet by replay or delivery.
			st = p.pe.ensureStream(i.id, -1)
		} else {
			panic(&eden.ChanMisuseError{Op: "StreamRecv", Chan: i.id, PE: p.pe.id, Owner: -1, Reason: "unknown-stream"})
		}
	}
	switch c := p.Force(st.cursor).(type) {
	case eden.Cons:
		st.cursor = c.Tail
		return c.Head, true
	case eden.Nil:
		return nil, false
	default:
		panic(fmt.Sprintf("nativeeden: stream #%d cell resolved to %T, want Cons or Nil", i.id, c))
	}
}

// RecvAll drains a stream into a slice.
func (p *PCtx) RecvAll(in pe.StreamIn) []graph.Value {
	var out []graph.Value
	for {
		v, ok := p.StreamRecv(in)
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// SendAll sends every element of xs and closes the stream.
func (p *PCtx) SendAll(out pe.StreamOut, xs []graph.Value) {
	if p.shadow {
		return
	}
	for _, x := range xs {
		p.StreamSend(out, x)
	}
	p.StreamClose(out)
}

// --- local synchronisation ---

// LocalResolve fills a placeholder on the current PE without the
// transport (an MVar-like intra-process synchronisation variable). A
// shadow root skips it: the placeholder belongs to rank 0's replay.
func (p *PCtx) LocalResolve(cell *graph.Thunk, v graph.Value) {
	if p.shadow {
		return
	}
	cell.Resolve(v)
	p.pe.cond.Broadcast()
}

// Await forces a local placeholder, blocking until it is filled. A
// shadow root parks: the value it would wait for lives on rank 0.
func (p *PCtx) Await(cell *graph.Thunk) graph.Value {
	if p.shadow {
		p.parkForever()
		return nil
	}
	return p.Force(cell)
}
