package nativeeden

import (
	"testing"
	"time"

	"parhask/internal/workloads/mandel"
)

// nopCtx satisfies mandel.Ctx for the sequential oracle render.
type nopCtx struct{}

func (nopCtx) Burn(int64)  {}
func (nopCtx) Alloc(int64) {}

// TestMandelOracleNative renders mandel through the masterWorker
// skeleton on the native Eden backend and compares the image against
// the sequential oracle across PE counts (including more worker
// processes than PEs).
func TestMandelOracleNative(t *testing.T) {
	p := mandel.DefaultParams(96, 64)
	want := mandel.Render(nopCtx{}, p)
	wantSum := mandel.Checksum(want)
	for _, tc := range []struct{ pes, workers int }{{1, 1}, {2, 3}, {4, 3}} {
		res := runN(t, NewConfig(tc.pes), mandel.EdenProgram(p, tc.workers, 2))
		got := res.Value.([][]int32)
		if !mandel.Equal(got, want) {
			t.Fatalf("pes=%d workers=%d: image disagrees with oracle", tc.pes, tc.workers)
		}
		if mandel.Checksum(got) != wantSum {
			t.Fatalf("pes=%d workers=%d: checksum mismatch", tc.pes, tc.workers)
		}
		if res.Stats.Processes != int64(tc.workers) {
			t.Fatalf("pes=%d: processes = %d, want %d", tc.pes, res.Stats.Processes, tc.workers)
		}
	}
}

// TestResidentLaneMandel renders mandel as a resident-lane job — the
// shape the serve layer submits — and oracle-checks the result.
func TestResidentLaneMandel(t *testing.T) {
	p := mandel.DefaultParams(96, 64)
	want := mandel.Render(nopCtx{}, p)
	l := NewResident(NewConfig(3))
	defer l.Close()
	res, err := l.RunJob(JobConfig{Deadline: 30 * time.Second},
		mandel.EdenProgram(p, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !mandel.Equal(res.Value.([][]int32), want) {
		t.Fatal("lane-run mandel disagrees with oracle")
	}
}
