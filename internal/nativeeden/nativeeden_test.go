package nativeeden

import (
	"errors"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"parhask/internal/eden"
	"parhask/internal/eventlog"
	"parhask/internal/graph"
	"parhask/internal/pe"
	"parhask/internal/skel"
	"parhask/internal/workloads/apsp"
	"parhask/internal/workloads/euler"
	"parhask/internal/workloads/matmul"
)

func runN(t *testing.T, cfg Config, main pe.Program) *Result {
	t.Helper()
	res, err := Run(cfg, main)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// awaitRun guards the failure-protocol tests: their regression mode is
// a hang (a thread blocked on a placeholder that will never resolve),
// so every Run that is supposed to fail executes under a watchdog.
func awaitRun(t *testing.T, done <-chan error) error {
	t.Helper()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		t.Fatal("run hung: a blocked thread never unwound")
		return nil
	}
}

func TestChannelRoundTrip(t *testing.T) {
	res := runN(t, NewConfig(2), func(p pe.Ctx) graph.Value {
		reqIn, reqOut := p.NewChan(1)
		repIn, repOut := p.NewChan(0)
		p.Spawn(1, "doubler", func(w pe.Ctx) {
			n := w.Receive(reqIn).(int)
			w.Send(repOut, 2*n)
		})
		p.Send(reqOut, 21)
		return p.Receive(repIn)
	})
	if res.Value != 42 {
		t.Fatalf("value = %v, want 42", res.Value)
	}
	if res.Stats.Messages != 2 {
		t.Fatalf("messages = %d, want 2", res.Stats.Messages)
	}
	if res.Stats.Processes != 1 {
		t.Fatalf("processes = %d, want 1", res.Stats.Processes)
	}
	if res.PerPE[0].MsgsSent != 1 || res.PerPE[1].MsgsSent != 1 {
		t.Fatalf("per-PE sends = %d/%d, want 1/1", res.PerPE[0].MsgsSent, res.PerPE[1].MsgsSent)
	}
	if res.PerPE[0].MsgsRecv != 1 || res.PerPE[1].MsgsRecv != 1 {
		t.Fatalf("per-PE recvs = %d/%d, want 1/1", res.PerPE[0].MsgsRecv, res.PerPE[1].MsgsRecv)
	}
}

func TestStreamRoundTrip(t *testing.T) {
	const n = 10
	res := runN(t, NewConfig(2), func(p pe.Ctx) graph.Value {
		in, out := p.NewStream(0)
		p.Spawn(1, "counter", func(w pe.Ctx) {
			xs := make([]graph.Value, n)
			for i := range xs {
				xs[i] = i
			}
			w.SendAll(out, xs)
		})
		sum := 0
		for i, v := range p.RecvAll(in) {
			if v != i {
				t.Errorf("element %d = %v", i, v)
			}
			sum += v.(int)
		}
		return sum
	})
	if res.Value != n*(n-1)/2 {
		t.Fatalf("sum = %v, want %d", res.Value, n*(n-1)/2)
	}
	// n element messages plus the close.
	if res.Stats.Messages != n+1 {
		t.Fatalf("messages = %d, want %d", res.Stats.Messages, n+1)
	}
	if res.Stats.BytesSent <= int64(n)*eden.ConsOverhead {
		t.Fatalf("bytes = %d, want > cons overhead alone", res.Stats.BytesSent)
	}
}

func TestSendToOwnPE(t *testing.T) {
	// dest == own PE takes the inline transport path (no lock dance).
	res := runN(t, NewConfig(1), func(p pe.Ctx) graph.Value {
		in, out := p.NewChan(0)
		p.Send(out, "hi")
		return p.Receive(in)
	})
	if res.Value != "hi" {
		t.Fatalf("value = %v, want hi", res.Value)
	}
}

// --- cross-runtime oracles: native Eden == simulated Eden == sequential ---

func TestSumEulerOracleAcrossPEs(t *testing.T) {
	const n = 800
	want := euler.SumTotientSieve(n)
	// The PE counts deliberately include 1, a small count, and more PEs
	// than cores (virtual PEs timesliced by the Go scheduler).
	for _, pes := range []int{1, 2, 4, 2*runtime.GOMAXPROCS(0) + 1} {
		res := runN(t, NewConfig(pes), euler.EdenProgram(n, 2, 0))
		if res.Value != want {
			t.Fatalf("pes=%d: value = %v, want %d", pes, res.Value, want)
		}
		sim, err := eden.Run(eden.NewConfig(pes, 8), euler.EdenProgram(n, 2, 0))
		if err != nil {
			t.Fatalf("pes=%d: sim: %v", pes, err)
		}
		if sim.Value != res.Value {
			t.Fatalf("pes=%d: native %v != sim %v", pes, res.Value, sim.Value)
		}
	}
}

func TestCannonOracleNative(t *testing.T) {
	const n = 24
	a, b := matmul.Random(n, 11), matmul.Random(n, 12)
	want := matmul.MulOracle(a, b)
	// q*q processes; pes=4 with q=3 exercises several processes per PE.
	for _, tc := range []struct{ q, pes int }{{1, 1}, {2, 5}, {3, 4}} {
		res := runN(t, NewConfig(tc.pes), matmul.EdenCannonProgram(a, b, tc.q, 0))
		if !matmul.Equal(res.Value.(matmul.Mat), want, 1e-9) {
			t.Fatalf("q=%d pes=%d: Cannon product incorrect", tc.q, tc.pes)
		}
		if res.Stats.Processes != int64(tc.q*tc.q) {
			t.Fatalf("q=%d: processes = %d, want %d", tc.q, res.Stats.Processes, tc.q*tc.q)
		}
	}
}

func TestAPSPRingOracleNative(t *testing.T) {
	g := apsp.RandomGraph(30, 13, 9, 30)
	want := apsp.FloydWarshall(g)
	for _, p := range []int{1, 3, 5} {
		res := runN(t, NewConfig(p+1), apsp.EdenRingProgram(g, p, 0))
		if !apsp.Equal(res.Value.(apsp.Graph), want) {
			t.Fatalf("p=%d: wrong distances", p)
		}
	}
}

// --- skeleton coverage on the native backend ---

func TestParMapOnNative(t *testing.T) {
	res := runN(t, NewConfig(4), func(p pe.Ctx) graph.Value {
		inputs := make([]graph.Value, 10)
		for i := range inputs {
			inputs[i] = i
		}
		out := skel.ParMap(p, "sq", func(w pe.Ctx, in graph.Value) graph.Value {
			n := in.(int)
			return n * n
		}, inputs)
		sum := 0
		for i, v := range out {
			if v != i*i {
				t.Errorf("out[%d] = %v, want %d", i, v, i*i)
			}
			sum += v.(int)
		}
		return sum
	})
	if res.Value != 285 {
		t.Fatalf("sum = %v, want 285", res.Value)
	}
	if res.Stats.Processes != 10 {
		t.Fatalf("processes = %d, want 10", res.Stats.Processes)
	}
}

func TestMasterWorkerOnNative(t *testing.T) {
	res := runN(t, NewConfig(3), func(p pe.Ctx) graph.Value {
		initial := make([]graph.Value, 8)
		for i := range initial {
			initial[i] = i + 1
		}
		out := skel.MasterWorker(p, "mw", 2, 2, func(w pe.Ctx, task graph.Value) ([]graph.Value, graph.Value) {
			n := task.(int)
			// Tasks above 4 split once: dynamic task creation through the
			// master's work queue.
			if n > 4 {
				return []graph.Value{n - 4}, n * n
			}
			return nil, n * n
		}, initial)
		got := make([]int, len(out))
		for i, v := range out {
			got[i] = v.(int)
		}
		sort.Ints(got)
		return got
	})
	want := []int{1, 1, 4, 4, 9, 9, 16, 16, 25, 36, 49, 64}
	got := res.Value.([]int)
	if len(got) != len(want) {
		t.Fatalf("results = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("results = %v, want %v", got, want)
		}
	}
}

func TestDivideAndConquerOnNative(t *testing.T) {
	// Sum 1..64 by binary splitting, spawning subtrees two levels deep.
	type span struct{ Lo, Hi int }
	f := skel.DC{
		Trivial: func(prob graph.Value) bool { s := prob.(span); return s.Hi-s.Lo <= 8 },
		Solve: func(w pe.Ctx, prob graph.Value) graph.Value {
			s := prob.(span)
			sum := 0
			for i := s.Lo; i < s.Hi; i++ {
				sum += i
			}
			return sum
		},
		Divide: func(w pe.Ctx, prob graph.Value) []graph.Value {
			s := prob.(span)
			mid := (s.Lo + s.Hi) / 2
			return []graph.Value{span{s.Lo, mid}, span{mid, s.Hi}}
		},
		Combine: func(w pe.Ctx, prob graph.Value, subs []graph.Value) graph.Value {
			return subs[0].(int) + subs[1].(int)
		},
	}
	res := runN(t, NewConfig(4), func(p pe.Ctx) graph.Value {
		return skel.DivideAndConquer(p, "sum", 2, f, span{1, 65})
	})
	if res.Value != 64*65/2 {
		t.Fatalf("value = %v, want %d", res.Value, 64*65/2)
	}
}

// --- heap isolation: copy-on-send ---

func TestSendCopiesSliceAcrossHeaps(t *testing.T) {
	// The sender mutates its slice immediately after Send; the receiver
	// must see the values as sent. Under -race this also proves the copy
	// shares no backing array with the original.
	res := runN(t, NewConfig(2), func(p pe.Ctx) graph.Value {
		in, out := p.NewChan(1)
		repIn, repOut := p.NewChan(0)
		p.Spawn(1, "reader", func(w pe.Ctx) {
			xs := w.Receive(in).([]float64)
			sum := 0.0
			for _, x := range xs {
				sum += x
			}
			w.Send(repOut, sum)
		})
		xs := []float64{1, 2, 3}
		p.Send(out, xs)
		xs[0] = 99 // must not reach the receiver
		return p.Receive(repIn)
	})
	if res.Value != 6.0 {
		t.Fatalf("receiver saw %v, want 6 (copy shared the sender's array)", res.Value)
	}
}

func TestCopyForSendFreshThunks(t *testing.T) {
	inner := []float64{1, 2}
	orig := graph.NewValue(inner)
	c, err := copyForSend([]graph.Value{orig})
	if err != nil {
		t.Fatal(err)
	}
	ct := c.([]graph.Value)[0].(*graph.Thunk)
	if ct == orig {
		t.Fatal("copied message aliases the sender's thunk node")
	}
	inner[0] = 99
	if got := ct.Value().([]float64)[0]; got != 1 {
		t.Fatalf("copied payload = %v, want 1 (shares the sender's array)", got)
	}
}

func TestCopyForSendRejectsUnexported(t *testing.T) {
	type hidden struct{ xs []int }
	if _, err := copyForSend(&hidden{xs: []int{1}}); err == nil ||
		!strings.Contains(err.Error(), "unexported field") {
		t.Fatalf("err = %v, want unexported-field diagnosis", err)
	}
}

// --- failure protocol ---

func TestSendUnevaluatedRaisesSendError(t *testing.T) {
	// A placeholder hidden inside a Cons survives ForceDeep (which does
	// not traverse Cons) and must be caught by the packing check, raising
	// the same structured *eden.SendError as the simulator.
	done := make(chan error, 1)
	go func() {
		_, err := Run(NewConfig(2), func(p pe.Ctx) graph.Value {
			_, out := p.NewChan(1)
			var caught error
			func() {
				defer func() {
					if v := recover(); v != nil {
						caught, _ = v.(error)
					}
				}()
				p.Send(out, []graph.Value{eden.Cons{Head: graph.NewPlaceholder()}})
			}()
			var se *eden.SendError
			if !errors.As(caught, &se) {
				t.Errorf("recovered %v, want *eden.SendError", caught)
				return 0
			}
			if se.Op != "Send" || se.PE != 0 || se.Dest != 1 {
				t.Errorf("SendError = %+v, want Op=Send PE=0 Dest=1", se)
			}
			var ue *eden.UnevaluatedError
			if !errors.As(caught, &ue) {
				t.Errorf("SendError does not unwrap to *eden.UnevaluatedError: %v", caught)
			}
			return 0
		})
		done <- err
	}()
	if err := awaitRun(t, done); err != nil {
		t.Fatal(err)
	}
}

func TestSpawnedThreadPanicFailsRun(t *testing.T) {
	// The root blocks in Receive while a spawned thread panics: the
	// failure must unwind the blocked root and name the thread.
	done := make(chan error, 1)
	go func() {
		_, err := Run(NewConfig(2), func(p pe.Ctx) graph.Value {
			in, _ := p.NewChan(0)
			p.Spawn(1, "bomber", func(w pe.Ctx) {
				panic("worker boom")
			})
			return p.Receive(in)
		})
		done <- err
	}()
	err := awaitRun(t, done)
	if err == nil || !strings.Contains(err.Error(), `PE 1 thread "bomber" panicked: worker boom`) {
		t.Fatalf("err = %v, want the spawned thread's panic", err)
	}
}

func TestRootPanicUnblocksSpawnedThread(t *testing.T) {
	// A spawned thread blocks in Receive while the root panics: Run must
	// return (the join barrier requires the blocked thread to unwind).
	done := make(chan error, 1)
	go func() {
		_, err := Run(NewConfig(2), func(p pe.Ctx) graph.Value {
			in, _ := p.NewChan(1)
			p.Spawn(1, "waiter", func(w pe.Ctx) {
				w.Receive(in)
			})
			panic("root boom")
		})
		done <- err
	}()
	err := awaitRun(t, done)
	if err == nil || !strings.Contains(err.Error(), "root process panicked: root boom") {
		t.Fatalf("err = %v, want the root panic", err)
	}
}

func TestReceiveTwicePanics(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		_, err := Run(NewConfig(1), func(p pe.Ctx) graph.Value {
			in, out := p.NewChan(0)
			p.Send(out, 1)
			p.Receive(in)
			return p.Receive(in)
		})
		done <- err
	}()
	err := awaitRun(t, done)
	var me *eden.ChanMisuseError
	if !errors.As(err, &me) || me.Op != "Receive" || me.Reason != "already-received" {
		t.Fatalf("err = %v, want a *ChanMisuseError with the double-receive diagnosis", err)
	}
}

// --- telemetry ---

func TestStatsConsistency(t *testing.T) {
	res := runN(t, NewConfig(4), euler.EdenProgram(400, 2, 0))
	var sent, recv, bytesS, bytesR, threads int64
	for _, ps := range res.PerPE {
		sent += ps.MsgsSent
		recv += ps.MsgsRecv
		bytesS += ps.BytesSent
		bytesR += ps.BytesRecv
		threads += ps.Threads
	}
	if sent != recv {
		t.Fatalf("msgs sent %d != msgs received %d", sent, recv)
	}
	if bytesS != bytesR {
		t.Fatalf("bytes sent %d != bytes received %d", bytesS, bytesR)
	}
	if res.Stats.Messages != sent || res.Stats.BytesSent != bytesS {
		t.Fatalf("aggregate %+v != per-PE sums (%d msgs, %d bytes)", res.Stats, sent, bytesS)
	}
	if threads != res.Stats.ThreadsCreated {
		t.Fatalf("per-PE threads %d != ThreadsCreated %d", threads, res.Stats.ThreadsCreated)
	}
	if res.Stats.Processes == 0 || res.Stats.BytesSent == 0 {
		t.Fatalf("empty telemetry: %+v", res.Stats)
	}
	for i, ps := range res.PerPE {
		if ps.ArenaThunks == 0 && (ps.MsgsRecv > 0) {
			t.Fatalf("PE %d received messages but allocated no arena cells", i)
		}
	}
	if res.GC.BytesAlloc <= 0 {
		t.Fatalf("GC.BytesAlloc = %d, want > 0", res.GC.BytesAlloc)
	}
}

func TestEventLogTimelines(t *testing.T) {
	cfg := NewConfig(3)
	cfg.EventLog = true
	res := runN(t, cfg, euler.EdenProgram(300, 2, 0))
	if res.Events == nil {
		t.Fatal("EventLog requested but Result.Events is nil")
	}
	var sends, recvs, commPairs int
	for i := 0; i < res.Events.Workers(); i++ {
		depth := 0
		for _, e := range res.Events.Events(i) {
			switch e.Type {
			case eventlog.MsgSend:
				sends++
			case eventlog.MsgRecv:
				recvs++
			case eventlog.CommBegin:
				depth++
			case eventlog.CommEnd:
				depth--
				commPairs++
			}
			if depth < 0 {
				t.Fatalf("PE %d: CommEnd without CommBegin", i)
			}
		}
		if depth != 0 {
			t.Fatalf("PE %d: %d unclosed comm brackets", i, depth)
		}
	}
	if int64(sends) != res.Stats.Messages || int64(recvs) != res.Stats.Messages {
		t.Fatalf("eventlog saw %d sends / %d recvs, stats say %d messages",
			sends, recvs, res.Stats.Messages)
	}
	if commPairs == 0 {
		t.Fatal("no comm brackets recorded")
	}
	tr := res.Trace()
	if tr == nil {
		t.Fatal("Trace() = nil with events present")
	}
	agents := tr.Agents()
	if len(agents) != 3 {
		t.Fatalf("trace has %d agents, want 3", len(agents))
	}
	for i, a := range agents {
		want := "pe" + string(rune('0'+i))
		if a.Name != want {
			t.Fatalf("agent %d named %q, want %q", i, a.Name, want)
		}
	}
}

func TestReportJSONShape(t *testing.T) {
	res := runN(t, NewConfig(2), euler.EdenProgram(200, 2, 0))
	rep := res.Report()
	if rep.PEs != 2 || rep.WallNS <= 0 || len(rep.PerPE) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Total != res.Stats {
		t.Fatalf("report total %+v != stats %+v", rep.Total, res.Stats)
	}
}
