// Package pe defines the backend-neutral processing-element (PE)
// context of the Eden programming model: the interface an Eden process
// thread programs against, independent of which runtime executes it.
//
// Two backends implement it. The virtual-time simulator
// (internal/eden) runs PEs on the deterministic machine model with a
// full communication cost model; the native backend
// (internal/nativeeden) runs each PE as a real goroutine with its own
// private heap, measuring wall-clock time. Skeletons (internal/skel)
// and the workloads' Eden programs are written once against pe.Ctx and
// run unchanged on both — the backend-portability property the Eden
// literature's skeleton libraries rely on.
//
// The port types are opaque interfaces: each backend supplies its own
// concrete channel representation (simulated mailboxes vs. real
// deep-copy delivery), and a port created on one backend is only valid
// on contexts of the same run.
package pe

import "parhask/internal/graph"

// Ctx is the execution context of an Eden process thread: the generic
// mutator operations (Burn/Alloc are virtual-cost hooks, no-ops on the
// native backend) plus Eden's coordination operations — process
// instantiation, one-value channels, element-by-element streams, and
// local placeholder synchronisation.
type Ctx interface {
	// Burn consumes virtual mutator time (native: no-op).
	Burn(ns int64)
	// Alloc accounts heap allocation (native: no-op).
	Alloc(bytes int64)
	// Force evaluates a thunk to weak head normal form on this PE.
	Force(t *graph.Thunk) graph.Value
	// ForceDeep evaluates a value to normal form on this PE.
	ForceDeep(v graph.Value) graph.Value

	// PE returns the index of the PE this thread runs on.
	PE() int
	// PEs returns the total number of processing elements.
	PEs() int
	// AddResident declares long-lived heap data on the current PE,
	// included in its local-GC live-data estimate (simulator) or its
	// resident-bytes telemetry (native).
	AddResident(bytes int64)

	// Spawn instantiates a process on PE dest (modulo the PE count): the
	// remote runtime creates a thread running body.
	Spawn(dest int, name string, body func(Ctx))
	// ForkLocal starts an additional thread of the current process on
	// the same PE.
	ForkLocal(name string, body func(Ctx))

	// NewChan creates a one-value channel whose receiving end lives on
	// PE dest.
	NewChan(dest int) (Inport, Outport)
	// Send reduces v to normal form and ships it to the channel's
	// destination PE. Each channel carries exactly one value.
	Send(out Outport, v graph.Value)
	// Receive blocks until the channel's value has arrived; it must be
	// called on the channel's owning PE.
	Receive(in Inport) graph.Value

	// NewStream creates a stream channel whose receiving end lives on
	// PE dest.
	NewStream(dest int) (StreamIn, StreamOut)
	// StreamSend transmits one element as its own message (Eden's
	// element-by-element list communication).
	StreamSend(out StreamOut, v graph.Value)
	// StreamClose terminates the stream; the receiver's next StreamRecv
	// reports ok=false.
	StreamClose(out StreamOut)
	// StreamRecv receives the next element, blocking until it arrives;
	// ok is false when the stream has been closed.
	StreamRecv(in StreamIn) (v graph.Value, ok bool)
	// RecvAll drains a stream into a slice.
	RecvAll(in StreamIn) []graph.Value
	// SendAll sends every element of xs and closes the stream.
	SendAll(out StreamOut, xs []graph.Value)

	// LocalResolve fills a placeholder that lives on the current PE
	// without going through the transport: an intra-process
	// synchronisation variable (MVar-like), used by skeletons to join
	// local collector threads.
	LocalResolve(cell *graph.Thunk, v graph.Value)
	// Await forces a local placeholder (blocking until LocalResolve or
	// an arriving message fills it).
	Await(cell *graph.Thunk) graph.Value
}

// Program is a backend-neutral Eden program body: the unit both the
// simulated eden.Run and the native nativeeden.Run execute as the root
// process on PE 0.
type Program func(Ctx) graph.Value

// ThreadFailure is the death notice a supervised spawn delivers on its
// verdict channel when the spawned thread panicked: plain exported
// scalar fields so it crosses distributed heaps through the normal
// copy-on-send transport. A successful supervised thread sends `true`
// instead.
type ThreadFailure struct {
	// PE is where the thread died.
	PE int
	// Name is the thread's spawn name.
	Name string
	// Err is the rendered failure (error values don't pack; the string
	// crosses heaps).
	Err string
}

// PackedSize implements the Eden message-size interface (eden.Sized):
// an 8-byte wire header, the PE word, and two length-prefixed strings.
func (f ThreadFailure) PackedSize() int64 {
	return 8 + 8 + (8 + int64(len(f.Name))) + (8 + int64(len(f.Err)))
}

// SupervisedSpawner is an optional Ctx extension for fault-tolerant
// skeletons: SpawnSupervised instantiates a process whose panic is
// contained instead of aborting the whole run. The returned Inport (on
// the caller's PE) receives exactly one verdict: `true` if the thread
// body returned, or a ThreadFailure if it panicked — after its claims
// were poisoned so blocked peers unblock into the failure path.
// Backends without supervision simply don't implement this; skeletons
// type-assert and degrade to fail-fast spawning.
type SupervisedSpawner interface {
	SpawnSupervised(dest int, name string, body func(Ctx)) Inport
}

// StreamCanceller is an optional Ctx extension for supervision:
// CancelStream terminates a stream from the *receiving* side — the
// current tail resolves to end-of-stream, so a reader draining it
// finishes after the elements already delivered, and late sends from
// the (presumed dead) producer are dropped silently instead of
// panicking. Must be called on the stream's owning PE.
type StreamCanceller interface {
	CancelStream(in StreamIn)
}

// Inport is the receiving end of a one-value channel, owned by a PE.
type Inport interface {
	// InPE returns the PE that owns the receiving end.
	InPE() int
}

// Outport is the sending end of a one-value channel.
type Outport interface {
	// OutPE returns the destination PE.
	OutPE() int
}

// StreamIn is the receiving end of an element-by-element stream.
type StreamIn interface {
	// StreamInPE returns the PE that owns the receiving end.
	StreamInPE() int
}

// StreamOut is the sending end of an element-by-element stream.
type StreamOut interface {
	// StreamOutPE returns the destination PE.
	StreamOutPE() int
}
