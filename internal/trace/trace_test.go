package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSegmentsRecorded(t *testing.T) {
	l := NewLog()
	a := l.NewAgent("cap0")
	a.Set(0, Run)
	a.Set(100, GC)
	a.Set(150, Run)
	a.Set(300, Idle)
	l.Close(400)
	segs := a.Segments()
	want := []Segment{
		{Run, 0, 100}, {GC, 100, 150}, {Run, 150, 300}, {Idle, 300, 400},
	}
	if len(segs) != len(want) {
		t.Fatalf("got %d segments, want %d: %v", len(segs), len(want), segs)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("seg[%d] = %v, want %v", i, segs[i], want[i])
		}
	}
}

func TestSetSameStateIsNoop(t *testing.T) {
	l := NewLog()
	a := l.NewAgent("cap0")
	a.Set(0, Run)
	a.Set(50, Run)
	a.Set(60, Run)
	l.Close(100)
	if n := len(a.Segments()); n != 1 {
		t.Fatalf("got %d segments, want 1", n)
	}
}

func TestInitialStateIsIdle(t *testing.T) {
	l := NewLog()
	a := l.NewAgent("cap0")
	a.Set(40, Run)
	l.Close(100)
	segs := a.Segments()
	if segs[0].State != Idle || segs[0].From != 0 || segs[0].To != 40 {
		t.Fatalf("first segment = %v, want idle [0,40)", segs[0])
	}
}

func TestTimeIn(t *testing.T) {
	l := NewLog()
	a := l.NewAgent("cap0")
	a.Set(0, Run)
	a.Set(100, GC)
	a.Set(130, Run)
	l.Close(200)
	if got := a.TimeIn(Run); got != 170 {
		t.Fatalf("TimeIn(Run) = %d, want 170", got)
	}
	if got := a.TimeIn(GC); got != 30 {
		t.Fatalf("TimeIn(GC) = %d, want 30", got)
	}
	if got := a.TimeIn(Blocked); got != 0 {
		t.Fatalf("TimeIn(Blocked) = %d, want 0", got)
	}
}

func TestCount(t *testing.T) {
	l := NewLog()
	a := l.NewAgent("cap0")
	for i := int64(0); i < 5; i++ {
		a.Set(i*100, Run)
		a.Set(i*100+50, GC)
	}
	l.Close(500)
	if got := a.Count(GC); got != 5 {
		t.Fatalf("Count(GC) = %d, want 5", got)
	}
}

func TestTimeMonotonicityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on time going backwards")
		}
	}()
	l := NewLog()
	a := l.NewAgent("cap0")
	a.Set(100, Run)
	a.Set(50, GC)
}

func TestRenderShape(t *testing.T) {
	l := NewLog()
	a := l.NewAgent("cap0")
	b := l.NewAgent("cap1")
	a.Set(0, Run)
	b.Set(0, Run)
	b.Set(500, Idle)
	l.Close(1000)
	out := l.Render(40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// header + 2 agents + legend
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 40)) {
		t.Fatalf("cap0 row should be all running:\n%s", out)
	}
	if !strings.Contains(lines[2], "#") || !strings.Contains(lines[2], ".") {
		t.Fatalf("cap1 row should mix # and .:\n%s", out)
	}
}

func TestRenderDominantState(t *testing.T) {
	l := NewLog()
	a := l.NewAgent("c")
	a.Set(0, Run)
	// Tiny GC blip: must not dominate a wide bucket.
	a.Set(500, GC)
	a.Set(501, Run)
	l.Close(1000)
	out := l.Render(10)
	row := strings.Split(out, "\n")[1] // the agent row
	if strings.Contains(row, "G") {
		t.Fatalf("1ns GC should not dominate 100ns buckets:\n%s", out)
	}
}

func TestUtilisation(t *testing.T) {
	l := NewLog()
	a := l.NewAgent("c0")
	b := l.NewAgent("c1")
	a.Set(0, Run) // runs the whole time
	_ = b         // idle the whole time
	l.Close(1000)
	if u := l.Utilisation(); u < 0.49 || u > 0.51 {
		t.Fatalf("utilisation = %v, want 0.5", u)
	}
}

func TestSummaryContainsAgents(t *testing.T) {
	l := NewLog()
	a := l.NewAgent("cap0")
	a.Set(0, Run)
	l.Close(100)
	s := l.Summary()
	if !strings.Contains(s, "cap0") || !strings.Contains(s, "TOTAL") {
		t.Fatalf("summary missing pieces:\n%s", s)
	}
}

func TestSegmentsCoverTimelineProperty(t *testing.T) {
	// Property: for any sequence of Set calls with nondecreasing times,
	// segments tile [0, end) exactly: contiguous, non-overlapping.
	f := func(raw []uint16) bool {
		l := NewLog()
		a := l.NewAgent("x")
		now := int64(0)
		for i, r := range raw {
			now += int64(r % 997)
			a.Set(now, State(i%NumStates))
		}
		end := now + 100
		l.Close(end)
		segs := a.Segments()
		prev := int64(0)
		for _, s := range segs {
			if s.From != prev || s.To <= s.From {
				return false
			}
			prev = s.To
		}
		return prev == end
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeInSumsToTotalProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		l := NewLog()
		a := l.NewAgent("x")
		now := int64(0)
		for i, r := range raw {
			now += int64(r%500) + 1
			a.Set(now, State(i%NumStates))
		}
		end := now + 7
		l.Close(end)
		var sum int64
		for s := 0; s < NumStates; s++ {
			sum += a.TimeIn(State(s))
		}
		return sum == end
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFmtDur(t *testing.T) {
	cases := map[int64]string{
		5:             "5ns",
		1_500:         "1.5µs",
		2_300_000:     "2.3ms",
		2_750_000_000: "2.75s",
	}
	for in, want := range cases {
		if got := FmtDur(in); got != want {
			t.Errorf("FmtDur(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestLongestInAndWorstGap(t *testing.T) {
	l := NewLog()
	a := l.NewAgent("c0")
	a.Set(0, Run)
	a.Set(100, Idle)
	a.Set(150, Run)
	a.Set(200, Idle) // 300-long gap, the worst
	a.Set(500, Run)
	l.Close(600)
	if got := a.LongestIn(Idle); got != 300 {
		t.Fatalf("LongestIn(Idle) = %d, want 300", got)
	}
	if got := a.LongestIn(Run); got != 100 {
		t.Fatalf("LongestIn(Run) = %d, want 100", got)
	}
	if got := l.WorstGap(); got != 300 {
		t.Fatalf("WorstGap = %d, want 300", got)
	}
}
