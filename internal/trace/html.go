package trace

import (
	"fmt"
	"html"
	"io"
)

// stateColors maps trace states to the paper's EdenTV colour scheme:
// running green, runnable/sync yellow, blocked red, idle blue(ish),
// GC orange, message handling purple.
var stateColors = [...]string{
	Idle:     "#9db8d2",
	Run:      "#3fa34d",
	Runnable: "#e8c547",
	Blocked:  "#d64545",
	GC:       "#e07b39",
	Comm:     "#8e6fc1",
}

// WriteHTML renders the log as a self-contained HTML timeline — the
// EdenTV-style diagram the paper's Figs. 2 and 4 show, as horizontal
// bars per capability/PE with one coloured span per activity segment.
func (l *Log) WriteHTML(w io.Writer, title string) error {
	total := l.end
	if total <= 0 {
		_, err := fmt.Fprintln(w, "<html><body>(empty trace)</body></html>")
		return err
	}
	var err error
	p := func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>%s</title><style>
body { font-family: sans-serif; background: #fafafa; margin: 1.5em; }
.lane { display: flex; height: 22px; margin: 2px 0; border: 1px solid #ccc; }
.lane span { height: 100%%; display: inline-block; }
.name { display: inline-block; width: 5em; font-size: 13px; }
.row { display: flex; align-items: center; }
.legend span { display: inline-block; padding: 2px 8px; margin-right: 6px;
  font-size: 12px; color: #fff; border-radius: 3px; }
.axis { font-size: 12px; color: #555; margin-left: 5em; }
</style></head><body>
<h3>%s</h3>
<div class="legend">`, html.EscapeString(title), html.EscapeString(title))
	for s := 0; s < NumStates; s++ {
		p(`<span style="background:%s">%s</span>`, stateColors[s], stateNames[s])
	}
	p("</div>\n")
	p(`<div class="axis">0 &mdash; %s</div>`+"\n", FmtDur(total))
	for _, a := range l.agents {
		p(`<div class="row"><span class="name">%s</span><div class="lane" style="flex:1">`,
			html.EscapeString(a.Name))
		for _, seg := range a.segs {
			width := 100 * float64(seg.To-seg.From) / float64(total)
			if width < 0.01 {
				continue
			}
			p(`<span style="width:%.3f%%;background:%s" title="%s %s&ndash;%s"></span>`,
				width, stateColors[seg.State], seg.State, FmtDur(seg.From), FmtDur(seg.To))
		}
		p("</div></div>\n")
	}
	p("</body></html>\n")
	return err
}
