package trace

import "testing"

func TestStackReducerNesting(t *testing.T) {
	l := NewLog()
	r := NewStackReducer(l.NewAgent("w"), Runnable)
	r.Push(10, Run)
	r.Push(20, Blocked)
	r.Push(30, Run) // helping inside a blocked force
	if r.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", r.Depth())
	}
	r.Pop(40) // back to Blocked
	r.Pop(50) // back to Run
	r.Pop(60) // back to base
	l.Close(80)

	want := []Segment{
		{State: Runnable, From: 0, To: 10},
		{State: Run, From: 10, To: 20},
		{State: Blocked, From: 20, To: 30},
		{State: Run, From: 30, To: 40},
		{State: Blocked, From: 40, To: 50},
		{State: Run, From: 50, To: 60},
		{State: Runnable, From: 60, To: 80},
	}
	got := l.Agents()[0].Segments()
	if len(got) != len(want) {
		t.Fatalf("%d segments, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("segment %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestStackReducerPopOnEmptyStack(t *testing.T) {
	l := NewLog()
	r := NewStackReducer(l.NewAgent("w"), Idle)
	r.Pop(5) // unmatched End (its Begin was dropped): stays at base
	if r.Depth() != 0 {
		t.Fatalf("depth = %d, want 0", r.Depth())
	}
	r.Push(10, Run)
	r.Pop(20)
	r.Pop(30) // unmatched again
	l.Close(40)
	a := l.Agents()[0]
	if got := a.TimeIn(Run); got != 10 {
		t.Fatalf("run time = %d, want 10", got)
	}
	if got := a.TimeIn(Idle); got != 30 {
		t.Fatalf("idle time = %d, want 30", got)
	}
}

func TestStackReducerZeroWidthBrackets(t *testing.T) {
	// Brackets opened and closed at the same instant must not produce
	// zero-width segments or disturb the surrounding state.
	l := NewLog()
	r := NewStackReducer(l.NewAgent("w"), Runnable)
	r.Push(10, Run)
	r.Pop(10)
	r.Push(10, Blocked)
	r.Pop(10)
	l.Close(20)
	a := l.Agents()[0]
	for _, s := range a.Segments() {
		if s.State != Runnable {
			t.Fatalf("zero-width bracket leaked a %v segment: %+v", s.State, a.Segments())
		}
	}
	if got := a.TimeIn(Runnable); got != 20 {
		t.Fatalf("runnable time = %d, want 20 (full width)", got)
	}
}
