package trace

// StackReducer folds nested begin/end activity brackets into an agent's
// segment timeline. It is the shared reduction step between an event
// stream and the Log/Segment model: Push(now, s) records that the agent
// entered state s, Pop(now) that it returned to the enclosing state.
// Brackets nest — a worker running a spark (Run) may block on a thunk
// (Blocked) and, while blocked, help by running another spark (Run
// again); each Pop restores exactly the state the matching Push
// interrupted.
//
// The wall-clock eventlog reduction (internal/eventlog) is the primary
// client: native workers emit begin/end events on the hot path and the
// reducer rebuilds the same per-agent state timeline the simulated
// runtimes set directly. An event stream truncated by ring wraparound
// may carry unmatched Ends (their Begins were dropped); Pop on an empty
// stack therefore degrades gracefully to the base state instead of
// panicking.
type StackReducer struct {
	a     *Agent
	base  State
	stack []State
}

// NewStackReducer starts agent a in the base state at time 0. The base
// is what the agent does between brackets — Runnable for a work-seeking
// native stealer, Idle for a main-thread worker before its program
// begins.
func NewStackReducer(a *Agent, base State) *StackReducer {
	a.Set(0, base)
	return &StackReducer{a: a, base: base}
}

// Push records that the agent entered state s at time now.
func (r *StackReducer) Push(now int64, s State) {
	r.stack = append(r.stack, s)
	r.a.Set(now, s)
}

// Pop records that the agent left its innermost bracket at time now,
// restoring the enclosing state (or the base state if nothing encloses).
func (r *StackReducer) Pop(now int64) {
	if n := len(r.stack); n > 0 {
		r.stack = r.stack[:n-1]
	}
	r.a.Set(now, r.top())
}

// top returns the state the agent is currently in.
func (r *StackReducer) top() State {
	if n := len(r.stack); n > 0 {
		return r.stack[n-1]
	}
	return r.base
}

// Depth returns the current bracket nesting depth.
func (r *StackReducer) Depth() int { return len(r.stack) }
