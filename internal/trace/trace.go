// Package trace records per-agent activity over virtual time and renders
// EdenTV-style timeline diagrams as text.
//
// An agent is a capability (GpH) or a PE (Eden). At any instant an agent
// is in exactly one State; the paper's colour scheme maps to runes as:
// running Haskell code (green → '#'), runnable but doing system work or
// waiting for synchronisation (yellow → '~'), all threads blocked
// (red → 'x'), idle (blue → '.'), and garbage collecting ('G' — the
// paper folds GC time into the yellow synchronisation bands; we keep it
// distinguishable).
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// State is an agent's activity classification at an instant.
type State uint8

const (
	// Idle: the agent has no work at all (paper: blue).
	Idle State = iota
	// Run: executing mutator (Haskell) code (paper: green).
	Run
	// Runnable: doing system work or waiting for synchronisation, e.g.
	// spinning for sparks or waiting at the GC barrier (paper: yellow).
	Runnable
	// Blocked: all of the agent's threads are blocked (paper: red).
	Blocked
	// GC: performing garbage collection.
	GC
	// Comm: packing/unpacking or otherwise handling messages (Eden).
	Comm
)

var stateRunes = [...]rune{Idle: '.', Run: '#', Runnable: '~', Blocked: 'x', GC: 'G', Comm: 'M'}

var stateNames = [...]string{Idle: "idle", Run: "run", Runnable: "runnable", Blocked: "blocked", GC: "gc", Comm: "comm"}

// NumStates is the number of distinct states.
const NumStates = len(stateRunes)

// Rune returns the timeline rune for s.
func (s State) Rune() rune { return stateRunes[s] }

// String returns a human-readable name for s.
func (s State) String() string { return stateNames[s] }

// Segment is a maximal interval during which an agent stayed in one state.
type Segment struct {
	State    State
	From, To int64 // [From, To) in virtual ns
}

// Agent is one traced entity (capability or PE).
type Agent struct {
	Name     string
	segs     []Segment
	cur      State
	curStart int64
	closed   bool
}

// Log collects the trace of one run.
type Log struct {
	agents []*Agent
	end    int64
}

// NewLog returns an empty trace log.
func NewLog() *Log { return &Log{} }

// NewAgent registers a new agent starting in the Idle state at time 0.
func (l *Log) NewAgent(name string) *Agent {
	a := &Agent{Name: name, cur: Idle}
	l.agents = append(l.agents, a)
	return a
}

// Agents returns the registered agents in creation order.
func (l *Log) Agents() []*Agent { return l.agents }

// End returns the close time of the log.
func (l *Log) End() int64 { return l.end }

// Set records that the agent entered state s at time now. Setting the
// current state again is a no-op, so callers can set unconditionally.
// Calls after the log has been closed are ignored: measurement ends at
// Close, but the simulated runtime may still drain work after it.
func (a *Agent) Set(now int64, s State) {
	if a.closed {
		return
	}
	if s == a.cur {
		return
	}
	if now < a.curStart {
		panic(fmt.Sprintf("trace: time went backwards on %s: %d < %d", a.Name, now, a.curStart))
	}
	if now > a.curStart {
		a.segs = append(a.segs, Segment{State: a.cur, From: a.curStart, To: now})
	}
	a.cur = s
	a.curStart = now
}

// State returns the agent's current state.
func (a *Agent) State() State { return a.cur }

// Segments returns the agent's closed segments. Call after Log.Close.
func (a *Agent) Segments() []Segment { return a.segs }

// Close finalises the log at time end, terminating every agent's open
// segment.
func (l *Log) Close(end int64) {
	l.end = end
	for _, a := range l.agents {
		if a.closed {
			continue
		}
		if end > a.curStart {
			a.segs = append(a.segs, Segment{State: a.cur, From: a.curStart, To: end})
		}
		a.closed = true
	}
}

// TimeIn returns the total time agent a spent in state s.
func (a *Agent) TimeIn(s State) int64 {
	var total int64
	for _, seg := range a.segs {
		if seg.State == s {
			total += seg.To - seg.From
		}
	}
	return total
}

// Count returns how many maximal segments of state s the agent recorded.
func (a *Agent) Count(s State) int {
	n := 0
	for _, seg := range a.segs {
		if seg.State == s {
			n++
		}
	}
	return n
}

// dominantState returns the state occupying the most time in [from, to)
// for agent a. Idle wins ties last (so any activity shows).
func (a *Agent) dominantState(from, to int64) State {
	var dur [NumStates]int64
	for _, seg := range a.segs {
		lo, hi := seg.From, seg.To
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if hi > lo {
			dur[seg.State] += hi - lo
		}
	}
	best := Idle
	var bestDur int64 = -1
	// Prefer non-idle states on ties; iterate Idle first so any equal
	// non-idle state replaces it.
	for s := 0; s < NumStates; s++ {
		if dur[s] > bestDur {
			bestDur = dur[s]
			best = State(s)
		}
	}
	return best
}

// Render draws the whole log as an ASCII timeline, one row per agent,
// sampling `width` buckets across [0, End). Each cell shows the dominant
// state within its bucket.
func (l *Log) Render(width int) string {
	if width < 10 {
		width = 10
	}
	var b strings.Builder
	total := l.end
	if total <= 0 {
		return "(empty trace)\n"
	}
	nameW := 0
	for _, a := range l.agents {
		if len(a.Name) > nameW {
			nameW = len(a.Name)
		}
	}
	fmt.Fprintf(&b, "%*s  0%s%s\n", nameW, "", strings.Repeat(" ", width-len(fmtDur(total))-1), fmtDur(total))
	for _, a := range l.agents {
		fmt.Fprintf(&b, "%*s |", nameW, a.Name)
		for i := 0; i < width; i++ {
			from := total * int64(i) / int64(width)
			to := total * int64(i+1) / int64(width)
			if to == from {
				to = from + 1
			}
			b.WriteRune(a.dominantState(from, to).Rune())
		}
		b.WriteString("|\n")
	}
	fmt.Fprintf(&b, "%*s  legend: #=running ~=runnable/sync x=blocked .=idle G=gc M=msg\n", nameW, "")
	return b.String()
}

// Summary reports per-state utilisation across all agents, plus per-agent
// GC counts, as a text table.
func (l *Log) Summary() string {
	var b strings.Builder
	total := l.end
	if total <= 0 {
		return "(empty trace)\n"
	}
	fmt.Fprintf(&b, "%-10s %9s %9s %9s %9s %9s %9s %6s\n",
		"agent", "run%", "runnable%", "blocked%", "idle%", "gc%", "comm%", "gcs")
	var sums [NumStates]int64
	for _, a := range l.agents {
		var pct [NumStates]float64
		for s := 0; s < NumStates; s++ {
			d := a.TimeIn(State(s))
			sums[s] += d
			pct[s] = 100 * float64(d) / float64(total)
		}
		fmt.Fprintf(&b, "%-10s %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%% %6d\n",
			a.Name, pct[Run], pct[Runnable], pct[Blocked], pct[Idle], pct[GC], pct[Comm], a.Count(GC))
	}
	n := int64(len(l.agents))
	if n > 0 {
		fmt.Fprintf(&b, "%-10s %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n",
			"TOTAL",
			100*float64(sums[Run])/float64(total*n),
			100*float64(sums[Runnable])/float64(total*n),
			100*float64(sums[Blocked])/float64(total*n),
			100*float64(sums[Idle])/float64(total*n),
			100*float64(sums[GC])/float64(total*n),
			100*float64(sums[Comm])/float64(total*n))
	}
	return b.String()
}

// Utilisation returns the fraction of total agent-time spent in Run.
func (l *Log) Utilisation() float64 {
	if l.end <= 0 || len(l.agents) == 0 {
		return 0
	}
	var run int64
	for _, a := range l.agents {
		run += a.TimeIn(Run)
	}
	return float64(run) / float64(l.end*int64(len(l.agents)))
}

// fmtDur renders a virtual-ns duration human-readably.
func fmtDur(ns int64) string {
	switch {
	case ns >= 1_000_000_000:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1_000_000:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 1_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// FmtDur formats a virtual duration for reports.
func FmtDur(ns int64) string { return fmtDur(ns) }

// SortedAgentNames returns agent names sorted alphabetically (helper for
// deterministic test assertions).
func (l *Log) SortedAgentNames() []string {
	names := make([]string, len(l.agents))
	for i, a := range l.agents {
		names[i] = a.Name
	}
	sort.Strings(names)
	return names
}

// LongestIn returns the longest contiguous stretch the agent spent in
// state s — e.g. the worst idle gap of a capability, the quantity the
// paper's trace discussion reads off the diagrams.
func (a *Agent) LongestIn(s State) int64 {
	var best int64
	for _, seg := range a.segs {
		if seg.State == s && seg.To-seg.From > best {
			best = seg.To - seg.From
		}
	}
	return best
}

// WorstGap returns the longest single idle stretch across all agents.
func (l *Log) WorstGap() int64 {
	var best int64
	for _, a := range l.agents {
		if g := a.LongestIn(Idle); g > best {
			best = g
		}
	}
	return best
}
