package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteCSV exports the log as one row per segment:
//
//	agent,state,from_ns,to_ns
//
// suitable for plotting the paper's timeline figures with external
// tools (the role EdenTV's file format played).
func (l *Log) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "agent,state,from_ns,to_ns"); err != nil {
		return err
	}
	for _, a := range l.agents {
		for _, s := range a.segs {
			if _, err := fmt.Fprintf(w, "%s,%s,%d,%d\n", a.Name, s.State, s.From, s.To); err != nil {
				return err
			}
		}
	}
	return nil
}

// jsonLog is the exported JSON shape.
type jsonLog struct {
	EndNs  int64       `json:"end_ns"`
	Agents []jsonAgent `json:"agents"`
}

type jsonAgent struct {
	Name     string        `json:"name"`
	Segments []jsonSegment `json:"segments"`
}

type jsonSegment struct {
	State  string `json:"state"`
	FromNs int64  `json:"from_ns"`
	ToNs   int64  `json:"to_ns"`
}

// WriteJSON exports the log as a single JSON document.
func (l *Log) WriteJSON(w io.Writer) error {
	out := jsonLog{EndNs: l.end}
	for _, a := range l.agents {
		ja := jsonAgent{Name: a.Name}
		for _, s := range a.segs {
			ja.Segments = append(ja.Segments, jsonSegment{
				State: s.State.String(), FromNs: s.From, ToNs: s.To,
			})
		}
		out.Agents = append(out.Agents, ja)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
