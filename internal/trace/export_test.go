package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

func exportFixture() *Log {
	l := NewLog()
	a := l.NewAgent("cap0")
	b := l.NewAgent("cap1")
	a.Set(0, Run)
	a.Set(100, GC)
	a.Set(130, Run)
	b.Set(50, Run)
	l.Close(200)
	return l
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	if err := exportFixture().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "agent,state,from_ns,to_ns" {
		t.Fatalf("bad header %q", lines[0])
	}
	// cap0: run(0-100), gc(100-130), run(130-200); cap1: idle(0-50), run(50-200)
	if len(lines) != 1+3+2 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "cap0,gc,100,130") {
		t.Fatalf("missing gc segment:\n%s", out)
	}
	if !strings.Contains(out, "cap1,idle,0,50") {
		t.Fatalf("missing idle segment:\n%s", out)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	var sb strings.Builder
	if err := exportFixture().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		EndNs  int64 `json:"end_ns"`
		Agents []struct {
			Name     string `json:"name"`
			Segments []struct {
				State  string `json:"state"`
				FromNs int64  `json:"from_ns"`
				ToNs   int64  `json:"to_ns"`
			} `json:"segments"`
		} `json:"agents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.EndNs != 200 || len(decoded.Agents) != 2 {
		t.Fatalf("decoded %+v", decoded)
	}
	if decoded.Agents[0].Name != "cap0" || len(decoded.Agents[0].Segments) != 3 {
		t.Fatalf("cap0 decoded %+v", decoded.Agents[0])
	}
	// Segments tile the timeline.
	var prev int64
	for _, s := range decoded.Agents[0].Segments {
		if s.FromNs != prev {
			t.Fatalf("gap at %d", s.FromNs)
		}
		prev = s.ToNs
	}
	if prev != 200 {
		t.Fatalf("segments end at %d, want 200", prev)
	}
}

func TestWriteHTML(t *testing.T) {
	var sb strings.Builder
	if err := exportFixture().WriteHTML(&sb, "Fig. 2 a) <plain>"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "cap0", "cap1",
		"Fig. 2 a) &lt;plain&gt;", // title escaped
		stateColors[Run], stateColors[GC],
		"class=\"lane\"",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("html missing %q:\n%s", want, out[:min(400, len(out))])
		}
	}
}

func TestWriteHTMLEmpty(t *testing.T) {
	var sb strings.Builder
	if err := NewLog().WriteHTML(&sb, "x"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "empty trace") {
		t.Fatal("empty log should say so")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
