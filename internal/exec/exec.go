// Package exec defines the runtime-agnostic mutator interface shared by
// the deterministic virtual-time simulation (internal/rts, internal/gph)
// and the native work-stealing backend (internal/native).
//
// A workload body written against exec.Ctx runs unchanged on both
// runtimes: under the simulation, Burn and Alloc charge virtual time and
// drive heap checks; under the native runtime they are no-ops and the
// body's *real* compute time is what the wall clock measures. Par, Force
// and ForceDeep keep their GpH meaning everywhere.
//
// The interface is factored from *rts.Ctx, which satisfies it
// structurally — simulated programs need no adapter. The native runtime
// implements it on its worker contexts.
package exec

import "parhask/internal/graph"

// Ctx is the runtime-agnostic execution context a program body receives.
type Ctx interface {
	// Burn consumes virtual mutator time (native: no-op — real time is
	// consumed by actually computing).
	Burn(ns int64)
	// Alloc accounts heap allocation and, under the simulation, performs
	// heap checks (native: no-op — Go's allocator and GC are real).
	Alloc(bytes int64)
	// Par records t as a spark that may be evaluated in parallel (GpH's
	// par combinator).
	Par(t *graph.Thunk)
	// Force evaluates a thunk to weak head normal form.
	Force(t *graph.Thunk) graph.Value
	// ForceDeep evaluates a value to normal form.
	ForceDeep(v graph.Value) graph.Value
}

// Forker is the optional thread-creation extension of Ctx. The native
// runtime implements it directly (a fork is a real goroutine); the
// simulated runtime exposes it through (*rts.Ctx).Exec().
type Forker interface {
	Ctx
	// Fork creates and starts a new thread running body.
	Fork(name string, body func(Ctx))
}

// Program is a runtime-agnostic program body: the unit both RunGpH (via
// a delegating wrapper) and native.Run execute.
type Program func(Ctx) graph.Value

// Fork forks body on ctx; it panics if the runtime behind ctx does not
// support thread creation.
func Fork(ctx Ctx, name string, body func(Ctx)) {
	f, ok := ctx.(Forker)
	if !ok {
		panic("exec: context does not support Fork")
	}
	f.Fork(name, body)
}

// ThunkAllocator is the optional allocator extension of Ctx: runtimes
// that implement it place new thunks in a context-owned allocation
// region (the native runtime's per-worker arenas) instead of the global
// heap. Program bodies never call it directly — they call the
// package-level NewThunk, which falls back to heap allocation on
// runtimes (and forked threads) without an allocator.
type ThunkAllocator interface {
	Ctx
	// NewThunk allocates an unevaluated thunk for f from the context's
	// allocation region.
	NewThunk(f func(Ctx) graph.Value) *graph.Thunk
}

// Adapt is the shared graph.AdaptFn trampoline for exec-level thunk
// bodies: the payload is the body (a func(Ctx) graph.Value) and the
// forcing graph.Context must also implement exec.Ctx — both *rts.Ctx
// and the native worker context do. Building thunks through a shared
// trampoline instead of a per-thunk wrapper closure removes one heap
// allocation per thunk (func values are pointer-shaped, so the payload
// boxes into the `any` allocation-free). Runtime allocators
// (ThunkAllocator implementations) use it to build arena thunks.
func Adapt(c graph.Context, payload any) graph.Value {
	x, ok := c.(Ctx)
	if !ok {
		panic("exec: forcing context does not implement exec.Ctx")
	}
	return payload.(func(Ctx) graph.Value)(x)
}

// NewThunk builds a heap thunk for f, allocating through ctx when the
// runtime offers an allocation region (ThunkAllocator) and from the
// global heap otherwise. This is the allocator hook program bodies and
// strategies create their sparks through: under the native runtime the
// thunk comes from the running worker's arena; under the simulation
// (and on forked native threads, which own no arena) it is a plain
// heap thunk, exactly as before.
func NewThunk(ctx Ctx, f func(Ctx) graph.Value) *graph.Thunk {
	if a, ok := ctx.(ThunkAllocator); ok {
		return a.NewThunk(f)
	}
	return Thunk(f)
}

// Thunk wraps f as a heap thunk whose computation runs under whichever
// runtime forces it: the graph.Context a forcing thread passes in must
// also implement exec.Ctx (both *rts.Ctx and the native worker context
// do). Context-free call sites (thunks built before a runtime exists)
// use this; bodies with a ctx in hand should prefer NewThunk.
func Thunk(f func(Ctx) graph.Value) *graph.Thunk {
	return graph.NewThunkAdapted(Adapt, f)
}
