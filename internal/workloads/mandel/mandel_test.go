package mandel

import (
	"strings"
	"testing"

	"parhask/internal/eden"
	"parhask/internal/gph"
)

type nopCtx struct{ burned, alloced int64 }

func (n *nopCtx) Burn(ns int64) { n.burned += ns }
func (n *nopCtx) Alloc(b int64) { n.alloced += b }

func oracle(p Params) [][]int32 {
	return Render(&nopCtx{}, p)
}

func TestRowDeterministic(t *testing.T) {
	p := DefaultParams(64, 48)
	a := Row(&nopCtx{}, p, 10)
	b := Row(&nopCtx{}, p, 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("row not deterministic")
		}
	}
}

func TestIrregularRows(t *testing.T) {
	// The viewport must contain both fast-escaping and max-iter points,
	// otherwise the workload is not irregular.
	p := DefaultParams(96, 64)
	img := oracle(p)
	var mn, mx int32 = 1 << 30, 0
	for _, row := range img {
		for _, v := range row {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
	}
	if mx != int32(p.MaxIter) {
		t.Fatalf("max iter = %d, want %d (set interior present)", mx, p.MaxIter)
	}
	if mn >= int32(p.MaxIter)/4 {
		t.Fatalf("min iter = %d; no fast-escaping points", mn)
	}
}

func TestGpHMatchesOracle(t *testing.T) {
	p := DefaultParams(64, 48)
	want := oracle(p)
	res, err := gph.Run(gph.WorkStealingConfig(4), GpHProgram(p))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(res.Value.([][]int32), want) {
		t.Fatal("GpH image differs from oracle")
	}
}

func TestEdenMasterWorkerMatchesOracle(t *testing.T) {
	p := DefaultParams(64, 48)
	want := oracle(p)
	cfg := eden.NewConfig(5, 4)
	res, err := eden.Run(cfg, EdenProgram(p, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(res.Value.([][]int32), want) {
		t.Fatal("Eden image differs from oracle")
	}
}

func TestDynamicBeatsStaticOnIrregularLoad(t *testing.T) {
	// Compare GpH work stealing (dynamic) against the pushing scheduler
	// on this highly irregular workload.
	p := DefaultParams(128, 96)
	steal, err := gph.Run(gph.WorkStealingConfig(8), GpHProgram(p))
	if err != nil {
		t.Fatal(err)
	}
	push, err := gph.Run(gph.ImprovedSync(8), GpHProgram(p))
	if err != nil {
		t.Fatal(err)
	}
	if steal.Elapsed >= push.Elapsed {
		t.Fatalf("stealing (%d) not faster than pushing (%d) on irregular rows",
			steal.Elapsed, push.Elapsed)
	}
}

func TestSpeedup(t *testing.T) {
	p := DefaultParams(128, 96)
	r1, err := gph.Run(gph.WorkStealingConfig(1), GpHProgram(p))
	if err != nil {
		t.Fatal(err)
	}
	r8, err := gph.Run(gph.WorkStealingConfig(8), GpHProgram(p))
	if err != nil {
		t.Fatal(err)
	}
	if sp := float64(r1.Elapsed) / float64(r8.Elapsed); sp < 4 {
		t.Fatalf("speedup = %.2f, want >= 4", sp)
	}
}

func TestChecksumSensitive(t *testing.T) {
	p := DefaultParams(32, 24)
	img := oracle(p)
	c1 := Checksum(img)
	img[5][7]++
	if Checksum(img) == c1 {
		t.Fatal("checksum insensitive")
	}
}

func TestASCIIShape(t *testing.T) {
	p := DefaultParams(40, 12)
	out := ASCII(oracle(p), p.MaxIter)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 12 || len(lines[0]) != 40 {
		t.Fatalf("ascii shape %dx%d", len(lines), len(lines[0]))
	}
	if !strings.Contains(out, "@") || !strings.Contains(out, " ") {
		t.Fatal("ascii lacks contrast")
	}
}
