// Package mandel implements a Mandelbrot-set renderer — the classic
// irregular data-parallel workload of the Eden and GpH literature: the
// per-row cost varies wildly (points inside the set iterate to the
// limit, points outside escape quickly), making static splits unbalance
// and dynamic distribution (work stealing, masterWorker) shine.
//
// Iterations are computed for real; the virtual cost is charged per
// actual iteration, so the irregularity is genuine.
package mandel

import (
	"parhask/internal/exec"
	"parhask/internal/graph"
	"parhask/internal/pe"
	"parhask/internal/rts"
	"parhask/internal/skel"
	"parhask/internal/strategies"
)

// IterCost is the virtual cost of one escape-time iteration.
const IterCost = 10

// AllocPerPoint is the heap allocated per pixel (list cell + boxed int).
const AllocPerPoint = 24

// Params frames a rendering.
type Params struct {
	Width, Height int
	CenterX       float64
	CenterY       float64
	Scale         float64 // width of the viewport in the complex plane
	MaxIter       int
}

// DefaultParams frames the classic seahorse-valley view.
func DefaultParams(w, h int) Params {
	return Params{
		Width: w, Height: h,
		CenterX: -0.74, CenterY: 0.12,
		Scale: 0.08, MaxIter: 512,
	}
}

// Ctx is the mutator-context slice the kernels need.
type Ctx interface {
	Burn(ns int64)
	Alloc(bytes int64)
}

// Row computes the escape-time counts of one row, charging per actual
// iteration.
func Row(ctx Ctx, p Params, y int) []int32 {
	out := make([]int32, p.Width)
	var iters int64
	ci := p.CenterY + (float64(y)/float64(p.Height)-0.5)*p.Scale*float64(p.Height)/float64(p.Width)
	for x := 0; x < p.Width; x++ {
		cr := p.CenterX + (float64(x)/float64(p.Width)-0.5)*p.Scale
		zr, zi := 0.0, 0.0
		n := 0
		for ; n < p.MaxIter; n++ {
			zr2, zi2 := zr*zr, zi*zi
			if zr2+zi2 > 4 {
				break
			}
			zr, zi = zr2-zi2+cr, 2*zr*zi+ci
			iters++
		}
		out[x] = int32(n)
	}
	ctx.Burn(iters * IterCost)
	ctx.Alloc(int64(p.Width) * AllocPerPoint)
	return out
}

// Checksum folds an image into one comparable number.
func Checksum(rows [][]int32) int64 {
	var s int64
	for y, row := range rows {
		for x, v := range row {
			s += int64(v) * int64(x+3*y+1)
		}
	}
	return s
}

// Render computes the whole image sequentially (the oracle).
func Render(ctx Ctx, p Params) [][]int32 {
	rows := make([][]int32, p.Height)
	for y := range rows {
		rows[y] = Row(ctx, p, y)
	}
	return rows
}

// Program is the runtime-agnostic GpH rendering: one spark per row
// (parList over rows), forced and reassembled in index order. The same
// body runs on the virtual-time simulation and on the native
// work-stealing runtime — the irregular per-row cost is exactly what
// the dynamic load balancing is there to absorb.
func Program(p Params) exec.Program {
	return func(ctx exec.Ctx) graph.Value {
		ts := make([]*graph.Thunk, p.Height)
		for y := 0; y < p.Height; y++ {
			y := y
			ts[y] = exec.NewThunk(ctx, func(c exec.Ctx) graph.Value {
				return Row(c, p, y)
			})
		}
		strategies.ParListWHNF(ctx, ts)
		rows := make([][]int32, p.Height)
		for y, t := range ts {
			rows[y] = ctx.Force(t).([]int32)
		}
		return rows
	}
}

// GpHProgram is Program specialised to the simulated runtime, kept for
// the simulation call sites.
func GpHProgram(p Params) func(*rts.Ctx) graph.Value {
	prog := Program(p)
	return func(ctx *rts.Ctx) graph.Value { return prog(ctx) }
}

// rowResult pairs a row index with its pixels so completion-order
// results can be reassembled.
type rowResult struct {
	Y   int
	Pix []int32
}

// PackedSize implements eden.Sized.
func (r rowResult) PackedSize() int64 { return int64(4*len(r.Pix)) + 24 }

// EdenProgram renders with the masterWorker skeleton: rows are tasks,
// irregularly sized, dynamically balanced across worker processes —
// the textbook Eden use of the skeleton.
func EdenProgram(p Params, workers, prefetch int) pe.Program {
	return func(px pe.Ctx) graph.Value {
		tasks := make([]graph.Value, p.Height)
		for y := range tasks {
			tasks[y] = y
		}
		outs := skel.MasterWorker(px, "mandel", workers, prefetch,
			func(w pe.Ctx, task graph.Value) ([]graph.Value, graph.Value) {
				y := task.(int)
				return nil, rowResult{Y: y, Pix: Row(w, p, y)}
			}, tasks)
		rows := make([][]int32, p.Height)
		for _, o := range outs {
			r := o.(rowResult)
			rows[r.Y] = r.Pix
		}
		return rows
	}
}

// Equal compares two images.
func Equal(a, b [][]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for y := range a {
		if len(a[y]) != len(b[y]) {
			return false
		}
		for x := range a[y] {
			if a[y][x] != b[y][x] {
				return false
			}
		}
	}
	return true
}

// ASCII renders the image as characters for terminal display.
func ASCII(rows [][]int32, maxIter int) string {
	shades := []byte(" .:-=+*#%@")
	var b []byte
	for _, row := range rows {
		for _, v := range row {
			idx := int(v) * (len(shades) - 1) / maxIter
			b = append(b, shades[idx])
		}
		b = append(b, '\n')
	}
	return string(b)
}
