package matmul

import (
	"fmt"

	"parhask/internal/eden"
	"parhask/internal/exec"
	"parhask/internal/graph"
	"parhask/internal/pe"
	"parhask/internal/rts"
	"parhask/internal/skel"
	"parhask/internal/strategies"
)

// BlockProgram is the runtime-agnostic GpH block parallelisation:
// regular blocks of the result matrix are turned into sparks; the block
// size (spark granularity) is tunable. The main thread then forces every
// block and assembles the result. It runs unchanged on the virtual-time
// simulation and on the native runtime.
func BlockProgram(a, b Mat, blockSize int, mulAddCost int64) exec.Program {
	n := len(a)
	q := blockDim(n, blockSize)
	return func(ctx exec.Ctx) graph.Value {
		ctx.Alloc(2 * Bytes(n)) // the input matrices are built on the heap
		blocks := make([]*graph.Thunk, 0, q*q)
		for bi := 0; bi < q; bi++ {
			for bj := 0; bj < q; bj++ {
				r0, c0 := bi*blockSize, bj*blockSize
				blocks = append(blocks, exec.NewThunk(ctx, func(c exec.Ctx) graph.Value {
					return MulRange(c, mulAddCost, a, b, r0, r0+blockSize, c0, c0+blockSize)
				}))
			}
		}
		strategies.ParListWHNF(ctx, blocks)
		out := New(n, n)
		for k, t := range blocks {
			blk := ctx.Force(t).(Mat)
			r0, c0 := (k/q)*blockSize, (k%q)*blockSize
			for i := range blk {
				copy(out[r0+i][c0:c0+blockSize], blk[i])
			}
		}
		return out
	}
}

// GpHBlockProgram is BlockProgram specialised to the simulated runtime,
// kept for the simulation call sites.
func GpHBlockProgram(a, b Mat, blockSize int, mulAddCost int64) func(*rts.Ctx) graph.Value {
	p := BlockProgram(a, b, blockSize, mulAddCost)
	return func(ctx *rts.Ctx) graph.Value { return p(ctx) }
}

// RowProgram is the runtime-agnostic row-parallel version the paper
// compares against: one spark per result row; each row depends on the
// whole second input matrix.
func RowProgram(a, b Mat, mulAddCost int64) exec.Program {
	n := len(a)
	return func(ctx exec.Ctx) graph.Value {
		ctx.Alloc(2 * Bytes(n))
		rows := make([]*graph.Thunk, n)
		for i := 0; i < n; i++ {
			i := i
			rows[i] = exec.NewThunk(ctx, func(c exec.Ctx) graph.Value {
				return MulRange(c, mulAddCost, a, b, i, i+1, 0, n)
			})
		}
		strategies.ParListWHNF(ctx, rows)
		out := make(Mat, n)
		for i, t := range rows {
			out[i] = ctx.Force(t).(Mat)[0]
		}
		return out
	}
}

// GpHRowProgram is RowProgram specialised to the simulated runtime.
func GpHRowProgram(a, b Mat, mulAddCost int64) func(*rts.Ctx) graph.Value {
	p := RowProgram(a, b, mulAddCost)
	return func(ctx *rts.Ctx) graph.Value { return p(ctx) }
}

// PackedSize implements eden.Sized: a Mat packs exactly like the
// underlying [][]float64. Without this the named type fell through to
// SizeOfChecked's old one-word default, so every block a torus node
// returned was charged 16 bytes while the copier shipped the whole
// matrix — the packing model and the transport disagreed by megabytes.
func (m Mat) PackedSize() int64 { return eden.SizeOf([][]float64(m)) }

// cannonInput is the initial payload of one torus node: its (already
// skew-aligned) blocks of A and B.
type cannonInput struct {
	A, B Mat
}

// PackedSize implements eden.Sized: an 8-byte wire header plus the two
// blocks at their own packed sizes.
func (ci cannonInput) PackedSize() int64 {
	return 8 + eden.SizeOf([][]float64(ci.A)) + eden.SizeOf([][]float64(ci.B))
}

// blockMsg is one shifted block in Cannon's round exchange.
type blockMsg struct{ M Mat }

// PackedSize implements eden.Sized.
func (bm blockMsg) PackedSize() int64 { return eden.SizeOf([][]float64(bm.M)) }

// EdenCannonProgram multiplies on a q×q process torus with Cannon's
// algorithm: each node starts with skew-aligned blocks A(i,(j+i) mod q)
// and B((i+j) mod q, j), and in q rounds multiplies its current blocks
// into its accumulator, shifting A left and B up between rounds.
// Communication is thereby reduced to a minimum (§V).
func EdenCannonProgram(a, b Mat, q int, mulAddCost int64) pe.Program {
	n := len(a)
	if q <= 0 || n%q != 0 {
		panic(fmt.Sprintf("matmul: torus dimension %d must divide matrix size %d", q, n))
	}
	bs := n / q
	return func(p pe.Ctx) graph.Value {
		inputs := make([][]graph.Value, q)
		for i := 0; i < q; i++ {
			inputs[i] = make([]graph.Value, q)
			for j := 0; j < q; j++ {
				aj := (j + i) % q // initial skew
				bi := (i + j) % q
				inputs[i][j] = cannonInput{
					A: Block(a, i*bs, (i+1)*bs, aj*bs, (aj+1)*bs),
					B: Block(b, bi*bs, (bi+1)*bs, j*bs, (j+1)*bs),
				}
			}
		}
		outs := skel.Torus(p, "cannon", q, func(w pe.Ctx, i, j int, input graph.Value,
			fromRight pe.StreamIn, toLeft pe.StreamOut,
			fromBelow pe.StreamIn, toUp pe.StreamOut) graph.Value {
			in := input.(cannonInput)
			w.AddResident(3 * int64(bs) * int64(bs) * 8)
			ab, bb := in.A, in.B
			acc := New(bs, bs)
			for round := 0; round < q; round++ {
				if round > 0 {
					// Shift: send current blocks on, receive the next.
					w.StreamSend(toLeft, blockMsg{M: ab})
					w.StreamSend(toUp, blockMsg{M: bb})
					av, ok1 := w.StreamRecv(fromRight)
					bv, ok2 := w.StreamRecv(fromBelow)
					if !ok1 || !ok2 {
						panic("cannon: neighbour stream closed early")
					}
					ab, bb = av.(blockMsg).M, bv.(blockMsg).M
				}
				MulAddInto(w, mulAddCost, acc, ab, bb)
			}
			w.StreamClose(toLeft)
			w.StreamClose(toUp)
			// Drain the neighbours' closes so every message is consumed.
			if _, ok := w.StreamRecv(fromRight); ok {
				panic("cannon: unexpected extra block from right")
			}
			if _, ok := w.StreamRecv(fromBelow); ok {
				panic("cannon: unexpected extra block from below")
			}
			return acc
		}, inputs)

		out := New(n, n)
		for i := 0; i < q; i++ {
			for j := 0; j < q; j++ {
				blk := outs[i][j].(Mat)
				for r := range blk {
					copy(out[i*bs+r][j*bs:(j+1)*bs], blk[r])
				}
			}
		}
		return out
	}
}

// SeqProgram is the sequential reference with cost accounting.
func SeqProgram(a, b Mat, mulAddCost int64) func(*rts.Ctx) graph.Value {
	n := len(a)
	return func(ctx *rts.Ctx) graph.Value {
		ctx.Alloc(2 * Bytes(n))
		return MulRange(ctx, mulAddCost, a, b, 0, n, 0, n)
	}
}
