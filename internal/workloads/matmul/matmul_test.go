package matmul

import (
	"testing"
	"testing/quick"

	"parhask/internal/eden"
	"parhask/internal/gph"
)

type nopCtx struct{ burned, alloced int64 }

func (n *nopCtx) Burn(ns int64) { n.burned += ns }
func (n *nopCtx) Alloc(b int64) { n.alloced += b }

func TestMulRangeMatchesOracle(t *testing.T) {
	a, b := Random(16, 1), Random(16, 2)
	want := MulOracle(a, b)
	ctx := &nopCtx{}
	got := MulRange(ctx, 1, a, b, 0, 16, 0, 16)
	if !Equal(got, want, 1e-9) {
		t.Fatal("MulRange differs from oracle")
	}
	if ctx.burned != 16*16*16 {
		t.Fatalf("burned = %d, want %d", ctx.burned, 16*16*16)
	}
}

func TestMulRangeBlockAssembly(t *testing.T) {
	a, b := Random(12, 3), Random(12, 4)
	want := MulOracle(a, b)
	ctx := &nopCtx{}
	out := New(12, 12)
	for r0 := 0; r0 < 12; r0 += 4 {
		for c0 := 0; c0 < 12; c0 += 4 {
			blk := MulRange(ctx, 1, a, b, r0, r0+4, c0, c0+4)
			for i := range blk {
				copy(out[r0+i][c0:c0+4], blk[i])
			}
		}
	}
	if !Equal(out, want, 1e-9) {
		t.Fatal("blockwise assembly differs from oracle")
	}
}

func TestMulAddIntoAccumulates(t *testing.T) {
	a, b := Random(8, 5), Random(8, 6)
	ctx := &nopCtx{}
	acc := New(8, 8)
	MulAddInto(ctx, 1, acc, a, b)
	MulAddInto(ctx, 1, acc, a, b) // acc = 2·a×b
	want := MulOracle(a, b)
	for i := range want {
		for j := range want[i] {
			want[i][j] *= 2
		}
	}
	if !Equal(acc, want, 1e-9) {
		t.Fatal("MulAddInto does not accumulate")
	}
}

func TestGpHBlockProgramCorrect(t *testing.T) {
	const n, bs = 32, 8
	a, b := Random(n, 7), Random(n, 8)
	want := MulOracle(a, b)
	cfg := gph.WorkStealingConfig(4)
	cfg.ResidentBytes = 3 * Bytes(n)
	res, err := gph.Run(cfg, GpHBlockProgram(a, b, bs, cfg.Costs.MulAdd))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(res.Value.(Mat), want, 1e-9) {
		t.Fatal("GpH block product incorrect")
	}
	if res.Stats.SparksCreated != (n/bs)*(n/bs) {
		t.Fatalf("sparks = %d, want %d", res.Stats.SparksCreated, (n/bs)*(n/bs))
	}
}

func TestGpHRowProgramCorrect(t *testing.T) {
	const n = 24
	a, b := Random(n, 9), Random(n, 10)
	want := MulOracle(a, b)
	cfg := gph.WorkStealingConfig(4)
	res, err := gph.Run(cfg, GpHRowProgram(a, b, cfg.Costs.MulAdd))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(res.Value.(Mat), want, 1e-9) {
		t.Fatal("GpH row product incorrect")
	}
}

func TestEdenCannonCorrect(t *testing.T) {
	const n, q = 24, 3
	a, b := Random(n, 11), Random(n, 12)
	want := MulOracle(a, b)
	cfg := eden.NewConfig(q*q+1, 8)
	res, err := eden.Run(cfg, EdenCannonProgram(a, b, q, cfg.Costs.MulAdd))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(res.Value.(Mat), want, 1e-9) {
		t.Fatal("Cannon product incorrect")
	}
	if res.Stats.Processes != q*q {
		t.Fatalf("processes = %d, want %d", res.Stats.Processes, q*q)
	}
	// Each node shifts A and B q-1 times: 2·q²·(q-1) block messages, plus
	// closes, inputs and results.
	if res.Stats.Messages < 2*q*q*(q-1) {
		t.Fatalf("messages = %d, want >= %d", res.Stats.Messages, 2*q*q*(q-1))
	}
}

func TestCannonVariousQ(t *testing.T) {
	const n = 24
	a, b := Random(n, 13), Random(n, 14)
	want := MulOracle(a, b)
	for _, q := range []int{1, 2, 4} {
		cfg := eden.NewConfig(q*q+1, 8)
		res, err := eden.Run(cfg, EdenCannonProgram(a, b, q, cfg.Costs.MulAdd))
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		if !Equal(res.Value.(Mat), want, 1e-9) {
			t.Fatalf("q=%d: Cannon product incorrect", q)
		}
	}
}

func TestGpHBlockSpeedup(t *testing.T) {
	const n, bs = 128, 16
	a, b := Random(n, 15), Random(n, 16)
	mk := func(cores int) int64 {
		cfg := gph.WorkStealingConfig(cores)
		cfg.ResidentBytes = 3 * Bytes(n)
		res, err := gph.Run(cfg, GpHBlockProgram(a, b, bs, cfg.Costs.MulAdd))
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	t1, t4 := mk(1), mk(4)
	if sp := float64(t1) / float64(t4); sp < 2.5 {
		t.Fatalf("speedup = %.2f, want >= 2.5", sp)
	}
}

func TestChecksumSensitive(t *testing.T) {
	a := Random(8, 17)
	c1 := Checksum(a)
	a[3][4] += 0.5
	if Checksum(a) == c1 {
		t.Fatal("checksum insensitive to change")
	}
}

func TestRandomDeterministic(t *testing.T) {
	if !Equal(Random(10, 42), Random(10, 42), 0) {
		t.Fatal("Random not deterministic")
	}
	if Equal(Random(10, 42), Random(10, 43), 0) {
		t.Fatal("different seeds gave equal matrices")
	}
}

func TestBlockDimValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-dividing block size")
		}
	}()
	blockDim(10, 3)
}

func TestMulOracleIdentityProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%6) + 2
		a := Random(n, seed)
		id := New(n, n)
		for i := 0; i < n; i++ {
			id[i][i] = 1
		}
		return Equal(MulOracle(a, id), a, 1e-12) && Equal(MulOracle(id, a), a, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
