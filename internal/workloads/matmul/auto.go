package matmul

import (
	"time"

	"parhask/internal/exec"
	"parhask/internal/graph"
	"parhask/internal/strategies"
	"parhask/internal/tune"
)

// AutoBlockEdge maps a splitter grain (result cells per spark) to a
// legal block size: the largest divisor of n whose square does not
// exceed grain, at least 1. Divisibility keeps the assembly loop
// regular (BlockProgram requires bs | n).
func AutoBlockEdge(n, grain int) int {
	best := 1
	for d := 2; d <= n; d++ {
		if n%d == 0 && int64(d)*int64(d) <= int64(grain) {
			best = d
		}
	}
	return best
}

// AutoBlockProgram is BlockProgram with the block size derived from a
// tune.Splitter instead of hand-tuned: each invocation reads the grain
// (result cells per spark) when it starts, picks the matching block
// edge, and feeds every block's measured service time back through
// Observe so the controller can move the grain between runs. The grain
// is sampled once per invocation — a mid-run Split changes the next
// run's blocking, not sparks already built — because the assembled
// output demands one consistent block edge.
func AutoBlockProgram(a, b Mat, sp *tune.Splitter, mulAddCost int64) exec.Program {
	n := len(a)
	return func(ctx exec.Ctx) graph.Value {
		bs := AutoBlockEdge(n, sp.Grain())
		q := n / bs
		ctx.Alloc(2 * Bytes(n))
		blocks := make([]*graph.Thunk, 0, q*q)
		for bi := 0; bi < q; bi++ {
			for bj := 0; bj < q; bj++ {
				r0, c0 := bi*bs, bj*bs
				blocks = append(blocks, exec.NewThunk(ctx, func(c exec.Ctx) graph.Value {
					start := time.Now()
					blk := MulRange(c, mulAddCost, a, b, r0, r0+bs, c0, c0+bs)
					sp.Observe(bs*bs, time.Since(start).Nanoseconds())
					return blk
				}))
			}
		}
		strategies.ParListWHNF(ctx, blocks)
		out := New(n, n)
		for k, t := range blocks {
			blk := ctx.Force(t).(Mat)
			r0, c0 := (k/q)*bs, (k%q)*bs
			for i := range blk {
				copy(out[r0+i][c0:c0+bs], blk[i])
			}
		}
		return out
	}
}
