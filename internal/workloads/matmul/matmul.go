// Package matmul implements the paper's second benchmark (§V): dense
// matrix multiplication. The GpH version sparks regular blocks of the
// result matrix (block size — the spark granularity — is tunable, and
// blocks depend only on a subset of both inputs, unlike rows); the Eden
// version implements Cannon's algorithm on a torus topology skeleton,
// exchanging input blocks between neighbours round by round.
package matmul

import (
	"fmt"

	"parhask/internal/sim"
)

// Mat is a dense row-major matrix.
type Mat [][]float64

// Ctx is the slice of a runtime context the mutator needs.
type Ctx interface {
	Burn(ns int64)
	Alloc(bytes int64)
}

// AllocPerElem is the heap allocated per produced result element
// (accumulator boxing and list/index overhead of the Haskell program).
const AllocPerElem = 24

// AllocPerMulAdd is the per-inner-step allocation (lazy arithmetic
// thunks); GHC's strictness analysis removes most of it, so it is small.
const AllocPerMulAdd = 2

// New returns an n×m zero matrix.
func New(n, m int) Mat {
	rows := make(Mat, n)
	backing := make([]float64, n*m)
	for i := range rows {
		rows[i], backing = backing[:m:m], backing[m:]
	}
	return rows
}

// Random returns a deterministic pseudo-random n×n matrix with entries
// in [0, 1).
func Random(n int, seed uint64) Mat {
	rng := sim.NewPRNG(seed)
	m := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m[i][j] = float64(rng.Uint64()%1_000_000) / 1_000_000
		}
	}
	return m
}

// Bytes returns the resident size of an n×n matrix.
func Bytes(n int) int64 { return int64(n) * int64(n) * 8 }

// MulOracle is the plain host-side reference product (no cost model).
func MulOracle(a, b Mat) Mat {
	n, m, p := len(a), len(b[0]), len(b)
	c := New(n, m)
	for i := 0; i < n; i++ {
		for k := 0; k < p; k++ {
			aik := a[i][k]
			if aik == 0 {
				continue
			}
			row := b[k]
			ci := c[i]
			for j := 0; j < m; j++ {
				ci[j] += aik * row[j]
			}
		}
	}
	return c
}

// MulAddInto computes dst += a×b for equally-shaped square blocks,
// charging mulAddCost per multiply-add and the block's allocation. It is
// the mutator kernel of both parallel versions.
func MulAddInto(ctx Ctx, mulAddCost int64, dst, a, b Mat) {
	n := len(a)
	if n == 0 {
		return
	}
	m := len(b[0])
	for i := 0; i < n; i++ {
		ai := a[i]
		di := dst[i]
		for k := 0; k < len(b); k++ {
			aik := ai[k]
			row := b[k]
			for j := 0; j < m; j++ {
				di[j] += aik * row[j]
			}
		}
		ops := int64(len(b) * m)
		ctx.Burn(ops * mulAddCost)
		ctx.Alloc(ops*AllocPerMulAdd + int64(m)*AllocPerElem)
	}
}

// MulRange computes rows [r0,r1) × cols [c0,c1) of a×b into a fresh
// (r1-r0)×(c1-c0) block with cost accounting — the unit of work one GpH
// block spark performs.
func MulRange(ctx Ctx, mulAddCost int64, a, b Mat, r0, r1, c0, c1 int) Mat {
	n := len(b) // inner dimension
	out := New(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		ai := a[i]
		oi := out[i-r0]
		for k := 0; k < n; k++ {
			aik := ai[k]
			row := b[k]
			for j := c0; j < c1; j++ {
				oi[j-c0] += aik * row[j]
			}
		}
		ops := int64(n * (c1 - c0))
		ctx.Burn(ops * mulAddCost)
		ctx.Alloc(ops*AllocPerMulAdd + int64(c1-c0)*AllocPerElem)
	}
	return out
}

// Block extracts the block rows [r0,r1) × cols [c0,c1) as a fresh matrix.
func Block(m Mat, r0, r1, c0, c1 int) Mat {
	out := New(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out[i-r0], m[i][c0:c1])
	}
	return out
}

// Equal reports whether two matrices are element-wise equal within eps.
func Equal(a, b Mat, eps float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			d := a[i][j] - b[i][j]
			if d < -eps || d > eps {
				return false
			}
		}
	}
	return true
}

// Checksum folds a matrix to one number for cheap cross-run checks.
func Checksum(m Mat) float64 {
	var s float64
	for i := range m {
		for j := range m[i] {
			s += m[i][j] * float64((i+1)+(j+1)*31)
		}
	}
	return s
}

// blockDim validates that bs divides n and returns n/bs.
func blockDim(n, bs int) int {
	if bs <= 0 || n%bs != 0 {
		panic(fmt.Sprintf("matmul: block size %d must divide matrix size %d", bs, n))
	}
	return n / bs
}
