package matmul

import (
	"parhask/internal/eden/wire"
	"parhask/internal/graph"
)

// encRows / decRows ship a matrix as a row count plus one full
// []float64 value per row — the exact layout SizeOf charges for a
// [][]float64 minus the outer header, so wrappers can reuse it whether
// their own header stands in for the matrix header (blockMsg) or the
// matrix nests as a complete value (cannonInput).
func encRows(e *wire.Enc, m Mat) error {
	e.U64(uint64(len(m)))
	for _, row := range m {
		if err := e.Value(row); err != nil {
			return err
		}
	}
	return nil
}

func decRows(d *wire.Dec) (Mat, error) {
	n, err := d.U64()
	if err != nil {
		return nil, err
	}
	var m Mat
	for i := uint64(0); i < n; i++ {
		row, err := d.Value()
		if err != nil {
			return nil, err
		}
		r, ok := row.([]float64)
		if !ok {
			return nil, &wire.DecodeError{Reason: "matrix row is not []float64"}
		}
		m = append(m, r)
	}
	return m, nil
}

// Wire codecs for the Cannon-torus message types (tag block 64..71).
func init() {
	wire.Register(64, Mat{},
		func(e *wire.Enc, v graph.Value) error { return encRows(e, v.(Mat)) },
		func(d *wire.Dec) (graph.Value, error) { return decRows(d) })

	wire.Register(65, cannonInput{},
		func(e *wire.Enc, v graph.Value) error {
			ci := v.(cannonInput)
			if err := e.Value(ci.A); err != nil {
				return err
			}
			return e.Value(ci.B)
		},
		func(d *wire.Dec) (graph.Value, error) {
			a, err := d.Value()
			if err != nil {
				return nil, err
			}
			b, err := d.Value()
			if err != nil {
				return nil, err
			}
			ma, ok1 := a.(Mat)
			mb, ok2 := b.(Mat)
			if !ok1 || !ok2 {
				return nil, &wire.DecodeError{Reason: "cannonInput blocks are not Mats"}
			}
			return cannonInput{A: ma, B: mb}, nil
		})

	// blockMsg's PackedSize is exactly the matrix size, so its own
	// header plays the matrix-header role and the rows follow inline.
	wire.Register(66, blockMsg{},
		func(e *wire.Enc, v graph.Value) error { return encRows(e, v.(blockMsg).M) },
		func(d *wire.Dec) (graph.Value, error) {
			m, err := decRows(d)
			if err != nil {
				return nil, err
			}
			return blockMsg{M: m}, nil
		})
}
