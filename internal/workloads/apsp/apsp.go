// Package apsp implements the paper's third benchmark (§V): all-pairs
// shortest paths on a weighted directed graph — "a genuinely parallel
// algorithm". The Eden version pipelines Floyd–Warshall pivot rows
// around a process ring (adapted from Plasmeijer & van Eekelen); the GpH
// version builds the lattice of row-update thunks and sparks the final
// rows, relying on the runtime to synchronise the concurrent evaluations
// of the shared pivot rows — the program whose performance collapses
// without eager black-holing (Fig. 5).
package apsp

import (
	"parhask/internal/sim"
)

// Inf is the "no edge" distance; small enough that Inf+Inf cannot
// overflow int32.
const Inf int32 = 1 << 28

// Graph is a dense distance matrix (row-major, int32 distances).
type Graph [][]int32

// Ctx is the slice of a runtime context the mutator needs.
type Ctx interface {
	Burn(ns int64)
	Alloc(bytes int64)
}

// AllocPerElem is the heap allocation charged per updated row element.
const AllocPerElem = 8

// RandomGraph generates a deterministic random directed graph with n
// nodes: each ordered pair gets an edge of weight 1..maxw with
// probability density/100, and the diagonal is zero. The graph includes
// a Hamiltonian cycle so it is strongly connected.
func RandomGraph(n int, seed uint64, maxw int32, density int) Graph {
	rng := sim.NewPRNG(seed)
	g := make(Graph, n)
	backing := make([]int32, n*n)
	for i := range g {
		g[i], backing = backing[:n:n], backing[n:]
		for j := range g[i] {
			switch {
			case i == j:
				g[i][j] = 0
			case int(rng.Uint64()%100) < density:
				g[i][j] = int32(rng.Uint64()%uint64(maxw)) + 1
			default:
				g[i][j] = Inf
			}
		}
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		if i != j && g[i][j] == Inf {
			g[i][j] = int32(rng.Uint64()%uint64(maxw)) + 1
		}
	}
	return g
}

// Clone deep-copies a graph.
func Clone(g Graph) Graph {
	n := len(g)
	out := make(Graph, n)
	backing := make([]int32, n*n)
	for i := range g {
		out[i], backing = backing[:n:n], backing[n:]
		copy(out[i], g[i])
	}
	return out
}

// FloydWarshall is the sequential oracle (no cost accounting).
func FloydWarshall(g Graph) Graph {
	d := Clone(g)
	n := len(d)
	for k := 0; k < n; k++ {
		dk := d[k]
		for i := 0; i < n; i++ {
			di := d[i]
			dik := di[k]
			if dik >= Inf {
				continue
			}
			for j := 0; j < n; j++ {
				if alt := dik + dk[j]; alt < di[j] {
					di[j] = alt
				}
			}
		}
	}
	return d
}

// UpdateRow computes one Floyd–Warshall row update: given row i after
// stage k-1 and the pivot row k after stage k-1, it returns row i after
// stage k, charging one min-plus operation per element. This is the
// mutator kernel of both parallel versions.
func UpdateRow(ctx Ctx, minPlusCost int64, row, pivot []int32, k int) []int32 {
	n := len(row)
	out := make([]int32, n)
	rik := row[k]
	if rik >= Inf {
		copy(out, row)
	} else {
		for j := 0; j < n; j++ {
			if alt := rik + pivot[j]; alt < row[j] {
				out[j] = alt
			} else {
				out[j] = row[j]
			}
		}
	}
	ctx.Burn(int64(n) * minPlusCost)
	ctx.Alloc(int64(n)*AllocPerElem + 24)
	return out
}

// UpdateRowInPlace is UpdateRow without the copy, for block-owning
// versions (Eden ring nodes mutate their private rows).
func UpdateRowInPlace(ctx Ctx, minPlusCost int64, row, pivot []int32, k int) {
	n := len(row)
	rik := row[k]
	if rik < Inf {
		for j := 0; j < n; j++ {
			if alt := rik + pivot[j]; alt < row[j] {
				row[j] = alt
			}
		}
	}
	ctx.Burn(int64(n) * minPlusCost)
	ctx.Alloc(24)
}

// Equal reports whether two graphs are identical.
func Equal(a, b Graph) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// Bytes returns the resident size of an n-node distance matrix.
func Bytes(n int) int64 { return int64(n) * int64(n) * 4 }

// Checksum folds a graph into one number for cheap comparisons.
func Checksum(g Graph) int64 {
	var s int64
	for i := range g {
		for j, v := range g[i] {
			if v < Inf {
				s += int64(v) * int64(i+j+1)
			}
		}
	}
	return s
}
