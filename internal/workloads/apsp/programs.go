package apsp

import (
	"fmt"

	"parhask/internal/exec"
	"parhask/internal/graph"
	"parhask/internal/pe"
	"parhask/internal/rts"
	"parhask/internal/skel"
	"parhask/internal/strategies"
)

// thunkBuildAlloc is the heap charged per lattice thunk built by the
// GpH program's main thread.
const thunkBuildAlloc = 40

// Program is the runtime-agnostic GpH APSP program. It builds the
// Floyd–Warshall thunk lattice — row i after stage k is a thunk
// depending on row i and the pivot row k after stage k-1 — and sparks an
// evaluation for each (final) row in advance, relying on the runtime
// system to synchronise the concurrent evaluations of the shared pivot
// thunks (§V). Under lazy black-holing those shared pivot chains are
// evaluated repeatedly by every thread that reaches them inside the
// marking window; under eager black-holing threads block on them instead
// and a pipeline forms. The shared pivots make this the showcase for the
// two policies, in virtual time and on real cores alike.
func Program(g Graph, minPlusCost int64) exec.Program {
	n := len(g)
	return func(ctx exec.Ctx) graph.Value {
		ctx.Alloc(Bytes(n)) // the input adjacency matrix
		rows := make([]*graph.Thunk, n)
		for i := range rows {
			row := append([]int32(nil), g[i]...)
			rows[i] = graph.NewValue(row)
		}
		for k := 0; k < n; k++ {
			k := k
			pivot := rows[k]
			next := make([]*graph.Thunk, n)
			for i := 0; i < n; i++ {
				ri := rows[i]
				next[i] = exec.NewThunk(ctx, func(c exec.Ctx) graph.Value {
					pk := c.Force(pivot).([]int32)
					r := c.Force(ri).([]int32)
					return UpdateRow(c, minPlusCost, r, pk, k)
				})
			}
			ctx.Alloc(int64(n) * thunkBuildAlloc)
			rows = next
		}
		strategies.ParListWHNF(ctx, rows)
		out := make(Graph, n)
		for i, t := range rows {
			out[i] = ctx.Force(t).([]int32)
		}
		return out
	}
}

// GpHProgram is Program specialised to the simulated runtime, kept for
// the simulation call sites.
func GpHProgram(g Graph, minPlusCost int64) func(*rts.Ctx) graph.Value {
	p := Program(g, minPlusCost)
	return func(ctx *rts.Ctx) graph.Value { return p(ctx) }
}

// SeqProgram runs Floyd–Warshall sequentially with cost accounting.
func SeqProgram(g Graph, minPlusCost int64) func(*rts.Ctx) graph.Value {
	n := len(g)
	return func(ctx *rts.Ctx) graph.Value {
		ctx.Alloc(Bytes(n))
		d := Clone(g)
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				UpdateRowInPlace(ctx, minPlusCost, d[i], d[k], k)
			}
		}
		return d
	}
}

// PackedSize implements eden.Sized: a Graph packs like a [][]int32 —
// one word per row header plus 4 bytes per distance. Without this the
// named type fell through to SizeOfChecked's old one-word default, so
// the row blocks the ring nodes returned were charged 16 bytes while
// the copier shipped every row.
func (g Graph) PackedSize() int64 {
	var n int64 = 16
	for _, r := range g {
		n += int64(4*len(r)) + 16
	}
	return n
}

// ringInput is the initial payload of one ring process: its block of
// rows.
type ringInput struct {
	Lo   int
	Rows Graph
}

// PackedSize implements eden.Sized.
func (ri ringInput) PackedSize() int64 {
	var n int64 = 32
	for _, r := range ri.Rows {
		n += int64(4*len(r)) + 16
	}
	return n
}

// pivotMsg carries one pivot row around the ring. Hops counts the edges
// travelled so the row is dropped before returning to its owner.
type pivotMsg struct {
	K    int
	Row  []int32
	Hops int
}

// PackedSize implements eden.Sized.
func (pm pivotMsg) PackedSize() int64 { return int64(4*len(pm.Row)) + 32 }

// EdenRingProgram distributes the distance-matrix rows over ringSize
// processes in a ring. Initialised with its rows, each process computes
// the minimum distances by updating its rows continuously with the pivot
// rows received from (and forwarded to) the ring; the row updates depend
// on each previous stage but are pipelined around the ring (§V).
func EdenRingProgram(g Graph, ringSize int, minPlusCost int64) pe.Program {
	n := len(g)
	if ringSize <= 0 {
		panic("apsp: ring size must be positive")
	}
	if ringSize > n {
		ringSize = n
	}
	p := ringSize
	return func(px pe.Ctx) graph.Value {
		bounds := make([][2]int, p)
		inputs := make([]graph.Value, p)
		for i := 0; i < p; i++ {
			lo, hi := n*i/p, n*(i+1)/p
			bounds[i] = [2]int{lo, hi}
			rows := make(Graph, hi-lo)
			for r := lo; r < hi; r++ {
				rows[r-lo] = append([]int32(nil), g[r]...)
			}
			inputs[i] = ringInput{Lo: lo, Rows: rows}
		}
		outs := skel.Ring(px, "apsp", p, func(w pe.Ctx, idx int, input graph.Value,
			fromPred pe.StreamIn, toSucc pe.StreamOut) graph.Value {
			in := input.(ringInput)
			rows := in.Rows
			lo, hi := bounds[idx][0], bounds[idx][1]
			w.AddResident(int64(len(rows)) * int64(n) * 4)
			for k := 0; k < n; k++ {
				var pivot []int32
				if k >= lo && k < hi {
					// Our own row k is up to date through stage k-1:
					// snapshot it and start it around the ring.
					pivot = append([]int32(nil), rows[k-lo]...)
					if p > 1 {
						w.StreamSend(toSucc, pivotMsg{K: k, Row: pivot, Hops: 1})
					}
				} else {
					v, ok := w.StreamRecv(fromPred)
					if !ok {
						panic("apsp: ring stream closed early")
					}
					m := v.(pivotMsg)
					if m.K != k {
						panic(fmt.Sprintf("apsp: node %d expected pivot %d, got %d", idx, k, m.K))
					}
					pivot = m.Row
					if m.Hops < p-1 {
						// Forward before computing: this is the
						// pipelining that hides the ring latency.
						w.StreamSend(toSucc, pivotMsg{K: k, Row: pivot, Hops: m.Hops + 1})
					}
				}
				for r := range rows {
					UpdateRowInPlace(w, minPlusCost, rows[r], pivot, k)
				}
			}
			if p > 1 {
				w.StreamClose(toSucc)
				if _, ok := w.StreamRecv(fromPred); ok {
					panic("apsp: unexpected extra pivot after final stage")
				}
			}
			return rows
		}, inputs)

		out := make(Graph, 0, n)
		for _, o := range outs {
			out = append(out, o.(Graph)...)
		}
		return out
	}
}
