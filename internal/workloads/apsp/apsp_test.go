package apsp

import (
	"testing"
	"testing/quick"

	"parhask/internal/eden"
	"parhask/internal/gph"
)

type nopCtx struct{ burned, alloced int64 }

func (n *nopCtx) Burn(ns int64) { n.burned += ns }
func (n *nopCtx) Alloc(b int64) { n.alloced += b }

func TestFloydWarshallSmallKnown(t *testing.T) {
	// 0 -> 1 (1), 1 -> 2 (2), 0 -> 2 (10): shortest 0->2 is 3.
	g := Graph{
		{0, 1, 10},
		{Inf, 0, 2},
		{Inf, Inf, 0},
	}
	d := FloydWarshall(g)
	if d[0][2] != 3 {
		t.Fatalf("d[0][2] = %d, want 3", d[0][2])
	}
	if d[2][0] != Inf {
		t.Fatalf("d[2][0] = %d, want Inf", d[2][0])
	}
}

func TestUpdateRowMatchesOracleStage(t *testing.T) {
	g := RandomGraph(12, 3, 9, 40)
	// Apply stage 0 manually via UpdateRow to every row and compare
	// against one FW iteration.
	want := Clone(g)
	for i := 0; i < 12; i++ {
		if w := want[i][0]; w < Inf {
			for j := 0; j < 12; j++ {
				if alt := w + want[0][j]; alt < want[i][j] {
					want[i][j] = alt
				}
			}
		}
	}
	ctx := &nopCtx{}
	pivot := append([]int32(nil), g[0]...)
	for i := 0; i < 12; i++ {
		got := UpdateRow(ctx, 1, g[i], pivot, 0)
		for j := range got {
			if got[j] != want[i][j] {
				t.Fatalf("row %d col %d: %d != %d", i, j, got[j], want[i][j])
			}
		}
	}
}

func TestSeqProgramMatchesOracle(t *testing.T) {
	g := RandomGraph(24, 5, 9, 30)
	want := FloydWarshall(g)
	cfg := gph.WorkStealingConfig(1)
	res, err := gph.Run(cfg, SeqProgram(g, cfg.Costs.MinPlus))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(res.Value.(Graph), want) {
		t.Fatal("sequential program differs from oracle")
	}
}

func TestGpHProgramCorrectBothPolicies(t *testing.T) {
	g := RandomGraph(24, 7, 9, 30)
	want := FloydWarshall(g)
	for _, eager := range []bool{false, true} {
		for _, cores := range []int{1, 4} {
			cfg := gph.WorkStealingConfig(cores)
			cfg.EagerBlackholing = eager
			cfg.ResidentBytes = 2 * Bytes(24)
			res, err := gph.Run(cfg, GpHProgram(g, cfg.Costs.MinPlus))
			if err != nil {
				t.Fatalf("eager=%v cores=%d: %v", eager, cores, err)
			}
			if !Equal(res.Value.(Graph), want) {
				t.Fatalf("eager=%v cores=%d: wrong distances", eager, cores)
			}
		}
	}
}

func TestLazyBlackholingDuplicatesOnAPSP(t *testing.T) {
	g := RandomGraph(32, 11, 9, 30)
	mk := func(eager bool) *gph.Result {
		cfg := gph.WorkStealingConfig(8)
		cfg.EagerBlackholing = eager
		res, err := gph.Run(cfg, GpHProgram(g, cfg.Costs.MinPlus))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	lazy, eager := mk(false), mk(true)
	if lazy.Stats.DupEntries == 0 {
		t.Fatal("lazy black-holing produced no duplicate entries on the shared lattice")
	}
	if eager.Stats.DupEntries != 0 {
		t.Fatalf("eager black-holing produced %d duplicates", eager.Stats.DupEntries)
	}
}

func TestEdenRingMatchesOracle(t *testing.T) {
	g := RandomGraph(30, 13, 9, 30)
	want := FloydWarshall(g)
	for _, p := range []int{1, 2, 3, 5} {
		cfg := eden.NewConfig(p+1, 8)
		res, err := eden.Run(cfg, EdenRingProgram(g, p, cfg.Costs.MinPlus))
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if !Equal(res.Value.(Graph), want) {
			t.Fatalf("p=%d: wrong distances", p)
		}
	}
}

func TestEdenRingPipelines(t *testing.T) {
	// With p nodes, each pivot row crosses p-1 edges: n*(p-1) pivot
	// messages (plus inputs/results/closes).
	const n, p = 40, 4
	g := RandomGraph(n, 17, 9, 30)
	cfg := eden.NewConfig(p+1, 8)
	res, err := eden.Run(cfg, EdenRingProgram(g, p, cfg.Costs.MinPlus))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Messages < n*(p-1) {
		t.Fatalf("messages = %d, want >= %d", res.Stats.Messages, n*(p-1))
	}
}

func TestEdenRingSpeedup(t *testing.T) {
	// Needs paper-scale rows for the per-stage compute to dominate the
	// per-stage ring communication (n=96 genuinely does not speed up).
	g := RandomGraph(240, 19, 9, 30)
	mk := func(p, cores int) int64 {
		cfg := eden.NewConfig(p+1, cores)
		res, err := eden.Run(cfg, EdenRingProgram(g, p, cfg.Costs.MinPlus))
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	t1 := mk(1, 1)
	t8 := mk(8, 8)
	if sp := float64(t1) / float64(t8); sp < 2.5 {
		t.Fatalf("ring speedup = %.2f (t1=%d t8=%d), want >= 2.5", sp, t1, t8)
	}
}

func TestRandomGraphDeterministic(t *testing.T) {
	a := RandomGraph(20, 42, 9, 30)
	b := RandomGraph(20, 42, 9, 30)
	if !Equal(a, b) {
		t.Fatal("RandomGraph not deterministic")
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	// After FW, d[i][j] <= d[i][k] + d[k][j] for all i,j,k.
	f := func(seed uint64) bool {
		g := RandomGraph(12, seed, 9, 35)
		d := FloydWarshall(g)
		for i := 0; i < 12; i++ {
			for j := 0; j < 12; j++ {
				for k := 0; k < 12; k++ {
					if d[i][k] < Inf && d[k][j] < Inf && d[i][j] > d[i][k]+d[k][j] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFWIdempotentProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := RandomGraph(10, seed, 9, 30)
		d1 := FloydWarshall(g)
		d2 := FloydWarshall(d1)
		return Equal(d1, d2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStronglyConnected(t *testing.T) {
	d := FloydWarshall(RandomGraph(25, 23, 9, 10))
	for i := range d {
		for j := range d[i] {
			if d[i][j] >= Inf {
				t.Fatalf("d[%d][%d] unreachable; graph should be strongly connected", i, j)
			}
		}
	}
}
