package apsp

import (
	"parhask/internal/exec"
	"parhask/internal/graph"
	"parhask/internal/tune"
)

// AutoProgram is Program with the final-stage forcing chunked by a
// tune.Splitter: the Floyd–Warshall thunk lattice is built exactly as
// in Program (shared pivot rows and all — the black-holing showcase is
// untouched), but instead of one spark per final row, contiguous row
// bands are carved by lazy binary splitting, so how many rows one
// spark forces follows the splitter's grain at execution time. Each
// leaf's service time — which includes the pivot chains it pulls in —
// feeds the controller through Observe.
func AutoProgram(g Graph, sp *tune.Splitter, minPlusCost int64) exec.Program {
	n := len(g)
	return func(ctx exec.Ctx) graph.Value {
		ctx.Alloc(Bytes(n)) // the input adjacency matrix
		rows := make([]*graph.Thunk, n)
		for i := range rows {
			row := append([]int32(nil), g[i]...)
			rows[i] = graph.NewValue(row)
		}
		for k := 0; k < n; k++ {
			k := k
			pivot := rows[k]
			next := make([]*graph.Thunk, n)
			for i := 0; i < n; i++ {
				ri := rows[i]
				next[i] = exec.NewThunk(ctx, func(c exec.Ctx) graph.Value {
					pk := c.Force(pivot).([]int32)
					r := c.Force(ri).([]int32)
					return UpdateRow(c, minPlusCost, r, pk, k)
				})
			}
			ctx.Alloc(int64(n) * thunkBuildAlloc)
			rows = next
		}
		out := make(Graph, n)
		// Leaves only force their row bands — pure graph work, so a
		// duplicate entry under lazy black-holing recomputes a value
		// instead of racing on shared state. The spine then assembles
		// from the now-cached thunks, keeping every out[i] write on
		// one goroutine.
		sp.Each(ctx, 0, n, func(c exec.Ctx, lo, hi int) {
			for i := lo; i < hi; i++ {
				c.Force(rows[i])
			}
		})
		for i := 0; i < n; i++ {
			out[i] = ctx.Force(rows[i]).([]int32)
		}
		return out
	}
}
