package apsp

import (
	"parhask/internal/eden/wire"
	"parhask/internal/graph"
)

// Wire codecs for the APSP ring message types (tag block 56..63). A
// Graph ships row by row as packed int32 arrays; ringInput and
// pivotMsg lay their fields out exactly as their PackedSize charges.
func init() {
	wire.Register(56, Graph{},
		func(e *wire.Enc, v graph.Value) error {
			g := v.(Graph)
			e.U64(uint64(len(g)))
			for _, row := range g {
				if err := e.Value(row); err != nil {
					return err
				}
			}
			return nil
		},
		func(d *wire.Dec) (graph.Value, error) {
			n, err := d.U64()
			if err != nil {
				return nil, err
			}
			var g Graph
			for i := uint64(0); i < n; i++ {
				row, err := d.Value()
				if err != nil {
					return nil, err
				}
				r, ok := row.([]int32)
				if !ok {
					return nil, &wire.DecodeError{Reason: "Graph row is not []int32"}
				}
				g = append(g, r)
			}
			return g, nil
		})

	wire.Register(57, ringInput{},
		func(e *wire.Enc, v graph.Value) error {
			ri := v.(ringInput)
			e.I64(int64(ri.Lo))
			return e.Value(ri.Rows)
		},
		func(d *wire.Dec) (graph.Value, error) {
			lo, err := d.I64()
			if err != nil {
				return nil, err
			}
			rows, err := d.Value()
			if err != nil {
				return nil, err
			}
			g, ok := rows.(Graph)
			if !ok {
				return nil, &wire.DecodeError{Reason: "ringInput rows are not a Graph"}
			}
			return ringInput{Lo: int(lo), Rows: g}, nil
		})

	wire.Register(58, pivotMsg{},
		func(e *wire.Enc, v graph.Value) error {
			pm := v.(pivotMsg)
			e.I64(int64(pm.K))
			e.I64(int64(pm.Hops))
			e.I32s(pm.Row)
			return nil
		},
		func(d *wire.Dec) (graph.Value, error) {
			k, err := d.I64()
			if err != nil {
				return nil, err
			}
			hops, err := d.I64()
			if err != nil {
				return nil, err
			}
			row, err := d.I32s()
			if err != nil {
				return nil, err
			}
			return pivotMsg{K: int(k), Row: row, Hops: int(hops)}, nil
		})
}
