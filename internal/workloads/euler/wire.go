package euler

import (
	"parhask/internal/eden/wire"
	"parhask/internal/graph"
)

// Wire codec for the sumEuler task type (tag block 48..55). A Range
// packs at its historical 32-byte PackedSize: header, Lo, Hi, and one
// reserved word.
func init() {
	wire.Register(48, Range{},
		func(e *wire.Enc, v graph.Value) error {
			r := v.(Range)
			e.I64(int64(r.Lo))
			e.I64(int64(r.Hi))
			e.Pad(8)
			return nil
		},
		func(d *wire.Dec) (graph.Value, error) {
			lo, err := d.I64()
			if err != nil {
				return nil, err
			}
			hi, err := d.I64()
			if err != nil {
				return nil, err
			}
			if err := d.Skip(8); err != nil {
				return nil, err
			}
			return Range{Lo: int(lo), Hi: int(hi)}, nil
		})
}
