package euler

import (
	"sync/atomic"
	"testing"
)

// BenchmarkPhiSequential is the single-goroutine baseline for the memo
// cache: repeated Phi calls over a window of k values, all cache hits
// after the first pass.
func BenchmarkPhiSequential(b *testing.B) {
	ctx := &nopCtx{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Phi(ctx, 1, 1000+i%512)
	}
}

// BenchmarkPhiParallel hammers the memo cache from all procs at once —
// the contention profile the native runtime's workers produce. Before
// the cache was sharded, every call of every goroutine serialised
// through one global mutex; with 64 shards, concurrent calls for
// different k proceed independently.
func BenchmarkPhiParallel(b *testing.B) {
	var seq atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		ctx := &nopCtx{}
		for pb.Next() {
			i := seq.Add(1)
			Phi(ctx, 1, int(1000+i%512))
		}
	})
}

// BenchmarkPhiParallelSameKey is the worst case for sharding: every
// goroutine asks for the same k, so all traffic lands on one shard and
// the benchmark measures pure lock hand-off on a cached entry.
func BenchmarkPhiParallelSameKey(b *testing.B) {
	b.RunParallel(func(pb *testing.PB) {
		ctx := &nopCtx{}
		for pb.Next() {
			Phi(ctx, 1, 1234)
		}
	})
}
