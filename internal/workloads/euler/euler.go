// Package euler implements the paper's first benchmark (§V): sumEuler,
// the sum of the naïvely-computed Euler totient function φ(k) for all
// k ≤ n — "a simple map-reduce operation". φ(k) counts the j < k that
// are relatively prime to k, each test a full Euclid gcd.
//
// The computation is performed for real (results are checked against a
// linear totient sieve) while virtual time is charged per actual gcd
// iteration, so granularity is faithful to the Haskell program:
//
//	sum (map phi [1..n])
//	  where phi k = length (filter (relprime k) [1..k-1])
package euler

import (
	"sync"

	"parhask/internal/graph"
)

// Ctx is the slice of a runtime context the mutator needs. Both
// *rts.Ctx and pe.Ctx satisfy it.
type Ctx interface {
	Burn(ns int64)
	Alloc(bytes int64)
}

// AllocPerJ is the heap allocated per inner-loop element (list cell +
// gcd closure in the Haskell program), in bytes.
const AllocPerJ = 24

// workSlices is how many Burn/Alloc slices each φ(k) is charged in, so
// heap checks interleave with computation as they would in compiled code.
const workSlices = 4

// phiEntry memoises one φ computation (host-side only: virtual costs are
// charged from the recorded iteration count on every simulated run).
type phiEntry struct {
	phi   int
	iters int64
}

// phiShardCount shards the memo cache so concurrent native workers
// (and parallel tests) don't serialise through one lock on the hottest
// path — with a single global mutex, every Phi call of every worker
// queued on the same cacheline. Power of two so the shard pick is a
// mask. A per-run dense sieve was the alternative, but the iteration
// counts the simulation charges can't be sieved, and the cache is
// deliberately cross-run (host-side memoisation), so sharding fits.
const phiShardCount = 64

// phiShard pads each lock+map pair to its own cache line so shard
// locks don't false-share.
type phiShard struct {
	mu sync.Mutex
	m  map[int]phiEntry
	_  [40]byte
}

var phiShards [phiShardCount]phiShard

// phiCounted computes φ(k) by trial gcd, counting loop iterations.
func phiCounted(k int) phiEntry {
	sh := &phiShards[k&(phiShardCount-1)]
	sh.mu.Lock()
	e, ok := sh.m[k]
	sh.mu.Unlock()
	if ok {
		return e
	}
	phi := 0
	var iters int64
	for j := 1; j < k; j++ {
		a, b := j, k
		for b != 0 {
			a, b = b, a%b
			iters++
		}
		if a == 1 {
			phi++
		}
	}
	if k == 1 {
		phi = 1 // φ(1) = 1 by convention
	}
	e = phiEntry{phi: phi, iters: iters}
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[int]phiEntry)
	}
	sh.m[k] = e
	sh.mu.Unlock()
	return e
}

// Phi computes φ(k) in a runtime context, charging the gcd iterations
// and the list allocation of the naïve Haskell definition.
func Phi(ctx Ctx, gcdIterCost int64, k int) int {
	e := phiCounted(k)
	burn := e.iters * gcdIterCost
	alloc := int64(k) * AllocPerJ
	for s := 0; s < workSlices; s++ {
		ctx.Alloc(alloc / workSlices)
		ctx.Burn(burn / workSlices)
	}
	return e.phi
}

// SumRange sums φ(k) for k in [lo, hi] in a runtime context.
func SumRange(ctx Ctx, gcdIterCost int64, lo, hi int) int64 {
	var sum int64
	for k := lo; k <= hi; k++ {
		sum += int64(Phi(ctx, gcdIterCost, k))
	}
	return sum
}

// PhiDirect computes φ(k) by trial gcd with no memoisation and no
// virtual-cost accounting: the kernel the native runtime times for real.
// (The memo cache in Phi would turn repeated wall-clock runs into map
// lookups and destroy the measurement.)
func PhiDirect(k int) int {
	if k == 1 {
		return 1 // φ(1) = 1 by convention
	}
	phi := 0
	for j := 1; j < k; j++ {
		a, b := j, k
		for b != 0 {
			a, b = b, a%b
		}
		if a == 1 {
			phi++
		}
	}
	return phi
}

// SumRangeDirect sums φ(k) for k in [lo, hi] with the uncached kernel.
func SumRangeDirect(lo, hi int) int64 {
	var sum int64
	for k := lo; k <= hi; k++ {
		sum += int64(PhiDirect(k))
	}
	return sum
}

// PhiList computes φ(k) the way the paper's Haskell program does —
// length (filter (relprime k) [1..k-1]) — materialising the
// intermediate lists on the real heap. PhiDirect is the kernel for
// timing the scheduler (it allocates nothing); PhiList is the kernel
// for the §IV-A.1 allocation-area experiment, where the garbage the
// Haskell program produces per φ is the entire point: its collection
// frequency is what the allocation-area (GOGC) setting controls.
func PhiList(k int) int {
	if k == 1 {
		return 1 // φ(1) = 1 by convention
	}
	js := make([]int, 0, k-1) // [1..k-1]
	for j := 1; j < k; j++ {
		js = append(js, j)
	}
	rel := js[:0:0] // filter (relprime k)
	for _, j := range js {
		a, b := j, k
		for b != 0 {
			a, b = b, a%b
		}
		if a == 1 {
			rel = append(rel, j)
		}
	}
	return len(rel)
}

// SumRangeList sums φ(k) for k in [lo, hi] with the list-allocating
// kernel.
func SumRangeList(lo, hi int) int64 {
	var sum int64
	for k := lo; k <= hi; k++ {
		sum += int64(PhiList(k))
	}
	return sum
}

// SumTotientSieve computes Σ φ(k), k ≤ n, with a linear sieve — the
// oracle the tests compare against.
func SumTotientSieve(n int) int64 {
	if n < 1 {
		return 0
	}
	phi := make([]int32, n+1)
	for i := range phi {
		phi[i] = int32(i)
	}
	for p := 2; p <= n; p++ {
		if phi[p] == int32(p) { // p is prime
			for m := p; m <= n; m += p {
				phi[m] -= phi[m] / int32(p)
			}
		}
	}
	var sum int64
	for k := 1; k <= n; k++ {
		sum += int64(phi[k])
	}
	return sum
}

// checkOpCost is the virtual cost per trial-division operation of the
// sequential result check.
const checkOpCost = 6

// SequentialCheck recomputes Σ φ(k) with the factorisation formula
// (trial division) — the "second sequential computation that is obvious
// at the end of each trace" in the paper's Fig. 2. It returns the sum
// and charges its (much smaller) cost to the calling thread.
func SequentialCheck(ctx Ctx, n int) int64 {
	var sum int64
	var ops int64
	for k := 1; k <= n; k++ {
		m := k
		phi := 1
		for p := 2; p*p <= m; p++ {
			ops++
			if m%p == 0 {
				pk := 1
				for m%p == 0 {
					m /= p
					pk *= p
					ops++
				}
				phi *= pk - pk/p
			}
		}
		if m > 1 {
			phi *= m - 1
		}
		sum += int64(phi)
		if ops > 4096 {
			ctx.Alloc(256)
			ctx.Burn(ops * checkOpCost)
			ops = 0
		}
	}
	ctx.Burn(ops * checkOpCost)
	return sum
}

// Range is a [Lo, Hi] slice of the input interval — the unit the
// parallel versions distribute.
type Range struct {
	Lo, Hi int
}

// PackedSize implements the Eden message-size interface.
func (r Range) PackedSize() int64 { return 32 }

// Ranges splits [1, n] into parts contiguous ranges.
func Ranges(n, parts int) []Range {
	if parts <= 0 {
		parts = 1
	}
	out := make([]Range, 0, parts)
	for i := 0; i < parts; i++ {
		lo := n*i/parts + 1
		hi := n * (i + 1) / parts
		if hi >= lo {
			out = append(out, Range{Lo: lo, Hi: hi})
		}
	}
	return out
}

// RangesValues is Ranges as []graph.Value for skeleton inputs.
func RangesValues(n, parts int) []graph.Value {
	rs := Ranges(n, parts)
	out := make([]graph.Value, len(rs))
	for i, r := range rs {
		out[i] = r
	}
	return out
}
