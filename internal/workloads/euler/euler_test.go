package euler

import (
	"testing"
	"testing/quick"

	"parhask/internal/eden"
	"parhask/internal/gph"
)

// nopCtx satisfies Ctx without a runtime (pure-function tests).
type nopCtx struct{ burned, alloced int64 }

func (n *nopCtx) Burn(ns int64) { n.burned += ns }
func (n *nopCtx) Alloc(b int64) { n.alloced += b }

func TestPhiSmallValues(t *testing.T) {
	want := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 4, 6: 2, 9: 6, 10: 4, 12: 4}
	ctx := &nopCtx{}
	for k, w := range want {
		if got := Phi(ctx, 1, k); got != w {
			t.Errorf("phi(%d) = %d, want %d", k, got, w)
		}
	}
	if ctx.burned == 0 || ctx.alloced == 0 {
		t.Fatal("Phi charged no cost")
	}
}

func TestPhiKernelsAgree(t *testing.T) {
	// The three φ kernels — memoised (Phi), allocation-free (PhiDirect)
	// and list-allocating (PhiList, the GOGC-experiment kernel) — must
	// compute the same function.
	ctx := &nopCtx{}
	for k := 1; k <= 400; k++ {
		d, l, m := PhiDirect(k), PhiList(k), Phi(ctx, 1, k)
		if d != l || d != m {
			t.Fatalf("phi(%d): direct %d, list %d, memo %d", k, d, l, m)
		}
	}
	if got, want := SumRangeList(1, 600), SumTotientSieve(600); got != want {
		t.Fatalf("SumRangeList(1,600) = %d, want %d", got, want)
	}
}

func TestSieveMatchesNaive(t *testing.T) {
	ctx := &nopCtx{}
	for _, n := range []int{1, 2, 10, 100, 500} {
		if naive, sieve := SumRange(ctx, 1, 1, n), SumTotientSieve(n); naive != sieve {
			t.Errorf("n=%d: naive %d != sieve %d", n, naive, sieve)
		}
	}
}

func TestSequentialCheckMatchesSieve(t *testing.T) {
	ctx := &nopCtx{}
	for _, n := range []int{1, 7, 64, 300} {
		if got, want := SequentialCheck(ctx, n), SumTotientSieve(n); got != want {
			t.Errorf("n=%d: check %d != sieve %d", n, got, want)
		}
	}
}

func TestSumTotient15000Known(t *testing.T) {
	// Reference value computed independently (and stable across runs).
	if got := SumTotientSieve(15000); got != 68394316 {
		t.Fatalf("sumTotient(15000) = %d, want 68394316", got)
	}
}

func TestRangesPartitionProperty(t *testing.T) {
	f := func(nRaw, pRaw uint16) bool {
		n := int(nRaw%5000) + 1
		parts := int(pRaw%64) + 1
		rs := Ranges(n, parts)
		next := 1
		for _, r := range rs {
			if r.Lo != next || r.Hi < r.Lo {
				return false
			}
			next = r.Hi + 1
		}
		return next == n+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGpHProgramCorrect(t *testing.T) {
	const n = 800
	cfg := gph.WorkStealingConfig(4)
	res, err := gph.Run(cfg, GpHProgram(n, 16, cfg.Costs.GCDIter))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != SumTotientSieve(n) {
		t.Fatalf("value = %v, want %d", res.Value, SumTotientSieve(n))
	}
	if res.Stats.SparksCreated == 0 {
		t.Fatal("no sparks created")
	}
}

func TestEdenProgramCorrect(t *testing.T) {
	const n = 800
	cfg := eden.NewConfig(4, 4)
	res, err := eden.Run(cfg, EdenProgram(n, 1, cfg.Costs.GCDIter))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != SumTotientSieve(n) {
		t.Fatalf("value = %v, want %d", res.Value, SumTotientSieve(n))
	}
	if res.Stats.Processes != 4 {
		t.Fatalf("processes = %d, want 4", res.Stats.Processes)
	}
}

func TestGpHSpeedup(t *testing.T) {
	const n = 2000
	cfg1 := gph.WorkStealingConfig(1)
	cfg8 := gph.WorkStealingConfig(8)
	r1, err := gph.Run(cfg1, GpHProgram(n, 32, cfg1.Costs.GCDIter))
	if err != nil {
		t.Fatal(err)
	}
	r8, err := gph.Run(cfg8, GpHProgram(n, 32, cfg8.Costs.GCDIter))
	if err != nil {
		t.Fatal(err)
	}
	sp := float64(r1.Elapsed) / float64(r8.Elapsed)
	if sp < 3.5 {
		t.Fatalf("speedup = %.2f, want >= 3.5", sp)
	}
}

func TestPhiCacheDoesNotAffectCosts(t *testing.T) {
	a := &nopCtx{}
	Phi(a, 7, 1234)
	b := &nopCtx{}
	Phi(b, 7, 1234) // second call hits the host-side cache
	if a.burned != b.burned || a.alloced != b.alloced {
		t.Fatalf("memoisation changed charged costs: %v vs %v", a, b)
	}
}

func TestEagerBlackholingCheapOnRegularPrograms(t *testing.T) {
	// §IV-A.3: "our preliminary measurements suggest that, on current
	// processor architectures, this carries little performance
	// disadvantage over lazy black-holing" — for programs without
	// pathological sharing, eager marking must cost almost nothing.
	const n = 3000
	mk := func(eager bool) int64 {
		cfg := gph.WorkStealingConfig(8)
		cfg.EagerBlackholing = eager
		res, err := gph.Run(cfg, GpHProgram(n, 60, cfg.Costs.GCDIter))
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != SumTotientSieve(n) {
			t.Fatal("wrong sum")
		}
		return res.Elapsed
	}
	lazy, eager := mk(false), mk(true)
	ratio := float64(eager) / float64(lazy)
	if ratio > 1.02 {
		t.Fatalf("eager black-holing costs %.1f%% on a regular program; paper says 'little disadvantage'",
			(ratio-1)*100)
	}
}
