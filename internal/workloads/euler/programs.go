package euler

import (
	"fmt"

	"parhask/internal/exec"
	"parhask/internal/graph"
	"parhask/internal/pe"
	"parhask/internal/rts"
	"parhask/internal/skel"
	"parhask/internal/strategies"
)

// CheckError is the typed failure of the programs' built-in sequential
// self-check. Under message-fault injection a dropped stream element
// silently shortens the reduce input, so the parallel sum can lose
// chunks; panicking with a typed error lets the native runtimes'
// recover paths surface detected corruption as a structured failure
// (matchable with errors.As) rather than an anonymous panic.
type CheckError struct {
	Sum  int64
	Want int64
}

// Error implements error.
func (e *CheckError) Error() string {
	return fmt.Sprintf("euler: parallel sum %d != check %d", e.Sum, e.Want)
}

// Program is the runtime-agnostic GpH sumEuler program: split [1..n]
// into chunks, spark the sum of each chunk (parList rwhnf over
// sublists), fold the partial sums, then run the sequential result
// check of Fig. 2. It runs unchanged on the virtual-time simulation and
// on the native runtime.
//
// With direct=true the chunks use the uncached φ kernel and charge no
// virtual costs — the mode the native runtime times for real wall-clock
// speedups. With direct=false they use the memoised, cost-charged
// kernel the simulation needs.
func Program(n, chunks int, gcdIterCost int64, direct bool) exec.Program {
	return func(ctx exec.Ctx) graph.Value {
		rs := Ranges(n, chunks)
		ts := make([]*graph.Thunk, len(rs))
		for i, r := range rs {
			r := r
			ts[i] = exec.NewThunk(ctx, func(c exec.Ctx) graph.Value {
				if direct {
					return SumRangeDirect(r.Lo, r.Hi)
				}
				return SumRange(c, gcdIterCost, r.Lo, r.Hi)
			})
		}
		strategies.ParListWHNF(ctx, ts)
		var sum int64
		for _, t := range ts {
			sum += ctx.Force(t).(int64)
		}
		if check := SequentialCheck(ctx, n); check != sum {
			panic(&CheckError{Sum: sum, Want: check})
		}
		return sum
	}
}

// AllocProgram is Program with the list-allocating φ kernel (PhiList):
// the same chunked map-reduce, but each φ(k) materialises its
// intermediate lists on the real heap as the Haskell source does. This
// is the body for the native allocation-area (GOGC) experiment — for
// n=15000 it allocates ~900 MB of immediately-dead slices per run, so
// how often the collector runs is set by the GC target, not by the
// mutator.
func AllocProgram(n, chunks int) exec.Program {
	return func(ctx exec.Ctx) graph.Value {
		rs := Ranges(n, chunks)
		ts := make([]*graph.Thunk, len(rs))
		for i, r := range rs {
			r := r
			ts[i] = exec.NewThunk(ctx, func(c exec.Ctx) graph.Value {
				return SumRangeList(r.Lo, r.Hi)
			})
		}
		strategies.ParListWHNF(ctx, ts)
		var sum int64
		for _, t := range ts {
			sum += ctx.Force(t).(int64)
		}
		return sum
	}
}

// GpHProgram is Program specialised to the simulated runtime (memoised,
// cost-charged kernel), kept for the simulation call sites.
func GpHProgram(n, chunks int, gcdIterCost int64) func(*rts.Ctx) graph.Value {
	p := Program(n, chunks, gcdIterCost, false)
	return func(ctx *rts.Ctx) graph.Value { return p(ctx) }
}

// EdenProgram is the Eden sumEuler program: the ready-made parMapReduce
// skeleton over chunk ranges (chunksPerPE chunks per PE; the paper's
// static split corresponds to chunksPerPE = 1), followed by the same
// sequential check.
func EdenProgram(n, chunksPerPE int, gcdIterCost int64) pe.Program {
	return func(p pe.Ctx) graph.Value {
		if chunksPerPE <= 0 {
			chunksPerPE = 4
		}
		inputs := RangesValues(n, p.PEs()*chunksPerPE)
		kvs := skel.ParMapReduce(p, "sumEuler",
			func(w pe.Ctx, in graph.Value) []skel.KV {
				r := in.(Range)
				return []skel.KV{{Key: 0, Val: SumRange(w, gcdIterCost, r.Lo, r.Hi)}}
			},
			func(w pe.Ctx, key graph.Value, vals []graph.Value) graph.Value {
				var s int64
				for _, v := range vals {
					s += v.(int64)
				}
				return s
			}, inputs)
		sum := kvs[0].Val.(int64)
		if check := SequentialCheck(p, n); check != sum {
			panic(&CheckError{Sum: sum, Want: check})
		}
		return sum
	}
}

// SeqProgram is the sequential reference program (for relative-speedup
// baselines).
func SeqProgram(n int, gcdIterCost int64) func(*rts.Ctx) graph.Value {
	return func(ctx *rts.Ctx) graph.Value {
		sum := SumRange(ctx, gcdIterCost, 1, n)
		if check := SequentialCheck(ctx, n); check != sum {
			panic(fmt.Sprintf("euler: sum %d != check %d", sum, check))
		}
		return sum
	}
}
