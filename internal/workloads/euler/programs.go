package euler

import (
	"fmt"

	"parhask/internal/eden"
	"parhask/internal/graph"
	"parhask/internal/rts"
	"parhask/internal/skel"
	"parhask/internal/strategies"
)

// GpHProgram is the GpH sumEuler program: split [1..n] into chunks,
// spark the sum of each chunk (parList rnf over sublists), fold the
// partial sums, then run the sequential result check of Fig. 2.
func GpHProgram(n, chunks int, gcdIterCost int64) func(*rts.Ctx) graph.Value {
	return func(ctx *rts.Ctx) graph.Value {
		rs := Ranges(n, chunks)
		ts := make([]*graph.Thunk, len(rs))
		for i, r := range rs {
			r := r
			ts[i] = strategies.Thunk(func(c *rts.Ctx) graph.Value {
				return SumRange(c, gcdIterCost, r.Lo, r.Hi)
			})
		}
		strategies.ParListWHNF(ctx, ts)
		var sum int64
		for _, t := range ts {
			sum += ctx.Force(t).(int64)
		}
		if check := SequentialCheck(ctx, n); check != sum {
			panic(fmt.Sprintf("euler: parallel sum %d != check %d", sum, check))
		}
		return sum
	}
}

// EdenProgram is the Eden sumEuler program: the ready-made parMapReduce
// skeleton over chunk ranges (chunksPerPE chunks per PE; the paper's
// static split corresponds to chunksPerPE = 1), followed by the same
// sequential check.
func EdenProgram(n, chunksPerPE int, gcdIterCost int64) func(*eden.PCtx) graph.Value {
	return func(p *eden.PCtx) graph.Value {
		if chunksPerPE <= 0 {
			chunksPerPE = 4
		}
		inputs := RangesValues(n, p.PEs()*chunksPerPE)
		kvs := skel.ParMapReduce(p, "sumEuler",
			func(w *eden.PCtx, in graph.Value) []skel.KV {
				r := in.(Range)
				return []skel.KV{{Key: 0, Val: SumRange(w, gcdIterCost, r.Lo, r.Hi)}}
			},
			func(w *eden.PCtx, key graph.Value, vals []graph.Value) graph.Value {
				var s int64
				for _, v := range vals {
					s += v.(int64)
				}
				return s
			}, inputs)
		sum := kvs[0].Val.(int64)
		if check := SequentialCheck(p, n); check != sum {
			panic(fmt.Sprintf("euler: parallel sum %d != check %d", sum, check))
		}
		return sum
	}
}

// SeqProgram is the sequential reference program (for relative-speedup
// baselines).
func SeqProgram(n int, gcdIterCost int64) func(*rts.Ctx) graph.Value {
	return func(ctx *rts.Ctx) graph.Value {
		sum := SumRange(ctx, gcdIterCost, 1, n)
		if check := SequentialCheck(ctx, n); check != sum {
			panic(fmt.Sprintf("euler: sum %d != check %d", sum, check))
		}
		return sum
	}
}
