package euler

import (
	"parhask/internal/exec"
	"parhask/internal/graph"
	"parhask/internal/tune"
)

// AutoProgram is Program with the static chunk count replaced by a
// tune.Splitter: the interval [1, n] is carved by lazy binary
// splitting, so the items-per-spark granularity is whatever the
// splitter's grain says at the moment a range is actually forced — the
// controller can refine chunking mid-run from observed leaf service
// times, where Program's chunk list is fixed at build time. Uses the
// uncached φ kernel (the mode the native runtime times for wall-clock
// speedups) and ends with the same sequential self-check.
func AutoProgram(n int, sp *tune.Splitter) exec.Program {
	return func(ctx exec.Ctx) graph.Value {
		sum := sp.ParSum(ctx, 1, n+1, func(c exec.Ctx, lo, hi int) int64 {
			return SumRangeDirect(lo, hi-1) // ParSum ranges are [lo, hi)
		})
		if check := SequentialCheck(ctx, n); check != sum {
			panic(&CheckError{Sum: sum, Want: check})
		}
		return sum
	}
}
