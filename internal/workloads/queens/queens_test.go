package queens

import (
	"testing"

	"parhask/internal/eden"
	"parhask/internal/gph"
	"parhask/internal/gum"
)

type nopCtx struct{ burned, alloced int64 }

func (n *nopCtx) Burn(ns int64) { n.burned += ns }
func (n *nopCtx) Alloc(b int64) { n.alloced += b }

func TestCountMatchesKnown(t *testing.T) {
	for n, want := range Known {
		if n > 10 {
			continue // keep the host time bounded
		}
		if got := Count(&nopCtx{}, n, nil); got != want {
			t.Errorf("queens(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestCountChargesPerNode(t *testing.T) {
	ctx := &nopCtx{}
	Count(ctx, 6, nil)
	if ctx.burned == 0 || ctx.burned%NodeCost != 0 {
		t.Fatalf("burned = %d, want positive multiple of %d", ctx.burned, NodeCost)
	}
}

func TestEdenMasterWorkerQueens(t *testing.T) {
	for _, n := range []int{8, 9} {
		cfg := eden.NewConfig(5, 4)
		res, err := eden.Run(cfg, EdenProgram(n, 4, 2, 2))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Value != Known[n] {
			t.Fatalf("n=%d: got %v, want %d", n, res.Value, Known[n])
		}
	}
}

func TestGpHQueens(t *testing.T) {
	for _, depth := range []int{1, 2, 3} {
		cfg := gph.WorkStealingConfig(4)
		res, err := gph.Run(cfg, GpHProgram(9, depth))
		if err != nil {
			t.Fatalf("depth=%d: %v", depth, err)
		}
		if res.Value != Known[9] {
			t.Fatalf("depth=%d: got %v, want %d", depth, res.Value, Known[9])
		}
	}
}

func TestGpHQueensOnGUM(t *testing.T) {
	res, err := gum.Run(gum.NewConfig(4, 4), GpHProgram(8, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != Known[8] {
		t.Fatalf("got %v, want %d", res.Value, Known[8])
	}
}

func TestQueensSpeedup(t *testing.T) {
	r1, err := gph.Run(gph.WorkStealingConfig(1), GpHProgram(11, 2))
	if err != nil {
		t.Fatal(err)
	}
	r8, err := gph.Run(gph.WorkStealingConfig(8), GpHProgram(11, 2))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Value != Known[11] || r8.Value != Known[11] {
		t.Fatalf("bad counts %v %v", r1.Value, r8.Value)
	}
	if sp := float64(r1.Elapsed) / float64(r8.Elapsed); sp < 3.5 {
		t.Fatalf("speedup = %.2f, want >= 3.5", sp)
	}
}

func TestDeeperSplitMakesMoreTasks(t *testing.T) {
	run := func(depth int) int {
		cfg := eden.NewConfig(4, 4)
		res, err := eden.Run(cfg, EdenProgram(8, 3, 2, depth))
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != Known[8] {
			t.Fatalf("depth=%d wrong count %v", depth, res.Value)
		}
		return res.Stats.Messages
	}
	if shallow, deep := run(1), run(3); deep <= shallow {
		t.Fatalf("deeper split (%d msgs) should create more task traffic than shallow (%d)", deep, shallow)
	}
}
