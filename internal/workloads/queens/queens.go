// Package queens implements the N-queens solution counter as a dynamic
// search-tree workload for the masterWorker skeleton — the
// backtracking/branch-and-bound usage the paper names for masterWorker
// (§II-A, with reference [19]). Tasks are board prefixes; a worker
// either expands a prefix into new tasks (dynamic task creation) or, at
// the sequential depth, counts the completions itself.
//
// The search is computed for real; virtual cost is charged per actual
// node visited, so the tree's natural irregularity is genuine.
package queens

import (
	"parhask/internal/graph"
	"parhask/internal/pe"
	"parhask/internal/rts"
	"parhask/internal/skel"
	"parhask/internal/strategies"
)

// NodeCost is the virtual cost of visiting one search-tree node.
const NodeCost = 30

// AllocPerNode is the heap allocated per visited node.
const AllocPerNode = 48

// Ctx is the slice of a runtime context the search needs.
type Ctx interface {
	Burn(ns int64)
	Alloc(bytes int64)
}

// prefix is a partial placement: column of the queen in each filled row.
type prefix struct {
	N    int
	Cols []int8
}

// PackedSize implements eden.Sized.
func (p prefix) PackedSize() int64 { return int64(len(p.Cols)) + 24 }

// safe reports whether a queen at (len(cols), col) is unattacked.
func safe(cols []int8, col int8) bool {
	row := len(cols)
	for r, c := range cols {
		if c == col || int(c)-(row-r) == int(col) || int(c)+(row-r) == int(col) {
			return false
		}
	}
	return true
}

// countFrom exhaustively counts completions of the prefix, tallying
// visited nodes.
func countFrom(n int, cols []int8, visited *int64) int64 {
	if len(cols) == n {
		return 1
	}
	var total int64
	for col := int8(0); col < int8(n); col++ {
		*visited++
		if safe(cols, col) {
			total += countFrom(n, append(cols, col), visited)
		}
	}
	return total
}

// Count counts completions of a prefix with cost accounting.
func Count(ctx Ctx, n int, cols []int8) int64 {
	var visited int64
	total := countFrom(n, append([]int8(nil), cols...), &visited)
	ctx.Burn(visited * NodeCost)
	ctx.Alloc(visited * AllocPerNode)
	return total
}

// Known holds the solution counts for small boards (the oracle).
var Known = map[int]int64{4: 2, 5: 10, 6: 4, 7: 40, 8: 92, 9: 352, 10: 724, 11: 2680, 12: 14200}

// EdenProgram counts n-queens solutions with a masterWorker farm:
// prefixes shorter than splitDepth expand into new tasks; deeper
// prefixes are solved sequentially by the worker.
func EdenProgram(n, workers, prefetch, splitDepth int) pe.Program {
	return func(p pe.Ctx) graph.Value {
		outs := skel.MasterWorker(p, "queens", workers, prefetch,
			func(w pe.Ctx, task graph.Value) ([]graph.Value, graph.Value) {
				pf := task.(prefix)
				if len(pf.Cols) >= splitDepth {
					return nil, Count(w, n, pf.Cols)
				}
				// Expand one level: each safe column is a new task.
				var subs []graph.Value
				for col := int8(0); col < int8(n); col++ {
					w.Burn(NodeCost)
					if safe(pf.Cols, col) {
						subs = append(subs, prefix{N: n, Cols: append(append([]int8(nil), pf.Cols...), col)})
					}
				}
				return subs, int64(0)
			}, []graph.Value{prefix{N: n}})
		var total int64
		for _, v := range outs {
			total += v.(int64)
		}
		return total
	}
}

// GpHProgram counts n-queens solutions with sparked sub-searches: the
// tree is expanded to splitDepth and each leaf prefix is sparked.
func GpHProgram(n, splitDepth int) func(*rts.Ctx) graph.Value {
	return func(ctx *rts.Ctx) graph.Value {
		var prefixes [][]int8
		var expand func(cols []int8)
		expand = func(cols []int8) {
			if len(cols) == splitDepth {
				prefixes = append(prefixes, append([]int8(nil), cols...))
				return
			}
			for col := int8(0); col < int8(n); col++ {
				ctx.Burn(NodeCost)
				if safe(cols, col) {
					expand(append(cols, col))
				}
			}
		}
		expand(nil)
		ts := make([]*graph.Thunk, len(prefixes))
		for i, pf := range prefixes {
			pf := pf
			ts[i] = strategies.Thunk(func(c *rts.Ctx) graph.Value {
				return Count(c, n, pf)
			})
		}
		strategies.ParListWHNF(ctx, ts)
		var total int64
		for _, t := range ts {
			total += ctx.Force(t).(int64)
		}
		return total
	}
}
