// Package parfib implements parfib, the canonical GpH micro-benchmark
// for spark granularity: the naïve doubly-recursive Fibonacci with a
// cutoff threshold below which evaluation is sequential.
//
//	parfib n | n <= t    = nfib n
//	         | otherwise = x `par` (y `seq` x+y)
//	           where x = parfib (n-1); y = parfib (n-2)
//
// Every recursion above the threshold creates one spark, so the
// threshold directly controls the number and size of sparks — the
// classic granularity-tuning experiment for the runtimes in this
// repository.
package parfib

import (
	"parhask/internal/graph"
	"parhask/internal/rts"
	"parhask/internal/strategies"
)

// CallCost is the virtual cost of one nfib call (two compares, two
// calls, one add).
const CallCost = 12

// AllocPerCall is the heap allocated per nfib call (stack frames are
// free, but the lazy + boxes are not).
const AllocPerCall = 16

// Fib returns the Fibonacci number (the nfib value is the call count).
func Fib(n int) int64 {
	a, b := int64(0), int64(1)
	for i := 0; i < n; i++ {
		a, b = b, a+b
	}
	return a
}

// nfibCalls returns the number of calls nfib n makes: nfib(n) =
// 1 + nfib(n-1) + nfib(n-2), nfib(0)=nfib(1)=1 — i.e. 2·fib(n+1)-1.
func nfibCalls(n int) int64 {
	return 2*Fib(n+1) - 1
}

// seqFib charges the sequential nfib cost and returns fib(n).
func seqFib(ctx *rts.Ctx, n int) int64 {
	calls := nfibCalls(n)
	ctx.Alloc(calls * AllocPerCall)
	ctx.Burn(calls * CallCost)
	return Fib(n)
}

// parFib is the recursive sparked version.
func parFib(ctx *rts.Ctx, n, threshold int) int64 {
	if n <= threshold {
		return seqFib(ctx, n)
	}
	x := strategies.Thunk(func(c *rts.Ctx) graph.Value {
		return parFib(c, n-1, threshold)
	})
	ctx.Par(x)
	// One recursion call's own overhead.
	ctx.Alloc(AllocPerCall)
	ctx.Burn(CallCost)
	y := parFib(ctx, n-2, threshold)
	return ctx.Force(x).(int64) + y
}

// Program returns the GpH main function computing parfib n with the
// given sequential threshold.
func Program(n, threshold int) func(*rts.Ctx) graph.Value {
	return func(ctx *rts.Ctx) graph.Value {
		return parFib(ctx, n, threshold)
	}
}
