package parfib

import (
	"testing"
	"testing/quick"

	"parhask/internal/gph"
	"parhask/internal/gum"
)

func TestFibKnownValues(t *testing.T) {
	want := []int64{0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55}
	for n, w := range want {
		if got := Fib(n); got != w {
			t.Errorf("Fib(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestNfibCallsRecurrence(t *testing.T) {
	f := func(raw uint8) bool {
		n := int(raw%25) + 2
		return nfibCalls(n) == 1+nfibCalls(n-1)+nfibCalls(n-2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParFibCorrectAcrossThresholds(t *testing.T) {
	const n = 22
	want := Fib(n)
	for _, threshold := range []int{5, 10, 15, 21} {
		res, err := gph.Run(gph.WorkStealingConfig(4), Program(n, threshold))
		if err != nil {
			t.Fatalf("threshold %d: %v", threshold, err)
		}
		if res.Value != want {
			t.Fatalf("threshold %d: got %v, want %d", threshold, res.Value, want)
		}
	}
}

func TestThresholdControlsSparkCount(t *testing.T) {
	const n = 20
	run := func(th int) int {
		res, err := gph.Run(gph.WorkStealingConfig(4), Program(n, th))
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.SparksCreated
	}
	fine, coarse := run(8), run(16)
	if fine <= coarse {
		t.Fatalf("sparks: threshold 8 -> %d, threshold 16 -> %d; want more at finer grain", fine, coarse)
	}
}

func TestParFibSpeedup(t *testing.T) {
	const n, th = 26, 16
	r1, err := gph.Run(gph.WorkStealingConfig(1), Program(n, th))
	if err != nil {
		t.Fatal(err)
	}
	r8, err := gph.Run(gph.WorkStealingConfig(8), Program(n, th))
	if err != nil {
		t.Fatal(err)
	}
	if sp := float64(r1.Elapsed) / float64(r8.Elapsed); sp < 3 {
		t.Fatalf("speedup = %.2f, want >= 3", sp)
	}
}

func TestParFibOnGUM(t *testing.T) {
	const n, th = 20, 12
	res, err := gum.Run(gum.NewConfig(4, 4), Program(n, th))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != Fib(n) {
		t.Fatalf("got %v, want %d", res.Value, Fib(n))
	}
}

func TestTooFineGrainsHurt(t *testing.T) {
	// A very low threshold creates hordes of tiny sparks whose
	// scheduling overhead outweighs the parallelism (the granularity
	// lesson parfib exists to teach).
	const n = 22
	fine, err := gph.Run(gph.WorkStealingConfig(8), Program(n, 2))
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := gph.Run(gph.WorkStealingConfig(8), Program(n, 14))
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Elapsed >= fine.Elapsed {
		t.Fatalf("tuned threshold (%d) not faster than threshold 2 (%d)",
			tuned.Elapsed, fine.Elapsed)
	}
}

func TestVeryFineGrainNoDeadlock(t *testing.T) {
	// Regression: at tiny cutoffs, hordes of microscopic sparks make
	// steal-loop burns absorb Unpark permits; capabilities must re-check
	// their run queues before parking or enqueued wakeups are lost and
	// the runtime deadlocks (found by BenchmarkAblationParfibThreshold).
	for _, cores := range []int{2, 4, 8} {
		for _, th := range []int{2, 3, 4} {
			res, err := gph.Run(gph.WorkStealingConfig(cores), Program(20, th))
			if err != nil {
				t.Fatalf("cores=%d cutoff=%d: %v", cores, th, err)
			}
			if res.Value != Fib(20) {
				t.Fatalf("cores=%d cutoff=%d: got %v", cores, th, res.Value)
			}
		}
	}
}

func TestFineGrainOnGUMNoDeadlock(t *testing.T) {
	res, err := gum.Run(gum.NewConfig(6, 6), Program(18, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != Fib(18) {
		t.Fatalf("got %v", res.Value)
	}
}
