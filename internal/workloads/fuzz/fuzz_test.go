package fuzz

import (
	"testing"

	"parhask/internal/gph"
	"parhask/internal/gum"
)

func TestExpectedMatchesSingleCore(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		p := Generate(seed, 40)
		want := p.Expected()
		res, err := gph.Run(gph.WorkStealingConfig(1), p.Main())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Value != want {
			t.Fatalf("seed %d: got %v, want %d", seed, res.Value, want)
		}
	}
}

func TestCrossConfigEquivalence(t *testing.T) {
	// Every runtime configuration must compute the same value for the
	// same random DAG — sharing, duplication, blocking, stealing and
	// pushing may differ wildly, but referential transparency must hold.
	configs := []struct {
		name string
		mk   func() gph.Config
	}{
		{"plain_2", func() gph.Config { return gph.PlainGHC69(2) }},
		{"plain_8", func() gph.Config { return gph.PlainGHC69(8) }},
		{"steal_lazy_4", func() gph.Config { return gph.WorkStealingConfig(4) }},
		{"steal_eager_4", func() gph.Config {
			c := gph.WorkStealingConfig(4)
			c.EagerBlackholing = true
			return c
		}},
		{"steal_lazy_16", func() gph.Config { return gph.WorkStealingConfig(16) }},
		{"localheaps_8", func() gph.Config { return gph.LocalHeapsConfig(8) }},
		{"tiny_alloc_area_4", func() gph.Config {
			c := gph.WorkStealingConfig(4)
			c.AllocArea = 64 * 1024
			return c
		}},
		{"thread_per_spark_4", func() gph.Config {
			c := gph.WorkStealingConfig(4)
			c.SparkThreads = false
			return c
		}},
	}
	for seed := uint64(100); seed < 112; seed++ {
		p := Generate(seed, 60)
		want := p.Expected()
		for _, cfg := range configs {
			res, err := gph.Run(cfg.mk(), p.Main())
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, cfg.name, err)
			}
			if res.Value != want {
				t.Fatalf("seed %d %s: got %v, want %d", seed, cfg.name, res.Value, want)
			}
		}
	}
}

func TestGUMEquivalence(t *testing.T) {
	for seed := uint64(200); seed < 210; seed++ {
		p := Generate(seed, 50)
		want := p.Expected()
		for _, pes := range []int{1, 2, 4, 8} {
			res, err := gum.Run(gum.NewConfig(pes, pes), p.Main())
			if err != nil {
				t.Fatalf("seed %d pes %d: %v", seed, pes, err)
			}
			if res.Value != want {
				t.Fatalf("seed %d pes %d: got %v, want %d", seed, pes, res.Value, want)
			}
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	// Same seed, same config => identical virtual runtimes and stats.
	p := Generate(999, 80)
	cfg := gph.WorkStealingConfig(8)
	a, err := gph.Run(cfg, p.Main())
	if err != nil {
		t.Fatal(err)
	}
	b, err := gph.Run(cfg, p.Main())
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed || a.Stats != b.Stats {
		t.Fatalf("nondeterministic replay: %d vs %d", a.Elapsed, b.Elapsed)
	}
}

func TestDeepDependencyChains(t *testing.T) {
	// Chains stress nested forcing and blocking: build a pathological
	// program where every node depends on its predecessor.
	p := &Program{Nodes: make([]Node, 200)}
	for i := range p.Nodes {
		p.Nodes[i].Burn = 20_000
		p.Nodes[i].Alloc = 8 * 1024
		p.Nodes[i].Spark = true
		if i > 0 {
			p.Nodes[i].Deps = []int{i - 1}
		}
	}
	want := p.Expected()
	for _, eager := range []bool{false, true} {
		cfg := gph.WorkStealingConfig(8)
		cfg.EagerBlackholing = eager
		res, err := gph.Run(cfg, p.Main())
		if err != nil {
			t.Fatalf("eager=%v: %v", eager, err)
		}
		if res.Value != want {
			t.Fatalf("eager=%v: got %v, want %d", eager, res.Value, want)
		}
	}
}

func TestWideFanInSharing(t *testing.T) {
	// One expensive node shared by many dependents: heavy duplication
	// under lazy black-holing must still produce the right value.
	p := &Program{Nodes: make([]Node, 65)}
	p.Nodes[0] = Node{Burn: 2_000_000, Alloc: 2 * 1024}
	for i := 1; i < 65; i++ {
		p.Nodes[i] = Node{Burn: 50_000, Alloc: 16 * 1024, Deps: []int{0}, Spark: true}
	}
	want := p.Expected()
	res, err := gph.Run(gph.WorkStealingConfig(8), p.Main())
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != want {
		t.Fatalf("got %v, want %d", res.Value, want)
	}
}

func TestHighSparkDensityStress(t *testing.T) {
	// Dense fine-grained DAGs stress the park/wake paths that the
	// lost-wakeup regression (see parfib) exercised.
	for seed := uint64(300); seed < 308; seed++ {
		p := Generate(seed, 300)
		for i := range p.Nodes {
			p.Nodes[i].Burn /= 20 // make every node tiny
			p.Nodes[i].Spark = true
		}
		want := p.Expected()
		for _, cores := range []int{4, 16} {
			res, err := gph.Run(gph.WorkStealingConfig(cores), p.Main())
			if err != nil {
				t.Fatalf("seed %d cores %d: %v", seed, cores, err)
			}
			if res.Value != want {
				t.Fatalf("seed %d cores %d: got %v want %d", seed, cores, res.Value, want)
			}
		}
	}
}
