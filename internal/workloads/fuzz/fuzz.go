// Package fuzz generates random GpH programs — DAGs of thunks with
// random work, allocation, sharing and spark annotations — for
// cross-runtime equivalence testing: the same program must produce the
// same value on a single core, on many cores, under lazy and eager
// black-holing, under pushing and stealing schedulers, and on the
// distributed GUM runtime. Referential transparency makes this a strong
// whole-system correctness oracle.
package fuzz

import (
	"parhask/internal/exec"
	"parhask/internal/graph"
	"parhask/internal/rts"
	"parhask/internal/sim"
)

// Node is one vertex of a generated program DAG.
type Node struct {
	// Burn and Alloc are the node's own work.
	Burn  int64
	Alloc int64
	// Deps are indices of earlier nodes whose values this node sums.
	Deps []int
	// Spark marks the node for a par annotation.
	Spark bool
}

// Program is a generated DAG; node values are defined bottom-up:
// value(i) = i + Σ value(dep).
type Program struct {
	Nodes []Node
}

// Generate builds a random program with n nodes from seed. Fan-in, work
// and spark density vary with the generator stream.
func Generate(seed uint64, n int) *Program {
	rng := sim.NewPRNG(seed)
	p := &Program{Nodes: make([]Node, n)}
	for i := range p.Nodes {
		nd := &p.Nodes[i]
		nd.Burn = int64(rng.Intn(200_000))
		nd.Alloc = int64(rng.Intn(64 * 1024))
		if i > 0 {
			fanin := rng.Intn(3)
			for d := 0; d < fanin; d++ {
				nd.Deps = append(nd.Deps, rng.Intn(i))
			}
		}
		nd.Spark = rng.Intn(100) < 40
	}
	return p
}

// Expected computes the reference value of the program's final node
// (and transitively everything it needs) on the host, with no runtime.
func (p *Program) Expected() int64 {
	memo := make([]int64, len(p.Nodes))
	seen := make([]bool, len(p.Nodes))
	var eval func(i int) int64
	eval = func(i int) int64 {
		if seen[i] {
			return memo[i]
		}
		v := int64(i)
		for _, d := range p.Nodes[i].Deps {
			v += eval(d)
		}
		seen[i] = true
		memo[i] = v
		return v
	}
	// The program's result sums every sink (node with no dependents
	// would be fiddly to track, so we sum all nodes — same coverage).
	var total int64
	for i := range p.Nodes {
		total += eval(i)
	}
	return total
}

// Body returns the program as a runtime-agnostic main function: it
// builds the thunk DAG, sparks the annotated nodes, forces everything
// and returns the sum of all node values. The same body runs on the
// virtual-time simulation and on the native runtime.
func (p *Program) Body() exec.Program {
	return func(ctx exec.Ctx) graph.Value {
		thunks := make([]*graph.Thunk, len(p.Nodes))
		for i := range p.Nodes {
			i := i
			nd := &p.Nodes[i]
			thunks[i] = exec.NewThunk(ctx, func(c exec.Ctx) graph.Value {
				v := int64(i)
				for _, d := range nd.Deps {
					v += c.Force(thunks[d]).(int64)
				}
				if nd.Alloc > 0 {
					c.Alloc(nd.Alloc)
				}
				if nd.Burn > 0 {
					c.Burn(nd.Burn)
				}
				return v
			})
		}
		for i := range p.Nodes {
			if p.Nodes[i].Spark {
				ctx.Par(thunks[i])
			}
		}
		var total int64
		for i := range thunks {
			total += ctx.Force(thunks[i]).(int64)
		}
		return total
	}
}

// Main is Body specialised to the simulated runtime, kept for the
// simulation call sites.
func (p *Program) Main() func(*rts.Ctx) graph.Value {
	body := p.Body()
	return func(ctx *rts.Ctx) graph.Value { return body(ctx) }
}
