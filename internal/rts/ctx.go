package rts

import (
	"parhask/internal/graph"
	"parhask/internal/sim"
)

// Ctx is the execution context a thread's body receives. It implements
// graph.Context (forcing, black-holing, blocking) and exposes the
// mutator-facing runtime API (Burn, Alloc, Par, Fork).
type Ctx struct {
	Th *Thread
}

var _ graph.Context = (*Ctx)(nil)

func (x *Ctx) cap() *Cap { return x.Th.cap }

// Cap returns the capability the context's thread is running on.
func (x *Ctx) Cap() *Cap { return x.Th.cap }

// Now returns the current virtual time.
func (x *Ctx) Now() sim.Time { return x.cap().Task.Now() }

// Burn consumes ns of virtual mutator time.
func (x *Ctx) Burn(ns int64) { x.cap().Burn(ns) }

// Alloc accounts heap allocation. Every Costs.AllocBlock bytes the
// thread performs a heap check: the point where garbage collection can
// be triggered or joined and where the scheduler may context-switch.
// Threads that allocate slowly therefore reach these points rarely —
// exactly the GC-barrier delay the paper describes.
func (x *Ctx) Alloc(bytes int64) {
	th := x.Th
	th.allocSinceCheck += bytes
	costs := th.cap.Costs
	for th.allocSinceCheck >= costs.AllocBlock {
		th.allocSinceCheck -= costs.AllocBlock
		c := th.cap
		// The thread conceptually returns to the scheduler for a fresh
		// allocation block; GHC runs threadPaused here, so this is where
		// lazy black-holing catches up. The duplicate-evaluation window
		// is therefore one allocation block — tiny for allocation-heavy
		// grains (sumEuler chunks), but enough for simultaneous entries
		// into small shared thunks (the APSP pivot rows) to duplicate
		// whole evaluation chains.
		th.markEntered()
		c.Burn(costs.HeapCheck)
		c.AllocInArea += costs.AllocBlock
		c.AllocSinceGC += costs.AllocBlock
		c.TotalAlloc += costs.AllocBlock
		if c.Sys.HeapBoundary(c, th) {
			th.markEntered()
			c.Burn(costs.ContextSwitch)
			th.yieldDesched()
		}
	}
}

// EagerBlackholing reports the black-holing policy in force.
func (x *Ctx) EagerBlackholing() bool { return x.cap().Sys.EagerBlackholing() }

// BlackholeWriteCost is the cost of an eager thunk claim.
func (x *Ctx) BlackholeWriteCost() int64 { return x.cap().Costs.BlackholeWrite }

// EnteredThunk records a lazily-entered thunk for marking at the next
// deschedule point.
func (x *Ctx) EnteredThunk(t *graph.Thunk) {
	x.Th.entered = append(x.Th.entered, t)
}

// LeftThunk removes t from the pending lazy-marking list.
func (x *Ctx) LeftThunk(t *graph.Thunk) {
	e := x.Th.entered
	for i := len(e) - 1; i >= 0; i-- {
		if e[i] == t {
			copy(e[i:], e[i+1:])
			x.Th.entered = e[:len(e)-1]
			return
		}
	}
}

// BlockOnThunk suspends the thread until t is evaluated. The suspension
// itself is a deschedule point, so (under lazy black-holing) the
// thread's entered thunks are marked here — GHC's threadPaused.
func (x *Ctx) BlockOnThunk(t *graph.Thunk) {
	th := x.Th
	c := th.cap
	c.Burn(c.Costs.BlockOnBlackhole)
	if t.IsEvaluated() {
		// The evaluator finished while we were paying the suspension
		// cost; no need to park.
		return
	}
	th.markEntered()
	t.Waiters = append(t.Waiters, th)
	th.blockedOn = t
	th.yieldBlocked()
	th.blockedOn = nil
}

// WakeThunkWaiters moves every thread blocked on t back to its
// capability's run queue, charging the wake cost to the caller (the
// thread that updated the thunk).
func (x *Ctx) WakeThunkWaiters(t *graph.Thunk) {
	if len(t.Waiters) == 0 {
		return
	}
	ws := t.Waiters
	t.Waiters = nil
	c := x.cap()
	for _, w := range ws {
		th := w.(*Thread)
		c.Burn(c.Costs.WakeThread)
		// Wake the thread onto the capability it last ran on.
		th.cap.Enqueue(th)
	}
}

// NoteDuplicateEntry counts a duplicate evaluation entry.
func (x *Ctx) NoteDuplicateEntry(t *graph.Thunk) { x.cap().Sys.NoteDuplicate(t) }

// Force evaluates a thunk to weak head normal form.
func (x *Ctx) Force(t *graph.Thunk) graph.Value { return graph.Force(x, t) }

// ForceDeep evaluates a value to normal form.
func (x *Ctx) ForceDeep(v graph.Value) graph.Value { return graph.ForceDeep(x, v) }

// Par records t as a spark: a closure that may be evaluated in parallel
// if there are spare processor resources (GpH's par combinator).
func (x *Ctx) Par(t *graph.Thunk) { x.cap().Sys.Spark(x.cap(), x.Th, t) }

// Fork creates and enqueues a new thread on the current capability.
func (x *Ctx) Fork(name string, body func(*Ctx)) *Thread {
	return x.cap().SpawnThread(name, body)
}

// Yield voluntarily deschedules the current thread (it is requeued).
func (x *Ctx) Yield() {
	th := x.Th
	th.markEntered()
	th.cap.Burn(th.cap.Costs.ContextSwitch)
	th.yieldDesched()
}
