package rts_test

import (
	"fmt"
	"strings"
	"testing"

	"parhask/internal/cost"
	"parhask/internal/graph"
	"parhask/internal/machine"
	"parhask/internal/rts"
	"parhask/internal/sim"
	"parhask/internal/trace"
)

// fakeSys is a minimal policy: no sparks, no GC, timeslice descheduling
// only; capabilities park until work arrives and exit at quiescence.
type fakeSys struct {
	costs    cost.Model
	eager    bool
	live     int
	mainDone bool
	caps     []*rts.Cap

	heapBoundaries int
	dups           int
}

func (f *fakeSys) FindWork(c *rts.Cap) *rts.Thread {
	for {
		if th := c.TryDequeue(); th != nil {
			return th
		}
		if f.mainDone && f.live == 0 {
			return nil
		}
		c.Task.SleepInterruptible(100_000)
	}
}

func (f *fakeSys) HeapBoundary(c *rts.Cap, th *rts.Thread) bool {
	f.heapBoundaries++
	return c.RunQLen() > 0 // switch whenever others wait
}

func (f *fakeSys) Spark(c *rts.Cap, th *rts.Thread, t *graph.Thunk) {
	panic("fakeSys: no sparks")
}

func (f *fakeSys) EagerBlackholing() bool                   { return f.eager }
func (f *fakeSys) ThreadCreated(c *rts.Cap, th *rts.Thread) { f.live++ }
func (f *fakeSys) ThreadDone(c *rts.Cap, th *rts.Thread) {
	f.live--
	if f.mainDone && f.live == 0 {
		for _, cc := range f.caps {
			cc.Wake()
		}
	}
}
func (f *fakeSys) ThreadBlocked(c *rts.Cap, th *rts.Thread, on *graph.Thunk) {}
func (f *fakeSys) NoteDuplicate(t *graph.Thunk)                              { f.dups++ }

// newSystem builds a simulator with n capabilities under fakeSys and
// returns everything needed to run a main thread.
func newSystem(n int, eager bool) (*sim.Sim, *fakeSys, []*rts.Cap) {
	s := sim.New(7)
	cpu := machine.New(s, n)
	f := &fakeSys{costs: cost.Default(), eager: eager}
	log := trace.NewLog()
	caps := make([]*rts.Cap, n)
	for i := 0; i < n; i++ {
		caps[i] = rts.NewCap(i, f, cpu, &f.costs, log.NewAgent("c"))
	}
	f.caps = caps
	return s, f, caps
}

// runMain executes body as the initial thread on cap 0 and runs the
// simulation to completion.
func runMain(t *testing.T, s *sim.Sim, f *fakeSys, caps []*rts.Cap, body func(*rts.Ctx)) {
	t.Helper()
	main := caps[0].NewThread("main", func(ctx *rts.Ctx) {
		body(ctx)
		f.mainDone = true
		for _, c := range caps {
			c.Wake()
		}
	})
	caps[0].Enqueue(main)
	for _, c := range caps {
		c.Start(s)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestThreadBurnAdvancesVirtualTime(t *testing.T) {
	s, f, caps := newSystem(1, false)
	var end sim.Time
	runMain(t, s, f, caps, func(ctx *rts.Ctx) {
		ctx.Burn(1_000_000)
		end = ctx.Now()
	})
	if end != 1_000_000 {
		t.Fatalf("end = %d, want 1ms", end)
	}
}

func TestAllocTriggersHeapBoundaries(t *testing.T) {
	s, f, caps := newSystem(1, false)
	runMain(t, s, f, caps, func(ctx *rts.Ctx) {
		ctx.Alloc(16 * 4096) // exactly 16 blocks
	})
	if f.heapBoundaries != 16 {
		t.Fatalf("heap boundaries = %d, want 16", f.heapBoundaries)
	}
	if caps[0].TotalAlloc != 16*4096 {
		t.Fatalf("TotalAlloc = %d", caps[0].TotalAlloc)
	}
}

func TestSubBlockAllocAccumulates(t *testing.T) {
	s, f, caps := newSystem(1, false)
	runMain(t, s, f, caps, func(ctx *rts.Ctx) {
		for i := 0; i < 8; i++ {
			ctx.Alloc(1024) // 8 KB total = 2 blocks
		}
	})
	if f.heapBoundaries != 2 {
		t.Fatalf("heap boundaries = %d, want 2", f.heapBoundaries)
	}
}

func TestForkRunsOnSameCap(t *testing.T) {
	s, f, caps := newSystem(1, false)
	var childRan bool
	runMain(t, s, f, caps, func(ctx *rts.Ctx) {
		ctx.Fork("child", func(c *rts.Ctx) {
			c.Burn(1000)
			childRan = true
		})
		ctx.Burn(5000)
	})
	if !childRan {
		t.Fatal("forked thread never ran")
	}
}

func TestBlockOnThunkAcrossCaps(t *testing.T) {
	s, f, caps := newSystem(2, true) // eager: forcing a blackhole blocks
	var got graph.Value
	shared := graph.NewThunk(func(c graph.Context) graph.Value {
		c.Burn(2_000_000)
		return 77
	})
	// Evaluator on cap 1.
	ev := caps[1].NewThread("eval", func(ctx *rts.Ctx) {
		ctx.Force(shared)
	})
	caps[1].Enqueue(ev)
	runMain(t, s, f, caps, func(ctx *rts.Ctx) {
		ctx.Burn(100_000) // let the evaluator claim the thunk
		got = ctx.Force(shared)
	})
	if got != 77 {
		t.Fatalf("got %v, want 77", got)
	}
}

func TestLazyMarkingAtBlockBoundary(t *testing.T) {
	s, f, caps := newSystem(1, false)
	var stateAfterAlloc graph.EvalState
	var outer *graph.Thunk
	outer = graph.NewThunk(func(c graph.Context) graph.Value {
		// Crossing an allocation block must black-hole this thunk (the
		// threadPaused catch-up) even though we keep running.
		c.Alloc(8 * 1024)
		stateAfterAlloc = outer.State()
		return 1
	})
	runMain(t, s, f, caps, func(ctx *rts.Ctx) {
		ctx.Force(outer)
	})
	if stateAfterAlloc != graph.Blackholed {
		t.Fatalf("state after alloc = %v, want blackholed", stateAfterAlloc)
	}
	if outer.State() != graph.Evaluated {
		t.Fatal("thunk not updated at completion")
	}
}

func TestEagerMarkingOnEntry(t *testing.T) {
	s, f, caps := newSystem(1, true)
	var stateInside graph.EvalState
	var th *graph.Thunk
	th = graph.NewThunk(func(c graph.Context) graph.Value {
		stateInside = th.State()
		return 1
	})
	runMain(t, s, f, caps, func(ctx *rts.Ctx) {
		ctx.Force(th)
	})
	if stateInside != graph.Blackholed {
		t.Fatalf("state inside = %v, want blackholed (eager)", stateInside)
	}
}

func TestThreadMigrationViaEnqueue(t *testing.T) {
	s, f, caps := newSystem(2, false)
	var ranOn []int
	runMain(t, s, f, caps, func(ctx *rts.Ctx) {
		th := ctx.Cap().NewThread("mig", func(c *rts.Ctx) {
			ranOn = append(ranOn, c.Cap().Index)
		})
		// Enqueue the new thread on the *other* capability.
		caps[1].Enqueue(th)
		ctx.Burn(1_000_000)
	})
	if len(ranOn) != 1 || ranOn[0] != 1 {
		t.Fatalf("thread ran on %v, want [1]", ranOn)
	}
}

func TestYieldRequeues(t *testing.T) {
	s, f, caps := newSystem(1, false)
	var order []string
	runMain(t, s, f, caps, func(ctx *rts.Ctx) {
		ctx.Fork("other", func(c *rts.Ctx) {
			order = append(order, "other")
		})
		ctx.Yield() // give the forked thread the capability
		order = append(order, "main")
	})
	if len(order) != 2 || order[0] != "other" || order[1] != "main" {
		t.Fatalf("order = %v, want [other main]", order)
	}
}

func TestWakeWaiterList(t *testing.T) {
	s, f, caps := newSystem(1, false)
	ph := graph.NewPlaceholder()
	var got graph.Value
	runMain(t, s, f, caps, func(ctx *rts.Ctx) {
		ctx.Fork("resolver", func(c *rts.Ctx) {
			c.Burn(500_000)
			ws := ph.Resolve(123)
			c.Cap().WakeWaiterList(ws)
		})
		got = ctx.Force(ph) // blocks until resolved
	})
	if got != 123 {
		t.Fatalf("got %v, want 123", got)
	}
}

func TestThreadPanicPropagatesWithContext(t *testing.T) {
	s, f, caps := newSystem(1, false)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected the thread panic to surface from sim.Run")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "boom-thread") || !strings.Contains(msg, "exploded") {
			t.Fatalf("panic lacks context: %v", msg)
		}
	}()
	runMain(t, s, f, caps, func(ctx *rts.Ctx) {
		ctx.Fork("boom-thread", func(c *rts.Ctx) {
			panic("exploded")
		})
		ctx.Burn(1_000_000)
	})
	t.Fatal("runMain returned without panicking")
}
