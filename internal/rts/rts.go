// Package rts provides the runtime-system core that the GpH (shared
// heap) and Eden (distributed heap) implementations share: capabilities,
// lightweight threads multiplexed onto them, allocation accounting with
// block-granularity heap checks, thunk blocking/waking, and lazy
// black-hole marking at descheduling points.
//
// This mirrors the paper's observation that the two systems "share thread
// scheduling, and other elements, from a common code base": the pieces
// here are policy-free mechanics; each runtime supplies a System that
// decides what happens at heap-block boundaries (GC, context switches),
// where idle capabilities find work (sparks vs. messages), and what par
// means.
//
// Concurrency model: a Cap's scheduler loop is a sim.Task. Haskell
// threads are plain goroutines that exchange control with their
// capability through channels; all virtual time they consume is charged
// to the capability's task, so the simulation kernel still sees exactly
// one logical entity per capability.
package rts

import (
	"fmt"

	"parhask/internal/cost"
	"parhask/internal/graph"
	"parhask/internal/machine"
	"parhask/internal/sim"
	"parhask/internal/trace"
)

// System is the policy half of a runtime: the GpH RTS and the Eden PE
// both implement it.
type System interface {
	// FindWork is called by an idle capability's scheduler loop. It may
	// sleep or steal in virtual time, and returns the next thread to run,
	// or nil to shut the capability down (only when the whole runtime is
	// quiescent).
	FindWork(c *Cap) *Thread
	// HeapBoundary is called at every allocation-block boundary of the
	// running thread, in thread context. It may initiate or join a
	// garbage collection and decides whether the thread must be
	// descheduled (context switch).
	HeapBoundary(c *Cap, th *Thread) (deschedule bool)
	// Spark records a par annotation (GpH); systems without sparks panic.
	Spark(c *Cap, th *Thread, t *graph.Thunk)
	// EagerBlackholing reports the black-holing policy.
	EagerBlackholing() bool
	// ThreadCreated is called whenever a new thread is created on c.
	ThreadCreated(c *Cap, th *Thread)
	// ThreadDone is called when a thread's body returns.
	ThreadDone(c *Cap, th *Thread)
	// ThreadBlocked is called after th has been parked on a thunk.
	ThreadBlocked(c *Cap, th *Thread, on *graph.Thunk)
	// NoteDuplicate counts a duplicate thunk entry (lazy black-holing).
	NoteDuplicate(t *graph.Thunk)
}

// yieldReason tells the capability loop why a thread gave up control.
type yieldReason int8

const (
	yrDesched yieldReason = iota // timeslice expired: requeue
	yrBlocked                    // blocked on a thunk: waiters own it
	yrDone                       // body returned
)

// ThreadState describes a thread's lifecycle.
type ThreadState int8

const (
	ThreadRunnable ThreadState = iota
	ThreadRunning
	ThreadBlocked
	ThreadDone
)

// Thread is a lightweight (Haskell) thread.
type Thread struct {
	ID          int
	Name        string
	SparkThread bool // a dedicated spark-running thread (§IV-A.4)

	cap   *Cap // capability the thread last ran on / is queued on
	state ThreadState
	body  func(*Ctx)

	resume chan struct{}    // cap -> thread
	yield  chan yieldReason // thread -> cap

	// entered holds thunks this thread began evaluating without
	// black-holing them (lazy policy); marked at deschedule points.
	entered []*graph.Thunk
	// blockedOn is the thunk the thread is currently parked on, if any.
	blockedOn *graph.Thunk

	allocSinceCheck int64
	// runTime accumulates the virtual time this thread spent running
	// (granularity profiling, in the GranSim tradition the paper's
	// profiling discussion descends from).
	runTime int64
	// panicV carries a panic out of the thread's goroutine so the
	// capability (a simulation task) can re-raise it with context.
	panicV interface{}
}

// RunTime returns the total virtual time the thread has spent running.
func (th *Thread) RunTime() int64 { return th.runTime }

// BlockedOn returns the thunk the thread is blocked on, or nil.
func (th *Thread) BlockedOn() *graph.Thunk { return th.blockedOn }

// State returns the thread's lifecycle state.
func (th *Thread) State() ThreadState { return th.state }

// Cap returns the capability the thread is currently associated with.
func (th *Thread) Cap() *Cap { return th.cap }

// Cap is one capability: the resources for running Haskell computation
// on one (simulated) core, with its own run queue and allocation area —
// corresponding precisely to an Eden/GUM PE, as the paper notes.
type Cap struct {
	Index int
	Sys   System
	Task  *sim.Task
	CPU   *machine.CPU
	Costs *cost.Model
	Agent *trace.Agent

	runQ    []*Thread
	current *Thread

	// AllocInArea is the bytes allocated into this capability's
	// allocation area since the last GC (drives GC triggering);
	// AllocSinceGC is the same quantity kept for live-data estimation;
	// TotalAlloc accumulates over the whole run.
	AllocInArea  int64
	AllocSinceGC int64
	TotalAlloc   int64

	// ThreadsSpawned counts threads created on this capability.
	ThreadsSpawned int
	// BlockedCount is the number of threads that last ran on this
	// capability and are currently blocked on thunks (drives the paper's
	// "all threads blocked" red trace state).
	BlockedCount int

	exited bool
}

// NewCap creates a capability. The caller supplies the simulation task
// in Start.
func NewCap(index int, sys System, cpu *machine.CPU, costs *cost.Model, agent *trace.Agent) *Cap {
	return &Cap{Index: index, Sys: sys, CPU: cpu, Costs: costs, Agent: agent}
}

// Start spawns the capability's scheduler loop as a simulation task.
func (c *Cap) Start(s *sim.Sim) {
	s.Spawn(fmt.Sprintf("cap%d", c.Index), func(t *sim.Task) {
		c.Task = t
		c.loop()
	})
}

// loop is the capability scheduler: run queued threads; when none are
// queued ask the System for work; exit when the System says so.
func (c *Cap) loop() {
	for {
		th := c.dequeue()
		if th == nil {
			c.SetState(trace.Runnable)
			th = c.Sys.FindWork(c)
			if th == nil {
				break
			}
		}
		c.runThread(th)
	}
	c.exited = true
	c.SetState(trace.Idle)
}

// Exited reports whether the capability's scheduler loop has terminated.
func (c *Cap) Exited() bool { return c.exited }

// runThread hands the capability to th until it deschedules, blocks or
// finishes.
func (c *Cap) runThread(th *Thread) {
	if th.state != ThreadRunnable {
		panic(fmt.Sprintf("rts: running thread %q in state %d", th.Name, th.state))
	}
	th.cap = c
	th.state = ThreadRunning
	c.current = th
	c.SetState(trace.Run)
	start := c.Task.Now()
	th.resume <- struct{}{}
	reason := <-th.yield
	th.runTime += c.Task.Now() - start
	c.current = nil
	c.SetState(trace.Runnable)
	switch reason {
	case yrDesched:
		th.state = ThreadRunnable
		c.Enqueue(th)
	case yrBlocked:
		// Waiters list owns the thread now.
		c.BlockedCount++
		c.Sys.ThreadBlocked(c, th, th.blockedOn)
	case yrDone:
		if th.panicV != nil {
			// Re-raise in capability (simulation-task) context so the
			// panic reaches the caller of Run with the thread named.
			panic(fmt.Sprintf("thread %q panicked: %v", th.Name, th.panicV))
		}
		c.Sys.ThreadDone(c, th)
	}
}

// Current returns the thread currently running on the capability.
func (c *Cap) Current() *Thread { return c.current }

// RunQLen returns the current run-queue length.
func (c *Cap) RunQLen() int { return len(c.runQ) }

// Enqueue appends a runnable thread to the capability's run queue and
// wakes the capability if it is parked.
func (c *Cap) Enqueue(th *Thread) {
	if th.state == ThreadRunning || th.state == ThreadDone {
		panic(fmt.Sprintf("rts: enqueue of thread %q in state %d", th.Name, th.state))
	}
	if th.state == ThreadBlocked {
		th.cap.BlockedCount--
	}
	th.state = ThreadRunnable
	th.cap = c
	c.runQ = append(c.runQ, th)
	c.Wake()
}

// StealRunnable removes a thread from the back of the run queue (for
// pushing surplus threads to idle capabilities); nil if none to spare.
func (c *Cap) StealRunnable() *Thread {
	if len(c.runQ) < 2 {
		return nil
	}
	th := c.runQ[len(c.runQ)-1]
	c.runQ = c.runQ[:len(c.runQ)-1]
	return th
}

func (c *Cap) dequeue() *Thread {
	if len(c.runQ) == 0 {
		return nil
	}
	th := c.runQ[0]
	copy(c.runQ, c.runQ[1:])
	c.runQ = c.runQ[:len(c.runQ)-1]
	return th
}

// TryDequeue removes and returns the next runnable thread, or nil.
// Systems call it from their idle loops, where threads can arrive while
// the capability is parked.
func (c *Cap) TryDequeue() *Thread { return c.dequeue() }

// Wake unparks the capability's scheduler task (no-op if running).
func (c *Cap) Wake() {
	if c.Task != nil {
		c.Task.Unpark()
	}
}

// Burn consumes virtual CPU time on this capability's core.
func (c *Cap) Burn(ns int64) {
	if ns > 0 {
		c.CPU.Burn(c.Task, ns)
	}
}

// WakeWaiterList re-enqueues threads that were blocked on a thunk (the
// records a BlockOnThunk call put in Thunk.Waiters), charging the wake
// cost here on the calling capability. Used by message handlers that
// resolve channel placeholders outside any thread context.
func (c *Cap) WakeWaiterList(ws []any) {
	for _, w := range ws {
		th := w.(*Thread)
		c.Burn(c.Costs.WakeThread)
		th.cap.Enqueue(th)
	}
}

// SetState records the capability's activity state in the trace.
func (c *Cap) SetState(s trace.State) {
	if c.Agent != nil {
		c.Agent.Set(c.Task.Now(), s)
	}
}

// Now returns current virtual time.
func (c *Cap) Now() sim.Time { return c.Task.Now() }

// NewThread creates a thread that will run body, charging the creation
// cost to the creating capability. The thread is not enqueued.
func (c *Cap) NewThread(name string, body func(*Ctx)) *Thread {
	c.ThreadsSpawned++
	th := &Thread{
		ID:     c.ThreadsSpawned,
		Name:   name,
		cap:    c,
		state:  ThreadRunnable,
		body:   body,
		resume: make(chan struct{}),
		yield:  make(chan yieldReason),
	}
	go func() {
		<-th.resume
		defer func() {
			if r := recover(); r != nil {
				th.panicV = r
			}
			th.state = ThreadDone
			th.yield <- yrDone
		}()
		th.body(&Ctx{Th: th})
	}()
	c.Sys.ThreadCreated(c, th)
	return th
}

// SpawnThread creates a thread, charges its creation cost, and enqueues
// it on this capability.
func (c *Cap) SpawnThread(name string, body func(*Ctx)) *Thread {
	c.Burn(c.Costs.ThreadCreate)
	th := c.NewThread(name, body)
	c.Enqueue(th)
	return th
}

// MarkEntered black-holes every thunk the thread entered without
// marking (the lazy-black-holing catch-up done at deschedule points).
// Systems call it whenever they suspend a thread outside the normal
// deschedule paths (e.g. on GC arrival).
func (th *Thread) MarkEntered() {
	for _, t := range th.entered {
		t.MarkBlackhole()
	}
	th.entered = th.entered[:0]
}

// markEntered is the internal alias used by the rts paths.
func (th *Thread) markEntered() { th.MarkEntered() }

// yieldDesched suspends the thread back to its capability for requeueing.
func (th *Thread) yieldDesched() {
	th.yield <- yrDesched
	<-th.resume
}

// yieldBlocked suspends the thread; it will be resumed via Enqueue when
// the thunk it blocked on is updated.
func (th *Thread) yieldBlocked() {
	th.state = ThreadBlocked
	th.yield <- yrBlocked
	<-th.resume
}
