package rts

import "parhask/internal/exec"

// *Ctx satisfies the runtime-agnostic mutator interface structurally
// (Burn, Alloc, Par, Force, ForceDeep), so simulated programs pass a
// *Ctx wherever an exec.Ctx is expected with no adapter.
var _ exec.Ctx = (*Ctx)(nil)

// forkCtx adapts *Ctx to exec.Forker: the simulated Fork signature
// creates threads with simulation-typed bodies, so the adapter rewraps.
type forkCtx struct{ *Ctx }

func (f forkCtx) Fork(name string, body func(exec.Ctx)) {
	f.Ctx.Fork(name, func(c *Ctx) { body(c) })
}

var _ exec.Forker = forkCtx{}

// Exec returns the runtime-agnostic view of the context, including
// thread creation (exec.Forker).
func (x *Ctx) Exec() exec.Forker { return forkCtx{x} }
