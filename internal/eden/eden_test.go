package eden

import (
	"errors"
	"testing"

	"parhask/internal/graph"
	"parhask/internal/pe"
)

func runE(t *testing.T, cfg Config, main pe.Program) *Result {
	t.Helper()
	res, err := Run(cfg, main)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMainOnly(t *testing.T) {
	res := runE(t, NewConfig(4, 4), func(p pe.Ctx) graph.Value {
		p.Burn(1_000_000)
		return 7
	})
	if res.Value != 7 {
		t.Fatalf("value = %v", res.Value)
	}
	if res.Elapsed < 1_000_000 {
		t.Fatalf("elapsed = %d", res.Elapsed)
	}
}

func TestProcessRoundTrip(t *testing.T) {
	res := runE(t, NewConfig(2, 2), func(p pe.Ctx) graph.Value {
		in, out := p.NewChan(0)
		p.Spawn(1, "worker", func(w pe.Ctx) {
			if w.PE() != 1 {
				t.Errorf("worker on PE %d, want 1", w.PE())
			}
			w.Burn(500_000)
			w.Send(out, 42)
		})
		return p.Receive(in)
	})
	if res.Value != 42 {
		t.Fatalf("value = %v, want 42", res.Value)
	}
	if res.Stats.Processes != 1 {
		t.Fatalf("processes = %d", res.Stats.Processes)
	}
	if res.Stats.Messages == 0 {
		t.Fatal("no messages recorded")
	}
	// The round trip must include instantiation + message latencies.
	min := res.Stats.TotalAlloc // placate linter; real check below
	_ = min
	if res.Elapsed < 500_000+2*NewConfig(2, 2).Costs.MsgLatency {
		t.Fatalf("elapsed = %d too small for latency model", res.Elapsed)
	}
}

func TestReceiveBlocksUntilArrival(t *testing.T) {
	res := runE(t, NewConfig(2, 2), func(p pe.Ctx) graph.Value {
		in, out := p.NewChan(0)
		p.Spawn(1, "slow", func(w pe.Ctx) {
			w.Burn(3_000_000)
			w.Send(out, "late")
		})
		// Receive immediately: must block and be woken by the message.
		return p.Receive(in)
	})
	if res.Value != "late" {
		t.Fatalf("value = %v", res.Value)
	}
	if res.Stats.BlockedOnThunk == 0 {
		t.Fatal("main never blocked on the placeholder")
	}
	if res.Elapsed < 3_000_000 {
		t.Fatalf("elapsed = %d, want >= 3ms", res.Elapsed)
	}
}

func TestStreamOrderAndTermination(t *testing.T) {
	res := runE(t, NewConfig(2, 2), func(p pe.Ctx) graph.Value {
		sin, sout := p.NewStream(0)
		p.Spawn(1, "streamer", func(w pe.Ctx) {
			for i := 0; i < 10; i++ {
				w.StreamSend(sout, i)
			}
			w.StreamClose(sout)
		})
		got := p.RecvAll(sin)
		sum := 0
		for i, v := range got {
			if v != i {
				t.Errorf("element %d = %v (out of order)", i, v)
			}
			sum += v.(int)
		}
		return sum
	})
	if res.Value != 45 {
		t.Fatalf("sum = %v, want 45", res.Value)
	}
	// 10 elements + close = 11 messages on the stream, plus none back.
	if res.Stats.Messages < 11 {
		t.Fatalf("messages = %d, want >= 11", res.Stats.Messages)
	}
}

// farm spawns one worker per PE, each burning burn and allocating alloc,
// and sums their replies.
func farm(workers int, burn, alloc int64) pe.Program {
	return func(p pe.Ctx) graph.Value {
		ins := make([]pe.Inport, workers)
		for i := 0; i < workers; i++ {
			in, out := p.NewChan(0)
			ins[i] = in
			p.Spawn(i, "w", func(w pe.Ctx) {
				w.Alloc(alloc)
				w.Burn(burn)
				w.Send(out, 1)
			})
		}
		sum := 0
		for _, in := range ins {
			sum += p.Receive(in).(int)
		}
		return sum
	}
}

func TestFarmSpeedup(t *testing.T) {
	main8 := farm(8, 5_000_000, 512*1024)
	r1 := runE(t, NewConfig(1, 1), farm(1, 40_000_000, 4*1024*1024))
	r8 := runE(t, NewConfig(8, 8), main8)
	if r8.Value != 8 {
		t.Fatalf("value = %v", r8.Value)
	}
	speedup := float64(r1.Elapsed) / float64(r8.Elapsed)
	if speedup < 4 {
		t.Fatalf("speedup = %.2f (t1=%d t8=%d), want >= 4", speedup, r1.Elapsed, r8.Elapsed)
	}
}

func TestVirtualPEsTimeslice(t *testing.T) {
	// 8 equally-busy PEs on 4 cores should take about twice as long as
	// on 8 cores. (Burns dominate the constant spawn/latency overheads.)
	main := farm(8, 30_000_000, 256*1024)
	full := runE(t, NewConfig(8, 8), main)
	half := runE(t, NewConfig(8, 4), main)
	ratio := float64(half.Elapsed) / float64(full.Elapsed)
	if ratio < 1.6 || ratio > 2.6 {
		t.Fatalf("ratio = %.2f (full=%d half=%d), want ~2", ratio, full.Elapsed, half.Elapsed)
	}
}

func TestLocalGCsHappenIndependently(t *testing.T) {
	res := runE(t, NewConfig(4, 4), farm(4, 1_000_000, 4*1024*1024))
	if res.Stats.LocalGCs < 4 {
		t.Fatalf("local GCs = %d, want >= 4 (each PE collects its own heap)", res.Stats.LocalGCs)
	}
}

func TestDeterminismEden(t *testing.T) {
	cfg := NewConfig(6, 4)
	a := runE(t, cfg, farm(6, 900_000, 512*1024))
	b := runE(t, cfg, farm(6, 900_000, 512*1024))
	if a.Elapsed != b.Elapsed {
		t.Fatalf("elapsed %d vs %d", a.Elapsed, b.Elapsed)
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats diverge:\n%+v\n%+v", a.Stats, b.Stats)
	}
}

func TestReceiveOnWrongPEPanics(t *testing.T) {
	_, err := Run(NewConfig(2, 2), func(p pe.Ctx) graph.Value {
		in, _ := p.NewChan(1) // owned by PE 1
		defer func() {
			if recover() == nil {
				t.Error("expected panic receiving on wrong PE")
			}
		}()
		p.Receive(in)
		return nil
	})
	if err != nil {
		t.Logf("run error (acceptable after recovered panic): %v", err)
	}
}

func TestForkLocalTupleThreads(t *testing.T) {
	// Eden evaluates tuple components in independent threads: two local
	// threads each send one component.
	res := runE(t, NewConfig(2, 2), func(p pe.Ctx) graph.Value {
		inA, outA := p.NewChan(0)
		inB, outB := p.NewChan(0)
		p.Spawn(1, "pair", func(w pe.Ctx) {
			w.ForkLocal("snd", func(w2 pe.Ctx) {
				w2.Burn(200_000)
				w2.Send(outB, "B")
			})
			w.Burn(100_000)
			w.Send(outA, "A")
		})
		a := p.Receive(inA).(string)
		b := p.Receive(inB).(string)
		return a + b
	})
	if res.Value != "AB" {
		t.Fatalf("value = %v", res.Value)
	}
}

func TestTraceAgentsArePEs(t *testing.T) {
	res := runE(t, NewConfig(3, 2), farm(3, 400_000, 64*1024))
	if n := len(res.Trace.Agents()); n != 3 {
		t.Fatalf("agents = %d, want 3", n)
	}
	if res.Trace.End() != res.Elapsed {
		t.Fatal("trace not closed at main completion")
	}
}

func TestSizeOf(t *testing.T) {
	cases := []struct {
		v    graph.Value
		want int64
	}{
		{42, wordSize},
		{3.14, wordSize},
		{"hello", 5 + wordSize},
		{[]float64{1, 2, 3}, 24 + wordSize},
		{[]int{1, 2}, 16 + wordSize},
		{[][]float64{{1, 2}, {3}}, wordSize + (16 + wordSize) + (8 + wordSize)},
		{Nil{}, wordSize},
	}
	for _, c := range cases {
		if got := SizeOf(c.v); got != c.want {
			t.Errorf("SizeOf(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestSizeOfPanicsOnThunk(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SizeOf(graph.NewPlaceholder())
}

func TestBytesAccounted(t *testing.T) {
	res := runE(t, NewConfig(2, 2), func(p pe.Ctx) graph.Value {
		in, out := p.NewChan(0)
		p.Spawn(1, "w", func(w pe.Ctx) {
			w.Send(out, make([]float64, 1000))
		})
		v := p.Receive(in).([]float64)
		return len(v)
	})
	if res.Value != 1000 {
		t.Fatalf("value = %v", res.Value)
	}
	if res.Stats.BytesSent < 8000 {
		t.Fatalf("bytes = %d, want >= 8000", res.Stats.BytesSent)
	}
}

func TestLatencyJitterKeepsStreamsOrdered(t *testing.T) {
	cfg := NewConfig(2, 2)
	cfg.Costs.MsgJitter = 200_000 // up to 200 µs extra per message
	res := runE(t, cfg, func(p pe.Ctx) graph.Value {
		sin, sout := p.NewStream(0)
		p.Spawn(1, "streamer", func(w pe.Ctx) {
			for i := 0; i < 50; i++ {
				w.StreamSend(sout, i)
			}
			w.StreamClose(sout)
		})
		got := p.RecvAll(sin)
		for i, v := range got {
			if v != i {
				t.Errorf("element %d = %v: jitter reordered the stream", i, v)
			}
		}
		return len(got)
	})
	if res.Value != 50 {
		t.Fatalf("received %v elements", res.Value)
	}
}

func TestLatencyJitterDeterministic(t *testing.T) {
	mk := func() *Result {
		cfg := NewConfig(4, 4)
		cfg.Costs.MsgJitter = 100_000
		return runE(t, cfg, farm(4, 800_000, 128*1024))
	}
	a, b := mk(), mk()
	if a.Elapsed != b.Elapsed || a.Stats != b.Stats {
		t.Fatal("jitter must be seeded and reproducible")
	}
}

func TestLatencyJitterCorrectResults(t *testing.T) {
	cfg := NewConfig(6, 6)
	cfg.Costs.MsgJitter = 500_000
	res := runE(t, cfg, farm(6, 500_000, 64*1024))
	if res.Value != 6 {
		t.Fatalf("value = %v", res.Value)
	}
}

func TestDynamicReplyChannel(t *testing.T) {
	// First-class channel passing (the dynamic channels of the Eden
	// literature): the worker creates its own reply channel and ships
	// the *outport* back through a bootstrap channel; the master then
	// sends directly to the worker over it.
	res := runE(t, NewConfig(2, 2), func(p pe.Ctx) graph.Value {
		bootIn, bootOut := p.NewChan(0)
		ackIn, ackOut := p.NewChan(0)
		p.Spawn(1, "server", func(w pe.Ctx) {
			reqIn, reqOut := w.NewChan(1) // channel owned by the worker
			w.Send(bootOut, reqOut)       // ship the outport to the master
			req := w.Receive(reqIn)       // wait for a request on it
			w.Send(ackOut, req.(int)*2)
		})
		port := p.Receive(bootIn).(*Outport) // the dynamically created channel
		p.Send(port, 21)
		return p.Receive(ackIn)
	})
	if res.Value != 42 {
		t.Fatalf("value = %v, want 42", res.Value)
	}
}

func TestPCtxAccessors(t *testing.T) {
	runE(t, NewConfig(3, 2), func(p pe.Ctx) graph.Value {
		if p.PEs() != 3 {
			t.Errorf("PEs = %d", p.PEs())
		}
		if p.PE() != 0 {
			t.Errorf("main PE = %d", p.PE())
		}
		p.AddResident(1 << 20) // exercised; effect visible in GC costs
		return nil
	})
}

func TestSendAllRecvAll(t *testing.T) {
	res := runE(t, NewConfig(2, 2), func(p pe.Ctx) graph.Value {
		sin, sout := p.NewStream(0)
		p.Spawn(1, "w", func(w pe.Ctx) {
			w.SendAll(sout, []graph.Value{1, 2, 3})
		})
		return len(p.RecvAll(sin))
	})
	if res.Value != 3 {
		t.Fatalf("got %v", res.Value)
	}
}

func TestLocalResolveAwait(t *testing.T) {
	res := runE(t, NewConfig(1, 1), func(p pe.Ctx) graph.Value {
		cell := graph.NewPlaceholder()
		p.ForkLocal("resolver", func(f pe.Ctx) {
			f.Burn(300_000)
			f.LocalResolve(cell, 77)
		})
		return p.Await(cell)
	})
	if res.Value != 77 {
		t.Fatalf("got %v", res.Value)
	}
}

func TestSparkPanicsOnEden(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: par is not an Eden construct")
		}
	}()
	_, _ = Run(NewConfig(1, 1), func(p pe.Ctx) graph.Value {
		p.(*PCtx).Par(graph.NewThunk(func(c graph.Context) graph.Value { return 1 }))
		return nil
	})
}

func TestSizeOfMoreTypes(t *testing.T) {
	if SizeOf(nil) != wordSize || SizeOf(true) != wordSize {
		t.Fatal("scalar sizes wrong")
	}
	if SizeOf([]int64{1, 2}) != 16+wordSize {
		t.Fatal("[]int64 size wrong")
	}
	if SizeOf([][]int{{1}, {2, 3}}) != wordSize+(8+wordSize)+(16+wordSize) {
		t.Fatal("[][]int size wrong")
	}
	if SizeOf([]graph.Value{1, "ab"}) != wordSize+wordSize+(2+wordSize) {
		t.Fatal("[]Value size wrong")
	}
	if SizeOf(Cons{Head: 1}) != wordSize+consOverhead {
		t.Fatal("Cons size wrong")
	}
	if SizeOf([]int32{1, 2, 3}) != 12+wordSize {
		t.Fatal("[]int32 size wrong")
	}
	if SizeOf([][]int32{{1}, {2, 3}}) != wordSize+(4+wordSize)+(8+wordSize) {
		t.Fatal("[][]int32 size wrong")
	}
}

// TestSizeOfUnsizedTypes pins the bugfix: types the copier would ship
// field-by-field but the model cannot size exactly (plain structs,
// maps) are a structured *UnsizedTypeError, not a silent one-word
// charge.
func TestSizeOfUnsizedTypes(t *testing.T) {
	for _, v := range []graph.Value{
		struct{ X int }{1},
		map[string]int{"a": 1},
		[]string{"a"},
		uintptr(7),
	} {
		_, err := SizeOfChecked(v)
		var ue *UnsizedTypeError
		if !errors.As(err, &ue) {
			t.Fatalf("SizeOfChecked(%T) = %v, want *UnsizedTypeError", v, err)
		}
		if ue.Type == "" {
			t.Fatalf("UnsizedTypeError for %T has empty Type", v)
		}
	}
}
