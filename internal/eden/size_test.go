package eden

import (
	"errors"
	"strings"
	"testing"

	"parhask/internal/graph"
	"parhask/internal/pe"
)

// TestUnevaluatedErrorFromSizeOfChecked checks the structured error the
// packing layer returns on a normal-form violation.
func TestUnevaluatedErrorFromSizeOfChecked(t *testing.T) {
	_, err := SizeOfChecked(graph.NewPlaceholder())
	if err == nil {
		t.Fatal("SizeOfChecked(placeholder) returned no error")
	}
	var ue *UnevaluatedError
	if !errors.As(err, &ue) {
		t.Fatalf("error is %T, want *UnevaluatedError", err)
	}
	msg := err.Error()
	for _, want := range []string{"unevaluated graph", "normal form", ue.State.String()} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
}

// TestSendErrorMessage checks that SendError names the operation, the
// channel, both PEs and the underlying cause, and unwraps to it.
func TestSendErrorMessage(t *testing.T) {
	cause := &UnevaluatedError{State: graph.Unevaluated}
	se := &SendError{Op: "StreamSend", Chan: 42, PE: 3, Dest: 7, Err: cause}
	msg := se.Error()
	for _, want := range []string{"StreamSend", "channel #42", "PE 3", "PE 7", "unevaluated graph"} {
		if !strings.Contains(msg, want) {
			t.Errorf("SendError %q does not mention %q", msg, want)
		}
	}
	var ue *UnevaluatedError
	if !errors.As(se, &ue) || ue != cause {
		t.Error("SendError does not unwrap to its UnevaluatedError cause")
	}
}

// TestSendPanicsWithSendError drives the real Send path: a value that
// ForceDeep cannot normalise (a Cons whose head is a placeholder, hidden
// inside a []Value that ForceDeep does traverse) must raise a *SendError
// naming the channel and the sending PE.
func TestSendPanicsWithSendError(t *testing.T) {
	res := runE(t, NewConfig(2, 2), func(p pe.Ctx) graph.Value {
		in, out := p.NewChan(0)
		p.Spawn(1, "bad-sender", func(w pe.Ctx) {
			var report string
			func() {
				defer func() {
					r := recover()
					if r == nil {
						report = "no panic"
						return
					}
					err, ok := r.(error)
					if !ok {
						report = "panic value is not an error"
						return
					}
					var se *SendError
					if !errors.As(err, &se) {
						report = "panic is not a *SendError: " + err.Error()
						return
					}
					if se.Op != "Send" || se.PE != 1 || se.Dest != 0 {
						report = "wrong SendError fields: " + err.Error()
						return
					}
					var ue *UnevaluatedError
					if !errors.As(err, &ue) {
						report = "SendError does not wrap an UnevaluatedError"
						return
					}
					report = "ok: " + err.Error()
				}()
				w.Send(out, []graph.Value{Cons{Head: graph.NewPlaceholder()}})
			}()
			w.Send(out, report)
		})
		return p.Receive(in)
	})
	got := res.Value.(string)
	if !strings.HasPrefix(got, "ok: ") {
		t.Fatalf("Send misuse not diagnosed: %s", got)
	}
	if !strings.Contains(got, "channel #") || !strings.Contains(got, "PE 1 -> PE 0") {
		t.Errorf("SendError message %q does not name the channel and PEs", got)
	}
}
