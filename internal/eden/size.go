package eden

import (
	"fmt"

	"parhask/internal/graph"
)

// consOverhead is the packet overhead of one stream cell beyond its
// payload (tag + continuation channel id).
const consOverhead = 24

// wordSize is the packed size of one scalar (value + tag), matching the
// graph-structure serialisation Eden uses.
const wordSize = 16

// Sized lets user-defined message types report their packed size so the
// communication cost model charges them accurately.
type Sized interface {
	PackedSize() int64
}

// SizeOf estimates the packed size in bytes of a normal-form value, used
// to charge per-byte communication costs. Unknown types count as one
// word (they are small coordination tokens).
func SizeOf(v graph.Value) int64 {
	switch x := v.(type) {
	case nil:
		return wordSize
	case Sized:
		return x.PackedSize()
	case bool, int, int32, int64, uint64, float32, float64:
		return wordSize
	case string:
		return int64(len(x)) + wordSize
	case []int:
		return int64(8*len(x)) + wordSize
	case []int64:
		return int64(8*len(x)) + wordSize
	case []float64:
		return int64(8*len(x)) + wordSize
	case [][]float64:
		var n int64 = wordSize
		for _, row := range x {
			n += int64(8*len(row)) + wordSize
		}
		return n
	case [][]int:
		var n int64 = wordSize
		for _, row := range x {
			n += int64(8*len(row)) + wordSize
		}
		return n
	case []graph.Value:
		var n int64 = wordSize
		for _, e := range x {
			n += SizeOf(e)
		}
		return n
	case Cons:
		return SizeOf(x.Head) + consOverhead
	case Nil:
		return wordSize
	case *graph.Thunk:
		panic(fmt.Sprintf("eden: SizeOf on unevaluated graph (%v); values must be in normal form before sending", x.State()))
	default:
		return wordSize
	}
}
