package eden

import (
	"fmt"

	"parhask/internal/graph"
)

// consOverhead is the packet overhead of one stream cell beyond its
// payload (tag + continuation channel id).
const consOverhead = 24

// ConsOverhead exports the stream-cell overhead for the native backend,
// which charges the same packing model to its bytes-shipped telemetry.
const ConsOverhead = consOverhead

// wordSize is the packed size of one scalar (value + tag), matching the
// graph-structure serialisation Eden uses.
const wordSize = 16

// Sized lets user-defined message types report their packed size so the
// communication cost model charges them accurately.
type Sized interface {
	PackedSize() int64
}

// UnevaluatedError reports that a value reached the packing layer while
// still containing unevaluated graph — a violation of Eden's
// normal-form-before-send rule. Send/StreamSend wrap it in a SendError
// that names the channel and PE.
type UnevaluatedError struct {
	// State is the offending thunk's evaluation state at packing time.
	State graph.EvalState
}

func (e *UnevaluatedError) Error() string {
	return fmt.Sprintf("unevaluated graph in message (thunk state %s); values must be in normal form before sending", e.State)
}

// SendError is the structured error for a failed channel send: which
// operation, on which channel, from which PE, and why. It is the
// diagnosable form of the bare panic SizeOf used to raise, so misuse of
// the native Eden backend names the exact port instead of only the
// thunk state.
type SendError struct {
	// Op is the failing operation ("Send" or "StreamSend").
	Op string
	// Chan is the channel id the failing port belongs to.
	Chan int64
	// PE is the sending PE.
	PE int
	// Dest is the channel's destination PE.
	Dest int
	// Err is the underlying packing error (an *UnevaluatedError).
	Err error
}

func (e *SendError) Error() string {
	return fmt.Sprintf("eden: %s on channel #%d (PE %d -> PE %d): %v", e.Op, e.Chan, e.PE, e.Dest, e.Err)
}

// Unwrap exposes the underlying packing error to errors.Is/As.
func (e *SendError) Unwrap() error { return e.Err }

// ChanMisuseError is the structured error for a channel-protocol
// violation: receiving on the wrong PE, consuming a one-value channel
// twice, or operating on an unknown or already-closed port. It replaces
// the bare string panics these misuses used to raise, so supervised
// runs and the chaos soak can classify them with errors.As alongside
// SendError.
type ChanMisuseError struct {
	// Op is the violating operation ("Receive", "Send", "StreamSend",
	// "StreamClose", "StreamRecv", "CancelStream").
	Op string
	// Chan is the channel or stream id.
	Chan int64
	// PE is the PE the violating thread ran on.
	PE int
	// Owner is the PE that owns the port's receiving end, or -1 when the
	// port is unknown to the runtime.
	Owner int
	// Reason classifies the violation: "cross-pe", "already-received",
	// "unknown-channel", "closed-or-unknown-stream", "unknown-stream".
	Reason string
}

func (e *ChanMisuseError) Error() string {
	if e.Owner >= 0 {
		return fmt.Sprintf("eden: %s on channel #%d from PE %d (owner PE %d): %s", e.Op, e.Chan, e.PE, e.Owner, e.Reason)
	}
	return fmt.Sprintf("eden: %s on channel #%d from PE %d: %s", e.Op, e.Chan, e.PE, e.Reason)
}

// UnsizedTypeError reports a message value whose packed size the model
// cannot state exactly: a type with no builtin rule and no PackedSize.
// It used to be silently charged one word — which under-counted every
// map and plain struct the copier then shipped field-by-field — so the
// cost model and the copier disagreed about what a message even was.
// Now that the packed size is the actual byte length on the wire, an
// unsized type is a hard, diagnosable error.
type UnsizedTypeError struct {
	// Type is the offending value's dynamic type, rendered with %T.
	Type string
}

func (e *UnsizedTypeError) Error() string {
	return fmt.Sprintf("eden: message type %s has no packed size; implement eden.Sized (PackedSize) for exact byte accounting", e.Type)
}

// SizeOfChecked computes the packed size in bytes of a normal-form
// value — the byte count charged to the communication model and, in
// cluster mode, the exact length of the value's wire encoding. A value
// still containing unevaluated graph returns an *UnevaluatedError; a
// type with no size rule (maps, structs without PackedSize) returns an
// *UnsizedTypeError instead of silently under-charging one word.
func SizeOfChecked(v graph.Value) (int64, error) {
	switch x := v.(type) {
	case nil:
		return wordSize, nil
	case Sized:
		return x.PackedSize(), nil
	case bool, int, int32, int64, uint64, float32, float64:
		return wordSize, nil
	case string:
		return int64(len(x)) + wordSize, nil
	case []int:
		return int64(8*len(x)) + wordSize, nil
	case []int64:
		return int64(8*len(x)) + wordSize, nil
	case []int32:
		return int64(4*len(x)) + wordSize, nil
	case []float64:
		return int64(8*len(x)) + wordSize, nil
	case [][]float64:
		var n int64 = wordSize
		for _, row := range x {
			n += int64(8*len(row)) + wordSize
		}
		return n, nil
	case [][]int:
		var n int64 = wordSize
		for _, row := range x {
			n += int64(8*len(row)) + wordSize
		}
		return n, nil
	case [][]int32:
		var n int64 = wordSize
		for _, row := range x {
			n += int64(4*len(row)) + wordSize
		}
		return n, nil
	case []graph.Value:
		var n int64 = wordSize
		for _, e := range x {
			s, err := SizeOfChecked(e)
			if err != nil {
				return 0, err
			}
			n += s
		}
		return n, nil
	case Cons:
		s, err := SizeOfChecked(x.Head)
		if err != nil {
			return 0, err
		}
		return s + consOverhead, nil
	case Nil:
		return wordSize, nil
	case *graph.Thunk:
		if x.IsEvaluated() {
			// An evaluated thunk's payload is in normal form; size its
			// value (the graph serialisation ships the value node).
			return SizeOfChecked(x.Value())
		}
		return 0, &UnevaluatedError{State: x.State()}
	default:
		return 0, &UnsizedTypeError{Type: fmt.Sprintf("%T", v)}
	}
}

// SizeOf is SizeOfChecked for call sites that guarantee normal form; it
// panics with the structured *UnevaluatedError on unevaluated graph.
func SizeOf(v graph.Value) int64 {
	n, err := SizeOfChecked(v)
	if err != nil {
		panic(err)
	}
	return n
}
