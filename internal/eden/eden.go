// Package eden implements the Eden distributed-heap runtime on the
// simulated multicore machine (§III-B): a configurable number of
// processing elements (PEs), each a complete sequential runtime with its
// own private heap, allocation area and **independent local garbage
// collection** — no global synchronisation — connected by a
// message-passing layer modelling PVM/MPI mapped onto shared memory.
//
// Eden processes communicate through channels; values are reduced to
// normal form before sending. Heap placeholders stand for not-yet-
// arrived data: threads forcing them block and are woken when the
// message arrives. Top-level lists are transmitted element-by-element as
// streams. The number of PEs may exceed the number of physical cores
// ("virtual PEs"); the machine model then timeslices them, as the OS did
// for the paper's 9- and 17-PE PVM runs on 8 cores.
package eden

import (
	"fmt"

	"parhask/internal/cost"
	"parhask/internal/graph"
	"parhask/internal/machine"
	"parhask/internal/pe"
	"parhask/internal/rts"
	"parhask/internal/sim"
	"parhask/internal/trace"
)

// Config selects an Eden runtime setup.
type Config struct {
	// PEs is the number of processing elements (virtual machines).
	PEs int
	// Cores is the number of physical cores of the simulated machine.
	Cores int
	// Costs is the virtual cost model.
	Costs cost.Model
	// AllocArea is the per-PE allocation area; 0 selects the default.
	AllocArea int64
	// ResidentBytesPerPE is baseline long-lived heap per PE (workloads
	// can add more via PCtx.AddResident).
	ResidentBytesPerPE int64
	// EagerBlackholing selects the black-holing policy inside each PE
	// (Eden inherited GHC's lazy default; it matters much less here
	// because processes do not share graph across heaps).
	EagerBlackholing bool
	// Seed for the deterministic PRNG.
	Seed uint64
}

// NewConfig returns an Eden configuration with pes PEs on cores cores.
func NewConfig(pes, cores int) Config {
	return Config{PEs: pes, Cores: cores, Costs: cost.Default(), Seed: 1}
}

func (c *Config) allocArea() int64 {
	if c.AllocArea > 0 {
		return c.AllocArea
	}
	return c.Costs.AllocAreaDefault
}

// Stats aggregates counters over one Eden run.
type Stats struct {
	Messages       int
	BytesSent      int64
	LocalGCs       int
	MajorGCs       int
	GCTime         int64 // summed across PEs (pauses are per-PE, unsynchronised)
	Processes      int
	ThreadsCreated int
	BlockedOnThunk int
	DupEntries     int
	TotalAlloc     int64
}

// Result is the outcome of one Eden run.
type Result struct {
	Elapsed sim.Time
	Value   graph.Value
	Stats   Stats
	Trace   *trace.Log
}

// message is a packet in flight to a PE: on arrival it resolves cell to val.
type message struct {
	cell  *graph.Thunk
	val   graph.Value
	bytes int64
}

// peState is one processing element.
type peState struct {
	cap        *rts.Cap
	mailbox    []message
	resident   int64
	gcCount    int
	idle       bool
	lastSwitch sim.Time
	lastThread *rts.Thread
	// arrivalFloor is the latest scheduled arrival at this PE, keeping
	// deliveries FIFO under latency jitter.
	arrivalFloor sim.Time
}

// RTS is a running Eden instance; it implements rts.System for all PEs.
type RTS struct {
	cfg   Config
	sim   *sim.Sim
	cpu   *machine.CPU
	log   *trace.Log
	pes   []*peState
	stats Stats

	liveThreads int
	shutdown    bool
	mainDone    sim.Time
	mainValue   graph.Value

	// chanIDs hands out channel ids (for diagnostics: SendError names
	// the failing channel).
	chanIDs int64
}

// nextChan allocates the next channel id.
func (r *RTS) nextChan() int64 {
	r.chanIDs++
	return r.chanIDs
}

var _ rts.System = (*RTS)(nil)

// Run executes main as the root process on PE 0 and returns the result.
func Run(cfg Config, main pe.Program) (*Result, error) {
	if cfg.PEs <= 0 || cfg.Cores <= 0 {
		return nil, fmt.Errorf("eden: invalid configuration PEs=%d cores=%d", cfg.PEs, cfg.Cores)
	}
	s := sim.New(cfg.Seed + 0x51ed2705)
	r := &RTS{
		cfg: cfg,
		sim: s,
		cpu: machine.New(s, cfg.Cores),
		log: trace.NewLog(),
	}
	costs := cfg.Costs
	for i := 0; i < cfg.PEs; i++ {
		agent := r.log.NewAgent(fmt.Sprintf("pe%d", i))
		c := rts.NewCap(i, r, r.cpu, &costs, agent)
		r.pes = append(r.pes, &peState{cap: c, resident: cfg.ResidentBytesPerPE})
	}
	mainThread := r.pes[0].cap.NewThread("main", func(ctx *rts.Ctx) {
		r.mainValue = main(&PCtx{Ctx: ctx, rts: r})
		r.mainDone = ctx.Now()
		r.shutdown = true
		r.wakeAllPEs()
	})
	r.pes[0].cap.Enqueue(mainThread)
	for _, pe := range r.pes {
		pe.cap.Start(s)
	}
	if err := s.Run(); err != nil {
		return nil, fmt.Errorf("eden: %w", err)
	}
	r.log.Close(r.mainDone)
	for _, pe := range r.pes {
		r.stats.TotalAlloc += pe.cap.TotalAlloc
	}
	return &Result{
		Elapsed: r.mainDone,
		Value:   r.mainValue,
		Stats:   r.stats,
		Trace:   r.log,
	}, nil
}

func (r *RTS) pe(c *rts.Cap) *peState { return r.pes[c.Index] }

func (r *RTS) wakeAllPEs() {
	for _, pe := range r.pes {
		pe.cap.Wake()
	}
}

// --- rts.System implementation ---

// EagerBlackholing reports the intra-PE black-holing policy.
func (r *RTS) EagerBlackholing() bool { return r.cfg.EagerBlackholing }

// NoteDuplicate counts duplicate thunk entries inside a PE.
func (r *RTS) NoteDuplicate(t *graph.Thunk) { r.stats.DupEntries++ }

// Spark is not part of the Eden model.
func (r *RTS) Spark(c *rts.Cap, th *rts.Thread, t *graph.Thunk) {
	panic("eden: par/sparks are a GpH construct; use process instantiation")
}

// ThreadCreated tracks live threads for quiescence detection.
func (r *RTS) ThreadCreated(c *rts.Cap, th *rts.Thread) {
	r.liveThreads++
	r.stats.ThreadsCreated++
}

// ThreadDone handles thread termination.
func (r *RTS) ThreadDone(c *rts.Cap, th *rts.Thread) {
	r.liveThreads--
	if r.shutdown && r.liveThreads == 0 {
		r.wakeAllPEs()
	}
}

// ThreadBlocked records a thread parking on a placeholder or thunk.
func (r *RTS) ThreadBlocked(c *rts.Cap, th *rts.Thread, on *graph.Thunk) {
	r.stats.BlockedOnThunk++
}

// FindWork is a PE's idle loop: deliver pending messages, run arriving
// threads, park when there is nothing to do.
func (r *RTS) FindWork(c *rts.Cap) *rts.Thread {
	pe := r.pe(c)
	for {
		r.processMailbox(c)
		if th := c.TryDequeue(); th != nil {
			return th
		}
		if r.shutdown && r.liveThreads == 0 {
			return nil
		}
		// processMailbox burned virtual time; wakes that arrived during
		// those burns were absorbed. Re-check (cheaply) before parking.
		if len(pe.mailbox) > 0 || c.RunQLen() > 0 {
			continue
		}
		pe.idle = true
		if c.BlockedCount > 0 {
			c.SetState(trace.Blocked)
		} else {
			c.SetState(trace.Idle)
		}
		c.Task.Park()
		pe.idle = false
		c.SetState(trace.Runnable)
	}
}

// HeapBoundary runs at allocation-block boundaries: deliver messages,
// collect the local heap when the allocation area fills (no barrier, no
// other PE involved — the distributed heap's scalability argument), and
// enforce the timeslice.
func (r *RTS) HeapBoundary(c *rts.Cap, th *rts.Thread) bool {
	pe := r.pe(c)
	if pe.lastThread != th {
		pe.lastThread = th
		pe.lastSwitch = c.Now()
	}
	r.processMailbox(c)
	if c.AllocInArea >= r.cfg.allocArea() {
		r.localGC(c, th)
		c.SetState(trace.Run)
	}
	if c.Now()-pe.lastSwitch >= c.Costs.Timeslice {
		pe.lastSwitch = c.Now()
		if c.RunQLen() > 0 {
			return true
		}
	}
	return false
}

// localGC collects one PE's private heap: only this PE pauses.
func (r *RTS) localGC(c *rts.Cap, th *rts.Thread) {
	if th != nil {
		th.MarkEntered()
	}
	pe := r.pe(c)
	c.SetState(trace.GC)
	costs := c.Costs
	live := int64(float64(c.AllocSinceGC) * costs.SurvivalRate)
	r.stats.LocalGCs++
	pe.gcCount++
	if costs.MajorGCEvery > 0 && pe.gcCount%costs.MajorGCEvery == 0 {
		live += pe.resident
		r.stats.MajorGCs++
	}
	gcCost := costs.GCFixed + int64(costs.GCPerLiveByte*float64(live))
	start := c.Now()
	c.Burn(gcCost)
	r.stats.GCTime += c.Now() - start
	c.AllocInArea = 0
	c.AllocSinceGC = 0
}

// processMailbox unpacks any delivered messages: resolve placeholders,
// wake blocked threads, charge the per-message receive cost.
func (r *RTS) processMailbox(c *rts.Cap) {
	pe := r.pe(c)
	for len(pe.mailbox) > 0 {
		m := pe.mailbox[0]
		pe.mailbox = pe.mailbox[1:]
		c.SetState(trace.Comm)
		costs := c.Costs
		c.Burn(costs.MsgFixed + int64(costs.MsgPerByte*float64(m.bytes)))
		ws := m.cell.Resolve(m.val)
		c.WakeWaiterList(ws)
	}
}

// deliver schedules a message for arrival at PE dest after the transport
// latency (plus seeded jitter, if configured). Deliveries to one PE are
// kept FIFO, as the PVM/MPI transports guarantee: a jittered message may
// not overtake an earlier one.
func (r *RTS) deliver(dest int, m message) {
	pe := r.pes[dest]
	at := r.sim.Now() + r.cfg.Costs.MsgLatency
	if j := r.cfg.Costs.MsgJitter; j > 0 {
		at += int64(r.sim.Rand().Uint64() % uint64(j+1))
	}
	if at < pe.arrivalFloor {
		at = pe.arrivalFloor
	}
	pe.arrivalFloor = at
	r.sim.After(at-r.sim.Now(), func() {
		pe.mailbox = append(pe.mailbox, m)
		pe.cap.Wake()
	})
}
