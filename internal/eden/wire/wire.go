// Package wire is the Eden value codec for cross-process sends: the
// serialisation that replaces nativeeden's in-process deep copy when
// PEs live in separate OS processes connected by sockets.
//
// Its defining property is that the encoding *is* the packing model:
// for every encodable value v, len(Encode(v)) == eden.SizeOfChecked(v),
// asserted on every encode. The simulator's byte accounting — one
// 16-byte word per scalar (an 8-byte type header plus an 8-byte
// payload), length-prefixed strings and slices, eden.Sized structs —
// stops being an estimate and becomes the actual bytes on the wire.
//
// Layout. Every value starts with an 8-byte header: a little-endian
// uint32 type tag plus a reserved uint32 (zero). Scalars follow with
// one 8-byte payload word; strings and slices with a uint64
// length/count and their elements; registered struct types with
// whatever their registered encoder writes (fields as 8-byte words,
// length-prefixed strings, packed element arrays, or nested values in
// this same format).
//
// Registration. Builtin Go types are handled directly. Named message
// types (skeleton packets, workload structs) register a static tag and
// an encode/decode pair from their own package's init, so unexported
// types stay unexported and the registry is populated exactly by the
// packages a program links. Tags are fixed constants — the wire format
// is stable across processes of the same binary, which is the only
// pairing the cluster runtime creates.
//
// Decoding never panics: truncated, corrupt or unknown input returns a
// structured *DecodeError (or the registered decoder's error), so a
// malformed frame is a diagnosable failure, not a crashed worker.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"

	"parhask/internal/eden"
	"parhask/internal/graph"
)

// Builtin type tags. Registered (named) types must use tags >= TagUser.
const (
	tagInvalid uint32 = iota
	tagNilValue
	tagBool
	tagInt
	tagInt32
	tagInt64
	tagUint64
	tagFloat32
	tagFloat64
	tagString
	tagIntSlice
	tagInt64Slice
	tagInt32Slice
	tagFloat64Slice
	tagFloat64Grid
	tagIntGrid
	tagInt32Grid
	tagValueSlice
	tagEdenNil

	// TagUser is the first tag available to Register.
	TagUser uint32 = 32
)

// Registered tags for message types whose home package cannot import
// wire (package pe sits below eden in the import graph), registered by
// this package instead.
const tagThreadFailure = TagUser + 0

// Tag blocks assigned to the packages that register named types. Each
// package's wire.go documents its own constants; the blocks are listed
// here so a new registration picks a free tag.
//
//	32..39   wire itself (pe.ThreadFailure)
//	40..47   internal/skel
//	48..55   internal/workloads/euler
//	56..63   internal/workloads/apsp
//	64..71   internal/workloads/matmul
//	72..79   internal/nativeeden (ports)

// EncodeError reports a value the codec cannot encode: a type with no
// builtin rule and no registered codec.
type EncodeError struct {
	// Type is the offending value's dynamic type, rendered with %T.
	Type string
}

func (e *EncodeError) Error() string {
	return fmt.Sprintf("wire: no codec registered for message type %s", e.Type)
}

// SizeMismatchError reports that a value's encoding came out a
// different length than eden.SizeOfChecked promised — a bug in a
// PackedSize implementation or a registered encoder, surfaced at the
// send that would have shipped the wrong byte count.
type SizeMismatchError struct {
	Type      string
	Got, Want int64
}

func (e *SizeMismatchError) Error() string {
	return fmt.Sprintf("wire: %s encoded to %d bytes but eden.SizeOfChecked charges %d; its PackedSize and codec disagree", e.Type, e.Got, e.Want)
}

// DecodeError is the structured failure for malformed wire input:
// truncation, an unknown tag, an implausible count, or trailing bytes.
type DecodeError struct {
	// Off is the byte offset the decoder had reached.
	Off int
	// Reason says what was wrong there.
	Reason string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("wire: malformed message at byte %d: %s", e.Off, e.Reason)
}

// EncFunc encodes one value of a registered type. The header has
// already been written; the function appends the payload via the Enc
// helpers.
type EncFunc func(e *Enc, v graph.Value) error

// DecFunc decodes one value of a registered type. The header has
// already been consumed; the function must return a value of exactly
// the registered dynamic type.
type DecFunc func(d *Dec) (graph.Value, error)

type codec struct {
	tag uint32
	typ reflect.Type
	enc EncFunc
	dec DecFunc
}

var (
	byTag  = map[uint32]*codec{}
	byType = map[reflect.Type]*codec{}
)

// Register installs the codec for one named message type, keyed by
// proto's dynamic type. Tags are static per type and must be >= TagUser
// and unique; collisions panic at init time (a build misconfiguration,
// not a runtime condition).
func Register(tag uint32, proto graph.Value, enc EncFunc, dec DecFunc) {
	if tag < TagUser {
		panic(fmt.Sprintf("wire: tag %d for %T collides with the builtin range", tag, proto))
	}
	t := reflect.TypeOf(proto)
	if t == nil {
		panic("wire: cannot register the nil interface")
	}
	if prev, ok := byTag[tag]; ok {
		panic(fmt.Sprintf("wire: tag %d registered twice (%v and %v)", tag, prev.typ, t))
	}
	if _, ok := byType[t]; ok {
		panic(fmt.Sprintf("wire: type %v registered twice", t))
	}
	c := &codec{tag: tag, typ: t, enc: enc, dec: dec}
	byTag[tag] = c
	byType[t] = c
}

// RegisteredProtos returns one zero-ish prototype per registered named
// type (test support: the round-trip property suite iterates these).
func RegisteredProtos() []graph.Value {
	out := make([]graph.Value, 0, len(byType))
	for t := range byType {
		out = append(out, reflect.Zero(t).Interface())
	}
	return out
}

// Encode packs v into its wire form and asserts the byte count against
// the packing model: len(result) == eden.SizeOfChecked(v), always. Any
// disagreement between a type's PackedSize and its codec is returned
// as a *SizeMismatchError at the first send instead of silently
// skewing the byte telemetry.
func Encode(v graph.Value) ([]byte, error) {
	want, err := eden.SizeOfChecked(v)
	if err != nil {
		return nil, err
	}
	e := &Enc{b: make([]byte, 0, want)}
	if err := e.Value(v); err != nil {
		return nil, err
	}
	if int64(len(e.b)) != want {
		return nil, &SizeMismatchError{Type: fmt.Sprintf("%T", v), Got: int64(len(e.b)), Want: want}
	}
	return e.b, nil
}

// Decode is the inverse of Encode: it rebuilds the value (with its
// exact dynamic type) from b, consuming all of it. Malformed input —
// truncated, trailing bytes, unknown tags, implausible counts —
// returns a structured error and never panics.
func Decode(b []byte) (graph.Value, error) {
	d := &Dec{b: b}
	v, err := d.Value()
	if err != nil {
		return nil, err
	}
	if d.off != len(d.b) {
		return nil, &DecodeError{Off: d.off, Reason: fmt.Sprintf("%d trailing bytes", len(d.b)-d.off)}
	}
	return v, nil
}

// --- encoder ---

// Enc accumulates one value's wire bytes. Registered encoders use its
// helpers so every field follows the shared layout rules.
type Enc struct {
	b []byte
}

// Bytes returns the accumulated encoding.
func (e *Enc) Bytes() []byte { return e.b }

func (e *Enc) hdr(tag uint32) {
	e.b = binary.LittleEndian.AppendUint32(e.b, tag)
	e.b = binary.LittleEndian.AppendUint32(e.b, 0)
}

// U64 appends one unsigned 8-byte word.
func (e *Enc) U64(x uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, x) }

// I64 appends one signed 8-byte word.
func (e *Enc) I64(x int64) { e.U64(uint64(x)) }

// F64 appends one float64 word.
func (e *Enc) F64(x float64) { e.U64(math.Float64bits(x)) }

// Str appends a length-prefixed string (8-byte length + raw bytes).
func (e *Enc) Str(s string) {
	e.U64(uint64(len(s)))
	e.b = append(e.b, s...)
}

// Pad appends n zero bytes (reserved words in fixed-size layouts whose
// PackedSize predates the codec).
func (e *Enc) Pad(n int) {
	for i := 0; i < n; i++ {
		e.b = append(e.b, 0)
	}
}

// I32s appends a packed int32 array: an 8-byte count plus 4 bytes per
// element (8 + 4n bytes total, the layout pivot rows are charged at).
func (e *Enc) I32s(xs []int32) {
	e.U64(uint64(len(xs)))
	for _, x := range xs {
		e.b = binary.LittleEndian.AppendUint32(e.b, uint32(x))
	}
}

// F64s appends a packed float64 array (8-byte count + 8 bytes per
// element).
func (e *Enc) F64s(xs []float64) {
	e.U64(uint64(len(xs)))
	for _, x := range xs {
		e.F64(x)
	}
}

// I64s appends a packed int64 array.
func (e *Enc) I64s(xs []int64) {
	e.U64(uint64(len(xs)))
	for _, x := range xs {
		e.I64(x)
	}
}

// Value appends one complete nested value (header + payload) at its
// full packed size.
func (e *Enc) Value(v graph.Value) error {
	switch x := v.(type) {
	case nil:
		e.hdr(tagNilValue)
		e.U64(0)
	case bool:
		e.hdr(tagBool)
		if x {
			e.U64(1)
		} else {
			e.U64(0)
		}
	case int:
		e.hdr(tagInt)
		e.I64(int64(x))
	case int32:
		e.hdr(tagInt32)
		e.I64(int64(x))
	case int64:
		e.hdr(tagInt64)
		e.I64(x)
	case uint64:
		e.hdr(tagUint64)
		e.U64(x)
	case float32:
		e.hdr(tagFloat32)
		e.U64(uint64(math.Float32bits(x)))
	case float64:
		e.hdr(tagFloat64)
		e.F64(x)
	case string:
		e.hdr(tagString)
		e.Str(x)
	case []int:
		e.hdr(tagIntSlice)
		e.U64(uint64(len(x)))
		for _, n := range x {
			e.I64(int64(n))
		}
	case []int64:
		e.hdr(tagInt64Slice)
		e.I64s(x)
	case []int32:
		e.hdr(tagInt32Slice)
		e.I32s(x)
	case []float64:
		e.hdr(tagFloat64Slice)
		e.F64s(x)
	case [][]float64:
		e.hdr(tagFloat64Grid)
		e.U64(uint64(len(x)))
		for _, row := range x {
			if err := e.Value(row); err != nil {
				return err
			}
		}
	case [][]int:
		e.hdr(tagIntGrid)
		e.U64(uint64(len(x)))
		for _, row := range x {
			if err := e.Value(row); err != nil {
				return err
			}
		}
	case [][]int32:
		e.hdr(tagInt32Grid)
		e.U64(uint64(len(x)))
		for _, row := range x {
			if err := e.Value(row); err != nil {
				return err
			}
		}
	case []graph.Value:
		e.hdr(tagValueSlice)
		e.U64(uint64(len(x)))
		for _, el := range x {
			if err := e.Value(el); err != nil {
				return err
			}
		}
	case eden.Nil:
		e.hdr(tagEdenNil)
		e.U64(0)
	case *graph.Thunk:
		// An evaluated thunk ships as its value node, exactly as
		// SizeOfChecked sizes it; unevaluated graph is the sender's
		// normal-form violation.
		if !x.IsEvaluated() {
			return &eden.UnevaluatedError{State: x.State()}
		}
		return e.Value(x.Value())
	default:
		c := byType[reflect.TypeOf(v)]
		if c == nil {
			return &EncodeError{Type: fmt.Sprintf("%T", v)}
		}
		e.hdr(c.tag)
		return c.enc(e, v)
	}
	return nil
}

// --- decoder ---

// maxDepth bounds value nesting so adversarial input cannot overflow
// the decoder's stack; real messages nest a handful of levels.
const maxDepth = 64

// Dec consumes one value's wire bytes. Every read checks bounds and
// returns a *DecodeError on truncation, so registered decoders can
// propagate errors without their own length bookkeeping.
type Dec struct {
	b     []byte
	off   int
	depth int
}

func (d *Dec) fail(reason string) error { return &DecodeError{Off: d.off, Reason: reason} }

func (d *Dec) need(n int) error {
	if len(d.b)-d.off < n {
		return d.fail(fmt.Sprintf("truncated: need %d bytes, have %d", n, len(d.b)-d.off))
	}
	return nil
}

// U64 reads one unsigned 8-byte word.
func (d *Dec) U64() (uint64, error) {
	if err := d.need(8); err != nil {
		return 0, err
	}
	x := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return x, nil
}

// I64 reads one signed 8-byte word.
func (d *Dec) I64() (int64, error) {
	x, err := d.U64()
	return int64(x), err
}

// F64 reads one float64 word.
func (d *Dec) F64() (float64, error) {
	x, err := d.U64()
	return math.Float64frombits(x), err
}

// Str reads a length-prefixed string.
func (d *Dec) Str() (string, error) {
	n, err := d.U64()
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.b)-d.off) {
		return "", d.fail(fmt.Sprintf("string length %d exceeds remaining %d bytes", n, len(d.b)-d.off))
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

// Skip consumes n reserved bytes.
func (d *Dec) Skip(n int) error {
	if err := d.need(n); err != nil {
		return err
	}
	d.off += n
	return nil
}

// count reads an element count and sanity-checks it against the
// remaining input, given a minimum encoded size per element — the
// guard that keeps a corrupt count from turning into a huge
// allocation.
func (d *Dec) count(minElem int) (int, error) {
	n, err := d.U64()
	if err != nil {
		return 0, err
	}
	if minElem > 0 && n > uint64(len(d.b)-d.off)/uint64(minElem) {
		return 0, d.fail(fmt.Sprintf("count %d exceeds remaining input", n))
	}
	return int(n), nil
}

// I32s reads a packed int32 array (count + 4 bytes per element).
func (d *Dec) I32s() ([]int32, error) {
	n, err := d.count(4)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil // nil and empty slices both ship as count 0
	}
	out := make([]int32, n)
	for i := range out {
		x := binary.LittleEndian.Uint32(d.b[d.off:])
		d.off += 4
		out[i] = int32(x)
	}
	return out, nil
}

// F64s reads a packed float64 array.
func (d *Dec) F64s() ([]float64, error) {
	n, err := d.count(8)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i], _ = d.F64()
	}
	return out, nil
}

// I64s reads a packed int64 array.
func (d *Dec) I64s() ([]int64, error) {
	n, err := d.count(8)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i], _ = d.I64()
	}
	return out, nil
}

// Value reads one complete nested value (header + payload).
func (d *Dec) Value() (graph.Value, error) {
	if d.depth++; d.depth > maxDepth {
		return nil, d.fail("value nesting exceeds limit")
	}
	defer func() { d.depth-- }()
	if err := d.need(8); err != nil {
		return nil, err
	}
	tag := binary.LittleEndian.Uint32(d.b[d.off:])
	aux := binary.LittleEndian.Uint32(d.b[d.off+4:])
	d.off += 8
	if aux != 0 {
		return nil, d.fail(fmt.Sprintf("reserved header word is %#x, want 0", aux))
	}
	switch tag {
	case tagNilValue:
		_, err := d.U64()
		return nil, err
	case tagBool:
		x, err := d.U64()
		if err != nil {
			return nil, err
		}
		if x > 1 {
			return nil, d.fail(fmt.Sprintf("bool payload %d", x))
		}
		return x == 1, nil
	case tagInt:
		x, err := d.I64()
		return int(x), err
	case tagInt32:
		x, err := d.I64()
		if int64(int32(x)) != x {
			return nil, d.fail(fmt.Sprintf("int32 payload %d overflows", x))
		}
		return int32(x), err
	case tagInt64:
		return d.I64()
	case tagUint64:
		return d.U64()
	case tagFloat32:
		x, err := d.U64()
		if err != nil {
			return nil, err
		}
		if x > math.MaxUint32 {
			return nil, d.fail(fmt.Sprintf("float32 payload %#x overflows", x))
		}
		return math.Float32frombits(uint32(x)), nil
	case tagFloat64:
		return d.F64()
	case tagString:
		return d.Str()
	case tagIntSlice:
		n, err := d.count(8)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return []int(nil), nil
		}
		out := make([]int, n)
		for i := range out {
			x, _ := d.I64()
			out[i] = int(x)
		}
		return out, nil
	case tagInt64Slice:
		return d.I64s()
	case tagInt32Slice:
		return d.I32s()
	case tagFloat64Slice:
		return d.F64s()
	case tagFloat64Grid:
		n, err := d.count(16)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return [][]float64(nil), nil
		}
		out := make([][]float64, n)
		for i := range out {
			row, err := d.Value()
			if err != nil {
				return nil, err
			}
			r, ok := row.([]float64)
			if !ok {
				return nil, d.fail(fmt.Sprintf("grid row %d is %T, want []float64", i, row))
			}
			out[i] = r
		}
		return out, nil
	case tagIntGrid:
		n, err := d.count(16)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return [][]int(nil), nil
		}
		out := make([][]int, n)
		for i := range out {
			row, err := d.Value()
			if err != nil {
				return nil, err
			}
			r, ok := row.([]int)
			if !ok {
				return nil, d.fail(fmt.Sprintf("grid row %d is %T, want []int", i, row))
			}
			out[i] = r
		}
		return out, nil
	case tagInt32Grid:
		n, err := d.count(16)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return [][]int32(nil), nil
		}
		out := make([][]int32, n)
		for i := range out {
			row, err := d.Value()
			if err != nil {
				return nil, err
			}
			r, ok := row.([]int32)
			if !ok {
				return nil, d.fail(fmt.Sprintf("grid row %d is %T, want []int32", i, row))
			}
			out[i] = r
		}
		return out, nil
	case tagValueSlice:
		n, err := d.count(16)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return []graph.Value(nil), nil
		}
		out := make([]graph.Value, n)
		for i := range out {
			el, err := d.Value()
			if err != nil {
				return nil, err
			}
			out[i] = el
		}
		return out, nil
	case tagEdenNil:
		_, err := d.U64()
		return eden.Nil{}, err
	default:
		c := byTag[tag]
		if c == nil {
			return nil, d.fail(fmt.Sprintf("unknown type tag %d", tag))
		}
		return c.dec(d)
	}
}
