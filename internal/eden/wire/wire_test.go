package wire_test

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"parhask/internal/eden"
	"parhask/internal/eden/wire"
	"parhask/internal/graph"
	_ "parhask/internal/nativeeden" // port codecs
	"parhask/internal/pe"
	_ "parhask/internal/skel"             // KV, mwResult codecs
	_ "parhask/internal/workloads/apsp"   // Graph, ringInput, pivotMsg codecs
	_ "parhask/internal/workloads/euler"  // Range codec
	_ "parhask/internal/workloads/matmul" // Mat, cannonInput, blockMsg codecs
)

// corpus returns representative values of every encodable shape: the
// builtin types plus non-trivial instances reachable through the
// registered named types' public construction paths (the unexported
// packets travel nested inside skeleton traffic and are exercised by
// the cluster integration tests; here the registry's protos stand in
// for them).
func corpus() []graph.Value {
	vals := []graph.Value{
		nil,
		true, false,
		int(-7), int32(123), int64(1 << 40), uint64(math.MaxUint64),
		float32(1.5), float64(-2.25), math.Inf(1), math.NaN(),
		"", "hello wire",
		[]int{1, -2, 3},
		[]int64{1 << 50},
		[]int32{4, 5, 6, 7},
		[]float64{0.5, -0.25},
		[][]float64{{1, 2}, {3}},
		// Nil and empty slices both ship as count 0 and decode to nil,
		// so the corpus uses non-empty rows for exact deep equality.
		[][]int{{9}, {10, 11}},
		[][]int32{{1, 2, 3}},
		[]graph.Value{int(1), "two", []float64{3}},
		eden.Nil{},
		pe.ThreadFailure{PE: 3, Name: "worker-3", Err: "boom"},
	}
	// Every registered named type, at least as its zero prototype, so a
	// newly registered codec joins the property suite automatically.
	vals = append(vals, wire.RegisteredProtos()...)
	return vals
}

// TestRoundTripProperty: decode(encode(v)) deep-equals v with the same
// dynamic type, and the encoded length equals the packing model's
// charge — the assertion that makes eden.SizeOfChecked the actual
// bytes on the wire.
func TestRoundTripProperty(t *testing.T) {
	for _, v := range corpus() {
		b, err := wire.Encode(v)
		if err != nil {
			t.Fatalf("Encode(%#v): %v", v, err)
		}
		want, err := eden.SizeOfChecked(v)
		if err != nil {
			t.Fatalf("SizeOfChecked(%#v): %v", v, err)
		}
		if int64(len(b)) != want {
			t.Fatalf("len(Encode(%#v)) = %d, SizeOfChecked = %d", v, len(b), want)
		}
		got, err := wire.Decode(b)
		if err != nil {
			t.Fatalf("Decode(Encode(%#v)): %v", v, err)
		}
		if !deepEqualNaN(got, v) {
			t.Fatalf("round trip of %#v (%T) gave %#v (%T)", v, v, got, got)
		}
	}
}

// deepEqualNaN is reflect.DeepEqual except NaN == NaN (bit-exact float
// round-tripping is part of the property).
func deepEqualNaN(a, b graph.Value) bool {
	if af, ok := a.(float64); ok {
		if bf, ok := b.(float64); ok {
			return math.Float64bits(af) == math.Float64bits(bf)
		}
	}
	return reflect.DeepEqual(a, b)
}

// TestRoundTripSharesNoHeap is the mutation probe: decoding must build
// a fresh heap, so mutating the decoded value cannot be visible
// through the original (and vice versa) — the property that lets the
// cluster runtime resolve decoded values straight into a PE's private
// heap.
func TestRoundTripSharesNoHeap(t *testing.T) {
	orig := [][]float64{{1, 2}, {3, 4}}
	b, err := wire.Encode(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wire.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	m := got.([][]float64)
	m[0][0] = 99
	m[1] = append(m[1], 5)
	if orig[0][0] != 1 || len(orig[1]) != 2 {
		t.Fatalf("decoded value shares heap with the original: %v", orig)
	}

	nested := []graph.Value{[]int32{7, 8}, "s"}
	b, err = wire.Encode(nested)
	if err != nil {
		t.Fatal(err)
	}
	got, err = wire.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	got.([]graph.Value)[0].([]int32)[0] = -1
	if nested[0].([]int32)[0] != 7 {
		t.Fatal("nested decoded slice shares heap with the original")
	}
}

// TestEvaluatedThunkEncodesAsValue: normal-form graph ships as its
// value node; unevaluated graph is the sender's error.
func TestEvaluatedThunkEncodesAsValue(t *testing.T) {
	th := graph.NewValue([]int{1, 2})
	b, err := wire.Encode(th)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wire.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("thunk round trip gave %#v", got)
	}

	if _, err := wire.Encode(graph.NewPlaceholder()); err == nil {
		t.Fatal("encoding an unevaluated thunk must fail")
	} else {
		var ue *eden.UnevaluatedError
		if !errors.As(err, &ue) {
			t.Fatalf("error = %v, want *eden.UnevaluatedError", err)
		}
	}
}

// TestEncodeUnknownType: a type with no codec is a structured error.
func TestEncodeUnknownType(t *testing.T) {
	type mystery struct{ X int }
	_, err := wire.Encode(mystery{1})
	var se *eden.UnsizedTypeError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *eden.UnsizedTypeError (unsized before unknown)", err)
	}
}

// TestDecodeTruncated: every strict prefix of a valid encoding decodes
// to a structured error — never a panic, never a value.
func TestDecodeTruncated(t *testing.T) {
	for _, v := range corpus() {
		b, err := wire.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(b); cut++ {
			if _, err := wire.Decode(b[:cut]); err == nil {
				t.Fatalf("Decode of %d/%d-byte prefix of %#v succeeded", cut, len(b), v)
			}
		}
	}
}

// TestDecodeCorrupted: random single-byte flips either decode to some
// valid value or return a structured error; the decoder must never
// panic. Seeded, so a failure replays.
func TestDecodeCorrupted(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, v := range corpus() {
		b, err := wire.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 200; trial++ {
			mut := append([]byte(nil), b...)
			mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("Decode panicked on corrupted input of %#v: %v", v, p)
					}
				}()
				if _, err := wire.Decode(mut); err != nil {
					var de *wire.DecodeError
					if !errors.As(err, &de) {
						t.Fatalf("corruption error is %T (%v), want *wire.DecodeError", err, err)
					}
				}
			}()
		}
	}
}

// TestDecodeGarbage: arbitrary random bytes never panic the decoder.
func TestDecodeGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("Decode panicked on %x: %v", b, p)
				}
			}()
			_, _ = wire.Decode(b)
		}()
	}
}

// TestDecodeHugeCountRejected: a corrupt length prefix claiming more
// elements than the input could hold must fail fast instead of
// attempting the allocation.
func TestDecodeHugeCountRejected(t *testing.T) {
	b, err := wire.Encode([]int64{1})
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the count word (bytes 8..15) with a huge value.
	for i := 8; i < 16; i++ {
		b[i] = 0xff
	}
	if _, err := wire.Decode(b); err == nil {
		t.Fatal("huge count must be rejected")
	}
}
