package wire

import (
	"parhask/internal/graph"
	"parhask/internal/pe"
)

// pe.ThreadFailure is the supervised-spawn death notice; it crosses
// heaps (and now processes) on verdict channels. Package pe sits below
// eden in the import graph and cannot import wire, so its codec lives
// here.
func init() {
	Register(tagThreadFailure, pe.ThreadFailure{},
		func(e *Enc, v graph.Value) error {
			f := v.(pe.ThreadFailure)
			e.I64(int64(f.PE))
			e.Str(f.Name)
			e.Str(f.Err)
			return nil
		},
		func(d *Dec) (graph.Value, error) {
			peID, err := d.I64()
			if err != nil {
				return nil, err
			}
			name, err := d.Str()
			if err != nil {
				return nil, err
			}
			msg, err := d.Str()
			if err != nil {
				return nil, err
			}
			return pe.ThreadFailure{PE: int(peID), Name: name, Err: msg}, nil
		})
}
