package eden

import (
	"fmt"

	"parhask/internal/graph"
	"parhask/internal/rts"
	"parhask/internal/trace"
)

// PCtx is the execution context of an Eden process thread: the generic
// runtime context plus the Eden coordination operations (channels,
// streams, process instantiation).
type PCtx struct {
	*rts.Ctx
	rts *RTS
}

// PE returns the index of the PE this process thread is running on.
func (p *PCtx) PE() int { return p.Cap().Index }

// PEs returns the total number of processing elements.
func (p *PCtx) PEs() int { return len(p.rts.pes) }

// AddResident declares long-lived heap data on the current PE (e.g. an
// input matrix block), included in its local GC live-data estimate.
func (p *PCtx) AddResident(bytes int64) {
	p.rts.pe(p.Cap()).resident += bytes
}

// Spawn instantiates a process on the given PE (modulo the PE count):
// the remote runtime creates a thread running body. The instantiation
// cost is charged to the caller and the creation message takes the
// transport latency to arrive, as in Eden's remote process creation.
func (p *PCtx) Spawn(pe int, name string, body func(*PCtx)) {
	r := p.rts
	pe = ((pe % len(r.pes)) + len(r.pes)) % len(r.pes)
	p.Burn(p.Cap().Costs.ProcessCreate)
	r.stats.Processes++
	target := r.pes[pe]
	r.sim.After(p.Cap().Costs.MsgLatency, func() {
		th := target.cap.NewThread(name, func(ctx *rts.Ctx) {
			body(&PCtx{Ctx: ctx, rts: r})
		})
		target.cap.Enqueue(th)
	})
}

// Fork starts an additional thread of the current process on the same
// PE (Eden evaluates tuple components in independent threads; this is
// the primitive those use).
func (p *PCtx) ForkLocal(name string, body func(*PCtx)) {
	r := p.rts
	p.Fork(name, func(ctx *rts.Ctx) {
		body(&PCtx{Ctx: ctx, rts: r})
	})
}

// --- Single-value channels ---

// Inport is the receiving end of a one-value channel, owned by a PE.
type Inport struct {
	pe   int
	cell *graph.Thunk
}

// Outport is the sending end of a one-value channel.
type Outport struct {
	dest int
	cell *graph.Thunk
}

// NewChan creates a one-value channel whose receiving end lives on PE
// dest. The creator is charged the channel setup cost.
func (p *PCtx) NewChan(dest int) (*Inport, *Outport) {
	p.Burn(p.Cap().Costs.ChanCreate)
	cell := graph.NewPlaceholder()
	return &Inport{pe: dest, cell: cell}, &Outport{dest: dest, cell: cell}
}

// Send reduces v to normal form, packs it, and ships it to the channel's
// destination PE. Each channel carries exactly one value.
func (p *PCtx) Send(out *Outport, v graph.Value) {
	nf := p.ForceDeep(v)
	p.sendPacket(out.dest, out.cell, nf, SizeOf(nf))
}

// Receive forces the channel's placeholder; it must be called on the
// channel's owning PE and blocks until the value has arrived.
func (p *PCtx) Receive(in *Inport) graph.Value {
	if in.pe != p.PE() {
		panic(fmt.Sprintf("eden: Receive on PE %d for a channel owned by PE %d (channels are single-reader)", p.PE(), in.pe))
	}
	return p.Force(in.cell)
}

// --- Stream channels (top-level lists, sent element by element) ---

// Cons is one transmitted stream element: the head value plus the
// placeholder for the rest of the stream.
type Cons struct {
	Head graph.Value
	Tail *graph.Thunk
}

// Nil terminates a stream.
type Nil struct{}

// StreamIn is the receiving end of a stream channel.
type StreamIn struct {
	pe  int
	cur *graph.Thunk
}

// StreamOut is the sending end of a stream channel.
type StreamOut struct {
	dest int
	cur  *graph.Thunk
}

// NewStream creates a stream channel whose receiving end lives on PE
// dest.
func (p *PCtx) NewStream(dest int) (*StreamIn, *StreamOut) {
	p.Burn(p.Cap().Costs.ChanCreate)
	cell := graph.NewPlaceholder()
	return &StreamIn{pe: dest, cur: cell}, &StreamOut{dest: dest, cur: cell}
}

// StreamSend transmits one element: the head is reduced to normal form
// and sent as its own message (Eden's element-by-element list
// communication).
func (p *PCtx) StreamSend(out *StreamOut, v graph.Value) {
	nf := p.ForceDeep(v)
	next := graph.NewPlaceholder()
	p.sendPacket(out.dest, out.cur, Cons{Head: nf, Tail: next}, SizeOf(nf)+consOverhead)
	out.cur = next
}

// StreamClose terminates the stream; the receiver's next StreamRecv
// reports ok=false.
func (p *PCtx) StreamClose(out *StreamOut) {
	p.sendPacket(out.dest, out.cur, Nil{}, consOverhead)
	out.cur = nil
}

// StreamRecv receives the next element, blocking until it arrives;
// ok is false when the stream has been closed.
func (p *PCtx) StreamRecv(in *StreamIn) (v graph.Value, ok bool) {
	if in.pe != p.PE() {
		panic(fmt.Sprintf("eden: StreamRecv on PE %d for a stream owned by PE %d", p.PE(), in.pe))
	}
	switch x := p.Force(in.cur).(type) {
	case Cons:
		in.cur = x.Tail
		return x.Head, true
	case Nil:
		return nil, false
	default:
		panic(fmt.Sprintf("eden: malformed stream cell %T", x))
	}
}

// RecvAll drains a stream into a slice.
func (p *PCtx) RecvAll(in *StreamIn) []graph.Value {
	var out []graph.Value
	for {
		v, ok := p.StreamRecv(in)
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// SendAll sends every element of xs and closes the stream.
func (p *PCtx) SendAll(out *StreamOut, xs []graph.Value) {
	for _, x := range xs {
		p.StreamSend(out, x)
	}
	p.StreamClose(out)
}

// sendPacket packs a value (charging the per-message + per-byte cost to
// the sender) and hands it to the transport.
func (p *PCtx) sendPacket(dest int, cell *graph.Thunk, val graph.Value, bytes int64) {
	costs := p.Cap().Costs
	p.Cap().SetState(trace.Comm)
	p.Burn(costs.MsgFixed + int64(costs.MsgPerByte*float64(bytes)))
	p.Cap().SetState(trace.Run)
	r := p.rts
	r.stats.Messages++
	r.stats.BytesSent += bytes
	r.deliver(dest, message{cell: cell, val: val, bytes: bytes})
}

// LocalResolve fills a placeholder that lives on the current PE without
// going through the transport: an intra-process synchronisation variable
// (MVar-like), used by skeletons to join local collector threads.
func (p *PCtx) LocalResolve(cell *graph.Thunk, v graph.Value) {
	ws := cell.Resolve(v)
	p.Cap().WakeWaiterList(ws)
}

// Await forces a local placeholder (blocking until LocalResolve or a
// message fills it).
func (p *PCtx) Await(cell *graph.Thunk) graph.Value { return p.Force(cell) }
