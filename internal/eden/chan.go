package eden

import (
	"fmt"

	"parhask/internal/graph"
	"parhask/internal/pe"
	"parhask/internal/rts"
	"parhask/internal/trace"
)

// PCtx is the execution context of an Eden process thread: the generic
// runtime context plus the Eden coordination operations (channels,
// streams, process instantiation). It implements pe.Ctx, so skeletons
// and workload programs written against the backend-neutral interface
// run on the simulator unchanged.
type PCtx struct {
	*rts.Ctx
	rts *RTS
}

var _ pe.Ctx = (*PCtx)(nil)

// PE returns the index of the PE this process thread is running on.
func (p *PCtx) PE() int { return p.Cap().Index }

// PEs returns the total number of processing elements.
func (p *PCtx) PEs() int { return len(p.rts.pes) }

// AddResident declares long-lived heap data on the current PE (e.g. an
// input matrix block), included in its local GC live-data estimate.
func (p *PCtx) AddResident(bytes int64) {
	p.rts.pe(p.Cap()).resident += bytes
}

// Spawn instantiates a process on the given PE (modulo the PE count):
// the remote runtime creates a thread running body. The instantiation
// cost is charged to the caller and the creation message takes the
// transport latency to arrive, as in Eden's remote process creation.
func (p *PCtx) Spawn(dest int, name string, body func(pe.Ctx)) {
	r := p.rts
	dest = ((dest % len(r.pes)) + len(r.pes)) % len(r.pes)
	p.Burn(p.Cap().Costs.ProcessCreate)
	r.stats.Processes++
	target := r.pes[dest]
	r.sim.After(p.Cap().Costs.MsgLatency, func() {
		th := target.cap.NewThread(name, func(ctx *rts.Ctx) {
			body(&PCtx{Ctx: ctx, rts: r})
		})
		target.cap.Enqueue(th)
	})
}

// ForkLocal starts an additional thread of the current process on the
// same PE (Eden evaluates tuple components in independent threads; this
// is the primitive those use).
func (p *PCtx) ForkLocal(name string, body func(pe.Ctx)) {
	r := p.rts
	p.Fork(name, func(ctx *rts.Ctx) {
		body(&PCtx{Ctx: ctx, rts: r})
	})
}

// --- Single-value channels ---

// Inport is the receiving end of a one-value channel, owned by a PE.
type Inport struct {
	id   int64
	pe   int
	cell *graph.Thunk
}

// InPE implements pe.Inport.
func (in *Inport) InPE() int { return in.pe }

// PackedSize implements Sized: a port packs as a wire header plus its
// {channel id, PE} words — the heap cell it names stays behind.
func (in *Inport) PackedSize() int64 { return 24 }

// Outport is the sending end of a one-value channel.
type Outport struct {
	id   int64
	dest int
	cell *graph.Thunk
}

// OutPE implements pe.Outport.
func (out *Outport) OutPE() int { return out.dest }

// PackedSize implements Sized.
func (out *Outport) PackedSize() int64 { return 24 }

// NewChan creates a one-value channel whose receiving end lives on PE
// dest. The creator is charged the channel setup cost.
func (p *PCtx) NewChan(dest int) (pe.Inport, pe.Outport) {
	p.Burn(p.Cap().Costs.ChanCreate)
	id := p.rts.nextChan()
	cell := graph.NewPlaceholder()
	return &Inport{id: id, pe: dest, cell: cell}, &Outport{id: id, dest: dest, cell: cell}
}

// Send reduces v to normal form, packs it, and ships it to the channel's
// destination PE. Each channel carries exactly one value. A value that
// still contains unevaluated graph is a normal-form violation: Send
// panics with a *SendError naming the channel, the sending PE and the
// thunk state.
func (p *PCtx) Send(out pe.Outport, v graph.Value) {
	o := out.(*Outport)
	nf := p.ForceDeep(v)
	bytes, err := SizeOfChecked(nf)
	if err != nil {
		panic(&SendError{Op: "Send", Chan: o.id, PE: p.PE(), Dest: o.dest, Err: err})
	}
	p.sendPacket(o.dest, o.cell, nf, bytes)
}

// Receive forces the channel's placeholder; it must be called on the
// channel's owning PE and blocks until the value has arrived.
func (p *PCtx) Receive(in pe.Inport) graph.Value {
	i := in.(*Inport)
	if i.pe != p.PE() {
		panic(fmt.Sprintf("eden: Receive on PE %d for a channel owned by PE %d (channels are single-reader)", p.PE(), i.pe))
	}
	return p.Force(i.cell)
}

// --- Stream channels (top-level lists, sent element by element) ---

// Cons is one transmitted stream element: the head value plus the
// placeholder for the rest of the stream.
type Cons struct {
	Head graph.Value
	Tail *graph.Thunk
}

// Nil terminates a stream.
type Nil struct{}

// StreamIn is the receiving end of a stream channel.
type StreamIn struct {
	id  int64
	pe  int
	cur *graph.Thunk
}

// StreamInPE implements pe.StreamIn.
func (in *StreamIn) StreamInPE() int { return in.pe }

// PackedSize implements Sized.
func (in *StreamIn) PackedSize() int64 { return 24 }

// StreamOut is the sending end of a stream channel.
type StreamOut struct {
	id   int64
	dest int
	cur  *graph.Thunk
}

// StreamOutPE implements pe.StreamOut.
func (out *StreamOut) StreamOutPE() int { return out.dest }

// PackedSize implements Sized.
func (out *StreamOut) PackedSize() int64 { return 24 }

// NewStream creates a stream channel whose receiving end lives on PE
// dest.
func (p *PCtx) NewStream(dest int) (pe.StreamIn, pe.StreamOut) {
	p.Burn(p.Cap().Costs.ChanCreate)
	id := p.rts.nextChan()
	cell := graph.NewPlaceholder()
	return &StreamIn{id: id, pe: dest, cur: cell}, &StreamOut{id: id, dest: dest, cur: cell}
}

// StreamSend transmits one element: the head is reduced to normal form
// and sent as its own message (Eden's element-by-element list
// communication). Like Send, it panics with a *SendError when the
// element is not in normal form.
func (p *PCtx) StreamSend(out pe.StreamOut, v graph.Value) {
	o := out.(*StreamOut)
	nf := p.ForceDeep(v)
	bytes, err := SizeOfChecked(nf)
	if err != nil {
		panic(&SendError{Op: "StreamSend", Chan: o.id, PE: p.PE(), Dest: o.dest, Err: err})
	}
	next := graph.NewPlaceholder()
	p.sendPacket(o.dest, o.cur, Cons{Head: nf, Tail: next}, bytes+consOverhead)
	o.cur = next
}

// StreamClose terminates the stream; the receiver's next StreamRecv
// reports ok=false.
func (p *PCtx) StreamClose(out pe.StreamOut) {
	o := out.(*StreamOut)
	p.sendPacket(o.dest, o.cur, Nil{}, consOverhead)
	o.cur = nil
}

// StreamRecv receives the next element, blocking until it arrives;
// ok is false when the stream has been closed.
func (p *PCtx) StreamRecv(in pe.StreamIn) (v graph.Value, ok bool) {
	i := in.(*StreamIn)
	if i.pe != p.PE() {
		panic(fmt.Sprintf("eden: StreamRecv on PE %d for a stream owned by PE %d", p.PE(), i.pe))
	}
	switch x := p.Force(i.cur).(type) {
	case Cons:
		i.cur = x.Tail
		return x.Head, true
	case Nil:
		return nil, false
	default:
		panic(fmt.Sprintf("eden: malformed stream cell %T", x))
	}
}

// RecvAll drains a stream into a slice.
func (p *PCtx) RecvAll(in pe.StreamIn) []graph.Value {
	var out []graph.Value
	for {
		v, ok := p.StreamRecv(in)
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// SendAll sends every element of xs and closes the stream.
func (p *PCtx) SendAll(out pe.StreamOut, xs []graph.Value) {
	for _, x := range xs {
		p.StreamSend(out, x)
	}
	p.StreamClose(out)
}

// sendPacket packs a value (charging the per-message + per-byte cost to
// the sender) and hands it to the transport.
func (p *PCtx) sendPacket(dest int, cell *graph.Thunk, val graph.Value, bytes int64) {
	costs := p.Cap().Costs
	p.Cap().SetState(trace.Comm)
	p.Burn(costs.MsgFixed + int64(costs.MsgPerByte*float64(bytes)))
	p.Cap().SetState(trace.Run)
	r := p.rts
	r.stats.Messages++
	r.stats.BytesSent += bytes
	r.deliver(dest, message{cell: cell, val: val, bytes: bytes})
}

// LocalResolve fills a placeholder that lives on the current PE without
// going through the transport: an intra-process synchronisation variable
// (MVar-like), used by skeletons to join local collector threads.
func (p *PCtx) LocalResolve(cell *graph.Thunk, v graph.Value) {
	ws := cell.Resolve(v)
	p.Cap().WakeWaiterList(ws)
}

// Await forces a local placeholder (blocking until LocalResolve or a
// message fills it).
func (p *PCtx) Await(cell *graph.Thunk) graph.Value { return p.Force(cell) }
