package experiments

import (
	"runtime/debug"
	"testing"

	"parhask/internal/native"
)

func TestParseGOGCList(t *testing.T) {
	got, err := ParseGOGCList("50, 100,off")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{50, 100, native.GCOff}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"", "0", "-5", "fast", "100;200"} {
		if _, err := ParseGOGCList(bad); err == nil {
			t.Errorf("ParseGOGCList(%q) accepted", bad)
		}
	}
}

func TestGOGCSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	before := debug.SetGCPercent(100)
	debug.SetGCPercent(before)

	settings := []int{100, native.GCOff}
	s := RunGOGCSweep(Quick(), settings)
	if bad := s.CheckShape(); len(bad) > 0 {
		t.Fatalf("shape violations: %v", bad)
	}
	// 2 workloads x 2 settings x 2 worker counts.
	if want := 2 * len(settings) * len(gogcWorkerCounts); len(s.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(s.Rows), want)
	}
	// The sweep must not leak its GC settings into the process.
	after := debug.SetGCPercent(before)
	if after != before {
		t.Fatalf("sweep leaked GOGC=%d, was %d", after, before)
	}
	t.Log("\n" + s.String())
}

func TestMeasureSparkHotPath(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	h := MeasureSparkHotPath()
	if h.AllocsPerOp <= 0 {
		t.Fatal("hot path measured zero allocations — instrumentation broken")
	}
	// The arena win the PR records: at least 25% below the pre-arena
	// baseline (measured ~51% on the reference machine; the slack
	// absorbs allocator and scheduler variation across machines).
	if h.AllocsPerOp > h.BaselineAllocsPerOp*0.75 {
		t.Errorf("hot path allocs/op = %.0f, want <= 75%% of the %.0f baseline",
			h.AllocsPerOp, h.BaselineAllocsPerOp)
	}
	t.Log(h.String())
}
