package experiments

import (
	"fmt"
	"strings"

	"parhask/internal/eden"
	"parhask/internal/stats"
	"parhask/internal/workloads/apsp"
	"parhask/internal/workloads/euler"
)

// LatencyRow is one transport setting's results.
type LatencyRow struct {
	Name       string
	Latency    int64
	APSPRing   int64 // elapsed, fine-grained pipelined program
	SumEulerMW int64 // elapsed, coarse-grained farm program
}

// LatencyStudy quantifies the paper's §I motivation: distributed-memory
// runtimes historically needed coarse-grained programs because cluster
// interconnects are slow, and "the recent hardware focus on multicore
// architectures means that fine-grained communication-intensive
// parallel computing is becoming increasingly affordable". We run one
// fine-grained communication-intensive program (the APSP ring) and one
// coarse-grained program (sumEuler) on the same Eden runtime with
// transport latencies ranging from shared-memory to cluster scale.
type LatencyStudy struct {
	Params Params
	Rows   []LatencyRow
}

// latencySettings spans shared-memory middleware to a LAN cluster.
var latencySettings = []struct {
	name    string
	latency int64
}{
	{"shared memory (PVM/shm)", 45_000},
	{"fast interconnect", 200_000},
	{"gigabit LAN cluster", 1_000_000},
	{"commodity cluster", 5_000_000},
}

// RunLatencyStudy executes both programs at every latency.
func RunLatencyStudy(p Params) *LatencyStudy {
	ls := &LatencyStudy{Params: p}
	g := apsp.RandomGraph(p.APSPNodes, 105, 9, 25)
	for _, set := range latencySettings {
		ring := eden.NewConfig(p.Cores8+1, p.Cores8)
		ring.Costs.MsgLatency = set.latency
		rr := runEden(ring, apsp.EdenRingProgram(g, p.Cores8, ring.Costs.MinPlus))

		se := sumEulerEdenLatency(p, set.latency)

		ls.Rows = append(ls.Rows, LatencyRow{
			Name: set.name, Latency: set.latency,
			APSPRing: rr.Elapsed, SumEulerMW: se,
		})
	}
	return ls
}

// sumEulerEdenLatency runs the coarse-grained farm at a given latency.
func sumEulerEdenLatency(p Params, latency int64) int64 {
	cfg := eden.NewConfig(p.Cores8, p.Cores8)
	cfg.Costs.MsgLatency = latency
	res := runEden(cfg, euler.EdenProgram(p.SumEulerN, 8, cfg.Costs.GCDIter))
	return res.Elapsed
}

// Render prints the study.
func (ls *LatencyStudy) Render() string {
	headers := []string{"Transport", "Latency", "APSP ring (fine-grained)", "sumEuler farm (coarse)"}
	var rows [][]string
	for _, r := range ls.Rows {
		rows = append(rows, []string{
			r.Name, fmt.Sprintf("%d µs", r.Latency/1000),
			stats.Seconds(r.APSPRing), stats.Seconds(r.SumEulerMW),
		})
	}
	title := fmt.Sprintf("Latency study (§I): the same Eden programs from shared memory to cluster (%d cores)\n", ls.Params.Cores8)
	return title + stats.Table(headers, rows)
}

// CheckShape verifies §I's claim: the fine-grained program collapses as
// latency grows toward cluster scale, while the coarse-grained one
// barely notices.
func (ls *LatencyStudy) CheckShape() []string {
	var bad []string
	first, last := ls.Rows[0], ls.Rows[len(ls.Rows)-1]
	ringBlowup := float64(last.APSPRing) / float64(first.APSPRing)
	farmBlowup := float64(last.SumEulerMW) / float64(first.SumEulerMW)
	if ringBlowup < 1.5 {
		bad = append(bad, fmt.Sprintf("fine-grained ring only degraded %.2fx from shm to cluster", ringBlowup))
	}
	if farmBlowup > 1.25 {
		bad = append(bad, fmt.Sprintf("coarse-grained farm degraded %.2fx; should barely notice latency", farmBlowup))
	}
	if ringBlowup <= farmBlowup {
		bad = append(bad, "fine-grained program should be the latency-sensitive one")
	}
	return bad
}

// String implements fmt.Stringer.
func (ls *LatencyStudy) String() string {
	s := ls.Render()
	if bad := ls.CheckShape(); len(bad) > 0 {
		s += "SHAPE VIOLATIONS:\n  " + strings.Join(bad, "\n  ") + "\n"
	} else {
		s += "shape: OK (multicore latencies make fine-grained message passing viable)\n"
	}
	return s
}
