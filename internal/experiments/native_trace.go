package experiments

import (
	"fmt"

	"parhask/internal/faults"
	"parhask/internal/native"
	"parhask/internal/workloads/apsp"
	"parhask/internal/workloads/euler"
	"parhask/internal/workloads/matmul"
)

// NativeTimeline runs one workload on the native runtime with the
// wall-clock eventlog enabled and reduces it to a trace — the real-
// hardware counterpart of the Fig. 2 / Fig. 4 EdenTV diagrams. The
// result is verified against the workload's sequential oracle before
// the trace is returned; unlike the simulated figures the timeline's
// shape is machine-dependent (see results/README.md).
func NativeTimeline(p Params, workload string, workers int, eager bool) (TraceEntry, *native.Result, error) {
	cfg := native.NewConfig(workers)
	cfg.EagerBlackholing = eager
	cfg.EventLog = true
	if p.FaultSpec != "" {
		plan, perr := faults.Parse(p.FaultSpec)
		if perr != nil {
			return TraceEntry{}, nil, perr
		}
		cfg.Faults = faults.NewInjector(plan)
	}
	cfg.Deadline = p.Deadline

	var (
		res *native.Result
		err error
		ok  bool
	)
	switch workload {
	case "sumeuler":
		res, err = native.Run(cfg, euler.Program(p.SumEulerN, p.SumEulerChunks, 0, true))
		if err == nil {
			ok = res.Value.(int64) == euler.SumTotientSieve(p.SumEulerN)
		}
	case "matmul":
		a, b := matmul.Random(p.MatMulN, 1), matmul.Random(p.MatMulN, 2)
		res, err = native.Run(cfg, matmul.BlockProgram(a, b, p.MatMulBlock, 0))
		if err == nil {
			ok = matmul.Equal(res.Value.(matmul.Mat), matmul.MulOracle(a, b), 1e-9)
		}
	case "apsp":
		g := apsp.RandomGraph(p.APSPNodes, 42, 100, 60)
		res, err = native.Run(cfg, apsp.Program(g, 0))
		if err == nil {
			ok = apsp.Equal(res.Value.(apsp.Graph), apsp.FloydWarshall(g))
		}
	default:
		return TraceEntry{}, nil, fmt.Errorf("experiments: unknown native workload %q (want sumeuler, matmul or apsp)", workload)
	}
	if err != nil {
		// A failed run still carries its flushed event rings: render the
		// partial timeline alongside the error so post-mortems (tracedump
		// under fault injection) can see what happened up to the failure.
		if res != nil && res.Events != nil {
			tl := res.Trace()
			return TraceEntry{
				Name:     fmt.Sprintf("native %s (FAILED, partial timeline): %v", workload, err),
				Elapsed:  res.WallNS,
				Trace:    tl,
				Rendered: tl.Render(p.TraceWidth),
				Summary:  tl.Summary(),
			}, res, err
		}
		return TraceEntry{}, nil, err
	}
	if !ok {
		return TraceEntry{}, nil, fmt.Errorf("experiments: native %s result differs from the sequential oracle", workload)
	}

	bh := "lazy"
	if eager {
		bh = "eager"
	}
	tl := res.Trace()
	return TraceEntry{
		Name:     fmt.Sprintf("native %s, %d workers, %s blackholing (wall clock)", workload, res.Workers, bh),
		Elapsed:  res.WallNS,
		Trace:    tl,
		Rendered: tl.Render(p.TraceWidth),
		Summary:  tl.Summary(),
	}, res, nil
}
