package experiments

import (
	"encoding/json"
	"testing"
)

// TestAutotuneSweepSmoke runs the self-tuning sweep at quick scale and
// checks its machine-independent shape: exact results, grains inside
// their bounds, and a well-formed decision trace on every auto row.
func TestAutotuneSweepSmoke(t *testing.T) {
	s := RunAutotuneSweep(Quick())
	if bad := s.CheckShape(); len(bad) > 0 {
		t.Fatalf("shape violations: %v", bad)
	}
	if len(s.Rows) != 2*len(autotuneWorkerCounts)*3 {
		t.Fatalf("expected hand+auto rows for 3 workloads at %v workers, got %d rows",
			autotuneWorkerCounts, len(s.Rows))
	}
	t.Log("\n" + s.String())
}

// TestAutotuneSweepJSON checks the sweep embeds in the native sweep's
// JSON with the decision trace intact.
func TestAutotuneSweepJSON(t *testing.T) {
	p := Quick()
	p.SumEulerN, p.SumEulerChunks = 400, 8
	p.MatMulN, p.MatMulBlock = 48, 12
	p.APSPNodes = 32
	s := &NativeSweep{Params: p, Autotune: RunAutotuneSweep(p)}
	data, err := s.JSON()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back struct {
		Autotune *AutotuneSweep `json:"autotune"`
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Autotune == nil || len(back.Autotune.Rows) == 0 {
		t.Fatal("autotune section missing from the JSON round trip")
	}
	autoSeen := false
	for _, r := range back.Autotune.Rows {
		if r.Mode == "auto" {
			autoSeen = true
			if r.Report == nil {
				t.Fatalf("auto row %s/%d lost its controller report in JSON", r.Workload, r.Workers)
			}
		}
	}
	if !autoSeen {
		t.Fatal("no auto rows in the round-tripped sweep")
	}
}
