package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"html"
	"strings"
	"time"

	"parhask/internal/eden"
	"parhask/internal/faults"
	"parhask/internal/graph"
	"parhask/internal/native"
	"parhask/internal/nativeeden"
	"parhask/internal/stats"
	"parhask/internal/workloads/euler"
)

// Chaos outcome classes. Every iteration of the soak must land in one
// of the first three; "violation" — a wrong result, an unstructured
// failure, or a hang (which the per-run deadline converts into a
// reportable error) — is the class the soak exists to prove empty.
const (
	ChaosOK         = "ok"
	ChaosStructured = "structured"
	ChaosDeadlock   = "deadlock"
	ChaosViolation  = "violation"
)

// ChaosRow is one soak iteration: which backend ran, under which fault
// spec (the replay key — feeding the same spec back reproduces the
// same failure), and how it ended.
type ChaosRow struct {
	Iter    int    `json:"iter"`
	Backend string `json:"backend"` // "native" | "nativeeden"
	Spec    string `json:"spec"`
	Outcome string `json:"outcome"`
	Detail  string `json:"detail,omitempty"`
	WallNS  int64  `json:"wall_ns"`
	// N / Chunks pin the workload scale so Repro replays the exact run.
	N      int `json:"n"`
	Chunks int `json:"chunks"`
}

// Repro is the command line that replays this iteration exactly.
func (r ChaosRow) Repro() string {
	if r.Backend == "nativeeden" {
		return fmt.Sprintf("go run ./cmd/sumeuler -runtime eden -pes %d -n %d -faults %q -deadline 10s",
			chaosEdenPEs, r.N, r.Spec)
	}
	return fmt.Sprintf("go run ./cmd/sumeuler -runtime native -workers %d -n %d -chunks %d -faults %q -deadline 10s",
		chaosGpHWorkers, r.N, r.Chunks, r.Spec)
}

// ChaosSoak is the report of a seeded fault-injection soak over both
// native backends.
type ChaosSoak struct {
	Iterations int        `json:"iterations"`
	Seed       uint64     `json:"seed"`
	OK         int        `json:"ok"`
	Structured int        `json:"structured"`
	Deadlocks  int        `json:"deadlocks"`
	Violations int        `json:"violations"`
	Rows       []ChaosRow `json:"rows"`
}

// splitmix64 is the soak's per-iteration seed derivation (the same
// finalizer the injector hashes with, reused so sub-seeds are
// well-mixed but reproducible from the master seed alone).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// chaosSpec derives a deterministic fault plan for one iteration: a
// panic, a message-drop edge, a message delay, a stalled PE, or a
// panic+stall combination, each parameterised from the sub-seed.
func chaosSpec(backend string, sub uint64) string {
	mode := sub % 5
	arg := (sub >> 8) % 16
	switch mode {
	case 0:
		if backend == "native" {
			return fmt.Sprintf("seed=%d,panic-spark=%d", sub, arg)
		}
		return fmt.Sprintf("seed=%d,panic-proc=%d", sub, arg%6)
	case 1:
		// Drops only matter where there are messages; on the GpH
		// backend this degenerates to a clean run, which is itself a
		// useful control case.
		return fmt.Sprintf("seed=%d,drop=0.4", sub)
	case 2:
		return fmt.Sprintf("seed=%d,delay=200us:0.5", sub)
	case 3:
		return fmt.Sprintf("seed=%d,stall=%d:1ms", sub, arg%4)
	default:
		if backend == "native" {
			return fmt.Sprintf("seed=%d,panic-spark=%d,stall=%d:500us", sub, arg, arg%4)
		}
		return fmt.Sprintf("seed=%d,panic-proc=%d,delay=100us:0.3", sub, arg%6)
	}
}

// classifyChaos sorts a run error into the soak's outcome classes.
func classifyChaos(err error) (string, string) {
	if err == nil {
		return ChaosOK, ""
	}
	var de *faults.DeadlockError
	if errors.As(err, &de) {
		if len(de.Blocked) == 0 {
			return ChaosViolation, "deadlock without diagnostics: " + err.Error()
		}
		return ChaosDeadlock, err.Error()
	}
	var ip *faults.InjectedPanic
	var me *eden.ChanMisuseError
	var se *eden.SendError
	var pz *graph.PoisonError
	var ce *euler.CheckError
	if errors.As(err, &ip) || errors.As(err, &me) || errors.As(err, &se) ||
		errors.As(err, &pz) || errors.As(err, &ce) {
		// CheckError is the workload's own integrity oracle tripping on
		// drop-induced data loss — detected corruption, not a hang or an
		// anonymous crash.
		return ChaosStructured, err.Error()
	}
	return ChaosViolation, "unstructured failure: " + err.Error()
}

// Chaos runs use fixed small backend shapes so the Repro command lines
// (which pin them as flags) replay byte-for-byte the same schedule space.
// The Eden runs use 8 chunks per PE, matching cmd/sumeuler's eden path.
const (
	chaosGpHWorkers = 4
	chaosEdenPEs    = 3
)

// runChaosIter executes one fault-injected sumEuler run on the given
// backend and classifies the outcome. The spec must parse (callers
// validate or derive it).
func runChaosIter(p Params, backend, spec string, eulerWant int64) (outcome, detail string, wallNS int64) {
	plan, err := faults.Parse(spec)
	if err != nil {
		panic(fmt.Sprintf("experiments: chaos spec %q failed to parse: %v", spec, err))
	}
	deadline := p.Deadline
	if deadline == 0 {
		deadline = 10 * time.Second
	}
	start := time.Now()
	var runErr error
	var value any
	if backend == "native" {
		cfg := native.NewConfig(chaosGpHWorkers)
		cfg.Faults = faults.NewInjector(plan)
		cfg.Deadline = deadline
		var res *native.Result
		res, runErr = native.Run(cfg, euler.Program(p.SumEulerN, p.SumEulerChunks, 0, true))
		if res != nil {
			value = res.Value
		}
	} else {
		cfg := nativeeden.NewConfig(chaosEdenPEs)
		cfg.Faults = faults.NewInjector(plan)
		cfg.Deadline = deadline
		var res *nativeeden.Result
		res, runErr = nativeeden.Run(cfg, euler.EdenProgram(p.SumEulerN, 8, 0))
		if res != nil {
			value = res.Value
		}
	}
	wallNS = time.Since(start).Nanoseconds()
	outcome, detail = classifyChaos(runErr)
	if outcome == ChaosOK {
		if v, ok := value.(int64); !ok || v != eulerWant {
			outcome = ChaosViolation
			detail = fmt.Sprintf("result %v differs from the sequential oracle %d", value, eulerWant)
		}
	}
	return outcome, detail, wallNS
}

// ReplayFault re-runs one fault-injected sumEuler iteration from
// p.FaultSpec on the given backend ("native" or "nativeeden") — the
// cmd/benchall face of a ChaosRow's repro command. Callers validate
// the spec first (benchall does so fail-fast, before any figure runs).
func ReplayFault(p Params, backend string) ChaosRow {
	row := ChaosRow{Backend: backend, Spec: p.FaultSpec, N: p.SumEulerN, Chunks: p.SumEulerChunks}
	row.Outcome, row.Detail, row.WallNS = runChaosIter(p, backend, p.FaultSpec, euler.SumTotientSieve(p.SumEulerN))
	return row
}

// RunChaosSoak runs iters seeded fault-injection iterations alternating
// between the native GpH and native Eden backends. Every iteration
// must terminate (the per-run deadline turns hangs into structured
// deadlock errors) and must end in a correct result, a structured
// failure, or a deadlock report with diagnostics; anything else is a
// violation. Sub-seeds derive from seed alone, so a failing iteration
// replays exactly from its row's Spec.
func RunChaosSoak(p Params, iters int, seed uint64) *ChaosSoak {
	s := &ChaosSoak{Iterations: iters, Seed: seed}
	eulerWant := euler.SumTotientSieve(p.SumEulerN)
	for i := 0; i < iters; i++ {
		sub := splitmix64(seed + uint64(i))
		backend := "native"
		if i%2 == 1 {
			backend = "nativeeden"
		}
		row := ChaosRow{Iter: i, Backend: backend, Spec: chaosSpec(backend, sub),
			N: p.SumEulerN, Chunks: p.SumEulerChunks}
		row.Outcome, row.Detail, row.WallNS = runChaosIter(p, backend, row.Spec, eulerWant)
		switch row.Outcome {
		case ChaosOK:
			s.OK++
		case ChaosStructured:
			s.Structured++
		case ChaosDeadlock:
			s.Deadlocks++
		default:
			s.Violations++
		}
		s.Rows = append(s.Rows, row)
	}
	return s
}

// Violating returns the rows that failed the soak's invariant.
func (s *ChaosSoak) Violating() []ChaosRow {
	var out []ChaosRow
	for _, r := range s.Rows {
		if r.Outcome == ChaosViolation {
			out = append(out, r)
		}
	}
	return out
}

// String renders the soak summary (and every violation with its repro
// command, when there are any).
func (s *ChaosSoak) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Chaos soak: %d iterations, seed %d\n", s.Iterations, s.Seed)
	fmt.Fprintf(&sb, "  ok %d | structured %d | deadlock %d | VIOLATIONS %d\n",
		s.OK, s.Structured, s.Deadlocks, s.Violations)
	if v := s.Violating(); len(v) > 0 {
		sb.WriteString("violations:\n")
		for _, r := range v {
			fmt.Fprintf(&sb, "  iter %d (%s): %s\n    repro: %s\n", r.Iter, r.Backend, r.Detail, r.Repro())
		}
	} else {
		sb.WriteString("invariant holds: every run ended in a correct result, a structured failure, or a diagnosed deadlock\n")
	}
	return sb.String()
}

// JSON renders the full soak for results artifacts.
func (s *ChaosSoak) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// HTML renders the soak as a self-contained report — the artifact the
// CI chaos job uploads, with a repro command per non-ok row.
func (s *ChaosSoak) HTML() []byte {
	var sb strings.Builder
	sb.WriteString("<!DOCTYPE html><html><head><meta charset=\"utf-8\"><title>Chaos soak</title><style>")
	sb.WriteString("body{font-family:monospace;margin:2em}table{border-collapse:collapse}")
	sb.WriteString("td,th{border:1px solid #999;padding:2px 8px;text-align:left}")
	sb.WriteString(".ok{background:#e7f7e7}.structured{background:#fdf3d7}.deadlock{background:#fde2c7}.violation{background:#f7d7d7}")
	sb.WriteString("</style></head><body>")
	fmt.Fprintf(&sb, "<h1>Chaos soak</h1><p>%d iterations, seed %d: %d ok, %d structured, %d deadlock, <b>%d violations</b></p>",
		s.Iterations, s.Seed, s.OK, s.Structured, s.Deadlocks, s.Violations)
	sb.WriteString("<table><tr><th>iter</th><th>backend</th><th>spec</th><th>outcome</th><th>wall</th><th>detail / repro</th></tr>")
	for _, r := range s.Rows {
		detail := html.EscapeString(r.Detail)
		if r.Outcome != ChaosOK {
			detail += "<br><code>" + html.EscapeString(r.Repro()) + "</code>"
		}
		fmt.Fprintf(&sb, "<tr class=%q><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>",
			r.Outcome, r.Iter, r.Backend, html.EscapeString(r.Spec), r.Outcome, stats.Seconds(r.WallNS), detail)
	}
	sb.WriteString("</table></body></html>\n")
	return []byte(sb.String())
}

// FaultOverheadBench measures what an idle fault plane costs: the same
// workload with Config.Faults nil versus armed with an empty plan. The
// hooks are a nil check on the hot path, so the armed run must stay
// within noise (the acceptance bar is 2%).
type FaultOverheadBench struct {
	Reps        int     `json:"reps"`
	DisabledNS  int64   `json:"disabled_ns"`
	ArmedNS     int64   `json:"armed_ns"`
	OverheadPct float64 `json:"overhead_pct"`
}

// MeasureFaultOverhead runs the interleaved disabled/armed comparison
// on the native GpH runtime (best-of-reps to shed scheduler noise).
func MeasureFaultOverhead() *FaultOverheadBench {
	const reps = 5
	const n, chunks = 3000, 96
	want := euler.SumTotientSieve(n)
	run := func(armed bool) int64 {
		cfg := native.NewConfig(4)
		if armed {
			cfg.Faults = faults.NewInjector(nil)
		}
		res, err := native.Run(cfg, euler.Program(n, chunks, 0, true))
		if err != nil {
			panic(fmt.Sprintf("experiments: fault-overhead run failed: %v", err))
		}
		if res.Value.(int64) != want {
			panic("experiments: fault-overhead run computed a wrong result")
		}
		return res.WallNS
	}
	b := &FaultOverheadBench{Reps: reps, DisabledNS: 1<<62 - 1, ArmedNS: 1<<62 - 1}
	for i := 0; i < reps; i++ {
		if t := run(false); t < b.DisabledNS {
			b.DisabledNS = t
		}
		if t := run(true); t < b.ArmedNS {
			b.ArmedNS = t
		}
	}
	b.OverheadPct = 100 * (float64(b.ArmedNS) - float64(b.DisabledNS)) / float64(b.DisabledNS)
	return b
}

// String renders the overhead comparison.
func (b *FaultOverheadBench) String() string {
	return fmt.Sprintf("Fault-plane overhead (disabled vs armed-empty, best of %d):\n  disabled %s | armed %s | overhead %+.2f%%\n",
		b.Reps, stats.Seconds(b.DisabledNS), stats.Seconds(b.ArmedNS), b.OverheadPct)
}
