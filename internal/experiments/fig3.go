package experiments

import (
	"fmt"
	"strings"

	"parhask/internal/stats"
	"parhask/internal/workloads/matmul"
)

// Fig3 reproduces the paper's Fig. 3: relative speedup curves on the
// 16-core machine for the sumEuler and matrix-multiplication programs,
// for all five runtime versions.
type Fig3 struct {
	Params   Params
	SumEuler []*stats.Series
	MatMul   []*stats.Series
}

// RunFig3 executes every version at every core count.
func RunFig3(p Params) *Fig3 {
	f := &Fig3{Params: p}
	a := matmul.Random(p.MatMulN, 101)
	b := matmul.Random(p.MatMulN, 102)

	for _, v := range gphVariants() {
		se := &stats.Series{Name: v.Name, Times: map[int]int64{}}
		mm := &stats.Series{Name: v.Name, Times: map[int]int64{}}
		for _, c := range p.CoreCounts {
			se.Times[c] = sumEulerGpH(p, v.Make(c)).Elapsed
			mm.Times[c] = matmulGpH(p, v.Make(c), a, b).Elapsed
		}
		f.SumEuler = append(f.SumEuler, se)
		f.MatMul = append(f.MatMul, mm)
	}

	se := &stats.Series{Name: "Eden", Times: map[int]int64{}}
	mm := &stats.Series{Name: "Eden (Cannon)", Times: map[int]int64{}}
	for _, c := range p.CoreCounts {
		se.Times[c] = sumEulerEden(p, c, c).Elapsed
		q := cannonQ(c)
		mm.Times[c] = matmulEdenPEs(p, q, q*q+1, c, a, b).Elapsed
	}
	f.SumEuler = append(f.SumEuler, se)
	f.MatMul = append(f.MatMul, mm)
	return f
}

// Render prints both speedup tables and charts.
func (f *Fig3) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 3: Relative speedups (16-core machine)\n\n")
	fmt.Fprintf(&b, "sumEuler [1..%d]:\n%s\n%s\n", f.Params.SumEulerN,
		stats.SpeedupTable(f.Params.CoreCounts, f.SumEuler),
		stats.SpeedupChart(f.Params.CoreCounts, f.SumEuler, 72))
	fmt.Fprintf(&b, "matrix multiplication (%d x %d):\n%s\n%s\n", f.Params.MatMulN, f.Params.MatMulN,
		stats.SpeedupTable(f.Params.CoreCounts, f.MatMul),
		stats.SpeedupChart(f.Params.CoreCounts, f.MatMul, 72))
	return b.String()
}

// CheckShape verifies the paper's claims: every version speeds up;
// work-stealing GpH and Eden end up close to each other ("there is
// little difference in performance between the two models"); the plain
// runtime trails the optimised one.
func (f *Fig3) CheckShape() []string {
	var bad []string
	maxC := f.Params.CoreCounts[len(f.Params.CoreCounts)-1]
	check := func(prog string, series []*stats.Series) {
		plain, steal, eden := series[0], series[3], series[4]
		for _, s := range series {
			if sp := s.Speedup(maxC); sp < 1.3 {
				bad = append(bad, fmt.Sprintf("%s: %q speedup %.2f at %d cores (no scaling)", prog, s.Name, sp, maxC))
			}
		}
		ss, es := steal.Speedup(maxC), eden.Speedup(maxC)
		if ss < es*0.7 || es < ss*0.7 {
			bad = append(bad, fmt.Sprintf("%s: stealing %.2f vs Eden %.2f differ by more than 30%%", prog, ss, es))
		}
		if plain.Speedup(maxC) > steal.Speedup(maxC)*1.05 {
			bad = append(bad, fmt.Sprintf("%s: plain (%.2f) outruns work stealing (%.2f)", prog, plain.Speedup(maxC), steal.Speedup(maxC)))
		}
	}
	check("sumEuler", f.SumEuler)
	check("matmul", f.MatMul)
	return bad
}

// String implements fmt.Stringer.
func (f *Fig3) String() string {
	s := f.Render()
	if bad := f.CheckShape(); len(bad) > 0 {
		s += "SHAPE VIOLATIONS:\n  " + strings.Join(bad, "\n  ") + "\n"
	} else {
		s += "shape: OK (matches the paper's speedup claims)\n"
	}
	return s
}
