package experiments

import (
	"fmt"
	"runtime"
	"time"

	"parhask/internal/exec"
	"parhask/internal/graph"
	"parhask/internal/native"
	"parhask/internal/stats"
	"parhask/internal/tune"
	"parhask/internal/workloads/apsp"
	"parhask/internal/workloads/euler"
	"parhask/internal/workloads/matmul"
)

// AutotuneRow is one measurement of the self-tuning experiment: a
// workload at a worker count, run either with the paper's hand-tuned
// granularity ("hand") or under the online controller ("auto"). Auto
// rows carry the controller's full report — the decision trace and the
// final position of every lever — so a tuned run is reproducible from
// the JSON alone.
type AutotuneRow struct {
	Workload        string `json:"workload"`
	Workers         int    `json:"workers"`
	Mode            string `json:"mode"` // "hand" | "auto"
	WallNS          int64  `json:"wall_ns"`
	Steals          int64  `json:"steals"`
	StealAttempts   int64  `json:"steal_attempts"`
	SparksConverted int64  `json:"sparks_converted"`
	BackoffSleeps   int64  `json:"backoff_sleeps"`
	Parks           int64  `json:"parks"`
	ParkedNS        int64  `json:"parked_ns"`
	ResultOK        bool   `json:"result_ok"`
	// GrainMin/GrainMax are the splitter bounds the controller was
	// given (auto rows only) — CheckShape asserts the final grain
	// stayed inside them.
	GrainMin int `json:"grain_min,omitempty"`
	GrainMax int `json:"grain_max,omitempty"`
	// Report is the controller's account: decision trace plus final
	// lever positions (auto rows only).
	Report *native.AutotuneReport `json:"report,omitempty"`
}

// AutotuneSweep is the self-tuning experiment (benchall -autotune):
// each workload measured with its best hand-tuned static granularity
// and again under the online controller, side by side, at the same
// worker counts. The point is not that auto always wins — it is that
// the controller lands in the same ballpark as hand-tuning without
// being told the chunk size, and the decision trace shows how.
type AutotuneSweep struct {
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Rows       []AutotuneRow `json:"rows"`
}

// autotuneWorkerCounts is the sweep's x-axis: the serial baseline and
// the full machine.
var autotuneWorkerCounts = []int{1, 8}

// autotuneTick is the controller cadence for the sweep: fast enough
// that even the -quick workloads see several observation windows.
const autotuneTick = 2 * time.Millisecond

// RunAutotuneSweep measures sumEuler, blockwise matmul and APSP with
// hand-tuned chunking and under the online controller.
func RunAutotuneSweep(p Params) *AutotuneSweep {
	s := &AutotuneSweep{GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}

	eulerWant := euler.SumTotientSieve(p.SumEulerN)
	a, b := matmul.Random(p.MatMulN, 1), matmul.Random(p.MatMulN, 2)
	matWant := matmul.MulOracle(a, b)
	g := apsp.RandomGraph(p.APSPNodes, 42, 100, 60)
	apspWant := apsp.FloydWarshall(g)

	apspGrain := p.APSPNodes / 8
	if apspGrain < 1 {
		apspGrain = 1
	}

	workloads := []struct {
		name     string
		hand     func() exec.Program
		splitter func() *tune.Splitter
		auto     func(sp *tune.Splitter) exec.Program
		check    func(v graph.Value) bool
	}{
		{"sumEuler",
			func() exec.Program { return euler.Program(p.SumEulerN, p.SumEulerChunks, 0, true) },
			func() *tune.Splitter {
				return tune.NewSplitter("sumeuler", p.SumEulerN/p.SumEulerChunks, 1, p.SumEulerN)
			},
			func(sp *tune.Splitter) exec.Program { return euler.AutoProgram(p.SumEulerN, sp) },
			func(v graph.Value) bool { return v.(int64) == eulerWant }},
		{"matMul-block",
			func() exec.Program { return matmul.BlockProgram(a, b, p.MatMulBlock, 0) },
			func() *tune.Splitter {
				return tune.NewSplitter("matmul", p.MatMulBlock*p.MatMulBlock, 1, p.MatMulN*p.MatMulN)
			},
			func(sp *tune.Splitter) exec.Program { return matmul.AutoBlockProgram(a, b, sp, 0) },
			func(v graph.Value) bool { return matmul.Equal(v.(matmul.Mat), matWant, 1e-9) }},
		{"apsp",
			func() exec.Program { return apsp.Program(g, 0) },
			func() *tune.Splitter { return tune.NewSplitter("apsp", apspGrain, 1, p.APSPNodes) },
			func(sp *tune.Splitter) exec.Program { return apsp.AutoProgram(g, sp, 0) },
			func(v graph.Value) bool { return apsp.Equal(v.(apsp.Graph), apspWant) }},
	}

	for _, wl := range workloads {
		for _, w := range autotuneWorkerCounts {
			// The hand-tuned baseline: static chunking, fixed backoff.
			cfg := native.Config{Workers: w, EagerBlackholing: true}
			res, err := native.Run(cfg, wl.hand())
			if err != nil {
				panic(fmt.Sprintf("experiments: autotune hand %s failed: %v", wl.name, err))
			}
			s.Rows = append(s.Rows, autotuneRow(wl.name, w, "hand", res, wl.check, nil))

			// The same workload under the controller: the splitter is
			// the granularity lever, backoff adapts, parking may engage.
			sp := wl.splitter()
			cfg.Autotune = &native.AutotuneConfig{
				Controller: tune.ControllerConfig{Tick: autotuneTick},
				Splitters:  []*tune.Splitter{sp},
			}
			res, err = native.Run(cfg, wl.auto(sp))
			if err != nil {
				panic(fmt.Sprintf("experiments: autotune auto %s failed: %v", wl.name, err))
			}
			s.Rows = append(s.Rows, autotuneRow(wl.name, w, "auto", res, wl.check, sp))
		}
	}
	return s
}

// autotuneRow packages one run into a row.
func autotuneRow(name string, workers int, mode string, res *native.Result,
	check func(v graph.Value) bool, sp *tune.Splitter) AutotuneRow {
	row := AutotuneRow{
		Workload:        name,
		Workers:         workers,
		Mode:            mode,
		WallNS:          res.WallNS,
		Steals:          res.Stats.Steals,
		StealAttempts:   res.Stats.StealAttempts,
		SparksConverted: res.Stats.SparksConverted,
		BackoffSleeps:   res.Stats.BackoffSleeps,
		Parks:           res.Stats.Parks,
		ParkedNS:        res.Stats.ParkedNS,
		ResultOK:        check(res.Value),
		Report:          res.Autotune,
	}
	if sp != nil {
		row.GrainMin, row.GrainMax = sp.Bounds()
	}
	return row
}

// Render prints the sweep as a table: hand and auto rows interleaved
// per workload/worker pair, with the auto wall clock expressed as a
// ratio of the hand-tuned one.
func (s *AutotuneSweep) Render() string {
	headers := []string{"Workload", "Workers", "Mode", "Wall clock", "vs hand", "Sparks", "Steals", "Decisions", "Grain", "Parks", "Result"}
	hand := map[string]int64{}
	for _, r := range s.Rows {
		if r.Mode == "hand" {
			hand[fmt.Sprintf("%s/%d", r.Workload, r.Workers)] = r.WallNS
		}
	}
	var rows [][]string
	for _, r := range s.Rows {
		vs := "-"
		if r.Mode == "auto" {
			if b := hand[fmt.Sprintf("%s/%d", r.Workload, r.Workers)]; b > 0 && r.WallNS > 0 {
				vs = fmt.Sprintf("%.2fx", float64(r.WallNS)/float64(b))
			}
		}
		decisions, grain := "-", "-"
		if r.Report != nil {
			decisions = fmt.Sprintf("%d", len(r.Report.Decisions))
			for _, gr := range r.Report.Grains {
				grain = fmt.Sprintf("%d", gr)
			}
		}
		ok := "ok"
		if !r.ResultOK {
			ok = "WRONG"
		}
		rows = append(rows, []string{
			r.Workload, fmt.Sprintf("%d", r.Workers), r.Mode,
			stats.Seconds(r.WallNS), vs,
			fmt.Sprintf("%d", r.SparksConverted), fmt.Sprintf("%d", r.Steals),
			decisions, grain, fmt.Sprintf("%d", r.Parks), ok,
		})
	}
	title := fmt.Sprintf("Self-tuning sweep — hand-tuned vs online controller (GOMAXPROCS=%d, NumCPU=%d)\n",
		s.GOMAXPROCS, s.NumCPU)
	return title + stats.Table(headers, rows)
}

// CheckShape verifies the machine-independent invariants of a tuned
// run: every result exact (the controller must never trade correctness
// for speed), every auto row carrying a controller report, every final
// grain inside the splitter's bounds, and every recorded decision
// well-formed (a known lever, a named action, and a target on chunk
// decisions). Wall-clock ratios are reported, not asserted — they
// depend on the machine.
func (s *AutotuneSweep) CheckShape() []string {
	var bad []string
	levers := map[string]bool{"chunk": true, "backoff": true, "gogc": true, "park": true}
	for _, r := range s.Rows {
		id := fmt.Sprintf("%s at %d workers (%s)", r.Workload, r.Workers, r.Mode)
		if !r.ResultOK {
			bad = append(bad, id+": result differs from the sequential oracle")
		}
		if r.Mode != "auto" {
			if r.Report != nil {
				bad = append(bad, id+": hand-tuned row carries a controller report")
			}
			continue
		}
		if r.Report == nil {
			bad = append(bad, id+": auto row has no controller report")
			continue
		}
		for name, gr := range r.Report.Grains {
			if gr < r.GrainMin || gr > r.GrainMax {
				bad = append(bad, fmt.Sprintf("%s: final grain %d of %q outside its bounds [%d,%d]",
					id, gr, name, r.GrainMin, r.GrainMax))
			}
		}
		for _, d := range r.Report.Decisions {
			if !levers[d.Lever] {
				bad = append(bad, fmt.Sprintf("%s: decision with unknown lever %q", id, d.Lever))
			}
			if d.Action == "" {
				bad = append(bad, fmt.Sprintf("%s: decision on %q with no action", id, d.Lever))
			}
			if d.Lever == "chunk" && d.Target == "" {
				bad = append(bad, id+": chunk decision without a splitter target")
			}
		}
	}
	return bad
}

// String implements fmt.Stringer.
func (s *AutotuneSweep) String() string {
	out := s.Render()
	if bad := s.CheckShape(); len(bad) > 0 {
		out += "SHAPE VIOLATIONS:\n"
		for _, b := range bad {
			out += "  " + b + "\n"
		}
	} else {
		out += "shape: OK (all results exact; grains in bounds; decision trace well-formed)\n"
	}
	return out
}
