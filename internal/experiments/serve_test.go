package experiments

import (
	"encoding/json"
	"testing"
)

// TestServiceBenchShape runs the full benchmark-as-a-service harness —
// 100 concurrent clients sustained over the mixed workload set on the
// resident server, then chaos under traffic — and holds it to its own
// shape check: no unstructured failure, no cross-job blast radius, and
// sane latency percentiles. This is the acceptance gate for the
// resident service in CI.
func TestServiceBenchShape(t *testing.T) {
	if testing.Short() {
		t.Skip("service bench is the long acceptance run")
	}
	b := RunServiceBench(Quick())
	if bad := b.CheckShape(); len(bad) > 0 {
		t.Fatalf("service bench shape violations:\n%s", b.String())
	}
	if b.ThroughputPerSec <= 0 {
		t.Fatalf("no throughput recorded: %+v", b)
	}
	if b.Chaos == nil || b.Chaos.Requests == 0 {
		t.Fatal("chaos phase did not run")
	}
	// The JSON form must round-trip (it lands in BENCH_native.json).
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var back ServiceBench
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Jobs != b.Jobs || back.Chaos.Requests != b.Chaos.Requests {
		t.Fatalf("JSON round-trip lost fields: %+v vs %+v", back, b)
	}
}
