package experiments

import (
	"encoding/json"
	"testing"
)

// TestServiceBenchShape runs the full benchmark-as-a-service harness —
// 100 concurrent clients sustained over the mixed workload set on the
// resident server, then chaos under traffic — and holds it to its own
// shape check: no unstructured failure, no cross-job blast radius, and
// sane latency percentiles. This is the acceptance gate for the
// resident service in CI.
func TestServiceBenchShape(t *testing.T) {
	if testing.Short() {
		t.Skip("service bench is the long acceptance run")
	}
	b := RunServiceBench(Quick())
	if bad := b.CheckShape(); len(bad) > 0 {
		t.Fatalf("service bench shape violations:\n%s", b.String())
	}
	if b.ThroughputPerSec <= 0 {
		t.Fatalf("no throughput recorded: %+v", b)
	}
	if b.Chaos == nil || b.Chaos.Requests == 0 {
		t.Fatal("chaos phase did not run")
	}
	// The telemetry cross-check is part of the acceptance gate: the
	// live scrape happened, mid-load scrapes ran concurrently with the
	// traffic, and the traced job reconstructed (CheckShape above
	// already held the quantile deltas to 10% and jobs_total exact).
	if b.Telemetry == nil || !b.Telemetry.ScrapeOK {
		t.Fatalf("telemetry scrape missing: %+v", b.Telemetry)
	}
	if b.Telemetry.Scrapes == 0 {
		t.Error("no successful mid-load /metrics scrape")
	}
	if !b.Telemetry.TracedJob {
		t.Error("traced job did not round-trip to a timeline")
	}
	// The JSON form must round-trip (it lands in BENCH_native.json).
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var back ServiceBench
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Jobs != b.Jobs || back.Chaos.Requests != b.Chaos.Requests {
		t.Fatalf("JSON round-trip lost fields: %+v vs %+v", back, b)
	}
}
