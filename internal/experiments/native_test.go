package experiments

import "testing"

func TestNativeSweepSmoke(t *testing.T) {
	s := RunNativeSweep(Quick())
	if bad := s.CheckShape(); len(bad) > 0 {
		t.Fatalf("shape violations: %v", bad)
	}
	t.Log("\n" + s.String())
}
