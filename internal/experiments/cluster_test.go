package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"parhask/internal/cluster"
)

// TestMain lets the chaos-under-cluster soak re-execute this test
// binary as its worker processes.
func TestMain(m *testing.M) {
	cluster.MaybeWorker()
	os.Exit(m.Run())
}

func TestClusterChaosSmall(t *testing.T) {
	// A miniature of the CI soak: a handful of supervised 3-process runs
	// with seed-derived rank faults. Every iteration must end oracle-equal
	// (clean or recovered) or structurally — violations fail the test with
	// their repro commands.
	p := Quick()
	p.SumEulerN = 4000
	s := RunClusterChaos(p, 4, 11, "tcp", 2, true)
	if len(s.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(s.Rows))
	}
	if v := s.Violating(); len(v) > 0 {
		t.Fatalf("cluster chaos violations:\n%s", s.String())
	}
	if s.OK+s.Recovered+s.Structured != 4 {
		t.Fatalf("classes don't sum: %+v", s)
	}
	if s.Recovered > 0 && s.MaxRecoveryNS <= 0 {
		t.Fatalf("recovered %d runs but no recovery latency recorded", s.Recovered)
	}
	for _, r := range s.Rows {
		if r.Mode == "" || r.Spec == "" || r.WallNS <= 0 {
			t.Fatalf("row missing telemetry: %+v", r)
		}
	}
}

func TestMergeClusterChaos(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_native.json")
	c := &ClusterChaos{Iterations: 2, Seed: 9, Transport: "unix", Budget: 1, OK: 2}

	// Into a fresh file.
	if err := MergeClusterChaos(path, c); err != nil {
		t.Fatal(err)
	}
	// Into an existing sweep file: the other sections and the cluster
	// section's own keys must survive.
	prior := []byte(`{"rows":[{"workload":"x"}],"cluster":{"transport":"tcp","rows":[]}}`)
	if err := os.WriteFile(path, prior, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := MergeClusterChaos(path, c); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["rows"]; !ok {
		t.Fatal("merge dropped the sweep rows")
	}
	sect, _ := m["cluster"].(map[string]any)
	if sect == nil || sect["transport"] != "tcp" {
		t.Fatalf("merge disturbed the cluster section: %v", m["cluster"])
	}
	chaos, _ := sect["chaos"].(map[string]any)
	if chaos == nil || chaos["iterations"] != float64(2) || chaos["seed"] != float64(9) {
		t.Fatalf("soak not merged under cluster.chaos: %v", sect["chaos"])
	}

	// A present-but-corrupt artifact is an error, not a silent overwrite.
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := MergeClusterChaos(path, c); err == nil {
		t.Fatal("merging over a corrupt artifact should fail")
	}
}
