package experiments

import (
	"fmt"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"time"

	"parhask/internal/serve"
	"parhask/internal/stats"
)

// ServiceBench is the benchmark-as-a-service result: the resident
// server under sustained concurrent mixed-workload load (throughput
// and latency percentiles), followed by a chaos phase that injects
// faults into a slice of the traffic and asserts every request still
// completes or fails with a structured, classified error.
type ServiceBench struct {
	Workers     int `json:"workers"`
	Lanes       int `json:"lanes"`
	PEs         int `json:"pes"`
	Concurrency int `json:"concurrency"`
	// Jobs counts completed submissions of the sustained phase;
	// Rejected counts queue-full backpressure rejections (not errors —
	// the admission contract working).
	Jobs       int64 `json:"jobs"`
	Failed     int64 `json:"failed"`
	Rejected   int64 `json:"rejected"`
	DurationNS int64 `json:"duration_ns"`
	// ThroughputPerSec is completed jobs per wall-clock second.
	ThroughputPerSec float64 `json:"throughput_per_sec"`
	// Latency percentiles over completed jobs (admission to response).
	P50NS int64 `json:"p50_ns"`
	P90NS int64 `json:"p90_ns"`
	P99NS int64 `json:"p99_ns"`
	MaxNS int64 `json:"max_ns"`
	// Chaos is the faults-under-traffic phase.
	Chaos *ServiceChaos `json:"chaos,omitempty"`
	// Telemetry is the live /metrics cross-check: server-reported
	// quantiles against client-measured, scraped from the running HTTP
	// gateway during and after the sustained phase (before chaos, so
	// the counters compare against clean traffic only).
	Telemetry *ServiceTelemetry `json:"telemetry,omitempty"`
}

// ServiceChaos summarises the chaos-under-traffic phase: every request
// must either complete OK or fail with a structured taxonomy code;
// anything else (an internal-coded failure, a lost response) is an
// invariant violation.
type ServiceChaos struct {
	Requests   int64            `json:"requests"`
	OK         int64            `json:"ok"`
	ByCode     map[string]int64 `json:"by_code,omitempty"`
	Violations []string         `json:"violations,omitempty"`
}

// serviceMix is the sustained-phase request mix: every registered
// workload, both backends where both exist.
func serviceMix() []serve.JobRequest {
	return []serve.JobRequest{
		{Workload: "sumeuler", N: 800, Chunks: 8},
		{Workload: "sumeuler", N: 400, Backend: "eden"},
		{Workload: "matmul", N: 24},
		{Workload: "matmul", N: 16, Backend: "eden"},
		{Workload: "apsp", N: 24},
		{Workload: "apsp", N: 16, Backend: "eden"},
		{Workload: "fuzz", N: 200, Seed: 11},
		{Workload: "mandel", Width: 48, Height: 32},
		{Workload: "mandel", Width: 32, Height: 24, Backend: "eden"},
	}
}

// RunServiceBench drives the resident service the way cmd/serve's
// clients would: the sustained phase keeps `concurrency` clients (at
// least 100 — the acceptance bar for the resident pool) submitting the
// mixed-workload set without restart; the chaos phase lets a third of
// the traffic carry private fault plans and tiny deadlines while clean
// traffic continues, asserting structured-failure-only semantics.
func RunServiceBench(p Params) *ServiceBench {
	cfg := serve.Config{
		Workers:     runtime.GOMAXPROCS(0),
		PEs:         2,
		Lanes:       2,
		QueueCap:    256,
		MaxInflight: 2 * runtime.GOMAXPROCS(0),
	}
	s := serve.New(cfg)
	defer s.Close()

	// The telemetry cross-check scrapes the real HTTP gateway, not the
	// Server struct: the bench must read /metrics the way an operator's
	// Prometheus would, concurrently with the load it measures.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const concurrency = 100
	const jobsPerClient = 4
	mix := serviceMix()

	b := &ServiceBench{
		Workers: cfg.Workers, Lanes: cfg.Lanes, PEs: cfg.PEs,
		Concurrency: concurrency,
	}

	// --- sustained phase ---
	stopScrape := make(chan struct{})
	scrapes := make(chan int, 1)
	go func() {
		n := 0
		for {
			select {
			case <-stopScrape:
				scrapes <- n
				return
			case <-time.After(50 * time.Millisecond):
				if _, err := scrapeMetrics(ts.URL); err == nil {
					n++
				}
			}
		}
	}()
	var mu sync.Mutex
	var latencies []int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < jobsPerClient; k++ {
				req := mix[(c+k)%len(mix)]
				req.Tenant = fmt.Sprintf("tenant-%d", c%8)
				resp := s.Do(req)
				mu.Lock()
				switch {
				case resp.OK:
					b.Jobs++
					latencies = append(latencies, resp.TotalNS)
				case resp.Error != nil && resp.Error.Code == serve.CodeQueueFull:
					b.Rejected++
				default:
					b.Failed++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	b.DurationNS = time.Since(start).Nanoseconds()
	if b.DurationNS > 0 {
		b.ThroughputPerSec = float64(b.Jobs) / (float64(b.DurationNS) / 1e9)
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		pct := func(q float64) int64 {
			i := int(q * float64(len(latencies)-1))
			return latencies[i]
		}
		b.P50NS, b.P90NS, b.P99NS = pct(0.50), pct(0.90), pct(0.99)
		b.MaxNS = latencies[len(latencies)-1]
	}

	// --- telemetry cross-check (before chaos dirties the counters) ---
	close(stopScrape)
	b.Telemetry = buildTelemetry(s, ts.URL, <-scrapes, latencies)

	// --- chaos phase: faults under traffic ---
	b.Chaos = runServiceChaos(s, mix)
	return b
}

// buildTelemetry takes the final post-load scrape and compares it with
// the client-side ground truth, then proves the per-job trace path end
// to end against the same live server.
func buildTelemetry(s *serve.Server, baseURL string, scrapes int, latencies []int64) *ServiceTelemetry {
	t := &ServiceTelemetry{Scrapes: scrapes}
	m, err := scrapeMetrics(baseURL)
	if err != nil {
		return t
	}
	t.ScrapeOK = true
	t.ServerP50NS = int64(m["serve_job_total_seconds_p50"] * 1e9)
	t.ServerP99NS = int64(m["serve_job_total_seconds_p99"] * 1e9)
	t.ClientP50NS = pctRank(latencies, 0.50)
	t.ClientP99NS = pctRank(latencies, 0.99)
	t.P50DeltaPct = deltaPct(t.ServerP50NS, t.ClientP50NS)
	t.P99DeltaPct = deltaPct(t.ServerP99NS, t.ClientP99NS)
	t.JobsTotalOK = m[`serve_jobs_total{outcome="ok"}`]
	t.PoisonedClaims = m["native_pool_poisoned_claims_total"]

	// One traced request, fetched back over HTTP and reconstructed to a
	// per-agent timeline — the tracedump -job path against this server.
	resp := s.Do(serve.JobRequest{Workload: "sumeuler", N: 800, Chunks: 8, Trace: true})
	if resp.OK && resp.TraceID != "" {
		if d, err := fetchTraceDump(baseURL, resp.TraceID); err == nil {
			if rl, err := d.Log(); err == nil {
				tl := rl.TraceAgents(d.Agents)
				t.TracedJob = len(tl.Agents()) == len(d.Agents) && len(d.Agents) > 1
				t.TraceAgents = len(tl.Agents())
			}
		}
	}
	return t
}

// chaosPlans are the fault shapes the chaos phase injects, cycled
// across the faulted third of the traffic. Stalls stay short: a
// stalled PE sleeps uninterruptibly, so its duration bounds how long
// the lane is held, not the deadline.
var chaosPlans = []string{
	"seed=3,panic-spark=0",
	"seed=5,panic-proc=0",
	"seed=9,panic-proc=1",
	"seed=11,delay=5ms:0.5",
}

// runServiceChaos keeps clean and faulted traffic flowing together and
// classifies every outcome. Violations: a response whose code is
// "internal" (unstructured failure leaked through), a clean request
// that failed with an injected-fault code (blast radius escaped its
// job), or a missing response.
func runServiceChaos(s *serve.Server, mix []serve.JobRequest) *ServiceChaos {
	const clients = 30
	const jobsPerClient = 3
	c := &ServiceChaos{ByCode: map[string]int64{}}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < jobsPerClient; k++ {
				n := i*jobsPerClient + k
				req := mix[n%len(mix)]
				req.Tenant = fmt.Sprintf("chaos-%d", i%4)
				faulted := n%3 == 0
				if faulted {
					req.Faults = chaosPlans[n%len(chaosPlans)]
					req.DeadlineMS = 10_000
				}
				resp := s.Do(req)
				mu.Lock()
				c.Requests++
				if resp == nil {
					c.Violations = append(c.Violations, "nil response")
					mu.Unlock()
					continue
				}
				if resp.OK {
					c.OK++
					mu.Unlock()
					continue
				}
				code := string(resp.Error.Code)
				c.ByCode[code]++
				switch resp.Error.Code {
				case serve.CodeInternal:
					c.Violations = append(c.Violations,
						fmt.Sprintf("unstructured failure for %s/%s: %s", req.Workload, req.Backend, resp.Error.Message))
				case serve.CodeInjectedPanic, serve.CodePoisoned, serve.CodeDeadlock:
					if !faulted {
						c.Violations = append(c.Violations,
							fmt.Sprintf("clean %s/%s request failed with %s: %s", req.Workload, req.Backend, code, resp.Error.Message))
					}
				case serve.CodeQueueFull:
					// backpressure, not a failure
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	return c
}

// CheckShape verifies the service invariants on any machine: sustained
// load completed without unstructured failures, the pool stayed up for
// all of it, and chaos never leaked an unclassified error or crossed a
// job boundary.
func (b *ServiceBench) CheckShape() []string {
	var bad []string
	if b.Jobs < int64(b.Concurrency) {
		bad = append(bad, fmt.Sprintf("only %d jobs completed under %d concurrent clients", b.Jobs, b.Concurrency))
	}
	if b.Failed > 0 {
		bad = append(bad, fmt.Sprintf("%d clean sustained-phase jobs failed", b.Failed))
	}
	if b.Jobs > 0 && (b.P50NS <= 0 || b.P99NS < b.P50NS) {
		bad = append(bad, fmt.Sprintf("implausible latency percentiles: p50=%d p99=%d", b.P50NS, b.P99NS))
	}
	if b.Chaos != nil {
		for _, v := range b.Chaos.Violations {
			bad = append(bad, "chaos: "+v)
		}
		if b.Chaos.OK == 0 {
			bad = append(bad, "chaos: no request completed while faults were injected")
		}
	}
	if t := b.Telemetry; t != nil {
		if !t.ScrapeOK {
			bad = append(bad, "telemetry: /metrics scrape failed against the live server")
		} else {
			if t.JobsTotalOK != float64(b.Jobs) {
				bad = append(bad, fmt.Sprintf("telemetry: scraped jobs_total ok=%.0f but %d jobs completed", t.JobsTotalOK, b.Jobs))
			}
			if t.PoisonedClaims != 0 {
				bad = append(bad, fmt.Sprintf("telemetry: %.0f poisoned claims under fault-free traffic", t.PoisonedClaims))
			}
			// The histograms bound quantile error at 1/16; the acceptance
			// bar is 10%. Only assert when the phase ran clean — failures
			// put observations in the histogram the client list lacks.
			if b.Failed == 0 && t.ClientP50NS > 0 && t.P50DeltaPct > 10 {
				bad = append(bad, fmt.Sprintf("telemetry: server p50 off by %.1f%% from client-measured", t.P50DeltaPct))
			}
			if b.Failed == 0 && t.ClientP99NS > 0 && t.P99DeltaPct > 10 {
				bad = append(bad, fmt.Sprintf("telemetry: server p99 off by %.1f%% from client-measured", t.P99DeltaPct))
			}
			if !t.TracedJob {
				bad = append(bad, "telemetry: traced job did not yield a reconstructible cross-worker timeline")
			}
		}
	}
	return bad
}

// String renders the benchmark as a table plus the shape verdict.
func (b *ServiceBench) String() string {
	out := fmt.Sprintf("Benchmark as a service (resident server: %d workers, %d eden lanes x %d PEs)\n",
		b.Workers, b.Lanes, b.PEs)
	headers := []string{"Phase", "Clients", "Jobs", "Failed", "Rejected", "Throughput", "p50", "p90", "p99", "max"}
	rows := [][]string{{
		"sustained", fmt.Sprintf("%d", b.Concurrency),
		fmt.Sprintf("%d", b.Jobs), fmt.Sprintf("%d", b.Failed), fmt.Sprintf("%d", b.Rejected),
		fmt.Sprintf("%.1f/s", b.ThroughputPerSec),
		stats.Seconds(b.P50NS), stats.Seconds(b.P90NS), stats.Seconds(b.P99NS), stats.Seconds(b.MaxNS),
	}}
	if b.Chaos != nil {
		rows = append(rows, []string{
			"chaos", "30", fmt.Sprintf("%d", b.Chaos.OK), "-", "-",
			fmt.Sprintf("%d structured", b.Chaos.Requests-b.Chaos.OK), "-", "-", "-", "-",
		})
	}
	out += stats.Table(headers, rows)
	if b.Telemetry != nil {
		out += b.Telemetry.String()
	}
	if b.Chaos != nil && len(b.Chaos.ByCode) > 0 {
		out += "chaos error codes:"
		codes := make([]string, 0, len(b.Chaos.ByCode))
		for code := range b.Chaos.ByCode {
			codes = append(codes, code)
		}
		sort.Strings(codes)
		for _, code := range codes {
			out += fmt.Sprintf(" %s=%d", code, b.Chaos.ByCode[code])
		}
		out += "\n"
	}
	if bad := b.CheckShape(); len(bad) > 0 {
		out += "SHAPE VIOLATIONS:\n"
		for _, v := range bad {
			out += "  " + v + "\n"
		}
	} else {
		out += "shape: OK (sustained load clean; chaos structured-failure-only)\n"
	}
	return out
}
