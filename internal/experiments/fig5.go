package experiments

import (
	"fmt"
	"strings"

	"parhask/internal/gph"
	"parhask/internal/stats"
	"parhask/internal/workloads/apsp"
)

// Fig5 reproduces the paper's Fig. 5: relative speedups of the
// all-pairs shortest-paths program (400 nodes) for GpH under different
// runtime optimisations — with and without eager black-holing, with
// pushing and stealing schedulers — and for the Eden ring program.
type Fig5 struct {
	Params Params
	Series []*stats.Series
}

// fig5Variants are the GpH rows: the black-holing policy is the crucial
// axis; it is crossed with the two work-distribution schemes.
func fig5Variants() []struct {
	Name  string
	Mk    func(int) gph.Config
	Eager bool
} {
	return []struct {
		Name  string
		Mk    func(int) gph.Config
		Eager bool
	}{
		{"GpH lazy blackholing", gph.ImprovedSync, false},
		{"GpH eager blackholing", gph.ImprovedSync, true},
		{"GpH worksteal, lazy BH", gph.WorkStealingConfig, false},
		{"GpH worksteal, eager BH", gph.WorkStealingConfig, true},
	}
}

// RunFig5 executes every version at every core count.
func RunFig5(p Params) *Fig5 {
	f := &Fig5{Params: p}
	g := apsp.RandomGraph(p.APSPNodes, 105, 9, 25)
	want := apsp.FloydWarshall(g)

	for _, v := range fig5Variants() {
		s := &stats.Series{Name: v.Name, Times: map[int]int64{}}
		for _, c := range p.CoreCounts {
			cfg := v.Mk(c)
			cfg.EagerBlackholing = v.Eager
			res := apspGpH(p, cfg, g)
			if !apsp.Equal(res.Value.(apsp.Graph), want) {
				panic(fmt.Sprintf("fig5: %s at %d cores computed wrong distances", v.Name, c))
			}
			s.Times[c] = res.Elapsed
		}
		f.Series = append(f.Series, s)
	}

	s := &stats.Series{Name: "Eden ring", Times: map[int]int64{}}
	for _, c := range p.CoreCounts {
		res := apspEden(p, c, c, g)
		if !apsp.Equal(res.Value.(apsp.Graph), want) {
			panic(fmt.Sprintf("fig5: Eden ring at %d cores computed wrong distances", c))
		}
		s.Times[c] = res.Elapsed
	}
	f.Series = append(f.Series, s)
	return f
}

// Render prints the speedup table and chart.
func (f *Fig5) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 5: Relative speedup for shortest-paths program (%d nodes)\n\n%s\n%s\n",
		f.Params.APSPNodes,
		stats.SpeedupTable(f.Params.CoreCounts, f.Series),
		stats.SpeedupChart(f.Params.CoreCounts, f.Series, 72))
	return b.String()
}

// CheckShape verifies the paper's claims: eager black-holing is
// essential for the GpH versions (lazy flattens out — most dramatically
// in the work-stealing system, which the paper even saw slow down);
// Eden's ring scales well and beats every GpH version.
func (f *Fig5) CheckShape() []string {
	var bad []string
	maxC := f.Params.CoreCounts[len(f.Params.CoreCounts)-1]
	lazyPush, eagerPush := f.Series[0], f.Series[1]
	lazySteal, eagerSteal := f.Series[2], f.Series[3]
	eden := f.Series[4]

	if l, e := lazyPush.Speedup(maxC), eagerPush.Speedup(maxC); l >= e {
		bad = append(bad, fmt.Sprintf("pushing: lazy BH (%.2f) not slower than eager (%.2f)", l, e))
	}
	if l, e := lazySteal.Speedup(maxC), eagerSteal.Speedup(maxC); l >= e {
		bad = append(bad, fmt.Sprintf("stealing: lazy BH (%.2f) not slower than eager (%.2f)", l, e))
	}
	if l := lazySteal.Speedup(maxC); l > 2.0 {
		bad = append(bad, fmt.Sprintf("work-stealing lazy BH speedup %.2f at %d cores; paper saw it flatten/slow down", l, maxC))
	}
	for _, s := range f.Series[:4] {
		if es, gs := eden.Speedup(maxC), s.Speedup(maxC); es <= gs {
			bad = append(bad, fmt.Sprintf("Eden (%.2f) not above %q (%.2f)", es, s.Name, gs))
		}
	}
	if es := eden.Speedup(maxC); es < 3.0 {
		bad = append(bad, fmt.Sprintf("Eden ring speedup %.2f at %d cores; paper shows good scaling", es, maxC))
	}
	return bad
}

// String implements fmt.Stringer.
func (f *Fig5) String() string {
	s := f.Render()
	if bad := f.CheckShape(); len(bad) > 0 {
		s += "SHAPE VIOLATIONS:\n  " + strings.Join(bad, "\n  ") + "\n"
	} else {
		s += "shape: OK (matches the paper's speedup claims)\n"
	}
	return s
}
