package experiments

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"parhask/internal/exec"
	"parhask/internal/graph"
	"parhask/internal/native"
	"parhask/internal/stats"
	"parhask/internal/workloads/euler"
	"parhask/internal/workloads/matmul"
)

// GOGCRow is one measurement of the allocation-area experiment: a
// workload, a GOGC setting (the Go analogue of GHC's nursery size), a
// worker count, and what the GC did while the run executed.
type GOGCRow struct {
	Workload   string  `json:"workload"`
	GOGC       string  `json:"gogc"` // "50".."400", or "off"
	Workers    int     `json:"workers"`
	WallNS     int64   `json:"wall_ns"`
	GCCycles   int64   `json:"gc_cycles"`
	GCPauseNS  int64   `json:"gc_pause_ns"`
	BytesAlloc int64   `json:"bytes_alloc"`
	Speedup    float64 `json:"speedup"` // vs 1 worker at the same GOGC
	ResultOK   bool    `json:"result_ok"`
}

// GOGCSweep reproduces the paper's §IV-A.1 allocation-area-size
// experiment on real hardware: GHC 6.10's fix was bigger per-capability
// allocation areas, which bought parallel speedup by collecting less
// often; here GOGC scales how much the heap may grow between
// collections, so sweeping it turns GC frequency into the independent
// variable and wall-clock speedup into the measured one.
type GOGCSweep struct {
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	Settings   []string `json:"settings"`
	Rows       []GOGCRow `json:"rows"`
}

// ParseGOGCList parses a benchall-style -gogc list such as
// "50,100,200,400,off" into SetGCPercent values (off = native.GCOff).
func ParseGOGCList(list string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(list, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		if strings.EqualFold(f, "off") {
			out = append(out, native.GCOff)
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("gogc: bad setting %q (want a positive percent or \"off\")", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("gogc: empty setting list")
	}
	return out, nil
}

// gogcName renders a SetGCPercent value for tables and JSON.
func gogcName(v int) string {
	if v == native.GCOff {
		return "off"
	}
	return strconv.Itoa(v)
}

// gogcWorkerCounts is the speedup pair measured per setting.
var gogcWorkerCounts = []int{1, 8}

// RunGOGCSweep measures the list-allocating sumEuler and blockwise
// matmul at each GOGC setting, at 1 worker and at 8, recording GC
// cycles, pause time and the wall-clock speedup per setting.
func RunGOGCSweep(p Params, settings []int) *GOGCSweep {
	s := &GOGCSweep{GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
	for _, v := range settings {
		s.Settings = append(s.Settings, gogcName(v))
	}

	eulerWant := euler.SumTotientSieve(p.SumEulerN)
	a, b := matmul.Random(p.MatMulN, 1), matmul.Random(p.MatMulN, 2)
	matWant := matmul.MulOracle(a, b)

	workloads := []struct {
		name  string
		prog  func() exec.Program
		check func(v graph.Value) bool
	}{
		// sumEuler with the list-allocating φ kernel: the Go
		// transcription of the Haskell program's per-φ garbage, so the
		// GC target actually has allocation to govern (the scheduler
		// benchmarks use the allocation-free kernel, which no GOGC
		// setting can affect).
		{"sumEuler-list",
			func() exec.Program { return euler.AllocProgram(p.SumEulerN, p.SumEulerChunks) },
			func(v graph.Value) bool { return v.(int64) == eulerWant }},
		{"matMul-block",
			func() exec.Program { return matmul.BlockProgram(a, b, p.MatMulBlock, 0) },
			func(v graph.Value) bool { return matmul.Equal(v.(matmul.Mat), matWant, 1e-9) }},
	}

	for _, wl := range workloads {
		for _, gogc := range settings {
			var base int64
			for _, workers := range gogcWorkerCounts {
				cfg := native.Config{Workers: workers, EagerBlackholing: true, GCPercent: gogc}
				// Settle the heap so each row charges only its own
				// garbage to the configured target, not the previous
				// row's leftovers.
				runtime.GC()
				res, err := native.Run(cfg, wl.prog())
				if err != nil {
					panic(fmt.Sprintf("experiments: gogc %s %s failed: %v", wl.name, gogcName(gogc), err))
				}
				if workers == gogcWorkerCounts[0] {
					base = res.WallNS
				}
				speedup := 0.0
				if base > 0 && res.WallNS > 0 {
					speedup = float64(base) / float64(res.WallNS)
				}
				s.Rows = append(s.Rows, GOGCRow{
					Workload:   wl.name,
					GOGC:       gogcName(gogc),
					Workers:    workers,
					WallNS:     res.WallNS,
					GCCycles:   res.GC.Cycles,
					GCPauseNS:  res.GC.PauseNS,
					BytesAlloc: res.GC.BytesAlloc,
					Speedup:    speedup,
					ResultOK:   wl.check(res.Value),
				})
			}
		}
	}
	return s
}

// Render prints the sweep as a table.
func (s *GOGCSweep) Render() string {
	headers := []string{"Workload", "GOGC", "Workers", "Wall clock", "Speedup", "GCs", "GC pause", "Alloc MB", "Result"}
	var rows [][]string
	for _, r := range s.Rows {
		ok := "ok"
		if !r.ResultOK {
			ok = "WRONG"
		}
		rows = append(rows, []string{
			r.Workload, r.GOGC, fmt.Sprintf("%d", r.Workers),
			stats.Seconds(r.WallNS), fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%d", r.GCCycles), stats.Seconds(r.GCPauseNS),
			fmt.Sprintf("%.1f", float64(r.BytesAlloc)/(1<<20)), ok,
		})
	}
	title := fmt.Sprintf("GOGC sweep — allocation-area experiment (§IV-A.1; GOMAXPROCS=%d, NumCPU=%d)\n",
		s.GOMAXPROCS, s.NumCPU)
	return title + stats.Table(headers, rows)
}

// CheckShape verifies the machine-independent invariants: every result
// exact, and no setting collects more often than a smaller one by more
// than noise — concretely, GC off must not run more cycles than the
// smallest GOGC setting of the same workload/worker pair.
func (s *GOGCSweep) CheckShape() []string {
	var bad []string
	minCycles := map[string]int64{}
	offCycles := map[string]int64{}
	for _, r := range s.Rows {
		if !r.ResultOK {
			bad = append(bad, fmt.Sprintf("%s at GOGC=%s, %d workers: result differs from the oracle",
				r.Workload, r.GOGC, r.Workers))
		}
		key := fmt.Sprintf("%s/%d", r.Workload, r.Workers)
		if r.GOGC == "off" {
			offCycles[key] = r.GCCycles
		} else if c, ok := minCycles[key]; !ok || r.GCCycles < c {
			minCycles[key] = r.GCCycles
		}
	}
	for key, off := range offCycles {
		if m, ok := minCycles[key]; ok && off > m {
			bad = append(bad, fmt.Sprintf("%s: GC off ran %d cycles, more than the best finite setting's %d",
				key, off, m))
		}
	}
	return bad
}

// String implements fmt.Stringer.
func (s *GOGCSweep) String() string {
	out := s.Render()
	if bad := s.CheckShape(); len(bad) > 0 {
		out += "SHAPE VIOLATIONS:\n"
		for _, b := range bad {
			out += "  " + b + "\n"
		}
	} else {
		out += "shape: OK (all results exact; GC off collects least)\n"
	}
	return out
}

// HotPathBench is the measured allocation cost of the native Par+Force
// spark hot path: a program that builds, sparks and forces
// hotPathSparks thunks through the context allocator. AllocsPerOp
// counts every heap allocation of one whole run (workers, deques,
// arenas, result assembly included); AllocsPerSpark divides by the
// spark count. The PR 2 baseline (one wrapper closure + one heap Thunk
// per spark, atomic counters) measured 1989 allocs/op on this
// benchmark shape; per-worker arenas and the closure-free thunk
// representation cut it roughly in half.
type HotPathBench struct {
	Sparks              int     `json:"sparks"`
	Workers             int     `json:"workers"`
	AllocsPerOp         float64 `json:"allocs_per_op"`
	AllocsPerSpark      float64 `json:"allocs_per_spark"`
	BaselineAllocsPerOp float64 `json:"pr2_baseline_allocs_per_op"`
}

// hotPathSparks is the spark count of the hot-path measurement (and of
// BenchmarkNativeSparkHotPath, which must match for the recorded
// baseline to be comparable).
const hotPathSparks = 512

// hotPathBaselineAllocs is the PR 2 measurement of hotPathProgram's
// allocs/op (recorded before arenas landed, workers=4).
const hotPathBaselineAllocs = 1989

// HotPathProgram returns the standard hot-path measurement body:
// sparks thunks, each with a small captured loop, and forces them all.
func HotPathProgram(sparks int) exec.Program {
	return func(ctx exec.Ctx) graph.Value {
		ts := make([]*graph.Thunk, sparks)
		for j := range ts {
			j := j
			ts[j] = exec.NewThunk(ctx, func(c exec.Ctx) graph.Value {
				s := 0
				for k := 0; k < 2000; k++ {
					s += (j * k) % 7
				}
				return int64(s)
			})
		}
		for _, t := range ts {
			ctx.Par(t)
		}
		var sum int64
		for _, t := range ts {
			sum += ctx.Force(t).(int64)
		}
		return sum
	}
}

// MeasureSparkHotPath measures the hot path's allocs/op with
// testing.AllocsPerRun and packages it for results/BENCH_native.json.
func MeasureSparkHotPath() *HotPathBench {
	const workers = 4
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := native.Run(native.NewConfig(workers), HotPathProgram(hotPathSparks)); err != nil {
			panic(err)
		}
	})
	return &HotPathBench{
		Sparks:              hotPathSparks,
		Workers:             workers,
		AllocsPerOp:         allocs,
		AllocsPerSpark:      allocs / hotPathSparks,
		BaselineAllocsPerOp: hotPathBaselineAllocs,
	}
}

// String renders the hot-path measurement.
func (h *HotPathBench) String() string {
	return fmt.Sprintf(
		"Native spark hot path: %.0f allocs/op (%.2f per spark, %d sparks, %d workers; PR 2 baseline %.0f allocs/op)\n",
		h.AllocsPerOp, h.AllocsPerSpark, h.Sparks, h.Workers, h.BaselineAllocsPerOp)
}
