// Package experiments reproduces every table and figure in the paper's
// evaluation section (§V). Each RunFigN function executes the same
// program versions the paper measured, at the same (or explicitly
// scaled) parameters, and reports the same quantities: runtimes (Fig. 1),
// per-capability traces (Figs. 2, 4) and relative speedup curves
// (Figs. 3, 5). Each result carries a CheckShape method that verifies
// the paper's qualitative claims against the measured numbers.
package experiments

import (
	"fmt"
	"time"

	"parhask/internal/eden"
	"parhask/internal/gph"
	"parhask/internal/graph"
	"parhask/internal/pe"
	"parhask/internal/rts"
	"parhask/internal/workloads/apsp"
	"parhask/internal/workloads/euler"
	"parhask/internal/workloads/matmul"
)

// Params scales the experiments. Defaults() is full paper scale;
// Quick() is small enough for unit tests.
type Params struct {
	// SumEulerN is the sumEuler input bound (paper: 15000).
	SumEulerN int
	// SumEulerChunks is the number of GpH chunks the input is split into.
	SumEulerChunks int
	// MatMulN is the matrix dimension. The paper uses 1000 (traces,
	// Fig. 4) and 2000 (speedups, Fig. 3); the default here is 400 so a
	// full reproduction finishes in minutes — the -size flags of
	// cmd/matmul and cmd/benchall restore the paper sizes.
	MatMulN int
	// MatMulBlock is the GpH spark granularity (result block edge).
	MatMulBlock int
	// APSPNodes is the shortest-paths graph size (paper: 400).
	APSPNodes int
	// Cores8 is the small machine (paper: 8-core Intel).
	Cores8 int
	// CoreCounts are the x-axis of the speedup figures on the large
	// machine (paper: 16-core AMD).
	CoreCounts []int
	// TraceWidth is the column width of rendered timelines.
	TraceWidth int

	// FaultSpec is an optional fault-injection plan (faults.Parse
	// grammar) the native-backend timeline helpers and CLI drivers
	// apply to their runs; empty means none.
	FaultSpec string
	// Deadline arms the native backends' deadlock watchdog on those
	// runs (0 = disabled).
	Deadline time.Duration
}

// Defaults returns full paper-scale parameters (with the documented
// matmul scaling).
func Defaults() Params {
	return Params{
		SumEulerN:      15000,
		SumEulerChunks: 300,
		MatMulN:        396, // ≈400; divisible by both 3 and 4 for the Fig. 4 tori
		MatMulBlock:    33,
		APSPNodes:      400,
		Cores8:         8,
		CoreCounts:     []int{1, 2, 4, 6, 8, 12, 16},
		TraceWidth:     100,
	}
}

// Quick returns scaled-down parameters for tests.
func Quick() Params {
	return Params{
		SumEulerN:      1200,
		SumEulerChunks: 24,
		MatMulN:        96,
		MatMulBlock:    24,
		APSPNodes:      64,
		Cores8:         8,
		CoreCounts:     []int{1, 2, 4, 8},
		TraceWidth:     80,
	}
}

// gphVariant names one GpH runtime configuration from the paper.
type gphVariant struct {
	Name string
	Make func(cores int) gph.Config
}

// gphVariants are the four GpH rows of Fig. 1 in order.
func gphVariants() []gphVariant {
	return []gphVariant{
		{"GpH plain GHC-6.9", gph.PlainGHC69},
		{"GpH big allocation area", gph.BigAllocArea},
		{"GpH improved GC sync", gph.ImprovedSync},
		{"GpH work stealing", gph.WorkStealingConfig},
	}
}

// runGpH executes a GpH program, failing loudly on simulation errors.
func runGpH(cfg gph.Config, main func(*rts.Ctx) graph.Value) *gph.Result {
	res, err := gph.Run(cfg, main)
	if err != nil {
		panic(fmt.Sprintf("experiments: gph run failed: %v", err))
	}
	return res
}

// runEden executes an Eden program, failing loudly on simulation errors.
func runEden(cfg eden.Config, main pe.Program) *eden.Result {
	res, err := eden.Run(cfg, main)
	if err != nil {
		panic(fmt.Sprintf("experiments: eden run failed: %v", err))
	}
	return res
}

// sumEulerGpH runs the GpH sumEuler program under cfg.
func sumEulerGpH(p Params, cfg gph.Config) *gph.Result {
	return runGpH(cfg, euler.GpHProgram(p.SumEulerN, p.SumEulerChunks, cfg.Costs.GCDIter))
}

// sumEulerEden runs the Eden sumEuler program on pes PEs over cores
// (eight statically-assigned chunks per PE, unshuffled — static
// distribution with the mild residual imbalance of the paper's trace e).
func sumEulerEden(p Params, pes, cores int) *eden.Result {
	cfg := eden.NewConfig(pes, cores)
	return runEden(cfg, euler.EdenProgram(p.SumEulerN, 8, cfg.Costs.GCDIter))
}

// matmulGpH runs the blockwise GpH matrix multiplication under cfg.
func matmulGpH(p Params, cfg gph.Config, a, b matmul.Mat) *gph.Result {
	cfg.ResidentBytes = 3 * matmul.Bytes(p.MatMulN)
	return runGpH(cfg, matmul.GpHBlockProgram(a, b, p.MatMulBlock, cfg.Costs.MulAdd))
}

// matmulEden runs Cannon's algorithm on a q×q torus over cores cores
// (q²+1 virtual PEs: the torus plus the coordinating master).
func matmulEden(p Params, q, cores int, a, b matmul.Mat) *eden.Result {
	cfg := eden.NewConfig(q*q+1, cores)
	return runEden(cfg, matmul.EdenCannonProgram(a, b, q, cfg.Costs.MulAdd))
}

// apspGpH runs the GpH shortest-paths program under cfg.
func apspGpH(p Params, cfg gph.Config, g apsp.Graph) *gph.Result {
	cfg.ResidentBytes = 2 * apsp.Bytes(p.APSPNodes)
	return runGpH(cfg, apsp.GpHProgram(g, cfg.Costs.MinPlus))
}

// apspEden runs the ring shortest-paths program with ring size = cores.
func apspEden(p Params, ring, cores int, g apsp.Graph) *eden.Result {
	cfg := eden.NewConfig(ring+1, cores)
	return runEden(cfg, apsp.EdenRingProgram(g, ring, cfg.Costs.MinPlus))
}

// cannonQ picks the torus dimension for a core count: the smallest q
// with q² >= cores, exploiting Eden's virtual-PE timeslicing (which the
// paper found can even be beneficial).
func cannonQ(cores int) int {
	q := 1
	for q*q < cores {
		q++
	}
	return q
}
