package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"

	"parhask/internal/native"
	"parhask/internal/stats"
	"parhask/internal/workloads/apsp"
	"parhask/internal/workloads/euler"
	"parhask/internal/workloads/matmul"
)

// NativeRow is one native-runtime measurement: a workload at a worker
// count, in real wall-clock time, with the per-worker counter breakdown
// (how evenly the stealing spread the sparks, who absorbed the
// duplicate entries, what each pool still held at the end).
type NativeRow struct {
	Workload         string            `json:"workload"`
	Workers          int               `json:"workers"`
	EagerBlackholing bool              `json:"eager_blackholing"`
	WallNS           int64             `json:"wall_ns"`
	DuplicateEntries int64             `json:"duplicate_entries"`
	Steals           int64             `json:"steals"`
	StealAttempts    int64             `json:"steal_attempts"`
	SparksConverted  int64             `json:"sparks_converted"`
	GC               native.GCStats    `json:"gc"`
	ResultOK         bool              `json:"result_ok"`
	PerWorker        []NativeWorkerRow `json:"per_worker"`
}

// NativeWorkerRow is one worker's share of a NativeRow's counters.
type NativeWorkerRow struct {
	Worker           int   `json:"worker"`
	Steals           int64 `json:"steals"`
	StealAttempts    int64 `json:"steal_attempts"`
	SparksConverted  int64 `json:"sparks_converted"`
	DuplicateEntries int64 `json:"duplicate_entries"`
	SparksLeftover   int64 `json:"sparks_leftover"`
}

// NativeSweep is the wall-clock counterpart of the virtual-time
// figures: the same GpH program bodies on real goroutines, swept over
// worker counts. Each row's result is verified against the workload's
// sequential oracle.
type NativeSweep struct {
	Params     Params
	GOMAXPROCS int         `json:"gomaxprocs"`
	NumCPU     int         `json:"num_cpu"`
	Rows       []NativeRow `json:"rows"`
	// GOGC is the allocation-area experiment (benchall -gogc): the
	// same workloads swept over GC target sizes. Optional.
	GOGC *GOGCSweep `json:"gogc_sweep,omitempty"`
	// HotPath is the measured allocation cost of the Par+Force spark
	// hot path (the arena win, recorded against the pre-arena
	// baseline). Optional.
	HotPath *HotPathBench `json:"hot_path,omitempty"`
	// EdenNative is the GpH-vs-Eden head-to-head on real goroutines
	// (benchall -edennative). Optional.
	EdenNative *EdenNativeSweep `json:"eden_native,omitempty"`
	// Cluster is the multi-process Eden sweep over a real socket
	// transport (benchall -cluster). Optional.
	Cluster *ClusterSweep `json:"cluster,omitempty"`
	// FaultOverhead is the disabled-vs-armed-empty fault-plane cost
	// comparison (benchall -faultoverhead). Optional.
	FaultOverhead *FaultOverheadBench `json:"fault_overhead,omitempty"`
	// Service is the benchmark-as-a-service run: the resident server
	// under sustained concurrent load plus the chaos-under-traffic
	// phase (benchall -serve). Optional.
	Service *ServiceBench `json:"service,omitempty"`
	// MetricsOverhead is the disabled-vs-enabled metrics-plane cost
	// comparison on the resident pool (benchall -serve). Optional.
	MetricsOverhead *MetricsOverheadBench `json:"metrics_overhead,omitempty"`
	// Autotune is the self-tuning experiment (benchall -autotune):
	// hand-tuned vs controller-tuned rows with the decision trace.
	// Optional.
	Autotune *AutotuneSweep `json:"autotune,omitempty"`
}

// nativeWorkerCounts is the sweep's x-axis.
var nativeWorkerCounts = []int{1, 2, 4, 8}

// RunNativeSweep measures sumEuler (uncached kernel), blockwise matmul
// and shortest paths (eager and lazy black-holing) on the native
// runtime at 1, 2, 4 and 8 workers.
func RunNativeSweep(p Params) *NativeSweep {
	s := &NativeSweep{Params: p, GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}

	runOne := func(name string, workers int, eager bool,
		main func() (*native.Result, error), check func(v any) bool) {
		res, err := main()
		if err != nil {
			panic(fmt.Sprintf("experiments: native %s failed: %v", name, err))
		}
		row := NativeRow{
			Workload:         name,
			Workers:          workers,
			EagerBlackholing: eager,
			WallNS:           res.WallNS,
			DuplicateEntries: res.Stats.DupEntries,
			Steals:           res.Stats.Steals,
			StealAttempts:    res.Stats.StealAttempts,
			SparksConverted:  res.Stats.SparksConverted,
			GC:               res.GC,
			ResultOK:         check(res.Value),
		}
		for i, ws := range res.PerWorker {
			row.PerWorker = append(row.PerWorker, NativeWorkerRow{
				Worker:           i,
				Steals:           ws.Steals,
				StealAttempts:    ws.StealAttempts,
				SparksConverted:  ws.SparksConverted,
				DuplicateEntries: ws.DupEntries,
				SparksLeftover:   ws.SparksLeftover,
			})
		}
		s.Rows = append(s.Rows, row)
	}

	eulerWant := euler.SumTotientSieve(p.SumEulerN)
	a, b := matmul.Random(p.MatMulN, 1), matmul.Random(p.MatMulN, 2)
	matWant := matmul.MulOracle(a, b)
	g := apsp.RandomGraph(p.APSPNodes, 42, 100, 60)
	apspWant := apsp.FloydWarshall(g)

	for _, w := range nativeWorkerCounts {
		w := w
		cfg := native.Config{Workers: w, EagerBlackholing: true}
		runOne("sumEuler", w, true, func() (*native.Result, error) {
			return native.Run(cfg, euler.Program(p.SumEulerN, p.SumEulerChunks, 0, true))
		}, func(v any) bool { return v.(int64) == eulerWant })

		runOne("matMul-block", w, true, func() (*native.Result, error) {
			return native.Run(cfg, matmul.BlockProgram(a, b, p.MatMulBlock, 0))
		}, func(v any) bool { return matmul.Equal(v.(matmul.Mat), matWant, 1e-9) })

		for _, eager := range []bool{true, false} {
			eager := eager
			runOne("apsp", w, eager, func() (*native.Result, error) {
				return native.Run(native.Config{Workers: w, EagerBlackholing: eager},
					apsp.Program(g, 0))
			}, func(v any) bool { return apsp.Equal(v.(apsp.Graph), apspWant) })
		}
	}
	return s
}

// Render prints the sweep as a table.
func (s *NativeSweep) Render() string {
	headers := []string{"Workload", "Workers", "Blackholing", "Wall clock", "Speedup", "Dup entries", "Steals", "GCs", "GC pause", "Result"}
	base := map[string]int64{}
	for _, r := range s.Rows {
		if r.Workers == 1 {
			base[r.Workload+fmt.Sprint(r.EagerBlackholing)] = r.WallNS
		}
	}
	var rows [][]string
	for _, r := range s.Rows {
		bh := "lazy"
		if r.EagerBlackholing {
			bh = "eager"
		}
		speedup := "-"
		if b := base[r.Workload+fmt.Sprint(r.EagerBlackholing)]; b > 0 && r.WallNS > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(b)/float64(r.WallNS))
		}
		ok := "ok"
		if !r.ResultOK {
			ok = "WRONG"
		}
		rows = append(rows, []string{
			r.Workload, fmt.Sprintf("%d", r.Workers), bh,
			stats.Seconds(r.WallNS), speedup,
			fmt.Sprintf("%d", r.DuplicateEntries), fmt.Sprintf("%d", r.Steals),
			fmt.Sprintf("%d", r.GC.Cycles), stats.Seconds(r.GC.PauseNS), ok,
		})
	}
	title := fmt.Sprintf("Native runtime sweep (wall clock; GOMAXPROCS=%d, NumCPU=%d)\n",
		s.GOMAXPROCS, s.NumCPU)
	return title + stats.Table(headers, rows)
}

// CheckShape verifies the invariants the native backend must uphold on
// any machine: every result exact, and zero duplicate entries under
// eager black-holing. (Speedups and lazy duplicates depend on the core
// count, so they are reported, not asserted.)
func (s *NativeSweep) CheckShape() []string {
	var bad []string
	for _, r := range s.Rows {
		if !r.ResultOK {
			bad = append(bad, fmt.Sprintf("%s at %d workers: result differs from the sequential oracle",
				r.Workload, r.Workers))
		}
		if r.EagerBlackholing && r.DuplicateEntries != 0 {
			bad = append(bad, fmt.Sprintf("%s at %d workers: %d duplicate entries under eager black-holing",
				r.Workload, r.Workers, r.DuplicateEntries))
		}
	}
	return bad
}

// JSON renders the sweep for results/BENCH_native.json.
func (s *NativeSweep) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// String implements fmt.Stringer.
func (s *NativeSweep) String() string {
	out := s.Render()
	if bad := s.CheckShape(); len(bad) > 0 {
		out += "SHAPE VIOLATIONS:\n"
		for _, b := range bad {
			out += "  " + b + "\n"
		}
	} else {
		out += "shape: OK (all results exact; eager black-holing duplicate-free)\n"
	}
	if s.HotPath != nil {
		out += "\n" + s.HotPath.String()
	}
	if s.GOGC != nil {
		out += "\n" + s.GOGC.String()
	}
	if s.EdenNative != nil {
		out += "\n" + s.EdenNative.String()
	}
	if s.Cluster != nil {
		out += "\n" + s.Cluster.String()
		if bad := s.Cluster.CheckShape(); len(bad) > 0 {
			out += "CLUSTER SHAPE VIOLATIONS:\n"
			for _, b := range bad {
				out += "  " + b + "\n"
			}
		} else {
			out += "cluster shape: OK (all runs oracle-equal; multi-process runs moved wire bytes)\n"
		}
	}
	if s.FaultOverhead != nil {
		out += "\n" + s.FaultOverhead.String()
	}
	if s.Service != nil {
		out += "\n" + s.Service.String()
	}
	if s.MetricsOverhead != nil {
		out += "\n" + s.MetricsOverhead.String()
	}
	if s.Autotune != nil {
		out += "\n" + s.Autotune.String()
	}
	return out
}
