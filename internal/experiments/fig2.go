package experiments

import (
	"fmt"
	"strings"

	"parhask/internal/trace"
)

// TraceEntry is one rendered runtime trace.
type TraceEntry struct {
	Name     string
	Elapsed  int64
	Trace    *trace.Log
	Rendered string
	Summary  string
}

// Fig2 reproduces the paper's Fig. 2: per-capability runtime traces of
// the five sumEuler configurations on the 8-core machine (the EdenTV
// diagrams, rendered as ASCII timelines).
type Fig2 struct {
	Params  Params
	Entries []TraceEntry
}

// RunFig2 executes the five configurations with tracing.
func RunFig2(p Params) *Fig2 {
	f := &Fig2{Params: p}
	for _, v := range gphVariants() {
		res := sumEulerGpH(p, v.Make(p.Cores8))
		f.Entries = append(f.Entries, TraceEntry{
			Name:     v.Name,
			Elapsed:  res.Elapsed,
			Trace:    res.Trace,
			Rendered: res.Trace.Render(p.TraceWidth),
			Summary:  res.Trace.Summary(),
		})
	}
	eres := sumEulerEden(p, p.Cores8, p.Cores8)
	f.Entries = append(f.Entries, TraceEntry{
		Name:     fmt.Sprintf("Eden, %d PEs (PVM)", p.Cores8),
		Elapsed:  eres.Elapsed,
		Trace:    eres.Trace,
		Rendered: eres.Trace.Render(p.TraceWidth),
		Summary:  eres.Trace.Summary(),
	})
	return f
}

// Render prints all five timelines.
func (f *Fig2) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 2: Runtime traces of sumEuler [1..%d] (%d cores)\n\n",
		f.Params.SumEulerN, f.Params.Cores8)
	for i, e := range f.Entries {
		fmt.Fprintf(&b, "%c) %s  —  %s\n%s\n%s\n",
			'a'+i, e.Name, trace.FmtDur(e.Elapsed), e.Rendered, e.Summary)
	}
	return b.String()
}

// CheckShape verifies the qualitative trace claims: the unoptimised
// runtime loses far more time to synchronisation/idleness than the
// work-stealing one, and work stealing eliminates (nearly all) idle
// time.
func (f *Fig2) CheckShape() []string {
	var bad []string
	plain := f.Entries[0].Trace
	steal := f.Entries[3].Trace
	if pu, su := plain.Utilisation(), steal.Utilisation(); pu >= su {
		bad = append(bad, fmt.Sprintf("plain utilisation %.2f >= work-stealing %.2f", pu, su))
	}
	if su := steal.Utilisation(); su < 0.85 {
		bad = append(bad, fmt.Sprintf("work-stealing utilisation %.2f < 0.85 (idle periods not eliminated)", su))
	}
	if eu := f.Entries[4].Trace.Utilisation(); eu < 0.75 {
		bad = append(bad, fmt.Sprintf("Eden utilisation %.2f unexpectedly low", eu))
	}
	return bad
}

// String implements fmt.Stringer.
func (f *Fig2) String() string {
	s := f.Render()
	if bad := f.CheckShape(); len(bad) > 0 {
		s += "SHAPE VIOLATIONS:\n  " + strings.Join(bad, "\n  ") + "\n"
	} else {
		s += "shape: OK (matches the paper's trace claims)\n"
	}
	return s
}
