package experiments

import "testing"

// TestMeasureMetricsOverheadShape: the comparison runs, produces sane
// fields, and the enabled plane stays in the noise band. The tight
// claim is BenchmarkMetricsOverhead's; this is the CI smoke bound.
func TestMeasureMetricsOverheadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock benchmark")
	}
	b := MeasureMetricsOverhead()
	if b.DisabledNS <= 0 || b.EnabledNS <= 0 {
		t.Fatalf("bench fields: %+v", b)
	}
	if b.OverheadPct > 25 {
		t.Fatalf("live metrics plane cost %+.2f%%, expected noise-level", b.OverheadPct)
	}
}

// TestPctRankMatchesHistogramConvention pins the client-side rank
// convention to the histogram's (ceil(q*N)), so the telemetry
// cross-check compares the same order statistic on both sides.
func TestPctRankMatchesHistogramConvention(t *testing.T) {
	sorted := make([]int64, 100)
	for i := range sorted {
		sorted[i] = int64(i + 1)
	}
	cases := []struct {
		q    float64
		want int64
	}{{0.50, 50}, {0.90, 90}, {0.99, 99}, {1.0, 100}}
	for _, c := range cases {
		if got := pctRank(sorted, c.q); got != c.want {
			t.Errorf("pctRank(q=%v) = %d, want %d", c.q, got, c.want)
		}
	}
	if got := pctRank(nil, 0.5); got != 0 {
		t.Errorf("pctRank(empty) = %d", got)
	}
}
