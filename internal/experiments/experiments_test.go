package experiments

import (
	"strings"
	"testing"

	"parhask/internal/workloads/euler"
)

// The Quick() parameters make every figure runnable in test time. Shape
// checks are only guaranteed at full paper scale (startup overheads
// dominate tiny runs), so these tests assert mechanics: correct values,
// complete tables, determinism.

func TestFig1QuickRunsAndRenders(t *testing.T) {
	p := Quick()
	f := RunFig1(p)
	if len(f.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(f.Rows))
	}
	for _, r := range f.Rows {
		if r.Elapsed <= 0 {
			t.Fatalf("row %q has no elapsed time", r.Name)
		}
	}
	out := f.Render()
	for _, want := range []string{"Fig. 1", "Eden", "work stealing", "Paper"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// The big optimisations must show even at quick scale.
	if f.Rows[3].Elapsed >= f.Rows[0].Elapsed {
		t.Fatal("work stealing not faster than plain even at quick scale")
	}
}

func TestFig1Deterministic(t *testing.T) {
	p := Quick()
	a, b := RunFig1(p), RunFig1(p)
	for i := range a.Rows {
		if a.Rows[i].Elapsed != b.Rows[i].Elapsed {
			t.Fatalf("row %d: %d vs %d", i, a.Rows[i].Elapsed, b.Rows[i].Elapsed)
		}
	}
}

func TestFig2QuickTraces(t *testing.T) {
	p := Quick()
	f := RunFig2(p)
	if len(f.Entries) != 5 {
		t.Fatalf("entries = %d, want 5", len(f.Entries))
	}
	for _, e := range f.Entries {
		if e.Trace.End() != e.Elapsed {
			t.Fatalf("%s: trace not closed at elapsed", e.Name)
		}
		if !strings.Contains(e.Rendered, "legend") {
			t.Fatalf("%s: rendered trace missing legend", e.Name)
		}
	}
}

func TestFig3QuickSeries(t *testing.T) {
	p := Quick()
	f := RunFig3(p)
	if len(f.SumEuler) != 5 || len(f.MatMul) != 5 {
		t.Fatalf("series = %d/%d, want 5/5", len(f.SumEuler), len(f.MatMul))
	}
	for _, s := range append(f.SumEuler, f.MatMul...) {
		for _, c := range p.CoreCounts {
			if s.Times[c] <= 0 {
				t.Fatalf("series %q missing cores=%d", s.Name, c)
			}
		}
	}
	out := f.Render()
	if !strings.Contains(out, "sumEuler") || !strings.Contains(out, "matrix multiplication") {
		t.Fatalf("render incomplete:\n%s", out)
	}
}

func TestFig4QuickEntries(t *testing.T) {
	p := Quick()
	f := RunFig4(p)
	if len(f.Entries) != 5 {
		t.Fatalf("entries = %d, want 5", len(f.Entries))
	}
	if !strings.Contains(f.Entries[3].Name, "9 virtual PEs") ||
		!strings.Contains(f.Entries[4].Name, "17 virtual PEs") {
		t.Fatalf("eden entries mislabelled: %q / %q", f.Entries[3].Name, f.Entries[4].Name)
	}
}

func TestFig5QuickSeries(t *testing.T) {
	p := Quick()
	f := RunFig5(p)
	if len(f.Series) != 5 {
		t.Fatalf("series = %d, want 5", len(f.Series))
	}
	// Results are verified inside RunFig5 against Floyd–Warshall; here
	// just confirm everything ran.
	for _, s := range f.Series {
		for _, c := range p.CoreCounts {
			if s.Times[c] <= 0 {
				t.Fatalf("series %q missing cores=%d", s.Name, c)
			}
		}
	}
}

func TestCannonQ(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 4: 2, 5: 3, 9: 3, 10: 4, 16: 4}
	for cores, want := range cases {
		if got := cannonQ(cores); got != want {
			t.Errorf("cannonQ(%d) = %d, want %d", cores, got, want)
		}
	}
}

func TestParamsConsistency(t *testing.T) {
	for _, p := range []Params{Defaults(), Quick()} {
		if p.MatMulN%p.MatMulBlock != 0 {
			t.Errorf("MatMulBlock %d must divide MatMulN %d", p.MatMulBlock, p.MatMulN)
		}
		if p.MatMulN%3 != 0 || p.MatMulN%4 != 0 {
			t.Errorf("MatMulN %d must allow 3x3 and 4x4 tori", p.MatMulN)
		}
		if p.CoreCounts[0] != 1 {
			t.Error("CoreCounts must start at 1 for relative speedups")
		}
	}
}

func TestFig1ValuesAreCorrectSums(t *testing.T) {
	// The GpH/Eden programs assert internally; double-check the quick
	// parameters give the known totient sum.
	p := Quick()
	want := euler.SumTotientSieve(p.SumEulerN)
	if want <= 0 {
		t.Fatal("bad oracle")
	}
}

func TestModelsQuick(t *testing.T) {
	p := Quick()
	m := RunModels(p)
	if len(m.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(m.Rows))
	}
	for _, r := range m.Rows {
		if r.Elapsed <= 0 {
			t.Fatalf("%q has no elapsed time", r.Name)
		}
	}
	out := m.Render()
	for _, want := range []string{"GUM", "Eden", "semi-distributed", "parallel GC"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestLatencyStudyQuick(t *testing.T) {
	p := Quick()
	ls := RunLatencyStudy(p)
	if len(ls.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(ls.Rows))
	}
	// The fine-grained ring must get monotonically slower with latency.
	for i := 1; i < len(ls.Rows); i++ {
		if ls.Rows[i].APSPRing < ls.Rows[i-1].APSPRing {
			t.Fatalf("ring got faster with more latency: %v", ls.Rows)
		}
	}
	if !strings.Contains(ls.Render(), "cluster") {
		t.Fatal("render incomplete")
	}
}
