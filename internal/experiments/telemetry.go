package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"time"

	"parhask/internal/eventlog"
	"parhask/internal/metrics"
	"parhask/internal/native"
	"parhask/internal/stats"
	"parhask/internal/workloads/euler"
)

// ServiceTelemetry cross-checks the server's own telemetry against the
// client's ground truth: during the sustained phase the bench scrapes
// the live /metrics endpoint, then compares the histogram-derived
// latency quantiles with the percentiles it measured client-side. The
// registry's log-bucketed histograms bound quantile error at 1/16
// (6.25%), so a >10% disagreement means the plane is lying, not noisy.
type ServiceTelemetry struct {
	// ScrapeOK is false if the final /metrics fetch or parse failed
	// (every other field is then meaningless).
	ScrapeOK bool `json:"scrape_ok"`
	// Scrapes counts successful mid-load expositions — the plane was
	// read concurrently with the traffic it was measuring.
	Scrapes int `json:"scrapes"`
	// Server quantiles come from the scraped _p50/_p99 gauges; client
	// quantiles from the bench's own sorted latencies (same rank
	// convention as the histogram: ceil(q*N)).
	ServerP50NS int64   `json:"server_p50_ns"`
	ServerP99NS int64   `json:"server_p99_ns"`
	ClientP50NS int64   `json:"client_p50_ns"`
	ClientP99NS int64   `json:"client_p99_ns"`
	P50DeltaPct float64 `json:"p50_delta_pct"`
	P99DeltaPct float64 `json:"p99_delta_pct"`
	// JobsTotalOK is the scraped serve_jobs_total{outcome="ok"} — it
	// must equal the sustained phase's completed-job count exactly.
	JobsTotalOK float64 `json:"jobs_total_ok"`
	// PoisonedClaims is the scraped native_pool_poisoned_claims_total —
	// zero under fault-free traffic, or workers are dying silently.
	PoisonedClaims float64 `json:"poisoned_claims"`
	// TracedJob reports that one request submitted with "trace":true
	// came back with a fetchable dump that reconstructed to a per-agent
	// timeline; TraceAgents is that timeline's agent count.
	TracedJob   bool `json:"traced_job"`
	TraceAgents int  `json:"trace_agents,omitempty"`
}

// scrapeMetrics fetches and parses one /metrics exposition.
func scrapeMetrics(baseURL string) (map[string]float64, error) {
	c := &http.Client{Timeout: 10 * time.Second}
	resp, err := c.Get(baseURL + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	return metrics.ParseProm(resp.Body)
}

// fetchTraceDump pulls one stored per-job trace from the live server.
func fetchTraceDump(baseURL, id string) (*eventlog.Dump, error) {
	c := &http.Client{Timeout: 10 * time.Second}
	resp, err := c.Get(baseURL + "/api/v1/trace?id=" + id)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /api/v1/trace: %s", resp.Status)
	}
	var d eventlog.Dump
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		return nil, err
	}
	return &d, nil
}

// pctRank picks the order statistic the registry histograms report:
// rank ceil(q*N) over a sorted sample.
func pctRank(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// deltaPct is the relative disagreement of got against want, in percent.
func deltaPct(got, want int64) float64 {
	if want <= 0 {
		return 0
	}
	return 100 * math.Abs(float64(got)-float64(want)) / float64(want)
}

// String renders the cross-check verdict.
func (t *ServiceTelemetry) String() string {
	if !t.ScrapeOK {
		return "telemetry: /metrics scrape FAILED\n"
	}
	return fmt.Sprintf("telemetry (%d mid-load scrapes): server p50 %s vs client %s (%.1f%%) | server p99 %s vs client %s (%.1f%%) | jobs_total ok=%.0f | poisoned=%.0f | traced job: %v\n",
		t.Scrapes,
		stats.Seconds(t.ServerP50NS), stats.Seconds(t.ClientP50NS), t.P50DeltaPct,
		stats.Seconds(t.ServerP99NS), stats.Seconds(t.ClientP99NS), t.P99DeltaPct,
		t.JobsTotalOK, t.PoisonedClaims, t.TracedJob)
}

// MetricsOverheadBench measures what the metrics plane costs the native
// pool: the same workload with Config.Metrics nil versus a live
// registry. The enabled path is sharded atomics; the disabled path is a
// nil check — it must stay within noise of no plane at all.
type MetricsOverheadBench struct {
	Reps        int     `json:"reps"`
	DisabledNS  int64   `json:"disabled_ns"`
	EnabledNS   int64   `json:"enabled_ns"`
	OverheadPct float64 `json:"overhead_pct"`
}

// MeasureMetricsOverhead runs the interleaved disabled/enabled
// comparison on the resident pool (best-of-reps to shed scheduler
// noise), mirroring MeasureFaultOverhead.
func MeasureMetricsOverhead() *MetricsOverheadBench {
	const reps = 5
	const n, chunks = 3000, 96
	want := euler.SumTotientSieve(n)
	run := func(enabled bool) int64 {
		cfg := native.NewConfig(4)
		if enabled {
			cfg.Metrics = metrics.New()
		}
		p := native.NewPool(cfg)
		defer p.Close()
		h, err := p.Submit(native.JobConfig{}, euler.Program(n, chunks, 0, true))
		if err != nil {
			panic(fmt.Sprintf("experiments: metrics-overhead submit failed: %v", err))
		}
		res, err := h.Wait()
		if err != nil {
			panic(fmt.Sprintf("experiments: metrics-overhead run failed: %v", err))
		}
		if res.Value.(int64) != want {
			panic("experiments: metrics-overhead run computed a wrong result")
		}
		return res.WallNS
	}
	b := &MetricsOverheadBench{Reps: reps, DisabledNS: 1<<62 - 1, EnabledNS: 1<<62 - 1}
	for i := 0; i < reps; i++ {
		if t := run(false); t < b.DisabledNS {
			b.DisabledNS = t
		}
		if t := run(true); t < b.EnabledNS {
			b.EnabledNS = t
		}
	}
	b.OverheadPct = 100 * (float64(b.EnabledNS) - float64(b.DisabledNS)) / float64(b.DisabledNS)
	return b
}

// String renders the overhead comparison.
func (b *MetricsOverheadBench) String() string {
	return fmt.Sprintf("Metrics-plane overhead (disabled vs live registry, best of %d):\n  disabled %s | enabled %s | overhead %+.2f%%\n",
		b.Reps, stats.Seconds(b.DisabledNS), stats.Seconds(b.EnabledNS), b.OverheadPct)
}
