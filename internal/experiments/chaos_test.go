package experiments

import (
	"strings"
	"testing"
)

func chaosParams() Params {
	p := Quick()
	p.SumEulerN = 300
	p.SumEulerChunks = 12
	return p
}

func TestChaosSoakInvariant(t *testing.T) {
	// A miniature of the acceptance soak: every iteration must end in a
	// correct result, a structured failure, or a diagnosed deadlock.
	// (The full 500-iteration soak runs via benchall -chaos / CI.)
	s := RunChaosSoak(chaosParams(), 30, 42)
	if len(s.Rows) != 30 {
		t.Fatalf("rows = %d, want 30", len(s.Rows))
	}
	if v := s.Violating(); len(v) > 0 {
		t.Fatalf("chaos violations:\n%s", s.String())
	}
	if s.OK == 0 {
		t.Fatal("the spec mix should let some runs succeed")
	}
	if s.Structured+s.Deadlocks == 0 {
		t.Fatal("the spec mix should inject some failures")
	}
	if s.OK+s.Structured+s.Deadlocks != 30 {
		t.Fatalf("classes don't sum: %+v", s)
	}
}

func TestChaosSoakDeterministic(t *testing.T) {
	// Same seed → same specs and same outcomes, the replay property the
	// repro commands rely on.
	a := RunChaosSoak(chaosParams(), 10, 7)
	b := RunChaosSoak(chaosParams(), 10, 7)
	for i := range a.Rows {
		if a.Rows[i].Spec != b.Rows[i].Spec || a.Rows[i].Outcome != b.Rows[i].Outcome {
			t.Fatalf("iter %d diverged: %+v vs %+v", i, a.Rows[i], b.Rows[i])
		}
	}
}

func TestChaosSoakHTML(t *testing.T) {
	s := RunChaosSoak(chaosParams(), 6, 3)
	h := string(s.HTML())
	if !strings.Contains(h, "<table>") || !strings.Contains(h, "Chaos soak") {
		t.Fatalf("HTML report malformed:\n%s", h)
	}
	for _, r := range s.Rows {
		if r.Outcome != ChaosOK && !strings.Contains(h, "-faults") {
			t.Fatal("non-ok rows must carry a repro command")
		}
	}
	if _, err := s.JSON(); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureFaultOverheadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock benchmark")
	}
	b := MeasureFaultOverhead()
	if b.DisabledNS <= 0 || b.ArmedNS <= 0 {
		t.Fatalf("bench fields: %+v", b)
	}
	// The bound is deliberately loose (CI machines are noisy); the
	// tight ≤2% claim is checked by BenchmarkNativeFaultOverhead.
	if b.OverheadPct > 25 {
		t.Fatalf("armed-empty fault plane cost %+.2f%%, expected noise-level", b.OverheadPct)
	}
}
