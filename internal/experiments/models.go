package experiments

import (
	"fmt"
	"strings"

	"parhask/internal/eden"
	"parhask/internal/gph"
	"parhask/internal/gum"
	"parhask/internal/stats"
	"parhask/internal/workloads/euler"
)

// ModelRow is one runtime organisation's result in the comparison.
type ModelRow struct {
	Name      string
	Elapsed   int64
	GlobalGCs int
	LocalGCs  int
	Messages  int
	Notes     string
}

// Models extends the paper's two-way comparison to every runtime
// organisation this repository implements, running the same sumEuler
// program on each: the shared heap (work stealing), the shared heap
// with the §VI semi-distributed local-heap GC, the shared heap with the
// parallel collector [29], GUM's distributed heaps with fishing, and
// Eden's distributed heaps with skeletons.
type Models struct {
	Params Params
	Rows   []ModelRow
}

// RunModels executes the comparison on the 8-core machine.
func RunModels(p Params) *Models {
	m := &Models{Params: p}
	n, chunks := p.SumEulerN, p.SumEulerChunks

	steal := gph.WorkStealingConfig(p.Cores8)
	r1 := runGpH(steal, euler.GpHProgram(n, chunks, steal.Costs.GCDIter))
	m.Rows = append(m.Rows, ModelRow{
		Name: "GpH shared heap (work stealing)", Elapsed: r1.Elapsed,
		GlobalGCs: r1.Stats.GCs, Notes: fmt.Sprintf("%d steals", r1.Stats.Steals),
	})

	pgc := gph.WorkStealingConfig(p.Cores8)
	pgc.ParallelGC = true
	r2 := runGpH(pgc, euler.GpHProgram(n, chunks, pgc.Costs.GCDIter))
	m.Rows = append(m.Rows, ModelRow{
		Name: "GpH shared heap + parallel GC [29]", Elapsed: r2.Elapsed,
		GlobalGCs: r2.Stats.GCs,
	})

	lh := gph.LocalHeapsConfig(p.Cores8)
	r3 := runGpH(lh, euler.GpHProgram(n, chunks, lh.Costs.GCDIter))
	m.Rows = append(m.Rows, ModelRow{
		Name: "GpH semi-distributed heap (§VI)", Elapsed: r3.Elapsed,
		GlobalGCs: r3.Stats.GCs, LocalGCs: r3.Stats.LocalGCs,
		Notes: "local GCs need no barrier",
	})

	gcfg := gum.NewConfig(p.Cores8, p.Cores8)
	r4, err := gum.Run(gcfg, euler.GpHProgram(n, chunks, gcfg.Costs.GCDIter))
	if err != nil {
		panic(fmt.Sprintf("experiments: gum run failed: %v", err))
	}
	m.Rows = append(m.Rows, ModelRow{
		Name: "GUM distributed heaps (fishing)", Elapsed: r4.Elapsed,
		LocalGCs: r4.Stats.LocalGCs, Messages: r4.Stats.Messages,
		Notes: fmt.Sprintf("%d schedules, %d fetches", r4.Stats.Schedules, r4.Stats.Fetches),
	})

	ecfg := eden.NewConfig(p.Cores8, p.Cores8)
	r5 := runEden(ecfg, euler.EdenProgram(n, 8, ecfg.Costs.GCDIter))
	m.Rows = append(m.Rows, ModelRow{
		Name: "Eden distributed heaps (skeletons)", Elapsed: r5.Elapsed,
		LocalGCs: r5.Stats.LocalGCs, Messages: r5.Stats.Messages,
	})
	return m
}

// Render prints the comparison table.
func (m *Models) Render() string {
	headers := []string{"Runtime organisation", "Runtime", "Global GCs", "Local GCs", "Messages", "Notes"}
	var rows [][]string
	for _, r := range m.Rows {
		rows = append(rows, []string{
			r.Name, stats.Seconds(r.Elapsed),
			fmt.Sprintf("%d", r.GlobalGCs), fmt.Sprintf("%d", r.LocalGCs),
			fmt.Sprintf("%d", r.Messages), r.Notes,
		})
	}
	title := fmt.Sprintf("Beyond the paper: every runtime organisation on sumEuler [1..%d] (%d cores)\n",
		m.Params.SumEulerN, m.Params.Cores8)
	return title + stats.Table(headers, rows)
}

// CheckShape verifies §VI-A's tradeoff directions: the semi-distributed
// heap is not slower than stop-the-world; all organisations land within
// 2x of the best (the paper's "little difference between the models").
func (m *Models) CheckShape() []string {
	var bad []string
	best := m.Rows[0].Elapsed
	for _, r := range m.Rows {
		if r.Elapsed < best {
			best = r.Elapsed
		}
	}
	for _, r := range m.Rows {
		if float64(r.Elapsed) > 2*float64(best) {
			bad = append(bad, fmt.Sprintf("%q (%s) more than 2x the best (%s)",
				r.Name, stats.Seconds(r.Elapsed), stats.Seconds(best)))
		}
	}
	if m.Rows[2].Elapsed > m.Rows[0].Elapsed {
		bad = append(bad, "semi-distributed heap slower than stop-the-world on a GC-heavy program")
	}
	return bad
}

// String implements fmt.Stringer.
func (m *Models) String() string {
	s := m.Render()
	if bad := m.CheckShape(); len(bad) > 0 {
		s += "SHAPE VIOLATIONS:\n  " + strings.Join(bad, "\n  ") + "\n"
	} else {
		s += "shape: OK\n"
	}
	return s
}
