package experiments

import (
	"fmt"
	"strings"

	"parhask/internal/stats"
)

// Fig1Row is one line of the paper's Fig. 1 runtime table.
type Fig1Row struct {
	Name         string
	Elapsed      int64 // virtual ns
	PaperSeconds float64
	GCs          int
	Steals       int
	SparksPushed int
}

// Fig1 reproduces the paper's Fig. 1: parallel runtimes of the sumEuler
// program for [1..n] on the 8-core machine, for the four GpH runtime
// variants and Eden on 8 PEs.
type Fig1 struct {
	Params Params
	Rows   []Fig1Row
}

// paperFig1Seconds are the runtimes the paper reports, in order.
var paperFig1Seconds = []float64{2.75, 2.58, 2.44, 2.30, 2.24}

// RunFig1 executes the five configurations.
func RunFig1(p Params) *Fig1 {
	f := &Fig1{Params: p}
	for i, v := range gphVariants() {
		res := sumEulerGpH(p, v.Make(p.Cores8))
		f.Rows = append(f.Rows, Fig1Row{
			Name:         v.Name,
			Elapsed:      res.Elapsed,
			PaperSeconds: paperFig1Seconds[i],
			GCs:          res.Stats.GCs,
			Steals:       res.Stats.Steals,
			SparksPushed: res.Stats.SparksPushed,
		})
	}
	eres := sumEulerEden(p, p.Cores8, p.Cores8)
	f.Rows = append(f.Rows, Fig1Row{
		Name:         fmt.Sprintf("Eden, %d PEs (PVM)", p.Cores8),
		Elapsed:      eres.Elapsed,
		PaperSeconds: paperFig1Seconds[4],
		GCs:          eres.Stats.LocalGCs,
	})
	return f
}

// Render prints the table in the paper's layout, with the paper's
// numbers alongside for comparison.
func (f *Fig1) Render() string {
	headers := []string{"Program version and runtime system", "Runtime", "Paper", "GCs", "Steals", "Pushed"}
	var rows [][]string
	for _, r := range f.Rows {
		rows = append(rows, []string{
			r.Name,
			stats.Seconds(r.Elapsed),
			fmt.Sprintf("%.2f s", r.PaperSeconds),
			fmt.Sprintf("%d", r.GCs),
			fmt.Sprintf("%d", r.Steals),
			fmt.Sprintf("%d", r.SparksPushed),
		})
	}
	title := fmt.Sprintf("Fig. 1: Parallel runtimes of the sumEuler program for [1..%d] (%d cores)\n",
		f.Params.SumEulerN, f.Params.Cores8)
	return title + stats.Table(headers, rows)
}

// CheckShape verifies the paper's qualitative claims and returns a list
// of violations (empty when the shape holds): every optimisation row
// improves on the previous one, and Eden is on par with (or better
// than) the best GpH configuration.
func (f *Fig1) CheckShape() []string {
	var bad []string
	for i := 1; i < 4; i++ {
		// Each added GpH optimisation must not make things slower
		// (allowing 2% noise).
		if float64(f.Rows[i].Elapsed) > float64(f.Rows[i-1].Elapsed)*1.02 {
			bad = append(bad, fmt.Sprintf("row %q (%s) slower than %q (%s)",
				f.Rows[i].Name, stats.Seconds(f.Rows[i].Elapsed),
				f.Rows[i-1].Name, stats.Seconds(f.Rows[i-1].Elapsed)))
		}
	}
	plain, steal, eden := f.Rows[0], f.Rows[3], f.Rows[4]
	if steal.Elapsed >= plain.Elapsed {
		bad = append(bad, "work stealing no faster than plain GHC")
	}
	if float64(eden.Elapsed) > float64(steal.Elapsed)*1.10 {
		bad = append(bad, fmt.Sprintf("Eden (%s) more than 10%% slower than best GpH (%s)",
			stats.Seconds(eden.Elapsed), stats.Seconds(steal.Elapsed)))
	}
	return bad
}

// String implements fmt.Stringer.
func (f *Fig1) String() string {
	s := f.Render()
	if bad := f.CheckShape(); len(bad) > 0 {
		s += "SHAPE VIOLATIONS:\n  " + strings.Join(bad, "\n  ") + "\n"
	} else {
		s += "shape: OK (matches the paper's ordering)\n"
	}
	return s
}
