package experiments

import (
	"strings"
	"testing"

	"parhask/internal/stats"
	"parhask/internal/trace"
)

// The CheckShape methods are the guard rails of the reproduction; they
// must actually detect violations, not just pass on good data.

func TestFig1CheckShapeDetectsRegressions(t *testing.T) {
	good := &Fig1{Params: Quick(), Rows: []Fig1Row{
		{Name: "plain", Elapsed: 300},
		{Name: "big", Elapsed: 280},
		{Name: "sync", Elapsed: 260},
		{Name: "steal", Elapsed: 240},
		{Name: "eden", Elapsed: 245},
	}}
	if bad := good.CheckShape(); len(bad) != 0 {
		t.Fatalf("good data flagged: %v", bad)
	}

	worse := &Fig1{Params: Quick(), Rows: []Fig1Row{
		{Name: "plain", Elapsed: 300},
		{Name: "big", Elapsed: 340}, // optimisation made it slower
		{Name: "sync", Elapsed: 260},
		{Name: "steal", Elapsed: 240},
		{Name: "eden", Elapsed: 245},
	}}
	if bad := worse.CheckShape(); len(bad) == 0 {
		t.Fatal("regression not detected")
	}

	slowEden := &Fig1{Params: Quick(), Rows: []Fig1Row{
		{Name: "plain", Elapsed: 300},
		{Name: "big", Elapsed: 280},
		{Name: "sync", Elapsed: 260},
		{Name: "steal", Elapsed: 240},
		{Name: "eden", Elapsed: 400}, // Eden far off the best GpH
	}}
	if bad := slowEden.CheckShape(); len(bad) == 0 {
		t.Fatal("slow Eden not detected")
	}
}

func TestFig3CheckShapeDetectsDivergence(t *testing.T) {
	mkSeries := func(name string, t16 int64) *stats.Series {
		return &stats.Series{Name: name, Times: map[int]int64{1: 1600, 16: t16}}
	}
	p := Quick()
	p.CoreCounts = []int{1, 16}
	good := &Fig3{Params: p,
		SumEuler: []*stats.Series{
			mkSeries("plain", 200), mkSeries("big", 130), mkSeries("sync", 125),
			mkSeries("steal", 115), mkSeries("eden", 114),
		},
		MatMul: []*stats.Series{
			mkSeries("plain", 700), mkSeries("big", 760), mkSeries("sync", 760),
			mkSeries("steal", 130), mkSeries("eden", 120),
		},
	}
	if bad := good.CheckShape(); len(bad) != 0 {
		t.Fatalf("good data flagged: %v", bad)
	}
	// Break the "similar performance" claim: Eden 3x the stealing time.
	good.SumEuler[4] = mkSeries("eden", 345)
	if bad := good.CheckShape(); len(bad) == 0 {
		t.Fatal("steal-vs-eden divergence not detected")
	}
}

func TestFig5CheckShapeDetectsLazyScaling(t *testing.T) {
	mk := func(name string, t16 int64) *stats.Series {
		return &stats.Series{Name: name, Times: map[int]int64{1: 1000, 16: t16}}
	}
	p := Quick()
	p.CoreCounts = []int{1, 16}
	good := &Fig5{Params: p, Series: []*stats.Series{
		mk("lazy", 690), mk("eager", 680),
		mk("steal-lazy", 1100), mk("steal-eager", 550),
		mk("eden", 110),
	}}
	if bad := good.CheckShape(); len(bad) != 0 {
		t.Fatalf("good data flagged: %v", bad)
	}
	// If lazy black-holing suddenly scaled fine, the check must complain
	// (that would mean the duplication pathology disappeared).
	good.Series[2] = mk("steal-lazy", 120)
	if bad := good.CheckShape(); len(bad) == 0 {
		t.Fatal("healthy lazy scaling not flagged as a shape change")
	}
}

func TestFig2CheckShapeDetectsLowUtilisation(t *testing.T) {
	mkTrace := func(runFrac float64) *trace.Log {
		l := trace.NewLog()
		a := l.NewAgent("cap0")
		a.Set(0, trace.Run)
		a.Set(int64(runFrac*1000), trace.Idle)
		l.Close(1000)
		return l
	}
	f := &Fig2{Params: Quick(), Entries: []TraceEntry{
		{Name: "plain", Trace: mkTrace(0.70)},
		{Name: "big", Trace: mkTrace(0.80)},
		{Name: "sync", Trace: mkTrace(0.85)},
		{Name: "steal", Trace: mkTrace(0.95)},
		{Name: "eden", Trace: mkTrace(0.90)},
	}}
	if bad := f.CheckShape(); len(bad) != 0 {
		t.Fatalf("good data flagged: %v", bad)
	}
	f.Entries[3].Trace = mkTrace(0.60) // stealing with idle periods
	if bad := f.CheckShape(); len(bad) == 0 {
		t.Fatal("low stealing utilisation not detected")
	}
}

func TestModelsCheckShapeDetectsOutlier(t *testing.T) {
	m := &Models{Params: Quick(), Rows: []ModelRow{
		{Name: "steal", Elapsed: 100}, {Name: "pargc", Elapsed: 95},
		{Name: "localheaps", Elapsed: 97}, {Name: "gum", Elapsed: 110},
		{Name: "eden", Elapsed: 115},
	}}
	if bad := m.CheckShape(); len(bad) != 0 {
		t.Fatalf("good data flagged: %v", bad)
	}
	m.Rows[3].Elapsed = 300 // GUM 3x the best
	if bad := m.CheckShape(); len(bad) == 0 {
		t.Fatal("outlier organisation not detected")
	}
}

func TestLatencyCheckShapeDetectsFlatRing(t *testing.T) {
	ls := &LatencyStudy{Params: Quick(), Rows: []LatencyRow{
		{Name: "shm", APSPRing: 100, SumEulerMW: 1000},
		{Name: "cluster", APSPRing: 300, SumEulerMW: 1010},
	}}
	if bad := ls.CheckShape(); len(bad) != 0 {
		t.Fatalf("good data flagged: %v", bad)
	}
	ls.Rows[1].APSPRing = 105 // fine-grained program immune to latency?!
	if bad := ls.CheckShape(); len(bad) == 0 {
		t.Fatal("latency-immune ring not detected")
	}
}

func TestRenderersMentionViolations(t *testing.T) {
	f := &Fig1{Params: Quick(), Rows: []Fig1Row{
		{Name: "plain", Elapsed: 100},
		{Name: "big", Elapsed: 200},
		{Name: "sync", Elapsed: 300},
		{Name: "steal", Elapsed: 400},
		{Name: "eden", Elapsed: 500},
	}}
	if !strings.Contains(f.String(), "SHAPE VIOLATIONS") {
		t.Fatal("String() must surface violations")
	}
}
