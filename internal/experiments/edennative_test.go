package experiments

import "testing"

func TestEdenNativeSweepSmoke(t *testing.T) {
	s := RunEdenNativeSweep(Quick())
	if bad := s.CheckShape(); len(bad) > 0 {
		t.Fatalf("shape violations: %v", bad)
	}
	// Both runtimes must appear at every parallelism degree.
	byRuntime := map[string]int{}
	for _, r := range s.Rows {
		byRuntime[r.Runtime]++
	}
	if byRuntime["gph-native"] == 0 || byRuntime["eden-native"] == 0 ||
		byRuntime["gph-native"] != byRuntime["eden-native"] {
		t.Fatalf("unbalanced head-to-head rows: %v", byRuntime)
	}
	t.Log("\n" + s.String())
}

func TestEdenNativeTimelineSmoke(t *testing.T) {
	e, res, err := EdenNativeTimeline(Quick(), "sumeuler", 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events == nil {
		t.Fatal("timeline run did not record events")
	}
	if len(e.Trace.Agents()) != 3 {
		t.Fatalf("trace has %d agents, want 3", len(e.Trace.Agents()))
	}
	if e.Rendered == "" || e.Summary == "" {
		t.Fatal("empty rendering")
	}
}
