package experiments

import (
	"fmt"
	"runtime"

	"parhask/internal/faults"
	"parhask/internal/native"
	"parhask/internal/nativeeden"
	"parhask/internal/stats"
	"parhask/internal/workloads/apsp"
	"parhask/internal/workloads/euler"
	"parhask/internal/workloads/matmul"
)

// EdenNativeRow is one head-to-head measurement: a workload at a
// parallelism degree (GpH workers or Eden PEs), on real goroutines, in
// wall-clock time. The communication columns are zero for the GpH rows
// — a shared heap ships no messages — which is exactly the contrast
// the paper's §V tables draw.
type EdenNativeRow struct {
	// Runtime is "gph-native" (shared-heap work stealing) or
	// "eden-native" (distributed-heap PEs).
	Runtime  string `json:"runtime"`
	Workload string `json:"workload"`
	// Parallelism is the worker count (GpH) or PE count (Eden).
	Parallelism int   `json:"parallelism"`
	WallNS      int64 `json:"wall_ns"`
	// Messages / BytesSent are the Eden rows' communication volume.
	Messages  int64 `json:"messages"`
	BytesSent int64 `json:"bytes_sent"`
	Processes int64 `json:"processes"`
	// GCCycles/GCPauseNS/GCBytesAlloc are the run-level Go GC telemetry
	// (the collector is global on both backends; the per-PE allocation
	// story is in PerPE).
	GCCycles     int64 `json:"gc_cycles"`
	GCPauseNS    int64 `json:"gc_pause_ns"`
	GCBytesAlloc int64 `json:"gc_bytes_alloc"`
	ResultOK     bool  `json:"result_ok"`
	// PerPE is the Eden rows' per-PE breakdown (messages, bytes,
	// threads, declared allocation, arena footprint).
	PerPE []nativeeden.PEStats `json:"per_pe,omitempty"`
}

// EdenNativeSweep is the paper's GpH-vs-Eden comparison on real
// hardware: the same three workloads run on the shared-heap native
// runtime and on the distributed-heap native Eden backend, swept over
// the same parallelism degrees.
type EdenNativeSweep struct {
	Params     Params
	GOMAXPROCS int             `json:"gomaxprocs"`
	NumCPU     int             `json:"num_cpu"`
	Rows       []EdenNativeRow `json:"rows"`
}

// edenNativeCounts is the sweep's parallelism axis. It deliberately
// runs past typical core counts: PEs beyond GOMAXPROCS are virtual,
// timesliced by the Go scheduler the way the paper's 9- and 17-PE PVM
// configurations were timesliced by the OS.
var edenNativeCounts = []int{1, 2, 4, 8}

// RunEdenNativeSweep measures sumEuler, matmul and APSP head-to-head:
// GpH-native (work stealing over one shared graph) against Eden-native
// (isolated per-PE heaps, copy-on-send channels).
func RunEdenNativeSweep(p Params) *EdenNativeSweep {
	s := &EdenNativeSweep{Params: p, GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}

	eulerWant := euler.SumTotientSieve(p.SumEulerN)
	a, b := matmul.Random(p.MatMulN, 1), matmul.Random(p.MatMulN, 2)
	matWant := matmul.MulOracle(a, b)
	g := apsp.RandomGraph(p.APSPNodes, 42, 100, 60)
	apspWant := apsp.FloydWarshall(g)

	runGpH := func(name string, workers int, main func(cfg native.Config) (*native.Result, error), check func(v any) bool) {
		res, err := main(native.Config{Workers: workers, EagerBlackholing: true})
		if err != nil {
			panic(fmt.Sprintf("experiments: gph-native %s failed: %v", name, err))
		}
		s.Rows = append(s.Rows, EdenNativeRow{
			Runtime: "gph-native", Workload: name, Parallelism: workers,
			WallNS:   res.WallNS,
			GCCycles: res.GC.Cycles, GCPauseNS: res.GC.PauseNS, GCBytesAlloc: res.GC.BytesAlloc,
			ResultOK: check(res.Value),
		})
	}
	runEden := func(name string, pes int, main func(cfg nativeeden.Config) (*nativeeden.Result, error), check func(v any) bool) {
		res, err := main(nativeeden.NewConfig(pes))
		if err != nil {
			panic(fmt.Sprintf("experiments: eden-native %s failed: %v", name, err))
		}
		s.Rows = append(s.Rows, EdenNativeRow{
			Runtime: "eden-native", Workload: name, Parallelism: pes,
			WallNS:   res.WallNS,
			Messages: res.Stats.Messages, BytesSent: res.Stats.BytesSent,
			Processes: res.Stats.Processes,
			GCCycles:  res.GC.Cycles, GCPauseNS: res.GC.PauseNS, GCBytesAlloc: res.GC.BytesAlloc,
			ResultOK: check(res.Value),
			PerPE:    res.PerPE,
		})
	}

	// Cannon's torus dimension: the largest q with q*q <= max
	// parallelism that divides the matrix (Params guarantees 12 | N).
	const q = 3

	for _, w := range edenNativeCounts {
		w := w
		runGpH("sumEuler", w, func(cfg native.Config) (*native.Result, error) {
			return native.Run(cfg, euler.Program(p.SumEulerN, p.SumEulerChunks, 0, true))
		}, func(v any) bool { return v.(int64) == eulerWant })
		runEden("sumEuler", w, func(cfg nativeeden.Config) (*nativeeden.Result, error) {
			return nativeeden.Run(cfg, euler.EdenProgram(p.SumEulerN, 8, 0))
		}, func(v any) bool { return v.(int64) == eulerWant })

		runGpH("matMul", w, func(cfg native.Config) (*native.Result, error) {
			return native.Run(cfg, matmul.BlockProgram(a, b, p.MatMulBlock, 0))
		}, func(v any) bool { return matmul.Equal(v.(matmul.Mat), matWant, 1e-9) })
		runEden("matMul", w, func(cfg nativeeden.Config) (*nativeeden.Result, error) {
			return nativeeden.Run(cfg, matmul.EdenCannonProgram(a, b, q, 0))
		}, func(v any) bool { return matmul.Equal(v.(matmul.Mat), matWant, 1e-9) })

		runGpH("apsp", w, func(cfg native.Config) (*native.Result, error) {
			return native.Run(cfg, apsp.Program(g, 0))
		}, func(v any) bool { return apsp.Equal(v.(apsp.Graph), apspWant) })
		runEden("apsp", w, func(cfg nativeeden.Config) (*nativeeden.Result, error) {
			ring := w
			if ring > p.APSPNodes {
				ring = p.APSPNodes
			}
			return nativeeden.Run(cfg, apsp.EdenRingProgram(g, ring, 0))
		}, func(v any) bool { return apsp.Equal(v.(apsp.Graph), apspWant) })
	}
	return s
}

// Render prints the head-to-head as a table, with per-runtime speedups
// relative to each runtime's own 1-way row (the paper's Figs. 3/5
// convention: each implementation against its own sequential base).
func (s *EdenNativeSweep) Render() string {
	headers := []string{"Workload", "Runtime", "Par", "Wall clock", "Speedup", "Messages", "Bytes shipped", "GCs", "GC pause", "Result"}
	base := map[string]int64{}
	for _, r := range s.Rows {
		if r.Parallelism == 1 {
			base[r.Runtime+"/"+r.Workload] = r.WallNS
		}
	}
	var rows [][]string
	for _, r := range s.Rows {
		speedup := "-"
		if b := base[r.Runtime+"/"+r.Workload]; b > 0 && r.WallNS > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(b)/float64(r.WallNS))
		}
		msgs, bytes := "-", "-"
		if r.Runtime == "eden-native" {
			msgs = fmt.Sprintf("%d", r.Messages)
			bytes = fmt.Sprintf("%d", r.BytesSent)
		}
		ok := "ok"
		if !r.ResultOK {
			ok = "WRONG"
		}
		rows = append(rows, []string{
			r.Workload, r.Runtime, fmt.Sprintf("%d", r.Parallelism),
			stats.Seconds(r.WallNS), speedup, msgs, bytes,
			fmt.Sprintf("%d", r.GCCycles), stats.Seconds(r.GCPauseNS), ok,
		})
	}
	title := fmt.Sprintf("GpH-native vs Eden-native head-to-head (wall clock; GOMAXPROCS=%d, NumCPU=%d)\n",
		s.GOMAXPROCS, s.NumCPU)
	return title + stats.Table(headers, rows)
}

// CheckShape verifies the machine-independent invariants: every result
// exact on both runtimes, and every Eden row showing the communication
// a distributed heap cannot avoid.
func (s *EdenNativeSweep) CheckShape() []string {
	var bad []string
	for _, r := range s.Rows {
		if !r.ResultOK {
			bad = append(bad, fmt.Sprintf("%s on %s at %d-way: result differs from the sequential oracle",
				r.Workload, r.Runtime, r.Parallelism))
		}
		if r.Runtime == "eden-native" && r.Parallelism > 1 && r.Messages == 0 {
			bad = append(bad, fmt.Sprintf("%s on eden-native at %d PEs: no messages recorded",
				r.Workload, r.Parallelism))
		}
	}
	return bad
}

// String implements fmt.Stringer.
func (s *EdenNativeSweep) String() string {
	out := s.Render()
	if bad := s.CheckShape(); len(bad) > 0 {
		out += "SHAPE VIOLATIONS:\n"
		for _, b := range bad {
			out += "  " + b + "\n"
		}
	} else {
		out += "shape: OK (both runtimes exact; Eden rows carry real message traffic)\n"
	}
	return out
}

// EdenNativeTimeline runs one workload on the native Eden backend with
// the eventlog enabled and reduces it to a per-PE wall-clock trace —
// the EdenTV diagram of the real run, with communication rendered as
// the Comm activity the simulator's figures use.
func EdenNativeTimeline(p Params, workload string, pes int) (TraceEntry, *nativeeden.Result, error) {
	cfg := nativeeden.NewConfig(pes)
	cfg.EventLog = true
	if p.FaultSpec != "" {
		plan, perr := faults.Parse(p.FaultSpec)
		if perr != nil {
			return TraceEntry{}, nil, perr
		}
		cfg.Faults = faults.NewInjector(plan)
	}
	cfg.Deadline = p.Deadline

	var (
		res *nativeeden.Result
		err error
		ok  bool
	)
	switch workload {
	case "sumeuler":
		res, err = nativeeden.Run(cfg, euler.EdenProgram(p.SumEulerN, 8, 0))
		if err == nil {
			ok = res.Value.(int64) == euler.SumTotientSieve(p.SumEulerN)
		}
	case "matmul":
		a, b := matmul.Random(p.MatMulN, 1), matmul.Random(p.MatMulN, 2)
		res, err = nativeeden.Run(cfg, matmul.EdenCannonProgram(a, b, 3, 0))
		if err == nil {
			ok = matmul.Equal(res.Value.(matmul.Mat), matmul.MulOracle(a, b), 1e-9)
		}
	case "apsp":
		g := apsp.RandomGraph(p.APSPNodes, 42, 100, 60)
		res, err = nativeeden.Run(cfg, apsp.EdenRingProgram(g, cfg.PEs, 0))
		if err == nil {
			ok = apsp.Equal(res.Value.(apsp.Graph), apsp.FloydWarshall(g))
		}
	default:
		return TraceEntry{}, nil, fmt.Errorf("experiments: unknown eden-native workload %q (want sumeuler, matmul or apsp)", workload)
	}
	if err != nil {
		// Failed runs keep their flushed event rings: return the partial
		// per-PE timeline with the error so tracedump can render what
		// each PE was doing up to the failure.
		if res != nil && res.Events != nil {
			tl := res.Trace()
			return TraceEntry{
				Name:     fmt.Sprintf("eden-native %s (FAILED, partial timeline): %v", workload, err),
				Elapsed:  res.WallNS,
				Trace:    tl,
				Rendered: tl.Render(p.TraceWidth),
				Summary:  tl.Summary(),
			}, res, err
		}
		return TraceEntry{}, nil, err
	}
	if !ok {
		return TraceEntry{}, nil, fmt.Errorf("experiments: eden-native %s result differs from the sequential oracle", workload)
	}

	tl := res.Trace()
	return TraceEntry{
		Name:     fmt.Sprintf("eden-native %s, %d PEs (wall clock)", workload, res.PEs),
		Elapsed:  res.WallNS,
		Trace:    tl,
		Rendered: tl.Render(p.TraceWidth),
		Summary:  tl.Summary(),
	}, res, nil
}
