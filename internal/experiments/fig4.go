package experiments

import (
	"fmt"
	"strings"

	"parhask/internal/eden"
	"parhask/internal/gph"
	"parhask/internal/trace"
	"parhask/internal/workloads/matmul"
)

// matmulEdenPEs runs Cannon's algorithm on a q×q torus over `pes`
// virtual PEs mapped onto `cores` physical cores. (Fig. 4 uses 9 PEs for
// the 3×3 torus — master co-located — and 17 for 4×4.)
func matmulEdenPEs(p Params, q, pes, cores int, a, b matmul.Mat) *eden.Result {
	cfg := eden.NewConfig(pes, cores)
	return runEden(cfg, matmul.EdenCannonProgram(a, b, q, cfg.Costs.MulAdd))
}

// Fig4 reproduces the paper's Fig. 4: traces of the matrix
// multiplication on the 8-core machine — three GpH variants plus Eden
// with 9 and 17 virtual PEs (3×3 and 4×4 block tori).
type Fig4 struct {
	Params  Params
	Entries []TraceEntry
}

// RunFig4 executes the five traced configurations.
func RunFig4(p Params) *Fig4 {
	f := &Fig4{Params: p}
	a := matmul.Random(p.MatMulN, 103)
	b := matmul.Random(p.MatMulN, 104)

	gphConfigs := []struct {
		name string
		mk   func(int) gph.Config
	}{
		{"GpH plain GHC-6.9", gph.PlainGHC69},
		{"GpH big allocation area", gph.BigAllocArea},
		{"GpH work stealing", gph.WorkStealingConfig},
	}
	for _, gc := range gphConfigs {
		res := matmulGpH(p, gc.mk(p.Cores8), a, b)
		f.Entries = append(f.Entries, TraceEntry{
			Name:     gc.name,
			Elapsed:  res.Elapsed,
			Trace:    res.Trace,
			Rendered: res.Trace.Render(p.TraceWidth),
			Summary:  res.Trace.Summary(),
		})
	}

	// The torus dimension must divide the matrix size; Quick() params
	// are chosen so 3 and 4 both divide MatMulN.
	for _, e := range []struct {
		q, pes int
	}{{3, 9}, {4, 17}} {
		res := matmulEdenPEs(p, e.q, e.pes, p.Cores8, a, b)
		f.Entries = append(f.Entries, TraceEntry{
			Name:     fmt.Sprintf("Eden %dx%d blocks, %d virtual PEs", e.q, e.q, e.pes),
			Elapsed:  res.Elapsed,
			Trace:    res.Trace,
			Rendered: res.Trace.Render(p.TraceWidth),
			Summary:  res.Trace.Summary(),
		})
	}
	return f
}

// Render prints the five timelines.
func (f *Fig4) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4: Traces of matrix multiplication, %d x %d elements (%d cores)\n\n",
		f.Params.MatMulN, f.Params.MatMulN, f.Params.Cores8)
	for i, e := range f.Entries {
		fmt.Fprintf(&b, "%c) %s  —  %s\n%s\n%s\n",
			'a'+i, e.Name, trace.FmtDur(e.Elapsed), e.Rendered, e.Summary)
	}
	return b.String()
}

// CheckShape verifies the paper's claims: unmodified GHC cannot use the
// eight cores equally well (frequent GC synchronisation), work stealing
// gives the best GpH runtime and good core usage, and Eden profits from
// using more virtual PEs than physical cores.
func (f *Fig4) CheckShape() []string {
	var bad []string
	plain, big, steal := f.Entries[0], f.Entries[1], f.Entries[2]
	eden9, eden17 := f.Entries[3], f.Entries[4]
	if steal.Elapsed >= plain.Elapsed || steal.Elapsed >= big.Elapsed {
		bad = append(bad, "work stealing is not the fastest GpH variant")
	}
	if pu, su := plain.Trace.Utilisation(), steal.Trace.Utilisation(); pu >= su {
		bad = append(bad, fmt.Sprintf("plain utilisation %.2f >= stealing %.2f", pu, su))
	}
	// "the Eden/distributed memory implementation can even profit from
	// using more virtual machines than we had actual cores": 17 PEs at
	// least roughly on par with 9 PEs.
	if float64(eden17.Elapsed) > float64(eden9.Elapsed)*1.10 {
		bad = append(bad, fmt.Sprintf("Eden 17 PEs (%s) more than 10%% slower than 9 PEs (%s)",
			trace.FmtDur(eden17.Elapsed), trace.FmtDur(eden9.Elapsed)))
	}
	return bad
}

// String implements fmt.Stringer.
func (f *Fig4) String() string {
	s := f.Render()
	if bad := f.CheckShape(); len(bad) > 0 {
		s += "SHAPE VIOLATIONS:\n  " + strings.Join(bad, "\n  ") + "\n"
	} else {
		s += "shape: OK (matches the paper's trace claims)\n"
	}
	return s
}
