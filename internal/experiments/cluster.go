package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"time"

	"parhask/internal/cluster"
	"parhask/internal/faults"
	"parhask/internal/graph"
)

// ClusterRow is one multi-process cluster run: the workload at a given
// process count, with the coordinator's folded statistics. WallNS is
// the root process's own wall time; CoordNS adds process launch, the
// handshake and the drain — the cluster's real end-to-end cost, and
// the number to compare against the single-process eden-native rows.
type ClusterRow struct {
	Workload  string `json:"workload"`
	Spec      string `json:"spec"`
	Procs     int    `json:"procs"`
	PerProc   int    `json:"per_proc"`
	Transport string `json:"transport"`
	WallNS    int64  `json:"wall_ns"`
	CoordNS   int64  `json:"coord_ns"`
	Messages  int64  `json:"messages"`
	BytesSent int64  `json:"bytes_sent"`
	ResultOK  bool   `json:"result_ok"`
}

// ClusterSweep is the multi-process Eden experiment (benchall
// -cluster): the three Eden workloads run as real worker OS processes
// over a socket transport, swept over process counts at a fixed number
// of PEs per process. Every cross-process message is wire-codec bytes,
// so the BytesSent column is literally bytes on the wire.
type ClusterSweep struct {
	Transport string       `json:"transport"`
	PerProc   int          `json:"per_proc"`
	Rows      []ClusterRow `json:"rows"`
	// Chaos is the chaos-under-cluster soak (benchall -chaos -cluster):
	// supervised runs with ranks killed, flapped, severed and wedged
	// under a restart budget.
	Chaos *ClusterChaos `json:"chaos,omitempty"`
}

// clusterProcCounts is the sweep's x-axis: one process (the protocol
// overhead baseline) up to four.
var clusterProcCounts = []int{1, 2, 4}

// RunClusterSweep runs the cluster sweep with transport "tcp" or
// "unix". Failures become rows with ResultOK=false rather than
// panics: a cluster run involves real processes and real sockets, and
// one misbehaving environment should not sink the whole sweep.
func RunClusterSweep(p Params, transport string) *ClusterSweep {
	const perProc = 2
	s := &ClusterSweep{Transport: transport, PerProc: perProc}
	for _, procs := range clusterProcCounts {
		specs := []struct{ workload, spec string }{
			{"sumEuler", fmt.Sprintf("sumeuler?n=%d&chunks=8", p.SumEulerN)},
			{"apsp", fmt.Sprintf("apsp?n=%d&ring=%d", p.APSPNodes, procs*perProc)},
			{"matmul", fmt.Sprintf("matmul?n=%d&q=2", p.MatMulN)},
		}
		for _, w := range specs {
			row := ClusterRow{
				Workload: w.workload, Spec: w.spec,
				Procs: procs, PerProc: perProc, Transport: transport,
			}
			res, err := cluster.Run(cluster.Config{
				Procs: procs, PerProc: perProc, Transport: transport,
				Spec: w.spec, Deadline: 2 * time.Minute,
			})
			if err == nil {
				_, oracle, berr := cluster.BuildProgram(w.spec)
				row.ResultOK = berr == nil && oracle(res.Value) == nil
				row.WallNS = res.WallNS
				row.CoordNS = res.CoordNS
				row.Messages = res.Total.Messages
				row.BytesSent = res.Total.BytesSent
			}
			s.Rows = append(s.Rows, row)
		}
	}
	return s
}

// String implements fmt.Stringer.
func (s *ClusterSweep) String() string {
	out := fmt.Sprintf("Multi-process Eden cluster sweep (%s transport, %d PEs per process)\n", s.Transport, s.PerProc)
	out += fmt.Sprintf("%-10s %6s %8s %12s %12s %10s %12s  %s\n",
		"workload", "procs", "PEs", "root wall", "end-to-end", "messages", "wire bytes", "result")
	for _, r := range s.Rows {
		ok := "FAIL"
		if r.ResultOK {
			ok = "ok"
		}
		out += fmt.Sprintf("%-10s %6d %8d %12v %12v %10d %12d  %s\n",
			r.Workload, r.Procs, r.Procs*r.PerProc,
			time.Duration(r.WallNS).Round(time.Microsecond),
			time.Duration(r.CoordNS).Round(time.Microsecond),
			r.Messages, r.BytesSent, ok)
	}
	return out
}

// CheckShape verifies the sweep's qualitative claims: every run's
// result matches its oracle, multi-process runs actually moved bytes
// over the wire, and (when a chaos soak rode along) no iteration
// violated the recovery invariant.
func (s *ClusterSweep) CheckShape() []string {
	var bad []string
	for _, r := range s.Rows {
		if !r.ResultOK {
			bad = append(bad, fmt.Sprintf("cluster %s procs=%d: result not oracle-equal (or run failed)", r.Workload, r.Procs))
		}
		if r.Procs > 1 && r.BytesSent == 0 {
			bad = append(bad, fmt.Sprintf("cluster %s procs=%d: no bytes crossed the wire", r.Workload, r.Procs))
		}
	}
	if s.Chaos != nil {
		for _, r := range s.Chaos.Violating() {
			bad = append(bad, fmt.Sprintf("cluster chaos iter %d (%s): %s", r.Iter, r.Mode, r.Detail))
		}
	}
	return bad
}

// Cluster chaos outcome classes. "ok" — the fault never bit (or was
// absorbed invisibly); "recovered" — the run failed or lost a link and
// the supervisor healed it into an oracle-equal result; "structured" —
// the run failed, but with a typed, diagnosable error (the expected
// outcome when the fault outruns the restart budget); "violation" —
// a wrong result, an unstructured failure, or a hang.
const (
	ClusterChaosRecovered = "recovered"
)

// ClusterChaosRow is one supervised cluster run under an injected
// rank-level fault.
type ClusterChaosRow struct {
	Iter int `json:"iter"`
	// Mode is the fault class this iteration injected:
	// kill | flap | sever | wedge.
	Mode    string `json:"mode"`
	Spec    string `json:"spec"`
	Outcome string `json:"outcome"`
	Detail  string `json:"detail,omitempty"`
	// Recovery telemetry: full-run restarts, in-place link reconnects,
	// the attempt history, and the recovery latency (first failure to
	// recovered result) when a restart happened.
	Restarts   int               `json:"restarts,omitempty"`
	Reconnects int               `json:"reconnects,omitempty"`
	Attempts   []cluster.Attempt `json:"attempts,omitempty"`
	RecoveryNS int64             `json:"recovery_ns,omitempty"`
	WallNS     int64             `json:"wall_ns"`
}

// Repro is the command line that replays this iteration exactly.
func (r ClusterChaosRow) Repro(transport string, restarts int, n int) string {
	return fmt.Sprintf("go run ./cmd/sumeuler -runtime eden -cluster 3 -pes 1 -transport %s -n %d -faults %q -restarts %d -deadline 30s",
		transport, n, r.Spec, restarts)
}

// ClusterChaos is the chaos-under-cluster soak report: iters supervised
// 3-process sumEuler runs, each with one rank killed, link-flapped,
// severed or wedged at a seed-derived moment, under a restart budget.
// The invariant mirrors the in-process soak's, with recovery added:
// every iteration ends in an oracle-equal result (clean or recovered)
// or a structured failure; wrong results, unstructured errors and
// hangs are violations.
type ClusterChaos struct {
	Iterations int    `json:"iterations"`
	Seed       uint64 `json:"seed"`
	Transport  string `json:"transport"`
	Budget     int    `json:"budget"` // restarts allowed per run
	N          int    `json:"sumeuler_n"`
	OK         int    `json:"ok"`
	Recovered  int    `json:"recovered"`
	Structured int    `json:"structured"`
	Violations int    `json:"violations"`
	// Recovery latency over the recovered iterations, nanoseconds.
	MaxRecoveryNS int64             `json:"max_recovery_ns,omitempty"`
	SumRecoveryNS int64             `json:"sum_recovery_ns,omitempty"`
	Rows          []ClusterChaosRow `json:"rows"`
}

// clusterChaosSpec derives one iteration's fault plan: which rank,
// which fault class, and when, all from the sub-seed.
func clusterChaosSpec(sub uint64) (mode, spec string) {
	rank := int(sub>>16) % 3
	at := 10 + (sub>>24)%40 // ms
	switch sub % 4 {
	case 0:
		return "kill", fmt.Sprintf("seed=%d,kill-rank=%d:%dms", sub, rank, at)
	case 1:
		down := 30 + (sub>>32)%90 // ms
		return "flap", fmt.Sprintf("seed=%d,flap-rank=%d:%dms:%dms", sub, rank, at, down)
	case 2:
		return "sever", fmt.Sprintf("seed=%d,sever-rank=%d:%dms", sub, rank, at)
	default:
		return "wedge", fmt.Sprintf("seed=%d,wedge-rank=%d:%dms", sub, rank, at)
	}
}

// RunClusterChaos runs the chaos-under-cluster soak. Every iteration is
// a supervised run: kills and wedges recover by respawn (the faults are
// one-shot, so the retry is clean), flaps recover in place over the
// reconnection protocol, and severed links burn a restart. The oracle
// gate is total — a "recovered" run whose result differs from the
// sequential oracle is a violation, which is exactly the corruption the
// seq/ack replay layer exists to prevent.
func RunClusterChaos(p Params, iters int, seed uint64, transport string, restarts int, reconnect bool) *ClusterChaos {
	n := p.SumEulerN
	s := &ClusterChaos{Iterations: iters, Seed: seed, Transport: transport, Budget: restarts, N: n}
	spec := fmt.Sprintf("sumeuler?n=%d&chunks=8", n)
	_, oracle, err := cluster.BuildProgram(spec)
	if err != nil {
		panic(fmt.Sprintf("experiments: cluster chaos spec %q: %v", spec, err))
	}
	for i := 0; i < iters; i++ {
		sub := splitmix64(seed + uint64(i))
		mode, fspec := clusterChaosSpec(sub)
		row := ClusterChaosRow{Iter: i, Mode: mode, Spec: fspec}
		cfg := cluster.Config{
			Procs: 3, PerProc: 1, Transport: transport,
			Spec: spec, Faults: fspec,
			Heartbeat: 100 * time.Millisecond,
			Deadline:  30 * time.Second,
			Restart:   &cluster.Restart{Max: restarts, Backoff: 50 * time.Millisecond, RetryDeadlocks: true},
		}
		if !reconnect {
			// Without in-place reconnection every link fault burns a
			// restart instead — the soak still must end oracle-equal.
			cfg.ReconnectWindow = -1
		}
		start := time.Now()
		res, runErr := cluster.RunSupervised(cfg)
		row.WallNS = time.Since(start).Nanoseconds()
		if res != nil {
			row.Restarts = res.Restarts
			row.Reconnects = res.Reconnects
			row.Attempts = res.Attempts
			row.RecoveryNS = res.RecoveryNS
		}
		row.Outcome, row.Detail = classifyClusterChaos(res, runErr, oracle)
		switch row.Outcome {
		case ChaosOK:
			s.OK++
		case ClusterChaosRecovered:
			s.Recovered++
			if row.RecoveryNS > s.MaxRecoveryNS {
				s.MaxRecoveryNS = row.RecoveryNS
			}
			s.SumRecoveryNS += row.RecoveryNS
		case ChaosStructured:
			s.Structured++
		default:
			s.Violations++
		}
		s.Rows = append(s.Rows, row)
	}
	return s
}

// classifyClusterChaos sorts one supervised run into the soak's
// outcome classes.
func classifyClusterChaos(res *cluster.Result, err error, oracle func(graph.Value) error) (string, string) {
	if err == nil {
		if res == nil {
			return ChaosViolation, "nil result without an error"
		}
		if oerr := oracle(res.Value); oerr != nil {
			return ChaosViolation, "recovered result fails the oracle: " + oerr.Error()
		}
		if res.Restarts > 0 || res.Reconnects > 0 {
			return ClusterChaosRecovered, ""
		}
		return ChaosOK, ""
	}
	var ex *cluster.RestartsExhaustedError
	var pd *faults.ProcessDeathError
	var de *faults.DeadlockError
	if errors.As(err, &ex) || errors.As(err, &pd) || errors.As(err, &de) {
		return ChaosStructured, err.Error()
	}
	return ChaosViolation, "unstructured failure: " + err.Error()
}

// Violating returns the rows that failed the soak's invariant.
func (s *ClusterChaos) Violating() []ClusterChaosRow {
	var out []ClusterChaosRow
	for _, r := range s.Rows {
		if r.Outcome == ChaosViolation {
			out = append(out, r)
		}
	}
	return out
}

// String renders the soak summary with the recovery latency figures
// and, when there are any, every violation with its repro command.
func (s *ClusterChaos) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Chaos-under-cluster soak: %d iterations, seed %d, %s transport, restart budget %d\n",
		s.Iterations, s.Seed, s.Transport, s.Budget)
	fmt.Fprintf(&sb, "  ok %d | recovered %d | structured %d | VIOLATIONS %d\n",
		s.OK, s.Recovered, s.Structured, s.Violations)
	if s.Recovered > 0 {
		fmt.Fprintf(&sb, "  recovery latency: mean %v, max %v\n",
			time.Duration(s.SumRecoveryNS/int64(s.Recovered)).Round(time.Millisecond),
			time.Duration(s.MaxRecoveryNS).Round(time.Millisecond))
	}
	if v := s.Violating(); len(v) > 0 {
		sb.WriteString("violations:\n")
		for _, r := range v {
			fmt.Fprintf(&sb, "  iter %d (%s): %s\n    repro: %s\n", r.Iter, r.Mode, r.Detail, r.Repro(s.Transport, s.Budget, s.N))
		}
	} else {
		sb.WriteString("invariant holds: every run ended oracle-equal (clean or recovered) or failed structurally\n")
	}
	return sb.String()
}

// JSON renders the full soak — the recovery-trace artifact CI uploads
// (every row carries its attempt history and latency).
func (s *ClusterChaos) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// MergeClusterChaos folds a chaos-under-cluster soak into the
// results/BENCH_native.json artifact at path without disturbing the
// sections other benchall modes wrote: the file is read as a generic
// map, the soak lands under cluster.chaos, and everything else
// survives byte-for-byte as JSON values. A missing or unreadable file
// starts fresh.
func MergeClusterChaos(path string, c *ClusterChaos) error {
	m := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if jerr := json.Unmarshal(data, &m); jerr != nil {
			return fmt.Errorf("experiments: %s exists but is not JSON: %w", path, jerr)
		}
	}
	sect, _ := m["cluster"].(map[string]any)
	if sect == nil {
		sect = map[string]any{}
	}
	blob, err := json.Marshal(c)
	if err != nil {
		return err
	}
	var chaos any
	if err := json.Unmarshal(blob, &chaos); err != nil {
		return err
	}
	sect["chaos"] = chaos
	m["cluster"] = sect
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, out, 0o644)
}
