package experiments

import (
	"fmt"
	"time"

	"parhask/internal/cluster"
)

// ClusterRow is one multi-process cluster run: the workload at a given
// process count, with the coordinator's folded statistics. WallNS is
// the root process's own wall time; CoordNS adds process launch, the
// handshake and the drain — the cluster's real end-to-end cost, and
// the number to compare against the single-process eden-native rows.
type ClusterRow struct {
	Workload  string `json:"workload"`
	Spec      string `json:"spec"`
	Procs     int    `json:"procs"`
	PerProc   int    `json:"per_proc"`
	Transport string `json:"transport"`
	WallNS    int64  `json:"wall_ns"`
	CoordNS   int64  `json:"coord_ns"`
	Messages  int64  `json:"messages"`
	BytesSent int64  `json:"bytes_sent"`
	ResultOK  bool   `json:"result_ok"`
}

// ClusterSweep is the multi-process Eden experiment (benchall
// -cluster): the three Eden workloads run as real worker OS processes
// over a socket transport, swept over process counts at a fixed number
// of PEs per process. Every cross-process message is wire-codec bytes,
// so the BytesSent column is literally bytes on the wire.
type ClusterSweep struct {
	Transport string       `json:"transport"`
	PerProc   int          `json:"per_proc"`
	Rows      []ClusterRow `json:"rows"`
}

// clusterProcCounts is the sweep's x-axis: one process (the protocol
// overhead baseline) up to four.
var clusterProcCounts = []int{1, 2, 4}

// RunClusterSweep runs the cluster sweep with transport "tcp" or
// "unix". Failures become rows with ResultOK=false rather than
// panics: a cluster run involves real processes and real sockets, and
// one misbehaving environment should not sink the whole sweep.
func RunClusterSweep(p Params, transport string) *ClusterSweep {
	const perProc = 2
	s := &ClusterSweep{Transport: transport, PerProc: perProc}
	for _, procs := range clusterProcCounts {
		specs := []struct{ workload, spec string }{
			{"sumEuler", fmt.Sprintf("sumeuler?n=%d&chunks=8", p.SumEulerN)},
			{"apsp", fmt.Sprintf("apsp?n=%d&ring=%d", p.APSPNodes, procs*perProc)},
			{"matmul", fmt.Sprintf("matmul?n=%d&q=2", p.MatMulN)},
		}
		for _, w := range specs {
			row := ClusterRow{
				Workload: w.workload, Spec: w.spec,
				Procs: procs, PerProc: perProc, Transport: transport,
			}
			res, err := cluster.Run(cluster.Config{
				Procs: procs, PerProc: perProc, Transport: transport,
				Spec: w.spec, Deadline: 2 * time.Minute,
			})
			if err == nil {
				_, oracle, berr := cluster.BuildProgram(w.spec)
				row.ResultOK = berr == nil && oracle(res.Value) == nil
				row.WallNS = res.WallNS
				row.CoordNS = res.CoordNS
				row.Messages = res.Total.Messages
				row.BytesSent = res.Total.BytesSent
			}
			s.Rows = append(s.Rows, row)
		}
	}
	return s
}

// String implements fmt.Stringer.
func (s *ClusterSweep) String() string {
	out := fmt.Sprintf("Multi-process Eden cluster sweep (%s transport, %d PEs per process)\n", s.Transport, s.PerProc)
	out += fmt.Sprintf("%-10s %6s %8s %12s %12s %10s %12s  %s\n",
		"workload", "procs", "PEs", "root wall", "end-to-end", "messages", "wire bytes", "result")
	for _, r := range s.Rows {
		ok := "FAIL"
		if r.ResultOK {
			ok = "ok"
		}
		out += fmt.Sprintf("%-10s %6d %8d %12v %12v %10d %12d  %s\n",
			r.Workload, r.Procs, r.Procs*r.PerProc,
			time.Duration(r.WallNS).Round(time.Microsecond),
			time.Duration(r.CoordNS).Round(time.Microsecond),
			r.Messages, r.BytesSent, ok)
	}
	return out
}

// CheckShape verifies the sweep's qualitative claims: every run's
// result matches its oracle, and multi-process runs actually moved
// bytes over the wire.
func (s *ClusterSweep) CheckShape() []string {
	var bad []string
	for _, r := range s.Rows {
		if !r.ResultOK {
			bad = append(bad, fmt.Sprintf("cluster %s procs=%d: result not oracle-equal (or run failed)", r.Workload, r.Procs))
		}
		if r.Procs > 1 && r.BytesSent == 0 {
			bad = append(bad, fmt.Sprintf("cluster %s procs=%d: no bytes crossed the wire", r.Workload, r.Procs))
		}
	}
	return bad
}
