package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered series in the Prometheus
// text exposition format (version 0.0.4). Histograms emit cumulative
// `_bucket{le=…}` series (non-empty buckets plus +Inf), `_sum` and
// `_count`, and additionally two derived gauge families `<name>_p50`
// and `<name>_p99` holding the snapshot quantiles, so scrapers that
// only want headline latencies need no bucket math.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshotFamilies() {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		switch f.kind {
		case kindCounter:
			for _, s := range f.order {
				fmt.Fprintf(bw, "%s%s %d\n", f.name, s.labels, s.c.Value())
			}
		case kindGauge:
			for _, s := range f.order {
				fmt.Fprintf(bw, "%s%s %s\n", f.name, s.labels, fmtFloat(s.g.Value()))
			}
		case kindCounterFunc, kindGaugeFunc:
			for _, s := range f.order {
				var v float64
				if s.fn != nil {
					v = s.fn()
				}
				fmt.Fprintf(bw, "%s%s %s\n", f.name, s.labels, fmtFloat(v))
			}
		case kindHistogram:
			type quantiled struct {
				labels   string
				p50, p99 float64
			}
			var qs []quantiled
			for _, s := range f.order {
				snap := s.h.Snapshot()
				var cum int64
				for i, n := range snap.Counts {
					if n == 0 {
						continue
					}
					cum += n
					_, hi := bucketBounds(i)
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name,
						withLabel(s.labels, "le", fmtFloat(float64(hi)*f.scale)), cum)
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, withLabel(s.labels, "le", "+Inf"), snap.Count)
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, s.labels, fmtFloat(float64(snap.Sum)*f.scale))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name, s.labels, snap.Count)
				qs = append(qs, quantiled{
					labels: s.labels,
					p50:    float64(snap.Quantile(0.50)) * f.scale,
					p99:    float64(snap.Quantile(0.99)) * f.scale,
				})
			}
			for _, suffix := range []string{"_p50", "_p99"} {
				fmt.Fprintf(bw, "# HELP %s%s snapshot quantile derived from %s\n", f.name, suffix, f.name)
				fmt.Fprintf(bw, "# TYPE %s%s gauge\n", f.name, suffix)
				for _, q := range qs {
					v := q.p50
					if suffix == "_p99" {
						v = q.p99
					}
					fmt.Fprintf(bw, "%s%s%s %s\n", f.name, suffix, q.labels, fmtFloat(v))
				}
			}
		}
	}
	return bw.Flush()
}

// withLabel appends one k="v" pair to an already-rendered label
// suffix.
func withLabel(suffix, k, v string) string {
	pair := fmt.Sprintf("%s=%q", k, v)
	if suffix == "" {
		return "{" + pair + "}"
	}
	return suffix[:len(suffix)-1] + "," + pair + "}"
}

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counters returns a flat map of every cumulative series —
// counters, pull counters, and histogram counts/sums (in raw sample
// units) — keyed by the fully rendered series name. The /statusz
// stream mode diffs two of these maps to report deltas per tick.
func (r *Registry) Counters() map[string]float64 {
	out := make(map[string]float64)
	if r == nil {
		return out
	}
	for _, f := range r.snapshotFamilies() {
		switch f.kind {
		case kindCounter:
			for _, s := range f.order {
				out[f.name+s.labels] = float64(s.c.Value())
			}
		case kindCounterFunc:
			for _, s := range f.order {
				if s.fn != nil {
					out[f.name+s.labels] = s.fn()
				}
			}
		case kindHistogram:
			for _, s := range f.order {
				snap := s.h.Snapshot()
				out[f.name+"_count"+s.labels] = float64(snap.Count)
				out[f.name+"_sum"+s.labels] = float64(snap.Sum)
			}
		}
	}
	return out
}

// ParseProm parses a Prometheus text exposition into a flat
// series-name → value map (comments and blank lines skipped). It is
// the scrape-side inverse of WritePrometheus, used by the service
// benchmark and CI to assert on live /metrics output.
func ParseProm(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("metrics: unparseable exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("metrics: bad value in line %q: %v", line, err)
		}
		out[strings.TrimSpace(line[:i])] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
