// Package metrics is a small, dependency-free metric registry for the
// resident runtimes, built in the same style as the native backend's
// owner-written counters: the hot path is lock-free, sharded to avoid
// cache-line contention, and the disabled path is a nil check.
//
// Three series kinds exist:
//
//   - Counter: monotone int64, sharded across padded atomic cells so
//     concurrent workers do not bounce a cache line. Workers with a
//     stable identity can use AddAt(shard, n) to pin their shard; the
//     identity-less path (Add) hashes the goroutine's stack address.
//   - Gauge / GaugeFunc / CounterFunc: instantaneous values, either
//     pushed (atomic float64 bits) or pulled at exposition time.
//   - Histogram: log-linear bucketed latency distribution (8
//     sub-buckets per octave, so a quantile read from a bucket
//     midpoint is within 1/16 ≈ 6.25% of the true sample). Snapshots
//     are mergeable and conserve total count.
//
// Registration is idempotent: asking for the same family name + label
// set returns the existing series, so independently constructed
// components (e.g. Eden lanes) can share one series safely.
//
// All record-side methods are safe on nil receivers and do nothing,
// so call sites can keep unconditional metric calls behind a
// nil-registry configuration, exactly like the eventlog's disabled
// path.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"
)

// kind discriminates the series types within a family.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// numShards is the per-Counter/per-Histogram shard count: enough to
// spread the machine's workers out, capped so an idle registry stays
// small. Always a power of two.
var numShards = func() int {
	n := runtime.GOMAXPROCS(0)
	if n > 16 {
		n = 16
	}
	shards := 1
	for shards < n {
		shards <<= 1
	}
	return shards
}()

// shardIndex picks a shard for the calling goroutine. Goroutine
// stacks are at least 1KiB apart, so the stack address of a local is
// a cheap, stable-enough hash of "which goroutine am I" for the
// lifetime of one call.
func shardIndex(n int) int {
	var b byte
	h := uintptr(unsafe.Pointer(&b)) >> 10
	h ^= h >> 7
	return int(h) & (n - 1)
}

// shard is one padded counter cell; the padding keeps adjacent shards
// on distinct cache lines (same trick as native's wcounters).
type shard struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotone, sharded int64 counter.
type Counter struct {
	shards []shard
}

// Add adds n from an identity-less goroutine.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.shards[shardIndex(len(c.shards))].v.Add(n)
}

// AddAt adds n on behalf of a caller with a stable worker identity
// (e.g. a resident worker id), pinning its shard so the hot path
// never collides with a neighbour.
func (c *Counter) AddAt(worker int, n int64) {
	if c == nil {
		return
	}
	c.shards[worker&(len(c.shards)-1)].v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the shards. It is monotone but not a consistent cut —
// fine for rates and totals, same contract as Pool.Snapshot.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Gauge is an instantaneous float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value loads the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram bucket geometry: values 0..7 get exact unit buckets; from
// 8 up, each octave [2^e, 2^(e+1)) is split into 8 linear sub-buckets
// [(8+m)<<(e-3), (9+m)<<(e-3)). The relative width of a sub-bucket is
// at most 1/8 of its lower bound, so the midpoint estimate returned
// by Quantile is within 1/16 of the true sample value.
const (
	histSubBuckets = 8
	// Max exponent for a positive int64 is 62, so the last bucket
	// index is (62-2)*8 + 7 = 487.
	histBuckets = 488
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < histSubBuckets {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // >= 3
	m := int((uint64(v) >> uint(e-3)) & 7)
	return (e-2)*histSubBuckets + m
}

// bucketBounds returns the half-open [lo, hi) value range of a bucket.
func bucketBounds(idx int) (lo, hi int64) {
	if idx < histSubBuckets {
		return int64(idx), int64(idx) + 1
	}
	e := idx/histSubBuckets + 2
	m := int64(idx % histSubBuckets)
	lo = (8 + m) << uint(e-3)
	if idx == histBuckets-1 {
		// The final bucket's upper bound would be 2^63; clamp to the
		// largest representable sample.
		return lo, math.MaxInt64
	}
	return lo, (9 + m) << uint(e-3)
}

// histShard is one worker-sharded slice of a histogram. Sum and count
// ride in the same struct; exact conservation across a merge is
// guaranteed, point-in-time consistency between count and sum is not
// (same monotone-cut contract as Counter.Value).
type histShard struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
}

// Histogram is a sharded log-linear histogram over non-negative
// int64 samples (typically nanoseconds).
type Histogram struct {
	shards []histShard
}

// Observe records one sample. Negative samples clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	s := &h.shards[shardIndex(len(h.shards))]
	s.counts[bucketIndex(v)].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
}

// HistSnapshot is a mergeable point-in-time copy of a histogram.
type HistSnapshot struct {
	Counts [histBuckets]int64
	Count  int64
	Sum    int64
}

// Snapshot folds the shards into one snapshot.
func (h *Histogram) Snapshot() *HistSnapshot {
	s := &HistSnapshot{}
	if h == nil {
		return s
	}
	for i := range h.shards {
		sh := &h.shards[i]
		for b := range sh.counts {
			s.Counts[b] += sh.counts[b].Load()
		}
		s.Count += sh.count.Load()
		s.Sum += sh.sum.Load()
	}
	return s
}

// Merge adds o into s.
func (s *HistSnapshot) Merge(o *HistSnapshot) {
	if o == nil {
		return
	}
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Quantile returns the estimated q-quantile (0 < q <= 1) using the
// rank = ceil(q*N) convention: the smallest recorded value whose
// cumulative count reaches the rank. Exact buckets (values < 8)
// return the exact value; log buckets return the bucket midpoint,
// which is within 1/16 of the true sample.
func (s *HistSnapshot) Quantile(q float64) int64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for i := range s.Counts {
		cum += s.Counts[i]
		if cum >= rank {
			lo, hi := bucketBounds(i)
			if hi-lo <= 1 {
				return lo
			}
			return lo + (hi-lo)/2
		}
	}
	return 0
}

// series is one registered time series.
type series struct {
	labels string // rendered {k="v",...} suffix, "" when unlabelled
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// family groups the series sharing one metric name.
type family struct {
	name  string
	help  string
	kind  kind
	scale float64 // histogram exposition scale (e.g. 1e-9 for ns → s)
	index map[string]*series
	order []*series
}

// Registry holds families and exposition collectors.
type Registry struct {
	mu         sync.Mutex
	fams       map[string]*family
	order      []*family
	collectors []func()
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// AddCollector registers fn to run once at the start of every
// exposition (WritePrometheus or Counters). Components use it to
// refresh cached snapshots that several pull series read, so an
// exposition costs one Pool.Snapshot, not one per series.
func (r *Registry) AddCollector(fn func()) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// labelSuffix renders alternating k,v pairs as a stable {…} suffix.
func labelSuffix(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("metrics: odd label list (want k,v pairs)")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// register finds or creates the family and the series within it.
func (r *Registry) register(name, help string, k kind, scale float64, labels []string) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, scale: scale, index: make(map[string]*series)}
		r.fams[name] = f
		r.order = append(r.order, f)
	} else if f.kind != k {
		panic(fmt.Sprintf("metrics: %s registered as %s, re-requested as %s", name, f.kind, k))
	}
	ls := labelSuffix(labels)
	if s := f.index[ls]; s != nil {
		return s
	}
	s := &series{labels: ls}
	switch k {
	case kindCounter:
		s.c = &Counter{shards: make([]shard, numShards)}
	case kindGauge:
		s.g = &Gauge{}
	case kindHistogram:
		s.h = &Histogram{shards: make([]histShard, numShards)}
	}
	f.index[ls] = s
	f.order = append(f.order, s)
	return s
}

// Counter returns the counter series for name + labels, creating it
// on first use. Safe on a nil registry (returns a nil series whose
// methods are no-ops).
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindCounter, 0, labels).c
}

// Gauge returns the gauge series for name + labels.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindGauge, 0, labels).g
}

// CounterFunc registers a pull counter whose value is read at
// exposition time. Re-registering the same name + labels replaces
// the function (last writer wins).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	s := r.register(name, help, kindCounterFunc, 0, labels)
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// GaugeFunc registers a pull gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	s := r.register(name, help, kindGaugeFunc, 0, labels)
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// Histogram returns the histogram series for name + labels. scale is
// applied at exposition only (1e-9 renders nanosecond samples as
// Prometheus-conventional seconds); raw snapshots stay in sample
// units.
func (r *Registry) Histogram(name, help string, scale float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	if scale == 0 {
		scale = 1
	}
	return r.register(name, help, kindHistogram, scale, labels).h
}

// snapshotFamilies runs the collectors and copies out the family and
// series structure. The copy lets exposition run pull functions
// without holding the registry lock — a pull function may take
// component locks (e.g. the serve admission mutex) whose holders in
// turn register new series, so holding r.mu across fn() could
// deadlock.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	collectors := append([]func(){}, r.collectors...)
	r.mu.Unlock()
	for _, fn := range collectors {
		fn()
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, f := range r.order {
		cp := &family{name: f.name, help: f.help, kind: f.kind, scale: f.scale}
		cp.order = append(cp.order, f.order...)
		fams = append(fams, cp)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}
