package metrics

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func TestBucketGeometry(t *testing.T) {
	// Every representable value must land in a bucket whose bounds
	// contain it, and indices must be monotone in the value.
	prev := -1
	for _, v := range []int64{0, 1, 7, 8, 9, 15, 16, 17, 100, 1023, 1024, 1025,
		1 << 20, 1<<20 + 1, 1 << 40, 1<<62 - 1, 1 << 62, 1<<63 - 1} {
		idx := bucketIndex(v)
		lo, hi := bucketBounds(idx)
		// The top bucket's bound is clamped to MaxInt64 and treated
		// as inclusive; every other bucket is half-open.
		if v < lo || (v >= hi && hi != math.MaxInt64) {
			t.Fatalf("value %d in bucket %d with bounds [%d,%d)", v, idx, lo, hi)
		}
		if idx < prev {
			t.Fatalf("bucket index not monotone at %d: %d < %d", v, idx, prev)
		}
		if idx >= histBuckets {
			t.Fatalf("bucket index %d out of range for value %d", idx, v)
		}
		prev = idx
	}
}

func TestHistogramConcurrentConservation(t *testing.T) {
	// Concurrent recorders; the merged snapshot must conserve the
	// total count and sum exactly. Run under -race in CI.
	reg := New()
	h := reg.Histogram("t_seconds", "test", 1e-9)
	const goroutines = 8
	const perG = 5000
	var wg sync.WaitGroup
	sums := make([]int64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 1))
			for i := 0; i < perG; i++ {
				v := rng.Int63n(1 << 30)
				sums[g] += v
				h.Observe(v)
			}
		}(g)
	}
	wg.Wait()
	snap := h.Snapshot()
	if want := int64(goroutines * perG); snap.Count != want {
		t.Fatalf("count not conserved: got %d want %d", snap.Count, want)
	}
	var bucketTotal, wantSum int64
	for _, n := range snap.Counts {
		bucketTotal += n
	}
	if bucketTotal != snap.Count {
		t.Fatalf("bucket counts %d != count %d", bucketTotal, snap.Count)
	}
	for _, s := range sums {
		wantSum += s
	}
	if snap.Sum != wantSum {
		t.Fatalf("sum not conserved: got %d want %d", snap.Sum, wantSum)
	}

	// Merging two snapshots adds exactly.
	merged := &HistSnapshot{}
	merged.Merge(snap)
	merged.Merge(snap)
	if merged.Count != 2*snap.Count || merged.Sum != 2*snap.Sum {
		t.Fatalf("merge not additive: %d/%d vs %d/%d", merged.Count, merged.Sum, snap.Count, snap.Sum)
	}
}

func TestHistogramQuantileErrorBound(t *testing.T) {
	// Against a known sample set, the histogram quantile (bucket
	// midpoint, rank = ceil(q*N)) must be within half a bucket width
	// of the exact same-rank order statistic — i.e. within 1/16
	// relative error for values >= 8.
	reg := New()
	h := reg.Histogram("q_seconds", "test", 1e-9)
	rng := rand.New(rand.NewSource(7))
	samples := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform spread over ~5 decades, the shape of a latency
		// distribution.
		v := int64(1) << uint(rng.Intn(24))
		v += rng.Int63n(v)
		samples = append(samples, v)
		h.Observe(v)
	}
	snap := h.Snapshot()
	sorted := append([]int64{}, samples...)
	sortInt64(sorted)
	for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
		rank := int64(float64(len(sorted)) * q)
		if rank < 1 {
			rank = 1
		}
		exact := sorted[rank-1]
		got := snap.Quantile(q)
		lo, hi := bucketBounds(bucketIndex(exact))
		if got < lo || got >= hi {
			t.Fatalf("q=%.2f: estimate %d outside exact value %d's bucket [%d,%d)", q, got, exact, lo, hi)
		}
		relErr := float64(got-exact) / float64(exact)
		if relErr < 0 {
			relErr = -relErr
		}
		if relErr > 1.0/16 {
			t.Fatalf("q=%.2f: relative error %.4f exceeds 1/16 (got %d, exact %d)", q, relErr, got, exact)
		}
	}
}

func sortInt64(s []int64) {
	// Tiny shellsort to avoid importing sort with a wrapper type.
	for gap := len(s) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(s); i++ {
			for j := i; j >= gap && s[j-gap] > s[j]; j -= gap {
				s[j-gap], s[j] = s[j], s[j-gap]
			}
		}
	}
}

func TestDisabledAndEnabledPathsAllocFree(t *testing.T) {
	// Disabled path: nil receivers must be no-ops with zero
	// allocations — the same contract as the eventlog.
	var (
		c *Counter
		g *Gauge
		h *Histogram
	)
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		c.AddAt(3, 1)
		g.Set(2.5)
		h.Observe(12345)
	}); n != 0 {
		t.Fatalf("disabled path allocates: %.1f allocs/op", n)
	}
	// Enabled path: the record hot path is also allocation-free.
	reg := New()
	ec := reg.Counter("c_total", "test")
	eg := reg.Gauge("g", "test")
	eh := reg.Histogram("h_seconds", "test", 1e-9)
	if n := testing.AllocsPerRun(1000, func() {
		ec.Add(1)
		ec.AddAt(3, 1)
		eg.Set(2.5)
		eh.Observe(12345)
	}); n != 0 {
		t.Fatalf("enabled path allocates: %.1f allocs/op", n)
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	reg := New()
	a := reg.Counter("jobs_total", "jobs", "outcome", "ok")
	b := reg.Counter("jobs_total", "jobs", "outcome", "ok")
	if a != b {
		t.Fatal("same family+labels returned distinct counters")
	}
	other := reg.Counter("jobs_total", "jobs", "outcome", "error")
	if a == other {
		t.Fatal("distinct labels returned the same counter")
	}
	ha := reg.Histogram("lat_seconds", "latency", 1e-9)
	hb := reg.Histogram("lat_seconds", "latency", 1e-9)
	if ha != hb {
		t.Fatal("same histogram family returned distinct histograms")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	reg.Gauge("jobs_total", "jobs")
}

func TestWritePrometheusAndParseRoundTrip(t *testing.T) {
	reg := New()
	reg.Counter("jobs_total", "jobs", "outcome", "ok").Add(9)
	reg.Counter("jobs_total", "jobs", "outcome", "error").Add(2)
	reg.Gauge("depth", "queue depth").Set(3)
	reg.GaugeFunc("uptime_seconds", "uptime", func() float64 { return 12.5 })
	reg.CounterFunc("steals_total", "steals", func() float64 { return 41 })
	h := reg.Histogram("lat_seconds", "latency", 1e-9)
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 1000) // 1µs .. 100µs
	}
	collected := false
	reg.AddCollector(func() { collected = true })

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !collected {
		t.Fatal("collector did not run during exposition")
	}
	text := buf.String()
	for _, want := range []string{
		`jobs_total{outcome="ok"} 9`,
		`jobs_total{outcome="error"} 2`,
		"depth 3",
		"uptime_seconds 12.5",
		"steals_total 41",
		"# TYPE lat_seconds histogram",
		"lat_seconds_count 100",
		`lat_seconds_bucket{le="+Inf"} 100`,
		"# TYPE lat_seconds_p50 gauge",
		"# TYPE lat_seconds_p99 gauge",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	parsed, err := ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got := parsed[`jobs_total{outcome="ok"}`]; got != 9 {
		t.Fatalf("parsed ok counter = %v, want 9", got)
	}
	if got := parsed["lat_seconds_count"]; got != 100 {
		t.Fatalf("parsed histogram count = %v, want 100", got)
	}
	// The derived p50 gauge must be within a bucket width (6.25%) of
	// the true 50µs median, in scaled (seconds) units.
	p50 := parsed["lat_seconds_p50"]
	if p50 < 50e-6*(1-1.0/16) || p50 > 50e-6*(1+1.0/16) {
		t.Fatalf("derived p50 %.3g not within 1/16 of 50µs", p50)
	}

	// Counters() view: cumulative series only, raw sample units.
	cs := reg.Counters()
	if cs[`jobs_total{outcome="ok"}`] != 9 {
		t.Fatalf("Counters ok = %v", cs[`jobs_total{outcome="ok"}`])
	}
	if cs["lat_seconds_count"] != 100 {
		t.Fatalf("Counters histogram count = %v", cs["lat_seconds_count"])
	}
	if _, ok := cs["depth"]; ok {
		t.Fatal("Counters leaked a gauge series")
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var reg *Registry
	reg.Counter("a_total", "a").Inc()
	reg.Gauge("b", "b").Set(1)
	reg.Histogram("c_seconds", "c", 1e-9).Observe(1)
	reg.CounterFunc("d_total", "d", func() float64 { return 1 })
	reg.GaugeFunc("e", "e", func() float64 { return 1 })
	reg.AddCollector(func() {})
	if err := reg.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counters(); len(got) != 0 {
		t.Fatalf("nil registry Counters = %v", got)
	}
}
