package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// maxRequestBody bounds a job request's JSON body.
const maxRequestBody = 1 << 20

// Handler wraps the server in its HTTP/JSON gateway:
//
//	POST /api/v1/jobs   submit a JobRequest, respond with its JobResponse
//	GET  /api/v1/trace  fetch a traced job's dump by ?id=<trace_id>
//	GET  /metrics       Prometheus text exposition of the registry
//	GET  /statusz       one Status snapshot (?stream=N: N NDJSON
//	                    snapshots at ?interval_ms, default 200; each
//	                    snapshot after the first carries counter Deltas)
//	GET  /healthz       200 while accepting, 503 once draining
//
// Job responses use the taxonomy's HTTP status (a queue-full rejection
// is 429 with Retry-After, a drain rejection 503, a deadline 504), so
// plain HTTP clients get correct backpressure semantics without
// parsing the body.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/jobs", s.handleJobs)
	mux.HandleFunc("/api/v1/trace", s.handleTrace)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, &JobResponse{
			Error: &ErrorInfo{Code: CodeBadRequest,
				HTTPStatus: http.StatusBadRequest, Message: "malformed request: " + err.Error()},
		})
		return
	}
	resp := s.Do(req)
	status := http.StatusOK
	if resp.Error != nil {
		status = resp.Error.HTTPStatus
		if resp.Error.Code == CodeQueueFull {
			// Backpressure contract: tell the client when to come back,
			// from the tenant's actual depth and observed drain rate.
			retry := resp.Error.RetryAfterSec
			if retry <= 0 {
				retry = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(retry))
		}
	}
	writeJSON(w, status, resp)
}

// handleMetrics serves the registry in Prometheus text format 0.0.4.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// handleTrace serves a stored per-job trace dump as JSON.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		http.Error(w, "missing ?id=<trace_id>", http.StatusBadRequest)
		return
	}
	d := s.Trace(id)
	if d == nil {
		http.Error(w, "no such trace (never stored, or evicted)", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, d)
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	n, _ := strconv.Atoi(r.URL.Query().Get("stream"))
	if n <= 0 {
		writeJSON(w, http.StatusOK, s.Statusz())
		return
	}
	if n > 10000 {
		n = 10000
	}
	intervalMS, _ := strconv.Atoi(r.URL.Query().Get("interval_ms"))
	if intervalMS <= 0 {
		intervalMS = 200
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	var prev map[string]float64
	for i := 0; i < n; i++ {
		if i > 0 {
			select {
			case <-r.Context().Done():
				return
			case <-time.After(time.Duration(intervalMS) * time.Millisecond):
			}
		}
		st := s.Statusz()
		// Deltas: which registry counters moved since the last snapshot.
		// A streaming watcher sees rates without keeping its own state.
		cur := s.reg.Counters()
		if prev != nil {
			deltas := make(map[string]float64)
			for name, v := range cur {
				if d := v - prev[name]; d != 0 {
					deltas[name] = d
				}
			}
			st.Deltas = deltas
		}
		prev = cur
		if err := enc.Encode(st); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
