package serve

import (
	"math"
	"sync"
	"time"

	"parhask/internal/metrics"
)

// allErrorCodes enumerates the taxonomy for preregistration: every
// serve_job_errors_total{code=...} series exists from the first scrape,
// so dashboards see explicit zeros instead of series popping into
// existence at the first failure of each kind.
var allErrorCodes = []ErrorCode{
	CodeQueueFull, CodeDraining, CodeUnknownWorkload, CodeBadRequest,
	CodeDeadlock, CodeInjectedPanic, CodePoisoned, CodeSendError,
	CodeChanMisuse, CodeIntegrityCheck, CodeInternal,
}

// serveMetrics is the service-level series set: admission, outcome and
// latency telemetry layered over the backend registries (the pool and
// lane series live in their own packages and share this registry).
type serveMetrics struct {
	reg *metrics.Registry

	submitted    *metrics.Counter // every Do call, before admission
	jobsOK       *metrics.Counter
	jobsErr      *metrics.Counter
	jobsRejected *metrics.Counter
	errByCode    map[ErrorCode]*metrics.Counter

	queueH *metrics.Histogram // admitted -> dispatched
	runH   *metrics.Histogram // backend execution
	totalH *metrics.Histogram // admitted -> completed

	traceDropped *metrics.Counter // eventlog ring wraparound in traced jobs

	// tenants caches per-tenant series so the Do hot path pays one
	// sync.Map load instead of a registry registration per request.
	tenants sync.Map // string -> *tenantMetrics
}

// tenantMetrics is one tenant's admission series.
type tenantMetrics struct {
	submitted *metrics.Counter
	rejected  *metrics.Counter
}

func newServeMetrics(reg *metrics.Registry, s *Server) *serveMetrics {
	m := &serveMetrics{
		reg:          reg,
		submitted:    reg.Counter("serve_jobs_submitted_total", "job submissions received (before admission)"),
		jobsOK:       reg.Counter("serve_jobs_total", "jobs finished by outcome", "outcome", "ok"),
		jobsErr:      reg.Counter("serve_jobs_total", "jobs finished by outcome", "outcome", "error"),
		jobsRejected: reg.Counter("serve_jobs_total", "jobs finished by outcome", "outcome", "rejected"),
		queueH:       reg.Histogram("serve_job_queue_seconds", "admitted-to-dispatched queue latency", 1e-9),
		runH:         reg.Histogram("serve_job_run_seconds", "backend execution latency", 1e-9),
		totalH:       reg.Histogram("serve_job_total_seconds", "admission-to-completion latency", 1e-9),
		traceDropped: reg.Counter("serve_trace_dropped_events_total", "trace events lost to eventlog ring wraparound"),
		errByCode:    make(map[ErrorCode]*metrics.Counter, len(allErrorCodes)),
	}
	for _, code := range allErrorCodes {
		m.errByCode[code] = reg.Counter("serve_job_errors_total",
			"failed or rejected jobs by taxonomy code", "code", string(code))
	}
	reg.GaugeFunc("serve_queued", "jobs admitted and waiting across all tenant queues", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.queued)
	})
	reg.GaugeFunc("serve_inflight", "jobs currently executing on a backend", func() float64 {
		return float64(len(s.inflight))
	})
	reg.GaugeFunc("serve_uptime_seconds", "time since the service came up", func() float64 {
		return time.Since(s.start).Seconds()
	})
	reg.GaugeFunc("serve_traces_stored", "per-job traces currently held by the trace store", func() float64 {
		return float64(s.TracesStored())
	})
	return m
}

// tenant returns (creating on first use) the named tenant's series,
// registering its queue-depth gauge. Called before s.mu is taken —
// registration takes the registry lock, and the depth closure will take
// s.mu at exposition time, so nesting the two the other way would
// deadlock against WritePrometheus.
func (m *serveMetrics) tenant(s *Server, name string) *tenantMetrics {
	if v, ok := m.tenants.Load(name); ok {
		return v.(*tenantMetrics)
	}
	tm := &tenantMetrics{
		submitted: m.reg.Counter("serve_tenant_jobs_submitted_total", "submissions per tenant", "tenant", name),
		rejected:  m.reg.Counter("serve_tenant_jobs_rejected_total", "admission rejections per tenant", "tenant", name),
	}
	m.reg.GaugeFunc("serve_tenant_queue_depth", "jobs waiting in the tenant's queue", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		if tq := s.tenants[name]; tq != nil {
			return float64(len(tq.q))
		}
		return 0
	}, "tenant", name)
	v, _ := m.tenants.LoadOrStore(name, tm)
	return v.(*tenantMetrics)
}

// reject records an admission rejection in every ledger it belongs to.
func (m *serveMetrics) reject(tm *tenantMetrics, code ErrorCode) {
	m.jobsRejected.Inc()
	m.errByCode[code].Inc()
	tm.rejected.Inc()
}

// finish records a completed (dispatched and executed) job.
func (m *serveMetrics) finish(resp *JobResponse) {
	m.queueH.Observe(resp.QueueNS)
	m.runH.Observe(resp.RunNS)
	m.totalH.Observe(resp.TotalNS)
	if resp.Error != nil {
		m.jobsErr.Inc()
		if c := m.errByCode[resp.Error.Code]; c != nil {
			c.Inc()
		}
	} else {
		m.jobsOK.Inc()
	}
}

// computeRetryAfter turns a tenant's queue depth and observed drain
// rate into a Retry-After hint: roughly how long until the queue has
// room again, clamped to [1s, 30s]. With no rate evidence (a cold or
// stalled tenant) the hint is the optimistic 1s — better to have the
// client probe than park it half a minute on a guess.
//
// The rate comes from measured wall time, so it can be degenerate: NaN
// (0 jobs over 0 elapsed) compares false against <= 0 and must be
// guarded explicitly, and a denormal-small rate yields a quotient
// beyond int range — the clamp has to happen in float space, because
// int(1e308) is implementation-defined (the minimum int on amd64,
// which would clamp a near-stalled tenant to the optimistic 1s instead
// of the pessimistic 30s).
func computeRetryAfter(depth int, perSec float64) int {
	if math.IsNaN(perSec) || perSec <= 0 {
		return 1
	}
	sec := math.Ceil(float64(depth+1) / perSec)
	switch {
	case math.IsNaN(sec) || sec < 1:
		// An +Inf rate drains instantly: probe soon.
		return 1
	case sec > 30:
		return 30
	}
	return int(sec)
}
