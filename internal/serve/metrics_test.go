package serve

import (
	"bufio"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"parhask/internal/eventlog"
	"parhask/internal/metrics"
)

// TestServeMetricsScrape: a live /metrics scrape agrees with the
// server's own ledger — jobs_total by outcome matches what was
// submitted, the latency histograms saw every job, the backend series
// (pool and lanes) are present, and no claim was poisoned.
func TestServeMetricsScrape(t *testing.T) {
	s := New(smallConfig())
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const okJobs = 6
	for i := 0; i < okJobs; i++ {
		backend := "gph"
		if i%2 == 1 {
			backend = "eden"
		}
		if resp := s.Do(JobRequest{Workload: "sumeuler", N: 400, Chunks: 8,
			Backend: backend, Tenant: "alice"}); !resp.OK {
			t.Fatalf("job %d: %+v", i, resp.Error)
		}
	}
	if resp := s.Do(JobRequest{Workload: "nope"}); resp.Error == nil {
		t.Fatal("unknown workload accepted")
	}

	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", r.StatusCode)
	}
	if ct := r.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	scraped, err := metrics.ParseProm(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		want float64
	}{
		{`serve_jobs_total{outcome="ok"}`, okJobs},
		{`serve_jobs_total{outcome="rejected"}`, 1},
		{`serve_jobs_submitted_total`, okJobs + 1},
		{`serve_job_errors_total{code="unknown_workload"}`, 1},
		{`serve_job_errors_total{code="queue_full"}`, 0},
		{`serve_tenant_jobs_submitted_total{tenant="alice"}`, okJobs},
		{`serve_job_run_seconds_count`, okJobs},
		{`native_pool_jobs_total{outcome="ok"}`, okJobs / 2},
		{`eden_lane_jobs_total{outcome="ok"}`, okJobs / 2},
		{`native_pool_poisoned_claims_total`, 0},
	}
	for _, c := range checks {
		if got, ok := scraped[c.name]; !ok || got != c.want {
			t.Errorf("%s = %v (present=%v), want %v", c.name, got, ok, c.want)
		}
	}
	// Derived quantiles render for the service histograms.
	if _, ok := scraped["serve_job_total_seconds_p99"]; !ok {
		t.Error("scrape missing serve_job_total_seconds_p99")
	}
}

// TestServeTraceEndToEnd: a traced job's dump is fetchable over HTTP,
// reconstructs to an eventlog, and renders a per-agent timeline — the
// exact path tracedump -job walks against a live server.
func TestServeTraceEndToEnd(t *testing.T) {
	s := New(smallConfig())
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := s.Do(JobRequest{Workload: "sumeuler", N: 1500, Chunks: 24, Trace: true})
	if !resp.OK {
		t.Fatalf("traced job failed: %+v", resp.Error)
	}
	if resp.TraceID == "" {
		t.Fatal("traced job has no TraceID")
	}

	r, err := http.Get(ts.URL + "/api/v1/trace?id=" + resp.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("GET trace = %d", r.StatusCode)
	}
	var d eventlog.Dump
	if err := json.NewDecoder(r.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	if d.TraceID != resp.TraceID || d.Workload != "sumeuler" || d.Backend != "gph" {
		t.Fatalf("dump identity = %+v", d)
	}
	if len(d.Agents) < 2 || d.Agents[0] != "main" || d.Agents[1] != "w0" {
		t.Fatalf("agents = %v", d.Agents)
	}
	if len(d.Events) == 0 || len(d.Events[0]) == 0 ||
		d.Events[0][0].Type != "trace-mark" {
		t.Fatal("ring 0 does not open with the trace mark")
	}
	rl, err := d.Log()
	if err != nil {
		t.Fatal(err)
	}
	tl := rl.TraceAgents(d.Agents)
	if len(tl.Agents()) != len(d.Agents) {
		t.Fatalf("timeline agents = %d, want %d", len(tl.Agents()), len(d.Agents))
	}
	if out := tl.Render(80); !strings.Contains(out, "main") {
		t.Fatal("rendered timeline missing the main agent")
	}

	// Unknown and missing ids are client errors, not panics.
	if r2, _ := http.Get(ts.URL + "/api/v1/trace?id=t-99999"); r2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace id = %d", r2.StatusCode)
	}
	if r3, _ := http.Get(ts.URL + "/api/v1/trace"); r3.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing trace id = %d", r3.StatusCode)
	}
}

// TestServeTraceStoreEviction: the store holds at most maxStoredTraces,
// evicting oldest-first, and Statusz reports the population.
func TestServeTraceStoreEviction(t *testing.T) {
	s := New(smallConfig())
	defer s.Close()
	for i := 0; i < maxStoredTraces+5; i++ {
		s.storeTrace("t-"+strconv.Itoa(i), &eventlog.Dump{TraceID: "t-" + strconv.Itoa(i)})
	}
	if got := s.TracesStored(); got != maxStoredTraces {
		t.Fatalf("stored = %d, want %d", got, maxStoredTraces)
	}
	if s.Trace("t-0") != nil {
		t.Fatal("oldest trace survived eviction")
	}
	if s.Trace("t-"+strconv.Itoa(maxStoredTraces+4)) == nil {
		t.Fatal("newest trace missing")
	}
	if st := s.Statusz(); st.TracesStored != maxStoredTraces {
		t.Fatalf("Statusz.TracesStored = %d", st.TracesStored)
	}
}

// TestComputeRetryAfter pins the backoff arithmetic: depth over drain
// rate, rounded up, clamped to [1, 30], optimistic 1s with no evidence.
func TestComputeRetryAfter(t *testing.T) {
	cases := []struct {
		depth  int
		perSec float64
		want   int
	}{
		{5, 0, 1},    // no drain evidence: probe soon
		{5, -1, 1},   // defensive
		{5, 2, 3},    // ceil(6/2)
		{1, 10, 1},   // fast drain clamps up to 1
		{500, 1, 30}, // slow drain clamps at 30
		{0, 4, 1},    // ceil(1/4) -> 1
		// Degenerate measured rates must not leak through the clamps:
		// NaN compares false against <= 0, and a denormal divisor
		// overflows int range before a post-conversion clamp could act.
		{5, math.NaN(), 1},   // 0 jobs / 0 elapsed
		{5, math.Inf(1), 1},  // instant drain: probe soon
		{5, math.Inf(-1), 1}, // defensive
		{5, 5e-324, 30},      // denormal rate: quotient is +Inf
		{5, math.SmallestNonzeroFloat64, 30},
		{1 << 60, 1e-12, 30}, // huge depth over tiny rate
	}
	for _, c := range cases {
		if got := computeRetryAfter(c.depth, c.perSec); got != c.want {
			t.Errorf("computeRetryAfter(%d, %v) = %d, want %d", c.depth, c.perSec, got, c.want)
		}
	}
}

// TestServeRetryAfterFromDrainRate: once a tenant has completion
// history, a queue-full rejection's Retry-After reflects the observed
// drain rate rather than the fixed 1s placeholder.
func TestServeRetryAfterFromDrainRate(t *testing.T) {
	cfg := smallConfig()
	cfg.QueueCap = 2
	cfg.MaxInflight = 1
	s := New(cfg)
	defer s.Close()

	// Build drain history: a few completed jobs stamp the done ring.
	for i := 0; i < 4; i++ {
		if resp := s.Do(JobRequest{Workload: "sumeuler", N: 2000, Chunks: 8, Tenant: "bob"}); !resp.OK {
			t.Fatalf("warm-up job %d: %+v", i, resp.Error)
		}
	}
	// Fill the queue, then overflow it. The slow first job holds the one
	// inflight slot while the rest stack up.
	done := make(chan *JobResponse, 8)
	for i := 0; i < 8; i++ {
		go func() {
			done <- s.Do(JobRequest{Workload: "sumeuler", N: 8000, Chunks: 8, Tenant: "bob"})
		}()
	}
	var rejected *JobResponse
	for i := 0; i < 8; i++ {
		r := <-done
		if r.Error != nil && r.Error.Code == CodeQueueFull {
			rejected = r
		}
	}
	if rejected == nil {
		t.Skip("no queue-full rejection observed (scheduling was too fair)")
	}
	if rejected.Error.RetryAfterSec < 1 || rejected.Error.RetryAfterSec > 30 {
		t.Fatalf("RetryAfterSec = %d, want in [1,30]", rejected.Error.RetryAfterSec)
	}
}

// TestServeStatuszStreamDeltas: streamed snapshots after the first
// carry the counters that moved between frames.
func TestServeStatuszStreamDeltas(t *testing.T) {
	s := New(smallConfig())
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				s.Do(JobRequest{Workload: "sumeuler", N: 300, Chunks: 4})
			}
		}
	}()
	defer close(stop)

	r, err := http.Get(ts.URL + "/statusz?stream=4&interval_ms=100")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var sts []Status
	for sc.Scan() {
		var st Status
		if err := json.Unmarshal(sc.Bytes(), &st); err != nil {
			t.Fatalf("snapshot %d: %v", len(sts), err)
		}
		sts = append(sts, st)
	}
	if len(sts) != 4 {
		t.Fatalf("got %d snapshots, want 4", len(sts))
	}
	if sts[0].Deltas != nil {
		t.Fatal("first snapshot carries deltas")
	}
	moved := false
	for _, st := range sts[1:] {
		if st.Deltas[`serve_jobs_total{outcome="ok"}`] > 0 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("no snapshot saw serve_jobs_total move under sustained load")
	}
}
