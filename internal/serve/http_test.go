package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func postJob(t *testing.T, ts *httptest.Server, req JobRequest) (*http.Response, *JobResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatalf("decode job response: %v", err)
	}
	return resp, &jr
}

// TestHTTPJobRoundTrip: a job over the wire returns 200 with the
// oracle-checked summary value.
func TestHTTPJobRoundTrip(t *testing.T) {
	s := New(smallConfig())
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, jr := postJob(t, ts, JobRequest{Workload: "sumeuler", N: 500, Chunks: 8})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !jr.OK || jr.Value == nil || jr.Backend != "gph" {
		t.Fatalf("response = %+v", jr)
	}
	// 30394 = sumTotient 500; JSON numbers decode as float64.
	if v, ok := jr.Value.(float64); !ok || v <= 0 {
		t.Fatalf("value = %v (%T)", jr.Value, jr.Value)
	}
}

// TestHTTPStatusCodes: the taxonomy's HTTP mapping reaches the wire.
func TestHTTPStatusCodes(t *testing.T) {
	s := New(smallConfig())
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		req    JobRequest
		status int
		code   ErrorCode
	}{
		{JobRequest{Workload: "nope"}, http.StatusNotFound, CodeUnknownWorkload},
		{JobRequest{Workload: "sumeuler", N: -1}, http.StatusBadRequest, CodeBadRequest},
		{JobRequest{Workload: "sumeuler", N: 200, DeadlineMS: -5}, http.StatusBadRequest, CodeBadRequest},
	}
	for _, tc := range cases {
		resp, jr := postJob(t, ts, tc.req)
		if resp.StatusCode != tc.status || jr.Error == nil || jr.Error.Code != tc.code {
			t.Errorf("POST %+v = %d/%+v, want %d/%q", tc.req, resp.StatusCode, jr.Error, tc.status, tc.code)
		}
	}

	// Malformed JSON and wrong method are gateway-level 400/405.
	r, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status = %d", r.StatusCode)
	}
	g, err := http.Get(ts.URL + "/api/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	g.Body.Close()
	if g.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET jobs: status = %d", g.StatusCode)
	}
}

// TestHTTPBackpressure429: queue-full rejections surface as 429 with a
// Retry-After header — the wire contract clients back off on.
func TestHTTPBackpressure429(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxInflight = 1
	cfg.QueueCap = 1
	s := New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients = 10
	var wg sync.WaitGroup
	var mu sync.Mutex
	got429, gotRetryAfter, gotOK := 0, 0, 0
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, jr := postJob(t, ts, JobRequest{Workload: "sumeuler", N: 4000, Chunks: 8})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case resp.StatusCode == http.StatusTooManyRequests:
				got429++
				if resp.Header.Get("Retry-After") != "" {
					gotRetryAfter++
				}
				if jr.Error.Code != CodeQueueFull {
					t.Errorf("429 body code = %q", jr.Error.Code)
				}
			case jr.OK:
				gotOK++
			default:
				t.Errorf("unexpected outcome: %d %+v", resp.StatusCode, jr.Error)
			}
		}()
	}
	wg.Wait()
	if gotOK == 0 || got429 == 0 {
		t.Fatalf("ok=%d rejected=%d, want both non-zero", gotOK, got429)
	}
	if gotRetryAfter != got429 {
		t.Fatalf("%d of %d rejections carried Retry-After", gotRetryAfter, got429)
	}
}

// TestHTTPStatuszAndHealthz: snapshots decode, the stream form yields
// the asked-for number of NDJSON lines, and healthz flips on drain.
func TestHTTPStatuszAndHealthz(t *testing.T) {
	s := New(smallConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp := s.Do(JobRequest{Workload: "sumeuler", N: 300, Chunks: 4}); !resp.OK {
		t.Fatalf("warmup job: %+v", resp.Error)
	}

	r, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if st.JobsDone != 1 || st.Workers != 4 || st.Pool.SparksCreated == 0 {
		t.Fatalf("statusz = %+v", st)
	}

	r, err = http.Get(ts.URL + "/statusz?stream=3&interval_ms=10")
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(r.Body)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var snap Status
		if err := json.Unmarshal(sc.Bytes(), &snap); err != nil {
			t.Fatalf("stream line %d: %v", lines, err)
		}
		lines++
	}
	r.Body.Close()
	if lines != 3 {
		t.Fatalf("stream returned %d snapshots, want 3", lines)
	}

	h, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", h.StatusCode)
	}
	s.Close()
	h, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after drain = %d", h.StatusCode)
	}
}

// TestHTTPDeadlineMapsTo504: a job that cannot finish inside its
// deadline surfaces as 504/deadlock on the wire. The overrun is real
// compute: the largest admissible sumEuler under a 100ms deadline.
func TestHTTPDeadlineMapsTo504(t *testing.T) {
	s := New(smallConfig())
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, jr := postJob(t, ts, JobRequest{Workload: "sumeuler", N: maxSumEulerN,
		Chunks: 64, DeadlineMS: 100})
	if resp.StatusCode != http.StatusGatewayTimeout || jr.Error == nil || jr.Error.Code != CodeDeadlock {
		t.Fatalf("overrunning job = %d/%+v, want 504/deadlock", resp.StatusCode, jr.Error)
	}
	elapsed := time.Duration(jr.TotalNS)
	if elapsed > 60*time.Second {
		t.Fatalf("deadline did not bound the job: %v", elapsed)
	}
	// The pool recovered: the next job on the server completes.
	if resp := s.Do(JobRequest{Workload: "sumeuler", N: 200, Chunks: 4}); !resp.OK {
		t.Fatalf("job after deadline overrun: %+v", resp.Error)
	}
}
