package serve

import (
	"fmt"
	"sync"
	"time"

	"parhask/internal/exec"
	"parhask/internal/faults"
	"parhask/internal/graph"
	"parhask/internal/pe"
	"parhask/internal/tune"
	"parhask/internal/workloads/apsp"
	"parhask/internal/workloads/euler"
	"parhask/internal/workloads/fuzz"
	"parhask/internal/workloads/mandel"
	"parhask/internal/workloads/matmul"
)

// JobRequest is one job submission: which workload, on which backend,
// at what size, under whose tenancy. Zero-valued knobs take the
// workload's defaults; every knob is capped so a single request cannot
// monopolise the resident runtimes.
type JobRequest struct {
	// Workload names a registry entry: sumeuler | matmul | apsp | fuzz
	// | mandel.
	Workload string `json:"workload"`
	// Backend picks the runtime: "gph" (default; the work-stealing
	// pool) or "eden" (a resident Eden lane).
	Backend string `json:"backend,omitempty"`
	// Tenant scopes admission: each tenant has its own bounded FIFO
	// queue and an equal share of the dispatcher's round-robin. Empty
	// means the shared "anon" tenant.
	Tenant string `json:"tenant,omitempty"`
	// N is the size knob (sumEuler bound, matrix dimension, APSP nodes,
	// fuzz DAG nodes).
	N int `json:"n,omitempty"`
	// Chunks is the GpH decomposition knob where one applies.
	Chunks int `json:"chunks,omitempty"`
	// Seed varies the randomised workloads (matmul, apsp, fuzz).
	Seed uint64 `json:"seed,omitempty"`
	// Width and Height frame a mandel rendering.
	Width  int `json:"width,omitempty"`
	Height int `json:"height,omitempty"`
	// DeadlineMS bounds the job's wall-clock time in milliseconds
	// (0 = the server default, capped at the server maximum).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Faults is this job's private fault plan (internal/faults
	// grammar); injected failures are scoped to the job.
	Faults string `json:"faults,omitempty"`
	// Trace gives the job a private per-worker eventlog; the response's
	// TraceID fetches it from GET /api/v1/trace for timeline rendering.
	Trace bool `json:"trace,omitempty"`
}

// builtJob is a validated, runnable form of one request: the program
// for the chosen backend plus the oracle check that turns the raw
// result value into a small JSON-able summary.
type builtJob struct {
	backend  string // "gph" | "eden"
	gph      exec.Program
	eden     pe.Program
	check    func(graph.Value) (any, error)
	injector *faults.Injector
	deadline time.Duration
}

// Parameter caps: a resident service must bound what one request can
// cost. The caps are generous for tests and benchmarks, tight enough
// that no single job can hold a backend for minutes.
const (
	maxSumEulerN  = 20000
	maxMatMulN    = 256
	maxAPSPNodes  = 128
	maxFuzzNodes  = 2000
	maxMandelArea = 256 * 256
)

// oracleCache memoises sequential-oracle results by workload/params
// key, so sustained load pays each oracle once instead of per request.
var oracleCache = struct {
	sync.Mutex
	m map[string]any
}{m: map[string]any{}}

func cachedOracle(key string, compute func() any) any {
	oracleCache.Lock()
	defer oracleCache.Unlock()
	if v, ok := oracleCache.m[key]; ok {
		return v
	}
	v := compute()
	oracleCache.m[key] = v
	return v
}

func badReq(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadRequest, fmt.Sprintf(format, args...))
}

// Workloads lists the registered workload names (for diagnostics).
func Workloads() []string {
	return []string{"sumeuler", "matmul", "apsp", "fuzz", "mandel"}
}

// autoSplitters are the service's shared granularity levers, one per
// gph workload family with a tunable decomposition. Every job of a
// family reads the same splitter, so the controller's grain survives
// across requests — sustained traffic converges instead of each job
// restarting the search.
type autoSplitters struct {
	euler  *tune.Splitter
	matmul *tune.Splitter
	apsp   *tune.Splitter
}

func newAutoSplitters() *autoSplitters {
	return &autoSplitters{
		// Grains are items per spark in each family's own unit:
		// sumeuler counts φ evaluations, matmul result cells, apsp
		// final rows.
		euler:  tune.NewSplitter("sumeuler", 64, 4, 4096),
		matmul: tune.NewSplitter("matmul", 256, 16, 1<<16),
		apsp:   tune.NewSplitter("apsp", 8, 1, 256),
	}
}

func (a *autoSplitters) all() []*tune.Splitter {
	return []*tune.Splitter{a.euler, a.matmul, a.apsp}
}

// buildJob validates a request against the registry and assembles its
// programs. pes is the Eden lanes' PE count (the eden-side programs
// size their process topology from it). auto, when non-nil, swaps the
// gph programs with tunable decompositions (sumeuler, matmul, apsp)
// for their splitter-driven variants; validation and oracles are
// identical either way. All validation failures wrap ErrBadRequest or
// ErrUnknownWorkload, so they classify before any queueing happens.
func buildJob(req JobRequest, pes int, auto *autoSplitters) (*builtJob, error) {
	b := &builtJob{backend: req.Backend}
	switch b.backend {
	case "":
		b.backend = "gph"
	case "gph", "eden":
	default:
		return nil, badReq("unknown backend %q (want gph or eden)", req.Backend)
	}
	if req.Faults != "" {
		plan, err := faults.Parse(req.Faults)
		if err != nil {
			return nil, fmt.Errorf("%w: faults: %v", ErrBadRequest, err)
		}
		b.injector = faults.NewInjector(plan)
	}
	if req.DeadlineMS < 0 {
		return nil, badReq("negative deadline")
	}
	b.deadline = time.Duration(req.DeadlineMS) * time.Millisecond

	switch req.Workload {
	case "sumeuler":
		n, chunks := req.N, req.Chunks
		if n == 0 {
			n = 1000
		}
		if n < 1 || n > maxSumEulerN {
			return nil, badReq("sumeuler n=%d out of range [1,%d]", n, maxSumEulerN)
		}
		if chunks == 0 {
			chunks = 16
		}
		if chunks < 1 || chunks > 512 {
			return nil, badReq("sumeuler chunks=%d out of range [1,512]", chunks)
		}
		if auto != nil {
			b.gph = euler.AutoProgram(n, auto.euler)
		} else {
			b.gph = euler.Program(n, chunks, 0, true)
		}
		b.eden = euler.EdenProgram(n, 2, 0)
		key := fmt.Sprintf("sumeuler/%d", n)
		b.check = func(v graph.Value) (any, error) {
			want := cachedOracle(key, func() any { return euler.SumTotientSieve(n) }).(int64)
			got, ok := v.(int64)
			if !ok || got != want {
				return nil, &integrityError{workload: "sumeuler"}
			}
			return got, nil
		}

	case "matmul":
		n := req.N
		if n == 0 {
			n = 48
		}
		if n < 4 || n > maxMatMulN || n%4 != 0 {
			return nil, badReq("matmul n=%d out of range (want multiple of 4 in [4,%d])", n, maxMatMulN)
		}
		seed := req.Seed
		if seed == 0 {
			seed = 1
		}
		a, bm := matmul.Random(n, seed), matmul.Random(n, seed+1)
		if auto != nil {
			b.gph = matmul.AutoBlockProgram(a, bm, auto.matmul, 0)
		} else {
			b.gph = matmul.BlockProgram(a, bm, n/4, 0)
		}
		b.eden = matmul.EdenCannonProgram(a, bm, 2, 0)
		key := fmt.Sprintf("matmul/%d/%d", n, seed)
		b.check = func(v graph.Value) (any, error) {
			want := cachedOracle(key, func() any { return matmul.MulOracle(a, bm) }).(matmul.Mat)
			got, ok := v.(matmul.Mat)
			if !ok || !matmul.Equal(got, want, 1e-9) {
				return nil, &integrityError{workload: "matmul"}
			}
			return matmul.Checksum(got), nil
		}

	case "apsp":
		n := req.N
		if n == 0 {
			n = 32
		}
		if n < 2 || n > maxAPSPNodes {
			return nil, badReq("apsp n=%d out of range [2,%d]", n, maxAPSPNodes)
		}
		seed := req.Seed
		if seed == 0 {
			seed = 7
		}
		g := apsp.RandomGraph(n, seed, 100, 50)
		ring := pes - 1
		if ring < 1 {
			ring = 1
		}
		if auto != nil {
			b.gph = apsp.AutoProgram(g, auto.apsp, 0)
		} else {
			b.gph = apsp.Program(g, 0)
		}
		b.eden = apsp.EdenRingProgram(g, ring, 0)
		key := fmt.Sprintf("apsp/%d/%d", n, seed)
		b.check = func(v graph.Value) (any, error) {
			want := cachedOracle(key, func() any { return apsp.FloydWarshall(g) }).(apsp.Graph)
			got, ok := v.(apsp.Graph)
			if !ok || !apsp.Equal(got, want) {
				return nil, &integrityError{workload: "apsp"}
			}
			return apsp.Checksum(got), nil
		}

	case "fuzz":
		n := req.N
		if n == 0 {
			n = 200
		}
		if n < 1 || n > maxFuzzNodes {
			return nil, badReq("fuzz n=%d out of range [1,%d]", n, maxFuzzNodes)
		}
		seed := req.Seed
		if seed == 0 {
			seed = 1
		}
		if b.backend == "eden" {
			return nil, badReq("fuzz has no eden form (thunk DAGs are shared-heap)")
		}
		prog := fuzz.Generate(seed, n)
		b.gph = prog.Body()
		key := fmt.Sprintf("fuzz/%d/%d", n, seed)
		b.check = func(v graph.Value) (any, error) {
			want := cachedOracle(key, func() any { return prog.Expected() }).(int64)
			got, ok := v.(int64)
			if !ok || got != want {
				return nil, &integrityError{workload: "fuzz"}
			}
			return got, nil
		}

	case "mandel":
		w, h := req.Width, req.Height
		if w == 0 && h == 0 {
			w, h = 64, 48
		}
		if w < 1 || h < 1 || w*h > maxMandelArea {
			return nil, badReq("mandel %dx%d out of range (area cap %d)", w, h, maxMandelArea)
		}
		p := mandel.DefaultParams(w, h)
		workers := pes - 1
		if workers < 1 {
			workers = 1
		}
		b.gph = mandel.Program(p)
		b.eden = mandel.EdenProgram(p, workers, 2)
		key := fmt.Sprintf("mandel/%d/%d", w, h)
		b.check = func(v graph.Value) (any, error) {
			want := cachedOracle(key, func() any {
				return mandel.Render(nopMandelCtx{}, p)
			}).([][]int32)
			got, ok := v.([][]int32)
			if !ok || !mandel.Equal(got, want) {
				return nil, &integrityError{workload: "mandel"}
			}
			return mandel.Checksum(got), nil
		}

	default:
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownWorkload, req.Workload, Workloads())
	}
	return b, nil
}

// nopMandelCtx satisfies mandel.Ctx for the oracle render.
type nopMandelCtx struct{}

func (nopMandelCtx) Burn(int64)  {}
func (nopMandelCtx) Alloc(int64) {}
