package serve

import (
	"strconv"

	"parhask/internal/eventlog"
)

// maxStoredTraces bounds the trace store: tracing is a debugging lens,
// not an archive, so the store keeps the most recent traces and evicts
// FIFO. Each trace is one job's drained rings — small (the rings are
// bounded) but not free.
const maxStoredTraces = 64

// nextTraceID allocates a job's trace identity: the int32 mark stamped
// into its eventlog ring and the wire-form id clients pass back to
// GET /api/v1/trace.
func (s *Server) nextTraceID() (int32, string) {
	seq := s.traceSeq.Add(1)
	return int32(seq), "t-" + strconv.FormatInt(seq, 10)
}

// storeTrace files one job's dump under its id, evicting the oldest
// stored trace beyond the cap.
func (s *Server) storeTrace(id string, d *eventlog.Dump) {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	if s.traces == nil {
		s.traces = make(map[string]*eventlog.Dump, maxStoredTraces)
	}
	if _, ok := s.traces[id]; !ok {
		s.traceOrder = append(s.traceOrder, id)
	}
	s.traces[id] = d
	for len(s.traceOrder) > maxStoredTraces {
		delete(s.traces, s.traceOrder[0])
		s.traceOrder = s.traceOrder[1:]
	}
}

// Trace returns a stored per-job trace by id, or nil if it was never
// stored or has been evicted.
func (s *Server) Trace(id string) *eventlog.Dump {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	return s.traces[id]
}

// TracesStored reports how many traces the store currently holds.
func (s *Server) TracesStored() int {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	return len(s.traces)
}

// traceAgents names a traced job's rings for rendering: ring 0 is the
// job's main thread (gph) or PE 0 (eden); the rest are the resident
// workers / remaining PEs.
func traceAgents(backend string, rings int) []string {
	names := make([]string, rings)
	if backend == "eden" {
		for i := range names {
			names[i] = "pe" + strconv.Itoa(i)
		}
		return names
	}
	names[0] = "main"
	for i := 1; i < rings; i++ {
		names[i] = "w" + strconv.Itoa(i-1)
	}
	return names
}
