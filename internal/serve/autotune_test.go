package serve

import (
	"strings"
	"testing"
)

// TestServeAutotune runs the tunable gph workloads on an autotuned
// service: every job's result still passes the server's oracle gate
// (the auto decompositions change scheduling, never values), the
// status report carries the controller's lever positions, and the
// autotune series appear on /metrics.
func TestServeAutotune(t *testing.T) {
	cfg := smallConfig()
	cfg.Autotune = true
	s := New(cfg)
	defer s.Close()

	mix := []JobRequest{
		{Workload: "sumeuler", N: 800},
		{Workload: "matmul", N: 24},
		{Workload: "apsp", N: 20},
		// Eden jobs are untouched by the pool's controller and must
		// still work on an autotuned server.
		{Workload: "sumeuler", N: 300, Backend: "eden"},
	}
	for round := 0; round < 5; round++ {
		for _, req := range mix {
			resp := s.Do(req)
			if !resp.OK {
				t.Fatalf("round %d %s/%s: %v", round, req.Workload, resp.Backend, resp.Error)
			}
		}
	}

	st := s.Statusz()
	if st.Autotune == nil {
		t.Fatal("autotuned server's status has no autotune section")
	}
	for _, name := range []string{"sumeuler", "matmul", "apsp"} {
		if _, ok := st.Autotune.Grains[name]; !ok {
			t.Fatalf("status autotune grains missing %q: %v", name, st.Autotune.Grains)
		}
	}

	var sb strings.Builder
	s.Metrics().WritePrometheus(&sb)
	body := sb.String()
	for _, series := range []string{"autotune_grain", "autotune_backoff_level", "native_pool_parked_ns"} {
		if !strings.Contains(body, series) {
			t.Fatalf("metrics exposition missing %s", series)
		}
	}
}

// TestServeAutotuneOffByDefault pins the disabled path: no controller,
// no status section.
func TestServeAutotuneOffByDefault(t *testing.T) {
	s := New(smallConfig())
	defer s.Close()
	if resp := s.Do(JobRequest{Workload: "sumeuler", N: 200}); !resp.OK {
		t.Fatalf("sumeuler: %v", resp.Error)
	}
	if st := s.Statusz(); st.Autotune != nil {
		t.Fatalf("untuned server reported an autotune section: %+v", st.Autotune)
	}
}
