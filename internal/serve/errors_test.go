package serve

import (
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"

	"parhask/internal/eden"
	"parhask/internal/faults"
	"parhask/internal/graph"
	"parhask/internal/native"
	"parhask/internal/nativeeden"
	"parhask/internal/workloads/euler"
)

// TestClassifyTaxonomy is the table-driven taxonomy test: every error
// family a job can produce maps to exactly one stable code and HTTP
// status, including runtime errors that arrive wrapped (a poisoned
// thunk carrying its claimant's death, fmt.Errorf %w chains).
func TestClassifyTaxonomy(t *testing.T) {
	cases := []struct {
		name   string
		err    error
		code   ErrorCode
		status int
	}{
		{"nil", nil, "", http.StatusOK},
		{"queue full", ErrQueueFull, CodeQueueFull, http.StatusTooManyRequests},
		{"wrapped queue full", fmt.Errorf("tenant a: %w", ErrQueueFull), CodeQueueFull, http.StatusTooManyRequests},
		{"draining", ErrDraining, CodeDraining, http.StatusServiceUnavailable},
		{"pool draining", native.ErrPoolDraining, CodeDraining, http.StatusServiceUnavailable},
		{"pool closed", native.ErrPoolClosed, CodeDraining, http.StatusServiceUnavailable},
		{"lane closed", nativeeden.ErrResidentClosed, CodeDraining, http.StatusServiceUnavailable},
		{"unknown workload", ErrUnknownWorkload, CodeUnknownWorkload, http.StatusNotFound},
		{"bad request", badReq("n too big"), CodeBadRequest, http.StatusBadRequest},
		{"deadlock deadline",
			&faults.DeadlockError{Backend: "native", Reason: "deadline", Elapsed: time.Second},
			CodeDeadlock, http.StatusGatewayTimeout},
		{"deadlock quiescence",
			&faults.DeadlockError{Backend: "nativeeden", Reason: "quiescence"},
			CodeDeadlock, http.StatusGatewayTimeout},
		{"injected panic",
			&faults.InjectedPanic{Kind: "spark", Index: 3, Seed: 42},
			CodeInjectedPanic, http.StatusInternalServerError},
		{"poison wrapping injected panic",
			&graph.PoisonError{Err: &faults.InjectedPanic{Kind: "spark"}},
			CodeInjectedPanic, http.StatusInternalServerError},
		{"poison wrapping anonymous cause",
			&graph.PoisonError{Err: errors.New("claimant died")},
			CodePoisoned, http.StatusInternalServerError},
		{"send error",
			&eden.SendError{Op: "Send", Chan: 1, PE: 0, Dest: 1, Err: errors.New("unevaluated")},
			CodeSendError, http.StatusInternalServerError},
		{"chan misuse",
			&eden.ChanMisuseError{Op: "Receive", Chan: 2, PE: 1, Owner: 0, Reason: "cross-pe"},
			CodeChanMisuse, http.StatusInternalServerError},
		{"integrity self-check",
			&euler.CheckError{Sum: 1, Want: 2},
			CodeIntegrityCheck, http.StatusInternalServerError},
		{"integrity oracle",
			&integrityError{workload: "matmul"},
			CodeIntegrityCheck, http.StatusInternalServerError},
		{"unclassified", errors.New("mystery"), CodeInternal, http.StatusInternalServerError},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, status := Classify(tc.err)
			if code != tc.code || status != tc.status {
				t.Fatalf("Classify(%v) = (%q, %d), want (%q, %d)",
					tc.err, code, status, tc.code, tc.status)
			}
		})
	}
}

// TestClassifyInfoCarriesMessage: the wire form keeps the error text.
func TestClassifyInfoCarriesMessage(t *testing.T) {
	if classifyInfo(nil) != nil {
		t.Fatal("classifyInfo(nil) != nil")
	}
	info := classifyInfo(ErrQueueFull)
	if info.Code != CodeQueueFull || info.HTTPStatus != http.StatusTooManyRequests ||
		info.Message == "" {
		t.Fatalf("classifyInfo(ErrQueueFull) = %+v", info)
	}
}
