package serve

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"parhask/internal/eventlog"
	"parhask/internal/metrics"
	"parhask/internal/native"
	"parhask/internal/nativeeden"
	"parhask/internal/tune"
)

// Config sizes the resident service.
type Config struct {
	// Workers is the native pool's worker count (0 = GOMAXPROCS).
	Workers int
	// PEs is each Eden lane's processing-element count (0 = 2).
	PEs int
	// Lanes is how many Eden lanes run side by side (0 = 2). A lane
	// runs one job at a time (Eden's failure protocol is run-global),
	// so Lanes bounds eden-backend concurrency.
	Lanes int
	// QueueCap bounds each tenant's pending queue; a submission beyond
	// it is rejected with ErrQueueFull (0 = 64).
	QueueCap int
	// MaxInflight bounds concurrently executing jobs across all tenants
	// (0 = 2 x Workers).
	MaxInflight int
	// DefaultDeadline applies to jobs that request none (0 = 30s);
	// MaxDeadline caps what a request may ask for (0 = 2m).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// Autotune turns on the native pool's online controller: the gph
	// workloads' decomposition follows shared per-workload splitters
	// instead of the request's Chunks knob, steal backoff widens and
	// narrows with observed contention, workers park when the pool runs
	// dry, and GOGC tracks allocation pressure. The decision trace and
	// lever positions appear in /statusz under "autotune".
	Autotune bool
	// Backoff overrides the native pool's idle-wait policy (nil = the
	// fixed default; with Autotune and no override the pool gets the
	// adaptive policy, parking armed).
	Backoff *tune.Backoff
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.PEs <= 0 {
		c.PEs = 2
	}
	if c.Lanes <= 0 {
		c.Lanes = 2
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 2 * c.Workers
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	return c
}

// JobResponse is the outcome of one job, in wire form. Value is the
// workload's oracle-checked summary (a sum or checksum), never the raw
// result — images and matrices stay server-side.
type JobResponse struct {
	Workload string     `json:"workload"`
	Backend  string     `json:"backend"`
	Tenant   string     `json:"tenant"`
	OK       bool       `json:"ok"`
	Value    any        `json:"value,omitempty"`
	Error    *ErrorInfo `json:"error,omitempty"`
	// QueueNS is time spent admitted-but-undispatched; RunNS is backend
	// execution time; TotalNS covers admission to completion.
	QueueNS int64 `json:"queue_ns"`
	RunNS   int64 `json:"run_ns"`
	TotalNS int64 `json:"total_ns"`
	// TraceID names the job's stored per-worker trace when the request
	// asked for one (GET /api/v1/trace?id=<TraceID>).
	TraceID string `json:"trace_id,omitempty"`
}

// task is one admitted job waiting in its tenant's queue.
type task struct {
	req      JobRequest
	built    *builtJob
	tenant   string
	admitted time.Time
	done     chan *JobResponse
}

// tenantQ is one tenant's FIFO, plus a small ring of recent completion
// timestamps so a queue-full rejection can quote an honest Retry-After
// from the tenant's observed drain rate.
type tenantQ struct {
	name  string
	q     []*task
	done  [16]time.Time
	doneN int
}

// recordDone notes one completed job. Caller holds s.mu.
func (tq *tenantQ) recordDone(now time.Time) {
	tq.done[tq.doneN%len(tq.done)] = now
	tq.doneN++
}

// drainRate estimates the tenant's completions per second over the
// ring's window, or 0 with fewer than two samples. Caller holds s.mu.
func (tq *tenantQ) drainRate() float64 {
	n := tq.doneN
	if n > len(tq.done) {
		n = len(tq.done)
	}
	if n < 2 {
		return 0
	}
	oldest := tq.done[(tq.doneN-n)%len(tq.done)]
	newest := tq.done[(tq.doneN-1)%len(tq.done)]
	span := newest.Sub(oldest).Seconds()
	if span <= 0 {
		return 0
	}
	return float64(n-1) / span
}

// Server is the resident compute service: a long-lived native pool, a
// set of resident Eden lanes, bounded per-tenant queues and one
// dispatcher goroutine that drains them round-robin under a global
// inflight bound. Jobs carry their own deadline, fault budget and
// error scope; the backends guarantee a failing job cannot take a
// worker, a lane or a neighbouring job with it.
type Server struct {
	cfg   Config
	pool  *native.Pool
	lanes chan *nativeeden.Resident // free-lane queue
	all   []*nativeeden.Resident

	// auto holds the shared per-workload splitters when Config.Autotune
	// is on (nil otherwise); buildJob picks the auto program variants
	// from it.
	auto *autoSplitters

	mu       sync.Mutex
	cond     *sync.Cond
	tenants  map[string]*tenantQ
	order    []string // round-robin ring of tenant names
	rr       int
	queued   int
	draining bool

	inflight  chan struct{} // counting semaphore: executing jobs
	jobs      sync.WaitGroup
	stopped   chan struct{} // dispatcher exited
	closeOnce sync.Once     // backend shutdown

	start      time.Time
	jobsDone   atomic.Int64
	jobsFailed atomic.Int64
	rejected   atomic.Int64 // queue_full + draining rejections

	// reg is the service's metrics registry — always on (the nil-check
	// disabled path belongs to the raw backends; a resident service
	// without telemetry is not worth running). sm is the serve-level
	// series; the pool and lanes register their own on the same reg.
	reg *metrics.Registry
	sm  *serveMetrics

	// The per-job trace store (GET /api/v1/trace).
	traceSeq   atomic.Int64
	traceMu    sync.Mutex
	traces     map[string]*eventlog.Dump
	traceOrder []string // FIFO eviction order
}

// New starts the service: the pool's workers spin up, the lanes' PEs
// are built, the dispatcher starts. The server is ready for Do.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := metrics.New()
	nc := native.NewConfig(cfg.Workers)
	nc.Metrics = reg
	nc.Backoff = cfg.Backoff
	var auto *autoSplitters
	if cfg.Autotune {
		auto = newAutoSplitters()
		nc.Autotune = &native.AutotuneConfig{Splitters: auto.all()}
	}
	s := &Server{
		cfg:      cfg,
		auto:     auto,
		pool:     native.NewPool(nc),
		lanes:    make(chan *nativeeden.Resident, cfg.Lanes),
		tenants:  map[string]*tenantQ{},
		inflight: make(chan struct{}, cfg.MaxInflight),
		stopped:  make(chan struct{}),
		start:    time.Now(),
		reg:      reg,
	}
	s.cond = sync.NewCond(&s.mu)
	s.sm = newServeMetrics(reg, s)
	for i := 0; i < cfg.Lanes; i++ {
		ec := nativeeden.NewConfig(cfg.PEs)
		ec.Metrics = reg
		l := nativeeden.NewResident(ec)
		s.all = append(s.all, l)
		s.lanes <- l
	}
	go s.dispatch()
	return s
}

// Metrics exposes the service's registry (the /metrics exposition and
// the statusz delta stream read from it).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Do submits one job and blocks until it completes (or is rejected at
// admission). It is the synchronous core the HTTP gateway wraps; any
// number of callers may be in Do concurrently — that is the service's
// whole point.
func (s *Server) Do(req JobRequest) *JobResponse {
	tenant := req.Tenant
	if tenant == "" {
		tenant = "anon"
	}
	resp := &JobResponse{Workload: req.Workload, Tenant: tenant}
	// Tenant series are created (idempotently) before s.mu is taken:
	// registration locks the registry, and the tenant's depth gauge will
	// lock s.mu at exposition, so the orders must never nest.
	tm := s.sm.tenant(s, tenant)
	s.sm.submitted.Inc()
	tm.submitted.Inc()

	built, err := buildJob(req, s.cfg.PEs, s.auto)
	if err != nil {
		resp.Error = classifyInfo(err)
		s.sm.reject(tm, resp.Error.Code)
		return resp
	}
	resp.Backend = built.backend
	if built.deadline == 0 {
		built.deadline = s.cfg.DefaultDeadline
	}
	if built.deadline > s.cfg.MaxDeadline {
		built.deadline = s.cfg.MaxDeadline
	}

	t := &task{req: req, built: built, tenant: tenant,
		admitted: time.Now(), done: make(chan *JobResponse, 1)}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rejected.Add(1)
		resp.Error = classifyInfo(ErrDraining)
		s.sm.reject(tm, CodeDraining)
		return resp
	}
	tq := s.tenants[tenant]
	if tq == nil {
		tq = &tenantQ{name: tenant}
		s.tenants[tenant] = tq
		s.order = append(s.order, tenant)
	}
	if len(tq.q) >= s.cfg.QueueCap {
		retry := computeRetryAfter(len(tq.q), tq.drainRate())
		s.mu.Unlock()
		s.rejected.Add(1)
		resp.Error = classifyInfo(ErrQueueFull)
		resp.Error.RetryAfterSec = retry
		s.sm.reject(tm, CodeQueueFull)
		return resp
	}
	tq.q = append(tq.q, t)
	s.queued++
	s.cond.Signal()
	s.mu.Unlock()

	return <-t.done
}

// dispatch is the scheduler: round-robin over tenants with queued
// work, one job per turn, gated on the inflight semaphore. It exits
// when drain has begun and every queue is empty — admitted work is
// always dispatched, drain or not.
func (s *Server) dispatch() {
	defer close(s.stopped)
	for {
		s.mu.Lock()
		for s.queued == 0 && !s.draining {
			s.cond.Wait()
		}
		if s.queued == 0 && s.draining {
			s.mu.Unlock()
			return
		}
		t := s.popNextLocked()
		s.mu.Unlock()

		s.inflight <- struct{}{} // MaxInflight gate; holds the popped task, not the lock
		s.jobs.Add(1)
		go func(t *task) {
			defer func() { <-s.inflight; s.jobs.Done() }()
			s.execute(t)
		}(t)
	}
}

// popNextLocked advances the round-robin to the next tenant with work
// and pops its head task. Caller holds mu and has checked queued > 0.
func (s *Server) popNextLocked() *task {
	for i := 0; i < len(s.order); i++ {
		tq := s.tenants[s.order[s.rr%len(s.order)]]
		s.rr++
		if len(tq.q) == 0 {
			continue
		}
		t := tq.q[0]
		copy(tq.q, tq.q[1:])
		tq.q[len(tq.q)-1] = nil
		tq.q = tq.q[:len(tq.q)-1]
		s.queued--
		return t
	}
	return nil // unreachable while queued > 0
}

// execute runs one dispatched task on its backend and completes its
// response. Runtime failures are classified, never propagated — a job
// error is data here.
func (s *Server) execute(t *task) {
	resp := &JobResponse{Workload: t.req.Workload, Backend: t.built.backend, Tenant: t.tenant}
	resp.QueueNS = time.Since(t.admitted).Nanoseconds()
	started := time.Now()

	// A traced job gets its own eventlog (one ring per worker / PE) and
	// a TraceMark identity stamped before anything runs.
	var traceMark int32
	if t.req.Trace {
		traceMark, resp.TraceID = s.nextTraceID()
	}

	var value any
	var err error
	var events *eventlog.Log
	switch t.built.backend {
	case "gph":
		var h *native.JobHandle
		h, err = s.pool.Submit(native.JobConfig{
			Deadline: t.built.deadline, Faults: t.built.injector,
			EventLog: t.req.Trace, TraceID: traceMark}, t.built.gph)
		if err == nil {
			var res *native.JobResult
			res, err = h.Wait()
			if res != nil {
				events = res.Events
			}
			if err == nil {
				value = res.Value
			}
		}
	case "eden":
		lane := <-s.lanes // blocks while all lanes busy; inflight token held
		var res *nativeeden.Result
		res, err = lane.RunJob(nativeeden.JobConfig{
			Deadline: t.built.deadline, Faults: t.built.injector,
			EventLog: t.req.Trace, TraceID: traceMark}, t.built.eden)
		if res != nil {
			events = res.Events
		}
		if err == nil {
			value = res.Value
		}
		s.lanes <- lane
	}
	if err == nil {
		value, err = t.built.check(value) // oracle gate: wrong answers are failures
	}
	resp.RunNS = time.Since(started).Nanoseconds()
	resp.TotalNS = time.Since(t.admitted).Nanoseconds()
	if err != nil {
		resp.Error = classifyInfo(err)
		s.jobsFailed.Add(1)
	} else {
		resp.OK = true
		resp.Value = value
		s.jobsDone.Add(1)
	}
	if resp.TraceID != "" && events != nil {
		// The rings are drained (the job's threads joined before its
		// result was built), so the dump is a consistent snapshot. Failed
		// jobs keep their partial trace — that is when you want it most.
		d := events.Dump(traceAgents(t.built.backend, events.Workers()))
		d.TraceID = resp.TraceID
		d.Workload = t.req.Workload
		d.Backend = t.built.backend
		d.Tenant = t.tenant
		if err != nil {
			d.Error = err.Error()
		}
		s.sm.traceDropped.Add(d.Dropped)
		s.storeTrace(resp.TraceID, d)
	}
	s.sm.finish(resp)
	s.mu.Lock()
	if tq := s.tenants[t.tenant]; tq != nil {
		tq.recordDone(time.Now())
	}
	s.mu.Unlock()
	t.done <- resp
}

// Status is one /statusz snapshot.
type Status struct {
	UptimeNS    int64          `json:"uptime_ns"`
	Workers     int            `json:"workers"`
	Lanes       int            `json:"lanes"`
	PEs         int            `json:"pes"`
	Draining    bool           `json:"draining"`
	Queued      int            `json:"queued"`
	QueueDepths map[string]int `json:"queue_depths,omitempty"`
	Inflight    int            `json:"inflight"`
	JobsDone    int64          `json:"jobs_done"`
	JobsFailed  int64          `json:"jobs_failed"`
	Rejected    int64          `json:"rejected"`
	// Pool is the native pool's cumulative counter snapshot (monotone
	// across Status calls) and GC its pool-scoped collector telemetry.
	Pool native.Stats   `json:"pool"`
	GC   native.GCStats `json:"gc"`
	// Autotune is the pool controller's decision trace and lever
	// positions (absent unless the service runs with Config.Autotune).
	Autotune *native.AutotuneReport `json:"autotune,omitempty"`
	// LaneJobsDone/Failed aggregate the Eden lanes.
	LaneJobsDone   int64 `json:"lane_jobs_done"`
	LaneJobsFailed int64 `json:"lane_jobs_failed"`
	// TraceDroppedEvents counts trace events lost to eventlog ring
	// wraparound across all traced jobs; TracesStored is the trace
	// store's current population.
	TraceDroppedEvents int64 `json:"trace_dropped_events"`
	TracesStored       int   `json:"traces_stored"`
	// Deltas, present only in ?stream=N snapshots after the first,
	// holds the registry counters that moved since the previous
	// snapshot (counter name with labels -> increment).
	Deltas map[string]float64 `json:"deltas,omitempty"`
}

// Statusz snapshots the service. Safe from any goroutine at any time.
func (s *Server) Statusz() Status {
	st := Status{
		UptimeNS: time.Since(s.start).Nanoseconds(),
		Workers:  s.cfg.Workers, Lanes: s.cfg.Lanes, PEs: s.cfg.PEs,
		JobsDone:   s.jobsDone.Load(),
		JobsFailed: s.jobsFailed.Load(),
		Rejected:   s.rejected.Load(),
		Inflight:   len(s.inflight),
		Pool:       s.pool.Snapshot(),
		GC:         s.pool.GC(),
		Autotune:   s.pool.Autotune(),
	}
	s.mu.Lock()
	st.Draining = s.draining
	st.Queued = s.queued
	if len(s.tenants) > 0 {
		st.QueueDepths = make(map[string]int, len(s.tenants))
		for name, tq := range s.tenants {
			st.QueueDepths[name] = len(tq.q)
		}
	}
	s.mu.Unlock()
	for _, l := range s.all {
		st.LaneJobsDone += l.JobsDone()
		st.LaneJobsFailed += l.JobsFailed()
	}
	st.TraceDroppedEvents = s.sm.traceDropped.Value()
	st.TracesStored = s.TracesStored()
	return st
}

// Draining reports whether drain has begun (healthz turns unready).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Close drains gracefully: new submissions are rejected with
// ErrDraining, every already-admitted job is dispatched and runs to
// completion (each bounded by its own deadline), then the pool and the
// lanes shut down. Idempotent; safe to call while Do callers are
// blocked — they all receive responses.
func (s *Server) Close() {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.stopped // dispatcher has drained the queues
	s.jobs.Wait()
	s.closeOnce.Do(func() {
		s.pool.Close()
		for _, l := range s.all {
			l.Close()
		}
	})
}
