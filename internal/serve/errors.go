// Package serve turns the native backends into a resident compute
// service: one long-lived worker pool (GpH work stealing) and a small
// set of resident Eden lanes accept jobs through admission control,
// bounded per-tenant queues and a round-robin dispatcher, so many
// clients share the warm runtimes instead of each request paying
// worker and arena construction.
//
// The package is transport-agnostic at its core (Server.Do takes and
// returns plain structs); http.go wraps it in the JSON gateway that
// cmd/serve listens on.
package serve

import (
	"errors"
	"net/http"

	"parhask/internal/eden"
	"parhask/internal/faults"
	"parhask/internal/graph"
	"parhask/internal/native"
	"parhask/internal/nativeeden"
	"parhask/internal/workloads/euler"
)

// Admission sentinels. Classify maps them to HTTP backpressure codes.
var (
	// ErrQueueFull rejects a submission whose tenant queue is at its
	// bound — the client should back off and retry.
	ErrQueueFull = errors.New("serve: tenant queue full")
	// ErrDraining rejects submissions made after drain began.
	ErrDraining = errors.New("serve: server draining")
	// ErrUnknownWorkload rejects a request naming no registered workload.
	ErrUnknownWorkload = errors.New("serve: unknown workload")
	// ErrBadRequest wraps parameter-validation failures.
	ErrBadRequest = errors.New("serve: bad request")
)

// ErrorCode is the service's stable failure vocabulary: every error a
// job can produce — admission rejections, runtime failures surfaced by
// the backends, injected chaos — maps to exactly one code, so clients
// and the chaos soak can assert on structure instead of matching
// message strings.
type ErrorCode string

const (
	// CodeQueueFull: the tenant's queue was at its bound (HTTP 429).
	CodeQueueFull ErrorCode = "queue_full"
	// CodeDraining: the server or a backend pool is shutting down (503).
	CodeDraining ErrorCode = "draining"
	// CodeUnknownWorkload: no such workload is registered (404).
	CodeUnknownWorkload ErrorCode = "unknown_workload"
	// CodeBadRequest: the request's parameters failed validation (400).
	CodeBadRequest ErrorCode = "bad_request"
	// CodeDeadlock: the job's watchdog fired — deadline or quiescence
	// (*faults.DeadlockError, HTTP 504).
	CodeDeadlock ErrorCode = "deadlock"
	// CodeInjectedPanic: a fault the request's own plan asked for fired
	// (*faults.InjectedPanic) — the expected chaos-soak failure.
	CodeInjectedPanic ErrorCode = "injected_panic"
	// CodePoisoned: the job forced a thunk whose claimant died of a
	// cause the taxonomy cannot name more precisely
	// (*graph.PoisonError with an unclassified cause).
	CodePoisoned ErrorCode = "poisoned"
	// CodeSendError: an Eden channel send failed packing
	// (*eden.SendError).
	CodeSendError ErrorCode = "send_error"
	// CodeChanMisuse: an Eden channel-protocol violation
	// (*eden.ChanMisuseError).
	CodeChanMisuse ErrorCode = "chan_misuse"
	// CodeIntegrityCheck: the workload's built-in self-check caught a
	// wrong parallel result (*euler.CheckError or the service-side
	// oracle check).
	CodeIntegrityCheck ErrorCode = "integrity_check"
	// CodeInternal: anything the taxonomy cannot classify (500).
	CodeInternal ErrorCode = "internal"
)

// integrityError is the service-side oracle failure: the job completed
// but its value disagrees with the workload's sequential oracle.
type integrityError struct{ workload string }

func (e *integrityError) Error() string {
	return "serve: " + e.workload + " result disagrees with the sequential oracle"
}

// Classify maps any job error to its taxonomy code and HTTP status.
// nil maps to ("", 200). Specific runtime types are matched before
// PoisonError: a poisoned thunk carries its claimant's death as the
// cause (Unwrap), so a job killed by an injected panic reports
// injected_panic whether the panic hit its own stack or reached it
// through a poisoned claim.
func Classify(err error) (ErrorCode, int) {
	if err == nil {
		return "", http.StatusOK
	}
	switch {
	case errors.Is(err, ErrQueueFull):
		return CodeQueueFull, http.StatusTooManyRequests
	case errors.Is(err, ErrDraining),
		errors.Is(err, native.ErrPoolDraining),
		errors.Is(err, native.ErrPoolClosed),
		errors.Is(err, nativeeden.ErrResidentClosed):
		return CodeDraining, http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownWorkload):
		return CodeUnknownWorkload, http.StatusNotFound
	case errors.Is(err, ErrBadRequest):
		return CodeBadRequest, http.StatusBadRequest
	}
	var de *faults.DeadlockError
	if errors.As(err, &de) {
		return CodeDeadlock, http.StatusGatewayTimeout
	}
	var ip *faults.InjectedPanic
	if errors.As(err, &ip) {
		return CodeInjectedPanic, http.StatusInternalServerError
	}
	var se *eden.SendError
	if errors.As(err, &se) {
		return CodeSendError, http.StatusInternalServerError
	}
	var cm *eden.ChanMisuseError
	if errors.As(err, &cm) {
		return CodeChanMisuse, http.StatusInternalServerError
	}
	var ce *euler.CheckError
	if errors.As(err, &ce) {
		return CodeIntegrityCheck, http.StatusInternalServerError
	}
	var ie *integrityError
	if errors.As(err, &ie) {
		return CodeIntegrityCheck, http.StatusInternalServerError
	}
	var pe *graph.PoisonError
	if errors.As(err, &pe) {
		return CodePoisoned, http.StatusInternalServerError
	}
	return CodeInternal, http.StatusInternalServerError
}

// ErrorInfo is the wire form of a classified failure.
type ErrorInfo struct {
	Code       ErrorCode `json:"code"`
	HTTPStatus int       `json:"http_status"`
	Message    string    `json:"message"`
	// RetryAfterSec, on a queue_full rejection, is the server's estimate
	// of when the tenant's queue will have room, from its observed drain
	// rate (the HTTP gateway mirrors it into the Retry-After header).
	RetryAfterSec int `json:"retry_after_sec,omitempty"`
}

// classifyInfo builds the wire form, or nil for a nil error.
func classifyInfo(err error) *ErrorInfo {
	if err == nil {
		return nil
	}
	code, status := Classify(err)
	return &ErrorInfo{Code: code, HTTPStatus: status, Message: err.Error()}
}
