package serve

import (
	"sync"
	"testing"
	"time"
)

// smallConfig keeps tests fast and contention visible.
func smallConfig() Config {
	return Config{Workers: 4, PEs: 2, Lanes: 2, QueueCap: 64,
		MaxInflight: 8, DefaultDeadline: 30 * time.Second}
}

// TestServeMixedWorkloadsConcurrently is the acceptance-shaped core
// test: one resident server sustains over 100 concurrent jobs across
// the whole workload set on both backends, without restart, every
// result oracle-checked (the server's own check gate — OK implies the
// value matched the sequential oracle).
func TestServeMixedWorkloadsConcurrently(t *testing.T) {
	s := New(smallConfig())
	defer s.Close()

	mix := []JobRequest{
		{Workload: "sumeuler", N: 500, Chunks: 8},
		{Workload: "sumeuler", N: 300, Backend: "eden"},
		{Workload: "matmul", N: 16},
		{Workload: "matmul", N: 16, Backend: "eden"},
		{Workload: "apsp", N: 16},
		{Workload: "apsp", N: 16, Backend: "eden"},
		{Workload: "fuzz", N: 150, Seed: 9},
		{Workload: "mandel", Width: 32, Height: 24},
		{Workload: "mandel", Width: 32, Height: 24, Backend: "eden"},
	}
	const rounds = 13 // 9 * 13 = 117 concurrent jobs
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failures []string
	for r := 0; r < rounds; r++ {
		for i, req := range mix {
			wg.Add(1)
			req := req
			req.Tenant = []string{"alice", "bob", "carol"}[i%3]
			go func() {
				defer wg.Done()
				resp := s.Do(req)
				if !resp.OK {
					mu.Lock()
					failures = append(failures, resp.Workload+"/"+resp.Backend+": "+resp.Error.Message)
					mu.Unlock()
					return
				}
				if resp.Value == nil || resp.TotalNS <= 0 {
					mu.Lock()
					failures = append(failures, resp.Workload+": missing value or latency")
					mu.Unlock()
				}
			}()
		}
	}
	wg.Wait()
	if len(failures) > 0 {
		t.Fatalf("%d/%d jobs failed; first: %s", len(failures), rounds*len(mix), failures[0])
	}
	st := s.Statusz()
	if want := int64(rounds * len(mix)); st.JobsDone != want {
		t.Fatalf("JobsDone = %d, want %d", st.JobsDone, want)
	}
	if st.JobsFailed != 0 {
		t.Fatalf("JobsFailed = %d", st.JobsFailed)
	}
	if st.Pool.SparksCreated == 0 {
		t.Fatal("pool recorded no sparks across the whole mix")
	}
}

// TestServeAdmissionRejections: validation failures classify before
// any queueing, with the right codes.
func TestServeAdmissionRejections(t *testing.T) {
	s := New(smallConfig())
	defer s.Close()
	cases := []struct {
		req  JobRequest
		code ErrorCode
	}{
		{JobRequest{Workload: "nope"}, CodeUnknownWorkload},
		{JobRequest{Workload: "sumeuler", N: maxSumEulerN + 1}, CodeBadRequest},
		{JobRequest{Workload: "matmul", N: 13}, CodeBadRequest},
		{JobRequest{Workload: "fuzz", Backend: "eden"}, CodeBadRequest},
		{JobRequest{Workload: "sumeuler", Backend: "gum"}, CodeBadRequest},
		{JobRequest{Workload: "sumeuler", Faults: "panic-spark"}, CodeBadRequest},
		{JobRequest{Workload: "mandel", Width: 1024, Height: 1024}, CodeBadRequest},
	}
	for _, tc := range cases {
		resp := s.Do(tc.req)
		if resp.OK || resp.Error == nil || resp.Error.Code != tc.code {
			t.Errorf("Do(%+v) = %+v, want code %q", tc.req, resp.Error, tc.code)
		}
	}
}

// TestServeQueueFullBackpressure: a tenant beyond its queue bound is
// rejected with queue_full while admitted jobs still complete.
func TestServeQueueFullBackpressure(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxInflight = 1
	cfg.QueueCap = 2
	s := New(cfg)
	defer s.Close()

	const clients = 12
	var wg sync.WaitGroup
	var mu sync.Mutex
	counts := map[ErrorCode]int{}
	okCount := 0
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := s.Do(JobRequest{Workload: "sumeuler", N: 4000, Chunks: 8})
			mu.Lock()
			defer mu.Unlock()
			if resp.OK {
				okCount++
			} else {
				counts[resp.Error.Code]++
			}
		}()
	}
	wg.Wait()
	if okCount == 0 {
		t.Fatal("no job completed under backpressure")
	}
	if counts[CodeQueueFull] == 0 {
		t.Fatalf("no queue_full rejection across %d clients at cap 2 (ok=%d, rejects=%v)",
			clients, okCount, counts)
	}
	for code := range counts {
		if code != CodeQueueFull {
			t.Fatalf("unexpected rejection code %q (%v)", code, counts)
		}
	}
	if s.Statusz().Rejected == 0 {
		t.Fatal("statusz did not count the rejections")
	}
}

// TestServeTenantFairness: one tenant floods the queue, a second
// submits a pair of jobs afterwards; the round-robin dispatcher must
// not starve the second tenant behind the flood.
func TestServeTenantFairness(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxInflight = 1 // serialise execution so completion order == dispatch order
	s := New(cfg)
	defer s.Close()

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	submit := func(tenant string) {
		defer wg.Done()
		resp := s.Do(JobRequest{Workload: "sumeuler", N: 2500, Chunks: 8, Tenant: tenant})
		if !resp.OK {
			t.Errorf("%s job failed: %+v", tenant, resp.Error)
			return
		}
		mu.Lock()
		order = append(order, tenant)
		mu.Unlock()
	}

	const floodJobs = 10
	for i := 0; i < floodJobs; i++ {
		wg.Add(1)
		go submit("flood")
	}
	time.Sleep(100 * time.Millisecond) // let the flood queue up
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go submit("patient")
	}
	wg.Wait()

	// Round-robin alternates flood/patient while both have work, so the
	// patient tenant's two jobs must complete well before the flood's
	// tail — at the latest with four flood jobs still outstanding.
	lastPatient := -1
	for i, tenant := range order {
		if tenant == "patient" {
			lastPatient = i
		}
	}
	if lastPatient < 0 {
		t.Fatal("patient tenant never completed")
	}
	if lastPatient > len(order)-4 {
		t.Fatalf("patient tenant starved: finished at position %d of %d (%v)",
			lastPatient+1, len(order), order)
	}
}

// TestServeFaultScopedToJob: a request carrying its own fault plan
// fails with a structured code; concurrent clean jobs and the server
// survive untouched.
func TestServeFaultScopedToJob(t *testing.T) {
	s := New(smallConfig())
	defer s.Close()

	var wg sync.WaitGroup
	clean := make([]*JobResponse, 6)
	for i := range clean {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			clean[i] = s.Do(JobRequest{Workload: "sumeuler", N: 400, Chunks: 8})
		}(i)
	}
	faulted := s.Do(JobRequest{Workload: "sumeuler", N: 400, Backend: "eden",
		Faults: "seed=7,panic-proc=0", DeadlineMS: 5000})
	wg.Wait()

	if faulted.OK {
		t.Fatal("faulted job completed OK")
	}
	switch faulted.Error.Code {
	case CodeInjectedPanic, CodeDeadlock, CodePoisoned:
	default:
		t.Fatalf("faulted job code = %q (%s)", faulted.Error.Code, faulted.Error.Message)
	}
	for i, resp := range clean {
		if !resp.OK {
			t.Errorf("clean neighbour %d failed: %+v", i, resp.Error)
		}
	}
	// The server keeps serving after absorbing the fault.
	if resp := s.Do(JobRequest{Workload: "sumeuler", N: 300, Backend: "eden"}); !resp.OK {
		t.Fatalf("post-fault job failed: %+v", resp.Error)
	}
}

// TestServeGracefulDrain: Close completes every admitted job, then
// rejects new work with the draining code.
func TestServeGracefulDrain(t *testing.T) {
	s := New(smallConfig())

	const jobs = 8
	responses := make([]*JobResponse, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			responses[i] = s.Do(JobRequest{Workload: "sumeuler", N: 3000, Chunks: 8})
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // let the batch be admitted
	s.Close()
	wg.Wait()

	okCount := 0
	for i, resp := range responses {
		if resp == nil {
			t.Fatalf("job %d got no response across drain", i)
		}
		switch {
		case resp.OK:
			okCount++
		case resp.Error.Code == CodeDraining: // admitted after drain began
		default:
			t.Fatalf("job %d failed with %q across drain: %s", i, resp.Error.Code, resp.Error.Message)
		}
	}
	if okCount == 0 {
		t.Fatal("no admitted job completed across the drain")
	}
	resp := s.Do(JobRequest{Workload: "sumeuler", N: 100})
	if resp.OK || resp.Error.Code != CodeDraining {
		t.Fatalf("Do after Close = %+v, want draining", resp.Error)
	}
	if !s.Statusz().Draining {
		t.Fatal("statusz does not report draining")
	}
	s.Close() // idempotent
}

// TestServeStatuszSnapshots: pool counters in consecutive snapshots
// are monotone while jobs churn (the resident sampler contract,
// observed through the service layer).
func TestServeStatuszSnapshots(t *testing.T) {
	s := New(smallConfig())
	defer s.Close()

	stop := make(chan struct{})
	var monoErr error
	var monoWG sync.WaitGroup
	monoWG.Add(1)
	go func() {
		defer monoWG.Done()
		prev := s.Statusz()
		for {
			select {
			case <-stop:
				return
			default:
			}
			cur := s.Statusz()
			if cur.Pool.SparksCreated < prev.Pool.SparksCreated ||
				cur.JobsDone < prev.JobsDone ||
				cur.Pool.Forks < prev.Pool.Forks {
				monoErr = &integrityError{workload: "statusz-monotonicity"}
				return
			}
			prev = cur
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 8; k++ {
				if resp := s.Do(JobRequest{Workload: "sumeuler", N: 300, Chunks: 6}); !resp.OK {
					t.Errorf("job failed: %+v", resp.Error)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	monoWG.Wait()
	if monoErr != nil {
		t.Fatal("statusz pool counters decreased across snapshots")
	}
	st := s.Statusz()
	if st.JobsDone != 32 || st.Queued != 0 || st.Inflight != 0 {
		t.Fatalf("final statusz: done=%d queued=%d inflight=%d", st.JobsDone, st.Queued, st.Inflight)
	}
}
