package tune

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseBackoff parses the -backoff CLI grammar: a comma-separated
// key=value list over
//
//	spin=N      Gosched rounds before the first sleep (default 64)
//	min=DUR     first sleep duration (default 10µs)
//	max=DUR     sleep cap (default 1.28ms)
//	park=N      sleep rounds before parking; 0 = never park (default 0)
//
// e.g. "spin=32,min=5us,max=2ms,park=8". The empty string yields the
// legacy default policy. Errors name the offending key so the CLIs
// can fail fast, -gogc style.
func ParseBackoff(spec string) (*Backoff, error) {
	spin, parkAfter := DefaultSpin, 0
	min, max := DefaultSleepMin, DefaultSleepMax
	spec = strings.TrimSpace(spec)
	if spec != "" {
		for _, field := range strings.Split(spec, ",") {
			field = strings.TrimSpace(field)
			if field == "" {
				continue
			}
			k, v, ok := strings.Cut(field, "=")
			if !ok {
				return nil, fmt.Errorf("backoff spec: %q is not key=value", field)
			}
			k, v = strings.TrimSpace(k), strings.TrimSpace(v)
			switch k {
			case "spin":
				n, err := strconv.Atoi(v)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("backoff spec: spin=%q (want a positive integer)", v)
				}
				spin = n
			case "park":
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("backoff spec: park=%q (want a non-negative integer; 0 disables parking)", v)
				}
				parkAfter = n
			case "min", "max":
				d, err := time.ParseDuration(v)
				if err != nil || d <= 0 {
					return nil, fmt.Errorf("backoff spec: %s=%q (want a positive duration like 10us or 1ms)", k, v)
				}
				if k == "min" {
					min = d
				} else {
					max = d
				}
			default:
				return nil, fmt.Errorf("backoff spec: unknown key %q (want spin, min, max or park)", k)
			}
		}
	}
	if max < min {
		return nil, fmt.Errorf("backoff spec: max (%s) must be at least min (%s)", max, min)
	}
	return NewBackoff(spin, min, max, parkAfter), nil
}
