// Package tune closes the loop on the runtime telemetry: every knob
// the paper tuned by hand — spark granularity (chunk counts and block
// sizes), steal backoff, the GC target (GOGC as the allocation-area
// size of §IV-A.1), worker parking — becomes a lever an online
// controller moves from the signals the runtime already publishes
// (steal-failure rates, spark-pool depths, per-spark service times,
// GC cycle and allocation deltas).
//
// The package is deliberately runtime-agnostic: it imports neither
// internal/native nor internal/nativeeden. The runtimes hand it an
// Observation stream and a set of levers (a Splitter shared with the
// workload, a Backoff policy the idle loops read, a GOGC adjuster);
// the Controller's Step function is a pure transition from observation
// deltas to decisions, so controller behaviour is unit-testable from
// synthetic snapshot streams with no wall-clock dependence.
package tune

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Default backoff parameters: the fixed policy the native runtime's
// idleWait hard-coded before it became tunable (64 Gosched rounds,
// then sleeps doubling from 10µs to a 1.28ms cap), plus the parking
// threshold the adaptive policy starts from.
const (
	DefaultSpin      = 64
	DefaultSleepMin  = 10 * time.Microsecond
	DefaultSleepMax  = 1280 * time.Microsecond
	DefaultParkAfter = 8
	// maxBackoffLevel bounds how far Widen can escalate: each level
	// halves the spin budget and doubles the sleep cap.
	maxBackoffLevel = 4
)

// Backoff is a per-pool idle-wait policy: how long an idle worker
// spins, how its sleeps grow, and when (if ever) it parks on the
// pool's condvar instead of sleeping. All fields are atomics so the
// controller can move them while workers read them lock-free; the
// zero-cost path for runs without a policy is a package-level default
// instance that nothing ever adjusts.
type Backoff struct {
	// Immutable level-0 baseline, set at construction.
	baseSpin  int64
	baseMinNS int64
	baseMaxNS int64

	// level is the controller's widen/narrow position: level k spins
	// baseSpin>>k rounds before sleeping and caps sleeps at
	// baseMaxNS<<k. Widening trades steal latency for burned cores
	// under sustained steal failure; narrowing restores responsiveness
	// when work returns.
	level atomic.Int64

	// parkAfter is how many consecutive sleep rounds an idle loop takes
	// before parking on the pool condvar; 0 disables parking (the
	// pre-parking sleep-loop behaviour).
	parkAfter atomic.Int64
}

// NewBackoff builds a policy from explicit parameters. spin < 1 is
// clamped to 1; non-positive durations take the defaults.
func NewBackoff(spin int, min, max time.Duration, parkAfter int) *Backoff {
	if spin < 1 {
		spin = 1
	}
	if min <= 0 {
		min = DefaultSleepMin
	}
	if max < min {
		max = min
	}
	if parkAfter < 0 {
		parkAfter = 0
	}
	b := &Backoff{baseSpin: int64(spin), baseMinNS: min.Nanoseconds(), baseMaxNS: max.Nanoseconds()}
	b.parkAfter.Store(int64(parkAfter))
	return b
}

// DefaultBackoffPolicy returns the fixed legacy policy: spin 64,
// sleeps 10µs..1.28ms, no parking.
func DefaultBackoffPolicy() *Backoff {
	return NewBackoff(DefaultSpin, DefaultSleepMin, DefaultSleepMax, 0)
}

// AdaptiveBackoff returns the policy an autotuned run starts from:
// the legacy spin/sleep shape with parking armed, ready for the
// controller to widen and narrow.
func AdaptiveBackoff() *Backoff {
	return NewBackoff(DefaultSpin, DefaultSleepMin, DefaultSleepMax, DefaultParkAfter)
}

// Level reports the current widen level (0 = baseline).
func (b *Backoff) Level() int { return int(b.level.Load()) }

// ParkAfter reports the sleep rounds before parking (0 = never park).
func (b *Backoff) ParkAfter() int { return int(b.parkAfter.Load()) }

// SetParkAfter moves the parking threshold (0 disables parking).
func (b *Backoff) SetParkAfter(rounds int) {
	if rounds < 0 {
		rounds = 0
	}
	b.parkAfter.Store(int64(rounds))
}

// Widen escalates the backoff one level (fewer spins, longer sleeps)
// and reports whether anything changed (false at the cap).
func (b *Backoff) Widen() bool {
	for {
		l := b.level.Load()
		if l >= maxBackoffLevel {
			return false
		}
		if b.level.CompareAndSwap(l, l+1) {
			return true
		}
	}
}

// Narrow de-escalates one level toward the baseline and reports
// whether anything changed (false at level 0).
func (b *Backoff) Narrow() bool {
	for {
		l := b.level.Load()
		if l <= 0 {
			return false
		}
		if b.level.CompareAndSwap(l, l-1) {
			return true
		}
	}
}

// spin returns the Gosched budget at the current level (≥ 1).
func (b *Backoff) spin() int64 {
	s := b.baseSpin >> uint(b.level.Load())
	if s < 1 {
		s = 1
	}
	return s
}

// sleepNS is the doubling ladder: sleep round `round` (0-based) lasts
// min<<round nanoseconds, capped at the current level's maximum.
func (b *Backoff) sleepNS(round int64) int64 {
	max := b.baseMaxNS << uint(b.level.Load())
	ns := b.baseMinNS
	for i := int64(0); i < round && ns < max; i++ {
		ns <<= 1
	}
	if ns > max {
		ns = max
	}
	return ns
}

// Plan tells an idle loop what iteration `spins` should do: park
// (park=true), sleep for d (d > 0), or yield the processor (d == 0).
// The schedule is the classic spin-then-sleep ladder: `spin()` yield
// rounds, then sleeps doubling from the minimum to the level's cap;
// once parkAfter sleep rounds have passed (and parking is enabled),
// park. Lock-free; safe from any goroutine.
func (b *Backoff) Plan(spins int) (d time.Duration, park bool) {
	sp := b.spin()
	if int64(spins) <= sp {
		return 0, false
	}
	round := int64(spins) - sp - 1 // 0-based sleep round
	if pa := b.parkAfter.Load(); pa > 0 && round >= pa {
		return 0, true
	}
	return time.Duration(b.sleepNS(round)), false
}

// Sleep is Plan for idle loops that may never park — a force blocked
// on a thunk has no wake source on the pool condvar, so it rides the
// sleep ladder to the cap instead.
func (b *Backoff) Sleep(spins int) time.Duration {
	sp := b.spin()
	if int64(spins) <= sp {
		return 0
	}
	return time.Duration(b.sleepNS(int64(spins) - sp - 1))
}

// String renders the policy for logs and traces.
func (b *Backoff) String() string {
	return fmt.Sprintf("backoff{spin=%d min=%s max=%s level=%d park=%d}",
		b.spin(), time.Duration(b.baseMinNS), time.Duration(b.baseMaxNS<<uint(b.level.Load())),
		b.level.Load(), b.parkAfter.Load())
}
