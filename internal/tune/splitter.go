package tune

import (
	"sync/atomic"
	"time"

	"parhask/internal/exec"
	"parhask/internal/graph"
)

// Grain bounds: a Splitter never fuses a leaf above MaxGrain items or
// splits below MinGrain, whatever the controller asks for.
const (
	DefaultMinGrain = 1
	DefaultMaxGrain = 1 << 20
)

// Splitter is the dynamic-granularity lever: a shared, mutable grain
// (items per spark) that workloads read at *execution* time and the
// controller moves from observed per-leaf service times. Because the
// driver (ParSum / Each) re-reads the grain when a range actually
// runs — not when it was sparked — a Split decision takes effect on
// sparks already sitting in the pools: an oversized range splits
// lazily into two child sparks when a worker picks it up, the classic
// lazy-binary-splitting shape.
//
// All fields accessed from workers are atomics; the struct is shared
// between the workload body, the runtime's workers, and the
// controller tick without locks.
type Splitter struct {
	name     string
	minGrain int64
	maxGrain int64
	grain    atomic.Int64

	// Leaf service-time feedback, written by Observe on the worker
	// that ran the leaf and drained by the controller via TakeService.
	leafCount atomic.Int64
	leafNS    atomic.Int64

	// Decision counters, for telemetry.
	splits atomic.Int64
	fuses  atomic.Int64
}

// NewSplitter builds a splitter named for telemetry, starting at
// `grain` items per leaf, clamped to [minGrain, maxGrain]. Non-positive
// bounds take the defaults.
func NewSplitter(name string, grain, minGrain, maxGrain int) *Splitter {
	if minGrain <= 0 {
		minGrain = DefaultMinGrain
	}
	if maxGrain < minGrain {
		maxGrain = DefaultMaxGrain
		if maxGrain < minGrain {
			maxGrain = minGrain
		}
	}
	s := &Splitter{name: name, minGrain: int64(minGrain), maxGrain: int64(maxGrain)}
	g := int64(grain)
	if g < s.minGrain {
		g = s.minGrain
	}
	if g > s.maxGrain {
		g = s.maxGrain
	}
	s.grain.Store(g)
	return s
}

// Name reports the telemetry label.
func (s *Splitter) Name() string { return s.name }

// Grain reports the current items-per-leaf target.
func (s *Splitter) Grain() int { return int(s.grain.Load()) }

// Bounds reports the clamp range the grain moves within.
func (s *Splitter) Bounds() (minGrain, maxGrain int) {
	return int(s.minGrain), int(s.maxGrain)
}

// Splits and Fuses report how many times each decision fired.
func (s *Splitter) Splits() int64 { return s.splits.Load() }
func (s *Splitter) Fuses() int64  { return s.fuses.Load() }

// Split halves the grain (finer sparks) and reports whether anything
// changed (false at the minimum).
func (s *Splitter) Split() bool {
	for {
		g := s.grain.Load()
		ng := g / 2
		if ng < s.minGrain {
			return false
		}
		if s.grain.CompareAndSwap(g, ng) {
			s.splits.Add(1)
			return true
		}
	}
}

// Fuse doubles the grain (coarser sparks) and reports whether anything
// changed (false at the maximum).
func (s *Splitter) Fuse() bool {
	for {
		g := s.grain.Load()
		ng := g * 2
		if ng > s.maxGrain {
			return false
		}
		if s.grain.CompareAndSwap(g, ng) {
			s.fuses.Add(1)
			return true
		}
	}
}

// Observe records that a leaf of `items` items took `ns` nanoseconds.
// Called by workloads on the worker that ran the leaf; lock-free.
func (s *Splitter) Observe(items int, ns int64) {
	if items <= 0 || ns < 0 {
		return
	}
	s.leafCount.Add(1)
	s.leafNS.Add(ns)
}

// TakeService drains the feedback accumulated since the last call:
// the number of leaves observed and their mean service time in
// nanoseconds (0 if none ran). The controller calls this once per
// tick; draining keeps each tick's signal fresh rather than a
// run-lifetime average.
func (s *Splitter) TakeService() (leaves int64, avgNS int64) {
	leaves = s.leafCount.Swap(0)
	ns := s.leafNS.Swap(0)
	if leaves > 0 {
		avgNS = ns / leaves
	}
	return leaves, avgNS
}

// ParSum evaluates sum(leaf(i) for i in [lo,hi)) with lazy binary
// splitting: a range wider than the current grain sparks its upper
// half and recurses into the lower, re-reading the grain each time a
// range is forced. Leaves call Observe with their measured service
// time via ctx's Burn-free wall clock — the caller's leaf function is
// responsible for the actual work. Returns the sum; the spine forces
// sparked halves in reverse order so un-stolen sparks run newest-first
// in the owner's deque.
func (s *Splitter) ParSum(ctx exec.Ctx, lo, hi int, leaf func(exec.Ctx, int, int) int64) int64 {
	if lo >= hi {
		return 0
	}
	var rec func(ctx exec.Ctx, lo, hi int) int64
	rec = func(ctx exec.Ctx, lo, hi int) int64 {
		n := hi - lo
		if int64(n) <= s.grain.Load() {
			start := time.Now()
			v := leaf(ctx, lo, hi)
			s.Observe(n, time.Since(start).Nanoseconds())
			return v
		}
		mid := lo + n/2
		upper := exec.NewThunk(ctx, func(c exec.Ctx) graph.Value { return rec(c, mid, hi) })
		ctx.Par(upper)
		left := rec(ctx, lo, mid)
		return left + ctx.Force(upper).(int64)
	}
	return rec(ctx, lo, hi)
}

// Each runs visit over [lo,hi) with the same lazy splitting as ParSum
// but no value. Under lazy black-holing a split node can be entered
// twice (duplicate evaluation), so visit may run more than once for
// the same range, concurrently — it must stay effect-free on shared
// memory. Use it to force heap thunks in parallel (duplicate forces
// are resolved by the graph layer) and assemble any shared output on
// the spine afterwards.
func (s *Splitter) Each(ctx exec.Ctx, lo, hi int, visit func(exec.Ctx, int, int)) {
	s.ParSum(ctx, lo, hi, func(c exec.Ctx, a, b int) int64 {
		visit(c, a, b)
		return 0
	})
}
