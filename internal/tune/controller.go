package tune

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"parhask/internal/metrics"
)

// Observation is one controller tick's view of the runtime: the
// published cumulative counters at tick time. The controller works on
// deltas between successive observations, so the producer only has to
// hand over whatever snapshot the runtime already publishes
// (native.Stats + GC window) — no new synchronisation. NowNS is the
// observation's own clock so tests can drive a synthetic stream with
// no wall-clock dependence.
type Observation struct {
	NowNS int64 // observation timestamp (monotonic within a run)

	// Scheduler counters (cumulative).
	SparksConverted int64 // sparks executed so far
	Steals          int64 // successful steals
	StealAttempts   int64 // attempted steals (success + failure)
	SparksLeftover  int64 // current total depth of the spark pools
	InjectDepth     int64 // current external injection-queue depth

	// GC counters (cumulative over the run/window).
	GCCycles   int64 // completed GC cycles
	AllocBytes int64 // cumulative bytes allocated

	// Idle telemetry (cumulative).
	BackoffSleeps int64 // backoff sleep rounds taken
	ParkedNS      int64 // total parked nanoseconds
	IdleWorkers   int64 // workers currently parked
}

// Decision is one actuation the controller performed (or declined at
// a bound), in the structured trace and the autotune_* metrics.
type Decision struct {
	TickNS int64  `json:"tick_ns"`          // Observation.NowNS of the tick that decided
	Lever  string `json:"lever"`            // chunk | backoff | gogc | park
	Target string `json:"target,omitempty"` // splitter name for chunk decisions
	Action string `json:"action"`           // split|fuse | widen|narrow | raise|lower | enable|disable
	From   int64  `json:"from"`             // lever position before
	To     int64  `json:"to"`               // lever position after
	Reason string `json:"reason"`           // the signal that drove it
}

func (d Decision) String() string {
	t := d.Lever
	if d.Target != "" {
		t += ":" + d.Target
	}
	return fmt.Sprintf("[%dms] %s %s %d->%d (%s)", d.TickNS/1e6, t, d.Action, d.From, d.To, d.Reason)
}

// Trace is a bounded decision log: appends past the cap drop the
// oldest entries, so a long service run keeps the recent history
// without unbounded growth.
type Trace struct {
	mu      sync.Mutex
	cap     int
	dropped int64
	buf     []Decision
}

// NewTrace builds a trace keeping the most recent `cap` decisions
// (cap <= 0 means the 1024 default).
func NewTrace(cap int) *Trace {
	if cap <= 0 {
		cap = 1024
	}
	return &Trace{cap: cap}
}

// Add appends a decision, evicting the oldest beyond the cap.
func (t *Trace) Add(d Decision) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = append(t.buf, d)
	if over := len(t.buf) - t.cap; over > 0 {
		t.dropped += int64(over)
		t.buf = append(t.buf[:0], t.buf[over:]...)
	}
}

// Decisions returns a copy of the retained decisions, oldest first.
func (t *Trace) Decisions() []Decision {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Decision, len(t.buf))
	copy(out, t.buf)
	return out
}

// Dropped reports how many decisions the cap evicted.
func (t *Trace) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// JSON renders the retained decisions for the bench output / trace
// artifact.
func (t *Trace) JSON() ([]byte, error) {
	return json.MarshalIndent(t.Decisions(), "", "  ")
}

// GOGCAdjuster is the controller's GC lever: gcscope.Lease satisfies
// it, and tests substitute a fake. Adjust reports false when the move
// was refused (the lease is shared with a holder wanting a different
// percent), in which case the controller backs off rather than
// fighting.
type GOGCAdjuster interface {
	Adjust(percent int) bool
	Percent() int
}

// Levers is the set of actuators one controller instance drives. Any
// nil/empty lever is simply skipped, so callers wire only what their
// run uses.
type Levers struct {
	Splitters []*Splitter  // chunk-granularity levers, one per workload phase
	Backoff   *Backoff     // the pool's idle-wait policy
	GOGC      GOGCAdjuster // the run's GC lease
}

// ControllerConfig tunes the controller itself. The zero value is
// usable; Normalise fills the defaults.
type ControllerConfig struct {
	// Tick is the observation cadence of the background loop
	// (Start/Stop). The Step core itself is cadence-agnostic.
	Tick time.Duration

	// TargetLeafNS is the per-spark service time the chunk lever aims
	// for, with a [Low,High] hysteresis band around it: leaves slower
	// than TargetLeafNS*HighBand split, faster than TargetLeafNS/LowBand
	// fuse. The 200µs default sits well above the ~1µs spark overhead
	// measured by the hot-path bench while still yielding thousands of
	// sparks on the paper-scale workloads.
	TargetLeafNS int64

	// StealFailHigh is the steal-failure ratio (failed attempts /
	// attempts, per tick) above which — with an empty inject queue —
	// the backoff widens. StealFailLow is the ratio below which it
	// narrows back.
	StealFailHigh float64
	StealFailLow  float64

	// GCRaiseCycles raises GOGC (doubling, capped at MaxGOGC) when a
	// tick sees at least this many new GC cycles; after GCLowerTicks
	// consecutive quiet ticks (zero new cycles) GOGC steps back toward
	// BaseGOGC.
	GCRaiseCycles int64
	GCLowerTicks  int
	BaseGOGC      int
	MaxGOGC       int

	// ParkIdleTicks enables parking after this many consecutive ticks
	// with a drained pool (no conversions, empty pools); sustained deep
	// pools for the same count disable it again.
	ParkIdleTicks int

	// TraceCap bounds the decision trace.
	TraceCap int

	// Metrics, when non-nil, receives the autotune_* series.
	Metrics *metrics.Registry
}

// Normalise fills zero fields with defaults and returns the config.
func (c ControllerConfig) Normalise() ControllerConfig {
	if c.Tick <= 0 {
		c.Tick = 2 * time.Millisecond
	}
	if c.TargetLeafNS <= 0 {
		c.TargetLeafNS = 200_000 // 200µs
	}
	if c.StealFailHigh <= 0 {
		c.StealFailHigh = 0.9
	}
	if c.StealFailLow <= 0 {
		c.StealFailLow = 0.5
	}
	if c.GCRaiseCycles <= 0 {
		c.GCRaiseCycles = 2
	}
	if c.GCLowerTicks <= 0 {
		c.GCLowerTicks = 4
	}
	if c.BaseGOGC <= 0 {
		c.BaseGOGC = 100
	}
	if c.MaxGOGC <= 0 {
		c.MaxGOGC = 800
	}
	if c.ParkIdleTicks <= 0 {
		c.ParkIdleTicks = 3
	}
	return c
}

// Controller turns an observation stream into lever movements. The
// decision core (Step) is deterministic: it depends only on the
// config, the lever positions, and the observation deltas — never on
// the wall clock — so tests drive it with synthetic streams. Start
// wraps Step in a ticker goroutine for live runs.
type Controller struct {
	cfg    ControllerConfig
	levers Levers
	trace  *Trace

	// Delta state between ticks.
	havePrev bool
	prev     Observation

	// Rule state.
	quietGCTicks  int // consecutive ticks without a GC cycle
	idleTicks     int // consecutive drained-pool ticks
	busyTicks     int // consecutive deep-pool ticks
	parkedEnabled bool
	savedPark     int // parkAfter to restore when re-enabling

	// Background loop plumbing.
	stopOnce  sync.Once
	stopCh    chan struct{}
	doneCh    chan struct{}
	startFlag atomic.Bool

	// Metrics. Registration is idempotent, so decision counters are
	// registered lazily per (lever, action) as decisions fire.
	reg      *metrics.Registry
	mGrain   map[string]*metrics.Gauge
	mBackoff *metrics.Gauge
	mGOGC    *metrics.Gauge
	mPark    *metrics.Gauge
}

// NewController wires a controller to its levers. The returned
// controller has not started ticking; either call Step yourself or
// Start it with a sampler.
func NewController(cfg ControllerConfig, levers Levers) *Controller {
	cfg = cfg.Normalise()
	c := &Controller{
		cfg:    cfg,
		levers: levers,
		trace:  NewTrace(cfg.TraceCap),
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}
	c.parkedEnabled = levers.Backoff != nil && levers.Backoff.ParkAfter() > 0
	if c.parkedEnabled {
		c.savedPark = levers.Backoff.ParkAfter()
	} else {
		c.savedPark = DefaultParkAfter
	}
	if reg := cfg.Metrics; reg != nil {
		c.reg = reg
		c.mGrain = map[string]*metrics.Gauge{}
		for _, sp := range levers.Splitters {
			g := reg.Gauge("autotune_grain", "current splitter grain (items per spark)", "splitter", sp.Name())
			g.Set(float64(sp.Grain()))
			c.mGrain[sp.Name()] = g
		}
		if levers.Backoff != nil {
			c.mBackoff = reg.Gauge("autotune_backoff_level", "current backoff widen level")
			c.mBackoff.Set(float64(levers.Backoff.Level()))
		}
		if levers.GOGC != nil {
			c.mGOGC = reg.Gauge("autotune_gogc", "current controller-set GOGC percent")
			c.mGOGC.Set(float64(levers.GOGC.Percent()))
		}
		c.mPark = reg.Gauge("autotune_parking_enabled", "1 when worker parking is enabled")
		if c.parkedEnabled {
			c.mPark.Set(1)
		}
	}
	return c
}

// Trace exposes the bounded decision log.
func (c *Controller) Trace() *Trace { return c.trace }

func (c *Controller) record(d Decision) {
	c.trace.Add(d)
	if c.reg != nil {
		c.reg.Counter("autotune_decisions_total", "autotune controller decisions by lever and action",
			"lever", d.Lever, "action", d.Action).Inc()
	}
	switch d.Lever {
	case "chunk":
		if g, ok := c.mGrain[d.Target]; ok {
			g.Set(float64(d.To))
		}
	case "backoff":
		if c.mBackoff != nil {
			c.mBackoff.Set(float64(d.To))
		}
	case "gogc":
		if c.mGOGC != nil {
			c.mGOGC.Set(float64(d.To))
		}
	case "park":
		if c.mPark != nil {
			var v float64
			if d.Action == "enable" {
				v = 1
			}
			c.mPark.Set(v)
		}
	}
}

// Step consumes one observation and returns the decisions it made
// (already applied to the levers and recorded in the trace). The
// first observation only seeds the delta state.
func (c *Controller) Step(o Observation) []Decision {
	if !c.havePrev {
		c.havePrev, c.prev = true, o
		return nil
	}
	prev := c.prev
	c.prev = o
	var out []Decision
	add := func(d Decision) {
		d.TickNS = o.NowNS
		c.record(d)
		out = append(out, d)
	}

	// Lever 1 — chunk granularity: compare each splitter's mean leaf
	// service time this tick against the target band.
	for _, sp := range c.levers.Splitters {
		leaves, avg := sp.TakeService()
		if leaves == 0 {
			continue
		}
		switch {
		case avg > c.cfg.TargetLeafNS*2: // HighBand = 2x
			from := int64(sp.Grain())
			if sp.Split() {
				add(Decision{Lever: "chunk", Target: sp.Name(), Action: "split", From: from, To: int64(sp.Grain()),
					Reason: fmt.Sprintf("avg leaf %dµs > %dµs target", avg/1000, c.cfg.TargetLeafNS/1000)})
			}
		case avg < c.cfg.TargetLeafNS/4: // LowBand = 4x under
			from := int64(sp.Grain())
			if sp.Fuse() {
				add(Decision{Lever: "chunk", Target: sp.Name(), Action: "fuse", From: from, To: int64(sp.Grain()),
					Reason: fmt.Sprintf("avg leaf %dµs < %dµs floor", avg/1000, c.cfg.TargetLeafNS/4000)})
			}
		}
	}

	// Lever 2 — steal backoff: widen under sustained steal failure on
	// an empty inject queue; narrow when work comes back (leftover
	// sparks or injected items waiting).
	if b := c.levers.Backoff; b != nil {
		attempts := o.StealAttempts - prev.StealAttempts
		successes := o.Steals - prev.Steals
		if attempts > 0 {
			failRatio := 1 - float64(successes)/float64(attempts)
			if failRatio >= c.cfg.StealFailHigh && o.InjectDepth == 0 && o.SparksLeftover == 0 {
				from := int64(b.Level())
				if b.Widen() {
					add(Decision{Lever: "backoff", Action: "widen", From: from, To: int64(b.Level()),
						Reason: fmt.Sprintf("steal failure %.0f%% with dry queues", failRatio*100)})
				}
			} else if failRatio <= c.cfg.StealFailLow || o.InjectDepth > 0 || o.SparksLeftover > 0 {
				from := int64(b.Level())
				if b.Narrow() {
					add(Decision{Lever: "backoff", Action: "narrow", From: from, To: int64(b.Level()),
						Reason: fmt.Sprintf("work available (fail %.0f%%, inject %d, leftover %d)",
							failRatio*100, o.InjectDepth, o.SparksLeftover)})
				}
			}
		}
	}

	// Lever 3 — GOGC: raise (double, capped) when the tick saw GC
	// pressure; after a quiet streak, step back toward the base so a
	// one-off allocation burst doesn't pin the heap target high.
	if gc := c.levers.GOGC; gc != nil {
		cycles := o.GCCycles - prev.GCCycles
		if cycles >= c.cfg.GCRaiseCycles {
			c.quietGCTicks = 0
			from := gc.Percent()
			want := from * 2
			if want > c.cfg.MaxGOGC {
				want = c.cfg.MaxGOGC
			}
			if want != from && gc.Adjust(want) {
				add(Decision{Lever: "gogc", Action: "raise", From: int64(from), To: int64(gc.Percent()),
					Reason: fmt.Sprintf("%d GC cycles in one tick", cycles)})
			}
		} else if cycles == 0 {
			c.quietGCTicks++
			if c.quietGCTicks >= c.cfg.GCLowerTicks && gc.Percent() > c.cfg.BaseGOGC {
				c.quietGCTicks = 0
				from := gc.Percent()
				want := from / 2
				if want < c.cfg.BaseGOGC {
					want = c.cfg.BaseGOGC
				}
				if gc.Adjust(want) {
					add(Decision{Lever: "gogc", Action: "lower", From: int64(from), To: int64(gc.Percent()),
						Reason: fmt.Sprintf("%d quiet ticks", c.cfg.GCLowerTicks)})
				}
			}
		} else {
			c.quietGCTicks = 0
		}
	}

	// Lever 4 — worker parking: when the pools stay drained for a
	// streak of ticks, let idle workers park instead of sleep-looping;
	// when the pools stay deep, turn parking off so the full worker
	// set is always a single Gosched away from stealing.
	if b := c.levers.Backoff; b != nil {
		converted := o.SparksConverted - prev.SparksConverted
		drained := o.SparksLeftover == 0 && o.InjectDepth == 0 && converted == 0
		deep := o.SparksLeftover > 0 || o.InjectDepth > 0
		if drained {
			c.idleTicks++
			c.busyTicks = 0
		} else if deep {
			c.busyTicks++
			c.idleTicks = 0
		} else {
			c.idleTicks, c.busyTicks = 0, 0
		}
		if !c.parkedEnabled && c.idleTicks >= c.cfg.ParkIdleTicks {
			c.idleTicks = 0
			c.parkedEnabled = true
			b.SetParkAfter(c.savedPark)
			add(Decision{Lever: "park", Action: "enable", From: 0, To: int64(c.savedPark),
				Reason: fmt.Sprintf("%d drained ticks", c.cfg.ParkIdleTicks)})
		} else if c.parkedEnabled && c.busyTicks >= c.cfg.ParkIdleTicks {
			c.busyTicks = 0
			c.parkedEnabled = false
			c.savedPark = b.ParkAfter()
			if c.savedPark == 0 {
				c.savedPark = DefaultParkAfter
			}
			b.SetParkAfter(0)
			add(Decision{Lever: "park", Action: "disable", From: int64(c.savedPark), To: 0,
				Reason: fmt.Sprintf("%d deep-pool ticks", c.cfg.ParkIdleTicks)})
		}
	}

	return out
}

// Start launches the tick loop: every cfg.Tick it calls sample() for
// a fresh observation and Steps on it. Call Stop to halt; Start may
// be called at most once.
func (c *Controller) Start(sample func() Observation) {
	c.startFlag.Store(true)
	go func() {
		defer close(c.doneCh)
		tick := time.NewTicker(c.cfg.Tick)
		defer tick.Stop()
		for {
			select {
			case <-c.stopCh:
				return
			case <-tick.C:
				c.Step(sample())
			}
		}
	}()
}

// Stop halts the tick loop (idempotent) and, if Start ever ran, waits
// for the loop goroutine to exit. Safe on a never-started controller.
func (c *Controller) Stop() {
	c.stopOnce.Do(func() { close(c.stopCh) })
	if c.startFlag.Load() {
		<-c.doneCh
	}
}
