package tune

import (
	"strings"
	"testing"
	"time"

	"parhask/internal/exec"
	"parhask/internal/graph"
	"parhask/internal/metrics"
)

// --- Backoff ---

func TestBackoffPlanSchedule(t *testing.T) {
	b := DefaultBackoffPolicy()
	// The spin budget: iterations up to spin yield, never sleep.
	for _, spins := range []int{0, 1, 63, 64} {
		if d, park := b.Plan(spins); d != 0 || park {
			t.Fatalf("Plan(%d) = (%v, %v), want yield", spins, d, park)
		}
	}
	// Then sleeps double from the min to the cap: the legacy idleWait
	// ladder 10µs, 20µs, ..., 1280µs.
	want := []time.Duration{10, 20, 40, 80, 160, 320, 640, 1280, 1280, 1280}
	for i, w := range want {
		d, park := b.Plan(65 + i)
		if park {
			t.Fatalf("Plan(%d) parked with parking disabled", 65+i)
		}
		if d != w*time.Microsecond {
			t.Fatalf("Plan(%d) = %v, want %v", 65+i, d, w*time.Microsecond)
		}
	}
}

func TestBackoffParkThreshold(t *testing.T) {
	b := NewBackoff(4, 10*time.Microsecond, 1280*time.Microsecond, 3)
	// spins 1..4 yield; sleep rounds 0,1,2 at spins 5,6,7; round 3 at
	// spins 8 parks.
	for spins := 0; spins <= 7; spins++ {
		if _, park := b.Plan(spins); park {
			t.Fatalf("Plan(%d) parked before the threshold", spins)
		}
	}
	if _, park := b.Plan(8); !park {
		t.Fatal("Plan(8) did not park at round 3 with park=3")
	}
	b.SetParkAfter(0)
	if _, park := b.Plan(1000); park {
		t.Fatal("Plan parked after SetParkAfter(0)")
	}
}

func TestBackoffWidenNarrow(t *testing.T) {
	b := DefaultBackoffPolicy()
	d0, _ := b.Plan(65) // first sleep at level 0
	if !b.Widen() {
		t.Fatal("Widen at level 0 returned false")
	}
	if b.Level() != 1 {
		t.Fatalf("Level = %d after one Widen", b.Level())
	}
	// Level 1 halves the spin budget: iteration 33 already sleeps.
	if d, _ := b.Plan(33); d == 0 {
		t.Fatal("level 1 did not shorten the spin budget")
	}
	// And doubles the cap.
	if d, _ := b.Plan(10_000); d != 2*1280*time.Microsecond {
		t.Fatalf("level 1 cap = %v, want %v", d, 2*1280*time.Microsecond)
	}
	for b.Widen() {
	}
	if b.Level() != maxBackoffLevel {
		t.Fatalf("Level = %d after widening to the cap, want %d", b.Level(), maxBackoffLevel)
	}
	for b.Narrow() {
	}
	if b.Level() != 0 {
		t.Fatalf("Level = %d after narrowing to the floor", b.Level())
	}
	if d, _ := b.Plan(65); d != d0 {
		t.Fatalf("level 0 schedule changed across widen/narrow: %v vs %v", d, d0)
	}
	if b.Narrow() {
		t.Fatal("Narrow at level 0 returned true")
	}
}

func TestParseBackoff(t *testing.T) {
	b, err := ParseBackoff("spin=32, min=5us, max=2ms, park=8")
	if err != nil {
		t.Fatal(err)
	}
	if got := b.spin(); got != 32 {
		t.Fatalf("spin = %d, want 32", got)
	}
	if b.ParkAfter() != 8 {
		t.Fatalf("parkAfter = %d, want 8", b.ParkAfter())
	}
	if d, _ := b.Plan(33); d != 5*time.Microsecond {
		t.Fatalf("first sleep = %v, want 5µs", d)
	}
	if b, err = ParseBackoff(""); err != nil || b.ParkAfter() != 0 {
		t.Fatalf("empty spec: %v, parkAfter %d", err, b.ParkAfter())
	}
	for _, bad := range []string{
		"spin", "spin=0", "spin=x", "park=-1", "min=0s", "min=fast",
		"max=1us,min=2us", "speed=9",
	} {
		if _, err := ParseBackoff(bad); err == nil {
			t.Errorf("ParseBackoff(%q) accepted", bad)
		}
	}
}

// --- Splitter ---

func TestSplitterSplitFuseClamps(t *testing.T) {
	s := NewSplitter("w", 8, 2, 16)
	if !s.Split() || s.Grain() != 4 {
		t.Fatalf("Split: grain %d, want 4", s.Grain())
	}
	if !s.Split() || s.Grain() != 2 {
		t.Fatalf("Split: grain %d, want 2", s.Grain())
	}
	if s.Split() {
		t.Fatal("Split below minGrain succeeded")
	}
	for s.Fuse() {
	}
	if s.Grain() != 16 {
		t.Fatalf("Fuse cap: grain %d, want 16", s.Grain())
	}
	if s.Splits() != 2 || s.Fuses() != 3 {
		t.Fatalf("counters: splits %d fuses %d, want 2 and 3", s.Splits(), s.Fuses())
	}
}

func TestSplitterTakeService(t *testing.T) {
	s := NewSplitter("w", 8, 1, 64)
	s.Observe(8, 1000)
	s.Observe(8, 3000)
	leaves, avg := s.TakeService()
	if leaves != 2 || avg != 2000 {
		t.Fatalf("TakeService = (%d, %d), want (2, 2000)", leaves, avg)
	}
	if leaves, avg = s.TakeService(); leaves != 0 || avg != 0 {
		t.Fatalf("second TakeService = (%d, %d), want drained", leaves, avg)
	}
	s.Observe(0, 50) // ignored
	s.Observe(1, -1) // ignored
	if leaves, _ = s.TakeService(); leaves != 0 {
		t.Fatal("invalid observations were counted")
	}
}

// seqCtx is a minimal sequential exec.Ctx + graph.Context for driving
// ParSum without a runtime: Par is a no-op (the spine forces every
// sparked thunk itself), Force evaluates in place.
type seqCtx struct{}

func (seqCtx) Burn(int64)                      {}
func (seqCtx) Alloc(int64)                     {}
func (seqCtx) EagerBlackholing() bool          { return true }
func (seqCtx) BlackholeWriteCost() int64       { return 0 }
func (seqCtx) EnteredThunk(*graph.Thunk)       {}
func (seqCtx) LeftThunk(*graph.Thunk)          {}
func (seqCtx) BlockOnThunk(*graph.Thunk)       {}
func (seqCtx) WakeThunkWaiters(*graph.Thunk)   {}
func (seqCtx) NoteDuplicateEntry(*graph.Thunk) {}
func (c seqCtx) Par(*graph.Thunk)              {}
func (c seqCtx) Force(t *graph.Thunk) graph.Value {
	return graph.Force(c, t)
}
func (c seqCtx) ForceDeep(v graph.Value) graph.Value {
	return graph.ForceDeep(c, v)
}

func TestSplitterParSum(t *testing.T) {
	s := NewSplitter("sum", 4, 1, 1024)
	var leaves int
	got := s.ParSum(seqCtx{}, 0, 100, func(_ exec.Ctx, lo, hi int) int64 {
		if hi-lo > 4 {
			t.Errorf("leaf [%d,%d) wider than the grain", lo, hi)
		}
		leaves++
		var sum int64
		for i := lo; i < hi; i++ {
			sum += int64(i)
		}
		return sum
	})
	if want := int64(99 * 100 / 2); got != want {
		t.Fatalf("ParSum = %d, want %d", got, want)
	}
	if leaves == 0 {
		t.Fatal("no leaves ran")
	}
	if n, _ := s.TakeService(); n != int64(leaves) {
		t.Fatalf("observed %d leaves, ran %d", n, leaves)
	}
	if s.ParSum(seqCtx{}, 5, 5, nil) != 0 {
		t.Fatal("empty range is not 0")
	}
}

// TestSplitterParSumMidRunSplit drives the lazy-splitting property the
// controller relies on: coarsening or refining the grain mid-run
// changes the width of leaves that have not run yet.
func TestSplitterParSumMidRunSplit(t *testing.T) {
	s := NewSplitter("sum", 64, 1, 1024)
	var narrow int
	got := s.ParSum(seqCtx{}, 0, 256, func(_ exec.Ctx, lo, hi int) int64 {
		if s.Grain() == 64 {
			s.Split() // 64 -> 32: later leaves must respect the new grain
			s.Split() // 32 -> 16
		} else if hi-lo <= 16 {
			narrow++
		}
		var sum int64
		for i := lo; i < hi; i++ {
			sum += int64(i)
		}
		return sum
	})
	if want := int64(255 * 256 / 2); got != want {
		t.Fatalf("ParSum = %d, want %d", got, want)
	}
	if narrow == 0 {
		t.Fatal("mid-run Split did not refine later leaves")
	}
}

// --- Controller ---

// fakeGOGC satisfies GOGCAdjuster without touching the real GC.
type fakeGOGC struct {
	percent int
	refuse  bool
	calls   []int
}

func (f *fakeGOGC) Percent() int { return f.percent }
func (f *fakeGOGC) Adjust(p int) bool {
	f.calls = append(f.calls, p)
	if f.refuse {
		return false
	}
	f.percent = p
	return true
}

// obs builds a synthetic observation stream: each call advances the
// virtual clock one tick.
type obsStream struct {
	now int64
	o   Observation
}

func (s *obsStream) next(mut func(*Observation)) Observation {
	s.now += int64(time.Millisecond)
	s.o.NowNS = s.now
	if mut != nil {
		mut(&s.o)
	}
	return s.o
}

func actions(ds []Decision, lever string) []string {
	var out []string
	for _, d := range ds {
		if d.Lever == lever {
			out = append(out, d.Action)
		}
	}
	return out
}

func TestControllerChunkSplitFuse(t *testing.T) {
	sp := NewSplitter("sumEuler", 64, 1, 1024)
	c := NewController(ControllerConfig{TargetLeafNS: 100_000}, Levers{Splitters: []*Splitter{sp}})
	st := &obsStream{}
	c.Step(st.next(nil)) // seed

	// Slow leaves (1ms >> 2*100µs): split.
	sp.Observe(64, 1_000_000)
	ds := c.Step(st.next(nil))
	if got := actions(ds, "chunk"); len(got) != 1 || got[0] != "split" {
		t.Fatalf("slow leaves: decisions %v, want one split", ds)
	}
	if sp.Grain() != 32 {
		t.Fatalf("grain = %d after split, want 32", sp.Grain())
	}

	// Fast leaves (10µs << 100µs/4): fuse.
	sp.Observe(32, 10_000)
	ds = c.Step(st.next(nil))
	if got := actions(ds, "chunk"); len(got) != 1 || got[0] != "fuse" {
		t.Fatalf("fast leaves: decisions %v, want one fuse", ds)
	}
	if sp.Grain() != 64 {
		t.Fatalf("grain = %d after fuse, want 64", sp.Grain())
	}

	// In-band leaves: no decision.
	sp.Observe(64, 150_000)
	if ds = c.Step(st.next(nil)); len(actions(ds, "chunk")) != 0 {
		t.Fatalf("in-band leaves still decided: %v", ds)
	}
	// No leaves at all: no decision either.
	if ds = c.Step(st.next(nil)); len(ds) != 0 {
		t.Fatalf("idle tick decided: %v", ds)
	}
}

func TestControllerBackoffWidenNarrow(t *testing.T) {
	b := DefaultBackoffPolicy()
	c := NewController(ControllerConfig{}, Levers{Backoff: b})
	st := &obsStream{}
	c.Step(st.next(nil))

	// Sustained steal failure on dry queues: widen.
	ds := c.Step(st.next(func(o *Observation) {
		o.StealAttempts += 100
		o.Steals += 2
	}))
	if got := actions(ds, "backoff"); len(got) != 1 || got[0] != "widen" {
		t.Fatalf("dry failure: decisions %v, want one widen", ds)
	}
	if b.Level() != 1 {
		t.Fatalf("level = %d, want 1", b.Level())
	}

	// Queue refilled: narrow, even though the failure ratio is high.
	ds = c.Step(st.next(func(o *Observation) {
		o.StealAttempts += 100
		o.Steals += 2
		o.SparksLeftover = 40
	}))
	if got := actions(ds, "backoff"); len(got) != 1 || got[0] != "narrow" {
		t.Fatalf("refill: decisions %v, want one narrow", ds)
	}
	if b.Level() != 0 {
		t.Fatalf("level = %d, want 0", b.Level())
	}
	// Already at the floor: success-heavy ticks decide nothing.
	if ds = c.Step(st.next(func(o *Observation) {
		o.StealAttempts += 100
		o.Steals += 90
		o.SparksLeftover = 0
	})); len(actions(ds, "backoff")) != 0 {
		t.Fatalf("floor tick decided: %v", ds)
	}
}

func TestControllerGOGCRaiseLower(t *testing.T) {
	gc := &fakeGOGC{percent: 100}
	c := NewController(ControllerConfig{GCRaiseCycles: 2, GCLowerTicks: 3, BaseGOGC: 100, MaxGOGC: 400},
		Levers{GOGC: gc})
	st := &obsStream{}
	c.Step(st.next(nil))

	// GC pressure: raise 100 -> 200.
	ds := c.Step(st.next(func(o *Observation) { o.GCCycles += 2 }))
	if got := actions(ds, "gogc"); len(got) != 1 || got[0] != "raise" {
		t.Fatalf("pressure: decisions %v, want one raise", ds)
	}
	if gc.percent != 200 {
		t.Fatalf("GOGC = %d, want 200", gc.percent)
	}
	// More pressure: 200 -> 400 (the cap).
	c.Step(st.next(func(o *Observation) { o.GCCycles += 3 }))
	if gc.percent != 400 {
		t.Fatalf("GOGC = %d, want 400 (cap)", gc.percent)
	}
	// At the cap, pressure decides nothing more.
	if ds = c.Step(st.next(func(o *Observation) { o.GCCycles += 2 })); len(actions(ds, "gogc")) != 0 {
		t.Fatalf("capped raise decided: %v", ds)
	}

	// Three quiet ticks: lower 400 -> 200.
	c.Step(st.next(nil))
	c.Step(st.next(nil))
	ds = c.Step(st.next(nil))
	if got := actions(ds, "gogc"); len(got) != 1 || got[0] != "lower" {
		t.Fatalf("quiet: decisions %v, want one lower", ds)
	}
	if gc.percent != 200 {
		t.Fatalf("GOGC = %d after lower, want 200", gc.percent)
	}
}

func TestControllerGOGCRefused(t *testing.T) {
	gc := &fakeGOGC{percent: 100, refuse: true}
	c := NewController(ControllerConfig{GCRaiseCycles: 2}, Levers{GOGC: gc})
	st := &obsStream{}
	c.Step(st.next(nil))
	// A refused Adjust (shared lease) must not be recorded as a decision.
	ds := c.Step(st.next(func(o *Observation) { o.GCCycles += 5 }))
	if len(actions(ds, "gogc")) != 0 {
		t.Fatalf("refused adjust recorded: %v", ds)
	}
	if len(gc.calls) != 1 {
		t.Fatalf("Adjust called %d times, want 1", len(gc.calls))
	}
}

func TestControllerParkEnableDisable(t *testing.T) {
	b := DefaultBackoffPolicy() // parking off
	c := NewController(ControllerConfig{ParkIdleTicks: 3}, Levers{Backoff: b})
	st := &obsStream{}
	c.Step(st.next(nil))

	// Three drained ticks (no conversions, empty pools): enable parking.
	var ds []Decision
	for i := 0; i < 3; i++ {
		ds = c.Step(st.next(nil))
	}
	if got := actions(ds, "park"); len(got) != 1 || got[0] != "enable" {
		t.Fatalf("drained ticks: decisions %v, want park enable", ds)
	}
	if b.ParkAfter() == 0 {
		t.Fatal("parking still disabled after the enable decision")
	}

	// Three deep-pool ticks: disable again.
	for i := 0; i < 3; i++ {
		ds = c.Step(st.next(func(o *Observation) {
			o.SparksLeftover = 100
			o.SparksConverted += 50
		}))
	}
	if got := actions(ds, "park"); len(got) != 1 || got[0] != "disable" {
		t.Fatalf("deep ticks: decisions %v, want park disable", ds)
	}
	if b.ParkAfter() != 0 {
		t.Fatal("parking still armed after the disable decision")
	}
}

func TestControllerTraceAndMetrics(t *testing.T) {
	reg := metrics.New()
	sp := NewSplitter("w", 64, 1, 1024)
	b := AdaptiveBackoff()
	gc := &fakeGOGC{percent: 100}
	c := NewController(ControllerConfig{Metrics: reg, TargetLeafNS: 100_000, GCRaiseCycles: 2},
		Levers{Splitters: []*Splitter{sp}, Backoff: b, GOGC: gc})
	st := &obsStream{}
	c.Step(st.next(nil))
	sp.Observe(64, 1_000_000)
	c.Step(st.next(func(o *Observation) {
		o.StealAttempts += 100
		o.Steals += 1
		o.GCCycles += 2
	}))

	tr := c.Trace().Decisions()
	if len(tr) != 3 {
		t.Fatalf("trace has %d decisions, want 3 (chunk, backoff, gogc): %v", len(tr), tr)
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	prom := buf.String()
	for _, want := range []string{
		`autotune_decisions_total{lever="chunk",action="split"} 1`,
		`autotune_grain{splitter="w"} 32`,
		`autotune_backoff_level 1`,
		`autotune_gogc 200`,
		`autotune_parking_enabled 1`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("metrics output missing %q\n%s", want, prom)
		}
	}
}

func TestTraceBound(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Add(Decision{TickNS: int64(i)})
	}
	ds := tr.Decisions()
	if len(ds) != 4 {
		t.Fatalf("trace kept %d, want 4", len(ds))
	}
	if ds[0].TickNS != 6 || ds[3].TickNS != 9 {
		t.Fatalf("trace kept %v, want ticks 6..9", ds)
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
}

func TestControllerStartStop(t *testing.T) {
	sp := NewSplitter("w", 64, 1, 1024)
	c := NewController(ControllerConfig{Tick: time.Millisecond, TargetLeafNS: 100_000},
		Levers{Splitters: []*Splitter{sp}})
	st := &obsStream{}
	done := make(chan struct{})
	samples := 0
	c.Start(func() Observation {
		samples++
		if samples == 2 {
			sp.Observe(64, 1_000_000)
		}
		if samples == 4 {
			close(done)
		}
		return st.next(nil)
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("tick loop never sampled")
	}
	c.Stop()
	c.Stop() // idempotent
	if sp.Grain() == 64 {
		t.Fatal("live loop never split the slow splitter")
	}
}

func TestControllerStopWithoutStart(t *testing.T) {
	c := NewController(ControllerConfig{}, Levers{})
	c.Stop() // must not hang
}
