package graph

import (
	"errors"
	"testing"
)

func TestPoisonTransitions(t *testing.T) {
	boom := errors.New("claimant died")

	th := NewThunk(func(Context) Value { return 1 })
	if !th.TryClaim() {
		t.Fatal("claim")
	}
	if !th.Poison(boom) {
		t.Fatal("Poison of a black-holed thunk should succeed")
	}
	if th.State() != Poisoned {
		t.Fatalf("state = %v, want poisoned", th.State())
	}
	if th.Poison(boom) {
		t.Error("second Poison should be a no-op")
	}
	pe := th.PoisonedErr()
	if pe == nil || !errors.Is(pe, boom) {
		t.Fatalf("PoisonedErr = %v, want wrapping %v", pe, boom)
	}

	// Poison loses to a completed value.
	done := NewValue(7)
	if done.Poison(boom) {
		t.Error("Poison of an evaluated thunk should fail")
	}
	if done.Value() != 7 {
		t.Error("evaluated value must survive a Poison attempt")
	}
	if done.PoisonedErr() != nil {
		t.Error("PoisonedErr of evaluated thunk should be nil")
	}
}

func TestPublishNeverResurrectsPoison(t *testing.T) {
	boom := errors.New("x")
	th := NewThunk(func(Context) Value { return 1 })
	th.TryClaim()
	th.Poison(boom)
	if th.publish(99) {
		t.Fatal("publish after Poison must fail")
	}
	if th.State() != Poisoned {
		t.Fatalf("state = %v after publish attempt, want poisoned", th.State())
	}
}

func TestForcePanicsOnPoisonedThunk(t *testing.T) {
	boom := errors.New("worker 3 panicked")
	th := NewThunk(func(Context) Value { return 1 })
	th.TryClaim()
	th.Poison(boom)

	ctx := &mockCtx{}
	defer func() {
		r := recover()
		pe, ok := r.(*PoisonError)
		if !ok {
			t.Fatalf("Force of poisoned thunk panicked with %v, want *PoisonError", r)
		}
		if !errors.Is(pe, boom) {
			t.Fatalf("PoisonError should wrap the claimant's failure, got %v", pe)
		}
	}()
	Force(ctx, th)
	t.Fatal("Force of poisoned thunk should panic")
}

func TestResolveOfPoisonedPanics(t *testing.T) {
	th := NewPlaceholder()
	th.Poison(errors.New("sender died"))
	defer func() {
		if recover() == nil {
			t.Fatal("Resolve of poisoned thunk should panic")
		}
	}()
	th.Resolve(1)
}
