// Package graph implements the heap-graph reduction core shared by both
// runtimes: thunks (suspended computations), sharing, forcing to weak
// head normal form, deep forcing to normal form, and the black-holing
// machinery whose lazy/eager variants the paper analyses in §IV-A.3.
//
// A Thunk is a heap node that is either unevaluated, under evaluation
// ("black hole"), or evaluated. Forcing an evaluated thunk returns its
// cached value; forcing a black hole blocks the forcing thread until the
// evaluating thread updates the node; forcing an unevaluated thunk runs
// its computation.
//
// The difference between the two black-holing policies is *when* an
// unevaluated thunk is marked as under-evaluation:
//
//   - eager: immediately on entry (one extra write per thunk entry);
//   - lazy (GHC's default): only when the evaluating thread is context-
//     switched, leaving a time window during which other threads entering
//     the same thunk duplicate its evaluation — harmless semantically
//     (referential transparency) but wasted parallel work, which is
//     exactly what the paper's shortest-path measurements expose.
package graph

// Value is any heap value. Workloads use ints, floats, slices and small
// structs; thunks may appear inside []*Thunk and []Value for lazy
// structures.
type Value any

// EvalState is a thunk's lifecycle state.
type EvalState int8

const (
	// Unevaluated: never entered, or entered but not yet black-holed
	// (lazy policy window).
	Unevaluated EvalState = iota
	// Blackholed: marked as under evaluation; forcing threads must block.
	Blackholed
	// Evaluated: value available.
	Evaluated
)

func (s EvalState) String() string {
	switch s {
	case Unevaluated:
		return "unevaluated"
	case Blackholed:
		return "blackholed"
	case Evaluated:
		return "evaluated"
	}
	return "?"
}

// Context is the view a forcing thread has of its runtime system. Both
// the GpH capability scheduler and Eden PE threads implement it.
type Context interface {
	// Burn consumes virtual mutator time.
	Burn(ns int64)
	// Alloc accounts bytes of heap allocation (and performs heap checks,
	// which may trigger GC or a context switch in virtual time).
	Alloc(bytes int64)
	// EagerBlackholing reports the black-holing policy in force.
	EagerBlackholing() bool
	// BlackholeWriteCost is the virtual cost of the eager claim write.
	BlackholeWriteCost() int64
	// EnteredThunk records that the current thread started evaluating t
	// without black-holing it (lazy policy); the runtime marks such
	// thunks at the next context switch.
	EnteredThunk(t *Thunk)
	// LeftThunk records that the current thread finished evaluating t.
	LeftThunk(t *Thunk)
	// BlockOnThunk suspends the current thread until t is Evaluated.
	BlockOnThunk(t *Thunk)
	// WakeThunkWaiters wakes all threads blocked on t (t just became
	// Evaluated). The waiters list is stored on the thunk; the runtime
	// interprets the entries it put there.
	WakeThunkWaiters(t *Thunk)
	// NoteDuplicateEntry records that the current thread entered a thunk
	// that another thread is already evaluating (lazy-black-holing
	// duplication), for statistics.
	NoteDuplicateEntry(t *Thunk)
}

// Thunk is a shared heap node holding either a suspended computation or
// its value.
type Thunk struct {
	state   EvalState
	compute func(Context) Value
	val     Value

	// evaluators counts threads currently inside compute (can exceed 1
	// only under lazy black-holing).
	evaluators int
	// Waiters holds runtime-owned records of threads blocked on this
	// thunk while it is black-holed. The runtime appends in BlockOnThunk
	// and drains in WakeThunkWaiters.
	Waiters []any
}

// NewThunk returns an unevaluated thunk for fn.
func NewThunk(fn func(Context) Value) *Thunk {
	return &Thunk{state: Unevaluated, compute: fn}
}

// NewValue returns an already-evaluated thunk holding v.
func NewValue(v Value) *Thunk {
	return &Thunk{state: Evaluated, val: v}
}

// NewPlaceholder returns a black-holed thunk with no computation: a heap
// placeholder that will be filled in by an arriving message (Eden's
// channel synchronisation, §III-B). Threads forcing it block until
// Resolve is called.
func NewPlaceholder() *Thunk {
	return &Thunk{state: Blackholed}
}

// CloneForExport returns a fresh unevaluated thunk sharing this thunk's
// computation — the packed copy of a spark shipped to another heap
// (GUM's SCHEDULE). The original is typically turned into a FetchMe by
// black-holing it, so local touchers block and fetch the remote value.
// It panics if the thunk is already claimed or evaluated.
func (t *Thunk) CloneForExport() *Thunk {
	if t.state != Unevaluated {
		panic("graph: CloneForExport of " + t.state.String() + " thunk")
	}
	return &Thunk{state: Unevaluated, compute: t.compute}
}

// Resolve fills a placeholder (or any not-yet-evaluated thunk) with v
// and returns the list of waiter records to be woken by the caller.
// It panics if the thunk is already evaluated.
func (t *Thunk) Resolve(v Value) []any {
	if t.state == Evaluated {
		panic("graph: Resolve of evaluated thunk")
	}
	t.val = v
	t.state = Evaluated
	t.compute = nil
	ws := t.Waiters
	t.Waiters = nil
	return ws
}

// State returns the thunk's current state.
func (t *Thunk) State() EvalState { return t.state }

// Evaluated reports whether the thunk holds a value.
func (t *Thunk) IsEvaluated() bool { return t.state == Evaluated }

// Value returns the thunk's value; it panics if the thunk is not
// evaluated (use Force).
func (t *Thunk) Value() Value {
	if t.state != Evaluated {
		panic("graph: Value of unevaluated thunk")
	}
	return t.val
}

// Evaluators returns the number of threads currently evaluating the
// thunk (>1 indicates duplicate evaluation in progress).
func (t *Thunk) Evaluators() int { return t.evaluators }

// MarkBlackhole transitions an unevaluated thunk to Blackholed; the
// runtime calls this at context-switch time for the lazy policy. It is a
// no-op for thunks already black-holed or evaluated.
func (t *Thunk) MarkBlackhole() {
	if t.state == Unevaluated {
		t.state = Blackholed
	}
}

// Force evaluates t to weak head normal form in the given context and
// returns its value. It implements the sharing + black-holing semantics
// described in the package comment.
func Force(ctx Context, t *Thunk) Value {
	for {
		switch t.state {
		case Evaluated:
			return t.val

		case Blackholed:
			ctx.BlockOnThunk(t)
			// Loop: on wakeup the thunk is normally Evaluated.

		case Unevaluated:
			if ctx.EagerBlackholing() {
				t.state = Blackholed
				ctx.Burn(ctx.BlackholeWriteCost())
			} else {
				if t.evaluators > 0 {
					ctx.NoteDuplicateEntry(t)
				}
				ctx.EnteredThunk(t)
			}
			t.evaluators++
			v := t.compute(ctx)
			t.evaluators--
			ctx.LeftThunk(t)
			if t.state != Evaluated {
				// First evaluator to complete updates the node. (Under
				// lazy black-holing a duplicate evaluator may arrive here
				// second and find the value already written.)
				t.val = v
				t.state = Evaluated
				t.compute = nil
				ctx.WakeThunkWaiters(t)
			}
			return t.val
		}
	}
}

// ForceDeep forces v to normal form: thunks are forced and their values
// recursively deep-forced; []*Thunk and []Value are traversed
// element-by-element. Flat data (numbers, strings, numeric slices,
// structs without thunks) is already in normal form. Eden uses this for
// its reduce-to-normal-form-before-send semantics; GpH strategies use it
// for rnf.
func ForceDeep(ctx Context, v Value) Value {
	switch x := v.(type) {
	case *Thunk:
		return ForceDeep(ctx, Force(ctx, x))
	case []*Thunk:
		out := make([]Value, len(x))
		for i, t := range x {
			out[i] = ForceDeep(ctx, t)
		}
		return out
	case []Value:
		for i := range x {
			x[i] = ForceDeep(ctx, x[i])
		}
		return x
	default:
		return v
	}
}
