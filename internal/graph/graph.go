// Package graph implements the heap-graph reduction core shared by both
// runtimes: thunks (suspended computations), sharing, forcing to weak
// head normal form, deep forcing to normal form, and the black-holing
// machinery whose lazy/eager variants the paper analyses in §IV-A.3.
//
// A Thunk is a heap node that is either unevaluated, under evaluation
// ("black hole"), or evaluated. Forcing an evaluated thunk returns its
// cached value; forcing a black hole blocks the forcing thread until the
// evaluating thread updates the node; forcing an unevaluated thunk runs
// its computation.
//
// The difference between the two black-holing policies is *when* an
// unevaluated thunk is marked as under-evaluation:
//
//   - eager: immediately on entry (one extra write per thunk entry);
//   - lazy (GHC's default): only when the evaluating thread is context-
//     switched, leaving a time window during which other threads entering
//     the same thunk duplicate its evaluation — harmless semantically
//     (referential transparency) but wasted parallel work, which is
//     exactly what the paper's shortest-path measurements expose.
//
// Thunk state transitions use real atomics: the eager claim is a CAS and
// the update is published behind an atomic state store. Under the
// deterministic simulation only one task runs at a time, so the atomics
// change nothing; under the native work-stealing runtime
// (internal/native) the same Force is executed by truly concurrent
// goroutines, and the atomics are what make duplicate-entry counts
// measurable on real hardware without ever duplicating a *result*.
package graph

import "sync/atomic"

// Value is any heap value. Workloads use ints, floats, slices and small
// structs; thunks may appear inside []*Thunk and []Value for lazy
// structures.
type Value any

// EvalState is a thunk's lifecycle state.
type EvalState int8

const (
	// Unevaluated: never entered, or entered but not yet black-holed
	// (lazy policy window).
	Unevaluated EvalState = iota
	// Blackholed: marked as under evaluation; forcing threads must block.
	Blackholed
	// Evaluated: value available.
	Evaluated
	// updatingState is a transient internal state: an evaluator won the
	// update race and is writing the value. Externally reported as
	// Blackholed; the window is two plain stores wide.
	updatingState
	// Poisoned: the thread that claimed this thunk died before updating
	// it. The state is terminal — forcing a poisoned thunk panics with a
	// *PoisonError instead of blocking forever on a black hole that will
	// never be filled (the recovery half of the §IV-A black-holing
	// hazard under real faults).
	Poisoned
)

func (s EvalState) String() string {
	switch s {
	case Unevaluated:
		return "unevaluated"
	case Blackholed:
		return "blackholed"
	case Evaluated:
		return "evaluated"
	case Poisoned:
		return "poisoned"
	}
	return "?"
}

// PoisonError is panicked by Force when it reaches a poisoned thunk:
// the thread that had claimed the thunk died, so the value will never
// exist. Err is the failure that killed the claimant.
type PoisonError struct {
	Err error
}

func (e *PoisonError) Error() string {
	return "graph: forced a poisoned thunk (claimant died: " + e.Err.Error() + ")"
}

func (e *PoisonError) Unwrap() error { return e.Err }

// Context is the view a forcing thread has of its runtime system. The
// GpH capability scheduler, Eden PE threads and the native work-stealing
// workers all implement it.
type Context interface {
	// Burn consumes virtual mutator time.
	Burn(ns int64)
	// Alloc accounts bytes of heap allocation (and performs heap checks,
	// which may trigger GC or a context switch in virtual time).
	Alloc(bytes int64)
	// EagerBlackholing reports the black-holing policy in force.
	EagerBlackholing() bool
	// BlackholeWriteCost is the virtual cost of the eager claim write.
	BlackholeWriteCost() int64
	// EnteredThunk records that the current thread started evaluating t
	// without black-holing it (lazy policy); the runtime marks such
	// thunks at the next context switch.
	EnteredThunk(t *Thunk)
	// LeftThunk records that the current thread finished evaluating t.
	LeftThunk(t *Thunk)
	// BlockOnThunk suspends the current thread until t is Evaluated.
	BlockOnThunk(t *Thunk)
	// WakeThunkWaiters wakes all threads blocked on t (t just became
	// Evaluated). The waiters list is stored on the thunk; the runtime
	// interprets the entries it put there.
	WakeThunkWaiters(t *Thunk)
	// NoteDuplicateEntry records that the current thread entered a thunk
	// that another thread is already evaluating (lazy-black-holing
	// duplication), for statistics.
	NoteDuplicateEntry(t *Thunk)
}

// duplicateResultNoter is an optional Context extension: runtimes that
// implement it are told when an evaluator computed a value but lost the
// update race (lazy black-holing duplicated the work and the duplicate
// result is discarded).
type duplicateResultNoter interface {
	NoteDuplicateResult(t *Thunk)
}

// claimNoter is an optional Context extension: runtimes that implement
// it are told when the current thread eagerly claims a thunk and when
// that claim is released by the update. The native runtime uses the
// open-claim count to decide whether a blocked worker may safely run
// other sparks while waiting (leapfrogging): with an incomplete claim
// paused on the stack, a helped spark could depend on it and deadlock.
type claimNoter interface {
	NoteClaimed(t *Thunk)
	NoteReleased(t *Thunk)
}

// AdaptFn is the shared half of a thunk's closure-free computation
// representation: a package-level trampoline that interprets the
// thunk's payload. Building a thunk from (adapt, payload) instead of a
// `func(Context) Value` closure avoids allocating a wrapper closure per
// thunk — the trampoline is shared by every thunk of its call site, and
// payloads that are themselves pointer-shaped (func values, pointers)
// box into the `any` without allocating.
type AdaptFn func(Context, any) Value

// Thunk is a shared heap node holding either a suspended computation or
// its value.
type Thunk struct {
	state   atomic.Int32 // an EvalState
	compute func(Context) Value
	// adapt+payload is the alternative, closure-free computation
	// representation (see AdaptFn); compute and adapt are mutually
	// exclusive.
	adapt   AdaptFn
	payload any
	val     Value

	// evaluators counts threads currently inside compute (can exceed 1
	// only under lazy black-holing).
	evaluators atomic.Int32
	// Waiters holds runtime-owned records of threads blocked on this
	// thunk while it is black-holed. The runtime appends in BlockOnThunk
	// and drains in WakeThunkWaiters. (Simulation-only: the native
	// runtime polls the atomic state instead, so a lost wakeup is
	// impossible by construction.)
	Waiters []any
}

// NewThunk returns an unevaluated thunk for fn.
func NewThunk(fn func(Context) Value) *Thunk {
	return &Thunk{compute: fn} // zero state == Unevaluated
}

// NewThunkAdapted returns an unevaluated thunk in the closure-free
// (adapt, payload) representation — see AdaptFn.
func NewThunkAdapted(adapt AdaptFn, payload any) *Thunk {
	return &Thunk{adapt: adapt, payload: payload}
}

// NewValue returns an already-evaluated thunk holding v.
func NewValue(v Value) *Thunk {
	t := &Thunk{val: v}
	t.state.Store(int32(Evaluated))
	return t
}

// NewPlaceholder returns a black-holed thunk with no computation: a heap
// placeholder that will be filled in by an arriving message (Eden's
// channel synchronisation, §III-B). Threads forcing it block until
// Resolve is called.
func NewPlaceholder() *Thunk {
	t := &Thunk{}
	t.state.Store(int32(Blackholed))
	return t
}

// CloneForExport returns a fresh unevaluated thunk sharing this thunk's
// computation — the packed copy of a spark shipped to another heap
// (GUM's SCHEDULE). The original is typically turned into a FetchMe by
// black-holing it, so local touchers block and fetch the remote value.
// It panics if the thunk is already claimed or evaluated.
func (t *Thunk) CloneForExport() *Thunk {
	if t.State() != Unevaluated {
		panic("graph: CloneForExport of " + t.State().String() + " thunk")
	}
	return &Thunk{compute: t.compute, adapt: t.adapt, payload: t.payload}
}

// Resolve fills a placeholder (or any not-yet-evaluated thunk) with v
// and returns the list of waiter records to be woken by the caller.
// It panics if the thunk is already evaluated or poisoned.
// Simulation-only (message handlers resolving channel placeholders);
// native evaluators publish through Force.
func (t *Thunk) Resolve(v Value) []any {
	if s := t.State(); s == Evaluated || s == Poisoned {
		panic("graph: Resolve of " + s.String() + " thunk")
	}
	t.val = v
	t.compute = nil
	t.adapt, t.payload = nil, nil
	t.state.Store(int32(Evaluated))
	ws := t.Waiters
	t.Waiters = nil
	return ws
}

// State returns the thunk's current state.
func (t *Thunk) State() EvalState {
	s := EvalState(t.state.Load())
	if s == updatingState {
		// An evaluator is mid-update; externally that is still "under
		// evaluation".
		return Blackholed
	}
	return s
}

// IsEvaluated reports whether the thunk holds a value.
func (t *Thunk) IsEvaluated() bool { return t.State() == Evaluated }

// Value returns the thunk's value; it panics if the thunk is not
// evaluated (use Force).
func (t *Thunk) Value() Value {
	if t.State() != Evaluated {
		panic("graph: Value of unevaluated thunk")
	}
	return t.val
}

// Evaluators returns the number of threads currently evaluating the
// thunk (>1 indicates duplicate evaluation in progress).
func (t *Thunk) Evaluators() int { return int(t.evaluators.Load()) }

// MarkBlackhole transitions an unevaluated thunk to Blackholed; the
// runtime calls this at context-switch time for the lazy policy. It is a
// no-op for thunks already black-holed or evaluated.
func (t *Thunk) MarkBlackhole() {
	t.state.CompareAndSwap(int32(Unevaluated), int32(Blackholed))
}

// TryClaim atomically claims an unevaluated thunk for evaluation — the
// eager black-holing write. Exactly one concurrent caller wins; the
// losers observe Blackholed (or Evaluated) and must block or retry.
func (t *Thunk) TryClaim() bool {
	return t.state.CompareAndSwap(int32(Unevaluated), int32(Blackholed))
}

// Poison marks a thunk whose claimant died: the value will never
// arrive, so any thread forcing (or blocked on) the thunk must fail
// instead of waiting. err is recorded and carried by the *PoisonError
// that Force panics with. Poisoning is terminal and loses to a
// completed update: an already-Evaluated thunk is never poisoned
// (its value is valid — the claimant died after publishing). Returns
// whether this call transitioned the thunk to Poisoned.
func (t *Thunk) Poison(err error) bool {
	for {
		s := t.state.Load()
		switch EvalState(s) {
		case Evaluated, Poisoned:
			return false
		case updatingState:
			// An update is mid-flight; it wins (value is real).
			continue
		default: // Unevaluated or Blackholed
			if t.state.CompareAndSwap(s, int32(updatingState)) {
				t.val = &PoisonError{Err: err}
				t.state.Store(int32(Poisoned))
				return true
			}
		}
	}
}

// PoisonedErr returns the *PoisonError of a poisoned thunk, or nil.
func (t *Thunk) PoisonedErr() *PoisonError {
	if t.State() != Poisoned {
		return nil
	}
	pe, _ := t.val.(*PoisonError)
	return pe
}

// enter runs the thunk's computation, whichever representation it was
// built in. It deliberately does not clear the computation fields on
// completion: under lazy black-holing a duplicate evaluator may still
// be reading them, and clearing would race with it (publish clears
// nothing for the same reason).
func (t *Thunk) enter(ctx Context) Value {
	if t.adapt != nil {
		return t.adapt(ctx, t.payload)
	}
	return t.compute(ctx)
}

// publish installs v as the thunk's value unless another evaluator
// already updated it (possible only under lazy black-holing, where
// evaluation can be duplicated). It returns once the thunk is
// Evaluated, reporting whether this caller's value won.
func (t *Thunk) publish(v Value) bool {
	for {
		s := t.state.Load()
		switch EvalState(s) {
		case Evaluated:
			return false
		case Poisoned:
			// Never resurrect a poisoned thunk: its waiters have already
			// been routed to the failure path, and a late value appearing
			// after them would split the sharing guarantee.
			return false
		case updatingState:
			// Another evaluator is writing its value; the window is two
			// stores wide, so spin.
			continue
		default: // Unevaluated or Blackholed
			if t.state.CompareAndSwap(s, int32(updatingState)) {
				t.val = v
				t.state.Store(int32(Evaluated))
				return true
			}
		}
	}
}

// Force evaluates t to weak head normal form in the given context and
// returns its value. It implements the sharing + black-holing semantics
// described in the package comment, for both the simulated and the
// native runtime: claims and updates go through atomic state
// transitions, and the context supplies the policy (eager vs. lazy) and
// the blocking behaviour (virtual-time suspension vs. spin-and-steal).
func Force(ctx Context, t *Thunk) Value {
	for {
		switch t.State() {
		case Evaluated:
			return t.val

		case Poisoned:
			// The claimant died before updating; blocking would hang
			// forever, so propagate its failure instead.
			panic(t.val.(*PoisonError))

		case Blackholed:
			ctx.BlockOnThunk(t)
			// Loop: on wakeup the thunk is normally Evaluated.

		case Unevaluated:
			eager := ctx.EagerBlackholing()
			cn, hasCN := ctx.(claimNoter)
			if eager {
				if !t.TryClaim() {
					// Lost the claim race to a concurrent evaluator
					// (native runtime only); re-dispatch on the new state.
					continue
				}
				ctx.Burn(ctx.BlackholeWriteCost())
				if hasCN {
					cn.NoteClaimed(t)
				}
			} else {
				ctx.EnteredThunk(t)
			}
			if t.evaluators.Add(1) > 1 && !eager {
				ctx.NoteDuplicateEntry(t)
			}
			v := t.enter(ctx)
			t.evaluators.Add(-1)
			ctx.LeftThunk(t)
			if eager && hasCN {
				cn.NoteReleased(t)
			}
			if t.publish(v) {
				// First evaluator to complete updates the node. (Under
				// lazy black-holing a duplicate evaluator may arrive here
				// second; its value is discarded — referential
				// transparency guarantees it was equal anyway.)
				ctx.WakeThunkWaiters(t)
			} else if t.State() == Poisoned {
				// The thunk was poisoned while we were computing (a
				// supervisor declared our claim orphaned); the computed
				// value must not escape as if the claim were healthy.
				panic(t.val.(*PoisonError))
			} else if d, ok := ctx.(duplicateResultNoter); ok {
				d.NoteDuplicateResult(t)
			}
			return t.val
		}
	}
}

// ForceDeep forces v to normal form: thunks are forced and their values
// recursively deep-forced; []*Thunk and []Value are traversed
// element-by-element. Flat data (numbers, strings, numeric slices,
// structs without thunks) is already in normal form. Eden uses this for
// its reduce-to-normal-form-before-send semantics; GpH strategies use it
// for rnf.
func ForceDeep(ctx Context, v Value) Value {
	switch x := v.(type) {
	case *Thunk:
		return ForceDeep(ctx, Force(ctx, x))
	case []*Thunk:
		out := make([]Value, len(x))
		for i, t := range x {
			out[i] = ForceDeep(ctx, t)
		}
		return out
	case []Value:
		for i := range x {
			x[i] = ForceDeep(ctx, x[i])
		}
		return x
	default:
		return v
	}
}
