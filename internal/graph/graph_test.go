package graph

import (
	"testing"
)

// mockCtx is a minimal single-threaded Context for unit-testing thunk
// semantics without a runtime system.
type mockCtx struct {
	eager      bool
	burned     int64
	alloced    int64
	entered    []*Thunk
	left       []*Thunk
	dups       int
	wakes      int
	blockPanic bool
}

func (m *mockCtx) Burn(ns int64)             { m.burned += ns }
func (m *mockCtx) Alloc(b int64)             { m.alloced += b }
func (m *mockCtx) EagerBlackholing() bool    { return m.eager }
func (m *mockCtx) BlackholeWriteCost() int64 { return 35 }
func (m *mockCtx) EnteredThunk(t *Thunk)     { m.entered = append(m.entered, t) }
func (m *mockCtx) LeftThunk(t *Thunk)        { m.left = append(m.left, t) }
func (m *mockCtx) BlockOnThunk(t *Thunk) {
	if m.blockPanic {
		panic("unexpected block")
	}
	// Single-threaded mock: a block would deadlock.
	panic("mockCtx: BlockOnThunk called")
}
func (m *mockCtx) WakeThunkWaiters(t *Thunk)   { m.wakes++; t.Waiters = nil }
func (m *mockCtx) NoteDuplicateEntry(t *Thunk) { m.dups++ }

func TestForceCachesValue(t *testing.T) {
	ctx := &mockCtx{}
	calls := 0
	th := NewThunk(func(c Context) Value {
		calls++
		return 42
	})
	if v := Force(ctx, th); v != 42 {
		t.Fatalf("Force = %v, want 42", v)
	}
	if v := Force(ctx, th); v != 42 {
		t.Fatalf("second Force = %v, want 42", v)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1 (sharing)", calls)
	}
	if th.State() != Evaluated {
		t.Fatalf("state = %v, want evaluated", th.State())
	}
}

func TestNewValueIsEvaluated(t *testing.T) {
	th := NewValue("hello")
	if !th.IsEvaluated() || th.Value() != "hello" {
		t.Fatal("NewValue not pre-evaluated")
	}
	ctx := &mockCtx{}
	if v := Force(ctx, th); v != "hello" {
		t.Fatalf("Force = %v", v)
	}
	if ctx.burned != 0 {
		t.Fatal("forcing a value should cost nothing")
	}
}

func TestEagerBlackholingMarksOnEntry(t *testing.T) {
	ctx := &mockCtx{eager: true}
	var stateInside EvalState
	th := NewThunk(nil)
	th.compute = func(c Context) Value {
		stateInside = th.State()
		return 1
	}
	Force(ctx, th)
	if stateInside != Blackholed {
		t.Fatalf("state during eval = %v, want blackholed", stateInside)
	}
	if ctx.burned != 35 {
		t.Fatalf("burned = %d, want 35 (one blackhole write)", ctx.burned)
	}
	if len(ctx.entered) != 0 {
		t.Fatal("eager policy must not register lazy-marking entries")
	}
}

func TestLazyBlackholingLeavesUnevaluated(t *testing.T) {
	ctx := &mockCtx{eager: false}
	var stateInside EvalState
	th := NewThunk(nil)
	th.compute = func(c Context) Value {
		stateInside = th.State()
		return 1
	}
	Force(ctx, th)
	if stateInside != Unevaluated {
		t.Fatalf("state during eval = %v, want unevaluated (lazy window)", stateInside)
	}
	if len(ctx.entered) != 1 || ctx.entered[0] != th {
		t.Fatal("lazy policy must register the entered thunk for later marking")
	}
	if ctx.burned != 0 {
		t.Fatal("lazy entry should not pay the blackhole write")
	}
}

func TestMarkBlackhole(t *testing.T) {
	th := NewThunk(func(c Context) Value { return 1 })
	th.MarkBlackhole()
	if th.State() != Blackholed {
		t.Fatal("MarkBlackhole did not mark")
	}
	// Marking an evaluated thunk is a no-op.
	tv := NewValue(3)
	tv.MarkBlackhole()
	if tv.State() != Evaluated {
		t.Fatal("MarkBlackhole clobbered an evaluated thunk")
	}
}

func TestDuplicateEvaluationBothComplete(t *testing.T) {
	// Simulate two interleaved evaluators under lazy black-holing by
	// re-entering Force from inside compute (models thread B entering the
	// thunk during A's evaluation window).
	ctx := &mockCtx{eager: false}
	calls := 0
	var th *Thunk
	th = NewThunk(func(c Context) Value {
		calls++
		if calls == 1 {
			// "Thread B" duplicates the evaluation while A is inside.
			if v := Force(c, th); v != 7 {
				t.Fatalf("inner Force = %v, want 7", v)
			}
		}
		return 7
	})
	if v := Force(ctx, th); v != 7 {
		t.Fatalf("outer Force = %v", v)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2 (duplicate evaluation)", calls)
	}
	if ctx.dups != 1 {
		t.Fatalf("dups = %d, want 1", ctx.dups)
	}
	// Only the first completion should have updated the node and woken
	// waiters.
	if ctx.wakes != 1 {
		t.Fatalf("wakes = %d, want 1", ctx.wakes)
	}
	if th.State() != Evaluated || th.Value() != 7 {
		t.Fatal("thunk not updated correctly")
	}
}

// blockingCtx resolves the thunk when BlockOnThunk is called, modelling
// the evaluating thread finishing while we are suspended.
type blockingCtx struct {
	mockCtx
	blocks int
}

func (b *blockingCtx) BlockOnThunk(t *Thunk) {
	b.blocks++
	t.Resolve(9)
}

func TestForceOnBlackholeBlocksThenReturnsValue(t *testing.T) {
	ctx := &blockingCtx{}
	th := NewThunk(func(c Context) Value { return -1 })
	th.MarkBlackhole() // another thread is evaluating it
	if v := Force(ctx, th); v != 9 {
		t.Fatalf("Force = %v, want 9 (value written by evaluator)", v)
	}
	if ctx.blocks != 1 {
		t.Fatalf("blocks = %d, want 1", ctx.blocks)
	}
	if ctx.dups != 0 {
		t.Fatalf("dups = %d, want 0: blocking is not duplication", ctx.dups)
	}
}

func TestForceDeepNestedThunks(t *testing.T) {
	ctx := &mockCtx{}
	inner := NewThunk(func(c Context) Value { return 5 })
	outer := NewThunk(func(c Context) Value { return inner })
	v := ForceDeep(ctx, outer)
	if v != 5 {
		t.Fatalf("ForceDeep = %v, want 5", v)
	}
}

func TestForceDeepThunkSlice(t *testing.T) {
	ctx := &mockCtx{}
	ts := []*Thunk{
		NewThunk(func(c Context) Value { return 1 }),
		NewValue(2),
		NewThunk(func(c Context) Value { return NewValue(3) }),
	}
	v := ForceDeep(ctx, ts)
	vs, ok := v.([]Value)
	if !ok || len(vs) != 3 {
		t.Fatalf("ForceDeep = %#v", v)
	}
	for i, want := range []int{1, 2, 3} {
		if vs[i] != want {
			t.Fatalf("vs[%d] = %v, want %d", i, vs[i], want)
		}
	}
}

func TestForceDeepFlatDataUnchanged(t *testing.T) {
	ctx := &mockCtx{}
	data := []float64{1, 2, 3}
	v := ForceDeep(ctx, data)
	if got, ok := v.([]float64); !ok || &got[0] != &data[0] {
		t.Fatal("flat data should pass through unchanged")
	}
}

func TestValuePanicsOnUnevaluated(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	th := NewThunk(func(c Context) Value { return 1 })
	_ = th.Value()
}

func TestEvaluatorsCount(t *testing.T) {
	ctx := &mockCtx{}
	var th *Thunk
	var during int
	th = NewThunk(func(c Context) Value {
		during = th.Evaluators()
		return 0
	})
	Force(ctx, th)
	if during != 1 {
		t.Fatalf("evaluators during eval = %d, want 1", during)
	}
	if th.Evaluators() != 0 {
		t.Fatalf("evaluators after eval = %d, want 0", th.Evaluators())
	}
}

func TestPlaceholderAndResolve(t *testing.T) {
	ph := NewPlaceholder()
	if ph.State() != Blackholed {
		t.Fatal("placeholder must start black-holed")
	}
	ph.Waiters = append(ph.Waiters, "waiter-record")
	ws := ph.Resolve("hello")
	if len(ws) != 1 || ws[0] != "waiter-record" {
		t.Fatalf("waiters = %v", ws)
	}
	if ph.Waiters != nil {
		t.Fatal("Resolve must clear the waiter list")
	}
	if !ph.IsEvaluated() || ph.Value() != "hello" {
		t.Fatal("placeholder not resolved")
	}
}

func TestResolvePanicsOnEvaluated(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewValue(1).Resolve(2)
}

func TestCloneForExport(t *testing.T) {
	calls := 0
	orig := NewThunk(func(c Context) Value { calls++; return 5 })
	clone := orig.CloneForExport()
	orig.MarkBlackhole() // the home copy becomes a FetchMe

	ctx := &mockCtx{}
	if v := Force(ctx, clone); v != 5 {
		t.Fatalf("clone Force = %v", v)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times", calls)
	}
	if orig.State() != Blackholed {
		t.Fatal("evaluating the clone must not touch the home copy")
	}
}

func TestCloneForExportPanicsOnClaimed(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	th := NewThunk(func(c Context) Value { return 1 })
	th.MarkBlackhole()
	th.CloneForExport()
}

func TestEvalStateStrings(t *testing.T) {
	if Unevaluated.String() != "unevaluated" ||
		Blackholed.String() != "blackholed" ||
		Evaluated.String() != "evaluated" {
		t.Fatal("bad state strings")
	}
	if EvalState(9).String() != "?" {
		t.Fatal("unknown state should render ?")
	}
}

func TestForceDeepValueSlice(t *testing.T) {
	ctx := &mockCtx{}
	vs := []Value{NewThunk(func(c Context) Value { return 1 }), 2}
	out := ForceDeep(ctx, vs).([]Value)
	if out[0] != 1 || out[1] != 2 {
		t.Fatalf("out = %v", out)
	}
}
