package graph

// Arena is an owner-local bump allocator of Thunk nodes: the per-worker
// allocation-area analogue of the paper's §IV-A.1 experiment. Each GpH
// capability in GHC 6.10 got a bigger private nursery so thunk
// allocation stopped triggering stop-the-world collections; here each
// native worker gets an Arena so thunk allocation stops going through
// Go's global allocator one object at a time. Thunks are handed out by
// index from a chunk ([]Thunk), so the allocator's cost is amortised to
// one make per ChunkThunks thunks and the GC sees one large object
// instead of thousands of small ones.
//
// An Arena is intentionally NOT safe for concurrent use: exactly one
// goroutine (the owning worker) allocates from it. The thunks it hands
// out are ordinary shared heap nodes — any worker may claim, force and
// update them; only the *allocation* is owner-local. Chunks are kept
// alive by the arena until Reset, so a handed-out thunk can never be
// collected under a still-running program.
type Arena struct {
	chunk []Thunk
	pos   int

	// chunkThunks is the chunk capacity in thunks.
	chunkThunks int

	// retired keeps completed chunks reachable until Reset. Without it
	// the GC could not free any chunk early anyway (live thunks pin it),
	// but holding them makes the lifetime rule explicit and gives Stats
	// an exact chunk count.
	retired [][]Thunk
}

// DefaultArenaChunk is the default chunk capacity, in thunks. At ~96
// bytes per Thunk a chunk is ~24 KB — comfortably L2-resident, and two
// orders of magnitude fewer allocator calls than one make per thunk.
const DefaultArenaChunk = 256

// NewArena returns an arena handing out chunks of chunkThunks thunks
// (<= 0 selects DefaultArenaChunk).
func NewArena(chunkThunks int) *Arena {
	if chunkThunks <= 0 {
		chunkThunks = DefaultArenaChunk
	}
	return &Arena{chunkThunks: chunkThunks}
}

// alloc hands out the next zeroed Thunk slot, growing by one chunk when
// the current one is exhausted.
func (a *Arena) alloc() *Thunk {
	if a.pos == len(a.chunk) {
		if a.chunk != nil {
			a.retired = append(a.retired, a.chunk)
		}
		a.chunk = make([]Thunk, a.chunkThunks)
		a.pos = 0
	}
	t := &a.chunk[a.pos]
	a.pos++
	return t
}

// NewThunk arena-allocates an unevaluated thunk for fn — the drop-in
// counterpart of the package-level NewThunk.
func (a *Arena) NewThunk(fn func(Context) Value) *Thunk {
	t := a.alloc()
	t.compute = fn
	return t
}

// NewPlaceholder arena-allocates a black-holed placeholder thunk — the
// message-cell counterpart of the package-level NewPlaceholder, used by
// the native Eden backend so a PE's channel cells come out of that PE's
// own allocation region.
func (a *Arena) NewPlaceholder() *Thunk {
	t := a.alloc()
	t.state.Store(int32(Blackholed))
	return t
}

// NewThunkAdapted arena-allocates a thunk in the closure-free
// representation: adapt is a shared (package-level) trampoline and
// payload its per-thunk data. See NewThunkAdapted.
func (a *Arena) NewThunkAdapted(adapt AdaptFn, payload any) *Thunk {
	t := a.alloc()
	t.adapt = adapt
	t.payload = payload
	return t
}

// Stats reports the arena's footprint: chunks allocated and thunks
// handed out.
func (a *Arena) Stats() (chunks, thunks int64) {
	if a.chunk != nil {
		chunks = 1
	}
	chunks += int64(len(a.retired))
	thunks = int64(len(a.retired))*int64(a.chunkThunks) + int64(a.pos)
	return chunks, thunks
}

// Reset recycles the arena for a new run: the current chunk is rewound
// and retired chunks are dropped. The caller must guarantee that no
// thunk handed out before the Reset is still reachable — the rewound
// chunk's slots are reused, so a stale reference would observe a
// different computation's node.
func (a *Arena) Reset() {
	a.retired = nil
	a.pos = 0
	clear(a.chunk)
}
