package graph

import "testing"

func TestArenaThunksBehaveLikeHeapThunks(t *testing.T) {
	// An arena-allocated thunk must be indistinguishable from a heap
	// NewThunk: computed once, value cached, state machine identical.
	a := NewArena(4)
	ctx := &mockCtx{}
	calls := 0
	th := a.NewThunk(func(c Context) Value {
		calls++
		return 42
	})
	if th.State() != Unevaluated {
		t.Fatalf("state = %v, want unevaluated", th.State())
	}
	if v := Force(ctx, th); v != 42 {
		t.Fatalf("Force = %v, want 42", v)
	}
	if v := Force(ctx, th); v != 42 || calls != 1 {
		t.Fatalf("second Force = %v (calls=%d), want 42 computed once", v, calls)
	}
}

func TestArenaAdaptedThunk(t *testing.T) {
	// The closure-free representation: a shared trampoline plus a
	// per-thunk payload.
	a := NewArena(4)
	ctx := &mockCtx{}
	adapt := func(c Context, payload any) Value { return payload.(int) * 2 }
	th := a.NewThunkAdapted(adapt, 21)
	if v := Force(ctx, th); v != 42 {
		t.Fatalf("Force = %v, want 42", v)
	}
}

func TestArenaChunkGrowthAndStats(t *testing.T) {
	a := NewArena(4)
	ctx := &mockCtx{}
	const n = 11
	thunks := make([]*Thunk, n)
	for i := 0; i < n; i++ {
		i := i
		thunks[i] = a.NewThunk(func(c Context) Value { return i })
	}
	// Thunks from earlier chunks must stay valid after growth.
	for i, th := range thunks {
		if v := Force(ctx, th); v != i {
			t.Fatalf("thunk %d = %v after growth", i, v)
		}
	}
	chunks, total := a.Stats()
	if total != n {
		t.Fatalf("Stats thunks = %d, want %d", total, n)
	}
	if want := int64((n + 3) / 4); chunks != want {
		t.Fatalf("Stats chunks = %d, want %d (chunk size 4)", chunks, want)
	}
}

func TestArenaDistinctSlots(t *testing.T) {
	// Every alloc must hand out a distinct slot — a bump-pointer bug that
	// reused a slot would alias two computations.
	a := NewArena(8)
	seen := map[*Thunk]bool{}
	for i := 0; i < 100; i++ {
		th := a.NewThunk(func(c Context) Value { return nil })
		if seen[th] {
			t.Fatalf("alloc %d returned an already-issued slot", i)
		}
		seen[th] = true
	}
}

func TestArenaReset(t *testing.T) {
	a := NewArena(4)
	for i := 0; i < 10; i++ {
		a.NewThunk(func(c Context) Value { return nil })
	}
	a.Reset()
	if chunks, thunks := a.Stats(); thunks != 0 || chunks > 1 {
		t.Fatalf("after Reset: chunks=%d thunks=%d, want a single rewound chunk", chunks, thunks)
	}
	// The rewound chunk's slots must come back zeroed.
	ctx := &mockCtx{}
	th := a.NewThunk(func(c Context) Value { return "fresh" })
	if v := Force(ctx, th); v != "fresh" {
		t.Fatalf("post-Reset thunk = %v", v)
	}
}

func TestArenaDefaultChunk(t *testing.T) {
	a := NewArena(0)
	if a.chunkThunks != DefaultArenaChunk {
		t.Fatalf("chunkThunks = %d, want default %d", a.chunkThunks, DefaultArenaChunk)
	}
}
