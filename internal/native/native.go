// Package native is the real-concurrency counterpart of the simulated
// GpH runtime: it executes the same runtime-agnostic GpH program bodies
// (exec.Program — sumEuler, matmul, APSP, the strategies combinators) on
// actual goroutines, so the paper's headline optimisations become
// measurable in wall-clock time on real hardware instead of only in
// virtual time.
//
// Architecture (one-to-one with the simulated work-stealing runtime):
//
//   - N workers, one per requested core. Worker 0 is the caller's
//     goroutine running the program's main function (the GpH main
//     thread); workers 1..N-1 are stealing loops on fresh goroutines.
//   - Each worker owns a lock-free Chase–Lev deque (internal/deque, the
//     same type the simulation uses) as its spark pool: Par pushes at
//     the bottom, idle workers steal from the top with a single CAS.
//   - Eager black-holing is an atomic CAS claim on the thunk
//     (graph.Thunk.TryClaim); lazy black-holing is the unsynchronised
//     baseline — entries are never marked, so concurrent forcers
//     duplicate evaluation exactly as in the paper's §IV-A.3 window,
//     and the duplicate-entry count is measured on real hardware.
//   - A worker that forces a black-holed thunk does not park on a
//     waiter list: it polls the atomic state, stealing and running
//     other sparks while it waits (leapfrogging). A lost wakeup is
//     therefore impossible by construction.
//
// Burn and Alloc are no-ops: real time is consumed by actually
// computing, and Go's allocator is real. The virtual-time simulation
// remains the instrument for controlled interleaving studies; this
// backend complements it with wall-clock ground truth (see DESIGN.md).
package native

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"parhask/internal/exec"
	"parhask/internal/graph"
)

// Config selects a native runtime setup.
type Config struct {
	// Workers is the number of OS-thread-backed workers (including the
	// main thread). Defaults to GOMAXPROCS.
	Workers int
	// EagerBlackholing selects the atomic-claim policy; false is the
	// unsynchronised lazy baseline that permits duplicate evaluation.
	EagerBlackholing bool
}

// NewConfig returns the default native configuration: one worker per
// available core, eager black-holing.
func NewConfig(workers int) Config {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return Config{Workers: workers, EagerBlackholing: true}
}

// Stats aggregates runtime counters over one native run. All counters
// are exact (maintained with atomics by the workers).
type Stats struct {
	SparksCreated   int64 // par calls that entered a pool
	SparksDud       int64 // par on an already-evaluated closure
	SparksConverted int64 // sparks a worker picked up and forced
	SparksFizzled   int64 // picked up but already evaluated
	SparksLeftover  int64 // still in a pool when main returned
	Steals          int64 // successful remote pool steals
	StealAttempts   int64 // steals tried against a non-empty pool
	DupEntries      int64 // duplicate thunk entries (lazy black-holing)
	DupResults      int64 // duplicate values computed and discarded
	BlockedForces   int64 // forces that found a black hole and waited
	Forks           int64 // threads created with Fork
}

// Result is the outcome of one native run.
type Result struct {
	// Value is what the main function returned.
	Value graph.Value
	// WallNS is the real elapsed time, in nanoseconds — the native
	// analogue of the simulation's virtual Elapsed.
	WallNS int64
	// Workers is the worker count the run used.
	Workers int
	Stats   Stats
}

// Wall returns the elapsed wall-clock time as a duration.
func (r *Result) Wall() time.Duration { return time.Duration(r.WallNS) }

// errAborted unwinds a worker or the main thread after another worker
// already recorded the run's failure.
var errAborted = errors.New("native: run aborted")

// rt is one native runtime instance.
type rt struct {
	cfg     Config
	workers []*worker

	stats struct {
		sparksCreated   atomic.Int64
		sparksDud       atomic.Int64
		sparksConverted atomic.Int64
		sparksFizzled   atomic.Int64
		steals          atomic.Int64
		stealAttempts   atomic.Int64
		dupEntries      atomic.Int64
		dupResults      atomic.Int64
		blockedForces   atomic.Int64
		forks           atomic.Int64
	}

	// done tells the stealing loops the main function returned; failed
	// tells every spinning force to unwind because a spark panicked.
	done   atomic.Bool
	failed atomic.Bool

	errOnce sync.Once
	err     error

	// inject holds sparks created by forked threads, which own no deque
	// (PushBottom is owner-only); workers drain it when their steals
	// come up empty.
	injectMu sync.Mutex
	inject   []*graph.Thunk

	stealers sync.WaitGroup
	forks    sync.WaitGroup
}

// Run executes main on a native work-stealing runtime and returns its
// value, the wall-clock time, and the runtime counters. The result is
// identical to the same program's simulated and sequential runs
// (referential transparency); only the time is real.
func Run(cfg Config, main exec.Program) (*Result, error) {
	if main == nil {
		return nil, errors.New("native: nil main")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	r := &rt{cfg: cfg}
	r.workers = make([]*worker, cfg.Workers)
	for i := range r.workers {
		r.workers[i] = newWorker(r, i)
	}

	start := time.Now()
	for _, w := range r.workers[1:] {
		r.stealers.Add(1)
		go w.stealLoop()
	}

	var value graph.Value
	runErr := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				if p == errAborted {
					return // r.err carries the original failure
				}
				err = fmt.Errorf("native: main panicked: %v", p)
			}
		}()
		value = main(&r.workers[0].ctx)
		return nil
	}()

	r.done.Store(true)
	r.stealers.Wait()
	r.forks.Wait()
	wall := time.Since(start)

	if runErr == nil {
		runErr = r.err
	}
	if runErr != nil {
		return nil, runErr
	}

	res := &Result{Value: value, WallNS: wall.Nanoseconds(), Workers: cfg.Workers}
	s := &res.Stats
	s.SparksCreated = r.stats.sparksCreated.Load()
	s.SparksDud = r.stats.sparksDud.Load()
	s.SparksConverted = r.stats.sparksConverted.Load()
	s.SparksFizzled = r.stats.sparksFizzled.Load()
	s.Steals = r.stats.steals.Load()
	s.StealAttempts = r.stats.stealAttempts.Load()
	s.DupEntries = r.stats.dupEntries.Load()
	s.DupResults = r.stats.dupResults.Load()
	s.BlockedForces = r.stats.blockedForces.Load()
	s.Forks = r.stats.forks.Load()
	for _, w := range r.workers {
		s.SparksLeftover += int64(w.pool.Size())
	}
	s.SparksLeftover += int64(len(r.inject))
	return res, nil
}

// fail records the first worker failure and aborts the run.
func (r *rt) fail(err error) {
	r.errOnce.Do(func() { r.err = err })
	r.failed.Store(true)
	r.done.Store(true)
}

// fork starts body as a real goroutine. Its sparks go to the shared
// injection queue; Run waits for all forks before returning.
func (r *rt) fork(name string, body func(exec.Ctx)) {
	r.stats.forks.Add(1)
	r.forks.Add(1)
	go func() {
		defer r.forks.Done()
		defer func() {
			if p := recover(); p != nil && p != errAborted {
				r.fail(fmt.Errorf("native: forked thread %q panicked: %v", name, p))
			}
		}()
		c := Ctx{rt: r}
		body(&c)
	}()
}

// pushInject queues a spark from a thread that owns no deque.
func (r *rt) pushInject(t *graph.Thunk) {
	r.injectMu.Lock()
	r.inject = append(r.inject, t)
	r.injectMu.Unlock()
}

// popInject removes one injected spark, if any.
func (r *rt) popInject() *graph.Thunk {
	r.injectMu.Lock()
	defer r.injectMu.Unlock()
	if len(r.inject) == 0 {
		return nil
	}
	t := r.inject[len(r.inject)-1]
	r.inject = r.inject[:len(r.inject)-1]
	return t
}
