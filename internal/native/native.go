// Package native is the real-concurrency counterpart of the simulated
// GpH runtime: it executes the same runtime-agnostic GpH program bodies
// (exec.Program — sumEuler, matmul, APSP, the strategies combinators) on
// actual goroutines, so the paper's headline optimisations become
// measurable in wall-clock time on real hardware instead of only in
// virtual time.
//
// Architecture (one-to-one with the simulated work-stealing runtime):
//
//   - N workers, one per requested core. Worker 0 is the caller's
//     goroutine running the program's main function (the GpH main
//     thread); workers 1..N-1 are stealing loops on fresh goroutines.
//   - Each worker owns a lock-free Chase–Lev deque (internal/deque, the
//     same type the simulation uses) as its spark pool: Par pushes at
//     the bottom, idle workers steal from the top with a single CAS.
//   - Eager black-holing is an atomic CAS claim on the thunk
//     (graph.Thunk.TryClaim); lazy black-holing is the unsynchronised
//     baseline — entries are never marked, so concurrent forcers
//     duplicate evaluation exactly as in the paper's §IV-A.3 window,
//     and the duplicate-entry count is measured on real hardware.
//   - A worker that forces a black-holed thunk does not park on a
//     waiter list: it polls the atomic state, stealing and running
//     other sparks while it waits (leapfrogging). A lost wakeup is
//     therefore impossible by construction.
//
// Burn and Alloc are no-ops: real time is consumed by actually
// computing, and Go's allocator is real. The virtual-time simulation
// remains the instrument for controlled interleaving studies; this
// backend complements it with wall-clock ground truth (see DESIGN.md).
//
// Observability: every counter is maintained per worker (summed into
// the aggregate Stats at the end, and samplable mid-run via
// Config.Sampler), and Config.EventLog turns on the wall-clock eventlog
// (internal/eventlog) — per-worker, owner-written event rings recording
// spark, steal, thunk-claim, block, idle and run events, reduced after
// the run into the same trace.Log timelines the simulation draws. When
// the eventlog is disabled the instrumentation is a nil check per hook:
// no allocation, no clock read.
package native

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"parhask/internal/eventlog"
	"parhask/internal/exec"
	"parhask/internal/graph"
	"parhask/internal/trace"
)

// Config selects a native runtime setup.
type Config struct {
	// Workers is the number of OS-thread-backed workers (including the
	// main thread). Defaults to GOMAXPROCS.
	Workers int
	// EagerBlackholing selects the atomic-claim policy; false is the
	// unsynchronised lazy baseline that permits duplicate evaluation.
	EagerBlackholing bool
	// EventLog enables the per-worker wall-clock event rings. The run's
	// Result then carries the drained eventlog.Log, and Result.Trace
	// reduces it to an EdenTV-style timeline. Costs one monotonic clock
	// read plus one owner-local append per event on the hot path;
	// disabled, the hooks are nil checks only.
	EventLog bool
	// EventLogConfig tunes the event rings (zero value = defaults).
	EventLogConfig eventlog.Config
	// Sampler, if non-nil, is called once just before the run starts
	// with a snapshot function that may be invoked from any goroutine
	// while the run is in flight; each call returns the counters
	// accumulated so far (SparksLeftover = sparks currently pooled).
	// This is the mid-run observability hook: monitoring loops sample
	// it without perturbing the workers, which never take a lock for it.
	Sampler func(snapshot func() Stats)
}

// NewConfig returns the default native configuration: one worker per
// available core, eager black-holing.
func NewConfig(workers int) Config {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return Config{Workers: workers, EagerBlackholing: true}
}

// Stats aggregates runtime counters — over a whole run (Result.Stats),
// per worker (Result.PerWorker), or mid-run (Config.Sampler). All
// counters are exact (maintained with per-worker atomics).
type Stats struct {
	SparksCreated   int64 `json:"sparks_created"`   // par calls that entered a pool
	SparksDud       int64 `json:"sparks_dud"`       // par on an already-evaluated closure
	SparksConverted int64 `json:"sparks_converted"` // sparks a worker picked up and forced
	SparksFizzled   int64 `json:"sparks_fizzled"`   // picked up but already evaluated
	SparksLeftover  int64 `json:"sparks_leftover"`  // still in a pool (at end: when main returned)
	Steals          int64 `json:"steals"`           // successful remote pool steals
	StealAttempts   int64 `json:"steal_attempts"`   // steals tried against a non-empty pool
	DupEntries      int64 `json:"dup_entries"`      // duplicate thunk entries (lazy black-holing)
	DupResults      int64 `json:"dup_results"`      // duplicate values computed and discarded
	BlockedForces   int64 `json:"blocked_forces"`   // forces that found a black hole and waited
	Forks           int64 `json:"forks"`            // threads created with Fork
}

// Add accumulates o into s field-wise.
func (s *Stats) Add(o Stats) {
	s.SparksCreated += o.SparksCreated
	s.SparksDud += o.SparksDud
	s.SparksConverted += o.SparksConverted
	s.SparksFizzled += o.SparksFizzled
	s.SparksLeftover += o.SparksLeftover
	s.Steals += o.Steals
	s.StealAttempts += o.StealAttempts
	s.DupEntries += o.DupEntries
	s.DupResults += o.DupResults
	s.BlockedForces += o.BlockedForces
	s.Forks += o.Forks
}

// counters is the atomic backing of one Stats contributor. Each worker
// owns one (so the hot path never contends on a shared cacheline, the
// way the old global counters did); forked threads, which have no
// worker identity, share the runtime's extern set.
type counters struct {
	sparksCreated   atomic.Int64
	sparksDud       atomic.Int64
	sparksConverted atomic.Int64
	sparksFizzled   atomic.Int64
	steals          atomic.Int64
	stealAttempts   atomic.Int64
	dupEntries      atomic.Int64
	dupResults      atomic.Int64
	blockedForces   atomic.Int64
	forks           atomic.Int64
}

// load reads a consistent-enough snapshot of the counters (each field
// atomically; cross-field skew is inherent to sampling a live run).
func (c *counters) load() Stats {
	return Stats{
		SparksCreated:   c.sparksCreated.Load(),
		SparksDud:       c.sparksDud.Load(),
		SparksConverted: c.sparksConverted.Load(),
		SparksFizzled:   c.sparksFizzled.Load(),
		Steals:          c.steals.Load(),
		StealAttempts:   c.stealAttempts.Load(),
		DupEntries:      c.dupEntries.Load(),
		DupResults:      c.dupResults.Load(),
		BlockedForces:   c.blockedForces.Load(),
		Forks:           c.forks.Load(),
	}
}

// Result is the outcome of one native run.
type Result struct {
	// Value is what the main function returned.
	Value graph.Value
	// WallNS is the real elapsed time, in nanoseconds — the native
	// analogue of the simulation's virtual Elapsed.
	WallNS int64
	// Workers is the worker count the run used.
	Workers int
	// Stats is the whole-run aggregate (every worker plus forked
	// threads).
	Stats Stats
	// PerWorker breaks the counters down by worker id. Forked threads'
	// contributions appear only in the aggregate (they have no worker).
	PerWorker []Stats
	// Events is the drained wall-clock eventlog (nil unless
	// Config.EventLog was set).
	Events *eventlog.Log
}

// Wall returns the elapsed wall-clock time as a duration.
func (r *Result) Wall() time.Duration { return time.Duration(r.WallNS) }

// Trace reduces the run's eventlog into a wall-clock trace.Log — the
// native analogue of the simulation's Result.Trace, rendered by the
// same exporters. Returns nil when the run was not event-logged.
func (r *Result) Trace() *trace.Log {
	if r.Events == nil {
		return nil
	}
	return r.Events.Trace()
}

// Report is the machine-readable summary of a native run (the cmds'
// `-stats json` output): wall time, aggregate counters and the
// per-worker breakdown.
type Report struct {
	Workers       int     `json:"workers"`
	WallNS        int64   `json:"wall_ns"`
	Total         Stats   `json:"total"`
	PerWorker     []Stats `json:"per_worker"`
	EventsLogged  int     `json:"events_logged,omitempty"`
	EventsDropped int64   `json:"events_dropped,omitempty"`
}

// Report builds the machine-readable summary of the run.
func (r *Result) Report() Report {
	rep := Report{Workers: r.Workers, WallNS: r.WallNS, Total: r.Stats, PerWorker: r.PerWorker}
	if r.Events != nil {
		for i := 0; i < r.Events.Workers(); i++ {
			rep.EventsLogged += r.Events.Buf(i).Len()
		}
		rep.EventsDropped = r.Events.Dropped()
	}
	return rep
}

// errAborted unwinds a worker or the main thread after another worker
// already recorded the run's failure.
var errAborted = errors.New("native: run aborted")

// rt is one native runtime instance.
type rt struct {
	cfg     Config
	workers []*worker

	// extern counts contributions from forked threads (no worker
	// identity); every worker's own counters live on the worker.
	extern counters

	// events is the wall-clock eventlog (nil when disabled).
	events *eventlog.Log

	// done tells the stealing loops the main function returned; failed
	// tells every spinning force to unwind because a spark panicked.
	done   atomic.Bool
	failed atomic.Bool

	errOnce sync.Once
	err     error

	// inject holds sparks created by forked threads, which own no deque
	// (PushBottom is owner-only); workers drain it when their steals
	// come up empty.
	injectMu sync.Mutex
	inject   []*graph.Thunk

	stealers sync.WaitGroup
	forks    sync.WaitGroup
}

// Run executes main on a native work-stealing runtime and returns its
// value, the wall-clock time, and the runtime counters. The result is
// identical to the same program's simulated and sequential runs
// (referential transparency); only the time is real.
func Run(cfg Config, main exec.Program) (*Result, error) {
	if main == nil {
		return nil, errors.New("native: nil main")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	r := &rt{cfg: cfg}
	r.workers = make([]*worker, cfg.Workers)
	for i := range r.workers {
		r.workers[i] = newWorker(r, i)
	}

	start := time.Now()
	if cfg.EventLog {
		r.events = eventlog.New(start, cfg.Workers, cfg.EventLogConfig)
		for i, w := range r.workers {
			w.ev = r.events.Buf(i)
		}
	}
	if cfg.Sampler != nil {
		cfg.Sampler(r.snapshot)
	}
	for _, w := range r.workers[1:] {
		r.stealers.Add(1)
		go w.stealLoop()
	}

	w0 := r.workers[0]
	var value graph.Value
	runErr := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				if p == errAborted {
					return // r.err carries the original failure
				}
				err = fmt.Errorf("native: main panicked: %v", p)
			}
		}()
		if w0.ev != nil {
			w0.ev.Emit(eventlog.RunBegin)
		}
		value = main(&w0.ctx)
		if w0.ev != nil {
			w0.ev.Emit(eventlog.RunEnd)
		}
		return nil
	}()

	r.done.Store(true)
	r.stealers.Wait()
	r.forks.Wait()
	wall := time.Since(start)

	if runErr == nil {
		runErr = r.err
	}
	if runErr != nil {
		return nil, runErr
	}

	res := &Result{Value: value, WallNS: wall.Nanoseconds(), Workers: cfg.Workers}
	res.PerWorker = make([]Stats, cfg.Workers)
	res.Stats = r.extern.load()
	res.Stats.SparksLeftover = int64(len(r.inject))
	for i, w := range r.workers {
		ws := w.ctr.load()
		ws.SparksLeftover = int64(w.pool.Size())
		res.PerWorker[i] = ws
		res.Stats.Add(ws)
	}
	if r.events != nil {
		r.events.Close(res.WallNS)
		res.Events = r.events
	}
	return res, nil
}

// snapshot sums the per-worker and forked-thread counters into one
// Stats. It is safe to call from any goroutine while the run is in
// flight: every field is an atomic load and the pool sizes are the
// deque's lock-free point-in-time estimates.
func (r *rt) snapshot() Stats {
	s := r.extern.load()
	for _, w := range r.workers {
		s.Add(w.ctr.load())
		s.SparksLeftover += int64(w.pool.Size())
	}
	r.injectMu.Lock()
	s.SparksLeftover += int64(len(r.inject))
	r.injectMu.Unlock()
	return s
}

// fail records the first worker failure and aborts the run.
func (r *rt) fail(err error) {
	r.errOnce.Do(func() { r.err = err })
	r.failed.Store(true)
	r.done.Store(true)
}

// fork starts body as a real goroutine. Its sparks go to the shared
// injection queue; Run waits for all forks before returning.
func (r *rt) fork(name string, body func(exec.Ctx)) {
	r.forks.Add(1)
	go func() {
		defer r.forks.Done()
		defer func() {
			if p := recover(); p != nil && p != errAborted {
				r.fail(fmt.Errorf("native: forked thread %q panicked: %v", name, p))
			}
		}()
		c := Ctx{rt: r}
		body(&c)
	}()
}

// pushInject queues a spark from a thread that owns no deque.
func (r *rt) pushInject(t *graph.Thunk) {
	r.injectMu.Lock()
	r.inject = append(r.inject, t)
	r.injectMu.Unlock()
}

// popInject removes the oldest injected spark, if any. The queue is
// FIFO so forked threads' sparks start in creation order — under the
// previous LIFO pop, a fork's newest spark always ran first and its
// earliest could starve behind a growing backlog. (The per-worker
// deques stay LIFO at the owner end on purpose: the newest own spark is
// the cache-warm one, as in GHC.)
func (r *rt) popInject() *graph.Thunk {
	r.injectMu.Lock()
	defer r.injectMu.Unlock()
	if len(r.inject) == 0 {
		return nil
	}
	t := r.inject[0]
	r.inject = r.inject[1:]
	return t
}
