// Package native is the real-concurrency counterpart of the simulated
// GpH runtime: it executes the same runtime-agnostic GpH program bodies
// (exec.Program — sumEuler, matmul, APSP, the strategies combinators) on
// actual goroutines, so the paper's headline optimisations become
// measurable in wall-clock time on real hardware instead of only in
// virtual time.
//
// Architecture (one-to-one with the simulated work-stealing runtime):
//
//   - N workers, one per requested core. Worker 0 is the caller's
//     goroutine running the program's main function (the GpH main
//     thread); workers 1..N-1 are stealing loops on fresh goroutines.
//   - Each worker owns a lock-free Chase–Lev deque (internal/deque, the
//     same type the simulation uses) as its spark pool: Par pushes at
//     the bottom, idle workers steal from the top with a single CAS.
//   - Each worker owns a thunk arena (graph.Arena): NewThunk on a
//     worker context hands out Thunk nodes from owner-local chunks —
//     the per-capability allocation-area analogue of the paper's
//     §IV-A.1 bigger-nurseries optimisation, applied to Go's GC.
//   - Eager black-holing is an atomic CAS claim on the thunk
//     (graph.Thunk.TryClaim); lazy black-holing is the unsynchronised
//     baseline — entries are never marked, so concurrent forcers
//     duplicate evaluation exactly as in the paper's §IV-A.3 window,
//     and the duplicate-entry count is measured on real hardware.
//   - A worker that forces a black-holed thunk does not park on a
//     waiter list: it polls the atomic state, stealing and running
//     other sparks while it waits (leapfrogging). A lost wakeup is
//     therefore impossible by construction.
//
// Burn and Alloc are no-ops: real time is consumed by actually
// computing, and Go's allocator is real. The virtual-time simulation
// remains the instrument for controlled interleaving studies; this
// backend complements it with wall-clock ground truth (see DESIGN.md).
//
// Observability: every counter is maintained per worker as plain
// owner-written fields (published to mid-run samplers as immutable
// snapshots, summed into the aggregate Stats after the run's WaitGroup
// barrier), and Config.EventLog turns on the wall-clock eventlog
// (internal/eventlog). Each run additionally records what Go's GC did
// while it ran — cycles, total pause, bytes allocated (Result.GC) —
// and Config.GCPercent pins GOGC for the run, which is how the GOGC
// sweep reproduces the paper's allocation-area-size experiment.
package native

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"

	"parhask/internal/eventlog"
	"parhask/internal/exec"
	"parhask/internal/faults"
	"parhask/internal/gcscope"
	"parhask/internal/graph"
	pmetrics "parhask/internal/metrics"
	"parhask/internal/trace"
	"parhask/internal/tune"
)

// GCOff is the Config.GCPercent value that disables Go's GC for the
// run (debug.SetGCPercent(-1)) — the "infinite allocation area" end of
// the GOGC sweep.
const GCOff = -1

// Config selects a native runtime setup.
type Config struct {
	// Workers is the number of OS-thread-backed workers (including the
	// main thread). Defaults to GOMAXPROCS.
	Workers int
	// EagerBlackholing selects the atomic-claim policy; false is the
	// unsynchronised lazy baseline that permits duplicate evaluation.
	EagerBlackholing bool
	// ArenaChunk is the per-worker thunk-arena chunk capacity, in
	// thunks (0 selects graph.DefaultArenaChunk). Larger chunks mean
	// fewer allocator calls and GC objects; smaller chunks waste less
	// on runs with few sparks.
	ArenaChunk int
	// GCPercent, if non-zero, sets Go's GC target (GOGC, via
	// debug.SetGCPercent) for the duration of the run and restores the
	// previous value afterwards. GCOff disables collection entirely.
	// This is the nursery-size knob of the §IV-A.1 experiment: a higher
	// GOGC is a bigger allocation area between collections.
	GCPercent int
	// EventLog enables the per-worker wall-clock event rings. The run's
	// Result then carries the drained eventlog.Log, and Result.Trace
	// reduces it to an EdenTV-style timeline. Costs one monotonic clock
	// read plus one owner-local append per event on the hot path;
	// disabled, the hooks are nil checks only.
	EventLog bool
	// EventLogConfig tunes the event rings (zero value = defaults).
	EventLogConfig eventlog.Config
	// Sampler, if non-nil, is called once just before the run starts
	// with a snapshot function that may be invoked from any goroutine
	// while the run is in flight; each call returns the counters
	// accumulated so far (SparksLeftover = sparks currently pooled).
	// This is the mid-run observability hook: monitoring loops sample
	// it without perturbing the workers — each worker publishes an
	// immutable counter snapshot at coarse points (spark boundaries,
	// idle transitions), so a sample lags a busy worker by at most one
	// spark execution and costs the workers nothing when no Sampler is
	// configured.
	Sampler func(snapshot func() Stats)
	// Faults, if non-nil, arms the deterministic fault-injection plane
	// (internal/faults): spark-indexed panics, process-indexed fork
	// panics, and per-worker stalls. When nil every injection hook is a
	// single predictable nil check (see BenchmarkNativeFaultOverhead).
	Faults *faults.Injector
	// Deadline, if non-zero, bounds the run's wall-clock time: a run
	// still in flight when it elapses is aborted with a structured
	// *faults.DeadlockError carrying each blocked worker's diagnostics,
	// instead of hanging. (A spark stuck in a non-cooperative infinite
	// computation cannot be preempted — the deadline unblocks every
	// *waiting* thread; a busy-looping mutator keeps its goroutine, as
	// in GHC.)
	Deadline time.Duration
	// Metrics, if non-nil, registers the pool's telemetry series
	// (internal/metrics): job latency histograms, spark/steal/GC/fault
	// rates. Honoured by NewPool only (batch runs report through
	// Result); when nil — the default — every recording hook is a nil
	// check, the same contract as the eventlog and fault plane.
	Metrics *pmetrics.Registry
	// Backoff, if non-nil, replaces the fixed idle-wait policy (spin
	// 64 rounds, sleeps doubling 10µs→1.28ms) with a tunable one the
	// autotune controller can widen, narrow, and arm for parking. Nil
	// keeps the legacy schedule with parking off.
	Backoff *tune.Backoff
	// Autotune, if non-nil, runs an online tune.Controller over the
	// run (or the pool's lifetime, under NewPool): on a coarse tick it
	// reads the published counter snapshots and moves the granularity
	// splitters, the backoff policy, the GOGC lease and the parking
	// threshold. Implies sampling (workers publish snapshots as if a
	// Sampler were set).
	Autotune *AutotuneConfig
}

// AutotuneConfig arms the self-tuning controller for a run or pool.
type AutotuneConfig struct {
	// Controller tunes the decision rules (zero value = defaults; see
	// tune.ControllerConfig). BaseGOGC defaults to the run's leased
	// GOGC percent.
	Controller tune.ControllerConfig
	// Splitters are the workload's granularity levers: the same
	// *tune.Splitter instances the program body drives its ParSum/Each
	// phases through. The controller splits/fuses them from observed
	// leaf service times; workloads without one simply aren't chunk-
	// tuned.
	Splitters []*tune.Splitter
}

// AutotuneReport is the controller's account of a tuned run: every
// decision it made, and where each lever ended up.
type AutotuneReport struct {
	Decisions []tune.Decision `json:"decisions"`
	// DecisionsDropped counts decisions evicted from the bounded trace.
	DecisionsDropped int64 `json:"decisions_dropped,omitempty"`
	// BackoffLevel and ParkAfter are the final backoff-policy position.
	BackoffLevel int `json:"backoff_level"`
	ParkAfter    int `json:"park_after"`
	// Grains maps each splitter to its final items-per-spark grain.
	Grains map[string]int `json:"grains,omitempty"`
	// GOGC is the final controller-held GC target.
	GOGC int `json:"gogc,omitempty"`
}

// NewConfig returns the default native configuration: one worker per
// available core, eager black-holing.
func NewConfig(workers int) Config {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return Config{Workers: workers, EagerBlackholing: true}
}

// Stats aggregates runtime counters — over a whole run (Result.Stats),
// per worker (Result.PerWorker), or mid-run (Config.Sampler).
// Whole-run and per-worker counts are exact; mid-run samples are
// consistent snapshots per worker that may lag each worker by one
// spark execution.
type Stats struct {
	SparksCreated   int64 `json:"sparks_created"`   // par calls that entered a pool
	SparksDud       int64 `json:"sparks_dud"`       // par on an already-evaluated closure
	SparksConverted int64 `json:"sparks_converted"` // sparks a worker picked up and forced
	SparksFizzled   int64 `json:"sparks_fizzled"`   // picked up but already evaluated
	SparksLeftover  int64 `json:"sparks_leftover"`  // still in a pool (at end: when main returned)
	Steals          int64 `json:"steals"`           // successful remote pool steals
	StealAttempts   int64 `json:"steal_attempts"`   // steals tried against a non-empty pool
	DupEntries      int64 `json:"dup_entries"`      // duplicate thunk entries (lazy black-holing)
	DupResults      int64 `json:"dup_results"`      // duplicate values computed and discarded
	BlockedForces   int64 `json:"blocked_forces"`   // forces that found a black hole and waited
	Forks           int64 `json:"forks"`            // threads created with Fork
	BackoffSleeps   int64 `json:"backoff_sleeps"`   // idle backoff sleeps taken (worker loops)
	BackoffNS       int64 `json:"backoff_ns"`       // cumulative time spent in backoff sleeps
	Parks           int64 `json:"parks"`            // times a worker parked on the pool condvar
	ParkedNS        int64 `json:"parked_ns"`        // cumulative time spent parked
}

// Add accumulates o into s field-wise.
func (s *Stats) Add(o Stats) {
	s.SparksCreated += o.SparksCreated
	s.SparksDud += o.SparksDud
	s.SparksConverted += o.SparksConverted
	s.SparksFizzled += o.SparksFizzled
	s.SparksLeftover += o.SparksLeftover
	s.Steals += o.Steals
	s.StealAttempts += o.StealAttempts
	s.DupEntries += o.DupEntries
	s.DupResults += o.DupResults
	s.BlockedForces += o.BlockedForces
	s.Forks += o.Forks
	s.BackoffSleeps += o.BackoffSleeps
	s.BackoffNS += o.BackoffNS
	s.Parks += o.Parks
	s.ParkedNS += o.ParkedNS
}

// counters is the atomic counter set for contributors without a worker
// identity: forked threads, which may bump it from many goroutines at
// once. Workers use the plain owner-written wcounters instead.
type counters struct {
	sparksCreated   atomic.Int64
	sparksDud       atomic.Int64
	sparksConverted atomic.Int64
	sparksFizzled   atomic.Int64
	steals          atomic.Int64
	stealAttempts   atomic.Int64
	dupEntries      atomic.Int64
	dupResults      atomic.Int64
	blockedForces   atomic.Int64
	forks           atomic.Int64
}

// load reads a consistent-enough snapshot of the counters (each field
// atomically; cross-field skew is inherent to sampling a live run).
func (c *counters) load() Stats {
	return Stats{
		SparksCreated:   c.sparksCreated.Load(),
		SparksDud:       c.sparksDud.Load(),
		SparksConverted: c.sparksConverted.Load(),
		SparksFizzled:   c.sparksFizzled.Load(),
		Steals:          c.steals.Load(),
		StealAttempts:   c.stealAttempts.Load(),
		DupEntries:      c.dupEntries.Load(),
		DupResults:      c.dupResults.Load(),
		BlockedForces:   c.blockedForces.Load(),
		Forks:           c.forks.Load(),
	}
}

// GCStats is what Go's collector did while one native run executed —
// the real-hardware counterpart of the simulation's virtual GC counts,
// and the y-axis of the GOGC sweep (§IV-A.1: GC frequency vs parallel
// speedup).
type GCStats struct {
	// GOGC is the GC target percent in force during the run (-1 = GC
	// disabled). A higher value is a proportionally bigger allocation
	// area between collections.
	GOGC int `json:"gogc"`
	// Cycles is the number of GC cycles completed during the run.
	Cycles int64 `json:"cycles"`
	// PauseNS is the total stop-the-world pause time during the run.
	PauseNS int64 `json:"pause_ns"`
	// BytesAlloc is the cumulative heap allocation of the run.
	BytesAlloc int64 `json:"bytes_alloc"`
	// ArenaChunks / ArenaThunks describe the per-worker thunk arenas:
	// chunks allocated and thunks handed out of them. ArenaThunks
	// thunks cost ArenaChunks allocator calls instead of ArenaThunks.
	ArenaChunks int64 `json:"arena_chunks"`
	ArenaThunks int64 `json:"arena_thunks"`
	// Shared reports that another run's (or resident job's) measurement
	// window overlapped this one: Cycles/PauseNS/BytesAlloc then
	// describe the whole process over the interval, not this run
	// exclusively, because Go's collector is process-global (see
	// internal/gcscope).
	Shared bool `json:"shared,omitempty"`
}

// readGOGC reports the GOGC percent currently in force (-1 = off)
// without disturbing it.
func readGOGC() int {
	s := []metrics.Sample{{Name: "/gc/gogc:percent"}}
	metrics.Read(s)
	v := s[0].Value.Uint64()
	if v == math.MaxUint64 { // SetGCPercent(-1)
		return -1
	}
	return int(v)
}

// Result is the outcome of one native run.
type Result struct {
	// Value is what the main function returned.
	Value graph.Value
	// WallNS is the real elapsed time, in nanoseconds — the native
	// analogue of the simulation's virtual Elapsed.
	WallNS int64
	// Workers is the worker count the run used.
	Workers int
	// Stats is the whole-run aggregate (every worker plus forked
	// threads).
	Stats Stats
	// PerWorker breaks the counters down by worker id. Forked threads'
	// contributions appear only in the aggregate (they have no worker).
	PerWorker []Stats
	// GC is the run's real-GC telemetry (cycles, pause, allocation,
	// arena footprint).
	GC GCStats
	// Events is the drained wall-clock eventlog (nil unless
	// Config.EventLog was set).
	Events *eventlog.Log
	// Autotune is the controller's decision trace and final lever
	// positions (nil unless Config.Autotune was set).
	Autotune *AutotuneReport
}

// Wall returns the elapsed wall-clock time as a duration.
func (r *Result) Wall() time.Duration { return time.Duration(r.WallNS) }

// Trace reduces the run's eventlog into a wall-clock trace.Log — the
// native analogue of the simulation's Result.Trace, rendered by the
// same exporters. Returns nil when the run was not event-logged.
func (r *Result) Trace() *trace.Log {
	if r.Events == nil {
		return nil
	}
	return r.Events.Trace()
}

// Report is the machine-readable summary of a native run (the cmds'
// `-stats json` output): wall time, aggregate counters, GC telemetry
// and the per-worker breakdown.
type Report struct {
	Workers       int             `json:"workers"`
	WallNS        int64           `json:"wall_ns"`
	Total         Stats           `json:"total"`
	GC            GCStats         `json:"gc"`
	PerWorker     []Stats         `json:"per_worker"`
	EventsLogged  int             `json:"events_logged,omitempty"`
	EventsDropped int64           `json:"events_dropped,omitempty"`
	Autotune      *AutotuneReport `json:"autotune,omitempty"`
}

// Report builds the machine-readable summary of the run.
func (r *Result) Report() Report {
	rep := Report{Workers: r.Workers, WallNS: r.WallNS, Total: r.Stats, GC: r.GC, PerWorker: r.PerWorker,
		Autotune: r.Autotune}
	if r.Events != nil {
		for i := 0; i < r.Events.Workers(); i++ {
			rep.EventsLogged += r.Events.Buf(i).Len()
		}
		rep.EventsDropped = r.Events.Dropped()
	}
	return rep
}

// errAborted unwinds a worker or the main thread after another worker
// already recorded the run's failure.
var errAborted = errors.New("native: run aborted")

// errJobAborted unwinds a resident job's threads (and workers blocked
// on its thunks) after the job — not the pool — recorded a failure.
var errJobAborted = errors.New("native: job aborted")

// panicErr turns a recovered panic value into an error. Error panic
// values are wrapped with %w so structured failures (an injected
// *faults.InjectedPanic, a *graph.PoisonError) stay matchable with
// errors.As through the run's top-level error.
func panicErr(prefix string, p any) error {
	if err, ok := p.(error); ok {
		return fmt.Errorf("%s: %w", prefix, err)
	}
	return fmt.Errorf("%s: %v", prefix, p)
}

// rt is one native runtime instance.
type rt struct {
	cfg     Config
	workers []*worker

	// sampled gates counter publication: workers snapshot their plain
	// counters for samplers only when a Sampler is configured, so
	// unsampled runs pay nothing.
	sampled bool

	// extern counts contributions from forked threads (no worker
	// identity); every worker's own counters live on the worker.
	extern counters

	// events is the wall-clock eventlog (nil when disabled).
	events *eventlog.Log

	// done tells the stealing loops the main function returned; failed
	// tells every spinning force to unwind because a spark panicked.
	done   atomic.Bool
	failed atomic.Bool

	errOnce sync.Once
	err     error

	// externBlocked counts forked threads currently inside a blocked
	// force, for the deadline watchdog's diagnostics (forked threads
	// have no worker whose blocked gauge could be read).
	externBlocked atomic.Int64

	// resident marks an rt owned by a Pool rather than a one-shot Run:
	// workers run residentLoop (spark panics fail the tagged job and the
	// loop restarts) instead of stealLoop (any panic fails the run).
	resident bool

	// poisoned counts thunk-claim poisonings across the runtime's
	// lifetime (every recovery path feeds it). A non-zero value on a
	// healthy server means a thread died holding claims — the CI smoke
	// test asserts it stays zero under fault-free traffic.
	poisoned atomic.Int64

	// pm is the pool's metric recorder (nil unless the owning Pool was
	// configured with a Registry); workers reach it for fault-injection
	// counts. Every use is a nil check when disabled.
	pm *poolMetrics

	// inject holds sparks created by threads that own no deque
	// (PushBottom is owner-only): forked threads, and in resident mode
	// every job's main thread. Workers drain it when their steals come
	// up empty. Each entry carries the job it belongs to (nil in batch
	// runs), so resident workers can attribute fault injection and
	// failures. injectHead indexes the next unconsumed spark — consumed
	// slots are zeroed immediately and the prefix is compacted away
	// periodically, so the backing array never retains thunks the
	// runtime already ran (see popInject).
	injectMu   sync.Mutex
	inject     []injEntry
	injectHead int

	// bo is the pool's idle-wait policy: the legacy fixed schedule by
	// default, a caller- or autotune-supplied tunable one otherwise.
	// Never nil after construction.
	bo *tune.Backoff

	// The park lot. A worker whose backoff ladder reaches the parking
	// threshold blocks on parkCond instead of sleep-looping; producers
	// (Par, pushInject) wake it. The lost-wakeup handshake is
	// Dekker-style through two sequentially-consistent atomics: the
	// parker increments nparked *then* re-checks every deque and the
	// injection queue (under parkMu) before waiting; a producer
	// publishes its spark *then* loads nparked. Whichever order the two
	// interleave in, either the parker sees the spark or the producer
	// sees the parker. parkGen (guarded by parkMu) versions the waits
	// so a wake between the re-check and the Wait is never lost either.
	parkMu   sync.Mutex
	parkCond *sync.Cond
	parkGen  uint64
	nparked  atomic.Int64

	stealers sync.WaitGroup
	forks    sync.WaitGroup
}

// defaultBackoff is the shared legacy policy for runs without an
// explicit one: the fixed pre-tuning idleWait schedule, parking off,
// and nothing ever adjusts it.
var defaultBackoff = tune.DefaultBackoffPolicy()

// newRT builds the runtime core shared by Run and NewPool: workers,
// backoff policy, park lot.
func newRT(cfg Config, resident bool) *rt {
	r := &rt{cfg: cfg, resident: resident,
		sampled: cfg.Sampler != nil || cfg.Autotune != nil}
	r.bo = cfg.Backoff
	if r.bo == nil {
		if cfg.Autotune != nil {
			// An autotuned run without an explicit policy gets its own
			// adaptive instance (parking armed) — never the shared
			// default, which must stay immutable.
			r.bo = tune.AdaptiveBackoff()
		} else {
			r.bo = defaultBackoff
		}
	}
	r.parkCond = sync.NewCond(&r.parkMu)
	r.workers = make([]*worker, cfg.Workers)
	for i := range r.workers {
		r.workers[i] = newWorker(r, i)
	}
	return r
}

// haveWork reports whether any deque or the injection queue holds a
// spark — the parker's final re-check. Called with parkMu held; takes
// injectMu inside it (the only permitted nesting of the two).
func (r *rt) haveWork() bool {
	for _, w := range r.workers {
		if !w.pool.Empty() {
			return true
		}
	}
	r.injectMu.Lock()
	depth := len(r.inject) - r.injectHead
	r.injectMu.Unlock()
	return depth > 0
}

// wake unparks every parked worker. The fast path — no one parked —
// is the single atomic load producers pay; rt.nparked is only ever
// non-zero while some worker holds a parking intent, so unparked
// runs never touch parkMu.
func (r *rt) wake() {
	if r.nparked.Load() == 0 {
		return
	}
	r.parkMu.Lock()
	r.parkGen++
	r.parkCond.Broadcast()
	r.parkMu.Unlock()
}

// injectDepth reports the injection queue's current depth.
func (r *rt) injectDepth() int64 {
	r.injectMu.Lock()
	defer r.injectMu.Unlock()
	return int64(len(r.inject) - r.injectHead)
}

// observe builds the controller's observation from the published
// snapshots: scheduler counters, GC window deltas, idle telemetry.
// Safe from the controller goroutine while the run is live.
func (r *rt) observe(start time.Time, win *gcscope.Window) tune.Observation {
	s := r.snapshot()
	d := win.Sample()
	return tune.Observation{
		NowNS:           time.Since(start).Nanoseconds(),
		SparksConverted: s.SparksConverted,
		Steals:          s.Steals,
		StealAttempts:   s.StealAttempts,
		SparksLeftover:  s.SparksLeftover,
		InjectDepth:     r.injectDepth(),
		GCCycles:        d.Cycles,
		AllocBytes:      d.BytesAlloc,
		BackoffSleeps:   s.BackoffSleeps,
		ParkedNS:        s.ParkedNS,
		IdleWorkers:     r.nparked.Load(),
	}
}

// autotuneReport snapshots the controller's outcome for the Result.
func (r *rt) autotuneReport(ctrl *tune.Controller, lease *gcscope.Lease) *AutotuneReport {
	rep := &AutotuneReport{
		Decisions:        ctrl.Trace().Decisions(),
		DecisionsDropped: ctrl.Trace().Dropped(),
		BackoffLevel:     r.bo.Level(),
		ParkAfter:        r.bo.ParkAfter(),
	}
	if at := r.cfg.Autotune; at != nil && len(at.Splitters) > 0 {
		rep.Grains = make(map[string]int, len(at.Splitters))
		for _, sp := range at.Splitters {
			rep.Grains[sp.Name()] = sp.Grain()
		}
	}
	if lease != nil {
		rep.GOGC = lease.Percent()
	}
	return rep
}

// injEntry is one injection-queue slot: a spark and the job it belongs
// to (nil for batch runs and job-less forks).
type injEntry struct {
	t   *graph.Thunk
	job *Job
}

// Run executes main on a native work-stealing runtime and returns its
// value, the wall-clock time, and the runtime counters. The result is
// identical to the same program's simulated and sequential runs
// (referential transparency); only the time is real.
func Run(cfg Config, main exec.Program) (*Result, error) {
	if main == nil {
		return nil, errors.New("native: nil main")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	var lease *gcscope.Lease
	if cfg.GCPercent != 0 {
		// The GOGC knob is process-global; the lease serialises
		// conflicting set/restore pairs so concurrent runs cannot corrupt
		// each other's targets (internal/gcscope).
		lease = gcscope.Acquire(cfg.GCPercent)
		defer lease.Release()
	} else if cfg.Autotune != nil {
		// An autotuned run without an explicit GOGC still takes a lease
		// (at the current percent, so acquisition never blocks a peer
		// wanting the status quo) — holding it is what entitles the
		// controller to Adjust mid-run.
		lease = gcscope.Acquire(readGOGC())
		defer lease.Release()
	}
	r := newRT(cfg, false)

	gogc := readGOGC()
	gcWin := gcscope.Begin()

	// The controller ticks on its own goroutine over the published
	// snapshots; stopped (and its trace harvested) before the GC
	// window closes, so its Sample calls never race End.
	var ctrl *tune.Controller
	if at := cfg.Autotune; at != nil {
		cc := at.Controller
		if cc.Metrics == nil {
			cc.Metrics = cfg.Metrics
		}
		levers := tune.Levers{Splitters: at.Splitters, Backoff: r.bo}
		if lease != nil && lease.Percent() > 0 {
			if cc.BaseGOGC == 0 {
				cc.BaseGOGC = lease.Percent()
			}
			levers.GOGC = lease
		}
		ctrl = tune.NewController(cc, levers)
	}

	start := time.Now()
	if cfg.EventLog {
		r.events = eventlog.New(start, cfg.Workers, cfg.EventLogConfig)
		for i, w := range r.workers {
			w.ev = r.events.Buf(i)
		}
	}
	if cfg.Sampler != nil {
		cfg.Sampler(r.snapshot)
	}
	if ctrl != nil {
		ctrl.Start(func() tune.Observation { return r.observe(start, gcWin) })
	}
	// The deadline watchdog converts a hung run into a structured
	// *faults.DeadlockError: fail() trips rt.failed, which every blocked
	// force polls, so the whole runtime unwinds through the existing
	// failure protocol. Per-worker blocked gauges supply the
	// diagnostics. Timer-vs-finish races are benign: the watchdog
	// checks done first, and a run that loses the race was at the
	// deadline anyway.
	var watchdog *time.Timer
	if cfg.Deadline > 0 {
		watchdog = time.AfterFunc(cfg.Deadline, func() {
			if r.done.Load() {
				return
			}
			r.fail(r.deadlockError(time.Since(start)))
		})
		defer watchdog.Stop()
	}
	for _, w := range r.workers[1:] {
		r.stealers.Add(1)
		go w.stealLoop()
	}

	w0 := r.workers[0]
	var value graph.Value
	runErr := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				if p == errAborted {
					err = r.err // carries the original failure
				} else {
					err = panicErr("native: main panicked", p)
				}
				// Claims the dying main stack still holds will never be
				// updated; poison them so nothing ever blocks on them
				// again (matters when a supervisor retries on the same
				// heap graph).
				w0.poisonClaims(err)
			}
		}()
		if w0.ev != nil {
			w0.ev.Emit(eventlog.RunBegin)
		}
		value = main(&w0.ctx)
		if w0.ev != nil {
			w0.ev.Emit(eventlog.RunEnd)
		}
		return nil
	}()

	if runErr != nil {
		// A main-thread panic must abort the run the way a spark panic
		// does: fail() trips rt.failed, so a stealer blocked inside a
		// force on a thunk main will now never update unwinds instead of
		// spinning on it forever (done alone does not reach BlockOnThunk).
		r.fail(runErr)
	}
	r.done.Store(true)
	r.wake() // parked stealers must observe done to exit
	w0.maybePublish()
	r.stealers.Wait()
	r.forks.Wait()
	wall := time.Since(start)

	if ctrl != nil {
		ctrl.Stop() // before End: Sample and End must not overlap
	}
	gcDelta := gcWin.End()

	if runErr == nil {
		runErr = r.err
	}

	res := &Result{Value: value, WallNS: wall.Nanoseconds(), Workers: cfg.Workers}
	res.GC = GCStats{
		GOGC:       gogc,
		Cycles:     gcDelta.Cycles,
		PauseNS:    gcDelta.PauseNS,
		BytesAlloc: gcDelta.BytesAlloc,
		Shared:     gcDelta.Shared,
	}
	res.PerWorker = make([]Stats, cfg.Workers)
	res.Stats = r.extern.load()
	res.Stats.SparksLeftover = int64(len(r.inject) - r.injectHead)
	for i, w := range r.workers {
		// Safe plain reads: the WaitGroup barrier (and, for worker 0,
		// goroutine identity) orders every owner write before these.
		ws := w.ctr.stats()
		ws.SparksLeftover = int64(w.pool.Size())
		res.PerWorker[i] = ws
		res.Stats.Add(ws)
		chunks, thunks := w.arena.Stats()
		res.GC.ArenaChunks += chunks
		res.GC.ArenaThunks += thunks
	}
	if r.events != nil {
		r.events.Close(res.WallNS)
		res.Events = r.events
	}
	if ctrl != nil {
		res.Autotune = r.autotuneReport(ctrl, lease)
	}
	if runErr != nil {
		// Failed runs still return the partial Result: the event rings
		// are drained and closed above (the stealers/forks barrier has
		// already been crossed), so tracedump can render the timeline of
		// a crashed or deadlocked run for post-mortems. Only the value
		// is withheld.
		res.Value = nil
		return res, runErr
	}
	return res, nil
}

// deadlockError builds the watchdog's structured report from the
// per-worker blocked gauges. Reads are racy by nature (the run is live)
// but the gauges are atomic, so the report is a consistent-enough
// point-in-time sample.
func (r *rt) deadlockError(elapsed time.Duration) *faults.DeadlockError {
	de := &faults.DeadlockError{Backend: "native", Reason: "deadline", Elapsed: elapsed}
	for _, w := range r.workers {
		if w.blocked.Load() > 0 {
			name := fmt.Sprintf("stealer-%d", w.id)
			if w.id == 0 {
				name = "main"
			}
			de.Blocked = append(de.Blocked, faults.BlockedThread{
				PE: w.id, Thread: name, Reason: "thunk", Chan: -1, Peer: -1,
			})
		}
	}
	if n := r.externBlocked.Load(); n > 0 {
		de.Blocked = append(de.Blocked, faults.BlockedThread{
			PE: -1, Thread: fmt.Sprintf("%d forked", n), Reason: "thunk", Chan: -1, Peer: -1,
		})
	}
	return de
}

// snapshot sums the workers' published counter snapshots and the
// forked-thread counters into one Stats. It is safe to call from any
// goroutine while the run is in flight: workers publish immutable
// snapshots at coarse points (so a busy worker's contribution lags by
// at most one spark execution), and the pool sizes are the deque's
// lock-free point-in-time estimates.
func (r *rt) snapshot() Stats {
	s := r.extern.load()
	for _, w := range r.workers {
		if p := w.pub.Load(); p != nil {
			s.Add(*p)
		}
		s.SparksLeftover += int64(w.pool.Size())
	}
	r.injectMu.Lock()
	s.SparksLeftover += int64(len(r.inject) - r.injectHead)
	r.injectMu.Unlock()
	return s
}

// fail records the first worker failure and aborts the run.
func (r *rt) fail(err error) {
	r.errOnce.Do(func() { r.err = err })
	r.failed.Store(true)
	r.done.Store(true)
	r.wake() // parked workers must observe the abort
}

// fork starts body as a real goroutine. Its sparks go to the shared
// injection queue; Run waits for all forks before returning. In
// resident mode the fork belongs to a job: its counters route to the
// job, its failure fails only that job, and the job's Wait covers it.
func (r *rt) fork(name string, body func(exec.Ctx), j *Job) {
	r.forks.Add(1)
	if j != nil {
		j.forks.Add(1)
	}
	go func() {
		defer r.forks.Done()
		if j != nil {
			defer j.forks.Done()
		}
		c := Ctx{rt: r, job: j}
		defer func() {
			if p := recover(); p != nil {
				var err error
				switch p {
				case errAborted:
					err = r.err // set before rt.failed, so visible here
				case errJobAborted:
					err = j.takeErr()
				default:
					err = panicErr(fmt.Sprintf("native: forked thread %q panicked", name), p)
				}
				// Orphaned-claim recovery: thunks this dead thread still
				// holds eager claims on would block their forcers forever;
				// poisoning routes those forcers to the failure path.
				if n := poisonClaims(c.claims, err, nil); n > 0 {
					r.poisoned.Add(n)
				}
				if p != errAborted && p != errJobAborted {
					if j != nil {
						j.fail(err)
					} else {
						r.fail(err)
					}
				}
			}
		}()
		if inj := c.faults(); inj != nil {
			if f := inj.ProcFault(); f != nil {
				panic(f)
			}
		}
		body(&c)
	}()
}

// pushInject queues a spark from a thread that owns no deque, then
// wakes the park lot — after releasing injectMu, so the parker's
// haveWork (parkMu → injectMu) never deadlocks against this path.
func (r *rt) pushInject(t *graph.Thunk, j *Job) {
	r.injectMu.Lock()
	r.inject = append(r.inject, injEntry{t: t, job: j})
	r.injectMu.Unlock()
	r.wake()
}

// injectCompactAt bounds how long a consumed prefix may grow before
// popInject slides the live suffix down.
const injectCompactAt = 32

// popInject removes the oldest injected spark, if any. The queue is
// FIFO so forked threads' sparks start in creation order — under the
// previous LIFO pop, a fork's newest spark always ran first and its
// earliest could starve behind a growing backlog. (The per-worker
// deques stay LIFO at the owner end on purpose: the newest own spark is
// the cache-warm one, as in GHC.)
//
// Consumed slots are nilled at once — re-slicing the head away
// (inject = inject[1:]) would keep every run thunk reachable through
// the backing array for the rest of the run — and once the dead prefix
// passes injectCompactAt and outweighs the live tail, the tail is
// copied down so the array itself shrinks back.
func (r *rt) popInject() (*graph.Thunk, *Job) {
	r.injectMu.Lock()
	defer r.injectMu.Unlock()
	if r.injectHead == len(r.inject) {
		r.inject = r.inject[:0]
		r.injectHead = 0
		return nil, nil
	}
	e := r.inject[r.injectHead]
	r.inject[r.injectHead] = injEntry{}
	r.injectHead++
	if e.job != nil {
		// Under injectMu, so a retiring job's purge (same lock) either
		// removed this entry or sees its conversion in flight: after
		// purge + active==0 no worker touches the job again.
		e.job.active.Add(1)
	}
	if r.injectHead >= injectCompactAt && r.injectHead*2 >= len(r.inject) {
		n := copy(r.inject, r.inject[r.injectHead:])
		r.inject = r.inject[:n]
		r.injectHead = 0
	}
	return e.t, e.job
}

// purgeInject drops every queued spark belonging to j — called when a
// job retires, so a completed job's speculative leftovers neither
// retain its thunks for the pool's lifetime nor waste worker time.
// Returns how many sparks were dropped.
func (r *rt) purgeInject(j *Job) int64 {
	r.injectMu.Lock()
	defer r.injectMu.Unlock()
	live := r.inject[r.injectHead:]
	n := 0
	for _, e := range live {
		if e.job != j {
			live[n] = e
			n++
		}
	}
	for i := n; i < len(live); i++ {
		live[i] = injEntry{}
	}
	r.inject = live[:n]
	r.injectHead = 0
	return int64(len(live) - n)
}
