package native

import (
	"runtime/debug"
	"sync"
	"testing"

	"parhask/internal/graph"

	"parhask/internal/exec"
	"parhask/internal/workloads/euler"
)

// readGOGC4Test reads the current GOGC by set-and-set-back.
func readGOGC4Test() int {
	v := debug.SetGCPercent(100)
	debug.SetGCPercent(v)
	return v
}

// TestConcurrentRunsRestoreGOGC is the regression test for the GC
// telemetry race: before the gcscope lease, two overlapping Runs with
// different GCPercent values interleaved their raw SetGCPercent
// set/restore pairs and could leave the process on an arbitrary
// intermediate target. With the lease, conflicting runs serialise and
// the process must end exactly where it started.
func TestConcurrentRunsRestoreGOGC(t *testing.T) {
	before := readGOGC4Test()
	percents := []int{before + 100, before + 200, before + 300, GCOff}
	var wg sync.WaitGroup
	for _, pct := range percents {
		for rep := 0; rep < 3; rep++ {
			wg.Add(1)
			go func(pct int) {
				defer wg.Done()
				cfg := NewConfig(2)
				cfg.GCPercent = pct
				res, err := Run(cfg, euler.Program(300, 8, 0, true))
				if err != nil {
					t.Errorf("Run(GCPercent=%d): %v", pct, err)
					return
				}
				if res.GC.GOGC != pct {
					t.Errorf("Run(GCPercent=%d) measured under GOGC=%d", pct, res.GC.GOGC)
				}
			}(pct)
		}
	}
	wg.Wait()
	if got := readGOGC4Test(); got != before {
		t.Fatalf("GOGC after concurrent runs = %d, want %d", got, before)
	}
}

// TestConcurrentRunsGCShared asserts that deliberately overlapped runs
// flag their GC deltas as Shared — the honest-attribution half of the
// fix: a delta taken while another run was in flight describes the
// process, not the run.
func TestConcurrentRunsGCShared(t *testing.T) {
	// Rendezvous inside the program bodies guarantees the two runs'
	// measurement windows genuinely overlap.
	var gate sync.WaitGroup
	gate.Add(2)
	prog := func(ctx exec.Ctx) graph.Value {
		gate.Done()
		gate.Wait()
		return euler.Program(100, 4, 0, true)(ctx)
	}
	results := make([]*Result, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := Run(NewConfig(2), prog)
			if err != nil {
				t.Errorf("run %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		if res == nil {
			t.Fatalf("run %d missing", i)
		}
		if !res.GC.Shared {
			t.Errorf("run %d overlapped another run but GC.Shared is false", i)
		}
	}
	// A solo run afterwards must not inherit the flag.
	res, err := Run(NewConfig(2), euler.Program(100, 4, 0, true))
	if err != nil {
		t.Fatal(err)
	}
	if res.GC.Shared {
		t.Errorf("solo run flagged Shared")
	}
}
