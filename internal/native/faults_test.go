package native

import (
	"errors"
	"testing"
	"time"

	"parhask/internal/exec"
	"parhask/internal/faults"
	"parhask/internal/graph"
	"parhask/internal/workloads/euler"
)

func mustPlan(t *testing.T, spec string) *faults.Injector {
	t.Helper()
	p, err := faults.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return faults.NewInjector(p)
}

func TestNativeInjectedSparkPanic(t *testing.T) {
	// Spark index 3 panics; the run must abort with a structured
	// *faults.InjectedPanic reachable through errors.As, and peers
	// blocked on the dead worker's claims must unwind (no hang —
	// awaitRun is the watchdog).
	cfg := NewConfig(4)
	cfg.Faults = mustPlan(t, "seed=7,panic-spark=3")
	done := make(chan error, 1)
	go func() {
		_, err := Run(cfg, euler.Program(1500, 60, 0, true))
		done <- err
	}()
	err := awaitRun(t, done)
	var ip *faults.InjectedPanic
	if !errors.As(err, &ip) {
		t.Fatalf("err = %v, want *faults.InjectedPanic", err)
	}
	if ip.Kind != "spark" || ip.Index != 3 || ip.Seed != 7 {
		t.Fatalf("injected panic fields: %+v", ip)
	}
	if c := cfg.Faults.Counts(); c.Panics != 1 {
		t.Fatalf("Counts.Panics = %d, want 1", c.Panics)
	}
}

func TestNativeInjectedProcPanic(t *testing.T) {
	// Fork index 0 dies on entry; main blocked on the placeholder the
	// fork was supposed to resolve must unwind with the injected error.
	cfg := NewConfig(2)
	cfg.Faults = mustPlan(t, "seed=1,panic-proc=0")
	ph := graph.NewPlaceholder()
	done := make(chan error, 1)
	go func() {
		_, err := Run(cfg, func(c exec.Ctx) graph.Value {
			exec.Fork(c, "resolver", func(exec.Ctx) {
				ph.Resolve(1)
			})
			return c.Force(ph)
		})
		done <- err
	}()
	err := awaitRun(t, done)
	var ip *faults.InjectedPanic
	if !errors.As(err, &ip) || ip.Kind != "proc" || ip.Index != 0 {
		t.Fatalf("err = %v, want proc *faults.InjectedPanic index 0", err)
	}
}

func TestNativePoisonedClaimUnblocksPeer(t *testing.T) {
	// The orphaned-claim hazard: a stealer claims thunk a (eager CAS),
	// panics mid-evaluation, and main is blocked forcing a. Recovery
	// must poison a so main's force raises *graph.PoisonError instead
	// of spinning on the black hole forever. The failure ordering—
	// poison before fail — means main may also unwind via errAborted;
	// either way the run error must carry the spark's failure.
	cfg := NewConfig(2)
	var a *graph.Thunk
	a = exec.Thunk(func(c exec.Ctx) graph.Value {
		panic("claimant boom")
	})
	done := make(chan error, 1)
	go func() {
		_, err := Run(cfg, func(c exec.Ctx) graph.Value {
			c.Par(a)
			return c.Force(a) // either runs it (panics here) or blocks on the stealer's claim
		})
		done <- err
	}()
	err := awaitRun(t, done)
	if err == nil {
		t.Fatal("run must fail")
	}
	// Whichever goroutine ran the spark, the thunk must never be left
	// as a permanent black hole.
	if s := a.State(); s != graph.Poisoned {
		t.Fatalf("thunk state after claimant death = %v, want poisoned", s)
	}
	if pe := a.PoisonedErr(); pe == nil {
		t.Fatal("poisoned thunk should carry the claimant's failure")
	}
}

func TestNativeDeadlineReturnsDeadlockError(t *testing.T) {
	// Main blocks forever on a placeholder nothing resolves. Without a
	// deadline this hangs; with one, the watchdog must return a
	// structured *faults.DeadlockError naming the blocked main thread.
	cfg := NewConfig(2)
	cfg.Deadline = 100 * time.Millisecond
	ph := graph.NewPlaceholder()
	done := make(chan error, 1)
	var res *Result
	go func() {
		r, err := Run(cfg, func(c exec.Ctx) graph.Value {
			return c.Force(ph)
		})
		res = r
		done <- err
	}()
	err := awaitRun(t, done)
	var de *faults.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *faults.DeadlockError", err)
	}
	if de.Backend != "native" || de.Reason != "deadline" {
		t.Fatalf("deadlock fields: %+v", de)
	}
	found := false
	for _, b := range de.Blocked {
		if b.PE == 0 && b.Thread == "main" {
			found = true
		}
	}
	if !found {
		t.Fatalf("diagnostics %v should name the blocked main thread", de.Blocked)
	}
	if res == nil {
		t.Fatal("failed runs must still return the partial Result")
	}
	if res.Value != nil {
		t.Fatal("failed runs must not leak a value")
	}
}

func TestNativeFailedRunKeepsEventlog(t *testing.T) {
	// Satellite: the event rings of a failed run are flushed so
	// tracedump can render the partial timeline post-mortem.
	cfg := NewConfig(2)
	cfg.EventLog = true
	cfg.Faults = mustPlan(t, "seed=3,panic-spark=0")
	done := make(chan error, 1)
	var res *Result
	go func() {
		r, err := Run(cfg, euler.Program(1500, 60, 0, true))
		res = r
		done <- err
	}()
	if err := awaitRun(t, done); err == nil {
		t.Fatal("run must fail")
	}
	if res == nil || res.Events == nil {
		t.Fatal("failed run must carry its eventlog")
	}
	total := 0
	for i := 0; i < res.Events.Workers(); i++ {
		total += res.Events.Buf(i).Len()
	}
	if total == 0 {
		t.Fatal("failed run's eventlog is empty")
	}
	tl := res.Trace()
	if tl == nil || len(tl.Agents()) == 0 {
		t.Fatal("failed run's eventlog must reduce to a renderable timeline")
	}
}

func TestNativeStallInjection(t *testing.T) {
	// A stalled worker slows the run but must not change the result.
	cfg := NewConfig(2)
	cfg.Faults = mustPlan(t, "stall=1:1ms")
	res, err := Run(cfg, euler.Program(800, 16, 0, true))
	if err != nil {
		t.Fatal(err)
	}
	if want := euler.SumTotientSieve(800); res.Value.(int64) != want {
		t.Fatalf("stalled run result %v != %d", res.Value, want)
	}
}

func TestNativeFaultReplayDeterministic(t *testing.T) {
	// The same spec must produce the same structured failure on every
	// run — the replay guarantee the chaos soak depends on.
	for i := 0; i < 3; i++ {
		cfg := NewConfig(4)
		cfg.Faults = mustPlan(t, "seed=5,panic-spark=10")
		done := make(chan error, 1)
		go func() {
			_, err := Run(cfg, euler.Program(2000, 80, 0, true))
			done <- err
		}()
		err := awaitRun(t, done)
		var ip *faults.InjectedPanic
		if !errors.As(err, &ip) || ip.Index != 10 {
			t.Fatalf("replay %d: err = %v, want injected spark panic at 10", i, err)
		}
	}
}
