package native

import (
	"strings"
	"testing"
	"time"

	"parhask/internal/exec"
	"parhask/internal/graph"
	"parhask/internal/workloads/euler"
)

// awaitRun waits for a Run started in a goroutine, failing the test if
// it does not return — the regression mode of the panic-containment
// bugs is a hang (a blocked worker spinning on a thunk that will never
// be updated), so every test here runs under a watchdog.
func awaitRun(t *testing.T, done <-chan error) error {
	t.Helper()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		t.Fatal("run hung: a blocked worker never unwound after the panic")
		return nil
	}
}

func TestNativeMainPanicAbortsBlockedStealer(t *testing.T) {
	// Main claims thunk a (eager black-holing), sparks b — which forces
	// a — and panics once a stealer is provably blocked on a. Without
	// rt.fail on the main-panic path the stealer spins on the black hole
	// forever and Run never returns.
	var snap func() Stats
	cfg := Config{Workers: 2, EagerBlackholing: true,
		Sampler: func(s func() Stats) { snap = s }}
	var a *graph.Thunk
	a = exec.Thunk(func(c exec.Ctx) graph.Value {
		b := exec.NewThunk(c, func(c2 exec.Ctx) graph.Value { return c2.Force(a) })
		c.Par(b)
		deadline := time.Now().Add(10 * time.Second)
		for snap().BlockedForces == 0 && time.Now().Before(deadline) {
			time.Sleep(100 * time.Microsecond)
		}
		panic("main boom")
	})
	done := make(chan error, 1)
	go func() {
		_, err := Run(cfg, func(c exec.Ctx) graph.Value { return c.Force(a) })
		done <- err
	}()
	err := awaitRun(t, done)
	if err == nil || !strings.Contains(err.Error(), "main panicked: main boom") {
		t.Fatalf("err = %v, want the main panic", err)
	}
}

func TestNativeForkedThreadPanicUnblocksMain(t *testing.T) {
	// Main blocks on a placeholder nothing will resolve; a forked thread
	// panics. The failure must reach main's blocked force and abort the
	// run with the fork's error.
	ph := graph.NewPlaceholder()
	done := make(chan error, 1)
	go func() {
		_, err := Run(NewConfig(2), func(c exec.Ctx) graph.Value {
			exec.Fork(c, "bomber", func(exec.Ctx) {
				time.Sleep(10 * time.Millisecond)
				panic("fork boom")
			})
			return c.Force(ph)
		})
		done <- err
	}()
	err := awaitRun(t, done)
	if err == nil || !strings.Contains(err.Error(), `forked thread "bomber" panicked: fork boom`) {
		t.Fatalf("err = %v, want the forked thread's panic", err)
	}
}

func TestNativeSamplerSeesFinalCounters(t *testing.T) {
	// After Run returns, a sampler snapshot must equal the run's exact
	// aggregate: every worker (the stealers on loop exit, worker 0 after
	// main returns) publishes a final snapshot covering counter changes
	// since its last coarse publish point.
	var snap func() Stats
	cfg := Config{Workers: 4, EagerBlackholing: true,
		Sampler: func(s func() Stats) { snap = s }}
	res := run(t, cfg, euler.Program(2000, 40, 0, true))
	if got := snap(); got != res.Stats {
		t.Fatalf("post-run sampler snapshot %+v != aggregate %+v", got, res.Stats)
	}
}
