package native

import (
	"testing"
	"time"

	"parhask/internal/workloads/mandel"
)

// nopCtx satisfies mandel.Ctx for the sequential oracle render (no
// virtual costs to charge outside a runtime).
type nopCtx struct{}

func (nopCtx) Burn(int64)  {}
func (nopCtx) Alloc(int64) {}

// TestNativeMandelMatchesOracle renders the irregular row-parallel
// mandel program on the native work-stealing runtime and compares the
// full image (and its checksum) against the sequential oracle, across
// worker counts and both black-holing policies.
func TestNativeMandelMatchesOracle(t *testing.T) {
	p := mandel.DefaultParams(96, 64)
	want := mandel.Render(nopCtx{}, p)
	wantSum := mandel.Checksum(want)
	for _, workers := range []int{1, 2, 4} {
		for _, eager := range []bool{true, false} {
			res := run(t, Config{Workers: workers, EagerBlackholing: eager}, mandel.Program(p))
			got := res.Value.([][]int32)
			if !mandel.Equal(got, want) {
				t.Fatalf("workers=%d eager=%v: image disagrees with oracle", workers, eager)
			}
			if mandel.Checksum(got) != wantSum {
				t.Fatalf("workers=%d eager=%v: checksum mismatch", workers, eager)
			}
			if workers > 1 && res.Stats.SparksCreated != int64(p.Height) {
				t.Fatalf("workers=%d: sparks = %d, want one per row (%d)",
					workers, res.Stats.SparksCreated, p.Height)
			}
		}
	}
}

// TestPoolMandelJob renders mandel as a resident-pool job — the shape
// the serve layer submits — and oracle-checks the result.
func TestPoolMandelJob(t *testing.T) {
	p := mandel.DefaultParams(96, 64)
	want := mandel.Render(nopCtx{}, p)
	pool := NewPool(NewConfig(4))
	defer pool.Close()
	h, err := pool.Submit(JobConfig{Deadline: 30 * time.Second}, mandel.Program(p))
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !mandel.Equal(res.Value.([][]int32), want) {
		t.Fatal("pool-run mandel disagrees with oracle")
	}
}
