package native

import (
	"strings"
	"sync"
	"testing"

	"parhask/internal/trace"
	"parhask/internal/workloads/euler"
)

func TestNativePerWorkerStatsSumToTotals(t *testing.T) {
	// The aggregate must be exactly the per-worker breakdown plus the
	// forked-thread contribution. sumEuler forks nothing, so here the
	// per-worker rows account for everything.
	const n, chunks = 3000, 60
	res := run(t, NewConfig(4), euler.Program(n, chunks, 0, true))
	if len(res.PerWorker) != res.Workers {
		t.Fatalf("PerWorker rows = %d, want %d", len(res.PerWorker), res.Workers)
	}
	var sum Stats
	for _, w := range res.PerWorker {
		sum.Add(w)
	}
	if sum != res.Stats {
		t.Fatalf("per-worker sum %+v != aggregate %+v", sum, res.Stats)
	}
	// Spark conservation: every created spark is converted, fizzled, or
	// left in some pool at the end.
	if got := res.Stats.SparksConverted + res.Stats.SparksFizzled + res.Stats.SparksLeftover; got != res.Stats.SparksCreated {
		t.Fatalf("converted+fizzled+leftover = %d, want created = %d", got, res.Stats.SparksCreated)
	}
}

func TestNativeEventlogTimeline(t *testing.T) {
	// End-to-end: with the eventlog on, a run reduces to a per-worker
	// wall-clock timeline whose span is the measured wall time.
	const n, chunks, workers = 3000, 60, 4
	cfg := NewConfig(workers)
	cfg.EventLog = true
	res := run(t, cfg, euler.Program(n, chunks, 0, true))
	if res.Events == nil {
		t.Fatal("Events is nil with EventLog enabled")
	}
	tl := res.Trace()
	if tl == nil {
		t.Fatal("Trace() is nil with EventLog enabled")
	}
	agents := tl.Agents()
	if len(agents) != workers {
		t.Fatalf("timeline agents = %d, want %d", len(agents), workers)
	}
	if tl.End() != res.WallNS {
		t.Fatalf("timeline end = %d, want wall time %d", tl.End(), res.WallNS)
	}
	// Worker 0 ran main, so it must show real Run time.
	if agents[0].TimeIn(trace.Run) <= 0 {
		t.Fatal("worker 0 recorded no Run time")
	}
	rendered := tl.Render(80)
	if !strings.Contains(rendered, "w0") || !strings.Contains(rendered, "w3") {
		t.Fatalf("rendered timeline missing worker rows:\n%s", rendered)
	}
	rep := res.Report()
	if rep.EventsLogged <= 0 {
		t.Fatalf("EventsLogged = %d, want > 0", rep.EventsLogged)
	}
	if rep.Workers != workers || rep.WallNS != res.WallNS {
		t.Fatalf("report header %+v disagrees with result", rep)
	}
}

func TestNativeEventlogDisabledByDefault(t *testing.T) {
	res := run(t, NewConfig(2), euler.Program(500, 10, 0, true))
	if res.Events != nil {
		t.Fatal("Events must be nil when EventLog is off")
	}
	if res.Trace() != nil {
		t.Fatal("Trace() must be nil when EventLog is off")
	}
	rep := res.Report()
	if rep.EventsLogged != 0 || rep.EventsDropped != 0 {
		t.Fatalf("disabled run reports events: %+v", rep)
	}
}

func TestNativeSamplerRaceStress(t *testing.T) {
	// A sampler goroutine hammers Snapshot while every worker is emitting
	// events and bumping counters. Run under `go test -race`: the point
	// is that mid-run sampling needs no stop-the-world.
	const n, chunks = 4000, 80
	cfg := NewConfig(4)
	cfg.EventLog = true
	done := make(chan struct{})
	var wg sync.WaitGroup
	var last Stats
	cfg.Sampler = func(snapshot func() Stats) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					last = snapshot()
					return
				default:
					s := snapshot()
					if s.SparksCreated < 0 || s.Steals < 0 {
						panic("snapshot returned negative counter")
					}
				}
			}
		}()
	}
	res := run(t, cfg, euler.Program(n, chunks, 0, true))
	close(done)
	wg.Wait()
	if want := euler.SumTotientSieve(n); res.Value.(int64) != want {
		t.Fatalf("sum = %d, want %d", res.Value.(int64), want)
	}
	// After the run has fully quiesced the snapshot view and the final
	// aggregate are the same numbers.
	if last != res.Stats {
		t.Fatalf("post-run snapshot %+v != final stats %+v", last, res.Stats)
	}
}
