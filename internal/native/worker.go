package native

import (
	"fmt"
	"runtime"
	"time"

	"parhask/internal/deque"
	"parhask/internal/eventlog"
	"parhask/internal/exec"
	"parhask/internal/graph"
)

// worker is one native capability: a goroutine with its own Chase–Lev
// spark pool. Worker 0 is the caller's goroutine running main; the rest
// run stealLoop.
type worker struct {
	rt   *rt
	id   int
	pool *deque.Deque[graph.Thunk]
	ctx  Ctx

	// ctr is this worker's share of the run counters (owner-updated,
	// snapshot-read).
	ctr counters

	// ev is this worker's wall-clock event ring; nil when the eventlog
	// is disabled, which keeps every hook a plain nil check.
	ev *eventlog.Buf

	// helpDepth bounds recursive spark-running from inside a blocked
	// force, so a pathological spark chain cannot overflow the stack.
	helpDepth int
	// claims counts thunks this worker's stack has eagerly claimed but
	// not yet updated. Helping while blocked is safe only at zero: an
	// incomplete claim paused beneath the current frame is a thunk whose
	// completion does not data-depend on our wait target, and a helped
	// spark could (transitively) force it — a cycle through the stack
	// that no amount of waiting resolves. At zero claims, everything
	// this stack owns is a data-ancestor of the wait target, so the
	// thunk DAG's acyclicity rules a deadlock out.
	claims int
}

// maxHelpDepth caps how many sparks a blocked force may run nested
// inside one another before falling back to plain spinning.
const maxHelpDepth = 64

func newWorker(r *rt, id int) *worker {
	w := &worker{rt: r, id: id, pool: deque.New[graph.Thunk]()}
	w.ctx = Ctx{rt: r, w: w}
	return w
}

// Ctx is the execution context the native runtime hands to program
// bodies and thunk computations. It implements both graph.Context (the
// forcing protocol) and exec.Forker (the runtime-agnostic program
// interface). A Ctx with a nil worker belongs to a forked goroutine,
// which owns no deque: its sparks go to the shared injection queue, its
// blocked forces spin without helping, and its counters accumulate in
// the runtime's extern set.
type Ctx struct {
	rt *rt
	w  *worker
}

var (
	_ graph.Context = (*Ctx)(nil)
	_ exec.Forker   = (*Ctx)(nil)
)

// counters returns where this context's events are counted: the owning
// worker's set, or the runtime's extern set for forked threads.
func (c *Ctx) counters() *counters {
	if c.w != nil {
		return &c.w.ctr
	}
	return &c.rt.extern
}

// events returns this context's event ring, or nil if the context
// belongs to a forked thread or the eventlog is disabled.
func (c *Ctx) events() *eventlog.Buf {
	if c.w != nil {
		return c.w.ev
	}
	return nil
}

// Burn is a no-op: under the native runtime, time is consumed by
// actually computing.
func (c *Ctx) Burn(ns int64) {}

// Alloc is a no-op: Go's allocator and GC are real.
func (c *Ctx) Alloc(bytes int64) {}

// Par sparks t: the thunk becomes available for any worker to evaluate.
// Already-evaluated (or nil) closures are discarded as duds, as in GHC.
func (c *Ctx) Par(t *graph.Thunk) {
	if t == nil || t.IsEvaluated() {
		c.counters().sparksDud.Add(1)
		return
	}
	c.counters().sparksCreated.Add(1)
	if c.w != nil {
		c.w.pool.PushBottom(t)
		if c.w.ev != nil {
			c.w.ev.Emit(eventlog.SparkPush)
		}
	} else {
		c.rt.pushInject(t)
	}
}

// Force evaluates t to weak head normal form on this worker.
func (c *Ctx) Force(t *graph.Thunk) graph.Value { return graph.Force(c, t) }

// ForceDeep evaluates v to normal form on this worker.
func (c *Ctx) ForceDeep(v graph.Value) graph.Value { return graph.ForceDeep(c, v) }

// Fork starts body on a fresh goroutine (a real GpH thread).
func (c *Ctx) Fork(name string, body func(exec.Ctx)) {
	c.counters().forks.Add(1)
	if ev := c.events(); ev != nil {
		ev.Emit(eventlog.Fork)
	}
	c.rt.fork(name, body)
}

// EagerBlackholing reports the configured claim policy.
func (c *Ctx) EagerBlackholing() bool { return c.rt.cfg.EagerBlackholing }

// BlackholeWriteCost is zero: the native claim's cost is the real CAS.
func (c *Ctx) BlackholeWriteCost() int64 { return 0 }

// EnteredThunk is a no-op: the native lazy policy never marks on entry
// at all — that is precisely the unsynchronised baseline whose
// duplicate evaluation the eager CAS removes.
func (c *Ctx) EnteredThunk(t *graph.Thunk) {}

// LeftThunk is a no-op (no entry table to clean up).
func (c *Ctx) LeftThunk(t *graph.Thunk) {}

// WakeThunkWaiters is a no-op: blocked native forces poll the thunk's
// atomic state, so there is no waiter list to drain.
func (c *Ctx) WakeThunkWaiters(t *graph.Thunk) {}

// NoteDuplicateEntry counts a lazy-black-holing duplicate entry.
func (c *Ctx) NoteDuplicateEntry(t *graph.Thunk) {
	c.counters().dupEntries.Add(1)
	if ev := c.events(); ev != nil {
		ev.Emit(eventlog.ThunkDupEntry)
	}
}

// NoteClaimed records an eager claim opened on this worker's stack.
func (c *Ctx) NoteClaimed(t *graph.Thunk) {
	if c.w != nil {
		c.w.claims++
		if c.w.ev != nil {
			c.w.ev.Emit(eventlog.ThunkClaim)
		}
	}
}

// NoteReleased records that the claim's evaluation completed.
func (c *Ctx) NoteReleased(t *graph.Thunk) {
	if c.w != nil {
		c.w.claims--
		if c.w.ev != nil {
			c.w.ev.Emit(eventlog.ThunkRelease)
		}
	}
}

// NoteDuplicateResult counts a computed-then-discarded duplicate value.
func (c *Ctx) NoteDuplicateResult(t *graph.Thunk) { c.counters().dupResults.Add(1) }

// BlockOnThunk waits for t to become Evaluated. Instead of parking, the
// worker leapfrogs: it keeps taking and running other sparks, which is
// both deadlock-free (the DAG is acyclic and the evaluator of t runs
// preemptively on another goroutine) and productive.
func (c *Ctx) BlockOnThunk(t *graph.Thunk) {
	c.counters().blockedForces.Add(1)
	ev := c.events()
	if ev != nil {
		ev.Emit(eventlog.BlockBegin)
	}
	spins := 0
	for t.State() != graph.Evaluated {
		if c.rt.failed.Load() {
			panic(errAborted)
		}
		if c.w != nil && c.w.claims == 0 && c.w.helpDepth < maxHelpDepth {
			if s := c.w.takeWork(); s != nil {
				c.w.helpDepth++
				c.w.runSpark(s)
				c.w.helpDepth--
				spins = 0
				continue
			}
		}
		spins++
		idleWait(spins)
	}
	if ev != nil {
		ev.Emit(eventlog.BlockEnd)
	}
}

// idleWait backs off an idle loop: yield for the first rounds, then
// sleep, doubling up to a 1ms cap. Oversubscribed machines (more
// workers than cores, or a race-detector build) would otherwise burn
// the cores the productive workers need.
func idleWait(spins int) {
	if spins < 64 {
		runtime.Gosched()
		return
	}
	d := time.Duration(10<<uint(min(spins-64, 7))) * time.Microsecond
	time.Sleep(d)
}

// takeWork returns the next spark to run: own pool first (LIFO, cache
// warm), then a steal sweep over the other workers, then the injection
// queue fed by forked threads.
func (w *worker) takeWork() *graph.Thunk {
	if t, ok := w.pool.PopBottom(); ok {
		return t
	}
	ws := w.rt.workers
	n := len(ws)
	for off := 1; off < n; off++ {
		v := ws[(w.id+off)%n]
		if v.pool.Empty() {
			continue
		}
		w.ctr.stealAttempts.Add(1)
		if w.ev != nil {
			w.ev.EmitArg(eventlog.StealAttempt, int32(v.id))
		}
		if t, ok := v.pool.Steal(); ok {
			w.ctr.steals.Add(1)
			if w.ev != nil {
				w.ev.EmitArg(eventlog.StealSuccess, int32(v.id))
			}
			return t
		}
	}
	return w.rt.popInject()
}

// runSpark converts a spark: forces it unless it is already evaluated
// (fizzled). The Run bracket around the force is what the timeline
// reducer turns into the paper's green band.
func (w *worker) runSpark(t *graph.Thunk) {
	if t.IsEvaluated() {
		w.ctr.sparksFizzled.Add(1)
		if w.ev != nil {
			w.ev.Emit(eventlog.SparkFizzle)
		}
		return
	}
	w.ctr.sparksConverted.Add(1)
	if w.ev != nil {
		w.ev.Emit(eventlog.SparkConvert)
		w.ev.Emit(eventlog.RunBegin)
	}
	graph.Force(&w.ctx, t)
	if w.ev != nil {
		w.ev.Emit(eventlog.RunEnd)
	}
}

// stealLoop is the body of workers 1..N-1: take work until the main
// thread finishes. A panic inside a spark aborts the whole run with an
// error rather than crashing the process. Idle brackets wrap maximal
// found-nothing stretches (not individual back-off sleeps), so the
// eventlog stays proportional to state changes, not to spin iterations.
func (w *worker) stealLoop() {
	defer w.rt.stealers.Done()
	defer func() {
		if p := recover(); p != nil && p != errAborted {
			w.rt.fail(fmt.Errorf("native: worker %d: spark panicked: %v", w.id, p))
		}
	}()
	spins := 0
	idle := false
	for !w.rt.done.Load() {
		if t := w.takeWork(); t != nil {
			if idle {
				idle = false
				if w.ev != nil {
					w.ev.Emit(eventlog.IdleEnd)
				}
			}
			w.runSpark(t)
			spins = 0
			continue
		}
		if !idle {
			idle = true
			if w.ev != nil {
				w.ev.Emit(eventlog.IdleBegin)
			}
		}
		spins++
		idleWait(spins)
	}
	if idle && w.ev != nil {
		w.ev.Emit(eventlog.IdleEnd)
	}
}
