package native

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"parhask/internal/deque"
	"parhask/internal/eventlog"
	"parhask/internal/exec"
	"parhask/internal/faults"
	"parhask/internal/graph"
)

// wcounters is one worker's share of the run counters: plain int64
// fields written only by the owning goroutine, never atomically. The
// hot path (Par, steal, convert) therefore pays a plain register add
// instead of a LOCK-prefixed RMW per event. Mid-run observers never
// read these fields — the owner publishes immutable snapshots through
// worker.pub when sampling is on (see maybePublish) — and Run reads
// them directly only after the WaitGroup barrier, which orders the
// owner's writes before the reader's loads.
//
// The pads keep the counter block on its own cache lines so a worker's
// increments never false-share with a neighbouring worker's fields or
// with the deque pointers thieves traverse.
type wcounters struct {
	_               [64]byte
	sparksCreated   int64
	sparksDud       int64
	sparksConverted int64
	sparksFizzled   int64
	steals          int64
	stealAttempts   int64
	dupEntries      int64
	dupResults      int64
	blockedForces   int64
	forks           int64
	backoffSleeps   int64
	backoffNS       int64
	parks           int64
	parkedNS        int64
	_               [64]byte
}

// stats copies the counters into the exported form. Owner-only (or
// post-barrier) — see the type comment.
func (c *wcounters) stats() Stats {
	return Stats{
		SparksCreated:   c.sparksCreated,
		SparksDud:       c.sparksDud,
		SparksConverted: c.sparksConverted,
		SparksFizzled:   c.sparksFizzled,
		Steals:          c.steals,
		StealAttempts:   c.stealAttempts,
		DupEntries:      c.dupEntries,
		DupResults:      c.dupResults,
		BlockedForces:   c.blockedForces,
		Forks:           c.forks,
		BackoffSleeps:   c.backoffSleeps,
		BackoffNS:       c.backoffNS,
		Parks:           c.parks,
		ParkedNS:        c.parkedNS,
	}
}

// worker is one native capability: a goroutine with its own Chase–Lev
// spark pool and its own thunk arena. Worker 0 is the caller's
// goroutine running main; the rest run stealLoop.
type worker struct {
	rt   *rt
	id   int
	pool *deque.Deque[graph.Thunk]
	ctx  Ctx

	// arena is this worker's thunk allocation region (§IV-A.1 analogue):
	// NewThunk on this worker's context hands out Thunk slots from
	// owner-local chunks instead of the global heap. Owner-only.
	arena *graph.Arena

	// ctr is this worker's share of the run counters (owner-written
	// plain adds; see wcounters for the publication discipline).
	ctr wcounters

	// pub carries the owner's latest counter snapshot for mid-run
	// samplers; nil until the owner first publishes. Written only via
	// maybePublish, which is gated on rt.sampled so unsampled runs never
	// pay for it.
	pub atomic.Pointer[Stats]

	// pubArenaChunks/pubArenaThunks publish the arena's footprint for
	// live observers (the /metrics scrape): graph.Arena's own fields
	// are owner-written plain ints, so a concurrent read would race.
	// Stored in maybePublish alongside pub.
	pubArenaChunks atomic.Int64
	pubArenaThunks atomic.Int64

	// ev is this worker's wall-clock event ring; nil when the eventlog
	// is disabled, which keeps every hook a plain nil check.
	ev *eventlog.Buf

	// helpDepth bounds recursive spark-running from inside a blocked
	// force, so a pathological spark chain cannot overflow the stack.
	helpDepth int
	// claims is the stack of thunks this worker's goroutine has eagerly
	// claimed but not yet updated (LIFO: Force nests). Helping while
	// blocked is safe only when it is empty: an incomplete claim paused
	// beneath the current frame is a thunk whose completion does not
	// data-depend on our wait target, and a helped spark could
	// (transitively) force it — a cycle through the stack that no
	// amount of waiting resolves. With no open claims, everything this
	// stack owns is a data-ancestor of the wait target, so the thunk
	// DAG's acyclicity rules a deadlock out.
	//
	// Keeping the claimed thunks themselves (not just a count) is what
	// makes orphaned-claim recovery possible: if this goroutine dies,
	// its recovery handler poisons every still-open claim so blocked
	// peers unblock into the failure path instead of waiting forever on
	// a black hole nobody will ever update.
	claims []*graph.Thunk

	// blocked gauges how many of this worker's stack frames are inside
	// a blocked force right now; the deadline watchdog reads it (from
	// another goroutine, hence atomic) to report who was stuck where.
	blocked atomic.Int32

	// curJob is the resident job whose spark this worker is currently
	// converting (nil between sparks, in batch runs, and for untagged
	// deque sparks). Owner-only plain field: runSpark saves/restores it
	// around each conversion, so nested helping attributes correctly,
	// and the residentLoop recovery reads it to fail the right job.
	curJob *Job
}

// poisonClaims marks every thunk in claims as dead (claimant died with
// err), newest first, emitting ThunkPoison per transition. Shared by
// the worker and forked-thread recovery paths. Returns how many thunks
// actually transitioned to Poisoned, so callers can feed the runtime's
// poisoning counter.
func poisonClaims(claims []*graph.Thunk, err error, ev *eventlog.Buf) int64 {
	var n int64
	for i := len(claims) - 1; i >= 0; i-- {
		if claims[i].Poison(err) {
			n++
			if ev != nil {
				ev.Emit(eventlog.ThunkPoison)
			}
		}
	}
	return n
}

// poisonClaims poisons this worker's open claim stack — called only
// from the worker goroutine's own recovery handlers.
func (w *worker) poisonClaims(err error) {
	if n := poisonClaims(w.claims, err, w.ev); n > 0 {
		w.rt.poisoned.Add(n)
	}
	w.claims = w.claims[:0]
}

// maxHelpDepth caps how many sparks a blocked force may run nested
// inside one another before falling back to plain spinning.
const maxHelpDepth = 64

func newWorker(r *rt, id int) *worker {
	w := &worker{rt: r, id: id, pool: deque.New[graph.Thunk](),
		arena: graph.NewArena(r.cfg.ArenaChunk)}
	w.ctx = Ctx{rt: r, w: w}
	return w
}

// maybePublish snapshots the owner's counters for mid-run samplers. A
// no-op (one predictable branch) unless the run was configured with a
// Sampler; called at coarse points — after each converted spark, at
// idle transitions, while blocked — so a sampler's view lags the owner
// by at most one spark execution.
func (w *worker) maybePublish() {
	if !w.rt.sampled {
		return
	}
	s := w.ctr.stats()
	w.pub.Store(&s)
	chunks, thunks := w.arena.Stats()
	w.pubArenaChunks.Store(chunks)
	w.pubArenaThunks.Store(thunks)
}

// Ctx is the execution context the native runtime hands to program
// bodies and thunk computations. It implements graph.Context (the
// forcing protocol), exec.Forker (the runtime-agnostic program
// interface) and exec.ThunkAllocator (arena-backed thunk allocation).
// A Ctx with a nil worker belongs to a forked goroutine, which owns no
// deque and no arena: its sparks go to the shared injection queue, its
// thunks to the global heap, its blocked forces spin without helping,
// and its counters accumulate atomically in the runtime's extern set.
type Ctx struct {
	rt *rt
	w  *worker
	// claims is the forked-thread claim stack (nil-worker contexts
	// only; worker contexts keep theirs on the worker). It exists for
	// the same orphaned-claim recovery as worker.claims.
	claims []*graph.Thunk
	// job is the resident job this context belongs to (nil in batch
	// runs). Job contexts route their counters to the job's exclusive
	// set, tag their sparks in the injection queue, and poll the job's
	// failure latch — so one job's deadline or fault cannot unwind its
	// pool neighbours.
	job *Job
	// ev is the job main thread's private event ring (nil elsewhere;
	// workers carry theirs on the worker). Single-writer: only the one
	// goroutine running the job's main function holds a Ctx with ev set.
	ev *eventlog.Buf
}

var (
	_ graph.Context       = (*Ctx)(nil)
	_ exec.Forker         = (*Ctx)(nil)
	_ exec.ThunkAllocator = (*Ctx)(nil)
)

// events returns this context's event ring, or nil if the context
// belongs to a forked thread or the eventlog is disabled.
func (c *Ctx) events() *eventlog.Buf {
	if c.w != nil {
		return c.w.ev
	}
	return c.ev
}

// faults returns the injector governing this context: the job's own
// budget when the context belongs to a resident job, else the
// runtime-wide plan.
func (c *Ctx) faults() *faults.Injector {
	if c.job != nil && c.job.faults != nil {
		return c.job.faults
	}
	return c.rt.cfg.Faults
}

// jobOf returns the resident job the calling goroutine is currently
// working for: the converting worker's current job, or the context's
// own (job main threads and their forks). Nil in batch runs.
func (c *Ctx) jobOf() *Job {
	if c.w != nil {
		return c.w.curJob
	}
	return c.job
}

// jctr returns the job counter set a nil-worker context should route
// to, or nil when the context belongs to a batch run's forked thread.
func (c *Ctx) jctr() *counters {
	if c.job != nil {
		return &c.job.ctr
	}
	return nil
}

// Burn is a no-op: under the native runtime, time is consumed by
// actually computing.
func (c *Ctx) Burn(ns int64) {}

// Alloc is a no-op: Go's allocator and GC are real.
func (c *Ctx) Alloc(bytes int64) {}

// NewThunk allocates a thunk for f from the running worker's arena —
// the exec.ThunkAllocator hook strategies and workloads create their
// sparks through. Forked threads own no arena and fall back to a plain
// heap thunk. Either way the thunk is built in the closure-free
// (adapt, payload) representation, so the only per-thunk heap object
// on the worker path is the caller's own body closure.
func (c *Ctx) NewThunk(f func(exec.Ctx) graph.Value) *graph.Thunk {
	if c.w != nil {
		return c.w.arena.NewThunkAdapted(exec.Adapt, f)
	}
	return exec.Thunk(f)
}

// Par sparks t: the thunk becomes available for any worker to evaluate.
// Already-evaluated (or nil) closures are discarded as duds, as in GHC.
// On the worker path this is the allocation-free hot path: a plain
// counter add and an owner-side deque push.
func (c *Ctx) Par(t *graph.Thunk) {
	if w := c.w; w != nil {
		if t == nil || t.IsEvaluated() {
			w.ctr.sparksDud++
			return
		}
		w.ctr.sparksCreated++
		w.pool.PushBottom(t)
		// Dekker handshake with the park lot: the seq-cst push above
		// (the deque's bottom store) is ordered before this load, and
		// the parker's nparked increment before its deque re-check —
		// one side always sees the other. With no one parked (every
		// run under the default policy) this is a single atomic load.
		if w.rt.nparked.Load() != 0 {
			w.rt.wake()
		}
		if w.ev != nil {
			w.ev.Emit(eventlog.SparkPush)
		}
		return
	}
	ctr := c.jctr()
	if ctr == nil {
		ctr = &c.rt.extern
	}
	if t == nil || t.IsEvaluated() {
		ctr.sparksDud.Add(1)
		return
	}
	ctr.sparksCreated.Add(1)
	if ev := c.ev; ev != nil {
		ev.Emit(eventlog.SparkPush)
	}
	c.rt.pushInject(t, c.job)
}

// Force evaluates t to weak head normal form on this worker.
func (c *Ctx) Force(t *graph.Thunk) graph.Value { return graph.Force(c, t) }

// ForceDeep evaluates v to normal form on this worker.
func (c *Ctx) ForceDeep(v graph.Value) graph.Value { return graph.ForceDeep(c, v) }

// Fork starts body on a fresh goroutine (a real GpH thread). Under a
// resident job the new thread inherits the job: its counters, faults
// and failure latch stay the job's.
func (c *Ctx) Fork(name string, body func(exec.Ctx)) {
	if c.w != nil {
		c.w.ctr.forks++
	} else if ctr := c.jctr(); ctr != nil {
		ctr.forks.Add(1)
	} else {
		c.rt.extern.forks.Add(1)
	}
	if ev := c.events(); ev != nil {
		ev.Emit(eventlog.Fork)
	}
	c.rt.fork(name, body, c.jobOf())
}

// EagerBlackholing reports the configured claim policy.
func (c *Ctx) EagerBlackholing() bool { return c.rt.cfg.EagerBlackholing }

// BlackholeWriteCost is zero: the native claim's cost is the real CAS.
func (c *Ctx) BlackholeWriteCost() int64 { return 0 }

// EnteredThunk is a no-op: the native lazy policy never marks on entry
// at all — that is precisely the unsynchronised baseline whose
// duplicate evaluation the eager CAS removes.
func (c *Ctx) EnteredThunk(t *graph.Thunk) {}

// LeftThunk is a no-op (no entry table to clean up).
func (c *Ctx) LeftThunk(t *graph.Thunk) {}

// WakeThunkWaiters is a no-op: blocked native forces poll the thunk's
// atomic state, so there is no waiter list to drain.
func (c *Ctx) WakeThunkWaiters(t *graph.Thunk) {}

// NoteDuplicateEntry counts a lazy-black-holing duplicate entry.
func (c *Ctx) NoteDuplicateEntry(t *graph.Thunk) {
	if c.w != nil {
		c.w.ctr.dupEntries++
	} else if ctr := c.jctr(); ctr != nil {
		ctr.dupEntries.Add(1)
	} else {
		c.rt.extern.dupEntries.Add(1)
	}
	if ev := c.events(); ev != nil {
		ev.Emit(eventlog.ThunkDupEntry)
	}
}

// NoteClaimed records an eager claim opened on this goroutine's stack.
func (c *Ctx) NoteClaimed(t *graph.Thunk) {
	if c.w != nil {
		c.w.claims = append(c.w.claims, t)
		if c.w.ev != nil {
			c.w.ev.Emit(eventlog.ThunkClaim)
		}
		return
	}
	c.claims = append(c.claims, t)
}

// NoteReleased records that the claim's evaluation completed. Claims
// release in LIFO order (Force nests), so this pops the stack top.
func (c *Ctx) NoteReleased(t *graph.Thunk) {
	if c.w != nil {
		if n := len(c.w.claims); n > 0 {
			c.w.claims[n-1] = nil
			c.w.claims = c.w.claims[:n-1]
		}
		if c.w.ev != nil {
			c.w.ev.Emit(eventlog.ThunkRelease)
		}
		return
	}
	if n := len(c.claims); n > 0 {
		c.claims[n-1] = nil
		c.claims = c.claims[:n-1]
	}
}

// NoteDuplicateResult counts a computed-then-discarded duplicate value.
func (c *Ctx) NoteDuplicateResult(t *graph.Thunk) {
	if c.w != nil {
		c.w.ctr.dupResults++
	} else if ctr := c.jctr(); ctr != nil {
		ctr.dupResults.Add(1)
	} else {
		c.rt.extern.dupResults.Add(1)
	}
}

// BlockOnThunk waits for t to become Evaluated. Instead of parking, the
// worker leapfrogs: it keeps taking and running other sparks, which is
// both deadlock-free (the DAG is acyclic and the evaluator of t runs
// preemptively on another goroutine) and productive.
func (c *Ctx) BlockOnThunk(t *graph.Thunk) {
	if c.w != nil {
		c.w.ctr.blockedForces++
		c.w.blocked.Add(1)
		defer c.w.blocked.Add(-1)
		c.w.maybePublish()
	} else {
		if ctr := c.jctr(); ctr != nil {
			ctr.blockedForces.Add(1)
		} else {
			c.rt.extern.blockedForces.Add(1)
		}
		c.rt.externBlocked.Add(1)
		defer c.rt.externBlocked.Add(-1)
		if j := c.job; j != nil {
			j.blocked.Add(1)
			defer j.blocked.Add(-1)
		}
	}
	ev := c.events()
	// jev mirrors the bracket into the converting job's worker-scoped
	// trace ring. Captured once: helping below may temporarily switch
	// w.curJob, but the block belongs to the job whose spark opened it.
	var jev *eventlog.Buf
	if c.w != nil {
		jev = c.w.curJob.workerBuf(c.w.id)
	}
	if ev != nil {
		ev.Emit(eventlog.BlockBegin)
	}
	if jev != nil {
		jev.Emit(eventlog.BlockBegin)
	}
	spins := 0
	for {
		if s := t.State(); s == graph.Evaluated || s == graph.Poisoned {
			// Poisoned: the claimant died. Return and let Force's
			// dispatch loop raise the *graph.PoisonError.
			break
		}
		if c.rt.failed.Load() {
			panic(errAborted)
		}
		// A failed resident job must unwind its own waiters (its main
		// thread, its forks, and workers converting its sparks) without
		// touching the rest of the pool.
		if j := c.jobOf(); j != nil && j.failed.Load() {
			panic(errJobAborted)
		}
		if c.w != nil && len(c.w.claims) == 0 && c.w.helpDepth < maxHelpDepth {
			if s, sj := c.w.takeWork(); s != nil {
				c.w.helpDepth++
				c.w.helpSpark(s, sj)
				c.w.helpDepth--
				spins = 0
				continue
			}
		}
		spins++
		if c.w != nil {
			// mayPark=false: the wake source here is the thunk's
			// completion, which does not signal the park lot.
			c.w.backoffWait(spins, false)
		} else {
			idleWait(spins)
		}
	}
	if ev != nil {
		ev.Emit(eventlog.BlockEnd)
	}
	if jev != nil {
		jev.Emit(eventlog.BlockEnd)
	}
}

// idleWait backs off an idle loop with the fixed legacy schedule:
// yield for the first rounds, then sleep, doubling up to a 1ms cap.
// Oversubscribed machines (more workers than cores, or a race-detector
// build) would otherwise burn the cores the productive workers need.
// Used by waits that have no worker identity (nil-worker blocked
// forces, runJob's active-wait) — worker loops go through backoffWait,
// which reads the pool's tunable policy and counts its sleeps.
func idleWait(spins int) {
	if spins < 64 {
		runtime.Gosched()
		return
	}
	d := time.Duration(10<<uint(min(spins-64, 7))) * time.Microsecond
	time.Sleep(d)
}

// backoffWait advances this worker's idle ladder at iteration `spins`
// under the pool's policy: yield, a counted sleep, or — when the
// policy's parking threshold is reached and the caller's loop allows
// it — a park on the pool condvar. mayPark is false inside a blocked
// force: thunk completion does not signal the park lot, so parking
// there could sleep through the only event being waited for; those
// waits ride the sleep ladder to its cap instead.
func (w *worker) backoffWait(spins int, mayPark bool) {
	if mayPark {
		if _, park := w.rt.bo.Plan(spins); park {
			w.park()
			return
		}
	}
	d := w.rt.bo.Sleep(spins)
	if d == 0 {
		runtime.Gosched()
		return
	}
	t0 := time.Now()
	time.Sleep(d)
	w.ctr.backoffSleeps++
	w.ctr.backoffNS += time.Since(t0).Nanoseconds()
}

// park blocks this worker on the pool condvar until a producer pushes
// work (Par, pushInject), the run completes, or it fails — replacing
// the 1ms-cap sleep loop a dry pool otherwise burns. The lost-wakeup
// handshake is described at the rt park-lot fields: the nparked
// increment is sequentially consistent and precedes the final
// work re-check, mirroring the producers' publish-then-load order, so
// one side always sees the other; parkGen versions the wait against
// wakes that land between the re-check and the Wait.
func (w *worker) park() {
	r := w.rt
	r.parkMu.Lock()
	r.nparked.Add(1)
	if r.done.Load() || r.failed.Load() || r.haveWork() {
		r.nparked.Add(-1)
		r.parkMu.Unlock()
		return
	}
	gen := r.parkGen
	w.ctr.parks++
	w.maybePublish()
	t0 := time.Now()
	for r.parkGen == gen && !r.done.Load() && !r.failed.Load() {
		r.parkCond.Wait()
	}
	r.nparked.Add(-1)
	r.parkMu.Unlock()
	w.ctr.parkedNS += time.Since(t0).Nanoseconds()
}

// takeWork returns the next spark to run — own pool first (LIFO, cache
// warm), then a steal sweep over the other workers, then the injection
// queue fed by forked threads and resident jobs — along with the job it
// belongs to (nil for deque sparks and batch runs).
func (w *worker) takeWork() (*graph.Thunk, *Job) {
	if t, ok := w.pool.PopBottom(); ok {
		return t, nil
	}
	ws := w.rt.workers
	n := len(ws)
	for off := 1; off < n; off++ {
		v := ws[(w.id+off)%n]
		if v.pool.Empty() {
			continue
		}
		w.ctr.stealAttempts++
		if w.ev != nil {
			w.ev.EmitArg(eventlog.StealAttempt, int32(v.id))
		}
		if t, ok := v.pool.Steal(); ok {
			w.ctr.steals++
			if w.ev != nil {
				w.ev.EmitArg(eventlog.StealSuccess, int32(v.id))
			}
			return t, nil
		}
	}
	return w.rt.popInject()
}

// runSpark converts a spark: forces it unless it is already evaluated
// (fizzled). The Run bracket around the force is what the timeline
// reducer turns into the paper's green band. j is the resident job the
// spark was injected by (nil for deque sparks and batch runs); it is
// held in w.curJob across the force — restored on the normal path,
// deliberately left in place on panic so the recovery handler knows
// which job to fail.
func (w *worker) runSpark(t *graph.Thunk, j *Job) {
	if j != nil && j.failed.Load() {
		// The job already failed (deadline, fault): drop its
		// speculative leftovers instead of burning pool time on them.
		j.active.Add(-1)
		return
	}
	// jb is the job's worker-scoped trace ring (nil for untraced jobs,
	// batch runs and untagged sparks): the cross-worker view of one
	// request. Safe to write until this worker's active decrement —
	// runJob drains only after active reaches zero.
	jb := j.workerBuf(w.id)
	if t.IsEvaluated() {
		w.ctr.sparksFizzled++
		if w.ev != nil {
			w.ev.Emit(eventlog.SparkFizzle)
		}
		if jb != nil {
			jb.Emit(eventlog.SparkFizzle)
		}
		if j != nil {
			j.active.Add(-1)
		}
		return
	}
	w.ctr.sparksConverted++
	prev := w.curJob
	w.curJob = j
	inj := w.rt.cfg.Faults
	if j != nil && j.faults != nil {
		inj = j.faults
	}
	if inj != nil {
		// The whole fault plane costs exactly this one nil check when
		// disabled (BenchmarkNativeFaultOverhead holds it to the same
		// ≤2% bar as the eventlog hooks).
		w.injectSparkFaults(inj)
	}
	if w.ev != nil {
		w.ev.Emit(eventlog.SparkConvert)
		w.ev.Emit(eventlog.RunBegin)
	}
	if jb != nil {
		jb.Emit(eventlog.SparkConvert)
		jb.Emit(eventlog.RunBegin)
	}
	graph.Force(&w.ctx, t)
	if w.ev != nil {
		w.ev.Emit(eventlog.RunEnd)
	}
	if jb != nil {
		jb.Emit(eventlog.RunEnd)
	}
	w.curJob = prev
	if j != nil {
		// Normal completion; the panic path's decrement lives at the
		// containing recovery (stealPass/helpSpark), after the failure
		// has been attributed, so a job can't report success while a
		// worker-side failure is still in flight.
		j.active.Add(-1)
	}
	w.maybePublish()
}

// helpSpark runs a spark taken while blocked inside a force. In batch
// mode it is runSpark verbatim (a panic propagates and fails the run,
// as before). In resident mode the helped spark may belong to a
// different job than the one we are blocked for, so its panic must not
// unwind our force: it is contained here — claims opened by the helped
// spark poisoned (the help precondition is an empty claim stack, so
// everything open belongs to it), its job failed — and the blocked
// force resumes waiting.
func (w *worker) helpSpark(t *graph.Thunk, j *Job) {
	if !w.rt.resident {
		w.runSpark(t, j)
		return
	}
	entry := w.curJob
	defer func() {
		if p := recover(); p != nil {
			err := w.sparkPanicErr(p)
			w.poisonClaims(err)
			if failed := w.curJob; failed != nil {
				if p != errAborted {
					failed.fail(err)
				}
				failed.active.Add(-1)
			}
			w.curJob = entry
		}
	}()
	w.runSpark(t, j)
}

// sparkPanicErr maps a spark panic value to the error that should
// poison the dead spark's claims: the pool/job failure for the abort
// sentinels, a wrapped panic error otherwise.
func (w *worker) sparkPanicErr(p any) error {
	switch p {
	case errAborted:
		return w.rt.err // set before rt.failed, so visible here
	case errJobAborted:
		if j := w.curJob; j != nil {
			return j.takeErr()
		}
		return errJobAborted
	default:
		return panicErr(fmt.Sprintf("native: worker %d: spark panicked", w.id), p)
	}
}

// injectSparkFaults is the cold half of the spark injection hook: a
// stall sleep if the plan marks this worker slow, then an injected
// panic if the plan names this spark index. Only converted sparks
// advance the index (fizzles don't execute anything worth killing).
func (w *worker) injectSparkFaults(inj *faults.Injector) {
	if d := inj.StallDur(w.id); d > 0 {
		inj.NoteStall()
		if pm := w.rt.pm; pm != nil {
			pm.faultStalls.AddAt(w.id, 1)
		}
		if w.ev != nil {
			w.ev.Emit(eventlog.StallBegin)
		}
		time.Sleep(d)
		if w.ev != nil {
			w.ev.Emit(eventlog.StallEnd)
		}
	}
	if f := inj.SparkFault(); f != nil {
		if pm := w.rt.pm; pm != nil {
			pm.faultPanics.AddAt(w.id, 1)
		}
		if w.ev != nil {
			w.ev.EmitArg(eventlog.FaultPanic, int32(f.Index))
		}
		panic(f)
	}
}

// stealLoop is the body of workers 1..N-1: take work until the main
// thread finishes. A panic inside a spark aborts the whole run with an
// error rather than crashing the process. Idle brackets wrap maximal
// found-nothing stretches (not individual back-off sleeps), so the
// eventlog stays proportional to state changes, not to spin iterations.
func (w *worker) stealLoop() {
	defer w.rt.stealers.Done()
	defer func() {
		if p := recover(); p != nil {
			var err error
			if p == errAborted {
				err = w.rt.err // set before rt.failed, so visible here
			} else {
				err = panicErr(fmt.Sprintf("native: worker %d: spark panicked", w.id), p)
			}
			// Orphaned-claim recovery: poison every thunk this dead
			// worker still holds a claim on, so a peer blocked on one of
			// them unblocks into the failure path (Force raises
			// *graph.PoisonError) instead of waiting forever.
			w.poisonClaims(err)
			if p != errAborted {
				w.rt.fail(err)
			}
		}
	}()
	// Final publication (runs on every exit path, including a spark
	// panic): without it, counter changes since the last coarse publish
	// point — e.g. steal attempts from the closing sweep — would never
	// reach a sampler that reads after the run.
	defer w.maybePublish()
	spins := 0
	idle := false
	for !w.rt.done.Load() {
		if t, j := w.takeWork(); t != nil {
			if idle {
				idle = false
				if w.ev != nil {
					w.ev.Emit(eventlog.IdleEnd)
				}
			}
			w.runSpark(t, j)
			spins = 0
			continue
		}
		if !idle {
			idle = true
			if w.ev != nil {
				w.ev.Emit(eventlog.IdleBegin)
			}
			w.maybePublish()
		}
		spins++
		w.backoffWait(spins, true)
	}
	if idle && w.ev != nil {
		w.ev.Emit(eventlog.IdleEnd)
	}
}
