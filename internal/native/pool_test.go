package native

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"parhask/internal/exec"
	"parhask/internal/faults"
	"parhask/internal/graph"
	"parhask/internal/workloads/euler"
)

// TestPoolRunsMixedJobsConcurrently is the resident-pool core test:
// one pool, many concurrent mixed-size jobs, every value checked
// against the workload's own oracle, no restart between jobs.
func TestPoolRunsMixedJobsConcurrently(t *testing.T) {
	p := NewPool(NewConfig(4))
	defer p.Close()
	sizes := []int{80, 200, 500, 1000}
	const jobsPerSize = 8
	var wg sync.WaitGroup
	for _, n := range sizes {
		for k := 0; k < jobsPerSize; k++ {
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				h, err := p.Submit(JobConfig{Deadline: 30 * time.Second},
					euler.Program(n, 8, 0, true))
				if err != nil {
					t.Errorf("submit n=%d: %v", n, err)
					return
				}
				res, err := h.Wait()
				if err != nil {
					t.Errorf("job n=%d: %v", n, err)
					return
				}
				if want := euler.SumTotientSieve(n); res.Value.(int64) != want {
					t.Errorf("job n=%d = %v, want %d", n, res.Value, want)
				}
				if res.WallNS <= 0 {
					t.Errorf("job n=%d: non-positive latency %d", n, res.WallNS)
				}
			}(n)
		}
	}
	wg.Wait()
	if got := p.JobsDone(); got != int64(len(sizes)*jobsPerSize) {
		t.Fatalf("JobsDone = %d, want %d", got, len(sizes)*jobsPerSize)
	}
	if got := p.JobsFailed(); got != 0 {
		t.Fatalf("JobsFailed = %d", got)
	}
	if p.Inflight() != 0 {
		t.Fatalf("Inflight = %d after all jobs waited", p.Inflight())
	}
}

// TestPoolJobFaultIsolation injects a spark panic into one job's
// private fault budget and runs clean jobs beside it: the faulted job
// must fail with the structured error, the neighbours and the pool
// must be untouched.
func TestPoolJobFaultIsolation(t *testing.T) {
	p := NewPool(NewConfig(4))
	defer p.Close()

	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := p.Submit(JobConfig{Deadline: 30 * time.Second},
				euler.Program(300, 8, 0, true))
			if err != nil {
				errs[i] = err
				return
			}
			_, errs[i] = h.Wait()
		}(i)
	}

	plan, err := faults.Parse("seed=1,panic-spark=0")
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(plan)
	// The program parks its main thread long enough that workers are
	// guaranteed to convert its sparks, so the injected panic (on the
	// first conversion) deterministically fires worker-side.
	prog := func(ctx exec.Ctx) graph.Value {
		ts := make([]*graph.Thunk, 8)
		for i := range ts {
			i := i
			ts[i] = exec.NewThunk(ctx, func(c exec.Ctx) graph.Value {
				return int64(i)
			})
			ctx.Par(ts[i])
		}
		time.Sleep(100 * time.Millisecond)
		var sum int64
		for _, th := range ts {
			sum += ctx.Force(th).(int64)
		}
		return sum
	}
	h, err := p.Submit(JobConfig{Deadline: 30 * time.Second, Faults: inj}, prog)
	if err != nil {
		t.Fatal(err)
	}
	_, jerr := h.Wait()
	wg.Wait()

	if jerr == nil {
		t.Fatal("faulted job completed without error")
	}
	var ip *faults.InjectedPanic
	var pe *graph.PoisonError
	if !errors.As(jerr, &ip) && !errors.As(jerr, &pe) {
		t.Fatalf("faulted job error is not structured: %v", jerr)
	}
	for i, e := range errs {
		if e != nil {
			t.Errorf("clean neighbour %d failed: %v", i, e)
		}
	}

	// The pool must still serve fresh jobs after absorbing the fault.
	h2, err := p.Submit(JobConfig{Deadline: 30 * time.Second},
		euler.Program(200, 4, 0, true))
	if err != nil {
		t.Fatal(err)
	}
	res, err := h2.Wait()
	if err != nil {
		t.Fatalf("post-fault job: %v", err)
	}
	if want := euler.SumTotientSieve(200); res.Value.(int64) != want {
		t.Fatalf("post-fault job = %v, want %d", res.Value, want)
	}
}

// TestPoolJobDeadline hangs one job on a placeholder nobody resolves:
// its deadline must convert the hang into a structured DeadlockError
// while a concurrent healthy job completes normally.
func TestPoolJobDeadline(t *testing.T) {
	p := NewPool(NewConfig(2))
	defer p.Close()

	hang, err := p.Submit(JobConfig{Deadline: 50 * time.Millisecond},
		func(ctx exec.Ctx) graph.Value {
			cell := graph.NewPlaceholder()
			return ctx.Force(cell) // never resolved
		})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := p.Submit(JobConfig{Deadline: 30 * time.Second},
		euler.Program(300, 8, 0, true))
	if err != nil {
		t.Fatal(err)
	}

	if _, err := ok.Wait(); err != nil {
		t.Fatalf("healthy job beside a hung one: %v", err)
	}
	_, herr := hang.Wait()
	var de *faults.DeadlockError
	if !errors.As(herr, &de) {
		t.Fatalf("hung job error = %v, want *faults.DeadlockError", herr)
	}
	if de.Reason != "deadline" {
		t.Fatalf("DeadlockError reason = %q", de.Reason)
	}
}

// TestPoolForkFailureScopedToJob panics inside a job's forked thread:
// only that job fails.
func TestPoolForkFailureScopedToJob(t *testing.T) {
	p := NewPool(NewConfig(2))
	defer p.Close()

	bad, err := p.Submit(JobConfig{Deadline: 5 * time.Second},
		func(ctx exec.Ctx) graph.Value {
			cell := graph.NewPlaceholder()
			exec.Fork(ctx, "bomb", func(c exec.Ctx) {
				panic("fork bomb")
			})
			return ctx.Force(cell)
		})
	if err != nil {
		t.Fatal(err)
	}
	good, err := p.Submit(JobConfig{Deadline: 30 * time.Second},
		euler.Program(200, 4, 0, true))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := good.Wait(); err != nil {
		t.Fatalf("healthy job: %v", err)
	}
	if _, err := bad.Wait(); err == nil {
		t.Fatal("job with panicking fork completed without error")
	}
}

// TestPoolCloseRejectsNewJobs: Close drains in-flight work, then
// Submit returns the sentinel rejections.
func TestPoolCloseRejectsNewJobs(t *testing.T) {
	p := NewPool(NewConfig(2))
	h, err := p.Submit(JobConfig{Deadline: 30 * time.Second},
		euler.Program(200, 4, 0, true))
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, err := h.Wait(); err != nil {
		t.Fatalf("in-flight job across Close: %v", err)
	}
	_, err = p.Submit(JobConfig{}, euler.Program(50, 2, 0, true))
	if !errors.Is(err, ErrPoolClosed) && !errors.Is(err, ErrPoolDraining) {
		t.Fatalf("Submit after Close = %v, want pool-closed rejection", err)
	}
}

// TestPoolJobEventlogScope gives one job a private event ring and
// checks it recorded the job's own run bracket.
func TestPoolJobEventlogScope(t *testing.T) {
	p := NewPool(NewConfig(2))
	defer p.Close()
	h, err := p.Submit(JobConfig{Deadline: 30 * time.Second, EventLog: true},
		euler.Program(200, 4, 0, true))
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Events == nil {
		t.Fatal("job requested an eventlog but Result.Events is nil")
	}
	if res.Events.Buf(0).Len() == 0 {
		t.Fatal("job eventlog is empty")
	}
}

// monotoneFields extracts the cumulative counters (everything except
// the SparksLeftover gauge).
func monotoneFields(s Stats) []int64 {
	return []int64{s.SparksCreated, s.SparksDud, s.SparksConverted,
		s.SparksFizzled, s.Steals, s.StealAttempts, s.DupEntries,
		s.DupResults, s.BlockedForces, s.Forks}
}

// TestResidentSamplerMonotonic is the satellite coverage for
// Config.Sampler under concurrent submit/drain: a snapshot loop races
// against job churn (including retirement, which moves counters from
// the live table to the retired fold) and asserts that every
// cumulative counter is non-decreasing across consecutive snapshots.
// Run under -race this also proves the snapshot path is race-clean.
func TestResidentSamplerMonotonic(t *testing.T) {
	var snap func() Stats
	cfg := NewConfig(4)
	cfg.Sampler = func(s func() Stats) { snap = s }
	p := NewPool(cfg)
	defer p.Close()
	if snap == nil {
		t.Fatal("pool did not hand the sampler its snapshot function")
	}

	stop := make(chan struct{})
	violations := make(chan string, 1)
	go func() {
		prev := monotoneFields(snap())
		for {
			select {
			case <-stop:
				return
			default:
			}
			cur := monotoneFields(snap())
			for i := range cur {
				if cur[i] < prev[i] {
					select {
					case violations <- fmt.Sprintf("field %d decreased: %d -> %d", i, prev[i], cur[i]):
					default:
					}
					return
				}
			}
			prev = cur
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 15; k++ {
				h, err := p.Submit(JobConfig{Deadline: 30 * time.Second},
					euler.Program(150, 6, 0, true))
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				if _, err := h.Wait(); err != nil {
					t.Errorf("job: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	select {
	case v := <-violations:
		t.Fatalf("sampler monotonicity violated: %s", v)
	default:
	}

	// The final snapshot must account for all submitted jobs' sparks:
	// 4 goroutines x 15 jobs x 6 chunks created by job mains.
	final := snap()
	if want := int64(4 * 15 * 6); final.SparksCreated < want {
		t.Fatalf("final SparksCreated = %d, want >= %d", final.SparksCreated, want)
	}
}
