package native

import (
	"strings"
	"sync"
	"testing"
	"time"

	"parhask/internal/eventlog"
	"parhask/internal/exec"
	"parhask/internal/faults"
	"parhask/internal/graph"
	"parhask/internal/metrics"
	"parhask/internal/workloads/euler"
)

// TestPoolMetrics drives a metered pool and checks that the registry's
// live series agree with the pool's own accounting.
func TestPoolMetrics(t *testing.T) {
	reg := metrics.New()
	cfg := NewConfig(4)
	cfg.Metrics = reg
	p := NewPool(cfg)
	defer p.Close()

	const jobs = 12
	var wg sync.WaitGroup
	for k := 0; k < jobs; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, err := p.Submit(JobConfig{Deadline: 30 * time.Second},
				euler.Program(300, 8, 0, true))
			if err != nil {
				t.Errorf("submit: %v", err)
				return
			}
			if _, err := h.Wait(); err != nil {
				t.Errorf("job: %v", err)
			}
		}()
	}
	wg.Wait()

	cs := reg.Counters()
	if got := cs[`native_pool_jobs_total{outcome="ok"}`]; got != jobs {
		t.Fatalf("jobs_total ok = %v, want %d", got, jobs)
	}
	if got := cs[`native_pool_jobs_total{outcome="error"}`]; got != 0 {
		t.Fatalf("jobs_total error = %v, want 0", got)
	}
	if got := cs[`native_pool_job_seconds_count{outcome="ok"}`]; got != jobs {
		t.Fatalf("job_seconds count = %v, want %d", got, jobs)
	}
	if got := cs["native_pool_sched_wait_seconds_count"]; got != jobs {
		t.Fatalf("sched_wait count = %v, want %d", got, jobs)
	}
	if got := cs["native_pool_poisoned_claims_total"]; got != 0 {
		t.Fatalf("poisoned claims = %v on a healthy pool", got)
	}
	snap := p.Snapshot()
	if got := cs["native_pool_sparks_created_total"]; int64(got) > snap.SparksCreated {
		t.Fatalf("sparks_created series %v exceeds snapshot %d", got, snap.SparksCreated)
	}

	// The Prometheus exposition renders without error and carries the
	// derived quantile gauges.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`native_pool_jobs_total{outcome="ok"} 12`,
		"native_pool_job_seconds_p99",
		"native_pool_workers 4",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("exposition missing %q", want)
		}
	}
}

// TestPoolMetricsFaultSeries checks the fault plane feeds the
// injection counters and that a poisoned claim shows up.
func TestPoolMetricsFaultSeries(t *testing.T) {
	reg := metrics.New()
	cfg := NewConfig(2)
	cfg.Metrics = reg
	p := NewPool(cfg)
	defer p.Close()

	plan, err := faults.Parse("seed=7,panic-spark=0")
	if err != nil {
		t.Fatal(err)
	}
	// Park the main thread so a resident worker is guaranteed to
	// convert a spark (injection fires on worker-side conversion only).
	prog := func(ctx exec.Ctx) graph.Value {
		ts := make([]*graph.Thunk, 8)
		for i := range ts {
			i := i
			ts[i] = exec.NewThunk(ctx, func(c exec.Ctx) graph.Value { return int64(i) })
			ctx.Par(ts[i])
		}
		time.Sleep(100 * time.Millisecond)
		var sum int64
		for _, th := range ts {
			sum += ctx.Force(th).(int64)
		}
		return sum
	}
	h, err := p.Submit(JobConfig{Faults: faults.NewInjector(plan), Deadline: 30 * time.Second}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(); err == nil {
		t.Fatal("fault-injected job succeeded")
	}
	cs := reg.Counters()
	if got := cs["native_pool_fault_panics_total"]; got < 1 {
		t.Fatalf("fault_panics = %v, want >= 1", got)
	}
	if got := cs[`native_pool_jobs_total{outcome="error"}`]; got != 1 {
		t.Fatalf("jobs_total error = %v, want 1", got)
	}
}

// TestPoolJobTraceRings: a traced job's private eventlog has one main
// ring plus one ring per worker, carries the TraceMark, and records the
// converting workers' run brackets so the cross-worker timeline of one
// request is reconstructible.
func TestPoolJobTraceRings(t *testing.T) {
	p := NewPool(NewConfig(4))
	defer p.Close()

	h, err := p.Submit(JobConfig{
		EventLog: true,
		TraceID:  42,
		Deadline: 30 * time.Second,
	}, euler.Program(1500, 24, 0, true))
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Events == nil {
		t.Fatal("traced job has no eventlog")
	}
	if got, want := res.Events.Workers(), 1+p.Workers(); got != want {
		t.Fatalf("ring count = %d, want %d (main + workers)", got, want)
	}
	main := res.Events.Events(0)
	if len(main) == 0 || main[0].Type != eventlog.TraceMark || main[0].Arg != 42 {
		t.Fatalf("ring 0 does not start with TraceMark(42): %+v", main[:min(3, len(main))])
	}
	// The job's sparks ran on the resident workers, so at least one
	// worker ring must carry a convert/run bracket (with 24 chunks on 4
	// workers, "no worker ever converted" means attribution is broken).
	var converted, runBegins int
	for w := 1; w < res.Events.Workers(); w++ {
		for _, e := range res.Events.Events(w) {
			switch e.Type {
			case eventlog.SparkConvert:
				converted++
			case eventlog.RunBegin:
				runBegins++
			}
		}
	}
	if converted == 0 || runBegins == 0 {
		t.Fatalf("no worker-ring activity: converts=%d runs=%d", converted, runBegins)
	}
	// And the rings reduce to a per-agent timeline via the dump path,
	// exactly as tracedump -job will render them.
	agents := make([]string, res.Events.Workers())
	agents[0] = "main"
	for i := 1; i < len(agents); i++ {
		agents[i] = "w" + string(rune('0'+i-1))
	}
	d := res.Events.Dump(agents)
	rl, err := d.Log()
	if err != nil {
		t.Fatal(err)
	}
	tl := rl.TraceAgents(d.Agents)
	if len(tl.Agents()) != len(agents) {
		t.Fatalf("trace agents = %d, want %d", len(tl.Agents()), len(agents))
	}
}
