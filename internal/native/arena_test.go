package native

import (
	"fmt"
	"testing"

	"parhask/internal/exec"
	"parhask/internal/graph"
	"parhask/internal/workloads/euler"
	"parhask/internal/workloads/fuzz"
)

// TestNativeArenaCrossRuntimeOracle runs arena-allocating program
// bodies (every exec.NewThunk call goes through the owning worker's
// arena) against the host-side reference evaluation, across worker
// counts, black-holing policies and arena chunk sizes — including a
// chunk size of 1, which exercises the growth path on every single
// allocation.
func TestNativeArenaCrossRuntimeOracle(t *testing.T) {
	for seed := uint64(40); seed <= 45; seed++ {
		p := fuzz.Generate(seed, 100)
		want := p.Expected()
		for _, chunk := range []int{1, 7, graph.DefaultArenaChunk} {
			for _, workers := range []int{1, 4} {
				for _, eager := range []bool{true, false} {
					res := run(t, Config{Workers: workers, EagerBlackholing: eager, ArenaChunk: chunk}, p.Body())
					if got := res.Value.(int64); got != want {
						t.Fatalf("seed=%d chunk=%d workers=%d eager=%v: got %d, want %d",
							seed, chunk, workers, eager, got, want)
					}
					if res.GC.ArenaThunks == 0 {
						t.Fatalf("seed=%d chunk=%d: no thunks went through the arenas", seed, chunk)
					}
				}
			}
		}
	}
}

// TestNativeSparkConservation checks the spark-accounting invariant on
// real runs: every spark that entered a pool is accounted for exactly
// once — converted (picked up and forced), fizzled (picked up already
// evaluated) or leftover (still pooled when main returned).
func TestNativeSparkConservation(t *testing.T) {
	progs := map[string]exec.Program{
		"sumEuler": euler.Program(2000, 40, 0, true),
		"fuzz":     fuzz.Generate(99, 120).Body(),
	}
	for name, prog := range progs {
		for _, workers := range []int{1, 2, 8} {
			for _, eager := range []bool{true, false} {
				res := run(t, Config{Workers: workers, EagerBlackholing: eager}, prog)
				s := res.Stats
				got := s.SparksConverted + s.SparksFizzled + s.SparksLeftover
				if got != s.SparksCreated {
					t.Fatalf("%s workers=%d eager=%v: created %d != converted %d + fizzled %d + leftover %d",
						name, workers, eager, s.SparksCreated,
						s.SparksConverted, s.SparksFizzled, s.SparksLeftover)
				}
			}
		}
	}
}

// TestNativeArenaStealStress drives the arenas through the adversarial
// schedule: sparks that spark (nested Par from inside spark bodies), so
// stolen thunks allocate into the *thief's* arena while the victim
// keeps bump-allocating into its own, across 8 workers. Run under
// -race this is the data-race certificate for the owner-local
// allocation design; in any mode the result is checked exactly.
func TestNativeArenaStealStress(t *testing.T) {
	const outer, inner = 64, 16
	// Reference: each inner thunk is worth i*j, summed over all pairs.
	var want int64
	for i := 0; i < outer; i++ {
		for j := 0; j < inner; j++ {
			want += int64(i * j)
		}
	}
	for round := 0; round < 4; round++ {
		// Small chunks force frequent growth mid-steal.
		cfg := Config{Workers: 8, EagerBlackholing: round%2 == 0, ArenaChunk: 8}
		res := run(t, cfg, func(ctx exec.Ctx) graph.Value {
			outerThunks := make([]*graph.Thunk, outer)
			for i := 0; i < outer; i++ {
				i := i
				outerThunks[i] = exec.NewThunk(ctx, func(c exec.Ctx) graph.Value {
					// Runs on whichever worker converted the spark: its
					// arena takes these allocations.
					innerThunks := make([]*graph.Thunk, inner)
					for j := 0; j < inner; j++ {
						j := j
						innerThunks[j] = exec.NewThunk(c, func(cc exec.Ctx) graph.Value {
							return int64(i * j)
						})
					}
					for _, it := range innerThunks {
						c.Par(it)
					}
					var sum int64
					for _, it := range innerThunks {
						sum += c.Force(it).(int64)
					}
					return sum
				})
			}
			for _, ot := range outerThunks {
				ctx.Par(ot)
			}
			var total int64
			for _, ot := range outerThunks {
				total += ctx.Force(ot).(int64)
			}
			return total
		})
		if got := res.Value.(int64); got != want {
			t.Fatalf("round %d: got %d, want %d", round, got, want)
		}
		if res.GC.ArenaThunks < outer {
			t.Fatalf("round %d: only %d arena thunks for %d outer sparks", round, res.GC.ArenaThunks, outer)
		}
	}
}

// TestNativeForkedThreadsFallBackToHeap covers the allocator's escape
// hatch: a forked thread owns no worker, so its exec.NewThunk calls
// must fall back to plain heap allocation and still interoperate with
// worker-arena thunks through the injection queue.
func TestNativeForkedThreadsFallBackToHeap(t *testing.T) {
	res := run(t, NewConfig(4), func(ctx exec.Ctx) graph.Value {
		cell := graph.NewPlaceholder()
		exec.Fork(ctx, "producer", func(c exec.Ctx) {
			th := exec.NewThunk(c, func(cc exec.Ctx) graph.Value { return int64(21) })
			c.Par(th)
			cell.Resolve(c.Force(th).(int64) * 2)
		})
		return ctx.Force(cell)
	})
	if res.Value.(int64) != 42 {
		t.Fatalf("got %v", res.Value)
	}
}

// TestPopInjectReleasesPrefix is the white-box regression test for the
// injection-queue leak: consumed slots must be nilled immediately, and
// the dead prefix compacted away once it outweighs the live tail, so
// the backing array never retains thunks the runtime already ran.
func TestPopInjectReleasesPrefix(t *testing.T) {
	r := &rt{}
	mk := func(i int) *graph.Thunk {
		return graph.NewThunk(func(c graph.Context) graph.Value { return i })
	}
	const n = 100
	for i := 0; i < n; i++ {
		r.pushInject(mk(i), nil)
	}
	// Drain just past the compaction threshold; every consumed slot
	// behind injectHead must already be nil.
	for i := 0; i < injectCompactAt-1; i++ {
		if got, _ := r.popInject(); got == nil {
			t.Fatalf("pop %d: unexpected empty queue", i)
		}
		for j := 0; j < r.injectHead; j++ {
			if r.inject[j].t != nil {
				t.Fatalf("pop %d: consumed slot %d still holds a thunk", i, j)
			}
		}
	}
	if r.injectHead == 0 {
		t.Fatal("head should not have compacted yet: dead prefix below threshold")
	}
	// The next pops pass injectCompactAt; with 100-ish entries the dead
	// prefix can't outweigh the tail yet, so keep draining until the
	// compaction fires and check it slid the live tail down.
	compacted := false
	for i := injectCompactAt - 1; i < n; i++ {
		if got, _ := r.popInject(); got == nil {
			t.Fatalf("pop %d: unexpected empty queue", i)
		}
		if r.injectHead == 0 && len(r.inject) > 0 && i < n-1 {
			compacted = true
			break
		}
	}
	if !compacted && r.injectHead != 0 && r.injectHead < injectCompactAt {
		t.Fatalf("injectHead = %d after full drain without compaction", r.injectHead)
	}
	// Drain whatever remains so the FIFO check starts from empty.
	for {
		if th, _ := r.popInject(); th == nil {
			break
		}
	}
	// FIFO order sanity on a fresh queue after the churn.
	for i := 0; i < 3; i++ {
		r.pushInject(mk(1000+i), nil)
	}
	ctx := &countingCtx{}
	for i := 0; i < 3; i++ {
		th, _ := r.popInject()
		if th == nil {
			t.Fatalf("refilled pop %d: empty", i)
		}
		if v := graph.Force(ctx, th); v != 1000+i {
			t.Fatalf("refilled pop %d = %v: injection queue is not FIFO", i, v)
		}
	}
}

// countingCtx is a minimal graph.Context for white-box forcing.
type countingCtx struct{}

func (countingCtx) Burn(int64)                       {}
func (countingCtx) Alloc(int64)                      {}
func (countingCtx) EagerBlackholing() bool           { return true }
func (countingCtx) BlackholeWriteCost() int64        { return 0 }
func (countingCtx) EnteredThunk(*graph.Thunk)        {}
func (countingCtx) LeftThunk(*graph.Thunk)           {}
func (countingCtx) BlockOnThunk(*graph.Thunk)        { panic("unexpected block") }
func (countingCtx) WakeThunkWaiters(t *graph.Thunk)  { t.Waiters = nil }
func (countingCtx) NoteDuplicateEntry(*graph.Thunk)  {}
func (countingCtx) NoteDuplicateResult(*graph.Thunk) {}

// TestNativeSparkAllocsGuard is the allocation-regression guard for the
// spark hot path: with arenas and the closure-free thunk representation
// a non-capturing spark body must cost fewer than 2 heap allocations
// amortised (chunk makes, deque growth and payload boxing included).
// The pre-arena runtime paid ~3.9 per spark on this shape.
func TestNativeSparkAllocsGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const sparks = 512
	prog := func(ctx exec.Ctx) graph.Value {
		ts := make([]*graph.Thunk, sparks)
		for j := range ts {
			j := j
			ts[j] = exec.NewThunk(ctx, func(c exec.Ctx) graph.Value {
				return int64(j % 7)
			})
		}
		for _, th := range ts {
			ctx.Par(th)
		}
		var sum int64
		for _, th := range ts {
			sum += ctx.Force(th).(int64)
		}
		return sum
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := Run(NewConfig(4), prog); err != nil {
			panic(err)
		}
	})
	perSpark := allocs / sparks
	t.Logf("spark hot path: %.0f allocs/run, %.2f per spark", allocs, perSpark)
	if perSpark >= 2.0 {
		t.Errorf("spark hot path costs %.2f allocs/spark (%.0f per run), want < 2.0 — arena regression?",
			perSpark, allocs)
	}
}

// TestNativeGCPercentRestored checks the GC-telemetry contract: a run
// with a non-default GCPercent must restore the process-wide setting on
// return and report the percent it ran under.
func TestNativeGCPercentRestored(t *testing.T) {
	before := readGOGC()
	for _, v := range []int{50, 400, GCOff} {
		res := run(t, Config{Workers: 2, EagerBlackholing: true, GCPercent: v},
			func(ctx exec.Ctx) graph.Value { return int64(1) })
		if res.GC.GOGC != v {
			t.Fatalf("run under GCPercent=%d reported GOGC=%d", v, res.GC.GOGC)
		}
		if after := readGOGC(); after != before {
			t.Fatalf("GCPercent=%d leaked: process GOGC now %d, was %d", v, after, before)
		}
	}
	if got := fmt.Sprint(readGOGC()); got == "" {
		t.Fatal("unreachable")
	}
}
