package native

import (
	"sync/atomic"
	"testing"
	"time"

	"parhask/internal/exec"
	"parhask/internal/graph"
	"parhask/internal/tune"
	"parhask/internal/workloads/apsp"
	"parhask/internal/workloads/euler"
	"parhask/internal/workloads/matmul"
)

// aggressivePark is a test policy that parks almost immediately: one
// spin round, one 1µs sleep, then the condvar. It makes parking
// reachable within microseconds of a pool going dry.
func aggressivePark() *tune.Backoff {
	return tune.NewBackoff(1, time.Microsecond, 2*time.Microsecond, 1)
}

// waitUntil polls cond every 100µs until it holds or the deadline
// passes.
func waitUntil(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestPoolWorkersParkWhenDry is the parking acceptance check: a dry
// resident pool must end up with every worker on the condvar — not in
// the sleep ladder — and the parked time must show up in telemetry.
func TestPoolWorkersParkWhenDry(t *testing.T) {
	const workers = 4
	p := NewPool(Config{Workers: workers, Backoff: aggressivePark()})
	defer p.Close()

	waitUntil(t, 5*time.Second, func() bool {
		return p.rt.nparked.Load() == workers
	}, "all workers parked")

	// A submitted job must wake them, run, and let them park again.
	h, err := p.Submit(JobConfig{}, euler.Program(300, 8, 0, true))
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Value.(int64), euler.SumTotientSieve(300); got != want {
		t.Fatalf("job value = %d, want %d", got, want)
	}
	waitUntil(t, 5*time.Second, func() bool {
		return p.rt.nparked.Load() == workers
	}, "workers re-parked after the job")

	s := p.Snapshot()
	if s.Parks == 0 {
		t.Fatal("Stats.Parks = 0 after observed parking")
	}
	waitUntil(t, 5*time.Second, func() bool {
		return p.Snapshot().ParkedNS > 0
	}, "parked time to publish")
}

// TestPoolParkWakeStress hammers the park/wake handshake under -race:
// bursts of jobs separated by dry gaps long enough for workers to
// park, so every burst's first Par races a parking worker's re-check.
func TestPoolParkWakeStress(t *testing.T) {
	p := NewPool(Config{Workers: 4, Backoff: aggressivePark()})
	defer p.Close()
	want := euler.SumTotientSieve(200)
	for burst := 0; burst < 40; burst++ {
		handles := make([]*JobHandle, 3)
		for i := range handles {
			h, err := p.Submit(JobConfig{}, euler.Program(200, 5, 0, true))
			if err != nil {
				t.Fatal(err)
			}
			handles[i] = h
		}
		for _, h := range handles {
			res, err := h.Wait()
			if err != nil {
				t.Fatal(err)
			}
			if res.Value.(int64) != want {
				t.Fatalf("burst %d: value = %d, want %d", burst, res.Value.(int64), want)
			}
		}
		// Dry gap: with the aggressive policy the workers reach the
		// condvar well inside this window, so the next burst's inject
		// exercises the wake path.
		time.Sleep(300 * time.Microsecond)
	}
	if p.Snapshot().Parks == 0 {
		t.Fatal("stress run never parked")
	}
}

// TestNativeRunParksDuringSequentialStretch checks the batch path: the
// stealers park while worker 0 (the caller) computes sequentially, and
// worker-path Par wakes them.
func TestNativeRunParksDuringSequentialStretch(t *testing.T) {
	var peakParked int64
	res := run(t, Config{Workers: 4, Backoff: aggressivePark()}, func(c exec.Ctx) graph.Value {
		// Sequential stretch: the three stealers have nothing and must
		// reach the condvar, not burn the sleep ladder.
		deadline := time.Now().Add(2 * time.Second)
		for {
			if n := c.(*Ctx).rt.nparked.Load(); n > atomic.LoadInt64(&peakParked) {
				atomic.StoreInt64(&peakParked, n)
			}
			if atomic.LoadInt64(&peakParked) >= 3 || time.Now().After(deadline) {
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
		// Now fan out: Par from the worker path must wake the parked
		// stealers or the forces below would wait on dead sparks.
		thunks := make([]*graph.Thunk, 8)
		for i := range thunks {
			v := int64(i)
			thunks[i] = exec.NewThunk(c, func(c exec.Ctx) graph.Value { return v * v })
			c.Par(thunks[i])
		}
		var sum int64
		for _, th := range thunks {
			sum += c.Force(th).(int64)
		}
		return sum
	})
	if got, want := res.Value.(int64), int64(0+1+4+9+16+25+36+49); got != want {
		t.Fatalf("value = %d, want %d", got, want)
	}
	if atomic.LoadInt64(&peakParked) == 0 {
		t.Fatal("no stealer parked during the sequential stretch")
	}
	if res.Stats.Parks == 0 {
		t.Fatal("Stats.Parks = 0 despite observed parking")
	}
}

// TestNativeRunAutotune runs a batch workload under the controller and
// checks the report plumbing: decisions traced, levers reported, value
// untouched.
func TestNativeRunAutotune(t *testing.T) {
	sp := tune.NewSplitter("euler", 64, 8, 1024)
	cfg := Config{
		Workers: 4,
		Autotune: &AutotuneConfig{
			Controller: tune.ControllerConfig{Tick: time.Millisecond},
			Splitters:  []*tune.Splitter{sp},
		},
	}
	res := run(t, cfg, func(c exec.Ctx) graph.Value {
		return sp.ParSum(c, 1, 2001, func(c exec.Ctx, lo, hi int) int64 {
			return euler.SumRangeDirect(lo, hi-1) // ParSum is [lo,hi)
		})
	})
	if got, want := res.Value.(int64), euler.SumTotientSieve(2000); got != want {
		t.Fatalf("autotuned sum = %d, want %d", got, want)
	}
	at := res.Autotune
	if at == nil {
		t.Fatal("autotuned run returned no AutotuneReport")
	}
	// ParkAfter's final value is the controller's call (a busy run
	// legitimately disables parking); the trace must be well-formed.
	for _, d := range at.Decisions {
		if d.Lever == "" || d.Action == "" {
			t.Fatalf("malformed decision in trace: %+v", d)
		}
	}
	if g, ok := at.Grains["euler"]; !ok || g < 8 || g > 1024 {
		t.Fatalf("splitter grain missing or out of bounds: %v", at.Grains)
	}
	if at.GOGC <= 0 {
		t.Fatalf("autotune GOGC = %d, want the leased percent", at.GOGC)
	}
}

// TestPoolAutotune covers the resident controller lifecycle: it must
// sample a live pool without racing Close, and the status-side report
// must be available while the pool is up.
func TestPoolAutotune(t *testing.T) {
	sp := tune.NewSplitter("jobs", 32, 4, 512)
	p := NewPool(Config{
		Workers: 4,
		Autotune: &AutotuneConfig{
			Controller: tune.ControllerConfig{Tick: time.Millisecond},
			Splitters:  []*tune.Splitter{sp},
		},
	})
	want := euler.SumTotientSieve(400)
	for i := 0; i < 10; i++ {
		h, err := p.Submit(JobConfig{}, euler.Program(400, 10, 0, true))
		if err != nil {
			t.Fatal(err)
		}
		res, err := h.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if res.Value.(int64) != want {
			t.Fatalf("job %d: value = %d, want %d", i, res.Value.(int64), want)
		}
	}
	at := p.Autotune()
	if at == nil {
		t.Fatal("autotuned pool reported nil Autotune")
	}
	if g, ok := at.Grains["jobs"]; !ok || g < 4 || g > 512 {
		t.Fatalf("splitter grain missing or out of bounds: %v", at.Grains)
	}
	p.Close()
	// Close is idempotent and the report must survive it.
	if p.Autotune() == nil {
		t.Fatal("Autotune report lost after Close")
	}
}

// TestNativeBackoffSleepsCounted pins the telemetry satellite: a run
// whose workers idle against a slow sequential producer must count
// backoff sleeps and their duration into the stats.
func TestNativeBackoffSleepsCounted(t *testing.T) {
	// Parking disabled (park=0): the idle stealers must ride the
	// counted sleep ladder instead.
	bo := tune.NewBackoff(1, time.Microsecond, 4*time.Microsecond, 0)
	res := run(t, Config{Workers: 4, Backoff: bo}, func(c exec.Ctx) graph.Value {
		time.Sleep(5 * time.Millisecond) // stealers idle here
		return int64(1)
	})
	if res.Stats.BackoffSleeps == 0 {
		t.Fatal("no backoff sleeps counted during a 5ms dry stretch")
	}
	if res.Stats.BackoffNS == 0 {
		t.Fatal("backoff sleeps counted but BackoffNS = 0")
	}
	if res.Stats.Parks != 0 {
		t.Fatal("parking occurred with parkAfter = 0")
	}
	var perWorker int64
	for _, ws := range res.PerWorker {
		perWorker += ws.BackoffSleeps
	}
	if perWorker != res.Stats.BackoffSleeps {
		t.Fatalf("per-worker backoff sleeps sum %d != total %d", perWorker, res.Stats.BackoffSleeps)
	}
}

// TestNativeAutoProgramsMatchOracles pins the auto-chunked workload
// variants to the same references as their hand-tuned counterparts,
// under an active controller and across grain extremes.
func TestNativeAutoProgramsMatchOracles(t *testing.T) {
	a, b := matmul.Random(64, 1), matmul.Random(64, 2)
	wantMat := matmul.MulOracle(a, b)
	g := apsp.RandomGraph(48, 7, 100, 50)
	wantGraph := apsp.FloydWarshall(g)
	wantSum := euler.SumTotientSieve(1200)

	for _, grain := range []int{1, 16, 1 << 20} {
		spE := tune.NewSplitter("euler", grain, 1, 1<<20)
		spM := tune.NewSplitter("matmul", grain, 1, 1<<20)
		spA := tune.NewSplitter("apsp", grain, 1, 1<<20)
		cfg := Config{Workers: 4, Autotune: &AutotuneConfig{
			Controller: tune.ControllerConfig{Tick: time.Millisecond},
			Splitters:  []*tune.Splitter{spE, spM, spA},
		}}
		res := run(t, cfg, euler.AutoProgram(1200, spE))
		if res.Value.(int64) != wantSum {
			t.Fatalf("grain=%d: euler auto sum = %d, want %d", grain, res.Value.(int64), wantSum)
		}
		res = run(t, cfg, matmul.AutoBlockProgram(a, b, spM, 0))
		if !matmul.Equal(res.Value.(matmul.Mat), wantMat, 1e-9) {
			t.Fatalf("grain=%d: matmul auto product diverged from oracle", grain)
		}
		res = run(t, cfg, apsp.AutoProgram(g, spA, 0))
		if !apsp.Equal(res.Value.(apsp.Graph), wantGraph) {
			t.Fatalf("grain=%d: apsp auto distances diverged from oracle", grain)
		}
	}
}

// TestAutoBlockEdge pins the grain→block-size mapping.
func TestAutoBlockEdge(t *testing.T) {
	cases := []struct{ n, grain, want int }{
		{64, 1, 1},        // nothing fits: smallest legal block
		{64, 4, 2},        // 2² = 4 fits, 4² = 16 does not
		{64, 256, 16},     // 16² = 256 exactly
		{64, 1 << 20, 64}, // whole matrix in one spark
		{48, 200, 12},     // largest divisor of 48 with square ≤ 200 (12² = 144; 16² = 256 too big)
		{7, 100, 7},       // prime n: 1 or n only
	}
	for _, c := range cases {
		if got := matmul.AutoBlockEdge(c.n, c.grain); got != c.want {
			t.Fatalf("AutoBlockEdge(%d, %d) = %d, want %d", c.n, c.grain, got, c.want)
		}
	}
}

// TestAutotuneDisabledPathShared pins the disabled path's cost: a run
// without Config.Autotune builds no controller and shares the
// immutable package-wide backoff policy instead of allocating one per
// run (the spark hot-path alloc guard in arena_test.go bounds the
// rest).
func TestAutotuneDisabledPathShared(t *testing.T) {
	r := newRT(NewConfig(2), false)
	if r.bo != defaultBackoff {
		t.Fatal("run without Autotune allocated a private backoff policy; want the shared default")
	}
	res := run(t, Config{Workers: 2, EagerBlackholing: true},
		func(c exec.Ctx) graph.Value { return int64(1) })
	if res.Autotune != nil {
		t.Fatal("run without Autotune produced a controller report")
	}
}
