package native

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"parhask/internal/eventlog"
	"parhask/internal/exec"
	"parhask/internal/faults"
	"parhask/internal/gcscope"
	"parhask/internal/graph"
	"parhask/internal/tune"
)

// Submission errors. The serve layer maps these to HTTP backpressure
// codes; they are sentinel values so callers can errors.Is them.
var (
	// ErrPoolClosed rejects a Submit after Close completed.
	ErrPoolClosed = errors.New("native: pool closed")
	// ErrPoolDraining rejects a Submit made while Close is waiting for
	// in-flight jobs.
	ErrPoolDraining = errors.New("native: pool draining")
)

// Pool is the resident form of the native work-stealing runtime: the
// workers, their deques and their thunk arenas are created once and
// stay up, and programs are submitted as jobs instead of each Run
// paying worker startup and teardown. Unlike Run, no worker is the
// caller's goroutine — every worker is a resident stealing loop, and
// each job's main function runs on its own goroutine, feeding the
// workers through the injection queue.
//
// Isolation: each job carries its own result cell, failure latch,
// deadline, fault budget, counter set and (optionally) eventlog scope.
// A spark panic, injected fault or deadline expiry fails only the job
// the work belonged to — the worker poisons the dead job's claims (so
// its waiters unwind through the ordinary poison protocol) and goes
// back to stealing. GC telemetry is deliberately pool-scoped: Go's
// collector is process-global, so per-job deltas would be fiction; GC
// reports what the collector did since the pool started, flagged
// Shared if any batch Run overlapped (see internal/gcscope).
type Pool struct {
	rt    *rt
	start time.Time

	// gcMu guards the pool's long-lived gcscope window (Sample from
	// observers vs End from Close).
	gcMu  sync.Mutex
	gcWin *gcscope.Window
	gogc  int
	lease *gcscope.Lease // held for the pool's lifetime; nil when unleased

	// ctrl is the pool's autotune controller (nil unless
	// Config.Autotune): it samples Snapshot+GC on its tick and moves the
	// pool's Backoff, Splitters and — when the lease entitles it — GOGC.
	ctrl *tune.Controller

	// jobsMu guards the live-job table, the retired fold and the
	// admission flags. Retirement folds a job's final counters into
	// retired before removing it from live, under this one lock, so
	// Snapshot sums are monotone.
	jobsMu   sync.Mutex
	live     map[int64]*Job
	retired  Stats
	jobSeq   int64
	draining bool
	closed   bool

	jobs       sync.WaitGroup
	jobsDone   atomic.Int64
	jobsFailed atomic.Int64

	// pm records the pool's latency histograms and fault counters
	// (nil unless Config.Metrics was set — the disabled path is a nil
	// check, like the eventlog).
	pm *poolMetrics
}

// JobConfig scopes one submitted job.
type JobConfig struct {
	// Deadline bounds the job's wall-clock time (from Submit). A job
	// still in flight when it elapses fails with a structured
	// *faults.DeadlockError; the pool and its other jobs are untouched.
	Deadline time.Duration
	// Faults, if non-nil, is this job's private fault budget: it
	// governs the job's root sparks (injection-queue entries), its
	// forked threads, and nothing else — neighbouring jobs see no
	// injected failures.
	Faults *faults.Injector
	// EventLog gives the job a private event ring set: buffer 0 is fed
	// by the job's main thread (run/block brackets, spark pushes), and
	// buffer 1+w is worker w's job-scoped ring — each worker mirrors
	// the brackets of the sparks it converts *for this job* into it, so
	// the drained log is one request's cross-worker timeline. Pool-wide
	// worker rings (Config.EventLog on Run) are unaffected.
	EventLog bool
	// EventLogConfig tunes the rings (zero value = defaults).
	EventLogConfig eventlog.Config
	// TraceID, if non-zero, tags the job's event ring with a TraceMark
	// event carrying this id — the serve layer's handle for pulling one
	// request's timeline off a live server. Ignored unless EventLog.
	TraceID int32
}

// Job is one resident submission: a program plus its isolation scope.
type Job struct {
	id   int64
	pool *Pool

	// ctr is the job's exclusive counter set, written only by the job's
	// main thread and its forks (atomic: forks are concurrent). Worker-
	// side execution (conversions, steals) stays in the per-worker
	// stats — that split is what makes pool snapshots monotone: nothing
	// writes ctr after the job's threads have joined.
	ctr counters

	// blocked gauges the job's nil-worker threads currently inside a
	// blocked force (deadline diagnostics).
	blocked atomic.Int64

	// active gauges workers currently converting this job's injected
	// sparks: incremented under injectMu at pop, decremented when the
	// conversion ends (normally in runSpark, on panic at the containing
	// recovery). runJob waits for it to reach zero after purging the
	// queue, so a job's outcome is decided only after every worker has
	// let go of its work — a worker-side failure can't land after the
	// job reported success, and a retired job is untouchable.
	active atomic.Int64

	failed  atomic.Bool
	errOnce sync.Once
	err     error

	forks    sync.WaitGroup
	deadline *time.Timer
	faults   *faults.Injector

	events *eventlog.Log
	ev     *eventlog.Buf

	start   time.Time
	done    chan struct{}
	result  *JobResult
	waitErr error
}

// JobResult is the outcome of one resident job.
type JobResult struct {
	// Value is what the job's main function returned (nil on failure).
	Value graph.Value
	// WallNS is the job's latency: Submit to completion, including its
	// forks' joins, in nanoseconds.
	WallNS int64
	// Stats is the job's exclusive counter set — the activity of its
	// main thread and forks (sparks created, blocked forces, forks).
	// Execution-side counters (conversions, steals) are pool-wide; read
	// them from Pool.Snapshot.
	Stats Stats
	// Events is the job's private eventlog (nil unless requested).
	Events *eventlog.Log
}

// Wall returns the job latency as a duration.
func (r *JobResult) Wall() time.Duration { return time.Duration(r.WallNS) }

// JobHandle is the caller's reference to a submitted job.
type JobHandle struct {
	job *Job
}

// Wait blocks until the job completes and returns its result. On
// failure the result still carries the job's counters and eventlog.
func (h *JobHandle) Wait() (*JobResult, error) {
	<-h.job.done
	return h.job.result, h.job.waitErr
}

// Done returns a channel closed when the job completes.
func (h *JobHandle) Done() <-chan struct{} { return h.job.done }

// workerBuf returns worker id's job-scoped event ring, or nil when the
// job (or its eventlog) doesn't exist. Only worker id may write to the
// returned buffer, and only while it holds one of the job's sparks
// (active > 0) — runJob's active==0 wait is the barrier that makes the
// post-run drain safe.
func (j *Job) workerBuf(id int) *eventlog.Buf {
	if j == nil || j.events == nil {
		return nil
	}
	return j.events.Buf(1 + id)
}

// fail records the job's first failure. Blocked forces working for the
// job poll the latch, so no wakeup is needed.
func (j *Job) fail(err error) {
	j.errOnce.Do(func() { j.err = err })
	j.failed.Store(true)
}

// takeErr reads the failure after observing failed=true (errOnce.Do
// happens-before the Store, so err is visible).
func (j *Job) takeErr() error { return j.err }

// NewPool starts a resident pool: cfg.Workers stealing loops, arenas
// warm, ready for Submit. Config fields are honoured as in Run, except
// that Config.EventLog is per-job in resident mode (use
// JobConfig.EventLog) and Config.Deadline/Faults become per-job too
// (JobConfig); pool-wide Faults still apply to untagged work.
// Config.GCPercent, if set, is leased for the pool's whole lifetime.
// Config.Sampler, if set, receives the pool's Snapshot function.
func NewPool(cfg Config) *Pool {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{start: time.Now(), live: map[int64]*Job{}}
	if cfg.GCPercent != 0 {
		p.lease = gcscope.Acquire(cfg.GCPercent)
	} else if cfg.Autotune != nil {
		// An autotuned pool without an explicit GC target leases the
		// current percent: the no-op acquisition never blocks a
		// same-percent peer, and holding it entitles the controller to
		// Adjust when it is the sole holder.
		p.lease = gcscope.Acquire(readGOGC())
	}
	r := newRT(cfg, true)
	// Resident pools are always observable: Snapshot may be called at
	// any time (serve's /stats, metrics collectors), so workers publish
	// coarse snapshots regardless of Sampler/Autotune.
	r.sampled = true
	p.rt = r
	p.gogc = readGOGC()
	p.gcWin = gcscope.Begin()
	for _, w := range r.workers {
		r.stealers.Add(1)
		go w.residentLoop()
	}
	if cfg.Sampler != nil {
		cfg.Sampler(p.Snapshot)
	}
	if cfg.Metrics != nil {
		p.pm = newPoolMetrics(cfg.Metrics, p)
		r.pm = p.pm
	}
	if at := cfg.Autotune; at != nil {
		cc := at.Controller
		if cc.Metrics == nil {
			cc.Metrics = cfg.Metrics
		}
		lv := tune.Levers{Splitters: at.Splitters, Backoff: r.bo}
		if p.lease != nil && p.lease.Percent() > 0 {
			lv.GOGC = p.lease
			if cc.BaseGOGC == 0 {
				cc.BaseGOGC = p.lease.Percent()
			}
		}
		p.ctrl = tune.NewController(cc, lv)
		p.ctrl.Start(p.observeTune)
	}
	return p
}

// observeTune feeds the controller: pool-cumulative scheduler counters
// (workers + retired + live jobs) and the pool's GC window. The
// controller diffs consecutive observations itself.
func (p *Pool) observeTune() tune.Observation {
	s := p.Snapshot()
	gc := p.GC()
	return tune.Observation{
		NowNS:           time.Since(p.start).Nanoseconds(),
		SparksConverted: s.SparksConverted,
		Steals:          s.Steals,
		StealAttempts:   s.StealAttempts,
		SparksLeftover:  s.SparksLeftover,
		InjectDepth:     p.rt.injectDepth(),
		GCCycles:        gc.Cycles,
		AllocBytes:      gc.BytesAlloc,
		BackoffSleeps:   s.BackoffSleeps,
		ParkedNS:        s.ParkedNS,
		IdleWorkers:     p.rt.nparked.Load(),
	}
}

// Autotune reports the controller's decision trace and the levers'
// current positions; nil when the pool is not autotuned. Safe at any
// time — serve exposes it on the status endpoint.
func (p *Pool) Autotune() *AutotuneReport {
	if p.ctrl == nil {
		return nil
	}
	return p.rt.autotuneReport(p.ctrl, p.lease)
}

// Workers reports the pool's worker count.
func (p *Pool) Workers() int { return p.rt.cfg.Workers }

// Submit starts main as a resident job and returns its handle. The job
// begins executing immediately on its own goroutine; admission control
// (queueing, concurrency limits) belongs to the layer above
// (internal/serve). Submit fails only when the pool is draining or
// closed.
func (p *Pool) Submit(jc JobConfig, main exec.Program) (*JobHandle, error) {
	if main == nil {
		return nil, errors.New("native: nil job main")
	}
	p.jobsMu.Lock()
	if p.closed {
		p.jobsMu.Unlock()
		return nil, ErrPoolClosed
	}
	if p.draining {
		p.jobsMu.Unlock()
		return nil, ErrPoolDraining
	}
	p.jobSeq++
	j := &Job{id: p.jobSeq, pool: p, faults: jc.Faults,
		start: time.Now(), done: make(chan struct{})}
	if jc.EventLog {
		j.events = eventlog.New(j.start, 1+len(p.rt.workers), jc.EventLogConfig)
		j.ev = j.events.Buf(0)
		if jc.TraceID != 0 {
			// Emitted before the job is visible to any worker (it is not
			// yet in live nor in the injection queue), so the single-writer
			// discipline holds.
			j.ev.EmitArg(eventlog.TraceMark, jc.TraceID)
		}
	}
	p.live[j.id] = j
	p.jobs.Add(1)
	p.jobsMu.Unlock()

	if jc.Deadline > 0 {
		j.deadline = time.AfterFunc(jc.Deadline, func() {
			if j.failed.Load() {
				return
			}
			select {
			case <-j.done:
				return
			default:
			}
			j.fail(p.jobDeadlockError(j, time.Since(j.start)))
		})
	}
	go p.runJob(j, main)
	return &JobHandle{job: j}, nil
}

// jobDeadlockError builds the structured deadline failure for one job
// from the gauges we can attribute to it: its own blocked threads. (A
// worker blocked while converting the job's spark shows up in the
// pool-level gauges, not here — worker state is shared.)
func (p *Pool) jobDeadlockError(j *Job, elapsed time.Duration) *faults.DeadlockError {
	de := &faults.DeadlockError{Backend: "native", Reason: "deadline", Elapsed: elapsed}
	if n := j.blocked.Load(); n > 0 {
		de.Blocked = append(de.Blocked, faults.BlockedThread{
			PE: -1, Thread: fmt.Sprintf("job-%d (%d blocked)", j.id, n),
			Reason: "thunk", Chan: -1, Peer: -1,
		})
	}
	return de
}

// runJob is the job's main-thread goroutine: the resident counterpart
// of Run's caller-goroutine bracket, scoped to one job.
func (p *Pool) runJob(j *Job, main exec.Program) {
	defer p.jobs.Done()
	if p.pm != nil {
		// Scheduling latency: Submit to the job goroutine actually
		// starting (goroutine wakeup + admission bookkeeping).
		p.pm.schedWait.Observe(time.Since(j.start).Nanoseconds())
	}
	c := Ctx{rt: p.rt, job: j, ev: j.ev}
	var value graph.Value
	runErr := func() (err error) {
		defer func() {
			if v := recover(); v != nil {
				switch v {
				case errAborted:
					err = p.rt.err
				case errJobAborted:
					err = j.takeErr()
				default:
					err = panicErr(fmt.Sprintf("native: job %d main panicked", j.id), v)
				}
				// Orphaned-claim recovery, as in Run: poison what the dying
				// main stack still holds so nothing blocks on it forever.
				if n := poisonClaims(c.claims, err, nil); n > 0 {
					p.rt.poisoned.Add(n)
				}
			}
		}()
		if j.ev != nil {
			j.ev.Emit(eventlog.RunBegin)
		}
		value = main(&c)
		if j.ev != nil {
			j.ev.Emit(eventlog.RunEnd)
		}
		return nil
	}()
	if runErr != nil {
		j.fail(runErr)
	}
	j.forks.Wait()
	// Drop the job's still-queued speculative sparks: nothing will need
	// them (the main thread has returned or died), and leaving them
	// would retain the job's heap graph for the pool's lifetime.
	leftover := p.rt.purgeInject(j)
	// Wait for workers still converting this job's sparks to let go
	// (the purge and the pop share injectMu, so after it every
	// remaining conversion is visible in the gauge). Only then is the
	// outcome decided: a worker-side failure cannot land after success
	// is reported, and a retired job is untouched by any worker. The
	// deadline stays armed across this wait so a worker blocked inside
	// the job's spark still gets unwound.
	for spins := 0; j.active.Load() > 0; spins++ {
		idleWait(spins)
	}
	if j.deadline != nil {
		j.deadline.Stop()
	}

	if runErr == nil && j.failed.Load() {
		runErr = j.takeErr() // a fork or worker failed the job
	}
	wall := time.Since(j.start)
	res := &JobResult{WallNS: wall.Nanoseconds(), Stats: j.ctr.load()}
	res.Stats.SparksLeftover = leftover
	if j.events != nil {
		j.events.Close(res.WallNS)
		res.Events = j.events
	}
	if runErr == nil {
		res.Value = value
	}
	j.result = res
	j.waitErr = runErr
	p.retire(j, runErr)
	close(j.done)
}

// retire folds the job's final counters into the pool's retired total
// and removes it from the live table — one critical section, so a
// Snapshot sees the counters exactly once (live or retired, never
// neither). No thread writes j.ctr after the forks joined, so the fold
// is the job's true final count.
func (p *Pool) retire(j *Job, err error) {
	p.jobsMu.Lock()
	p.retired.Add(j.ctr.load())
	delete(p.live, j.id)
	p.jobsMu.Unlock()
	if err != nil {
		p.jobsFailed.Add(1)
	} else {
		p.jobsDone.Add(1)
	}
	if p.pm != nil {
		h := p.pm.wallOK
		if err != nil {
			h = p.pm.wallErr
		}
		h.Observe(j.result.WallNS)
	}
}

// Inflight reports how many jobs are currently live.
func (p *Pool) Inflight() int {
	p.jobsMu.Lock()
	defer p.jobsMu.Unlock()
	return len(p.live)
}

// JobsDone and JobsFailed report completed-job counts.
func (p *Pool) JobsDone() int64   { return p.jobsDone.Load() }
func (p *Pool) JobsFailed() int64 { return p.jobsFailed.Load() }

// Snapshot sums the pool's counters: every worker's published
// snapshot, the batch-extern set, all retired jobs, and every live
// job's exclusive counters. Safe from any goroutine at any time; all
// cumulative fields are monotone non-decreasing across calls
// (SparksLeftover is a gauge of currently pooled sparks).
func (p *Pool) Snapshot() Stats {
	s := p.rt.snapshot()
	p.jobsMu.Lock()
	s.Add(p.retired)
	for _, j := range p.live {
		s.Add(j.ctr.load())
	}
	p.jobsMu.Unlock()
	return s
}

// GC reports what Go's collector did since the pool started. It is
// pool-scoped on purpose: the collector is process-global, so per-job
// deltas would misattribute; Shared flags intervals during which some
// other measurement window (a batch Run) overlapped the pool's.
func (p *Pool) GC() GCStats {
	p.gcMu.Lock()
	d := p.gcWin.Sample()
	p.gcMu.Unlock()
	gogc := p.gogc
	if p.lease != nil {
		gogc = p.lease.Percent() // live value: the controller may have moved it
	}
	return GCStats{GOGC: gogc, Cycles: d.Cycles, PauseNS: d.PauseNS,
		BytesAlloc: d.BytesAlloc, Shared: d.Shared}
}

// Uptime reports how long the pool has been resident.
func (p *Pool) Uptime() time.Duration { return time.Since(p.start) }

// Close drains the pool: new submissions are rejected, in-flight jobs
// run to completion (bound their time with JobConfig.Deadline), then
// the workers exit and the GOGC lease is released. Idempotent.
func (p *Pool) Close() {
	p.jobsMu.Lock()
	if p.draining || p.closed {
		closed := p.closed
		p.jobsMu.Unlock()
		if !closed {
			p.jobs.Wait() // concurrent Close: wait for the first to finish
		}
		return
	}
	p.draining = true
	p.jobsMu.Unlock()

	p.jobs.Wait()
	p.rt.done.Store(true)
	p.rt.wake() // parked workers must observe done
	p.rt.stealers.Wait()
	if p.ctrl != nil {
		// Stop before ending the GC window: the controller's sampler
		// calls gcWin.Sample, which must not race the End below.
		p.ctrl.Stop()
	}
	p.gcMu.Lock()
	p.gcWin.End()
	p.gcMu.Unlock()
	if p.lease != nil {
		p.lease.Release()
	}
	p.jobsMu.Lock()
	p.closed = true
	p.jobsMu.Unlock()
}

// residentLoop is the body of a pool worker: stealPass until the pool
// closes. Each pass absorbs one spark panic — poisoning the dead
// work's claims and failing the owning job — and the loop restarts, so
// one job's failure never costs the pool a worker.
func (w *worker) residentLoop() {
	defer w.rt.stealers.Done()
	for !w.rt.done.Load() {
		w.stealPass()
	}
	w.maybePublish()
}

// stealPass is one panic-scope of a resident worker: the same
// take/run/back-off loop as stealLoop, but a spark panic is contained
// here instead of failing the runtime. The recovery attributes the
// failure to the job whose spark was converting (w.curJob, left in
// place by runSpark's panic path); an untagged spark's panic reaches
// its victims through the poisoned claims alone.
func (w *worker) stealPass() {
	defer func() {
		if p := recover(); p != nil {
			err := w.sparkPanicErr(p)
			w.poisonClaims(err)
			if j := w.curJob; j != nil {
				if p != errAborted {
					j.fail(err)
				}
				j.active.Add(-1)
			}
			w.curJob = nil
			w.maybePublish()
		}
	}()
	spins := 0
	idle := false
	for !w.rt.done.Load() {
		if t, j := w.takeWork(); t != nil {
			idle = false
			w.runSpark(t, j)
			spins = 0
			continue
		}
		if !idle {
			idle = true
			w.maybePublish()
		}
		spins++
		w.backoffWait(spins, true)
	}
}
